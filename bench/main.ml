(* Standalone entry point for the evaluation harness; `occo bench`
   drives the same {!Benchkit.Bench_main.main}. *)
let () =
  let runs = ref 20 in
  let spec =
    [
      ( "--runs",
        Arg.Set_int runs,
        "N  sampling runs feeding the per-pass histograms (default 20; also \
         scales the timing quota and the service warm rounds)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "main.exe [--runs N]";
  exit (Benchkit.Bench_main.main ~runs:!runs ())
