(** Benchmark and evaluation harness.

    Regenerates the content of every table and figure of the paper's
    evaluation (see DESIGN.md §6 and EXPERIMENTS.md):

    - Table 1: notation summary (generated from the framework);
    - Table 2: language interfaces (from the [Iface] metadata);
    - Table 3: passes, conventions, SLOC, and per-pass compile time;
    - Table 4: taxonomy of semantic models, each demonstrated executable;
    - Table 5: component SLOC breakdown;
    - Fig. 1: the mult/sqr separate-compilation example;
    - Fig. 4: memory-model operation micro-benchmarks;
    - Fig. 5: horizontal composition vs syntactic linking overhead;
    - Fig. 9: injp accessibility checking;
    - Figs. 10/11: the Thm 3.8 derivation (step counts);
    - Fig. 13: argument-region protection.

    Timings are measured with Bechamel (OLS estimate of ns/run). The
    paper's Tables 3/5 report SLOC overhead against CompCert v3.6; our
    substrate is a fresh implementation, so we report our own absolute
    SLOC per pass/component — the reproduced {e shape} is the pass ↦
    convention assignment and the component breakdown. *)

open Support
open Memory.Values
open Iface

(* ------------------------------------------------------------------ *)
(* Bechamel helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* Sampling quota per Bechamel estimate, set from [main]'s [runs]:
   0.02s x runs, so the historical default (runs = 20) keeps the 0.4s
   quota while `--runs 5` is a four-times-faster CI smoke. *)
let sample_quota_s = ref 0.4

let estimate_once name quota_s (f : unit -> unit) : float =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota_s) () in
  let tbl = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock tbl in
  match Hashtbl.fold (fun _ v _ -> Some v) results None with
  | Some o -> (
    match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> Float.nan)
  | None -> Float.nan

(* One OLS estimate absorbs whatever else the machine ran during its
   quota, so on a shared box consecutive estimates of the same workload
   spread by tens of percent. The best of three independent estimates
   (same total sampling budget) is the least-contended measurement —
   the reproducible quantity a regression gate can compare across
   commits. *)
let estimate_ns name (f : unit -> unit) : float =
  let q = !sample_quota_s /. 3. in
  let es =
    List.filter (fun e -> not (Float.is_nan e))
      [ estimate_once name q f; estimate_once name q f; estimate_once name q f ]
  in
  match es with [] -> Float.nan | e :: rest -> List.fold_left Float.min e rest

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let section title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."

let table rows = print_string (Pp_util.render_table rows)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let workload_src =
  {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int arr[16] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};
void sort(int *a, int n) {
  for (int i = 0; i < n; i++)
    for (int j = 0; j + 1 < n - i; j++)
      if (a[j] > a[j+1]) { int t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
}
int checksum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s = s * 31 + a[i];
  return s;
}
int wide(int a,int b,int c,int d,int e,int f,int g,int h) {
  return a+b+c+d+e+f+g+h;
}
/* small leaf: inlinable */
int sq(int x) { return x * x; }
/* accumulator loop in tail position: tail-call shape */
int iter(int n, int acc) { if (n == 0) return acc; return iter(n - 1, acc + sq(n)); }
int main(void) {
  sort(arr, 16);
  return checksum(arr, 16) + fib(12) + wide(1,2,3,4,5,6,7,8) + iter(50, 0);
}
|}

(* Forced on first use, not at module initialization: the bench body
   is linked into occo (for `occo bench`), and other subcommands must
   not pay for — or crash on — the workload compile at startup. *)
let workload_l = lazy (Cfrontend.Cparser.parse_program workload_src)
let workload () = Lazy.force workload_l
let workload_symbols_l = lazy (Ast.prog_defs_names (workload ()))
let workload_symbols () = Lazy.force workload_symbols_l
let workload_arts_l = lazy (Errors.get (Driver.Compiler.compile (workload ())))
let workload_arts () = Lazy.force workload_arts_l

let workload_query_l =
  lazy
    (Option.get
       (Driver.Runners.main_query ~symbols:(workload_symbols ())
          ~defs:(workload ()) ()))

let workload_query () = Lazy.force workload_query_l

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: summary of notations (as realized in this library)";
  table
    [
      [ "Notation"; "Realization"; "Module" ];
      [ "R in R(S1,S2)"; "executable relation"; "Core.Simconv" ];
      [ "Kripke relation (Def 2.5)"; "world-indexed checker"; "Core.Cklr" ];
      [ "CompCert KLR (sec 4.4)"; "module type CKLR"; "Core.Cklr" ];
      [ "language interface (Def 2.1)"; "query/reply types"; "Iface.Li" ];
      [ "R : A1 <=> A2 (Def 2.6)"; "Simconv.t record"; "Core.Simconv" ];
      [ "L : A ->> B (Def 3.1)"; "Smallstep.lts record"; "Core.Smallstep" ];
      [ "L1 (+) L2 (Def 3.2)"; "Hcomp.compose"; "Core.Hcomp" ];
      [ "L1 <=_{R->>S} L2 (Def 3.3)"; "co-execution checking"; "Core.Coexec" ];
    ]

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: language interfaces used in CompCertO";
  table
    [
      [ "Name"; "Question"; "Answer"; "Used by" ];
      [ "C"; "vf[sg](args)@m"; "v'@m'"; "Clight ... RTL" ];
      [ "L"; "vf[sg](locset)@m"; "locset'@m'"; "LTL, Linear" ];
      [ "M"; "vf(sp,ra,regs)@m"; "regs'@m'"; "Mach" ];
      [ "A"; "regs@m (incl. PC SP RA)"; "regs'@m'"; "Asm" ];
      [ "1"; "(none)"; "(none)"; "closed processes" ];
      [ "W"; "*"; "exit status"; "whole programs" ];
    ]

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

(* Per-pass compile time on the workload, sourced from the shared
   metrics registry (ISSUE 1): run the instrumented pipeline a few
   times and read back the per-pass duration histograms the driver
   itself records — the bench no longer times passes on its own. *)
let pass_hist_runs = ref 20

let warm_pass_histograms () =
  Obs.with_enabled (fun () ->
      for _ = 1 to !pass_hist_runs do
        ignore (Driver.Compiler.compile (workload ()))
      done)

let pass_time_ns name =
  Option.map
    (fun (s : Obs.Metrics.stats) -> s.Obs.Metrics.mean *. 1e3)
    (Obs.Metrics.histogram_stats ("pass." ^ name))

let table3 () =
  section
    "Table 3: passes of CompCertO (conventions as in the paper; SLOC of our \
     implementation; per-pass compile time on the workload)";
  warm_pass_histograms ();
  table
    ([ "Pass"; "Outgoing ->> Incoming"; "SLOC"; "Compile time" ]
    :: List.map
         (fun (p : Convalg.Derive.pass_info) ->
           let t =
             match pass_time_ns p.Convalg.Derive.pass_name with
             | Some ns -> pp_ns ns
             | None -> "-"
           in
           [
             (p.Convalg.Derive.pass_name
             ^ if p.Convalg.Derive.optional then " (+)" else "");
             Printf.sprintf "%s ->> %s"
               (Convalg.Cterm.to_string p.Convalg.Derive.outgoing)
               (Convalg.Cterm.to_string p.Convalg.Derive.incoming);
             string_of_int (Sloccount.Sloc.measure_pass p.Convalg.Derive.pass_name);
             t;
           ])
         Convalg.Derive.table3);
  Format.printf
    "(+) = optional optimization, as in the paper. Conventions per pass@.match Table 3 of the paper exactly; see Convalg.Derive.table3.@."

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: taxonomy of CompCert extensions (semantic models)";
  table
    [
      [ "Variant"; "Semantic model"; "Demonstrated here by" ];
      [ "(Sep)CompCert"; "chi: 1->>C |- 1->>W"; "Core.Closed (run below)" ];
      [ "CompCertX"; "chi: 1->>CxA |- 1->>CxA"; "(contextual; not built)" ];
      [ "Comp. CompCert"; "C ->> C"; "Clight/RTL semantics" ];
      [ "CompCertM"; "CxA ->> CxA"; "(RUSC; not built)" ];
      [ "CompCertO"; "A ->> A for A in L"; "all 9 language semantics" ];
    ];
  (* Demonstrate the three model shapes on the workload. *)
  let src = Cfrontend.Clight.semantics ~symbols:(workload_symbols ()) (workload ()) in
  let closed =
    Core.Closed.close src ~entry:(workload_query ())
      ~decode:(fun r -> match r.Li.cr_res with Vint n -> Some n | _ -> None)
  in
  (match Core.Smallstep.run ~fuel:10_000_000 closed ~oracle:(fun _ -> None) () with
  | Core.Smallstep.Final (_, code) ->
    Format.printf "closed 1->>W run of the workload: exit status %ld@." code
  | _ -> Format.printf "closed run: unexpected outcome@.");
  (match Driver.Runners.run_c_level src ~fuel:10_000_000 (workload_query ()) with
  | Core.Smallstep.Final (_, r) ->
    Format.printf "open C->>C run of the workload: answer %a@." pp r.Li.cr_res
  | _ -> Format.printf "open C run: unexpected outcome@.");
  match
    Driver.Runners.run_a_level
      (Backend.Asm.semantics ~symbols:(workload_symbols ())
         (workload_arts ()).Driver.Compiler.asm)
      ~fuel:10_000_000 (workload_query ())
  with
  | Ok (Core.Smallstep.Final (_, r)) ->
    Format.printf "open A->>A run of the workload: answer %a@." pp r.Li.cr_res
  | _ -> Format.printf "open A run: unexpected outcome@."

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table 5: significant lines of code per component (this repository)";
  let rows = Sloccount.Sloc.measure_table5 () in
  table
    ([ "Component"; "SLOC" ]
    :: List.map (fun (n, c) -> [ n; string_of_int c ]) rows);
  Format.printf "Total (whole repository, .ml files): %d SLOC@."
    (Sloccount.Sloc.measure_total ())

(* ------------------------------------------------------------------ *)
(* Fig. 1                                                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Fig. 1: mult/sqr compiled separately, composed and linked";
  let unit_a = "int mult(int n, int p) { return n * p; }" in
  let unit_b = "int mult(int n, int p); int sqr(int n) { return mult(n, n); }" in
  let pa = Cfrontend.Cparser.parse_program unit_a in
  let pb = Cfrontend.Cparser.parse_program unit_b in
  match
    Driver.Linking.separate_compilation_experiment ~fuel:100_000 [ pa; pb ]
      ~query:(fun symbols ->
        match
          Ast.link_list ~internal_sig:Cfrontend.Csyntax.fn_sig [ pa; pb ]
        with
        | Error _ -> None
        | Ok linked -> (
          let ge = Genv.globalenv ~symbols linked in
          match
            ( Genv.find_symbol ge (Ident.intern "sqr"),
              Genv.init_mem ~symbols linked )
          with
          | Some b, Some m ->
            Some
              { Li.cq_vf = Vptr (b, 0);
                cq_sg =
                  { Memory.Mtypes.sig_args = [ Memory.Mtypes.Tint ];
                    sig_res = Some Memory.Mtypes.Tint };
                cq_args = [ Vint 3l ]; cq_mem = m }
          | _ -> None))
  with
  | Ok e ->
    Format.printf "Clight(A.c) (+) Clight(B.c) on sqr(3): %a@."
      Driver.Runners.pp_c_outcome e.Driver.Linking.exp_composed;
    Format.printf "Asm(A.s + B.s)              on sqr(3): %a@."
      Driver.Runners.pp_c_outcome e.Driver.Linking.exp_linked;
    Format.printf "Cor. 3.9 instance: %s@."
      (if e.Driver.Linking.exp_agree then "HOLDS" else "VIOLATED")
  | Error e -> Format.printf "error: %s@." e

(* ------------------------------------------------------------------ *)
(* Fig. 4: memory model micro-benchmarks                               *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Fig. 4: memory model operations (micro-benchmarks)";
  let m0 = Memory.Mem.empty in
  let m1, b = Memory.Mem.alloc m0 0 64 in
  let m2 = Option.get (Memory.Mem.store Memory.Memdata.Mint64 m1 b 0 (Vlong 7L)) in
  table
    [
      [ "Operation"; "Estimated time" ];
      [ "alloc (64 bytes)";
        pp_ns (estimate_ns "alloc" (fun () -> ignore (Memory.Mem.alloc m2 0 64))) ];
      [ "store int64";
        pp_ns
          (estimate_ns "store" (fun () ->
               ignore (Memory.Mem.store Memory.Memdata.Mint64 m2 b 8 (Vlong 1L))))
      ];
      [ "load int64";
        pp_ns
          (estimate_ns "load" (fun () ->
               ignore (Memory.Mem.load Memory.Memdata.Mint64 m2 b 0))) ];
      [ "free (64 bytes)";
        pp_ns (estimate_ns "free" (fun () -> ignore (Memory.Mem.free m2 b 0 64)))
      ];
      [ "mem_inject check (2 blocks)";
        pp_ns
          (estimate_ns "inject" (fun () ->
               let f = Memory.Meminj.id_below (Memory.Mem.nextblock m2) in
               ignore (Memory.Meminj.mem_inject f m2 m2))) ];
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: horizontal composition vs linked execution                  *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Fig. 5: horizontal composition (+) vs syntactic linking";
  let unit_a =
    "int helper(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
  in
  let unit_b =
    "int helper(int n); int driver(int k) { int s = 0; for (int i = 0; i < k; i++) s += helper(20); return s; }"
  in
  let pa = Cfrontend.Cparser.parse_program unit_a in
  let pb = Cfrontend.Cparser.parse_program unit_b in
  let asm_a = Errors.get (Driver.Compiler.compile_c_to_asm unit_a) in
  let asm_b = Errors.get (Driver.Compiler.compile_c_to_asm unit_b) in
  let symbols =
    Driver.Linking.shared_symbols [ Ast.prog_defs_names pa; Ast.prog_defs_names pb ]
  in
  let linked = Errors.get (Backend.Asm.link asm_a asm_b) in
  let q =
    let ge = Genv.globalenv ~symbols linked in
    let m =
      Option.get
        (Genv.init_mem ~symbols
           (Errors.get
              (Ast.link_list ~internal_sig:Cfrontend.Csyntax.fn_sig [ pa; pb ])))
    in
    { Li.cq_vf = Genv.symbol_address ge (Ident.intern "driver") 0;
      cq_sg =
        { Memory.Mtypes.sig_args = [ Memory.Mtypes.Tint ];
          sig_res = Some Memory.Mtypes.Tint };
      cq_args = [ Vint 50l ]; cq_mem = m }
  in
  let la = Backend.Asm.semantics ~symbols asm_a in
  let lb = Backend.Asm.semantics ~symbols asm_b in
  let composed = Core.Hcomp.compose la lb in
  let l_linked = Backend.Asm.semantics ~symbols linked in
  let t_comp =
    estimate_ns "hcomp" (fun () ->
        ignore (Driver.Runners.run_a_level composed ~fuel:10_000_000 q))
  in
  let t_link =
    estimate_ns "linked" (fun () ->
        ignore (Driver.Runners.run_a_level l_linked ~fuel:10_000_000 q))
  in
  table
    [
      [ "Semantics"; "Run time (driver(50), 50 cross-module calls)" ];
      [ "Asm(A) (+) Asm(B)"; pp_ns t_comp ];
      [ "Asm(A + B)"; pp_ns t_link ];
    ];
  Format.printf
    "Both yield the same answers (Thm 3.5); the composite pays the push/pop@.bookkeeping of Fig. 5 per cross-component call.@."

(* ------------------------------------------------------------------ *)
(* Fig. 9: injp accessibility                                          *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Fig. 9: injp world accessibility (protection checking)";
  let m1 = Memory.Mem.empty in
  let m1, a = Memory.Mem.alloc m1 0 32 in
  let m1, bprot = Memory.Mem.alloc m1 0 32 in
  let f = Memory.Meminj.add a a 0 Memory.Meminj.empty in
  let w = Memory.Meminj.injp_world f m1 m1 in
  let ok_growth =
    let m1', na = Memory.Mem.alloc m1 0 8 in
    let f' = Memory.Meminj.add na na 0 f in
    Memory.Meminj.injp_acc w (Memory.Meminj.injp_world f' m1' m1')
  in
  let bad_clobber =
    let m1' =
      Option.get (Memory.Mem.store Memory.Memdata.Mint32 m1 bprot 0 (Vint 1l))
    in
    Memory.Meminj.injp_acc w (Memory.Meminj.injp_world f m1' m1)
  in
  Format.printf "lockstep allocation accepted:            %b (expected true)@."
    ok_growth;
  Format.printf "write to unmapped (protected) region:    %b (expected false)@."
    bad_clobber;
  Format.printf "injp_acc check time: %s@."
    (pp_ns (estimate_ns "injp_acc" (fun () -> ignore (Memory.Meminj.injp_acc w w))))

(* ------------------------------------------------------------------ *)
(* Figs. 10/11: the Thm 3.8 derivation                                 *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  section "Figs. 10-11: deriving the uniform convention C (Thm 3.8)";
  let out, inc = Convalg.Derive.thm_3_8 () in
  Format.printf "outgoing side: %d rewriting steps, reached C: %b@."
    (List.length out.Convalg.Derive.trace.Convalg.Derive.steps)
    out.Convalg.Derive.ok;
  Format.printf "incoming side: %d rewriting steps, reached C: %b@."
    (List.length inc.Convalg.Derive.trace.Convalg.Derive.steps)
    inc.Convalg.Derive.ok;
  Format.printf "C = %a@." Convalg.Cterm.pp Convalg.Cterm.uniform_c;
  Format.printf
    "(run `occo derive` or examples/convention_derivation.exe for the full trace)@.";
  Format.printf "derivation time: %s@."
    (pp_ns (estimate_ns "derive" (fun () -> ignore (Convalg.Derive.thm_3_8 ()))))

(* ------------------------------------------------------------------ *)
(* Fig. 13: argument-region protection in LM                           *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Fig. 13: LM separates the argument region from the source memory";
  let sg_many =
    { Memory.Mtypes.sig_args = List.init 8 (fun _ -> Memory.Mtypes.Tint);
      sig_res = Some Memory.Mtypes.Tint }
  in
  let m = Memory.Mem.empty in
  let m, fb = Memory.Mem.alloc m 0 1 in
  let q =
    { Li.cq_vf = Vptr (fb, 0); cq_sg = sg_many;
      cq_args = List.init 8 (fun i -> Vint (Int32.of_int i)); cq_mem = m }
  in
  match Iface.Callconv.cc_cl.Core.Simconv.fwd_query q with
  | None -> Format.printf "CL marshaling failed@."
  | Some (_, lq) -> (
    match Iface.Callconv.cc_lm.Core.Simconv.fwd_query lq with
    | None -> Format.printf "LM marshaling failed@."
    | Some (w, mq) -> (
      match Iface.Callconv.free_args sg_many mq.Li.mq_mem mq.Li.mq_sp with
      | None -> Format.printf "free_args failed@."
      | Some mbar -> (
        match mq.Li.mq_sp with
        | Vptr (b, _) -> (
          Format.printf
            "argument region readable at M level:         %b (expected true)@."
            (Memory.Mem.load Memory.Memdata.Mint32 mq.Li.mq_mem b 0 <> None);
          Format.printf
            "argument region readable at L level (m-bar): %b (expected false)@."
            (Memory.Mem.load Memory.Memdata.Mint32 mbar b 0 <> None);
          Format.printf
            "source store into the args region blocked:   %b (expected true)@."
            (Memory.Mem.store Memory.Memdata.Mint32 mbar b 0 (Vint 0l) = None);
          match
            Iface.Callconv.mix w.Iface.Callconv.lm_sg w.Iface.Callconv.lm_sp
              w.Iface.Callconv.lm_mem mbar
          with
          | Some m' ->
            Format.printf
              "mix restores the region (first stack arg):   %s (expected 6)@."
              (match Memory.Mem.load Memory.Memdata.Mint32 m' b 0 with
              | Some (Vint n) -> Int32.to_string n
              | _ -> "?")
          | None -> Format.printf "mix failed@.")
        | _ -> Format.printf "no stack pointer@.")))

(* ------------------------------------------------------------------ *)
(* Compilation and execution benchmarks                                *)
(* ------------------------------------------------------------------ *)

let bench_pipeline () =
  section "Whole-pipeline benchmarks (workload: sort+fib+checksum)";
  let t_compile =
    estimate_ns "compile" (fun () -> ignore (Driver.Compiler.compile (workload ())))
  in
  let t_compile_o0 =
    estimate_ns "compile-O0" (fun () ->
        ignore (Driver.Compiler.compile ~options:Driver.Compiler.no_optims (workload ())))
  in
  let src = Cfrontend.Clight.semantics ~symbols:(workload_symbols ()) (workload ()) in
  let asm =
    Backend.Asm.semantics ~symbols:(workload_symbols ()) (workload_arts ()).Driver.Compiler.asm
  in
  let t_src =
    estimate_ns "interp-clight" (fun () ->
        ignore (Driver.Runners.run_c_level src ~fuel:10_000_000 (workload_query ())))
  in
  let t_asm =
    estimate_ns "interp-asm" (fun () ->
        ignore (Driver.Runners.run_a_level asm ~fuel:10_000_000 (workload_query ())))
  in
  (* Feed the whole-pipeline numbers into the shared registry so they
     land in BENCH_pipeline.json next to the per-pass histograms. Gauges
     use microseconds, like the pass histograms ([*_us]). *)
  (* Decode-cache effectiveness of the direct-threaded interpreter: the
     repeated interp-asm runs above hit the per-function decode cache
     after the first, so the rate should sit near 1.0. Exported as a
     dimensionless gauge so CI can assert the cache is actually wired
     in, not silently bypassed. *)
  let dc_lookups, dc_misses = Backend.Asm.decode_cache_stats () in
  let dc_hit_rate =
    if dc_lookups = 0 then 0.
    else float_of_int (dc_lookups - dc_misses) /. float_of_int dc_lookups
  in
  Obs.with_enabled (fun () ->
      Obs.Metrics.set_gauge "bench.compile_us" (t_compile /. 1e3);
      Obs.Metrics.set_gauge "bench.compile_O0_us" (t_compile_o0 /. 1e3);
      Obs.Metrics.set_gauge "bench.interp_clight_us" (t_src /. 1e3);
      Obs.Metrics.set_gauge "bench.interp_asm_us" (t_asm /. 1e3);
      Obs.Metrics.set_gauge "asm.decode_cache.hit_rate" dc_hit_rate);
  table
    [
      [ "Measurement"; "Time" ];
      [ "full compilation (17 passes)"; pp_ns t_compile ];
      [ "compilation without optional passes"; pp_ns t_compile_o0 ];
      [ "Clight interpretation of the workload"; pp_ns t_src ];
      [ "Asm interpretation (through convention C)"; pp_ns t_asm ];
      [
        "Asm decode-cache hit rate";
        Printf.sprintf "%.1f%% (%d lookups)" (100. *. dc_hit_rate) dc_lookups;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: the effect of each optional optimization                  *)
(* ------------------------------------------------------------------ *)

let asm_size (p : Backend.Asm.program) =
  List.fold_left
    (fun acc (_, d) ->
      match d with
      | Ast.Gfun (Ast.Internal f) -> acc + Array.length f.Backend.Asm.fn_code
      | _ -> acc)
    0 p.Ast.prog_defs

(* Count the dynamic steps of an Asm run. *)
let asm_steps (p : Backend.Asm.program) q =
  let l = Backend.Asm.semantics ~symbols:(workload_symbols ()) p in
  match Driver.Runners.cc_ca.Core.Simconv.fwd_query q with
  | None -> -1
  | Some (_, aq) -> (
    match l.Core.Smallstep.init aq with
    | s0 :: _ ->
      let rec go n s =
        if n > 10_000_000 then n
        else
          match l.Core.Smallstep.final s with
          | Some _ -> n
          | None -> (
            match l.Core.Smallstep.step s with
            | (_, s') :: _ -> go (n + 1) s'
            | [] -> n)
      in
      go 0 s0
    | [] -> -1)

let ablation () =
  section
    "Ablation: optional passes of Table 3 (code size and dynamic steps on \
     the workload)";
  let variants =
    let base = Driver.Compiler.all_optims in
    [
      ("all optimizations", base);
      ("no Tailcall", { base with Driver.Compiler.opt_tailcall = false });
      ("no Inlining", { base with Driver.Compiler.opt_inlining = false });
      ("no Constprop", { base with Driver.Compiler.opt_constprop = false });
      ("no CSE", { base with Driver.Compiler.opt_cse = false });
      ("no Deadcode", { base with Driver.Compiler.opt_deadcode = false });
      ("none (-O0)", Driver.Compiler.no_optims);
    ]
  in
  let rows =
    List.map
      (fun (name, options) ->
        match Driver.Compiler.compile ~options (workload ()) with
        | Ok arts ->
          let size = asm_size arts.Driver.Compiler.asm in
          let steps = asm_steps arts.Driver.Compiler.asm (workload_query ()) in
          [ name; string_of_int size; string_of_int steps ]
        | Error e -> [ name; "error: " ^ e; "-" ])
      variants
  in
  table ([ "Variant"; "Asm instructions"; "Dynamic steps" ] :: rows);
  Format.printf
    "All variants compute the same answer (checked by the no-optim rows of@.the test suite); the conventions of Thm 3.8 are insensitive to the@.optional passes (paper section 3.4, tested in test_convalg).@."

(* ------------------------------------------------------------------ *)
(* The compile service's cache: cold vs warm throughput                *)
(* ------------------------------------------------------------------ *)

(* Warm rounds over the service cache, set from [main]'s [runs]
   (runs * 5 / 2, so the default keeps the historical 50). *)
let serve_warm_rounds = ref 50

(* Distinct small programs so each cold request is a genuine miss (the
   cache is content-addressed: same source would hit). *)
let serve_source i =
  Printf.sprintf
    "int f%d(int a, int b) { int i; int acc; acc = %d; for (i = 0; i < b; \
     i = i + 1) { acc = acc + a * i; } return acc; }\n\
     int main(void) { return f%d(%d, 7); }\n"
    i i i (i + 3)

let bench_serve () =
  section "Compile service: content-addressed cache, cold vs warm";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "occo-bench-cache-%d" (Unix.getpid ()))
  in
  let cache = Service.Cache.open_store dir in
  let n = 8 in
  let sources = List.init n serve_source in
  let compile_all () =
    List.iter
      (fun source ->
        match
          Service.Engine.compile_cached cache ~source ~optimize:true ()
        with
        | Ok _ -> ()
        | Error d ->
          Format.printf "bench serve: compile failed: %a@."
            Support.Diagnostics.pp d)
      sources
  in
  (* Cold: every request runs the full pipeline (and pays the atomic
     fsync'd cache writes). One-shot by nature — a repeat would hit. *)
  let t0 = Obs.now_us () in
  compile_all ();
  let cold_us = Obs.now_us () -. t0 in
  (* Warm: the same requests served from verified summary entries — the
     daemon's no-fork fast path. Sustained over many rounds. *)
  let rounds = !serve_warm_rounds in
  let t1 = Obs.now_us () in
  for _ = 1 to rounds do
    compile_all ()
  done;
  let warm_us = Obs.now_us () -. t1 in
  let cold_req_us = cold_us /. float_of_int n in
  let warm_req_us = warm_us /. float_of_int (n * rounds) in
  let cold_jps = 1e6 /. cold_req_us and warm_jps = 1e6 /. warm_req_us in
  Obs.with_enabled (fun () ->
      (* Time-like keys ride the normal bench-diff gate; the jobs/sec
         gauges are throughput (an increase is good) and get a
         permissive --key override in CI. *)
      Obs.Metrics.set_gauge "serve.cold_req_us" cold_req_us;
      Obs.Metrics.set_gauge "serve.warm_req_us" warm_req_us;
      Obs.Metrics.set_gauge "serve.jobs_per_s_cold" cold_jps;
      Obs.Metrics.set_gauge "serve.jobs_per_s_warm" warm_jps);
  table
    [
      [ "Path"; "per request"; "jobs/sec" ];
      [ "cold (full pipeline + cache write)"; pp_ns (cold_req_us *. 1e3);
        Printf.sprintf "%.0f" cold_jps ];
      [ "warm (verified summary hit)"; pp_ns (warm_req_us *. 1e3);
        Printf.sprintf "%.0f" warm_jps ];
    ];
  Format.printf "warm/cold speedup: %.1fx (gate: >= 5x)@."
    (cold_req_us /. warm_req_us);
  (* Scrub the throwaway store. *)
  let rm_all d =
    Array.iter
      (fun f ->
        try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (try Sys.readdir d with Sys_error _ -> [||])
  in
  rm_all (Filename.concat dir "quarantine");
  rm_all dir;
  (try Unix.rmdir (Filename.concat dir "quarantine") with Unix.Unix_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

(* The perf trajectory across PRs: a snapshot of the shared metrics
   registry (per-pass duration histograms recorded by the driver, plus
   the bench.* gauges above), stamped with run provenance under "meta"
   — which `occo bench-diff` ignores. Schema documented in
   EXPERIMENTS.md. *)

let run_meta () =
  let line_of cmd =
    try
      let ic = Unix.open_process_in cmd in
      let l = try input_line ic with End_of_file -> "" in
      (match Unix.close_process_in ic with _ -> ());
      if l = "" then None else Some l
    with _ -> None
  in
  let git_rev =
    Option.value ~default:"unknown"
      (line_of "git rev-parse --short HEAD 2>/dev/null")
  in
  let timestamp =
    let t = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
      t.Unix.tm_sec
  in
  let hostname = try Unix.gethostname () with _ -> "unknown" in
  Obs.Json.Obj
    [
      ("git_rev", Obs.Json.Str git_rev);
      ("timestamp_utc", Obs.Json.Str timestamp);
      ("hostname", Obs.Json.Str hostname);
      ("ocaml_version", Obs.Json.Str Sys.ocaml_version);
    ]

let emit_bench_json () =
  let path = "BENCH_pipeline.json" in
  let j =
    match Obs.Metrics.dump_json () with
    | Obs.Json.Obj kvs -> Obs.Json.Obj (("meta", run_meta ()) :: kvs)
    | j -> j
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." path

(** Run the whole harness. [runs] is the sampling depth: the number of
    instrumented pipeline runs feeding the per-pass histograms, and —
    scaled proportionally — the Bechamel quota per estimate and the
    service-cache warm rounds. The default (20) reproduces the
    historical sampling exactly; a small [runs] is a fast CI smoke, a
    large one a higher-confidence dev-box run. *)
let main ?(runs = 20) () : int =
  let runs = max 1 runs in
  pass_hist_runs := runs;
  sample_quota_s := 0.02 *. float_of_int runs;
  serve_warm_rounds := max 1 (runs * 5 / 2);
  Format.printf "CompCertO-in-OCaml evaluation harness (%d sampling runs)@."
    runs;
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  fig1 ();
  fig4 ();
  fig5 ();
  fig9 ();
  fig10 ();
  fig13 ();
  bench_pipeline ();
  ablation ();
  bench_serve ();
  emit_bench_json ();
  Format.printf "@.Done.@.";
  0
