(** Adversarial partner synthesis (the When-Good-Components-Go-Bad
    scenario, after Abate et al.'s RSC^DC).

    PR 2's chaos oracles attack a component from the {e environment}
    side of the query/reply boundary. Here the adversary is a whole
    {e component}: an Asm-level LTS that is linked against a correct
    compiled component through horizontal composition [⊕]
    ({!Core.Hcomp.compose}) and exercised through the same language
    interface [A] as any honestly compiled partner.

    The synthesizer is a back-translation: given the shared symbol
    table, the partner's exported primitives, and an interaction-trace
    prefix recorded from a well-behaved run (the {!Driver.Io_oracle}
    call log), it produces an LTS that replays the recorded replies
    faithfully — register-file for register-file, exactly as the
    [A]-level oracle axiomatization would answer — and then, at a chosen
    activation, goes rogue in one of several modes. Faithfulness of the
    replay prefix is what makes the campaign meaningful: up to the rogue
    point the composite run is indistinguishable from the recorded one
    (checked per-trial by {!Campaign}), so any detection is attributable
    to the rogue behavior alone.

    The corruption vocabulary is shared with
    {!Faultinject.Chaos_oracle} ([clobber_callee_saves], [wild_pointer],
    [set_result]), so the environment-level and component-level attack
    matrices line up mode-for-mode. *)

open Support
open Memory.Mtypes
open Memory.Values
open Target
open Iface
open Iface.Li
module Chaos = Faultinject.Chaos_oracle
module Io = Driver.Io_oracle

(** How a synthesized partner misbehaves after its replay prefix. *)
type mode =
  | Replay_faithful  (** never goes rogue: the back-translation control *)
  | Wrong_result  (** perturb the recorded result value by one *)
  | Clobber_callee_save  (** trash the callee-save registers in the reply *)
  | Wild_pointer  (** return a pointer into an unshared (unallocated) block *)
  | Call_storm
      (** re-entrantly call back into the correct component — a call
          outside the partner's declared (empty) import set *)
  | Silent_divergence  (** never answer: spin internally forever *)
  | Early_halt  (** give up: answer with an undefined result value *)

let all_modes =
  [ Replay_faithful; Wrong_result; Clobber_callee_save; Wild_pointer;
    Call_storm; Silent_divergence; Early_halt ]

let rogue_modes = List.filter (fun m -> m <> Replay_faithful) all_modes

let mode_name = function
  | Replay_faithful -> "replay-faithful"
  | Wrong_result -> "wrong-result"
  | Clobber_callee_save -> "clobber-callee-save"
  | Wild_pointer -> "wild-pointer"
  | Call_storm -> "call-storm"
  | Silent_divergence -> "silent-divergence"
  | Early_halt -> "early-halt"

let mode_of_name s = List.find_opt (fun m -> mode_name m = s) all_modes

(** {1 The A-level calling convention, partner side}

    The reply shape of a well-behaved partner, identical to the
    [A]-level oracle of {!Driver.Io_oracle}: result in the result
    register, [PC := RA], everything else (registers and memory)
    untouched. *)

let convention_reply ~(sg : signature) ~(res : value) (q : a_query) : a_reply =
  let rs' =
    q.aq_rs
    |> Pregfile.set (Mreg (Conventions.loc_result sg)) res
    |> Pregfile.set PC (Pregfile.get RA q.aq_rs)
  in
  { ar_rs = rs'; ar_mem = q.aq_mem }

(** Decode the integer arguments of a query per the convention's
    argument registers ([None] if any argument is not an integer in a
    register — the corpus partners are integer-only). *)
let decode_int_args ~(sg : signature) (rs : Pregfile.t) : int32 list option =
  List.fold_right
    (fun l acc ->
      match (l, acc) with
      | Locations.R r, Some ns -> (
        match Pregfile.get (Mreg r) rs with
        | Vint n -> Some (n :: ns)
        | _ -> None)
      | _ -> None)
    (Conventions.loc_arguments sg) (Some [])

(** The blocks of the partner's exported symbols under the shared symbol
    table — the domain of the synthesized LTS, and the import set of the
    correct component. *)
let export_table ~(symbols : Ident.t list) (prims : Io.primitive list) :
    (block * Io.primitive) list =
  let symtbl, _ = Genv.make_symtbl symbols in
  List.filter_map
    (fun p ->
      Option.map
        (fun b -> (b, p))
        (Ident.Map.find_opt (Ident.intern p.Io.prim_name) symtbl))
    prims

(** {1 States of a synthesized partner}

    Partners compute instantly: an activation is born knowing its answer
    ([Answer], popped by the composite on the next step), except for the
    rogue states — [Storm] makes one re-entrant call before answering,
    [Spin] diverges silently. *)

type pstate =
  | Answer of a_reply
  | Storm of { storm_q : a_query; storm_reply : a_reply }
  | Spin

(** A synthesized partner: the LTS plus introspection for the campaign
    report. The LTS carries a mutable activation counter, so an instance
    is {b single-use}: synthesize a fresh partner per run. *)
type t = {
  p_lts : (pstate, a_query, a_reply, a_query, a_reply) Core.Smallstep.lts;
  p_activations : unit -> int;  (** partner activations so far *)
  p_rogue_fired : unit -> bool;  (** the rogue activation was reached *)
}

(** [synthesize ~symbols ~prims ~entry ~trace ~mode ~rogue_at ()]
    back-translates the recorded [trace] into a partner LTS exporting
    [prims] under the shared symbol table. Activation [i] (0-based)
    replays [trace]'s reply [i]; activations beyond the recorded prefix
    fall back to the primitive's honest implementation (so re-entrant
    storms still terminate). Under any rogue [mode], activation
    [rogue_at] misbehaves; every other activation is faithful. [entry]
    is the correct component's entry symbol, the target of
    [Call_storm]'s undeclared re-entrant call. *)
let synthesize ~(symbols : Ident.t list) ~(prims : Io.primitive list)
    ~(entry : Ident.t) ~(trace : Io.log_entry list) ~(mode : mode)
    ~(rogue_at : int) () : t =
  let symtbl, _ = Genv.make_symtbl symbols in
  let exports = export_table ~symbols prims in
  let entry_block = Ident.Map.find_opt entry symtbl in
  let trace_arr = Array.of_list trace in
  let count = ref 0 in
  let rogue_fired = ref false in
  let find_export pc =
    match pc with Vptr (b, 0) -> List.assoc_opt b exports | _ -> None
  in
  (* Replay the recorded reply only while the run is still on-script:
     same callee, same arguments as the recorded activation. Once the
     actual call diverges from the trace (e.g. downstream of a rogue
     perturbation), the honest implementation is the back-translation's
     natural continuation — replaying recorded results against different
     arguments would silently erase the perturbation. *)
  let recorded_result (p : Io.primitive) i (q : a_query) : int32 =
    let args = decode_int_args ~sg:p.Io.prim_sig q.aq_rs in
    let fallback () =
      match args with Some a -> p.Io.prim_impl a | None -> 0l
    in
    if i < Array.length trace_arr then (
      let e = trace_arr.(i) in
      if e.Io.call_name = p.Io.prim_name && args = Some e.Io.call_args then
        e.Io.call_res
      else fallback ())
    else fallback ()
  in
  let init q =
    match find_export (Pregfile.get PC q.aq_rs) with
    | None -> []
    | Some p ->
      let i = !count in
      incr count;
      let sg = p.Io.prim_sig in
      let res = recorded_result p i q in
      let well = convention_reply ~sg ~res:(Vint res) q in
      if mode = Replay_faithful || i <> rogue_at then [ Answer well ]
      else begin
        rogue_fired := true;
        match mode with
        | Replay_faithful -> [ Answer well ]
        | Wrong_result ->
          [ Answer (convention_reply ~sg ~res:(Vint (Int32.add res 1l)) q) ]
        | Clobber_callee_save ->
          [ Answer { well with ar_rs = Chaos.clobber_callee_saves well.ar_rs } ]
        | Wild_pointer ->
          [ Answer (convention_reply ~sg ~res:(Chaos.wild_pointer q.aq_mem) q) ]
        | Early_halt -> [ Answer (convention_reply ~sg ~res:Vundef q) ]
        | Silent_divergence -> [ Spin ]
        | Call_storm -> (
          match entry_block with
          | None -> [ Answer well ]
          | Some eb ->
            let storm_q =
              { aq_rs = Pregfile.set PC (Vptr (eb, 0)) q.aq_rs;
                aq_mem = q.aq_mem }
            in
            [ Storm { storm_q; storm_reply = well } ])
      end
  in
  let lts =
    {
      Core.Smallstep.name = Printf.sprintf "partner[%s]" (mode_name mode);
      dom = (fun q -> find_export (Pregfile.get PC q.aq_rs) <> None);
      init;
      step = (fun s -> match s with Spin -> [ (Core.Events.e0, Spin) ] | _ -> []);
      at_external =
        (fun s -> match s with Storm { storm_q; _ } -> Some storm_q | _ -> None);
      after_external =
        (fun s _r ->
          match s with Storm { storm_reply; _ } -> [ Answer storm_reply ] | _ -> []);
      final = (fun s -> match s with Answer r -> Some r | _ -> None);
    }
  in
  {
    p_lts = lts;
    p_activations = (fun () -> !count);
    p_rogue_fired = (fun () -> !rogue_fired);
  }
