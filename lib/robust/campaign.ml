(** The compromised-component campaign.

    For each trial, a correct compiled component is linked (via
    {!Core.Hcomp.compose}) against a partner synthesized by
    {!Partner} — faithful up to a seeded rogue activation, adversarial
    after it — and run on the differential harness while the
    {!Property} monitors watch the boundary. The campaign tallies a
    partner-mode × property {b survival matrix}: which safety
    properties caught which class of compromise.

    Detection has three independent sources, in the order a triager
    would trust them:

    - {b property monitors}: a boundary obligation was violated
      (imports, callee-save, memory, welltyped);
    - {b diagnosed outcome}: the composite run ended in a structured
      non-final outcome (stuck, out of fuel, …) — the harness noticed
      {e something} even if no monitor named it;
    - {b divergence}: the run completed but its answer does not
      mutually refine the recorded reference.

    Trial [i] of a seeded campaign is deterministic in [(seed, i)]
    alone — partner mode and corpus program cycle with [i], the rogue
    activation is drawn from an RNG derived from [seed] and [i] — so
    the supervised runner can judge trials in isolated worker
    processes, in any completion order, and still agree with the
    in-process runner on what trial [i] is (the same design as
    {!Faultinject.Campaign}). Every trial ends in a classified verdict;
    a trial whose machinery raises is itself recorded as a failed
    expectation, never propagated. *)

open Support
module Diag = Support.Diagnostics
module Io = Driver.Io_oracle
module Sup = Harness.Supervisor

(** {1 The corpus}

    Closed loops over partner calls where {e every} partner result
    feeds the final answer through injective (affine, factor ≥ 1)
    updates — so a wrong result at {e any} activation provably
    diverges the final answer, and the wrong-result mode can never hide
    behind an unused return value. *)

let corpus : (string * string * (unit -> Io.primitive list)) list =
  let open Memory.Mtypes in
  let sg1 = { sig_args = [ Tint ]; sig_res = Some Tint } in
  let sg2 = { sig_args = [ Tint; Tint ]; sig_res = Some Tint } in
  [
    ( "step-mix",
      "int p_step(int x);\n\
       int p_mix(int a, int b);\n\
       int main(void) {\n\
      \  int acc = 1;\n\
      \  for (int i = 0; i < 4; i++) {\n\
      \    int s = p_step(i + acc);\n\
      \    acc = p_mix(acc, s);\n\
      \  }\n\
      \  return acc;\n\
       }\n",
      fun () ->
        [
          { Io.prim_name = "p_step"; prim_sig = sg1;
            prim_impl =
              (fun args ->
                match args with
                | [ x ] -> Int32.add (Int32.mul 2l x) 3l
                | _ -> 0l) };
          { Io.prim_name = "p_mix"; prim_sig = sg2;
            prim_impl =
              (fun args ->
                match args with
                | [ a; b ] -> Int32.sub (Int32.mul 3l a) b
                | _ -> 0l) };
        ] );
    ( "query-fold",
      "int p_query(int k);\n\
       int p_fold(int acc, int v);\n\
       int main(void) {\n\
      \  int total = 5;\n\
      \  total = p_fold(total, p_query(0));\n\
      \  total = p_fold(total, p_query(1));\n\
      \  total = p_fold(total, p_query(2));\n\
      \  return total;\n\
       }\n",
      fun () ->
        [
          { Io.prim_name = "p_query"; prim_sig = sg1;
            prim_impl =
              (fun args ->
                match args with
                | [ k ] -> Int32.add (Int32.mul 7l k) 5l
                | _ -> 0l) };
          { Io.prim_name = "p_fold"; prim_sig = sg2;
            prim_impl =
              (fun args ->
                match args with
                | [ a; v ] -> Int32.add (Int32.mul 2l a) v
                | _ -> 0l) };
        ] );
  ]

let default_fuel = 120_000

(** {1 Compiling the corpus and recording reference traces} *)

type compiled = {
  cc_name : string;
  cc_symbols : Ident.t list;
  cc_asm : Backend.Asm.program;
  cc_entry : Ident.t;
  cc_prims : Io.primitive list;
  cc_query : Iface.Li.c_query;
  cc_ref : Driver.Runners.c_outcome;  (** the well-behaved reference run *)
  cc_trace : Io.log_entry list;  (** its partner-call log, in order *)
}

(** Compile each corpus program and record its well-behaved interaction
    trace: the compiled Asm run against the [A]-level oracle
    implementation of its partner primitives, with the call log
    captured. This log is the prefix the synthesized partners
    back-translate. *)
let compile_corpus ~fuel () : (compiled list, Diag.t) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (name, src, prims_of) :: rest -> (
      match Driver.Compiler.compile_source_diag src with
      | Error f -> Error f.Driver.Compiler.fail_diag
      | Ok arts -> (
        let p = arts.Driver.Compiler.clight1 in
        let symbols = Iface.Ast.prog_defs_names p in
        let prims = prims_of () in
        match Driver.Runners.main_query ~symbols ~defs:p () with
        | None ->
          Error
            (Diag.make ~phase:Diag.Campaign ~kind:Diag.Internal_error
               ~context:[ ("program", name) ]
               "cannot build the main query for corpus program %s" name)
        | Some q -> (
          let record, read = Io.make_log () in
          let oracle = Io.a_oracle ~symbols prims record in
          match
            Driver.Runners.run_a_level
              (Backend.Asm.semantics ~symbols arts.Driver.Compiler.asm)
              ~fuel ~oracle q
          with
          | Error e ->
            Error
              (Diag.make ~phase:Diag.Campaign ~kind:Diag.Marshal_failure
                 ~context:[ ("program", name) ]
                 "reference run of %s failed: %s" name e)
          | Ok ref_out -> (
            match read () with
            | [] ->
              Error
                (Diag.make ~phase:Diag.Campaign ~kind:Diag.Internal_error
                   ~context:[ ("program", name) ]
                   "corpus program %s never calls its partner" name)
            | trace ->
              go
                ({ cc_name = name; cc_symbols = symbols;
                   cc_asm = arts.Driver.Compiler.asm;
                   cc_entry = p.Iface.Ast.prog_main; cc_prims = prims;
                   cc_query = q; cc_ref = ref_out; cc_trace = trace }
                :: acc)
                rest))))
  in
  go [] corpus

(** {1 Trials} *)

type verdict = Detected | Undetected

let verdict_name = function Detected -> "detected" | Undetected -> "undetected"

type trial_result = {
  t_index : int;
  t_program : string;
  t_mode : Partner.mode;
  t_rogue_at : int;  (** 0-based activation where the partner went rogue *)
  t_outcome : string;  (** printable classification of the composed run *)
  t_props : Property.prop list;  (** distinct properties violated *)
  t_detected_by : string list;  (** every detection source that fired *)
  t_prefix_ok : bool;
      (** the replayed call prefix matched the recorded trace (the
          back-translation sanity check) *)
  t_verdict : verdict;
}

let classify_outcome (o : Driver.Runners.c_outcome) : string * bool =
  match o with
  | Core.Smallstep.Final _ -> ("final", false)
  | Core.Smallstep.Goes_wrong (_, why) -> ("goes-wrong: " ^ why, true)
  | Core.Smallstep.Env_stuck _ -> ("env-stuck", true)
  | Core.Smallstep.Env_violation (_, why) -> ("env-violation: " ^ why, true)
  | Core.Smallstep.Refused -> ("refused", true)
  | Core.Smallstep.Out_of_fuel _ -> ("out-of-fuel", true)

(* Does the observed C1→C2 call sequence agree with the recorded trace
   on the first [upto] activations (names and decoded arguments)? *)
let prefix_matches ~(trace : Io.log_entry list) ~(calls : Property.call list)
    ~(upto : int) : bool =
  let rec go k ts cs =
    k >= upto
    ||
    match (ts, cs) with
    | t :: ts', c :: cs' ->
      t.Io.call_name = c.Property.c_name
      && c.Property.c_args = Some t.Io.call_args
      && go (k + 1) ts' cs'
    | _ -> false
  in
  go 0 trace calls

(** Run trial [i]: link the correct component against the synthesized
    partner, monitor the boundary, classify. Deterministic in
    [(seed, i)]. Never raises. *)
let try_partner ~(compiled : compiled list) ~fuel ~seed i : trial_result =
  let n_modes = List.length Partner.all_modes in
  let mode = List.nth Partner.all_modes (i mod n_modes) in
  let cp = List.nth compiled (i mod List.length compiled) in
  let rng = Random.State.make [| seed; 8191 * (i + 1) |] in
  let n_act = List.length cp.cc_trace in
  let rogue_at = Random.State.int rng n_act in
  try
    let partner =
      Partner.synthesize ~symbols:cp.cc_symbols ~prims:cp.cc_prims
        ~entry:cp.cc_entry ~trace:cp.cc_trace ~mode ~rogue_at ()
    in
    let exports =
      List.map
        (fun (b, p) -> (b, (p.Io.prim_name, p.Io.prim_sig)))
        (Partner.export_table ~symbols:cp.cc_symbols cp.cc_prims)
    in
    let mon = Property.monitor ~exports ~partner_imports:[] () in
    let composed =
      Core.Hcomp.compose ~observe:mon.Property.m_observe
        (Backend.Asm.semantics ~symbols:cp.cc_symbols cp.cc_asm)
        partner.Partner.p_lts
    in
    let outcome, diagnosed, diverged =
      match Driver.Runners.run_a_level composed ~fuel cp.cc_query with
      | Error e -> ("marshal: " ^ e, true, false)
      | Ok o ->
        let name, diagnosed = classify_outcome o in
        let diverged =
          (not diagnosed)
          && not
               (Driver.Runners.outcome_refines cp.cc_ref o
               && Driver.Runners.outcome_refines o cp.cc_ref)
        in
        (name, diagnosed, diverged)
    in
    let violations = mon.Property.m_violations () in
    let props = Property.violated violations in
    let calls = mon.Property.m_calls () in
    let prefix_ok =
      let upto =
        if mode = Partner.Replay_faithful then
          (* the control must replay the whole trace, call for call *)
          max (List.length cp.cc_trace) (List.length calls)
        else rogue_at
      in
      prefix_matches ~trace:cp.cc_trace ~calls ~upto
    in
    let detected_by =
      List.map (fun p -> "property:" ^ Property.prop_name p) props
      @ (if diagnosed then [ "diagnosed:" ^ outcome ] else [])
      @ if diverged then [ "divergence" ] else []
    in
    {
      t_index = i;
      t_program = cp.cc_name;
      t_mode = mode;
      t_rogue_at = rogue_at;
      t_outcome = outcome;
      t_props = props;
      t_detected_by = detected_by;
      t_prefix_ok = prefix_ok;
      t_verdict = (if detected_by <> [] then Detected else Undetected);
    }
  with e ->
    (* Campaign machinery bug: recorded as a trial that fails its
       expectation, never an escaped exception. *)
    {
      t_index = i;
      t_program = cp.cc_name;
      t_mode = mode;
      t_rogue_at = rogue_at;
      t_outcome = "uncaught exception: " ^ Printexc.to_string e;
      t_props = [];
      t_detected_by = [];
      t_prefix_ok = false;
      t_verdict = Undetected;
    }

(** What each partner mode must produce. The faithful control must be
    indistinguishable from the recorded run (no detection, full-prefix
    match); every rogue mode must be detected, with its replay prefix
    intact up to the rogue point. An "uncaught exception" outcome fails
    both arms. *)
let expectation (t : trial_result) : bool =
  match t.t_mode with
  | Partner.Replay_faithful ->
    t.t_verdict = Undetected && t.t_prefix_ok && t.t_outcome = "final"
  | _ -> t.t_verdict = Detected && t.t_prefix_ok

(** {1 The survival matrix} *)

type cell = { mutable tried : int; mutable detected : int; mutable expected : int }

type report = {
  rb_seed : int;
  rb_requested : int;
  rb_trials : trial_result list;
  rb_matrix : (Partner.mode * (Property.prop * int) list) list;
      (** per mode: how many trials each property caught *)
  rb_totals : (Partner.mode * cell) list;
}

let assemble ~seed ~requested ~(results : trial_result list) : report =
  let of_mode m = List.filter (fun t -> t.t_mode = m) results in
  {
    rb_seed = seed;
    rb_requested = requested;
    rb_trials = results;
    rb_matrix =
      List.map
        (fun m ->
          let ts = of_mode m in
          ( m,
            List.map
              (fun p ->
                ( p,
                  List.length (List.filter (fun t -> List.mem p t.t_props) ts)
                ))
              Property.all_props ))
        Partner.all_modes;
    rb_totals =
      List.map
        (fun m ->
          let ts = of_mode m in
          ( m,
            {
              tried = List.length ts;
              detected =
                List.length (List.filter (fun t -> t.t_verdict = Detected) ts);
              expected = List.length (List.filter expectation ts);
            } ))
        Partner.all_modes;
  }

(** Acceptance: every trial met its mode's expectation, and every
    partner mode was exercised at least once. *)
let survival_ok (rp : report) : bool =
  rp.rb_trials <> []
  && List.for_all expectation rp.rb_trials
  && List.for_all (fun (_, c) -> c.tried > 0) rp.rb_totals

(** The weaker check for resumed campaigns: nothing judged {e this} run
    failed its expectation, but modes fully skipped by the journal need
    not have been re-exercised. *)
let partial_survival_ok (rp : report) : bool =
  List.for_all expectation rp.rb_trials

let undetected_rogues (rp : report) : trial_result list =
  List.filter
    (fun t -> t.t_mode <> Partner.Replay_faithful && t.t_verdict = Undetected)
    rp.rb_trials

let record_trial_metrics (t : trial_result) =
  Obs.Metrics.incr_counter "robust.partners";
  if t.t_mode <> Partner.Replay_faithful then
    Obs.Metrics.incr_counter
      (match t.t_verdict with
      | Detected -> "robust.detected"
      | Undetected -> "robust.undetected")

(* Gauges for the bench-diff regression gate: an increase in undetected
   rogue partners (or expectation failures) between runs is a
   robustness regression. *)
let record_report_metrics (rp : report) =
  Obs.Metrics.set_gauge "robust.undetected_rogues"
    (float_of_int (List.length (undetected_rogues rp)));
  Obs.Metrics.set_gauge "robust.expectation_failures"
    (float_of_int
       (List.length (List.filter (fun t -> not (expectation t)) rp.rb_trials)))

(** {1 Running}

    In-process and supervised runners; both produce trial [i] from
    [(seed, i)] alone. *)

let run ?(fuel = default_fuel) ?(on_result = fun _ -> ()) ~seed ~partners () :
    (report, Diag.t) result =
  match compile_corpus ~fuel () with
  | Error d -> Error d
  | Ok compiled ->
    let results =
      List.init partners (fun i ->
          let t = try_partner ~compiled ~fuel ~seed i in
          record_trial_metrics t;
          on_result t;
          t)
    in
    let rp = assemble ~seed ~requested:partners ~results in
    record_report_metrics rp;
    Ok rp

(** The job the [--inject-hang] smoke test adds: a partner worker that
    never terminates, so the supervisor's watchdog must classify it as
    a timeout. (The in-campaign [Silent_divergence] mode burns fuel
    {e in-process} and is diagnosed as [Out_of_fuel]; this job models
    the complementary failure, a worker the harness itself cannot
    bound.) *)
let hang_job_id = "inject-hang"

let hang_job : trial_result option Sup.job =
  {
    Sup.job_id = hang_job_id;
    job_class = "inject-hang";
    job_run =
      (fun ~attempt:_ ->
        while true do
          ignore (Sys.opaque_identity 0)
        done;
        Ok None);
    job_degraded = None;
  }

(** The supervised campaign: one forked worker per trial, so a partner
    that wedges or bombs the heap is a [Timed_out]/[Crashed] outcome —
    a classified verdict at the supervisor layer — rather than the end
    of the campaign. Returns the report over the trials that completed,
    plus the raw supervisor outcomes. *)
let run_supervised ?(fuel = default_fuel) ?(on_result = fun _ -> ())
    ?(inject_hang = false) ~(cfg : Sup.config) ~seed ~partners () :
    (report * trial_result option Sup.outcome list, Diag.t) result =
  match compile_corpus ~fuel () with
  | Error d -> Error d
  | Ok compiled ->
    let jobs =
      List.init partners (fun i ->
          {
            Sup.job_id = Printf.sprintf "partner-%04d" i;
            job_class = "compromise-partner";
            job_run =
              (fun ~attempt:_ -> Ok (Some (try_partner ~compiled ~fuel ~seed i)));
            job_degraded = None;
          })
      @ if inject_hang then [ hang_job ] else []
    in
    let results = ref [] in
    let on_outcome (o : trial_result option Sup.outcome) =
      match o.Sup.o_payload with
      | Some (Some t) ->
        record_trial_metrics t;
        on_result t;
        results := t :: !results
      | _ -> ()
    in
    let outcomes = Sup.run ~on_outcome cfg jobs in
    let results =
      List.sort (fun a b -> compare a.t_index b.t_index) !results
    in
    let rp = assemble ~seed ~requested:partners ~results in
    record_report_metrics rp;
    Ok (rp, outcomes)

(** {1 Multi-partner composition}

    The linking scenario of the paper is n-ary: a component's
    environment is usually {e several} other components, linked by
    iterated [⊕]. A multi-partner trial splits the corpus program's
    primitives between {e two} synthesized partners — one faithful
    control and one rogue — links the pair with {!Core.Hcomp.compose_all}
    (they share the {!Partner.pstate} state type), and composes the
    result with the correct compiled component. The survival question
    sharpens: with an honest co-resident partner answering half the
    calls, does every rogue mode still get caught, and is the faithful
    pair still indistinguishable from the reference run? *)

let prim_names prims = List.map (fun p -> p.Io.prim_name) prims

(** The sub-trace a partner exporting [prims] is responsible for:
    exactly the recorded calls to its primitives, in global order —
    which is the order its own activation counter will see them. *)
let partner_trace prims (trace : Io.log_entry list) : Io.log_entry list =
  let names = prim_names prims in
  List.filter (fun e -> List.mem e.Io.call_name names) trace

(** The global trace index of the rogue partner's [local]-th activation
    (its rogue point), for the whole-composite prefix check. *)
let global_rogue_index ~rogue_prims ~(trace : Io.log_entry list) ~local : int =
  let names = prim_names rogue_prims in
  let rec go k local = function
    | [] -> k
    | e :: rest ->
      if List.mem e.Io.call_name names then
        if local = 0 then k else go (k + 1) (local - 1) rest
      else go (k + 1) local rest
  in
  go 0 local trace

(** Run multi-partner trial [i]: the corpus program linked against a
    faithful partner and a rogue one (mode cycling with [i], the rogue
    primitive and activation drawn from the [(seed, i)] RNG).
    [Replay_faithful] trials make both partners faithful — the control
    arm. Deterministic in [(seed, i)]; never raises. *)
let try_multi ~(compiled : compiled list) ~fuel ~seed i : trial_result =
  let n_modes = List.length Partner.all_modes in
  let mode = List.nth Partner.all_modes (i mod n_modes) in
  let cp = List.nth compiled (i mod List.length compiled) in
  let rng = Random.State.make [| seed; 24593 * (i + 1) |] in
  let rogue_idx = Random.State.int rng (List.length cp.cc_prims) in
  let rogue_prims = [ List.nth cp.cc_prims rogue_idx ] in
  let faithful_prims =
    List.filteri (fun j _ -> j <> rogue_idx) cp.cc_prims
  in
  let rogue_trace = partner_trace rogue_prims cp.cc_trace in
  let rogue_local_at =
    if rogue_trace = [] then 0
    else Random.State.int rng (List.length rogue_trace)
  in
  let global_rogue_at =
    global_rogue_index ~rogue_prims ~trace:cp.cc_trace ~local:rogue_local_at
  in
  try
    let faithful =
      Partner.synthesize ~symbols:cp.cc_symbols ~prims:faithful_prims
        ~entry:cp.cc_entry
        ~trace:(partner_trace faithful_prims cp.cc_trace)
        ~mode:Partner.Replay_faithful ~rogue_at:0 ()
    in
    let rogue =
      Partner.synthesize ~symbols:cp.cc_symbols ~prims:rogue_prims
        ~entry:cp.cc_entry ~trace:rogue_trace ~mode ~rogue_at:rogue_local_at
        ()
    in
    (* The two partners become one environment component; their domains
       are disjoint by construction (distinct primitive symbols). *)
    let pair =
      Core.Hcomp.compose_all [| faithful.Partner.p_lts; rogue.Partner.p_lts |]
    in
    let exports =
      List.map
        (fun (b, p) -> (b, (p.Io.prim_name, p.Io.prim_sig)))
        (Partner.export_table ~symbols:cp.cc_symbols cp.cc_prims)
    in
    let mon = Property.monitor ~exports ~partner_imports:[] () in
    let composed =
      Core.Hcomp.compose ~observe:mon.Property.m_observe
        (Backend.Asm.semantics ~symbols:cp.cc_symbols cp.cc_asm)
        pair
    in
    let outcome, diagnosed, diverged =
      match Driver.Runners.run_a_level composed ~fuel cp.cc_query with
      | Error e -> ("marshal: " ^ e, true, false)
      | Ok o ->
        let name, diagnosed = classify_outcome o in
        let diverged =
          (not diagnosed)
          && not
               (Driver.Runners.outcome_refines cp.cc_ref o
               && Driver.Runners.outcome_refines o cp.cc_ref)
        in
        (name, diagnosed, diverged)
    in
    let violations = mon.Property.m_violations () in
    let props = Property.violated violations in
    let calls = mon.Property.m_calls () in
    let prefix_ok =
      let upto =
        if mode = Partner.Replay_faithful then
          max (List.length cp.cc_trace) (List.length calls)
        else global_rogue_at
      in
      prefix_matches ~trace:cp.cc_trace ~calls ~upto
    in
    let detected_by =
      List.map (fun p -> "property:" ^ Property.prop_name p) props
      @ (if diagnosed then [ "diagnosed:" ^ outcome ] else [])
      @ if diverged then [ "divergence" ] else []
    in
    {
      t_index = i;
      t_program = cp.cc_name;
      t_mode = mode;
      t_rogue_at = global_rogue_at;
      t_outcome = outcome;
      t_props = props;
      t_detected_by = detected_by;
      t_prefix_ok = prefix_ok;
      t_verdict = (if detected_by <> [] then Detected else Undetected);
    }
  with e ->
    {
      t_index = i;
      t_program = cp.cc_name;
      t_mode = mode;
      t_rogue_at = global_rogue_at;
      t_outcome = "uncaught exception: " ^ Printexc.to_string e;
      t_props = [];
      t_detected_by = [];
      t_prefix_ok = false;
      t_verdict = Undetected;
    }

(** The multi-partner campaign, in-process (the trials are cheap: the
    expensive corpus compile happens once). *)
let run_multi ?(fuel = default_fuel) ?(on_result = fun _ -> ()) ~seed ~trials
    () : (report, Diag.t) result =
  match compile_corpus ~fuel () with
  | Error d -> Error d
  | Ok compiled ->
    let results =
      List.init trials (fun i ->
          let t = try_multi ~compiled ~fuel ~seed i in
          Obs.Metrics.incr_counter "robust.multi.trials";
          if t.t_mode <> Partner.Replay_faithful then
            Obs.Metrics.incr_counter
              (match t.t_verdict with
              | Detected -> "robust.multi.detected"
              | Undetected -> "robust.multi.undetected");
          on_result t;
          t)
    in
    let rp = assemble ~seed ~requested:trials ~results in
    Obs.Metrics.set_gauge "robust.multi.undetected_rogues"
      (float_of_int (List.length (undetected_rogues rp)));
    Ok rp

(** Acceptance for the multi-partner matrix: the same bar as the
    single-partner campaign — every rogue mode exercised and detected
    (with the replay prefix intact up to the rogue point), the
    both-faithful control undetected with a full-prefix match. *)
let multi_survival_ok (rp : report) : bool = survival_ok rp

(** {1 Reporting} *)

let pp_matrix fmt (rp : report) =
  Format.fprintf fmt "%-22s %6s %9s %9s" "partner mode" "tried" "detected"
    "expected";
  List.iter
    (fun p -> Format.fprintf fmt " %12s" (Property.prop_name p))
    Property.all_props;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (m, c) ->
      Format.fprintf fmt "%-22s %6d %9d %9d" (Partner.mode_name m) c.tried
        c.detected c.expected;
      let row = List.assoc m rp.rb_matrix in
      List.iter
        (fun p -> Format.fprintf fmt " %12d" (List.assoc p row))
        Property.all_props;
      Format.pp_print_newline fmt ())
    rp.rb_totals

let pp_failures fmt (rp : report) =
  match List.filter (fun t -> not (expectation t)) rp.rb_trials with
  | [] -> Format.fprintf fmt "all partner trials met their expectations@."
  | ts ->
    List.iter
      (fun t ->
        Format.fprintf fmt
          "UNEXPECTED trial %d: %s on %s (rogue at %d): %s verdict=%s%s@."
          t.t_index
          (Partner.mode_name t.t_mode)
          t.t_program t.t_rogue_at t.t_outcome
          (verdict_name t.t_verdict)
          (if t.t_prefix_ok then "" else " (replay prefix broken)"))
      ts

let trial_to_json (t : trial_result) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("index", num_of_int t.t_index);
      ("program", Str t.t_program);
      ("mode", Str (Partner.mode_name t.t_mode));
      ("rogue_at", num_of_int t.t_rogue_at);
      ("outcome", Str t.t_outcome);
      ( "properties",
        List (List.map (fun p -> Str (Property.prop_name p)) t.t_props) );
      ("detected_by", List (List.map (fun s -> Str s) t.t_detected_by));
      ("prefix_ok", Bool t.t_prefix_ok);
      ("verdict", Str (verdict_name t.t_verdict));
      ("as_expected", Bool (expectation t));
    ]

let to_json (rp : report) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("seed", num_of_int rp.rb_seed);
      ("requested", num_of_int rp.rb_requested);
      ("tried", num_of_int (List.length rp.rb_trials));
      ("undetected_rogues", num_of_int (List.length (undetected_rogues rp)));
      ("survival_ok", Bool (survival_ok rp));
      ( "matrix",
        Obj
          (List.map
             (fun (m, c) ->
               let row = List.assoc m rp.rb_matrix in
               ( Partner.mode_name m,
                 Obj
                   ([
                      ("tried", num_of_int c.tried);
                      ("detected", num_of_int c.detected);
                      ("expected", num_of_int c.expected);
                    ]
                   @ List.map
                       (fun (p, n) -> (Property.prop_name p, num_of_int n))
                       row) ))
             rp.rb_totals) );
      ("trials", List (List.map trial_to_json rp.rb_trials));
    ]
