(** Executable safety properties over the composed boundary trace.

    While [Hcomp.compose correct rogue] runs, every push/pop at the
    component boundary is fed (via the composite's [observe] hook) to a
    monitor that checks the safety obligations the correct component is
    entitled to — the reply-side discipline of the paper's eq. (7),
    restated as properties of the {e partner}:

    - {b imports}: the partner only calls symbols in its declared import
      set (a re-entrant call storm into the correct component violates
      this);
    - {b callee-save}: a partner activation returns to the caller's
      return address, preserves the stack pointer and every callee-save
      register of {!Target.Conventions};
    - {b memory}: the returned result does not leak pointers into blocks
      outside the shared injection (unallocated blocks);
    - {b welltyped}: the result is a {e defined} value of the export's
      declared result type — a partner that gives up and answers
      [Vundef] violates this even though [Vundef] vacuously inhabits
      every type.

    Violations are accumulated as data; the monitor never raises. *)

open Memory
open Memory.Values
open Iface.Li
module Hcomp = Core.Hcomp

type prop = P_imports | P_callee_save | P_memory | P_welltyped

let all_props = [ P_imports; P_callee_save; P_memory; P_welltyped ]

let prop_name = function
  | P_imports -> "imports"
  | P_callee_save -> "callee-save"
  | P_memory -> "memory"
  | P_welltyped -> "welltyped"

type violation = {
  v_prop : prop;
  v_activation : int;  (** 0-based partner activation index, -1 if unknown *)
  v_detail : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "[%s] activation %d: %s" (prop_name v.v_prop)
    v.v_activation v.v_detail

(** One recorded call from the correct component into the partner, for
    the replay-prefix sanity check. *)
type call = { c_name : string; c_args : int32 list option }

type monitor = {
  m_observe : (a_query, a_reply) Hcomp.boundary_event -> unit;
  m_violations : unit -> violation list;  (** in event order *)
  m_calls : unit -> call list;  (** C1→C2 activations, in order *)
}

(* What the monitor remembers about a pushed activation, to judge its
   pop. The partner's convention obligations only apply to partner
   frames ([C2]); pushes into the correct component carry no pending
   check. *)
type pending = {
  pd_side : Hcomp.side;
  pd_index : int;  (** partner activation index; -1 for C1 frames *)
  pd_query : a_query;
  pd_export : (string * Memory.Mtypes.signature) option;
}

(** [monitor ~exports ~partner_imports ()] builds a boundary monitor.
    [exports] maps partner export blocks to (name, signature);
    [partner_imports] is the set of blocks the partner has declared it
    may call (empty for the synthesized partners, whose rogue re-entrant
    calls must therefore trip the imports property). *)
let monitor ~(exports : (block * (string * Memory.Mtypes.signature)) list)
    ~(partner_imports : block list) () : monitor =
  let violations = ref [] in
  let calls = ref [] in
  let stack = ref [] in
  let count = ref 0 in
  let violate ~prop ~activation fmt =
    Format.kasprintf
      (fun detail ->
        violations := { v_prop = prop; v_activation = activation; v_detail = detail } :: !violations)
      fmt
  in
  let check_partner_reply ~index ~(q : a_query) ~(sg : Memory.Mtypes.signature)
      ~(name : string) (r : a_reply) =
    let rs = q.aq_rs and rs' = r.ar_rs in
    if Pregfile.get PC rs' <> Pregfile.get RA rs then
      violate ~prop:P_callee_save ~activation:index
        "%s did not return to RA: pc' = %a, ra = %a" name Values.pp
        (Pregfile.get PC rs') Values.pp (Pregfile.get RA rs);
    if Pregfile.get SP rs' <> Pregfile.get SP rs then
      violate ~prop:P_callee_save ~activation:index
        "%s moved the stack pointer: %a -> %a" name Values.pp
        (Pregfile.get SP rs) Values.pp (Pregfile.get SP rs');
    List.iter
      (fun m ->
        let before = Pregfile.get (Mreg m) rs
        and after = Pregfile.get (Mreg m) rs' in
        if before <> after then
          violate ~prop:P_callee_save ~activation:index
            "%s clobbered callee-save %a: %a -> %a" name Target.Machregs.pp_mreg
            m Values.pp before Values.pp after)
      Target.Machregs.callee_save_regs;
    let res = Pregfile.get (Mreg (Target.Conventions.loc_result sg)) rs' in
    (match res with
    | Vptr (b, _) when b >= Mem.nextblock r.ar_mem ->
      violate ~prop:P_memory ~activation:index
        "%s returned a pointer outside the injection: %a (nextblock %d)" name
        Values.pp res (Mem.nextblock r.ar_mem)
    | _ -> ());
    if res = Vundef then
      violate ~prop:P_welltyped ~activation:index
        "%s returned no defined result" name
    else if not (has_rettype res sg.Memory.Mtypes.sig_res) then
      violate ~prop:P_welltyped ~activation:index
        "%s returned an ill-typed result: %a" name Values.pp res
  in
  let observe (e : (a_query, a_reply) Hcomp.boundary_event) =
    match e with
    | Hcomp.Bpush { caller; callee; question = q } ->
      let pc = Pregfile.get PC q.aq_rs in
      let block = match pc with Vptr (b, 0) -> Some b | _ -> None in
      (* The partner's outgoing calls must stay in its declared import
         set, whichever side ends up serving them. *)
      (if caller = Hcomp.C2 then
         match block with
         | Some b when List.mem b partner_imports -> ()
         | _ ->
           violate ~prop:P_imports ~activation:(!count - 1)
             "partner called %a, outside its declared import set" Values.pp pc);
      let index, export =
        match callee with
        | Hcomp.C2 ->
          let ex = Option.bind block (fun b -> List.assoc_opt b exports) in
          let i = !count in
          incr count;
          (match ex with
          | Some (name, sg) ->
            calls :=
              { c_name = name;
                c_args = Partner.decode_int_args ~sg q.aq_rs }
              :: !calls
          | None -> ());
          (i, ex)
        | Hcomp.C1 -> (-1, None)
      in
      stack :=
        { pd_side = callee; pd_index = index; pd_query = q; pd_export = export }
        :: !stack
    | Hcomp.Bpop { callee; caller = _; answer = r } -> (
      match !stack with
      | pd :: rest when pd.pd_side = callee ->
        stack := rest;
        (match pd.pd_export with
        | Some (name, sg) ->
          check_partner_reply ~index:pd.pd_index ~q:pd.pd_query ~sg ~name r
        | None -> ())
      | _ ->
        (* A pop without a matching push can only mean the composite was
           driven nondeterministically; record it rather than raise. *)
        violate ~prop:P_imports ~activation:(-1)
          "unmatched pop at the component boundary")
  in
  {
    m_observe = observe;
    m_violations = (fun () -> List.rev !violations);
    m_calls = (fun () -> List.rev !calls);
  }

(** The distinct properties violated, in [all_props] order. *)
let violated (vs : violation list) : prop list =
  List.filter (fun p -> List.exists (fun v -> v.v_prop = p) vs) all_props
