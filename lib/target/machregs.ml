(** Machine registers of the abstract x86-64-flavored target
    (DESIGN.md system #4, CompCert's [Machregs]).

    The allocatable machine registers: 14 integer registers (the 16
    architectural ones minus SP, which is a dedicated [preg] above Mach,
    and R11, the assembler scratch invisible above Asm) and 8 SSE
    registers. The callee-save partition follows the System V AMD64 ABI:
    BX, BP and R12–R15 survive calls; everything else — including all
    float registers — is destroyed. *)

open Memory.Mtypes
open Memory.Values

type mreg =
  (* integer registers *)
  | AX | BX | CX | DX | SI | DI | BP
  | R8 | R9 | R10 | R12 | R13 | R14 | R15
  (* float (SSE) registers *)
  | X0 | X1 | X2 | X3 | X4 | X5 | X6 | X7

let all_mregs =
  [
    AX; BX; CX; DX; SI; DI; BP;
    R8; R9; R10; R12; R13; R14; R15;
    X0; X1; X2; X3; X4; X5; X6; X7;
  ]

let mreg_name = function
  | AX -> "ax" | BX -> "bx" | CX -> "cx" | DX -> "dx"
  | SI -> "si" | DI -> "di" | BP -> "bp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"
  | X0 -> "x0" | X1 -> "x1" | X2 -> "x2" | X3 -> "x3"
  | X4 -> "x4" | X5 -> "x5" | X6 -> "x6" | X7 -> "x7"

let pp_mreg fmt r = Format.pp_print_string fmt (mreg_name r)
let compare_mreg : mreg -> mreg -> int = Stdlib.compare

let is_float_mreg = function
  | X0 | X1 | X2 | X3 | X4 | X5 | X6 | X7 -> true
  | _ -> false

let is_float_typ = function
  | Tfloat | Tsingle -> true
  | Tint | Tlong | Tany64 -> false

(** System V AMD64 callee-save registers. *)
let callee_save_regs = [ BX; BP; R12; R13; R14; R15 ]

let is_callee_save r = List.mem r callee_save_regs

(** Registers whose value is clobbered by a function call. *)
let destroyed_at_call =
  List.filter (fun r -> not (is_callee_save r)) all_mregs

(** {1 Machine register files}

    A total map from machine registers to values, defaulting to
    [Vundef]. This is the register-file component of the [M] language
    interface (paper, Table 2). *)

module Regfile = struct
  module RMap = Map.Make (struct
    type t = mreg

    let compare = compare_mreg
  end)

  type t = value RMap.t

  let init : t = RMap.empty
  let get r (rf : t) = Option.value (RMap.find_opt r rf) ~default:Vundef
  let set r v (rf : t) : t = RMap.add r v rf
  let set_list rvs rf = List.fold_left (fun rf (r, v) -> set r v rf) rf rvs
  let equal (a : t) (b : t) = List.for_all (fun r -> get r a = get r b) all_mregs

  let pp fmt (rf : t) =
    Format.fprintf fmt "@[<h>{";
    List.iter
      (fun r ->
        match get r rf with
        | Vundef -> ()
        | v -> Format.fprintf fmt " %a=%a" pp_mreg r Memory.Values.pp v)
      all_mregs;
    Format.fprintf fmt " }@]"
end
