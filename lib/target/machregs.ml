(** Machine registers of the abstract x86-64-flavored target
    (DESIGN.md system #4, CompCert's [Machregs]).

    The allocatable machine registers: 14 integer registers (the 16
    architectural ones minus SP, which is a dedicated [preg] above Mach,
    and R11, the assembler scratch invisible above Asm) and 8 SSE
    registers. The callee-save partition follows the System V AMD64 ABI:
    BX, BP and R12–R15 survive calls; everything else — including all
    float registers — is destroyed. *)

open Memory.Mtypes
open Memory.Values

type mreg =
  (* integer registers *)
  | AX | BX | CX | DX | SI | DI | BP
  | R8 | R9 | R10 | R12 | R13 | R14 | R15
  (* float (SSE) registers *)
  | X0 | X1 | X2 | X3 | X4 | X5 | X6 | X7

let all_mregs =
  [
    AX; BX; CX; DX; SI; DI; BP;
    R8; R9; R10; R12; R13; R14; R15;
    X0; X1; X2; X3; X4; X5; X6; X7;
  ]

let mreg_name = function
  | AX -> "ax" | BX -> "bx" | CX -> "cx" | DX -> "dx"
  | SI -> "si" | DI -> "di" | BP -> "bp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"
  | X0 -> "x0" | X1 -> "x1" | X2 -> "x2" | X3 -> "x3"
  | X4 -> "x4" | X5 -> "x5" | X6 -> "x6" | X7 -> "x7"

let pp_mreg fmt r = Format.pp_print_string fmt (mreg_name r)
let compare_mreg : mreg -> mreg -> int = Stdlib.compare

let num_mregs = 22

(** Dense ordinal of a machine register, in [0, num_mregs). *)
let mreg_index = function
  | AX -> 0 | BX -> 1 | CX -> 2 | DX -> 3
  | SI -> 4 | DI -> 5 | BP -> 6
  | R8 -> 7 | R9 -> 8 | R10 -> 9
  | R12 -> 10 | R13 -> 11 | R14 -> 12 | R15 -> 13
  | X0 -> 14 | X1 -> 15 | X2 -> 16 | X3 -> 17
  | X4 -> 18 | X5 -> 19 | X6 -> 20 | X7 -> 21

(* Inverse of [mreg_index], for walking a flat register file. *)
let mreg_of_index : mreg array = Array.of_list all_mregs

let is_float_mreg = function
  | X0 | X1 | X2 | X3 | X4 | X5 | X6 | X7 -> true
  | _ -> false

let is_float_typ = function
  | Tfloat | Tsingle -> true
  | Tint | Tlong | Tany64 -> false

(** System V AMD64 callee-save registers. *)
let callee_save_regs = [ BX; BP; R12; R13; R14; R15 ]

(* Probed per candidate register in the allocator's scan loop and per
   equation in the validator's caller-save kill, so it must be a table
   lookup, not a structural list search. *)
let callee_save_tbl =
  let t = Array.make num_mregs false in
  List.iter (fun r -> t.(mreg_index r) <- true) callee_save_regs;
  t

let is_callee_save r = callee_save_tbl.(mreg_index r)

(** Registers whose value is clobbered by a function call. *)
let destroyed_at_call =
  List.filter (fun r -> not (is_callee_save r)) all_mregs

(** {1 Machine register files}

    A total map from machine registers to values, defaulting to
    [Vundef]. This is the register-file component of the [M] language
    interface (paper, Table 2). *)

module Regfile = struct
  (* A dense array indexed by [mreg_index], updated copy-on-write: [set]
     copies the 22-word array, so values remain purely functional while
     [get]/[set] are O(1) with no comparator calls. The array is never
     mutated after [set] returns it. *)
  type t = value array

  let init : t = Array.make num_mregs Vundef
  let get r (rf : t) = rf.(mreg_index r)

  let set r v (rf : t) : t =
    let i = mreg_index r in
    if rf.(i) == v then rf
    else begin
      let rf' = Array.copy rf in
      rf'.(i) <- v;
      rf'
    end

  let set_list rvs rf = List.fold_left (fun rf (r, v) -> set r v rf) rf rvs

  (* Snapshot for the mutable-execution cores (copy-on-observe): a
     mutating interpreter must hand out copies at query/reply
     boundaries, never its live array. *)
  let copy : t -> t = Array.copy

  (* In-place write, for interpreters that own their register file
     exclusively between observation points. Never call this on an
     array obtained from [init] or shared through [set]'s no-op path. *)
  let update r v (rf : t) : t =
    rf.(mreg_index r) <- v;
    rf

  let equal (a : t) (b : t) =
    a == b
    ||
    let rec go i = i >= num_mregs || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let pp fmt (rf : t) =
    Format.fprintf fmt "@[<h>{";
    List.iter
      (fun r ->
        match get r rf with
        | Vundef -> ()
        | v -> Format.fprintf fmt " %a=%a" pp_mreg r Memory.Values.pp v)
      all_mregs;
    Format.fprintf fmt " }@]"
end
