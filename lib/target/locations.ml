(** Locations: machine registers and abstract stack slots, and location
    maps (DESIGN.md system #4, CompCert's [Locations]).

    A location is either a machine register or a typed stack slot. Slots
    come in three kinds, relative to an activation:

    - [Local]: spill slots private to the activation;
    - [Incoming]: the argument slots the activation receives (the
      caller's [Outgoing]);
    - [Outgoing]: the argument slots for calls the activation makes.

    Slots are indexed in 8-byte words ([typ_words t = 1] for every
    machine type on this 64-bit target), so two slots of the same kind
    overlap exactly when their word ranges intersect. *)

open Memory.Mtypes
open Memory.Values
open Machregs

type slot_kind = Local | Incoming | Outgoing

let pp_slot_kind fmt k =
  Format.pp_print_string fmt
    (match k with Local -> "local" | Incoming -> "incoming" | Outgoing -> "outgoing")

type loc =
  | R of mreg
  | S of slot_kind * int * typ

let loc_equal (a : loc) (b : loc) = a = b

(** [locs_overlap l1 l2]: do the two locations denote overlapping
    storage? Registers overlap only with themselves; slots of the same
    kind overlap when their word ranges intersect (two slots at the same
    offset with different types are {e distinct} locations over the
    {e same} storage). Registers never overlap slots. *)
let locs_overlap (l1 : loc) (l2 : loc) =
  match (l1, l2) with
  | R r1, R r2 -> r1 = r2
  | S (k1, o1, t1), S (k2, o2, t2) ->
    k1 = k2 && o1 < o2 + typ_words t2 && o2 < o1 + typ_words t1
  | R _, S _ | S _, R _ -> false

let pp_loc fmt = function
  | R r -> pp_mreg fmt r
  | S (k, o, t) -> Format.fprintf fmt "%a(%d):%a" pp_slot_kind k o pp_typ t

module LocMap = Map.Make (struct
  type t = loc

  let compare = compare
end)

(** {1 Location maps}

    The locset component of the [L] language interface (paper, Table 2):
    a total map from locations to values, defaulting to [Vundef].

    Writes follow CompCert's [Locmap.set] discipline:

    - writing a register stores the value as-is;
    - writing a slot {e normalizes} the value by the slot's type (an
      ill-typed slot write stores [Vundef], mirroring the in-memory
      realization where a store followed by a differently-typed load
      yields garbage), and {e invalidates} every overlapping slot
      binding of a different type. *)

module Locset = struct
  type t = value LocMap.t

  let init : t = LocMap.empty
  let get (l : loc) (m : t) = Option.value (LocMap.find_opt l m) ~default:Vundef

  let set (l : loc) (v : value) (m : t) : t =
    match l with
    | R _ -> LocMap.add l v m
    | S (_, _, ty) ->
      let m =
        LocMap.filter (fun l' _ -> not (locs_overlap l l' && l' <> l)) m
      in
      LocMap.add l (if has_type v ty then v else Vundef) m

  (** The canonical locset after an environment call: callee-save
      registers keep their value, everything else (caller-save registers
      and all stack slots, which belong to the finished activation) is
      forgotten. *)
  let undef_caller_save (m : t) : t =
    LocMap.filter
      (fun l _ -> match l with R r -> is_callee_save r | S _ -> false)
      m

  let equal (a : t) (b : t) =
    LocMap.for_all (fun l v -> get l b = v) a
    && LocMap.for_all (fun l v -> get l a = v) b

  let pp fmt (m : t) =
    Format.fprintf fmt "@[<h>{";
    LocMap.iter
      (fun l v ->
        match v with
        | Vundef -> ()
        | v -> Format.fprintf fmt " %a=%a" pp_loc l Memory.Values.pp v)
      m;
    Format.fprintf fmt " }@]"
end
