(** The calling-convention layout (DESIGN.md system #4, CompCert's
    [Conventions]): where arguments and results of a function with a
    given signature live, as locations. This is the raw material of the
    structural simulation conventions [CL], [LM] and [MA]
    (Appendix C).

    Following the System V AMD64 ABI shape: the first six integer
    arguments go in DI, SI, DX, CX, R8, R9; the first four float
    arguments in X0–X3; everything else spills to [Outgoing] stack
    slots, one 8-byte word each, in argument order. Integer results come
    back in AX, float results in X0. *)

open Memory.Mtypes
open Memory.Values
open Machregs
open Locations

let int_param_regs = [ DI; SI; DX; CX; R8; R9 ]
let float_param_regs = [ X0; X1; X2; X3 ]

(** [loc_arguments sg] is the list of locations of the arguments of a
    call with signature [sg], in argument order. *)
let loc_arguments (sg : signature) : loc list =
  let rec go ints floats ofs = function
    | [] -> []
    | t :: rest ->
      if is_float_typ t then
        match floats with
        | r :: floats' -> R r :: go ints floats' ofs rest
        | [] -> S (Outgoing, ofs, t) :: go ints floats (ofs + typ_words t) rest
      else (
        match ints with
        | r :: ints' -> R r :: go ints' floats ofs rest
        | [] -> S (Outgoing, ofs, t) :: go ints floats (ofs + typ_words t) rest)
  in
  go int_param_regs float_param_regs 0 sg.sig_args

(** Number of 8-byte words of [Outgoing] stack space the arguments of
    [sg] occupy (the size of the in-memory argument region of
    Appendix C.2, Fig. 13). *)
let size_arguments (sg : signature) : int =
  List.fold_left
    (fun acc l ->
      match l with S (Outgoing, ofs, t) -> max acc (ofs + typ_words t) | _ -> acc)
    0 (loc_arguments sg)

(** The register holding the result of a call with signature [sg]. A
    void result conventionally reads AX (whose content is then
    irrelevant). *)
let loc_result (sg : signature) : mreg =
  match sg.sig_res with
  | Some t when is_float_typ t -> X0
  | _ -> AX

(** [build_arguments sg args ls] places [args] in the argument locations
    of [sg]; [None] if the argument count does not match the
    signature. *)
let build_arguments (sg : signature) (args : value list) (ls : Locset.t) :
    Locset.t option =
  let locs = loc_arguments sg in
  if List.length locs <> List.length args then None
  else Some (List.fold_left2 (fun ls l v -> Locset.set l v ls) ls locs args)

(** [extract_arguments sg ls] reads the arguments of [sg] back out of a
    locset, in argument order. *)
let extract_arguments (sg : signature) (ls : Locset.t) : value list =
  List.map (fun l -> Locset.get l ls) (loc_arguments sg)

let extract_result (sg : signature) (ls : Locset.t) : value =
  Locset.get (R (loc_result sg)) ls

let set_result (sg : signature) (v : value) (ls : Locset.t) : Locset.t =
  Locset.set (R (loc_result sg)) v ls
