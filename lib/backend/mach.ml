(** Mach: abstract stack slots concretized into in-memory stack frames
    (CompCert's [Mach], adapted to open semantics as in CompCertO).

    Every activation allocates one frame block laid out by the [Stacking]
    pass ([frame_layout]). The caller's stack pointer (the {e back link})
    and the return address are stored in the frame; [Mgetparam] reaches
    the caller's outgoing argument area through the back link. Mach uses
    the language interface [M]: queries carry an explicit stack pointer
    (base of the argument region) and return address. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Memory.Memdata
open Middle
open Target.Machregs
open Iface
open Iface.Li

type label = int

type ros = Rreg of mreg | Rsymbol of Ident.t

(** Frame layout, in byte offsets from the frame base (sp). *)
type frame_layout = {
  fl_outgoing : int;  (** words of outgoing argument space, at offset 0 *)
  fl_ofs_link : int;  (** saved caller sp *)
  fl_ofs_ra : int;  (** saved return address *)
  fl_saved : (mreg * int) list;  (** callee-save save slots *)
  fl_locals : int;  (** base of the Local-slot area *)
  fl_stackdata : int;  (** base of the source-level stack data *)
  fl_size : int;  (** total frame size in bytes *)
}

type instruction =
  | Mgetstack of int * typ * mreg  (** load [sp + ofs] *)
  | Msetstack of mreg * int * typ
  | Mgetparam of int * typ * mreg  (** load [link + ofs] (caller's frame) *)
  | Mop of Op.operation * mreg list * mreg
  | Mload of chunk * Op.addressing * mreg list * mreg
  | Mstore of chunk * Op.addressing * mreg list * mreg
  | Mcall of signature * ros
  | Mtailcall of signature * ros
  | Mlabel of label
  | Mgoto of label
  | Mcond of Op.condition * mreg list * label
  | Mreturn

type coq_function = {
  fn_sig : signature;
  fn_code : instruction array;
  fn_layout : frame_layout;
}

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig
let link p1 p2 = Ast.link ~internal_sig p1 p2

let find_label (lbl : label) (code : instruction array) : int option =
  let rec go i =
    if i >= Array.length code then None
    else match code.(i) with Mlabel l when l = lbl -> Some (i + 1) | _ -> go (i + 1)
  in
  go 0

(** {1 Semantics} *)

type state =
  | State of {
      f : coq_function;
      fb : block;  (** block of the function symbol, used to form return addresses *)
      sp : value;
      pc : int;
      rs : Regfile.t;
      m : Mem.t;
    }
  | Callstate of { vf : value; sp : value; ra : value; rs : Regfile.t; m : Mem.t }
  | Returnstate of { ra : value; sp : value; rs : Regfile.t; m : Mem.t }

type genv = (coq_function, unit) Genv.t

let genv_view (ge : genv) : Op.genv_view =
  { Op.find_symbol = (fun id -> Genv.find_symbol ge id) }

let ros_address (ge : genv) ros (rs : Regfile.t) =
  match ros with
  | Rreg r -> Some (Regfile.get r rs)
  | Rsymbol id -> (
    match Genv.find_symbol ge id with Some b -> Some (Vptr (b, 0)) | None -> None)

let chunk_of_typ = function
  | Tint -> Mint32
  | Tlong -> Mint64
  | Tfloat -> Mfloat64
  | Tsingle -> Mfloat32
  | Tany64 -> Many64

let load_stack m sp ofs ty =
  match sp with
  | Vptr (b, base) -> Mem.load (chunk_of_typ ty) m b (base + ofs)
  | _ -> None

let store_stack m sp ofs ty v =
  match sp with
  | Vptr (b, base) -> Mem.store (chunk_of_typ ty) m b (base + ofs) v
  | _ -> None

(* [step] is parameterized on the register-file write so the same code
   runs both execution cores: [Regfile.set] (copy-on-write, the naive
   reference) and [Regfile.update] (in-place, the default). Writes only
   happen on success paths, so a stuck step leaves an in-place register
   file untouched and the run loop's interaction probes see the pre-step
   state. *)
let step (ge : genv) ~(rset : mreg -> value -> Regfile.t -> Regfile.t)
    (s : state) : (Core.Events.trace * state) list =
  let ret s' = [ (Core.Events.e0, s') ] in
  match s with
  | State ({ f; fb; sp; pc; rs; m } as st) -> (
    if pc < 0 || pc >= Array.length f.fn_code then []
    else
      match f.fn_code.(pc) with
      | Mlabel _ -> ret (State { st with pc = pc + 1 })
      | Mgetstack (ofs, ty, dst) -> (
        match load_stack m sp ofs ty with
        | Some v -> ret (State { st with pc = pc + 1; rs = rset dst v rs })
        | None -> [])
      | Msetstack (src, ofs, ty) -> (
        match store_stack m sp ofs ty (Regfile.get src rs) with
        | Some m' -> ret (State { st with pc = pc + 1; m = m' })
        | None -> [])
      | Mgetparam (ofs, ty, dst) -> (
        (* Read the back link, then the caller's outgoing area. *)
        match load_stack m sp f.fn_layout.fl_ofs_link Tlong with
        | Some parent_sp -> (
          match load_stack m parent_sp ofs ty with
          | Some v ->
            ret (State { st with pc = pc + 1; rs = rset dst v rs })
          | None -> [])
        | None -> [])
      | Mop (op, args, res) -> (
        let vl = List.map (fun r -> Regfile.get r rs) args in
        match Op.eval_operation (genv_view ge) sp op vl m with
        | Some v -> ret (State { st with pc = pc + 1; rs = rset res v rs })
        | None -> [])
      | Mload (chunk, addr, args, dst) -> (
        let vl = List.map (fun r -> Regfile.get r rs) args in
        match Op.eval_addressing (genv_view ge) sp addr vl with
        | Some va -> (
          match Mem.loadv chunk m va with
          | Some v -> ret (State { st with pc = pc + 1; rs = rset dst v rs })
          | None -> [])
        | None -> [])
      | Mstore (chunk, addr, args, src) -> (
        let vl = List.map (fun r -> Regfile.get r rs) args in
        match Op.eval_addressing (genv_view ge) sp addr vl with
        | Some va -> (
          match Mem.storev chunk m va (Regfile.get src rs) with
          | Some m' -> ret (State { st with pc = pc + 1; m = m' })
          | None -> [])
        | None -> [])
      | Mcall (_sg, ros) -> (
        match ros_address ge ros rs with
        | Some vf ->
          let ra = Vptr (fb, pc + 1) in
          ret (Callstate { vf; sp; ra; rs; m })
        | None -> [])
      | Mtailcall (_sg, ros) -> (
        match ros_address ge ros rs with
        | None -> []
        | Some vf -> (
          match
            ( load_stack m sp f.fn_layout.fl_ofs_link Tlong,
              load_stack m sp f.fn_layout.fl_ofs_ra Tlong )
          with
          | Some parent_sp, Some ra -> (
            match sp with
            | Vptr (b, 0) -> (
              match Mem.free m b 0 f.fn_layout.fl_size with
              | Some m' -> ret (Callstate { vf; sp = parent_sp; ra; rs; m = m' })
              | None -> [])
            | _ -> [])
          | _ -> []))
      | Mgoto lbl -> (
        match find_label lbl f.fn_code with
        | Some pc' -> ret (State { st with pc = pc' })
        | None -> [])
      | Mcond (cond, args, lbl) -> (
        let vl = List.map (fun r -> Regfile.get r rs) args in
        match Op.eval_condition cond vl m with
        | Some true -> (
          match find_label lbl f.fn_code with
          | Some pc' -> ret (State { st with pc = pc' })
          | None -> [])
        | Some false -> ret (State { st with pc = pc + 1 })
        | None -> [])
      | Mreturn -> (
        match
          ( load_stack m sp f.fn_layout.fl_ofs_link Tlong,
            load_stack m sp f.fn_layout.fl_ofs_ra Tlong )
        with
        | Some parent_sp, Some ra -> (
          match sp with
          | Vptr (b, 0) -> (
            match Mem.free m b 0 f.fn_layout.fl_size with
            | Some m' -> ret (Returnstate { ra; sp = parent_sp; rs; m = m' })
            | None -> [])
          | _ -> [])
        | _ -> []))
  | Callstate { vf; sp; ra; rs; m } -> (
    match (vf, Genv.find_funct ge vf) with
    | Vptr (fb, 0), Some (Ast.Internal f) ->
      let m1, b = Mem.alloc m 0 f.fn_layout.fl_size in
      let sp' = Vptr (b, 0) in
      (* Save the back link and return address in the new frame. *)
      (match store_stack m1 sp' f.fn_layout.fl_ofs_link Tlong sp with
      | Some m2 -> (
        match store_stack m2 sp' f.fn_layout.fl_ofs_ra Tlong ra with
        | Some m3 -> ret (State { f; fb; sp = sp'; pc = 0; rs; m = m3 })
        | None -> [])
      | None -> [])
    | _ -> [])
  | Returnstate { ra; sp; rs; m } -> (
    match ra with
    | Vptr (fb, pc) -> (
      match Genv.find_funct_ptr ge fb with
      | Some (Ast.Internal f) when pc > 0 && pc <= Array.length f.fn_code ->
        ret (State { f; fb; sp; pc; rs; m })
      | _ -> [])
    | _ -> [])

type full_state = { mach_init_ra : value; mach_st : state }

(* [mutate] selects the execution core. The mutable core owns its
   register array exclusively between observation points and follows
   the copy-on-observe contract: every query/reply crossing the LTS
   boundary carries a [Regfile.copy] snapshot, never the live array
   (the incoming one may be shared — [Regfile.init] itself is — and
   the outgoing ones would otherwise alias state this run keeps
   writing). The pure core makes the copies too: they are cheap,
   boundary-only, and keep the two cores observably identical. *)
let semantics_gen ~(mutate : bool) ~(symbols : Ident.t list) (p : program) :
    (full_state, m_query, m_reply, m_query, m_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  let rset = if mutate then Regfile.update else Regfile.set in
  {
    Core.Smallstep.name = "Mach";
    dom =
      (fun q ->
        match Genv.find_funct ge q.mq_vf with
        | Some (Ast.Internal _) -> true
        | _ -> false);
    init =
      (fun q ->
        [ { mach_init_ra = q.mq_ra;
            mach_st =
              Callstate { vf = q.mq_vf; sp = q.mq_sp; ra = q.mq_ra;
                          rs = Regfile.copy q.mq_rs; m = q.mq_mem }
          } ]);
    step =
      (fun s ->
        List.map (fun (t, st) -> (t, { s with mach_st = st }))
          (step ge ~rset s.mach_st));
    at_external =
      (fun s ->
        match s.mach_st with
        | Callstate { vf; sp; ra; rs; m } when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { mq_vf = vf; mq_sp = sp; mq_ra = ra;
                 mq_rs = Regfile.copy rs; mq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s.mach_st with
        | Callstate { sp; ra; _ } ->
          [ { s with
              mach_st =
                Returnstate { ra; sp; rs = Regfile.copy r.mr_rs; m = r.mr_mem } } ]
        | _ -> []);
    final =
      (fun s ->
        match s.mach_st with
        | Returnstate { ra; rs; m; _ } when ra = s.mach_init_ra ->
          Some { mr_rs = Regfile.copy rs; mr_mem = m }
        | _ -> None);
  }

(** The Mach open semantics, on the in-place register file. *)
let semantics ~(symbols : Ident.t list) (p : program) :
    (full_state, m_query, m_reply, m_query, m_reply) Core.Smallstep.lts =
  semantics_gen ~mutate:true ~symbols p

(** The same semantics on the persistent (copy-on-write) register file —
    the reference the mutable-state lockstep suite runs against
    [semantics]. *)
let semantics_naive ~(symbols : Ident.t list) (p : program) :
    (full_state, m_query, m_reply, m_query, m_reply) Core.Smallstep.lts =
  semantics_gen ~mutate:false ~symbols p

(** {1 Printing} *)

let pp_ros fmt = function
  | Rreg r -> pp_mreg fmt r
  | Rsymbol id -> Ident.pp fmt id

let pp_instruction fmt i =
  let regs fmt rl =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_mreg fmt rl
  in
  match i with
  | Mgetstack (ofs, ty, dst) ->
    Format.fprintf fmt "%a = stack[%d]:%a" pp_mreg dst ofs pp_typ ty
  | Msetstack (src, ofs, ty) ->
    Format.fprintf fmt "stack[%d]:%a = %a" ofs pp_typ ty pp_mreg src
  | Mgetparam (ofs, ty, dst) ->
    Format.fprintf fmt "%a = param[%d]:%a" pp_mreg dst ofs pp_typ ty
  | Mop (op, args, res) ->
    Format.fprintf fmt "%a = %a(%a)" pp_mreg res Op.pp_operation op regs args
  | Mload (chunk, addr, args, dst) ->
    Format.fprintf fmt "%a = load %a %a(%a)" pp_mreg dst pp_chunk chunk
      Op.pp_addressing addr regs args
  | Mstore (chunk, addr, args, src) ->
    Format.fprintf fmt "store %a %a(%a) := %a" pp_chunk chunk Op.pp_addressing
      addr regs args pp_mreg src
  | Mcall (_, ros) -> Format.fprintf fmt "call %a" pp_ros ros
  | Mtailcall (_, ros) -> Format.fprintf fmt "tailcall %a" pp_ros ros
  | Mlabel l -> Format.fprintf fmt "%d:" l
  | Mgoto l -> Format.fprintf fmt "goto %d" l
  | Mcond (cond, args, l) ->
    Format.fprintf fmt "if %a(%a) goto %d" Op.pp_condition cond regs args l
  | Mreturn -> Format.fprintf fmt "return"

let pp_function fmt (f : coq_function) =
  Format.fprintf fmt "@[<v>mach function(%a) frame %d@," pp_signature f.fn_sig
    f.fn_layout.fl_size;
  Array.iteri (fun i instr -> Format.fprintf fmt "  %3d: %a@," i pp_instruction instr) f.fn_code;
  Format.fprintf fmt "@]"
