(** LTL: RTL after register allocation — operations over machine registers
    and abstract stack slots (CompCert's [LTL], instruction-level CFG).

    LTL and Linear use the language interface [L] (paper, Table 2):
    queries carry a location map. The semantics enforces the callee-save
    discipline through [return_regs], exactly as CompCert does: this is
    the semantic obligation that the [Allocation] correctness (convention
    [wt · ext · CL]) relies on. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Memory.Memdata
open Middle
open Target.Machregs
open Target.Locations
open Iface
open Iface.Li

type node = int

module Nodemap = Map.Make (Int)

type ros = Rreg of mreg | Rsymbol of Ident.t

type instruction =
  | Lnop of node
  | Lop of Op.operation * mreg list * mreg * node
  | Lload of chunk * Op.addressing * mreg list * mreg * node
  | Lstore of chunk * Op.addressing * mreg list * mreg * node
  | Lgetstack of slot_kind * int * typ * mreg * node
  | Lsetstack of mreg * slot_kind * int * typ * node
  | Lcall of signature * ros * node
  | Ltailcall of signature * ros
  | Lcond of Op.condition * mreg list * node * node
  | Lreturn

type code = instruction Nodemap.t

type coq_function = {
  fn_sig : signature;
  fn_stacksize : int;
  fn_code : code;
  fn_entrypoint : node;
}

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig
let link p1 p2 = Ast.link ~internal_sig p1 p2

let successors_instr = function
  | Lnop n
  | Lop (_, _, _, n)
  | Lload (_, _, _, _, n)
  | Lstore (_, _, _, _, n)
  | Lgetstack (_, _, _, _, n)
  | Lsetstack (_, _, _, _, n)
  | Lcall (_, _, n) ->
    [ n ]
  | Lcond (_, _, n1, n2) -> [ n1; n2 ]
  | Ltailcall _ | Lreturn -> []

(** {1 Locset manipulation at calls (CompCert's [LTL.call_regs],
    [LTL.return_regs])} *)

(* The callee sees the caller's Outgoing slots as its Incoming slots. *)
let call_regs (caller : Locset.t) : Locset.t =
  let ls =
    List.fold_left
      (fun ls r -> Locset.set (R r) (Locset.get (R r) caller) ls)
      Locset.init all_mregs
  in
  (* Incoming slots are resolved on demand below; we materialize the
     plausible argument range eagerly. *)
  LocMap.fold
    (fun l v ls ->
      match l with
      | S (Outgoing, ofs, ty) -> Locset.set (S (Incoming, ofs, ty)) v ls
      | _ -> ls)
    caller ls

(* At return: callee-save from the caller, caller-save (including result
   registers) from the callee. Stack slots belong to activations and are
   not part of a return's locset. *)
let return_regs (caller : Locset.t) (callee : Locset.t) : Locset.t =
  List.fold_left
    (fun ls r ->
      if is_callee_save r then Locset.set (R r) (Locset.get (R r) caller) ls
      else Locset.set (R r) (Locset.get (R r) callee) ls)
    Locset.init all_mregs

(* When a caller resumes after a call, its own stack slots (Local and
   Outgoing) are restored from its suspended locset; machine registers
   come from the returned locset. *)
let merge_slots (caller : Locset.t) (returned : Locset.t) : Locset.t =
  LocMap.fold
    (fun l v ls -> match l with S _ -> LocMap.add l v ls | R _ -> ls)
    caller returned

(** {1 Execution-time location sets}

    The transition rules are parameterized over the representation of
    the {e running} activation's locset ({!locops}), giving two cores:

    - the {e persistent} core, where the running locset is the same
      [Locset.t] map the [L] interface carries ([freeze]/[thaw] are the
      identity) — the naive reference;
    - the {e mutable} core ({!Mls}): a flat value array for the machine
      registers (written in place — the overwhelming majority of LTL
      writes) over a persistent map for the stack slots.

    Suspension points pin down the copy-on-observe discipline: stack
    frames and [Callstate]/[Returnstate] locsets are always persistent
    [Locset.t] snapshots ([freeze] materializes the register array into
    the map, i.e. copy-on-suspend), so queries, replies and suspended
    frames never alias the array the running activation keeps writing. *)

type 'ls locops = {
  lget : mreg -> 'ls -> value;
  lset : mreg -> value -> 'ls -> 'ls;
  sget : slot_kind -> int -> typ -> 'ls -> value;
  sset : slot_kind -> int -> typ -> value -> 'ls -> 'ls;
  freeze : 'ls -> Locset.t;  (** persistent snapshot, for suspension points *)
  thaw : Locset.t -> 'ls;  (** private running representation *)
}

let pure_locops : Locset.t locops =
  {
    lget = (fun r ls -> Locset.get (R r) ls);
    lset = (fun r v ls -> Locset.set (R r) v ls);
    sget = (fun sl ofs ty ls -> Locset.get (S (sl, ofs, ty)) ls);
    sset = (fun sl ofs ty v ls -> Locset.set (S (sl, ofs, ty)) v ls);
    freeze = Fun.id;
    thaw = Fun.id;
  }

(** Flat mutable locset: machine registers in a dense array (in-place
    writes, O(1) reads with no comparator calls), stack slots in the
    persistent map. Register reads always go to the array, slot reads
    always to the map, so the map's register entries may go stale
    between [freeze]s without being observable. *)
module Mls = struct
  type t = {
    mutable slots : Locset.t;
    regs : value array;  (** indexed by [mreg_index] *)
  }

  let thaw (ls : Locset.t) : t =
    { slots = ls;
      regs = Array.init num_mregs (fun i -> Locset.get (R mreg_of_index.(i)) ls) }

  let get r (mls : t) = mls.regs.(mreg_index r)

  let set r v (mls : t) =
    mls.regs.(mreg_index r) <- v;
    mls

  let sget sl ofs ty (mls : t) = Locset.get (S (sl, ofs, ty)) mls.slots

  let sset sl ofs ty v (mls : t) =
    mls.slots <- Locset.set (S (sl, ofs, ty)) v mls.slots;
    mls

  let freeze (mls : t) : Locset.t =
    let ls = ref mls.slots in
    Array.iteri (fun i v -> ls := Locset.set (R mreg_of_index.(i)) v !ls) mls.regs;
    !ls
end

let mut_locops : Mls.t locops =
  {
    lget = Mls.get;
    lset = Mls.set;
    sget = Mls.sget;
    sset = Mls.sset;
    freeze = Mls.freeze;
    thaw = Mls.thaw;
  }

(** {1 Semantics} *)

type stackframe = {
  sf_f : coq_function;
  sf_sp : value;
  sf_pc : node;
  sf_ls : Locset.t;  (** locset snapshot at call time (copy-on-suspend) *)
}

type 'ls state =
  | State of stackframe list * coq_function * value * node * 'ls * Mem.t
  | Callstate of stackframe list * value * signature * Locset.t * Mem.t
  | Returnstate of stackframe list * Locset.t * Mem.t

type genv = (coq_function, unit) Genv.t

let genv_view (ge : genv) : Op.genv_view =
  { Op.find_symbol = (fun id -> Genv.find_symbol ge id) }

let parent_locset (init_ls : Locset.t) = function
  | [] -> init_ls
  | fr :: _ -> fr.sf_ls

let free_stack m sp sz =
  match sp with
  | Vptr (b, 0) -> Mem.free m b 0 sz
  | _ -> if sz = 0 then Some m else None

(* The locset of the incoming query is threaded through the whole
   execution as the "parent" of the bottom activation. Writes go through
   [ops] only on success paths, so a stuck step leaves an in-place
   locset untouched. *)
let step (ge : genv) (ops : 'ls locops) (init_ls : Locset.t) (s : 'ls state) :
    (Core.Events.trace * 'ls state) list =
  let ret s' = [ (Core.Events.e0, s') ] in
  let mget r ls = ops.lget r ls in
  let mget_list rl ls = List.map (fun r -> ops.lget r ls) rl in
  let mset r v ls = ops.lset r v ls in
  let ros_address ros ls =
    match ros with
    | Rreg r -> Some (mget r ls)
    | Rsymbol id -> (
      match Genv.find_symbol ge id with
      | Some b -> Some (Vptr (b, 0))
      | None -> None)
  in
  match s with
  | State (stack, f, sp, pc, ls, m) -> (
    match Nodemap.find_opt pc f.fn_code with
    | None -> []
    | Some instr -> (
      match instr with
      | Lnop n -> ret (State (stack, f, sp, n, ls, m))
      | Lop (op, args, res, n) -> (
        match Op.eval_operation (genv_view ge) sp op (mget_list args ls) m with
        | Some v -> ret (State (stack, f, sp, n, mset res v ls, m))
        | None -> [])
      | Lload (chunk, addr, args, dst, n) -> (
        match Op.eval_addressing (genv_view ge) sp addr (mget_list args ls) with
        | Some va -> (
          match Mem.loadv chunk m va with
          | Some v -> ret (State (stack, f, sp, n, mset dst v ls, m))
          | None -> [])
        | None -> [])
      | Lstore (chunk, addr, args, src, n) -> (
        match Op.eval_addressing (genv_view ge) sp addr (mget_list args ls) with
        | Some va -> (
          match Mem.storev chunk m va (mget src ls) with
          | Some m' -> ret (State (stack, f, sp, n, ls, m'))
          | None -> [])
        | None -> [])
      | Lgetstack (sl, ofs, ty, dst, n) ->
        let v = ops.sget sl ofs ty ls in
        ret (State (stack, f, sp, n, mset dst v ls, m))
      | Lsetstack (src, sl, ofs, ty, n) ->
        let v = mget src ls in
        ret (State (stack, f, sp, n, ops.sset sl ofs ty v ls, m))
      | Lcall (sg, ros, n) -> (
        match ros_address ros ls with
        | Some vf ->
          (* Copy-on-suspend: the frame and the callstate carry one
             persistent snapshot of the running locset. *)
          let fls = ops.freeze ls in
          let frame = { sf_f = f; sf_sp = sp; sf_pc = n; sf_ls = fls } in
          ret (Callstate (frame :: stack, vf, sg, fls, m))
        | None -> [])
      | Ltailcall (sg, ros) -> (
        match ros_address ros ls with
        | Some vf -> (
          match free_stack m sp f.fn_stacksize with
          | Some m' ->
            (* Tail calls pass the parent's locset view: callee-save
               values must already be restored. *)
            let ls' = return_regs (parent_locset init_ls stack) (ops.freeze ls) in
            ret (Callstate (stack, vf, sg, ls', m'))
          | None -> [])
        | None -> [])
      | Lcond (cond, args, n1, n2) -> (
        match Op.eval_condition cond (mget_list args ls) m with
        | Some b -> ret (State (stack, f, sp, (if b then n1 else n2), ls, m))
        | None -> [])
      | Lreturn -> (
        match free_stack m sp f.fn_stacksize with
        | Some m' ->
          ret
            (Returnstate
               ( stack,
                 return_regs (parent_locset init_ls stack) (ops.freeze ls),
                 m' ))
        | None -> [])))
  | Callstate (stack, vf, sg, ls, m) -> (
    match Genv.find_funct ge vf with
    | Some (Ast.Internal f) ->
      if not (signature_equal sg f.fn_sig) then []
      else
        let m1, b = Mem.alloc m 0 f.fn_stacksize in
        ret
          (State
             (stack, f, Vptr (b, 0), f.fn_entrypoint, ops.thaw (call_regs ls), m1))
    | Some (Ast.External _) | None -> [])
  | Returnstate (stack, ls, m) -> (
    match stack with
    | frame :: stack' ->
      ret
        (State
           ( stack', frame.sf_f, frame.sf_sp, frame.sf_pc,
             ops.thaw (merge_slots frame.sf_ls ls), m ))
    | [] -> [])

type 'ls full_state = { ltl_init_ls : Locset.t; ltl_st : 'ls state }

let semantics_gen (ops : 'ls locops) ~(symbols : Ident.t list) (p : program) :
    ('ls full_state, l_query, l_reply, l_query, l_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  {
    Core.Smallstep.name = "LTL";
    dom =
      (fun q ->
        match Genv.find_funct ge q.lq_vf with
        | Some (Ast.Internal f) -> signature_equal q.lq_sg f.fn_sig
        | _ -> false);
    init =
      (fun q ->
        [ { ltl_init_ls = q.lq_ls;
            ltl_st = Callstate ([], q.lq_vf, q.lq_sg, q.lq_ls, q.lq_mem) } ]);
    step =
      (fun s ->
        List.map
          (fun (t, st) -> (t, { s with ltl_st = st }))
          (step ge ops s.ltl_init_ls s.ltl_st));
    at_external =
      (fun s ->
        match s.ltl_st with
        | Callstate (_, vf, sg, ls, m) when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { lq_vf = vf; lq_sg = sg; lq_ls = ls; lq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s.ltl_st with
        | Callstate (stack, _, _, _, _) ->
          [ { s with ltl_st = Returnstate (stack, r.lr_ls, r.lr_mem) } ]
        | _ -> []);
    final =
      (fun s ->
        match s.ltl_st with
        | Returnstate ([], ls, m) -> Some { lr_ls = ls; lr_mem = m }
        | _ -> None);
  }

(** The LTL open semantics, on the flat mutable locset. *)
let semantics ~(symbols : Ident.t list) (p : program) :
    (Mls.t full_state, l_query, l_reply, l_query, l_reply) Core.Smallstep.lts =
  semantics_gen mut_locops ~symbols p

(** The same semantics on the persistent locset — the reference the
    mutable-state lockstep suite runs against [semantics]. *)
let semantics_naive ~(symbols : Ident.t list) (p : program) :
    (Locset.t full_state, l_query, l_reply, l_query, l_reply) Core.Smallstep.lts =
  semantics_gen pure_locops ~symbols p

(** {1 Printing} *)

let pp_ros fmt = function
  | Rreg r -> pp_mreg fmt r
  | Rsymbol id -> Ident.pp fmt id

let pp_instruction fmt i =
  let regs fmt rl =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_mreg fmt rl
  in
  match i with
  | Lnop n -> Format.fprintf fmt "nop -> %d" n
  | Lop (op, args, res, n) ->
    Format.fprintf fmt "%a = %a(%a) -> %d" pp_mreg res Op.pp_operation op regs args n
  | Lload (chunk, addr, args, dst, n) ->
    Format.fprintf fmt "%a = load %a %a(%a) -> %d" pp_mreg dst pp_chunk chunk
      Op.pp_addressing addr regs args n
  | Lstore (chunk, addr, args, src, n) ->
    Format.fprintf fmt "store %a %a(%a) := %a -> %d" pp_chunk chunk
      Op.pp_addressing addr regs args pp_mreg src n
  | Lgetstack (sl, ofs, ty, dst, n) ->
    Format.fprintf fmt "%a = %a(%d):%a -> %d" pp_mreg dst pp_slot_kind sl ofs
      pp_typ ty n
  | Lsetstack (src, sl, ofs, ty, n) ->
    Format.fprintf fmt "%a(%d):%a = %a -> %d" pp_slot_kind sl ofs pp_typ ty
      pp_mreg src n
  | Lcall (_, ros, n) -> Format.fprintf fmt "call %a -> %d" pp_ros ros n
  | Ltailcall (_, ros) -> Format.fprintf fmt "tailcall %a" pp_ros ros
  | Lcond (cond, args, n1, n2) ->
    Format.fprintf fmt "if %a(%a) -> %d else %d" Op.pp_condition cond regs args n1 n2
  | Lreturn -> Format.fprintf fmt "return"

let pp_function fmt (f : coq_function) =
  Format.fprintf fmt "@[<v>ltl function(%a) stack %d entry %d@," pp_signature
    f.fn_sig f.fn_stacksize f.fn_entrypoint;
  let nodes = List.sort (fun (a, _) (b, _) -> compare b a) (Nodemap.bindings f.fn_code) in
  List.iter (fun (n, i) -> Format.fprintf fmt "  %4d: %a@," n pp_instruction i) nodes;
  Format.fprintf fmt "@]"
