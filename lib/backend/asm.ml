(** Asm: the target assembly language, over the full architectural
    register file (CompCert's [Asm], link-register style).

    The program counter holds code pointers [Vptr (fb, pos)] where [fb]
    is the block of a function symbol and [pos] an instruction index.
    [Pcall] sets the return-address register; function prologues
    ([Pallocframe]) allocate the frame and spill the back link and RA;
    epilogues ([Pfreeframe]) restore them. Asm uses the interface [A]:
    queries and answers are a register file plus memory (paper §3.2 —
    "the semantics of assembly is formulated exclusively in terms of the
    language interface A", Appendix A.6).

    Following CompCertO, an activation is complete when control returns
    to the address that the environment installed in [RA] at entry. *)

open Support
open Memory
open Memory.Values
open Memory.Mtypes
open Memory.Memdata
open Middle
open Iface
open Iface.Li

type label = int

type ros = Rreg of preg | Rsymbol of Ident.t

type instruction =
  | Pallocframe of int * int * int  (** size, ofs_link, ofs_ra *)
  | Pfreeframe of int * int * int  (** size, ofs_link, ofs_ra *)
  | Pop of Op.operation * preg list * preg
  | Pload of chunk * Op.addressing * preg list * preg
  | Pstore of chunk * Op.addressing * preg list * preg
  | Plabel of label
  | Pjmp of label
  | Pjcc of Op.condition * preg list * label
  | Pcall of ros
  | Pjmp_tail of ros  (** tail jump to another function *)
  | Pret

type coq_function = { fn_sig : signature; fn_code : instruction array }

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig

(** Syntactic linking of Asm programs: the [+] operator of Theorem 3.5. *)
let link p1 p2 = Ast.link ~internal_sig p1 p2

let find_label (lbl : label) (code : instruction array) : int option =
  let rec go i =
    if i >= Array.length code then None
    else match code.(i) with Plabel l when l = lbl -> Some (i + 1) | _ -> go (i + 1)
  in
  go 0

(** {1 Semantics} *)

type state = { rs : Pregfile.t; m : Mem.t }

type genv = (coq_function, unit) Genv.t

let genv_view (ge : genv) : Op.genv_view =
  { Op.find_symbol = (fun id -> Genv.find_symbol ge id) }

let ros_address (ge : genv) ros (rs : Pregfile.t) =
  match ros with
  | Rreg r -> Some (Pregfile.get r rs)
  | Rsymbol id -> (
    match Genv.find_symbol ge id with Some b -> Some (Vptr (b, 0)) | None -> None)

let chunk_of_typ = function
  | Tint -> Mint32
  | Tlong -> Mint64
  | Tfloat -> Mfloat64
  | Tsingle -> Mfloat32
  | Tany64 -> Many64

(* One instruction. [fb] is the current function's block, [pos] the index
   of the instruction being executed. *)
let exec_instr (ge : genv) (f : coq_function) (fb : block) (pos : int)
    (i : instruction) (rs : Pregfile.t) (m : Mem.t) : (Pregfile.t * Mem.t) option =
  let next rs = Some (Pregfile.set PC (Vptr (fb, pos + 1)) rs, m) in
  let next_m rs m = Some (Pregfile.set PC (Vptr (fb, pos + 1)) rs, m) in
  let goto lbl rs =
    match find_label lbl f.fn_code with
    | Some pos' -> Some (Pregfile.set PC (Vptr (fb, pos')) rs, m)
    | None -> None
  in
  match i with
  | Pallocframe (sz, ofs_link, ofs_ra) -> (
    let m1, b = Mem.alloc m 0 sz in
    let sp' = Vptr (b, 0) in
    match Mem.store Mint64 m1 b ofs_link (Pregfile.get SP rs) with
    | None -> None
    | Some m2 -> (
      match Mem.store Mint64 m2 b ofs_ra (Pregfile.get RA rs) with
      | None -> None
      | Some m3 -> next_m (Pregfile.set SP sp' rs) m3))
  | Pfreeframe (sz, ofs_link, ofs_ra) -> (
    match Pregfile.get SP rs with
    | Vptr (b, 0) -> (
      match (Mem.load Mint64 m b ofs_link, Mem.load Mint64 m b ofs_ra) with
      | Some link, Some ra -> (
        match Mem.free m b 0 sz with
        | Some m' ->
          next_m (Pregfile.set SP link (Pregfile.set RA ra rs)) m'
        | None -> None)
      | _ -> None)
    | _ -> None)
  | Pop (op, args, res) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_operation (genv_view ge) (Pregfile.get SP rs) op vl m with
    | Some v -> next (Pregfile.set res v rs)
    | None -> None)
  | Pload (chunk, addr, args, dst) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_addressing (genv_view ge) (Pregfile.get SP rs) addr vl with
    | Some va -> (
      match Mem.loadv chunk m va with
      | Some v -> next (Pregfile.set dst v rs)
      | None -> None)
    | None -> None)
  | Pstore (chunk, addr, args, src) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_addressing (genv_view ge) (Pregfile.get SP rs) addr vl with
    | Some va -> (
      match Mem.storev chunk m va (Pregfile.get src rs) with
      | Some m' -> next_m rs m'
      | None -> None)
    | None -> None)
  | Plabel _ -> next rs
  | Pjmp lbl -> goto lbl rs
  | Pjcc (cond, args, lbl) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_condition cond vl m with
    | Some true -> goto lbl rs
    | Some false -> next rs
    | None -> None)
  | Pcall ros -> (
    match ros_address ge ros rs with
    | Some vf ->
      let rs = Pregfile.set RA (Vptr (fb, pos + 1)) rs in
      Some (Pregfile.set PC vf rs, m)
    | None -> None)
  | Pjmp_tail ros -> (
    match ros_address ge ros rs with
    | Some vf -> Some (Pregfile.set PC vf rs, m)
    | None -> None)
  | Pret -> Some (Pregfile.set PC (Pregfile.get RA rs) rs, m)

(** The naive dispatcher: one [Genv] lookup plus one instruction match
    per step. Kept as the executable reference the direct-threaded
    dispatcher below is tested against in lockstep. *)
let step (ge : genv) (s : state) : (Core.Events.trace * state) list =
  match Pregfile.get PC s.rs with
  | Vptr (fb, pos) -> (
    match Genv.find_funct_ptr ge fb with
    | Some (Ast.Internal f) when pos >= 0 && pos < Array.length f.fn_code -> (
      match exec_instr ge f fb pos f.fn_code.(pos) s.rs s.m with
      | Some (rs', m') -> [ (Core.Events.e0, { rs = rs'; m = m' }) ]
      | None -> [])
    | _ -> [])
  | _ -> []

(** {2 Pre-decoded, direct-threaded dispatch}

    [step] re-matches [f.fn_code.(pos)], re-resolves the function block
    in the global environment, re-scans for labels and re-allocates the
    successor PC value on {e every} step. The fast path decodes each
    function once into an array of closures (superinstructions): operand
    register indices, label targets, symbol addresses and successor PC
    values are all resolved at decode time, so executing an instruction
    is one array index plus one closure call. Decoded functions are
    memoized in a per-[semantics] decode cache keyed by function block
    (the shape the second-backend roadmap item needs: one cache per
    backend signature); the global hit/miss counters feed the
    [asm.decode_cache.*] bench gauges.

    The threaded core executes over a {e flat mutable register file}: a
    closure writes the run's single register array in place and returns
    only the successor memory, so a register-to-register step allocates
    nothing at all. Two invariants make this safe under the LTS
    discipline:

    - {e no write before fallibility is resolved}: a closure performs no
      register write until every way it can get stuck has been ruled
      out, so a stuck step leaves the state bit-identical and the run
      loop's subsequent [at_external]/[final] probes see the pre-step
      registers;
    - {e copy-on-observe}: the LTS hands out {!Pregfile.copy} snapshots
      at every observation point ([init], [at_external],
      [after_external], [final]) and never leaks the live array into a
      query or reply, so composition operators ([⊕], layering) and the
      co-execution harness can retain boundary payloads without seeing
      later mutations. *)

(** A decoded instruction: mutates the register file in place and
    returns the successor memory, or [None] (stuck) having written
    nothing. *)
type exec = Pregfile.t -> Mem.t -> Mem.t option

type decoded = exec array

let ipc = preg_index PC
let isp = preg_index SP
let ira = preg_index RA

(* Operand fetch specialized on arity, so the common 0–3 argument cases
   build their value list without an intermediate index list. *)
let fetch_args (args : preg list) : Pregfile.t -> value list =
  match List.map preg_index args with
  | [] -> fun _ -> []
  | [ a ] -> fun rs -> [ rs.(a) ]
  | [ a; b ] -> fun rs -> [ rs.(a); rs.(b) ]
  | [ a; b; c ] -> fun rs -> [ rs.(a); rs.(b); rs.(c) ]
  | idx -> fun rs -> List.map (fun i -> rs.(i)) idx

let decode_instr (gv : Op.genv_view) (ge : genv) (f : coq_function)
    (fb : block) (pos : int) (i : instruction) : exec =
  let pc_next = Vptr (fb, pos + 1) in
  let stuck : exec = fun _ _ -> None in
  match i with
  | Pallocframe (sz, ofs_link, ofs_ra) ->
    fun rs m -> (
      match Mem.alloc_frame m sz ofs_link rs.(isp) ofs_ra rs.(ira) with
      | Some (m', b) ->
        rs.(isp) <- Vptr (b, 0);
        rs.(ipc) <- pc_next;
        Some m'
      | None -> None)
  | Pfreeframe (sz, ofs_link, ofs_ra) ->
    fun rs m -> (
      match rs.(isp) with
      | Vptr (b, 0) -> (
        match (Mem.load Mint64 m b ofs_link, Mem.load Mint64 m b ofs_ra) with
        | Some link, Some ra -> (
          match Mem.free m b 0 sz with
          | Some m' ->
            rs.(isp) <- link;
            rs.(ira) <- ra;
            rs.(ipc) <- pc_next;
            Some m'
          | None -> None)
        | _ -> None)
      | _ -> None)
  (* Superinstructions: the operand shapes the register allocator emits
     most (moves, constants, two-operand integer arithmetic, reg/stack
     addressing) get dedicated closures that skip the operand list and
     the [eval_operation]/[eval_addressing] dispatch. Each one computes
     exactly what the generic arm below computes for the same shape —
     the lockstep suite checks this against the naive interpreter. *)
  | Pop (Op.Omove, [ a ], res) ->
    let ia = preg_index a and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- rs.(ia);
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Ointconst n, [], res) ->
    let v = Vint n and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- v;
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Olongconst n, [], res) ->
    let v = Vlong n and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- v;
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Oaddimm n, [ a ], res) ->
    let vn = Vint n and ia = preg_index a and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.add rs.(ia) vn;
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Oadd, [ a; b ], res) ->
    let ia = preg_index a and ib = preg_index b and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.add rs.(ia) rs.(ib);
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Osub, [ a; b ], res) ->
    let ia = preg_index a and ib = preg_index b and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.sub rs.(ia) rs.(ib);
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Omul, [ a; b ], res) ->
    let ia = preg_index a and ib = preg_index b and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.mul rs.(ia) rs.(ib);
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Olongofint, [ a ], res) ->
    let ia = preg_index a and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.longofint rs.(ia);
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Oaddlimm n, [ a ], res) ->
    let vn = Vlong n and ia = preg_index a and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.addl rs.(ia) vn;
      rs.(ipc) <- pc_next;
      Some m
  | Pop (Op.Omullimm n, [ a ], res) ->
    let vn = Vlong n and ia = preg_index a and ires = preg_index res in
    fun rs m ->
      rs.(ires) <- Values.mull rs.(ia) vn;
      rs.(ipc) <- pc_next;
      Some m
  | Pop (op, args, res) ->
    let fetch = fetch_args args in
    let ires = preg_index res in
    fun rs m -> (
      match Op.eval_operation gv rs.(isp) op (fetch rs) m with
      | Some v ->
        rs.(ires) <- v;
        rs.(ipc) <- pc_next;
        Some m
      | None -> None)
  | Pload (chunk, Op.Aindexed ofs, [ a ], dst) ->
    let ia = preg_index a and idst = preg_index dst in
    fun rs m -> (
      match rs.(ia) with
      | Vptr (b, o) -> (
        match Mem.load chunk m b (o + ofs) with
        | Some v ->
          rs.(idst) <- v;
          rs.(ipc) <- pc_next;
          Some m
        | None -> None)
      | _ -> None)
  | Pload (chunk, Op.Ainstack ofs, [], dst) ->
    let idst = preg_index dst in
    fun rs m -> (
      match rs.(isp) with
      | Vptr (b, base) -> (
        match Mem.load chunk m b (base + ofs) with
        | Some v ->
          rs.(idst) <- v;
          rs.(ipc) <- pc_next;
          Some m
        | None -> None)
      | _ -> None)
  | Pload (chunk, Op.Aindexed2 ofs, [ a; b ], dst) ->
    (* Matches the generic arm exactly: [eval_addressing] on [Aindexed2]
       is [addl (addl v1 v2) ofs] and never gets stuck on two args. *)
    let ia = preg_index a and ib = preg_index b and idst = preg_index dst in
    let vofs = Vlong (Int64.of_int ofs) in
    fun rs m -> (
      match Mem.loadv chunk m (Values.addl (Values.addl rs.(ia) rs.(ib)) vofs) with
      | Some v ->
        rs.(idst) <- v;
        rs.(ipc) <- pc_next;
        Some m
      | None -> None)
  | Pload (chunk, addr, args, dst) ->
    let fetch = fetch_args args in
    let idst = preg_index dst in
    fun rs m -> (
      match Op.eval_addressing gv rs.(isp) addr (fetch rs) with
      | Some va -> (
        match Mem.loadv chunk m va with
        | Some v ->
          rs.(idst) <- v;
          rs.(ipc) <- pc_next;
          Some m
        | None -> None)
      | None -> None)
  | Pstore (chunk, Op.Aindexed ofs, [ a ], src) ->
    let ia = preg_index a and isrc = preg_index src in
    fun rs m -> (
      match rs.(ia) with
      | Vptr (b, o) -> (
        match Mem.store chunk m b (o + ofs) rs.(isrc) with
        | Some m' ->
          rs.(ipc) <- pc_next;
          Some m'
        | None -> None)
      | _ -> None)
  | Pstore (chunk, Op.Ainstack ofs, [], src) ->
    let isrc = preg_index src in
    fun rs m -> (
      match rs.(isp) with
      | Vptr (b, base) -> (
        match Mem.store chunk m b (base + ofs) rs.(isrc) with
        | Some m' ->
          rs.(ipc) <- pc_next;
          Some m'
        | None -> None)
      | _ -> None)
  | Pstore (chunk, Op.Aindexed2 ofs, [ a; b ], src) ->
    let ia = preg_index a and ib = preg_index b and isrc = preg_index src in
    let vofs = Vlong (Int64.of_int ofs) in
    fun rs m -> (
      match
        Mem.storev chunk m (Values.addl (Values.addl rs.(ia) rs.(ib)) vofs)
          rs.(isrc)
      with
      | Some m' ->
        rs.(ipc) <- pc_next;
        Some m'
      | None -> None)
  | Pstore (chunk, addr, args, src) ->
    let fetch = fetch_args args in
    let isrc = preg_index src in
    fun rs m -> (
      match Op.eval_addressing gv rs.(isp) addr (fetch rs) with
      | Some va -> (
        match Mem.storev chunk m va rs.(isrc) with
        | Some m' ->
          rs.(ipc) <- pc_next;
          Some m'
        | None -> None)
      | None -> None)
  | Plabel _ ->
    fun rs m ->
      rs.(ipc) <- pc_next;
      Some m
  | Pjmp lbl -> (
    match find_label lbl f.fn_code with
    | Some pos' ->
      let target = Vptr (fb, pos') in
      fun rs m ->
        rs.(ipc) <- target;
        Some m
    | None -> stuck)
  | Pjcc (cond, args, lbl) ->
    (* The label resolves at decode time, but a missing label only
       sticks the taken branch — the fall-through must still work,
       exactly as in [exec_instr]. *)
    let eval_cond =
      match (cond, args) with
      | Op.Ccompimm (c, n), [ a ] ->
        let vn = Vint n and ia = preg_index a in
        fun rs _m -> Values.cmp_bool c rs.(ia) vn
      | Op.Ccomp c, [ a; b ] ->
        let ia = preg_index a and ib = preg_index b in
        fun rs _m -> Values.cmp_bool c rs.(ia) rs.(ib)
      | _ ->
        let fetch = fetch_args args in
        fun rs m -> Op.eval_condition cond (fetch rs) m
    in
    let target =
      match find_label lbl f.fn_code with
      | Some pos' -> Some (Vptr (fb, pos'))
      | None -> None
    in
    fun rs m -> (
      match eval_cond rs m with
      | Some true -> (
        match target with
        | Some t ->
          rs.(ipc) <- t;
          Some m
        | None -> None)
      | Some false ->
        rs.(ipc) <- pc_next;
        Some m
      | None -> None)
  | Pcall ros -> (
    match ros with
    | Rsymbol id -> (
      match Genv.find_symbol ge id with
      | Some b ->
        let vf = Vptr (b, 0) in
        fun rs m ->
          rs.(ira) <- pc_next;
          rs.(ipc) <- vf;
          Some m
      | None -> stuck)
    | Rreg r ->
      let ir = preg_index r in
      (* Read the callee address before overwriting RA: with an in-place
         register file, [Pcall RA] must call the OLD return address
         (matching [exec_instr], which resolves [ros] first). *)
      fun rs m ->
        let vf = rs.(ir) in
        rs.(ira) <- pc_next;
        rs.(ipc) <- vf;
        Some m)
  | Pjmp_tail ros -> (
    match ros with
    | Rsymbol id -> (
      match Genv.find_symbol ge id with
      | Some b ->
        let vf = Vptr (b, 0) in
        fun rs m ->
          rs.(ipc) <- vf;
          Some m
      | None -> stuck)
    | Rreg r ->
      let ir = preg_index r in
      fun rs m ->
        rs.(ipc) <- rs.(ir);
        Some m)
  | Pret ->
    fun rs m ->
      rs.(ipc) <- rs.(ira);
      Some m

let decode_function (ge : genv) (fb : block) (f : coq_function) : decoded =
  let gv = genv_view ge in
  Array.mapi (fun pos i -> decode_instr gv ge f fb pos i) f.fn_code

(* Global decode-cache counters: every consultation (including the
   same-block fast path) counts as a lookup; a miss decodes. The bench
   derives the hit-rate gauge from these. *)
let decode_cache_lookups = ref 0
let decode_cache_misses = ref 0
let decode_cache_stats () = (!decode_cache_lookups, !decode_cache_misses)

let reset_decode_cache_stats () =
  decode_cache_lookups := 0;
  decode_cache_misses := 0

type decode_cache = {
  dc_tbl : (block, decoded option) Hashtbl.t;
      (** [None] caches "this block is not internal code" *)
  mutable dc_last_fb : block;  (** -1 when empty; blocks start at 1 *)
  mutable dc_last : decoded option;
}

let make_decode_cache () : decode_cache =
  { dc_tbl = Hashtbl.create 16; dc_last_fb = -1; dc_last = None }

let decoded_at (ge : genv) (dc : decode_cache) (fb : block) : decoded option =
  incr decode_cache_lookups;
  if fb = dc.dc_last_fb then dc.dc_last
  else begin
    let d =
      match Hashtbl.find_opt dc.dc_tbl fb with
      | Some d -> d
      | None ->
        incr decode_cache_misses;
        let d =
          match Genv.find_funct_ptr ge fb with
          | Some (Ast.Internal f) -> Some (decode_function ge fb f)
          | _ -> None
        in
        Hashtbl.add dc.dc_tbl fb d;
        d
    in
    dc.dc_last_fb <- fb;
    dc.dc_last <- d;
    d
  end

(* The caller owns [s.rs] exclusively: a successful step has written the
   register file in place, so the successor state reuses the same array
   (and, when memory is untouched, is [s] itself — a step allocates
   nothing). *)
let step_threaded (ge : genv) (dc : decode_cache) (s : state) :
    (Core.Events.trace * state) list =
  match s.rs.(ipc) with
  | Vptr (fb, pos) -> (
    match decoded_at ge dc fb with
    | Some code when pos >= 0 && pos < Array.length code -> (
      match code.(pos) s.rs s.m with
      | Some m' ->
        [ (Core.Events.e0, if m' == s.m then s else { rs = s.rs; m = m' }) ]
      | None -> [])
    | _ -> [])
  | _ -> []

type full_state = { asm_init_ra : value; asm_st : state }

(* PC-shaped value equality, specialized to avoid the polymorphic
   [caml_compare] the per-step final/at-external tests would otherwise
   pay. Agrees with [(=)] on every case, including its IEEE treatment
   of float payloads (NaN unequal to itself). *)
let pc_eq (a : value) (b : value) : bool =
  match (a, b) with
  | Vptr (b1, o1), Vptr (b2, o2) -> b1 = b2 && o1 = o2
  | Vint x, Vint y -> Int32.equal x y
  | Vlong x, Vlong y -> Int64.equal x y
  | Vundef, Vundef -> true
  | Vfloat x, Vfloat y -> x = y
  | Vsingle x, Vsingle y -> x = y
  | _ -> false

let semantics_gen ~(threaded : bool) ~(symbols : Ident.t list) (p : program) :
    (full_state, a_query, a_reply, a_query, a_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  let dc = make_decode_cache () in
  (* A state is at an interaction point when the PC leaves this unit's
     internal code: either at the environment return address (final) or
     at a block this unit does not define internally (external call).
     The threaded dispatcher answers "is this internal code?" from the
     decode cache, so the per-step interaction test costs no [Genv]
     descent either. *)
  let is_internal v =
    match v with
    | Vptr (b, 0) ->
      if threaded then Option.is_some (decoded_at ge dc b)
      else (
        match Genv.find_funct_ptr ge b with
        | Some (Ast.Internal _) -> true
        | _ -> false)
    | _ -> false
  in
  (* The threaded step is inlined here rather than wrapping
     [step_threaded] in a [List.map]: the rewrap would allocate a second
     cons/tuple/record per step, a measurable share of the hot loop.
     The run owns its register array exclusively between observation
     points, so a register-only step reuses both state records; the
     singleton transition list is the only allocation.

     One LTS step executes a bounded {e run} of instructions, not just
     one: after each decoded closure the dispatcher keeps going while
     the PC stays inside the same function's code and differs from the
     activation return address. Such intermediate states are provably
     silent non-interaction states — [final] needs the PC to equal
     [asm_init_ra] (excluded explicitly) and [at_external] needs a
     control transfer to the base of a {e non-internal} block (the
     current block is internal by construction) — and every internal
     step emits the empty trace, so fusing them under one transition
     preserves the observable behavior while paying the run loop's
     probe-and-allocate overhead once per run instead of once per
     instruction. A stuck instruction mid-run ends the fused step with
     the progress made; the decode invariant (no register write before
     fallibility is resolved) means re-executing it on the next [step]
     fails identically, reporting the same stuck state one transition
     later. The budget bounds a fused step so fuel still bounds
     in-function loops. *)
  let fuse_budget = 64 in
  let step_full =
    if threaded then fun s ->
      match s.asm_st.rs.(ipc) with
      | Vptr (fb, pos) -> (
        match decoded_at ge dc fb with
        | Some code when pos >= 0 && pos < Array.length code -> (
          match code.(pos) s.asm_st.rs s.asm_st.m with
          | Some m0 ->
            let rs = s.asm_st.rs in
            let len = Array.length code in
            let rec fuse budget m =
              if budget = 0 then m
              else
                match rs.(ipc) with
                | Vptr (fb', pos')
                  when fb' = fb && pos' >= 0 && pos' < len
                       && not (pc_eq rs.(ipc) s.asm_init_ra) -> (
                  match code.(pos') rs m with
                  | Some m' -> fuse (budget - 1) m'
                  | None -> m)
                | _ -> m
            in
            let m' = fuse (fuse_budget - 1) m0 in
            [ ( Core.Events.e0,
                if m' == s.asm_st.m then s
                else { s with asm_st = { rs; m = m' } } ) ]
          | None -> [])
        | _ -> [])
      | _ -> []
    else fun s ->
      List.map (fun (t, st) -> (t, { s with asm_st = st })) (step ge s.asm_st)
  in
  {
    Core.Smallstep.name = "Asm";
    dom = (fun q -> is_internal (Pregfile.get PC q.aq_rs));
    (* Copy-on-observe, inbound: the query's register file may be shared
       (sibling components in a [⊕]-composition marshal queries out of
       their own suspended state, and [Pregfile.init] itself is a shared
       array), so the activation takes a private copy it may then mutate. *)
    init = (fun q -> [ { asm_init_ra = Pregfile.get RA q.aq_rs;
                         asm_st = { rs = Pregfile.copy q.aq_rs;
                                    m = q.aq_mem } } ]);
    step = step_full;
    at_external =
      (fun s ->
        (* An external call is a control transfer to the base of a global
           symbol block this unit does not define internally. Return
           addresses point into the middle of code blocks and are excluded;
           garbage PCs are stuck, not external. *)
        let pc = s.asm_st.rs.(ipc) in
        if
          Genv.plausible_funct ge pc
          && (not (is_internal pc))
          && not (pc_eq pc s.asm_init_ra)
        then
          (* Copy-on-observe, outbound: the callee (or environment) must
             see a snapshot, not the live array this run keeps writing. *)
          Some { aq_rs = Pregfile.copy s.asm_st.rs; aq_mem = s.asm_st.m }
        else None);
    after_external =
      (fun s r ->
        [ { s with asm_st = { rs = Pregfile.copy r.ar_rs; m = r.ar_mem } } ]);
    final =
      (fun s ->
        if pc_eq s.asm_st.rs.(ipc) s.asm_init_ra then
          Some { ar_rs = Pregfile.copy s.asm_st.rs; ar_mem = s.asm_st.m }
        else None);
  }

(** The Asm open semantics, on the direct-threaded dispatcher. *)
let semantics ~(symbols : Ident.t list) (p : program) :
    (full_state, a_query, a_reply, a_query, a_reply) Core.Smallstep.lts =
  semantics_gen ~threaded:true ~symbols p

(** The same semantics on the naive per-step dispatcher — the reference
    the differential suite locksteps against [semantics]. *)
let semantics_naive ~(symbols : Ident.t list) (p : program) :
    (full_state, a_query, a_reply, a_query, a_reply) Core.Smallstep.lts =
  semantics_gen ~threaded:false ~symbols p

(** {1 Printing} *)

let pp_ros fmt = function
  | Rreg r -> pp_preg fmt r
  | Rsymbol id -> Ident.pp fmt id

let pp_instruction fmt i =
  let regs fmt rl =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_preg fmt rl
  in
  match i with
  | Pallocframe (sz, ol, orr) -> Format.fprintf fmt "allocframe %d, %d, %d" sz ol orr
  | Pfreeframe (sz, ol, orr) -> Format.fprintf fmt "freeframe %d, %d, %d" sz ol orr
  | Pop (op, args, res) ->
    Format.fprintf fmt "%a = %a(%a)" pp_preg res Op.pp_operation op regs args
  | Pload (chunk, addr, args, dst) ->
    Format.fprintf fmt "%a = load %a %a(%a)" pp_preg dst pp_chunk chunk
      Op.pp_addressing addr regs args
  | Pstore (chunk, addr, args, src) ->
    Format.fprintf fmt "store %a %a(%a) := %a" pp_chunk chunk Op.pp_addressing
      addr regs args pp_preg src
  | Plabel l -> Format.fprintf fmt "%d:" l
  | Pjmp l -> Format.fprintf fmt "jmp %d" l
  | Pjcc (cond, args, l) ->
    Format.fprintf fmt "j%a(%a) %d" Op.pp_condition cond regs args l
  | Pcall ros -> Format.fprintf fmt "call %a" pp_ros ros
  | Pjmp_tail ros -> Format.fprintf fmt "jmp-tail %a" pp_ros ros
  | Pret -> Format.fprintf fmt "ret"

let pp_function fmt (f : coq_function) =
  Format.fprintf fmt "@[<v>asm function(%a)@," pp_signature f.fn_sig;
  Array.iteri (fun i instr -> Format.fprintf fmt "  %3d: %a@," i pp_instruction instr) f.fn_code;
  Format.fprintf fmt "@]"
