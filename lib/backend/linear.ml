(** Linear: LTL with linearized control flow — a list of instructions with
    explicit labels and gotos (CompCert's [Linear]). Uses interface [L]. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Memory.Memdata
open Middle
open Target.Machregs
open Target.Locations
open Iface
open Iface.Li

type label = int

type ros = Rreg of mreg | Rsymbol of Ident.t

type instruction =
  | Lgetstack of slot_kind * int * typ * mreg
  | Lsetstack of mreg * slot_kind * int * typ
  | Lop of Op.operation * mreg list * mreg
  | Lload of chunk * Op.addressing * mreg list * mreg
  | Lstore of chunk * Op.addressing * mreg list * mreg
  | Lcall of signature * ros
  | Ltailcall of signature * ros
  | Llabel of label
  | Lgoto of label
  | Lcond of Op.condition * mreg list * label
  | Lreturn

type code = instruction list

type coq_function = {
  fn_sig : signature;
  fn_stacksize : int;
  fn_code : code;
}

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig
let link p1 p2 = Ast.link ~internal_sig p1 p2

let rec find_label (lbl : label) (c : code) : code option =
  match c with
  | [] -> None
  | Llabel l :: rest when l = lbl -> Some rest
  | _ :: rest -> find_label lbl rest

(** {1 Semantics}

    States carry the code suffix still to execute. *)

type stackframe = {
  sf_f : coq_function;
  sf_sp : value;
  sf_ls : Locset.t;
  sf_code : code;  (** continuation in the caller *)
}

(* As in {!Ltl}, the running activation's locset is a type parameter:
   the flat mutable [Ltl.Mls.t] in the shipped interpreter, the
   persistent [Locset.t] in the reference interpreter the lockstep
   suite runs against. Suspended frames and Callstate/Returnstate
   always hold persistent snapshots ([Ltl.locops.freeze]). *)
type 'ls state =
  | State of stackframe list * coq_function * value * code * 'ls * Mem.t
  | Callstate of stackframe list * value * signature * Locset.t * Mem.t
  | Returnstate of stackframe list * Locset.t * Mem.t

type genv = (coq_function, unit) Genv.t

let genv_view (ge : genv) : Op.genv_view =
  { Op.find_symbol = (fun id -> Genv.find_symbol ge id) }

let parent_locset (init_ls : Locset.t) = function
  | [] -> init_ls
  | fr :: _ -> fr.sf_ls

let free_stack m sp sz =
  match sp with
  | Vptr (b, 0) -> Mem.free m b 0 sz
  | _ -> if sz = 0 then Some m else None

let step (ge : genv) (ops : 'ls Ltl.locops) (init_ls : Locset.t)
    (s : 'ls state) : (Core.Events.trace * 'ls state) list =
  let ret s' = [ (Core.Events.e0, s') ] in
  let mget r ls = ops.Ltl.lget r ls in
  let mget_list rl ls = List.map (fun r -> ops.Ltl.lget r ls) rl in
  let mset r v ls = ops.Ltl.lset r v ls in
  let ros_address ros ls =
    match ros with
    | Rreg r -> Some (mget r ls)
    | Rsymbol id -> (
      match Genv.find_symbol ge id with
      | Some b -> Some (Vptr (b, 0))
      | None -> None)
  in
  match s with
  | State (stack, f, sp, code, ls, m) -> (
    match code with
    | [] -> []
    | instr :: next -> (
      match instr with
      | Llabel _ -> ret (State (stack, f, sp, next, ls, m))
      | Lgoto lbl -> (
        match find_label lbl f.fn_code with
        | Some code' -> ret (State (stack, f, sp, code', ls, m))
        | None -> [])
      | Lcond (cond, args, lbl) -> (
        match Op.eval_condition cond (mget_list args ls) m with
        | Some true -> (
          match find_label lbl f.fn_code with
          | Some code' -> ret (State (stack, f, sp, code', ls, m))
          | None -> [])
        | Some false -> ret (State (stack, f, sp, next, ls, m))
        | None -> [])
      | Lop (op, args, res) -> (
        match Op.eval_operation (genv_view ge) sp op (mget_list args ls) m with
        | Some v -> ret (State (stack, f, sp, next, mset res v ls, m))
        | None -> [])
      | Lload (chunk, addr, args, dst) -> (
        match Op.eval_addressing (genv_view ge) sp addr (mget_list args ls) with
        | Some va -> (
          match Mem.loadv chunk m va with
          | Some v -> ret (State (stack, f, sp, next, mset dst v ls, m))
          | None -> [])
        | None -> [])
      | Lstore (chunk, addr, args, src) -> (
        match Op.eval_addressing (genv_view ge) sp addr (mget_list args ls) with
        | Some va -> (
          match Mem.storev chunk m va (mget src ls) with
          | Some m' -> ret (State (stack, f, sp, next, ls, m'))
          | None -> [])
        | None -> [])
      | Lgetstack (sl, ofs, ty, dst) ->
        let v = ops.Ltl.sget sl ofs ty ls in
        ret (State (stack, f, sp, next, mset dst v ls, m))
      | Lsetstack (src, sl, ofs, ty) ->
        let v = mget src ls in
        ret (State (stack, f, sp, next, ops.Ltl.sset sl ofs ty v ls, m))
      | Lcall (sg, ros) -> (
        match ros_address ros ls with
        | Some vf ->
          (* Copy-on-suspend: one persistent snapshot shared by the
             frame and the callstate. *)
          let fls = ops.Ltl.freeze ls in
          let frame = { sf_f = f; sf_sp = sp; sf_ls = fls; sf_code = next } in
          ret (Callstate (frame :: stack, vf, sg, fls, m))
        | None -> [])
      | Ltailcall (sg, ros) -> (
        match ros_address ros ls with
        | Some vf -> (
          match free_stack m sp f.fn_stacksize with
          | Some m' ->
            let ls' =
              Ltl.return_regs (parent_locset init_ls stack) (ops.Ltl.freeze ls)
            in
            ret (Callstate (stack, vf, sg, ls', m'))
          | None -> [])
        | None -> [])
      | Lreturn -> (
        match free_stack m sp f.fn_stacksize with
        | Some m' ->
          ret
            (Returnstate
               ( stack,
                 Ltl.return_regs (parent_locset init_ls stack)
                   (ops.Ltl.freeze ls),
                 m' ))
        | None -> [])))
  | Callstate (stack, vf, sg, ls, m) -> (
    match Genv.find_funct ge vf with
    | Some (Ast.Internal f) ->
      if not (signature_equal sg f.fn_sig) then []
      else
        let m1, b = Mem.alloc m 0 f.fn_stacksize in
        ret
          (State
             (stack, f, Vptr (b, 0), f.fn_code, ops.Ltl.thaw (Ltl.call_regs ls), m1))
    | Some (Ast.External _) | None -> [])
  | Returnstate (stack, ls, m) -> (
    match stack with
    | frame :: stack' ->
      ret
        (State
           ( stack', frame.sf_f, frame.sf_sp, frame.sf_code,
             ops.Ltl.thaw (Ltl.merge_slots frame.sf_ls ls), m ))
    | [] -> [])

type 'ls full_state = { lin_init_ls : Locset.t; lin_st : 'ls state }

let semantics_gen (ops : 'ls Ltl.locops) ~(symbols : Ident.t list) (p : program) :
    ('ls full_state, l_query, l_reply, l_query, l_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  {
    Core.Smallstep.name = "Linear";
    dom =
      (fun q ->
        match Genv.find_funct ge q.lq_vf with
        | Some (Ast.Internal f) -> signature_equal q.lq_sg f.fn_sig
        | _ -> false);
    init =
      (fun q ->
        [ { lin_init_ls = q.lq_ls;
            lin_st = Callstate ([], q.lq_vf, q.lq_sg, q.lq_ls, q.lq_mem) } ]);
    step =
      (fun s ->
        List.map
          (fun (t, st) -> (t, { s with lin_st = st }))
          (step ge ops s.lin_init_ls s.lin_st));
    at_external =
      (fun s ->
        match s.lin_st with
        | Callstate (_, vf, sg, ls, m) when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { lq_vf = vf; lq_sg = sg; lq_ls = ls; lq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s.lin_st with
        | Callstate (stack, _, _, _, _) ->
          [ { s with lin_st = Returnstate (stack, r.lr_ls, r.lr_mem) } ]
        | _ -> []);
    final =
      (fun s ->
        match s.lin_st with
        | Returnstate ([], ls, m) -> Some { lr_ls = ls; lr_mem = m }
        | _ -> None);
  }

(** The Linear open semantics, on the flat mutable locset. *)
let semantics ~(symbols : Ident.t list) (p : program) :
    (Ltl.Mls.t full_state, l_query, l_reply, l_query, l_reply)
    Core.Smallstep.lts =
  semantics_gen Ltl.mut_locops ~symbols p

(** The same semantics on the persistent locset — the reference the
    mutable-state lockstep suite runs against [semantics]. *)
let semantics_naive ~(symbols : Ident.t list) (p : program) :
    (Locset.t full_state, l_query, l_reply, l_query, l_reply)
    Core.Smallstep.lts =
  semantics_gen Ltl.pure_locops ~symbols p

(** {1 Printing} *)

let pp_ros fmt = function
  | Rreg r -> pp_mreg fmt r
  | Rsymbol id -> Ident.pp fmt id

let pp_instruction fmt i =
  let regs fmt rl =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_mreg fmt rl
  in
  match i with
  | Lgetstack (sl, ofs, ty, dst) ->
    Format.fprintf fmt "%a = %a(%d):%a" pp_mreg dst pp_slot_kind sl ofs pp_typ ty
  | Lsetstack (src, sl, ofs, ty) ->
    Format.fprintf fmt "%a(%d):%a = %a" pp_slot_kind sl ofs pp_typ ty pp_mreg src
  | Lop (op, args, res) ->
    Format.fprintf fmt "%a = %a(%a)" pp_mreg res Op.pp_operation op regs args
  | Lload (chunk, addr, args, dst) ->
    Format.fprintf fmt "%a = load %a %a(%a)" pp_mreg dst pp_chunk chunk
      Op.pp_addressing addr regs args
  | Lstore (chunk, addr, args, src) ->
    Format.fprintf fmt "store %a %a(%a) := %a" pp_chunk chunk Op.pp_addressing
      addr regs args pp_mreg src
  | Lcall (_, ros) -> Format.fprintf fmt "call %a" pp_ros ros
  | Ltailcall (_, ros) -> Format.fprintf fmt "tailcall %a" pp_ros ros
  | Llabel l -> Format.fprintf fmt "%d:" l
  | Lgoto l -> Format.fprintf fmt "goto %d" l
  | Lcond (cond, args, l) ->
    Format.fprintf fmt "if %a(%a) goto %d" Op.pp_condition cond regs args l
  | Lreturn -> Format.fprintf fmt "return"

let pp_function fmt (f : coq_function) =
  Format.fprintf fmt "@[<v>linear function(%a) stack %d@," pp_signature f.fn_sig
    f.fn_stacksize;
  List.iter (fun i -> Format.fprintf fmt "  %a@," pp_instruction i) f.fn_code;
  Format.fprintf fmt "@]"
