(** The CompCert memory model (paper §3.1, Fig. 4): a purely functional
    collection of blocks with per-offset permissions and byte-level
    contents. Operations are partial exactly where CompCert's are. *)

open Values
open Memdata

(** Permissions form a total order
    [Nonempty < Readable < Writable < Freeable]. *)
type permission = Nonempty | Readable | Writable | Freeable

(** [perm_order p1 p2]: permission [p1] implies permission [p2]. *)
val perm_order : permission -> permission -> bool

val pp_permission : Format.formatter -> permission -> unit

type t

(** The empty memory; block identifiers start at 1. *)
val empty : t

val nextblock : t -> block
val valid_block : t -> block -> bool

(** Bounds [(lo, hi)] a block was allocated with. *)
val block_bounds : t -> block -> (int * int) option

(** {1 Permissions} *)

(** [perm m b ofs p]: offset [ofs] of block [b] has at least permission
    [p]. *)
val perm : t -> block -> int -> permission -> bool

val range_perm : t -> block -> int -> int -> permission -> bool
val valid_pointer : t -> block -> int -> bool

(** Valid or one-past-the-end (used by pointer comparisons). *)
val weak_valid_pointer : t -> block -> int -> bool

(** {1 Allocation and deallocation} *)

(** [alloc m lo hi] returns the new memory and the fresh block, with
    [Freeable] permission on [lo, hi). *)
val alloc : t -> int -> int -> t * block

(** [free m b lo hi] requires [Freeable] permission over the range. *)
val free : t -> block -> int -> int -> t option

val free_list : t -> (block * int * int) list -> t option

(** [alloc_frame m sz ofs_link link ofs_ra ra] is observably identical to
    [alloc m 0 sz] followed by [store Mint64] of [link] at [ofs_link] and
    [ra] at [ofs_ra], but performs one blocks-map insertion instead of
    three. The [Pallocframe] fast path in the Asm interpreter uses it;
    the naive reference interpreter keeps the three-step composition. *)
val alloc_frame :
  t -> int -> int -> value -> int -> value -> (t * block) option

(** Remove all permissions on a range (the [LM] convention's
    [free_args], Fig. 13). *)
val drop_range : t -> block -> int -> int -> t option

(** Restrict permissions on a range to at most [p]. *)
val drop_perm : t -> block -> int -> int -> permission -> t option

(** Re-grant permission on a range (the [LM] convention's [mix]). The
    range is clamped to the block's bounds; a range entirely outside
    them returns [None]. *)
val grant_perm : t -> block -> int -> int -> permission -> t option

(** Per-offset permission entries materialized for a block: 0 while the
    block carries one uniform permission over its whole extent (the
    representation every block has between [alloc] and the first
    sub-range [free]/[drop_perm]/[grant_perm]). Representation
    introspection for tests and the bench; not part of the semantics. *)
val perm_entries : t -> block -> int

(** {1 Loads and stores} *)

val load : chunk -> t -> block -> int -> value option
val store : chunk -> t -> block -> int -> value -> t option
val loadv : chunk -> t -> value -> value option
val storev : chunk -> t -> value -> value -> t option
val loadbytes : t -> block -> int -> int -> memval list option
val storebytes : t -> block -> int -> memval list -> t option

(** {1 Observation (used by relational checks)} *)

(** Fold over every (block, offset) with at least [Nonempty] permission. *)
val fold_live_offsets : t -> (block -> int -> 'a -> 'a) -> 'a -> 'a

val contents_at : t -> block -> int -> memval
val perm_at : t -> block -> int -> permission option

(** [unchanged_on pred m m']: every location satisfying [pred] keeps its
    permission and contents from [m] to [m'] (CompCert's
    [Mem.unchanged_on], the workhorse of [injp], Fig. 9). *)
val unchanged_on : (block -> int -> bool) -> t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
