(** The CompCert memory model (paper §3.1, Fig. 4).

    A memory state is a finite collection of blocks. Each block has bounds
    [lo, hi), per-offset permissions, and per-offset contents ([Memdata.memval]).
    The model is purely functional: every operation returns a new memory
    state. Operations are partial exactly where CompCert's are: [load] and
    [store] require permissions and alignment, [free] requires [Freeable]
    permission over the whole range.

    Permissions form a total order [Nonempty < Readable < Writable <
    Freeable]; an offset with no permission entry is inaccessible. Per-offset
    permissions are what later allows the [LM] simulation convention to carve
    the argument region out of a stack block (paper, Appendix C.2, Fig. 13).

    {b Representation.} The semantics is per-offset but the representation
    is not: between [alloc] and the first carving operation every offset of
    a block carries the same permission, so a block stores a single
    [Uniform] permission covering [lo, hi) and [range_perm] is one bounds
    comparison. Only blocks actually carved by [free]/[drop_perm]/
    [grant_perm] on a sub-range (the [LM] argument-region protocol) fall
    back to a per-offset [Carved] map. Contents are chunked: bytes live in
    16-byte arrays keyed by [ofs asr 4], so a [store] copies one or two
    small arrays instead of performing one persistent-map insertion per
    byte. All observable behavior (every function of the interface) is
    unchanged; [test/test_mem_diff.ml] checks this against the previous
    per-byte implementation on random operation sequences. *)

open Values
open Memdata

type permission = Nonempty | Readable | Writable | Freeable

let perm_rank = function
  | Nonempty -> 0
  | Readable -> 1
  | Writable -> 2
  | Freeable -> 3

(** [perm_order p1 p2]: permission [p1] implies permission [p2]. *)
let perm_order p1 p2 = perm_rank p1 >= perm_rank p2

let pp_permission fmt p =
  Format.pp_print_string fmt
    (match p with
    | Nonempty -> "nonempty"
    | Readable -> "readable"
    | Writable -> "writable"
    | Freeable -> "freeable")

module IMap = Map.Make (Int)

(* Contents chunking: 16-byte arrays keyed by [ofs asr chunk_bits].
   [asr]/[land] implement floor division and modulus, correct for the
   negative offsets negative-bound blocks use. *)
let chunk_bits = 4
let chunk_size = 16
let chunk_ix ofs = ofs asr chunk_bits
let chunk_sub ofs = ofs land (chunk_size - 1)

type perms =
  | Uniform of permission option
      (** every offset in [lo, hi) has this permission ([None] = no
          permission anywhere, e.g. after a whole-block [free]) *)
  | Carved of permission IMap.t  (** per-offset; absent = no permission *)

type block_info = {
  lo : int;
  hi : int;
  contents : memval array IMap.t;  (** 16-byte chunks; missing = all [Undef] *)
  perms : perms;
}

type t = {
  next_block : block;
  blocks : block_info IMap.t;  (** blocks with at least one permission *)
  dead : block_info IMap.t;
      (** fully-freed blocks, kept for [valid_block]/[block_bounds]/
          [contents_at] observability. Segregating them keeps [blocks] —
          which every load, store and alloc searches and rebuilds — at
          live-block size instead of growing by one tombstone per
          function call executed by the interpreter. *)
}

let empty = { next_block = 1; blocks = IMap.empty; dead = IMap.empty }

let nextblock m = m.next_block

let valid_block m b =
  b > 0 && b < m.next_block && (IMap.mem b m.blocks || IMap.mem b m.dead)

let find_block m b =
  match IMap.find_opt b m.blocks with
  | Some _ as r -> r
  | None -> IMap.find_opt b m.dead

let block_bounds m b =
  match find_block m b with
  | Some bi -> Some (bi.lo, bi.hi)
  | None -> None

(** {1 Permissions} *)

let block_perm bi ofs =
  match bi.perms with
  | Uniform p -> if ofs >= bi.lo && ofs < bi.hi then p else None
  | Carved pm -> IMap.find_opt ofs pm

let perm m b ofs p =
  match IMap.find_opt b m.blocks with
  | None -> false
  | Some bi -> (
    match block_perm bi ofs with
    | None -> false
    | Some p' -> perm_order p' p)

let block_range_perm bi lo hi p =
  lo >= hi
  ||
  match bi.perms with
  | Uniform (Some p') -> lo >= bi.lo && hi <= bi.hi && perm_order p' p
  | Uniform None -> false
  | Carved pm ->
    let rec go ofs =
      ofs >= hi
      ||
      match IMap.find_opt ofs pm with
      | Some p' -> perm_order p' p && go (ofs + 1)
      | None -> false
    in
    go lo

let range_perm m b lo hi p =
  lo >= hi
  ||
  match IMap.find_opt b m.blocks with
  | None -> false
  | Some bi -> block_range_perm bi lo hi p

let valid_pointer m b ofs = perm m b ofs Nonempty

(* Weak validity: valid or one-past-the-end, as used by pointer
   comparisons. *)
let weak_valid_pointer m b ofs =
  valid_pointer m b ofs || valid_pointer m b (ofs - 1)

(* Materialize a per-offset permission map for a block about to be
   carved. Only reached the first time a sub-range operation hits a
   uniform block. *)
let perms_to_map bi =
  match bi.perms with
  | Carved pm -> pm
  | Uniform None -> IMap.empty
  | Uniform (Some p) ->
    let rec fill ofs acc =
      if ofs >= bi.hi then acc else fill (ofs + 1) (IMap.add ofs p acc)
    in
    fill bi.lo IMap.empty

(* Set (or with [None], clear) the permission on [lo, hi) of a per-offset
   map. *)
let map_set_range pm lo hi p =
  let rec go ofs pm =
    if ofs >= hi then pm
    else
      go (ofs + 1)
        (match p with
        | None -> IMap.remove ofs pm
        | Some p -> IMap.add ofs p pm)
  in
  go lo pm

(* Normalize: an emptied carved map means no permission anywhere. *)
let carved pm = if IMap.is_empty pm then Uniform None else Carved pm

(** {1 Allocation and deallocation} *)

let alloc m lo hi =
  let b = m.next_block in
  let bi = { lo; hi; contents = IMap.empty; perms = Uniform (Some Freeable) } in
  ({ m with next_block = b + 1; blocks = IMap.add b bi m.blocks }, b)

let free m b lo hi =
  if lo >= hi then Some m
  else
    match IMap.find_opt b m.blocks with
    | None -> None (* never-allocated or already fully freed: no permission *)
    | Some bi ->
      if not (block_range_perm bi lo hi Freeable) then None
      else
        let perms =
          match bi.perms with
          | Uniform _ when lo <= bi.lo && hi >= bi.hi -> Uniform None
          | _ -> carved (map_set_range (perms_to_map bi) lo hi None)
        in
        (match perms with
        | Uniform None ->
          (* No permission left anywhere: retire the block to [dead]
             (contents are retained, exactly as a freed block keeps its
             contents in the one-map representation). *)
          Some
            { m with
              blocks = IMap.remove b m.blocks;
              dead = IMap.add b { bi with perms } m.dead }
        | _ -> Some { m with blocks = IMap.add b { bi with perms } m.blocks })

let rec free_list m = function
  | [] -> Some m
  | (b, lo, hi) :: rest -> (
    match free m b lo hi with None -> None | Some m' -> free_list m' rest)

(** Remove permissions on [b, lo..hi) entirely (used by [LM.free_args]). *)
let drop_range m b lo hi = free m b lo hi

(** Restrict permissions on a range to at most [p]. *)
let drop_perm m b lo hi p =
  match find_block m b with
  | None -> None
  | Some bi ->
    if lo >= hi then Some m
    else
      if not (block_range_perm bi lo hi p) then None
      else
        (* [bi] is live: a [dead] block has no permission and cannot pass
           the range check above. *)
        let perms =
          match bi.perms with
          | Uniform (Some p0) when p0 = p -> bi.perms
          | Uniform _ when lo <= bi.lo && hi >= bi.hi -> Uniform (Some p)
          | _ -> Carved (map_set_range (perms_to_map bi) lo hi (Some p))
        in
        Some { m with blocks = IMap.add b { bi with perms } m.blocks }

(** Re-grant permission [p] on a range (used by [LM.mix] to restore the
    argument region after an external call returns). The range is clamped
    to the block's [lo, hi) bounds — a grant cannot make offsets outside
    the allocation valid — and a range entirely outside the bounds is an
    error ([None]). *)
let grant_perm m b lo hi p =
  match find_block m b with
  | None -> None
  | Some bi ->
    if lo >= hi then Some m
    else
      let lo = max lo bi.lo and hi = min hi bi.hi in
      if lo >= hi then None
      else
        let perms =
          match bi.perms with
          | Uniform (Some p0) when p0 = p -> bi.perms
          | Uniform _ when lo <= bi.lo && hi >= bi.hi -> Uniform (Some p)
          | _ -> Carved (map_set_range (perms_to_map bi) lo hi (Some p))
        in
        (* A grant on a fully-freed block resurrects permissions, so the
           block moves back from [dead] to [blocks]. *)
        Some
          { m with
            blocks = IMap.add b { bi with perms } m.blocks;
            dead = IMap.remove b m.dead }

(** {1 Loads and stores} *)

let get_byte contents ofs =
  match IMap.find_opt (chunk_ix ofs) contents with
  | None -> Undef
  | Some a -> a.(chunk_sub ofs)

(* Read [n] bytes starting at [ofs], paying one chunk lookup per chunk
   crossed (not per byte). Built back-to-front; the initial index is
   strictly below every index in range, so the first iteration fetches. *)
let getN bi ofs n =
  let rec go i ix arr acc =
    if i < 0 then acc
    else
      let o = ofs + i in
      let ix' = chunk_ix o in
      let arr = if ix' = ix then arr else IMap.find_opt ix' bi.contents in
      let mv = match arr with None -> Undef | Some a -> a.(chunk_sub o) in
      go (i - 1) ix' arr (mv :: acc)
  in
  go (n - 1) (chunk_ix ofs - 1) None []

(* Write the bytes of [mvl] starting at [ofs]: copy each touched chunk
   once, fill it, and put it back — one or two map operations for a
   typical 8-byte store. The copies are fresh, so the update is
   observationally pure. *)
let setN bi ofs mvl =
  let contents = ref bi.contents in
  let cur_ix = ref (chunk_ix ofs - 1) in
  let cur = ref [||] in
  let flush () =
    if Array.length !cur > 0 then contents := IMap.add !cur_ix !cur !contents
  in
  List.iteri
    (fun i mv ->
      let o = ofs + i in
      let ix = chunk_ix o in
      if ix <> !cur_ix then begin
        flush ();
        cur_ix := ix;
        cur :=
          (match IMap.find_opt ix !contents with
          | Some a -> Array.copy a
          | None -> Array.make chunk_size Undef)
      end;
      !cur.(chunk_sub o) <- mv)
    mvl;
  flush ();
  { bi with contents = !contents }

let aligned chunk ofs = ofs mod align_chunk chunk = 0

let loadbytes m b ofs n =
  if n < 0 then None
  else
    match find_block m b with
    | None -> None
    | Some bi ->
      if not (block_range_perm bi ofs (ofs + n) Readable) then None
      else Some (getN bi ofs n)

(* The single write path: permissions are assumed already checked. *)
let storebytes_unchecked m b bi ofs mvl =
  { m with blocks = IMap.add b (setN bi ofs mvl) m.blocks }

let storebytes m b ofs mvl =
  match IMap.find_opt b m.blocks with
  | None -> (
    match IMap.find_opt b m.dead with
    | None -> None
    | Some bi ->
      (* A dead block passes the range check only for the empty range,
         which writes nothing. *)
      let n = List.length mvl in
      if not (block_range_perm bi ofs (ofs + n) Writable) then None else Some m)
  | Some bi ->
    let n = List.length mvl in
    if not (block_range_perm bi ofs (ofs + n) Writable) then None
    else Some (storebytes_unchecked m b bi ofs mvl)

(* {2 Fast paths for the interpreter-hot access shapes}

   An aligned 4- or 8-byte access never crosses a 16-byte chunk boundary,
   so the common [Mint32]/[Mint64] loads and stores can read or write one
   chunk array directly instead of going through the intermediate
   [memval list] of [encode_val]/[getN]/[decode_val]. The fast paths
   produce bit-identical chunk contents and results; every shape they do
   not cover (undef bytes, mixed fragments, float chunks, sub-word
   accesses) returns [None] and falls back to the generic path. *)

let byte_at a i = match a.(i) with Byte b -> b | _ -> -1

let load_fast chunk bi ofs : value option =
  match chunk with
  | Mint32 | Mint64 -> (
    match IMap.find_opt (chunk_ix ofs) bi.contents with
    | None -> None
    | Some a -> (
      let base = chunk_sub ofs in
      match (chunk, a.(base)) with
      | Mint32, Byte b0 ->
        let b1 = byte_at a (base + 1)
        and b2 = byte_at a (base + 2)
        and b3 = byte_at a (base + 3) in
        if b1 lor b2 lor b3 < 0 then None
        else
          Some
            (Vint (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))))
      | Mint64, Byte b0 ->
        let b1 = byte_at a (base + 1)
        and b2 = byte_at a (base + 2)
        and b3 = byte_at a (base + 3)
        and b4 = byte_at a (base + 4)
        and b5 = byte_at a (base + 5)
        and b6 = byte_at a (base + 6)
        and b7 = byte_at a (base + 7) in
        if b1 lor b2 lor b3 lor b4 lor b5 lor b6 lor b7 < 0 then None
        else
          let lo = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
          let hi = b4 lor (b5 lsl 8) lor (b6 lsl 16) lor (b7 lsl 24) in
          Some
            (Vlong
               (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)))
      | Mint64, Fragment (v0, Q64, 7) ->
        (* A pointer stored by [inj_value Q64]: the same value at
           decreasing indices 7..0. Stores write one shared value into
           all eight fragments, so physical equality suffices; anything
           else falls back to [proj_value]. *)
        let rec check i =
          i > 7
          ||
          match a.(base + i) with
          | Fragment (v', Q64, idx) when idx = 7 - i && v' == v0 -> check (i + 1)
          | _ -> false
        in
        if check 1 then (match v0 with Vptr _ -> Some v0 | _ -> None) else None
      | _ -> None))
  | _ -> None

let chunk_for_write bi ix =
  match IMap.find_opt ix bi.contents with
  | Some a -> Array.copy a
  | None -> Array.make chunk_size Undef

let store_fast bi ofs chunk v : block_info option =
  match (chunk, v) with
  | Mint32, Vint n ->
    let ix = chunk_ix ofs and base = chunk_sub ofs in
    let a = chunk_for_write bi ix in
    let x = Int32.to_int n land 0xFFFFFFFF in
    a.(base) <- Byte (x land 0xFF);
    a.(base + 1) <- Byte ((x lsr 8) land 0xFF);
    a.(base + 2) <- Byte ((x lsr 16) land 0xFF);
    a.(base + 3) <- Byte ((x lsr 24) land 0xFF);
    Some { bi with contents = IMap.add ix a bi.contents }
  | Mint64, Vlong n ->
    let ix = chunk_ix ofs and base = chunk_sub ofs in
    let a = chunk_for_write bi ix in
    let lo = Int64.to_int (Int64.logand n 0xFFFFFFFFL) in
    let hi = Int64.to_int (Int64.shift_right_logical n 32) in
    a.(base) <- Byte (lo land 0xFF);
    a.(base + 1) <- Byte ((lo lsr 8) land 0xFF);
    a.(base + 2) <- Byte ((lo lsr 16) land 0xFF);
    a.(base + 3) <- Byte ((lo lsr 24) land 0xFF);
    a.(base + 4) <- Byte (hi land 0xFF);
    a.(base + 5) <- Byte ((hi lsr 8) land 0xFF);
    a.(base + 6) <- Byte ((hi lsr 16) land 0xFF);
    a.(base + 7) <- Byte ((hi lsr 24) land 0xFF);
    Some { bi with contents = IMap.add ix a bi.contents }
  | Mint64, (Vptr _ as vp) ->
    let ix = chunk_ix ofs and base = chunk_sub ofs in
    let a = chunk_for_write bi ix in
    for i = 0 to 7 do
      a.(base + i) <- Fragment (vp, Q64, 7 - i)
    done;
    Some { bi with contents = IMap.add ix a bi.contents }
  | _ -> None

let load chunk m b ofs =
  if not (aligned chunk ofs) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi -> (
      let n = size_chunk chunk in
      if not (block_range_perm bi ofs (ofs + n) Readable) then None
      else
        match load_fast chunk bi ofs with
        | Some v -> Some v
        | None -> Some (decode_val chunk (getN bi ofs n)))

let store chunk m b ofs v =
  if not (aligned chunk ofs) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi -> (
      if not (block_range_perm bi ofs (ofs + size_chunk chunk) Writable) then
        None
      else
        match store_fast bi ofs chunk v with
        | Some bi' -> Some { m with blocks = IMap.add b bi' m.blocks }
        | None -> Some (storebytes_unchecked m b bi ofs (encode_val chunk v)))

(* Fused frame allocation: observably identical to
   [alloc m 0 sz] followed by two [store Mint64] of the frame link and
   return address, but builds the block's contents locally and inserts
   into the blocks map once instead of three times. [Pallocframe]
   executes this on every function entry, so the two saved map rebuilds
   are measurable in the interpreter hot loop. *)
let store_bi bi ofs chunk v =
  if not (aligned chunk ofs) then None
  else if not (block_range_perm bi ofs (ofs + size_chunk chunk) Writable) then
    None
  else
    match store_fast bi ofs chunk v with
    | Some bi' -> Some bi'
    | None -> Some (setN bi ofs (encode_val chunk v))

let alloc_frame m sz ofs_link link ofs_ra ra =
  let b = m.next_block in
  let bi = { lo = 0; hi = sz; contents = IMap.empty; perms = Uniform (Some Freeable) } in
  match store_bi bi ofs_link Mint64 link with
  | None -> None
  | Some bi1 -> (
    match store_bi bi1 ofs_ra Mint64 ra with
    | None -> None
    | Some bi2 ->
      Some ({ m with next_block = b + 1; blocks = IMap.add b bi2 m.blocks }, b))

let loadv chunk m = function
  | Vptr (b, ofs) -> load chunk m b ofs
  | _ -> None

let storev chunk m a v =
  match a with Vptr (b, ofs) -> store chunk m b ofs v | _ -> None

(** {1 Observation helpers used by relational checks} *)

(** All (block, offset) pairs that hold at least [Nonempty] permission.
    Only used by bounded relational checks in tests; memories there are
    small. *)
let fold_live_offsets m f acc =
  IMap.fold
    (fun b bi acc ->
      match bi.perms with
      | Uniform None -> acc
      | Uniform (Some _) ->
        let rec go ofs acc =
          if ofs >= bi.hi then acc else go (ofs + 1) (f b ofs acc)
        in
        go bi.lo acc
      | Carved pm -> IMap.fold (fun ofs _ acc -> f b ofs acc) pm acc)
    m.blocks acc

let contents_at m b ofs =
  match find_block m b with
  | None -> Undef
  | Some bi -> get_byte bi.contents ofs

let perm_at m b ofs =
  match find_block m b with
  | None -> None
  | Some bi -> block_perm bi ofs

(** Per-offset permission entries materialized for block [b]: 0 while the
    block is in the uniform representation, the carved-map cardinality
    otherwise. Representation introspection for tests and the bench; not
    part of the semantics. *)
let perm_entries m b =
  match IMap.find_opt b m.blocks with
  | None -> 0
  | Some bi -> (
    match bi.perms with Uniform _ -> 0 | Carved pm -> IMap.cardinal pm)

(** [unchanged_on pred m m'] holds when every location satisfying [pred]
    keeps its permission and contents from [m] to [m']. This is CompCert's
    [Mem.unchanged_on], the workhorse of the [injp] accessibility relation
    (paper, Fig. 9). *)
let unchanged_on (pred : block -> int -> bool) m m' =
  m.next_block <= m'.next_block
  && fold_live_offsets m
       (fun b ofs ok ->
         ok
         && ((not (pred b ofs))
            || perm_at m b ofs = perm_at m' b ofs
               && contents_at m b ofs = contents_at m' b ofs))
       true

(* Equality is semantic, not representational: a carved block whose map
   happens to cover [lo, hi) uniformly equals the same block in uniform
   form, and an explicitly-[Undef] content chunk equals an absent one.
   Structural fast paths cover the common cases. *)
let block_equal b1 b2 =
  b1.lo = b2.lo && b1.hi = b2.hi
  && (match (b1.perms, b2.perms) with
     | Uniform p, Uniform q -> p = q
     | Carved p, Carved q when IMap.equal ( = ) p q -> true
     | _ ->
       let rec go ofs =
         ofs >= b1.hi || (block_perm b1 ofs = block_perm b2 ofs && go (ofs + 1))
       in
       go b1.lo)
  && (IMap.equal ( = ) b1.contents b2.contents
     ||
     let rec go ofs =
       ofs >= b1.hi
       || (get_byte b1.contents ofs = get_byte b2.contents ofs && go (ofs + 1))
     in
     go b1.lo)

(* Equality compares the union view: whether a permission-less block sits
   in [blocks] (freed piecewise, normalized carved) or in [dead] (freed
   whole) is representation, not semantics. *)
let all_blocks m = IMap.union (fun _ bi _ -> Some bi) m.blocks m.dead

let equal m1 m2 =
  m1.next_block = m2.next_block
  && IMap.equal block_equal (all_blocks m1) (all_blocks m2)

let pp fmt m =
  Format.fprintf fmt "@[<v>mem (next=b%d)" m.next_block;
  IMap.iter
    (fun b bi -> Format.fprintf fmt "@ b%d: [%d,%d)" b bi.lo bi.hi)
    (all_blocks m);
  Format.fprintf fmt "@]"
