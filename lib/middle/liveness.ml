(** Liveness analysis over RTL (backward dataflow, CompCert's [Liveness]).

    Used by register allocation (interference construction) and by the
    dead-code elimination pass. *)

(** Sets of pseudo-registers. Pseudo-registers are small non-negative
    integers, so an immutable packed bitset (63 bits per word, trailing
    zero words trimmed so the representation is canonical) beats a
    balanced tree on every operation the dataflow solver performs:
    [union]/[diff]/[equal] are word-parallel, [mem]/[add]/[remove] are
    O(words). The interface is the [Set.Make (Int)] subset the compiler
    uses. *)
module RSet : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val mem : int -> t -> bool
  val add : int -> t -> t
  val remove : int -> t -> t
  val union : t -> t -> t
  val diff : t -> t -> t
  val equal : t -> t -> bool
  val of_list : int list -> t
  val elements : t -> int list
  val cardinal : t -> int
  val iter : (int -> unit) -> t -> unit
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
end = struct
  type t = int array

  let bits = Sys.int_size
  let empty : t = [||]
  let is_empty s = Array.length s = 0

  let trim (a : t) : t =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do
      decr n
    done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let mem i s =
    let w = i / bits in
    w < Array.length s && s.(w) land (1 lsl (i mod bits)) <> 0

  let add i s =
    let w = i / bits and b = i mod bits in
    let n = Array.length s in
    if w < n && s.(w) land (1 lsl b) <> 0 then s
    else begin
      let a = Array.make (max n (w + 1)) 0 in
      Array.blit s 0 a 0 n;
      a.(w) <- a.(w) lor (1 lsl b);
      a
    end

  let remove i s =
    let w = i / bits and b = i mod bits in
    if w >= Array.length s || s.(w) land (1 lsl b) = 0 then s
    else begin
      let a = Array.copy s in
      a.(w) <- a.(w) land lnot (1 lsl b);
      trim a
    end

  (* [subset b a]: every bit of [b] is in [a]. Checked before [union]
     allocates, so the converged phase of a fixpoint solve — where joins
     almost always absorb — allocates nothing at all. *)
  let subset (b : t) (a : t) =
    let la = Array.length a and lb = Array.length b in
    lb <= la
    &&
    let rec go i = i >= lb || (b.(i) land lnot a.(i) = 0 && go (i + 1)) in
    go 0

  let union (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else if subset b a then a
    else if subset a b then b
    else begin
      let l = max la lb in
      let r = Array.make l 0 in
      for i = 0 to l - 1 do
        r.(i) <-
          (if i < la then a.(i) else 0) lor (if i < lb then b.(i) else 0)
      done;
      r
    end

  let diff (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then a
    else begin
      (* Nothing to remove: keep [a] physically (no copy). *)
      let l = min la lb in
      let rec disjoint i = i >= l || (a.(i) land b.(i) = 0 && disjoint (i + 1)) in
      if disjoint 0 then a
      else begin
        let r = Array.copy a in
        for i = 0 to l - 1 do
          r.(i) <- a.(i) land lnot b.(i)
        done;
        trim r
      end
    end

  let equal (a : t) (b : t) =
    a == b
    ||
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let of_list l = List.fold_left (fun s i -> add i s) empty l

  let iter f s =
    for w = 0 to Array.length s - 1 do
      let x = ref s.(w) in
      while !x <> 0 do
        let b = !x land - !x in
        (* lowest set bit *)
        let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
        f ((w * bits) + log2 b 0);
        x := !x land lnot b
      done
    done

  let fold f s acc =
    let acc = ref acc in
    iter (fun i -> acc := f i !acc) s;
    !acc

  let elements s = List.rev (fold (fun i l -> i :: l) s [])

  let cardinal s =
    let c = ref 0 in
    Array.iter
      (fun w ->
        let x = ref w in
        while !x <> 0 do
          x := !x land (!x - 1);
          incr c
        done)
      s;
    !c
end

module L = struct
  type t = RSet.t

  let bot = RSet.empty
  let equal = RSet.equal
  let lub = RSet.union
end

module Solver = Support.Fixpoint.Make (L)

(* Per-node defs/uses in dense arrays keyed by node — converted to sets
   once per analysis, probed without hashing on every transfer
   application inside the fixpoint loop. *)
type def_use = {
  du_size : int;  (** one past the largest node id *)
  du_defs : RSet.t array;
  du_uses : RSet.t array;
}

let def_use_table (f : Rtl.coq_function) : def_use =
  let size =
    match Rtl.Regmap.max_binding_opt f.Rtl.fn_code with
    | Some (n, _) -> n + 1
    | None -> 0
  in
  let defs = Array.make size RSet.empty in
  let uses = Array.make size RSet.empty in
  Rtl.Regmap.iter
    (fun n i ->
      defs.(n) <- RSet.of_list (Rtl.instr_defs i);
      uses.(n) <- RSet.of_list (Rtl.instr_uses i))
    f.Rtl.fn_code;
  { du_size = size; du_defs = defs; du_uses = uses }

(* Transfer function at node [n]:
   live-in = (live-out \ defs) ∪ uses.
   [diff] and [union] return an argument physically whenever they can,
   so a stable transfer application allocates nothing. *)
let transfer_cached tbl n (live_out : RSet.t) : RSet.t =
  if n < 0 || n >= tbl.du_size then RSet.empty
  else RSet.union (RSet.diff live_out tbl.du_defs.(n)) tbl.du_uses.(n)

let solve_out_uncached (f : Rtl.coq_function) : def_use * (int -> RSet.t) =
  let tbl = def_use_table f in
  (* Successor edges as a dense array, built in one code traversal: the
     solver asks for them once per node when inverting the graph and once
     when sizing it, and each query through the code tree would allocate
     a fresh list. *)
  let succs = Array.make (max tbl.du_size 1) [] in
  let nodes = ref [] in
  Rtl.Regmap.iter
    (fun n i ->
      if n >= 0 && n < tbl.du_size then begin
        succs.(n) <- Rtl.successors_instr i;
        nodes := n :: !nodes
      end)
    f.Rtl.fn_code;
  (* solve_backward gives the fact at the exit of each node: the join of
     live-ins of successors. live-in is then one transfer application. *)
  let live_out =
    Solver.solve_backward
      ~successors:(fun n -> if n >= 0 && n < tbl.du_size then succs.(n) else [])
      ~transfer:(fun n out -> transfer_cached tbl n out)
      ~entries:[] (List.rev !nodes)
  in
  (tbl, live_out)

(* Solved-liveness cache, keyed on the function value itself (physical
   equality — [coq_function]s are immutable). The register allocator and
   its validator each ask for the same function's liveness within one
   compilation, but a whole program's functions are allocated first and
   validated after, so a single-entry cache would always miss: a small
   FIFO of recent solves covers the program. The cached solution is a
   pure lookup into a solved dense array, so sharing it is safe. *)
let solve_cap = 64
let solve_memo : (Rtl.coq_function * (def_use * (int -> RSet.t))) list ref =
  ref []

let solve_out (f : Rtl.coq_function) : def_use * (int -> RSet.t) =
  match List.find_opt (fun (g, _) -> g == f) !solve_memo with
  | Some (_, r) -> r
  | None ->
    let r = solve_out_uncached f in
    let kept =
      if List.length !solve_memo >= solve_cap then
        List.filteri (fun i _ -> i < solve_cap - 1) !solve_memo
      else !solve_memo
    in
    solve_memo := (f, r) :: kept;
    r

(* live-in memoized in a dense array over nodes. *)
let memo_live_in tbl (live_out : int -> RSet.t) : int -> RSet.t =
  let memo = Array.make (max tbl.du_size 1) RSet.empty in
  let filled = Array.make (max tbl.du_size 1) false in
  fun n ->
    if n < 0 || n >= tbl.du_size then RSet.empty
    else if filled.(n) then memo.(n)
    else begin
      let s = transfer_cached tbl n (live_out n) in
      memo.(n) <- s;
      filled.(n) <- true;
      s
    end

(** [analyze f] returns [live_in]: for each node, the registers live at
    the entrance of the node's instruction. Results are memoized, so
    repeated queries at the same node cost one array read. *)
let analyze (f : Rtl.coq_function) : int -> RSet.t =
  let tbl, live_out = solve_out f in
  memo_live_in tbl live_out

(** Live-out of each node. *)
let analyze_out (f : Rtl.coq_function) : int -> RSet.t =
  snd (solve_out f)

(** Both live-in and live-out from a single fixpoint solve, for clients
    that need the two views of the same analysis (the allocation
    validator runs its coloring check on live-out and its code check on
    live-in). *)
let analyze_both (f : Rtl.coq_function) : (int -> RSet.t) * (int -> RSet.t) =
  let tbl, live_out = solve_out f in
  (memo_live_in tbl live_out, live_out)
