(** Liveness analysis over RTL (backward dataflow, CompCert's [Liveness]).

    Used by register allocation (interference construction) and by the
    dead-code elimination pass. *)

(** Sets of pseudo-registers. Pseudo-registers are small non-negative
    integers, so an immutable packed bitset (63 bits per word, trailing
    zero words trimmed so the representation is canonical) beats a
    balanced tree on every operation the dataflow solver performs:
    [union]/[diff]/[equal] are word-parallel, [mem]/[add]/[remove] are
    O(words). The interface is the [Set.Make (Int)] subset the compiler
    uses. *)
module RSet : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val mem : int -> t -> bool
  val add : int -> t -> t
  val remove : int -> t -> t
  val union : t -> t -> t
  val diff : t -> t -> t
  val equal : t -> t -> bool
  val of_list : int list -> t
  val elements : t -> int list
  val cardinal : t -> int
  val iter : (int -> unit) -> t -> unit
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
end = struct
  type t = int array

  let bits = Sys.int_size
  let empty : t = [||]
  let is_empty s = Array.length s = 0

  let trim (a : t) : t =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do
      decr n
    done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let mem i s =
    let w = i / bits in
    w < Array.length s && s.(w) land (1 lsl (i mod bits)) <> 0

  let add i s =
    let w = i / bits and b = i mod bits in
    let n = Array.length s in
    if w < n && s.(w) land (1 lsl b) <> 0 then s
    else begin
      let a = Array.make (max n (w + 1)) 0 in
      Array.blit s 0 a 0 n;
      a.(w) <- a.(w) lor (1 lsl b);
      a
    end

  let remove i s =
    let w = i / bits and b = i mod bits in
    if w >= Array.length s || s.(w) land (1 lsl b) = 0 then s
    else begin
      let a = Array.copy s in
      a.(w) <- a.(w) land lnot (1 lsl b);
      trim a
    end

  let union (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let l = max la lb in
      let r = Array.make l 0 in
      for i = 0 to l - 1 do
        r.(i) <-
          (if i < la then a.(i) else 0) lor (if i < lb then b.(i) else 0)
      done;
      (* Preserve sharing when one side absorbs the other: the fixpoint
         solver's stability test is then a physical-equality check. *)
      let eq (x : t) lx =
        lx = l
        &&
        let rec go i = i >= l || (r.(i) = x.(i) && go (i + 1)) in
        go 0
      in
      if eq a la then a else if eq b lb then b else r
    end

  let diff (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then a
    else begin
      let r = Array.copy a in
      for i = 0 to min la lb - 1 do
        r.(i) <- a.(i) land lnot b.(i)
      done;
      trim r
    end

  let equal (a : t) (b : t) =
    a == b
    ||
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let of_list l = List.fold_left (fun s i -> add i s) empty l

  let iter f s =
    for w = 0 to Array.length s - 1 do
      let x = ref s.(w) in
      while !x <> 0 do
        let b = !x land - !x in
        (* lowest set bit *)
        let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
        f ((w * bits) + log2 b 0);
        x := !x land lnot b
      done
    done

  let fold f s acc =
    let acc = ref acc in
    iter (fun i -> acc := f i !acc) s;
    !acc

  let elements s = List.rev (fold (fun i l -> i :: l) s [])

  let cardinal s =
    let c = ref 0 in
    Array.iter
      (fun w ->
        let x = ref w in
        while !x <> 0 do
          x := !x land (!x - 1);
          incr c
        done)
      s;
    !c
end

module L = struct
  type t = RSet.t

  let bot = RSet.empty
  let equal = RSet.equal
  let lub = RSet.union
end

module Solver = Support.Fixpoint.Make (L)

(* Per-node defs/uses, converted to sets once per analysis instead of on
   every transfer application inside the fixpoint loop. *)
let def_use_table (f : Rtl.coq_function) : (int, RSet.t * RSet.t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Rtl.Regmap.iter
    (fun n i ->
      Hashtbl.replace tbl n
        (RSet.of_list (Rtl.instr_defs i), RSet.of_list (Rtl.instr_uses i)))
    f.Rtl.fn_code;
  tbl

(* Transfer function at node [n]:
   live-in = (live-out \ defs) ∪ uses. *)
let transfer_cached tbl n (live_out : RSet.t) : RSet.t =
  match Hashtbl.find_opt tbl n with
  | None -> RSet.empty
  | Some (defs, uses) -> RSet.union (RSet.diff live_out defs) uses

let solve_out (f : Rtl.coq_function) :
    (int, RSet.t * RSet.t) Hashtbl.t * (int -> RSet.t) =
  let tbl = def_use_table f in
  let nodes = List.map fst (Rtl.Regmap.bindings f.Rtl.fn_code) in
  let successors n =
    match Rtl.Regmap.find_opt n f.Rtl.fn_code with
    | Some i -> Rtl.successors_instr i
    | None -> []
  in
  (* solve_backward gives the fact at the exit of each node: the join of
     live-ins of successors. live-in is then one transfer application. *)
  let live_out =
    Solver.solve_backward ~successors
      ~transfer:(fun n out -> transfer_cached tbl n out)
      ~entries:[] nodes
  in
  (tbl, live_out)

(** [analyze f] returns [live_in]: for each node, the registers live at
    the entrance of the node's instruction. Results are memoized, so
    repeated queries at the same node cost one hash lookup. *)
let analyze (f : Rtl.coq_function) : int -> RSet.t =
  let tbl, live_out = solve_out f in
  let memo : (int, RSet.t) Hashtbl.t = Hashtbl.create 64 in
  fun n ->
    match Hashtbl.find_opt memo n with
    | Some s -> s
    | None ->
      let s = transfer_cached tbl n (live_out n) in
      Hashtbl.replace memo n s;
      s

(** Live-out of each node. *)
let analyze_out (f : Rtl.coq_function) : int -> RSet.t =
  snd (solve_out f)

(** Both live-in and live-out from a single fixpoint solve, for clients
    that need the two views of the same analysis (the allocation
    validator runs its coloring check on live-out and its code check on
    live-in). *)
let analyze_both (f : Rtl.coq_function) : (int -> RSet.t) * (int -> RSet.t) =
  let tbl, live_out = solve_out f in
  let memo : (int, RSet.t) Hashtbl.t = Hashtbl.create 64 in
  let live_in n =
    match Hashtbl.find_opt memo n with
    | Some s -> s
    | None ->
      let s = transfer_cached tbl n (live_out n) in
      Hashtbl.replace memo n s;
      s
  in
  (live_in, live_out)
