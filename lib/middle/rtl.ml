(** RTL: register transfer language over a control-flow graph (CompCert's
    [RTL]).

    Functions are CFGs of instructions over an unbounded supply of
    pseudo-registers. This is the representation on which all scalar
    optimizations (constant propagation, CSE, dead code, inlining,
    tail-call recognition) operate. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Memory.Memdata
open Iface
open Iface.Li

type reg = int

let pp_reg fmt r = Format.fprintf fmt "x%d" r

module Regmap = Map.Make (Int)

type node = int

(** Call targets: register-indirect or by symbol. *)
type ros = Rreg of reg | Rsymbol of Ident.t

type instruction =
  | Inop of node
  | Iop of Op.operation * reg list * reg * node
  | Iload of chunk * Op.addressing * reg list * reg * node
  | Istore of chunk * Op.addressing * reg list * reg * node
  | Icall of signature * ros * reg list * reg * node
  | Itailcall of signature * ros * reg list
  | Icond of Op.condition * reg list * node * node
  | Ireturn of reg option

type code = instruction Regmap.t

type coq_function = {
  fn_sig : signature;
  fn_params : reg list;
  fn_stacksize : int;
  fn_code : code;
  fn_entrypoint : node;
}

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig
let link p1 p2 = Ast.link ~internal_sig p1 p2

let successors_instr = function
  | Inop n | Iop (_, _, _, n) | Iload (_, _, _, _, n) | Istore (_, _, _, _, n)
  | Icall (_, _, _, _, n) ->
    [ n ]
  | Icond (_, _, n1, n2) -> [ n1; n2 ]
  | Itailcall _ | Ireturn _ -> []

let instr_uses = function
  | Inop _ -> []
  | Iop (_, args, _, _) -> args
  | Iload (_, _, args, _, _) -> args
  | Istore (_, _, args, src, _) -> args @ [ src ]
  | Icall (_, ros, args, _, _) -> (
    match ros with Rreg r -> r :: args | Rsymbol _ -> args)
  | Itailcall (_, ros, args) -> (
    match ros with Rreg r -> r :: args | Rsymbol _ -> args)
  | Icond (_, args, _, _) -> args
  | Ireturn (Some r) -> [ r ]
  | Ireturn None -> []

let instr_defs = function
  | Iop (_, _, res, _) | Iload (_, _, _, res, _) | Icall (_, _, _, res, _) ->
    [ res ]
  | _ -> []

let max_reg_function (f : coq_function) =
  let m = List.fold_left max 0 f.fn_params in
  Regmap.fold
    (fun _ i acc ->
      List.fold_left max acc (instr_uses i @ instr_defs i))
    f.fn_code m

let max_node (f : coq_function) = Regmap.fold (fun n _ acc -> max n acc) f.fn_code 0

(** {1 Semantics}

    The semantics is parameterized over the register-set representation
    ({!regops}), so the same transition rules run two execution cores:

    - the {e persistent} core over [value Regmap.t] (the naive
      reference), and
    - the {e mutable} core over a flat value array with grow-on-write
      ({!Mregset}), where a register write is an in-place store.

    Mutation is safe because every activation owns its register set
    exclusively: a call hands the callee a fresh set built from the
    argument {e values} ([rinit]), the caller's set sits untouched in
    its stack frame until the return writes the single result register,
    and the C-level interface carries argument/result values — never a
    register set — so no live array can leak across the LTS boundary. *)

type regset = value Regmap.t

let rget r (rs : regset) = Option.value (Regmap.find_opt r rs) ~default:Vundef
let rset r v (rs : regset) = Regmap.add r v rs

let init_regs args params =
  let rec go rs params args =
    match (params, args) with
    | p :: params', a :: args' -> go (rset p a rs) params' args'
    | _, _ -> rs
  in
  go Regmap.empty params args

(** Register-set operations, instantiating the transition rules at a
    concrete representation. *)
type 'rs regops = {
  oget : reg -> 'rs -> value;
  oset : reg -> value -> 'rs -> 'rs;
  oinit : value list -> reg list -> 'rs;  (** fresh set for a callee *)
}

let pure_ops : regset regops = { oget = rget; oset = rset; oinit = init_regs }

(** Flat mutable register set: a dense value array indexed by
    pseudo-register, doubling on out-of-range writes (RTL registers are
    dense but unbounded); reads beyond the array are [Vundef]. *)
module Mregset = struct
  type t = { mutable arr : value array }

  let get r (rs : t) = if r < Array.length rs.arr then rs.arr.(r) else Vundef

  let set r v (rs : t) =
    let n = Array.length rs.arr in
    if r >= n then begin
      let arr' = Array.make (max (r + 1) (2 * n)) Vundef in
      Array.blit rs.arr 0 arr' 0 n;
      rs.arr <- arr'
    end;
    rs.arr.(r) <- v;
    rs

  let init args params =
    let rs = { arr = Array.make (max 32 (List.fold_left max 0 params + 1)) Vundef } in
    let rec go params args =
      match (params, args) with
      | p :: params', a :: args' ->
        ignore (set p a rs);
        go params' args'
      | _, _ -> rs
    in
    go params args
end

let mut_ops : Mregset.t regops =
  { oget = Mregset.get; oset = Mregset.set; oinit = Mregset.init }

type 'rs stackframe = {
  sf_res : reg;
  sf_f : coq_function;
  sf_sp : value;
  sf_pc : node;
  sf_rs : 'rs;
}

type 'rs state =
  | State of 'rs stackframe list * coq_function * value * node * 'rs * Mem.t
  | Callstate of 'rs stackframe list * value * signature * value list * Mem.t
  | Returnstate of 'rs stackframe list * value * Mem.t

type genv = (coq_function, unit) Genv.t

let genv_view (ge : genv) : Op.genv_view =
  { Op.find_symbol = (fun id -> Genv.find_symbol ge id) }

let ros_address (ge : genv) ops ros rs =
  match ros with
  | Rreg r -> Some (ops.oget r rs)
  | Rsymbol id -> (
    match Genv.find_symbol ge id with Some b -> Some (Vptr (b, 0)) | None -> None)

let free_stack m sp sz =
  match sp with
  | Vptr (b, 0) -> Mem.free m b 0 sz
  | _ -> if sz = 0 then Some m else None

(* Writes go through [ops.oset] only on success paths: a stuck step has
   not touched an in-place register set, so the interaction probes that
   follow see the pre-step state. *)
let step (ge : genv) (ops : 'rs regops) (s : 'rs state) :
    (Core.Events.trace * 'rs state) list =
  let ret s' = [ (Core.Events.e0, s') ] in
  let rget_list rl rs = List.map (fun r -> ops.oget r rs) rl in
  match s with
  | State (stack, f, sp, pc, rs, m) -> (
    match Regmap.find_opt pc f.fn_code with
    | None -> []
    | Some instr -> (
      match instr with
      | Inop n -> ret (State (stack, f, sp, n, rs, m))
      | Iop (op, args, res, n) -> (
        match Op.eval_operation (genv_view ge) sp op (rget_list args rs) m with
        | Some v -> ret (State (stack, f, sp, n, ops.oset res v rs, m))
        | None -> [])
      | Iload (chunk, addr, args, dst, n) -> (
        match Op.eval_addressing (genv_view ge) sp addr (rget_list args rs) with
        | Some va -> (
          match Mem.loadv chunk m va with
          | Some v -> ret (State (stack, f, sp, n, ops.oset dst v rs, m))
          | None -> [])
        | None -> [])
      | Istore (chunk, addr, args, src, n) -> (
        match Op.eval_addressing (genv_view ge) sp addr (rget_list args rs) with
        | Some va -> (
          match Mem.storev chunk m va (ops.oget src rs) with
          | Some m' -> ret (State (stack, f, sp, n, rs, m'))
          | None -> [])
        | None -> [])
      | Icall (sg, ros, args, res, n) -> (
        match ros_address ge ops ros rs with
        | Some vf ->
          let frame = { sf_res = res; sf_f = f; sf_sp = sp; sf_pc = n; sf_rs = rs } in
          ret (Callstate (frame :: stack, vf, sg, rget_list args rs, m))
        | None -> [])
      | Itailcall (sg, ros, args) -> (
        match ros_address ge ops ros rs with
        | Some vf -> (
          match free_stack m sp f.fn_stacksize with
          | Some m' -> ret (Callstate (stack, vf, sg, rget_list args rs, m'))
          | None -> [])
        | None -> [])
      | Icond (cond, args, n1, n2) -> (
        match Op.eval_condition cond (rget_list args rs) m with
        | Some b -> ret (State (stack, f, sp, (if b then n1 else n2), rs, m))
        | None -> [])
      | Ireturn optr -> (
        match free_stack m sp f.fn_stacksize with
        | Some m' ->
          let v = match optr with Some r -> ops.oget r rs | None -> Vundef in
          ret (Returnstate (stack, v, m'))
        | None -> [])))
  | Callstate (stack, vf, sg, args, m) -> (
    match Genv.find_funct ge vf with
    | Some (Ast.Internal f) ->
      if not (signature_equal sg f.fn_sig) then []
      else
        let m1, b = Mem.alloc m 0 f.fn_stacksize in
        ret
          (State
             (stack, f, Vptr (b, 0), f.fn_entrypoint, ops.oinit args f.fn_params, m1))
    | Some (Ast.External _) | None -> [])
  | Returnstate (stack, v, m) -> (
    match stack with
    | frame :: stack' ->
      ret
        (State
           ( stack',
             frame.sf_f,
             frame.sf_sp,
             frame.sf_pc,
             ops.oset frame.sf_res v frame.sf_rs,
             m ))
    | [] -> [])

let semantics_gen (ops : 'rs regops) ~(symbols : Ident.t list) (p : program) :
    ('rs state, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  {
    Core.Smallstep.name = "RTL";
    dom =
      (fun q ->
        match Genv.find_funct ge q.cq_vf with
        | Some (Ast.Internal f) -> signature_equal q.cq_sg f.fn_sig
        | _ -> false);
    init = (fun q -> [ Callstate ([], q.cq_vf, q.cq_sg, q.cq_args, q.cq_mem) ]);
    step = (fun s -> step ge ops s);
    at_external =
      (fun s ->
        match s with
        | Callstate (_, vf, sg, args, m) when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { cq_vf = vf; cq_sg = sg; cq_args = args; cq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s with
        | Callstate (stack, _, _, _, _) -> [ Returnstate (stack, r.cr_res, r.cr_mem) ]
        | _ -> []);
    final =
      (fun s ->
        match s with
        | Returnstate ([], v, m) -> Some { cr_res = v; cr_mem = m }
        | _ -> None);
  }

(** The RTL open semantics, on the flat mutable register set. *)
let semantics ~(symbols : Ident.t list) (p : program) :
    (Mregset.t state, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts =
  semantics_gen mut_ops ~symbols p

(** The same semantics on the persistent register map — the reference the
    mutable-state lockstep suite runs against [semantics]. *)
let semantics_naive ~(symbols : Ident.t list) (p : program) :
    (regset state, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts =
  semantics_gen pure_ops ~symbols p

(** {1 Printing} *)

let pp_ros fmt = function
  | Rreg r -> pp_reg fmt r
  | Rsymbol id -> Ident.pp fmt id

let pp_instruction fmt (i : instruction) =
  let regs fmt rl =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_reg fmt rl
  in
  match i with
  | Inop n -> Format.fprintf fmt "nop -> %d" n
  | Iop (op, args, res, n) ->
    Format.fprintf fmt "%a = %a(%a) -> %d" pp_reg res Op.pp_operation op regs args n
  | Iload (chunk, addr, args, dst, n) ->
    Format.fprintf fmt "%a = load %a %a(%a) -> %d" pp_reg dst pp_chunk chunk
      Op.pp_addressing addr regs args n
  | Istore (chunk, addr, args, src, n) ->
    Format.fprintf fmt "store %a %a(%a) := %a -> %d" pp_chunk chunk
      Op.pp_addressing addr regs args pp_reg src n
  | Icall (_, ros, args, res, n) ->
    Format.fprintf fmt "%a = call %a(%a) -> %d" pp_reg res pp_ros ros regs args n
  | Itailcall (_, ros, args) ->
    Format.fprintf fmt "tailcall %a(%a)" pp_ros ros regs args
  | Icond (cond, args, n1, n2) ->
    Format.fprintf fmt "if %a(%a) -> %d else %d" Op.pp_condition cond regs args n1 n2
  | Ireturn None -> Format.fprintf fmt "return"
  | Ireturn (Some r) -> Format.fprintf fmt "return %a" pp_reg r

let pp_function fmt (f : coq_function) =
  Format.fprintf fmt "@[<v>function(%a) stack %d entry %d@," pp_signature f.fn_sig
    f.fn_stacksize f.fn_entrypoint;
  let nodes = List.sort (fun (a, _) (b, _) -> compare b a) (Regmap.bindings f.fn_code) in
  List.iter (fun (n, i) -> Format.fprintf fmt "  %4d: %a@," n pp_instruction i) nodes;
  Format.fprintf fmt "@]"
