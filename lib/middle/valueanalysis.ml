(** Value analysis: forward constant/interval-free abstract interpretation
    over RTL registers (a restriction of CompCert's [ValueAnalysis]).

    The abstract domain tracks known constant values per register. Memory
    is treated conservatively (loads return ⊤); read-only global data is
    the province of the [va] invariant checked at interaction boundaries
    (paper, Appendix B.3). Used by [Constprop] and [Deadcode]. *)

open Memory.Values

type aval =
  | Vbot  (** unreachable / no value *)
  | Const of value  (** known constant (never a pointer) *)
  | Vtop

let aval_equal a b =
  match (a, b) with
  | Vbot, Vbot | Vtop, Vtop -> true
  | Const v1, Const v2 -> v1 = v2
  | _ -> false

let aval_lub a b =
  match (a, b) with
  | Vbot, x | x, Vbot -> x
  | Const v1, Const v2 -> if v1 = v2 then a else Vtop
  | _ -> Vtop

module AMap = Map.Make (Int)

(* Abstract register environments. [None] encodes unreachable (⊥).
   Canonical form: a register absent from the map is [Vtop], and [Vtop]
   is never stored — environments only hold the registers with a known
   constant, which keeps them small (and [equal]/[lub] cheap) even in
   functions with many registers. *)
type aenv = aval AMap.t option

let aenv_get r (ae : aenv) =
  match ae with
  | None -> Vbot
  | Some m -> Option.value (AMap.find_opt r m) ~default:Vtop

let aenv_set r v (ae : aenv) =
  match ae with
  | None -> None
  | Some m -> ( match v with Vtop -> Some (AMap.remove r m) | _ -> Some (AMap.add r v m))

module L = struct
  type t = aenv

  let bot : t = None

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some m1, Some m2 -> m1 == m2 || AMap.equal aval_equal m1 m2
    | _ -> false

  let lub a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some m1, Some m2 ->
      if m1 == m2 then a
      else
        (* Keys present in only one side lub with the implicit [Vtop],
           so the canonical result keeps only keys agreeing on both
           sides (modulo [aval_lub]). *)
        Some
          (AMap.merge
             (fun _ v1 v2 ->
               match (v1, v2) with
               | Some v1, Some v2 -> (
                 match aval_lub v1 v2 with Vtop -> None | v -> Some v)
               | _ -> None)
             m1 m2)
end

module Solver = Support.Fixpoint.Make (L)

(* Abstract evaluation of an operation over known constants: delegate to
   the concrete evaluator on constant arguments (no pointers, no sp, no
   symbols, no memory dependence). *)
let abstract_op (op : Op.operation) (args : aval list) : aval =
  let pure_op =
    match op with
    | Op.Oaddrsymbol _ | Op.Oaddrstack _ | Op.Olea _ | Op.Ocmp (Op.Ccomplu _)
    | Op.Ocmp (Op.Ccompluimm _) | Op.Omove ->
      false
    | _ -> true
  in
  if not pure_op then Vtop
  else
    let concrete =
      List.fold_right
        (fun a acc ->
          match (a, acc) with
          | Const v, Some vs -> Some (v :: vs)
          | _ -> None)
        args (Some [])
    in
    match concrete with
    | None -> Vtop
    | Some vl -> (
      let ge = { Op.find_symbol = (fun _ -> None) } in
      match Op.eval_operation ge Vundef op vl Memory.Mem.empty with
      | Some ((Vint _ | Vlong _ | Vfloat _ | Vsingle _) as v) -> Const v
      | _ -> Vtop)

let abstract_cond (cond : Op.condition) (args : aval list) : bool option =
  match cond with
  | Op.Ccomplu _ | Op.Ccompluimm _ -> None
  | _ -> (
    let concrete =
      List.fold_right
        (fun a acc ->
          match (a, acc) with
          | Const v, Some vs -> Some (v :: vs)
          | _ -> None)
        args (Some [])
    in
    match concrete with
    | None -> None
    | Some vl -> Op.eval_condition cond vl Memory.Mem.empty)

let transfer (f : Rtl.coq_function) n (ae : aenv) : aenv =
  match (ae, Rtl.Regmap.find_opt n f.Rtl.fn_code) with
  | None, _ | _, None -> ae
  | Some _, Some i -> (
    match i with
    | Rtl.Iop (Op.Omove, [ src ], res, _) -> aenv_set res (aenv_get src ae) ae
    | Rtl.Iop (op, args, res, _) ->
      aenv_set res (abstract_op op (List.map (fun r -> aenv_get r ae) args)) ae
    | Rtl.Iload (_, _, _, dst, _) -> aenv_set dst Vtop ae
    | Rtl.Icall (_, _, _, res, _) -> aenv_set res Vtop ae
    | _ -> ae)

(** [analyze f] returns the abstract environment at the entrance of each
    node. *)
let analyze (f : Rtl.coq_function) : int -> aenv =
  let nodes = List.map fst (Rtl.Regmap.bindings f.Rtl.fn_code) in
  let successors n =
    match Rtl.Regmap.find_opt n f.Rtl.fn_code with
    | Some i -> Rtl.successors_instr i
    | None -> []
  in
  Solver.solve
    ~successors
    ~transfer:(fun n ae -> transfer f n ae)
    ~entries:[ (f.Rtl.fn_entrypoint, Some AMap.empty) ]
    nodes
