(** Value analysis: forward constant/interval-free abstract interpretation
    over RTL registers (a restriction of CompCert's [ValueAnalysis]).

    The abstract domain tracks known constant values per register. Memory
    is treated conservatively (loads return ⊤); read-only global data is
    the province of the [va] invariant checked at interaction boundaries
    (paper, Appendix B.3). Used by [Constprop] and [Deadcode]. *)

open Memory.Values

type aval =
  | Vbot  (** unreachable / no value *)
  | Const of value  (** known constant (never a pointer) *)
  | Vtop

let aval_equal a b =
  match (a, b) with
  | Vbot, Vbot | Vtop, Vtop -> true
  | Const v1, Const v2 -> v1 = v2
  | _ -> false

let aval_lub a b =
  match (a, b) with
  | Vbot, x | x, Vbot -> x
  | Const v1, Const v2 -> if v1 = v2 then a else Vtop
  | _ -> Vtop

module AMap = Map.Make (Int)

(* Abstract register environments. [None] encodes unreachable (⊥).
   Canonical form: a register absent from the map is [Vtop], and [Vtop]
   is never stored — environments only hold the registers with a known
   constant, which keeps them small (and [equal]/[lub] cheap) even in
   functions with many registers. *)
type aenv = aval AMap.t option

let aenv_get r (ae : aenv) =
  match ae with
  | None -> Vbot
  | Some m -> Option.value (AMap.find_opt r m) ~default:Vtop

(* Physical-equality preserving: writing a value a register already has
   (or [Vtop] to an absent register) returns [ae] itself, so a stable
   transfer application allocates nothing and the fixpoint solver's
   physical-equality fast path fires instead of a structural compare. *)
let aenv_set r v (ae : aenv) =
  match ae with
  | None -> None
  | Some m -> (
    match (v, AMap.find_opt r m) with
    | Vtop, None -> ae
    | Vtop, Some _ -> Some (AMap.remove r m)
    | _, Some v0 when aval_equal v0 v -> ae
    | _, _ -> Some (AMap.add r v m))

module L = struct
  type t = aenv

  let bot : t = None

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some m1, Some m2 -> m1 == m2 || AMap.equal aval_equal m1 m2
    | _ -> false

  let lub a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some m1, Some m2 ->
      if m1 == m2 then a
      else
        (* Keys present in only one side lub with the implicit [Vtop],
           so the canonical result keeps only keys agreeing on both
           sides (modulo [aval_lub]). *)
        Some
          (AMap.merge
             (fun _ v1 v2 ->
               match (v1, v2) with
               | Some v1, Some v2 -> (
                 match aval_lub v1 v2 with Vtop -> None | v -> Some v)
               | _ -> None)
             m1 m2)
end

module Solver = Support.Fixpoint.Make (L)

(* Abstract evaluation of an operation over known constants: delegate to
   the concrete evaluator on constant arguments (no pointers, no sp, no
   symbols, no memory dependence). *)
let no_symbols = { Op.find_symbol = (fun _ -> None) }

let pure_op = function
  | Op.Oaddrsymbol _ | Op.Oaddrstack _ | Op.Olea _ | Op.Ocmp (Op.Ccomplu _)
  | Op.Ocmp (Op.Ccompluimm _) | Op.Omove ->
    false
  | _ -> true

let eval_const (op : Op.operation) (vl : value list) : aval =
  match Op.eval_operation no_symbols Vundef op vl Memory.Mem.empty with
  | Some ((Vint _ | Vlong _ | Vfloat _ | Vsingle _) as v) -> Const v
  | _ -> Vtop

let abstract_op (op : Op.operation) (args : aval list) : aval =
  if not (pure_op op) then Vtop
  else
    let concrete =
      List.fold_right
        (fun a acc ->
          match (a, acc) with
          | Const v, Some vs -> Some (v :: vs)
          | _ -> None)
        args (Some [])
    in
    match concrete with None -> Vtop | Some vl -> eval_const op vl

(* [abstract_op] fused with the environment lookups: builds the concrete
   argument list only when every argument is a known constant, so the
   common all-[Vtop] transfer application allocates nothing. *)
let abstract_op_regs (op : Op.operation) (args : Rtl.reg list) (ae : aenv) :
    aval =
  if not (pure_op op) then Vtop
  else
    let rec consts acc = function
      | [] -> eval_const op (List.rev acc)
      | r :: rest -> (
        match aenv_get r ae with Const v -> consts (v :: acc) rest | _ -> Vtop)
    in
    consts [] args

let abstract_cond (cond : Op.condition) (args : aval list) : bool option =
  match cond with
  | Op.Ccomplu _ | Op.Ccompluimm _ -> None
  | _ -> (
    let concrete =
      List.fold_right
        (fun a acc ->
          match (a, acc) with
          | Const v, Some vs -> Some (v :: vs)
          | _ -> None)
        args (Some [])
    in
    match concrete with
    | None -> None
    | Some vl -> Op.eval_condition cond vl Memory.Mem.empty)

(* The transfer probes the code through a dense array: the solver applies
   it once per worklist step, so a balanced-tree descent per application
   would dominate the solve. *)
let transfer_arr (code : Rtl.instruction option array) n (ae : aenv) : aenv =
  match
    (ae, if n >= 0 && n < Array.length code then code.(n) else None)
  with
  | None, _ | _, None -> ae
  | Some _, Some i -> (
    match i with
    | Rtl.Iop (Op.Omove, [ src ], res, _) -> aenv_set res (aenv_get src ae) ae
    | Rtl.Iop (op, args, res, _) ->
      aenv_set res (abstract_op_regs op args ae) ae
    | Rtl.Iload (_, _, _, dst, _) -> aenv_set dst Vtop ae
    | Rtl.Icall (_, _, _, res, _) -> aenv_set res Vtop ae
    | _ -> ae)

(** [analyze f] returns the abstract environment at the entrance of each
    node. *)
let analyze (f : Rtl.coq_function) : int -> aenv =
  let size =
    match Rtl.Regmap.max_binding_opt f.Rtl.fn_code with
    | Some (n, _) -> n + 1
    | None -> 0
  in
  (* Code and successor edges as dense arrays, built in one traversal:
     the solver asks for a node's successors on every dequeue, so the
     per-query [successors_instr] list is materialized once per node
     rather than once per worklist step. *)
  let code = Array.make (max size 1) None in
  let succs = Array.make (max size 1) [] in
  let nodes = ref [] in
  Rtl.Regmap.iter
    (fun n i ->
      if n >= 0 && n < size then begin
        code.(n) <- Some i;
        succs.(n) <- Rtl.successors_instr i;
        nodes := n :: !nodes
      end)
    f.Rtl.fn_code;
  Solver.solve
    ~successors:(fun n -> if n >= 0 && n < size then succs.(n) else [])
    ~transfer:(transfer_arr code)
    ~entries:[ (f.Rtl.fn_entrypoint, Some AMap.empty) ]
    (List.rev !nodes)
