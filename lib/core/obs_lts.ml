(** Observed LTSs: wrap a transition system so every interaction point
    lands in {!Obs.Interaction_log} (ISSUE 1 tentpole, part 4).

    [instrument] is semantics-preserving by construction — every field
    delegates to the underlying LTS and only records what it saw — so an
    instrumented LTS produces the same [outcome] as the bare one (the
    test suite checks this as a property). When observability is off the
    LTS is returned unchanged, so there is no per-step cost. *)

open Smallstep

let opaque _ = "_"

(** [instrument l] logs, per run: the incoming question, the number of
    silent steps between interaction points, every outgoing call and the
    reply it got, the final answer, and stuck states. The [pp_*]
    renderers turn the interface-specific payloads into strings;
    omitted ones print ["_"]. *)
let instrument ?(pp_qi = opaque) ?(pp_ri = opaque) ?(pp_qo = opaque)
    ?(pp_ro = opaque) (l : ('s, 'qi, 'ri, 'qo, 'ro) lts) :
    ('s, 'qi, 'ri, 'qo, 'ro) lts =
  if not !Obs.enabled then l
  else begin
    let record = Obs.Interaction_log.record in
    let steps = ref 0 in
    let flush () =
      if !steps > 0 then begin
        record (Obs.Interaction_log.Steps !steps);
        Obs.Metrics.observe "lts.steps_between_interactions" (float_of_int !steps);
        steps := 0
      end
    in
    {
      l with
      init =
        (fun q ->
          let ss = l.init q in
          if ss <> [] then begin
            steps := 0;
            record (Obs.Interaction_log.Question (pp_qi q));
            Obs.Metrics.incr_counter "lts.questions"
          end;
          ss);
      step =
        (fun s ->
          let r = l.step s in
          (match r with
          | _ :: _ -> incr steps
          | [] ->
            flush ();
            record Obs.Interaction_log.Stuck);
          r);
      at_external =
        (fun s ->
          let r = l.at_external s in
          (match r with
          | Some qo ->
            flush ();
            record (Obs.Interaction_log.Call (pp_qo qo));
            Obs.Metrics.incr_counter "lts.calls"
          | None -> ());
          r);
      after_external =
        (fun s ro ->
          let ss = l.after_external s ro in
          record (Obs.Interaction_log.Reply (pp_ro ro));
          ss);
      final =
        (fun s ->
          let r = l.final s in
          (match r with
          | Some ri ->
            flush ();
            record (Obs.Interaction_log.Final (pp_ri ri));
            Obs.Metrics.incr_counter "lts.finals"
          | None -> ());
          r);
    }
  end

(** [run ~fuel l ~oracle q]: {!Smallstep.run} on the instrumented [l],
    additionally recording the fuel the run consumed (one unit per
    executed step or external resumption, mirroring [Smallstep.run]'s
    accounting). *)
let run ?pp_qi ?pp_ri ?pp_qo ?pp_ro ?check_reply ~fuel
    (l : ('s, 'qi, 'ri, 'qo, 'ro) lts) ~(oracle : 'qo -> 'ro option) q :
    ('ri, 'qo) outcome =
  if not !Obs.enabled then Smallstep.run ?check_reply ~fuel l ~oracle q
  else begin
    let il = instrument ?pp_qi ?pp_ri ?pp_qo ?pp_ro l in
    let used = ref 0 in
    let counting =
      {
        il with
        step =
          (fun s ->
            let r = il.step s in
            if r <> [] then incr used;
            r);
        after_external =
          (fun s ro ->
            let r = il.after_external s ro in
            if r <> [] then incr used;
            r);
      }
    in
    let o =
      Obs.Trace.with_span ("run:" ^ l.name) (fun () ->
          Smallstep.run ?check_reply ~fuel counting ~oracle q)
    in
    Obs.Interaction_log.record (Obs.Interaction_log.Fuel_consumed !used);
    (match o with
    | Out_of_fuel _ -> Obs.Interaction_log.record Obs.Interaction_log.Out_of_fuel
    | _ -> ());
    Obs.Metrics.observe "lts.fuel_consumed" (float_of_int !used);
    o
  end
