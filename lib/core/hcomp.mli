(** Horizontal composition of open semantics (paper, Definition 3.2 and
    Figure 5): linking with support for mutual recursion, through an
    alternating stack of activations. *)

open Smallstep

(** A frame of the composite: an activation of the first or second
    component. *)
type ('s1, 's2) frame = F1 of 's1 | F2 of 's2

(** Composite states: the head frame is running, the tail frames are
    suspended callers. *)
type ('s1, 's2) state = ('s1, 's2) frame list

(** Which component of a binary composition a frame belongs to. *)
type side = C1 | C2

val side_name : side -> string

(** Observable events at the component boundary: the push and pop rules
    of Fig. 5, as seen from outside. Emitted from the composite's [step]
    function, so meaningful under the deterministic first-transition
    discipline of {!Smallstep.run}. *)
type ('q, 'r) boundary_event =
  | Bpush of { caller : side; callee : side; question : 'q }
      (** an external question of the running frame started a new
          activation *)
  | Bpop of { callee : side; caller : side; answer : 'r }
      (** a finished activation answered the suspended caller below it *)

(** [compose ?observe ?on_diag l1 l2] is [l1 ⊕ l2 : A ↠ A], implementing
    the eight rules of Fig. 5 (i°, run, i•, push, pop, x°, x•). Incoming
    questions are routed to the component whose domain accepts them;
    external questions accepted by either component start a new
    activation (push); questions accepted by neither escape to the
    environment (x°).

    [observe] receives every boundary (push/pop) event. [on_diag] fires
    with a [Domain_overlap] diagnostic whenever both domains accept the
    same question (a masked linker error); routing still prefers [l1]. *)
val compose :
  ?observe:(('q, 'r) boundary_event -> unit) ->
  ?on_diag:(Support.Diagnostics.t -> unit) ->
  ('s1, 'q, 'r, 'q, 'r) lts ->
  ('s2, 'q, 'r, 'q, 'r) lts ->
  (('s1, 's2) state, 'q, 'r, 'q, 'r) lts

(** n-ary composition of components sharing a state type (e.g. [n]
    translation units of one language); frames carry component indices.
    Agrees with iterated binary [compose] (tested). [on_diag] reports
    overlapping domains, as in {!compose}; routing goes to the lowest
    accepting index. *)
val compose_all :
  ?on_diag:(Support.Diagnostics.t -> unit) ->
  ('s, 'q, 'r, 'q, 'r) lts array ->
  ((int * 's) list, 'q, 'r, 'q, 'r) lts
