(** Horizontal composition of open semantics (paper, Definition 3.2 and
    Figure 5).

    [compose l1 l2] builds the semantics [l1 ⊕ l2 : A ↠ A] of two
    components over the same language interface. The composite state is an
    alternating stack of activations: the head frame is running, the tail
    frames are suspended callers awaiting answers (rules push/pop enable
    mutual recursion to arbitrary depth).

    The implementation mirrors the eight rules of Fig. 5:
    - [i°]  incoming question routed to the component whose domain accepts it;
    - [run] internal steps of the active frame;
    - [i•]  final state of the last frame answers the incoming question;
    - [push] an external question accepted by the other (or the same)
      component starts a new activation on top of the stack;
    - [pop] a finished activation answers the suspended frame below;
    - [x°]  an external question accepted by neither component escapes to
      the environment;
    - [x•]  an environment answer resumes the top frame. *)

open Smallstep
module Diag = Support.Diagnostics

type ('s1, 's2) frame = F1 of 's1 | F2 of 's2

type ('s1, 's2) state = ('s1, 's2) frame list

(** Which component of the composition a frame belongs to. *)
type side = C1 | C2

let side_name = function C1 -> "component-1" | C2 -> "component-2"

(** Observable events at the component boundary: the push and pop rules
    of Fig. 5, as seen from outside. [Bpush] fires when an external
    question of the running frame starts a new activation; [Bpop] fires
    when a finished activation answers the suspended caller below it.
    Monitors (e.g. {!Robust.Property}) reconstruct the call tree from
    these, pairing each pop with the push that opened the activation.

    The hook is driven from the composite's [step] function while it
    enumerates transitions, so it assumes the deterministic
    first-transition execution discipline of {!Smallstep.run} /
    {!Smallstep.run_to_interaction}: with a nondeterministic exploration
    ([Smallstep.reachable]) events may fire for transitions never
    taken. *)
type ('q, 'r) boundary_event =
  | Bpush of { caller : side; callee : side; question : 'q }
  | Bpop of { callee : side; caller : side; answer : 'r }

(** [compose ?observe ?on_diag l1 l2]. [observe] receives every boundary
    event (default: none, zero overhead). [on_diag] fires when both
    domains accept the same question — linked programs have disjoint
    domains, so an overlap means a masked linker error; the composite
    still routes to [l1] (the historical preference), but the
    diagnostic makes the overlap visible instead of silent. *)
let compose ?(observe : (('q, 'r) boundary_event -> unit) option)
    ?(on_diag : (Diag.t -> unit) option) (l1 : ('s1, 'q, 'r, 'q, 'r) lts)
    (l2 : ('s2, 'q, 'r, 'q, 'r) lts) :
    (('s1, 's2) state, 'q, 'r, 'q, 'r) lts =
  let dom q = l1.dom q || l2.dom q in
  let overlap ~rule q =
    if l1.dom q && l2.dom q then
      Option.iter
        (fun f ->
          f
            (Diag.make ~phase:Diag.Linking ~kind:Diag.Domain_overlap
               ~context:
                 [ ("component-1", l1.name); ("component-2", l2.name);
                   ("rule", rule) ]
               "both %s and %s accept the question: overlapping domains \
                (routing to %s masks a linker error)"
               l1.name l2.name l1.name))
        on_diag
  in
  let emit e = match observe with Some f -> f e | None -> () in
  (* i°: pick the accepting component. Linked programs have disjoint
     domains; if both accept, component 1 is preferred (and [on_diag]
     reports the overlap). *)
  let init q =
    overlap ~rule:"init" q;
    if l1.dom q then List.map (fun s -> [ F1 s ]) (l1.init q)
    else if l2.dom q then List.map (fun s -> [ F2 s ]) (l2.init q)
    else []
  in
  let frame_side = function F1 _ -> C1 | F2 _ -> C2 in
  let frame_final = function F1 s -> l1.final s | F2 s -> l2.final s in
  let frame_external = function
    | F1 s -> l1.at_external s
    | F2 s -> l2.at_external s
  in
  let frame_resume f r =
    match f with
    | F1 s -> List.map (fun s' -> F1 s') (l1.after_external s r)
    | F2 s -> List.map (fun s' -> F2 s') (l2.after_external s r)
  in
  let step = function
    | [] -> []
    | f :: k ->
      (* Interaction probes come BEFORE the internal step: the concrete
         semantics execute over mutable state, so [l.step] on the active
         frame may write it in place. Probing [at_external]/[final]
         first reads the pre-step state (stuck steps write nothing, and
         a state with an enabled internal step is at neither kind of
         interaction point in the concrete languages). The returned list
         keeps internal transitions first, preserving the deterministic
         first-transition discipline. *)
      (* push: cross-component (or recursive) call *)
      let pushes =
        match frame_external f with
        | Some q ->
          overlap ~rule:"push" q;
          let starts =
            (if l1.dom q then List.map (fun s -> F1 s) (l1.init q) else [])
            @ if l2.dom q then List.map (fun s -> F2 s) (l2.init q) else []
          in
          (match starts with
          | f' :: _ ->
            emit
              (Bpush
                 { caller = frame_side f; callee = frame_side f'; question = q })
          | [] -> ());
          List.map (fun f' -> (Events.e0, f' :: f :: k)) starts
        | None -> []
      in
      (* pop: the active frame finished and a caller is waiting *)
      let pops =
        match (frame_final f, k) with
        | Some r, caller :: k' ->
          emit
            (Bpop
               { callee = frame_side f; caller = frame_side caller; answer = r });
          List.map (fun f' -> (Events.e0, f' :: k')) (frame_resume caller r)
        | _ -> []
      in
      (* run *)
      let internal =
        match f with
        | F1 s -> List.map (fun (t, s') -> (t, F1 s' :: k)) (l1.step s)
        | F2 s -> List.map (fun (t, s') -> (t, F2 s' :: k)) (l2.step s)
      in
      internal @ pushes @ pops
  in
  (* x°: escapes to the environment only when neither component accepts *)
  let at_external = function
    | f :: _ -> (
      match frame_external f with
      | Some q when (not (l1.dom q)) && not (l2.dom q) -> Some q
      | _ -> None)
    | [] -> None
  in
  (* x• *)
  let after_external st r =
    match st with
    | f :: k -> List.map (fun f' -> f' :: k) (frame_resume f r)
    | [] -> []
  in
  (* i•: only the bottom frame may answer the incoming question *)
  let final = function [ f ] -> frame_final f | _ -> None in
  {
    name = Printf.sprintf "(%s (+) %s)" l1.name l2.name;
    dom;
    init;
    step;
    at_external;
    after_external;
    final;
  }

(** n-ary horizontal composition of components sharing a state type
    (e.g. [n] translation units of the same language). Frames carry the
    index of the component they belong to. Agreement with iterated binary
    [compose] is checked in the test suite. [on_diag] reports overlapping
    domains, as in {!compose}; routing goes to the lowest accepting
    index. *)
let compose_all ?(on_diag : (Diag.t -> unit) option)
    (ls : ('s, 'q, 'r, 'q, 'r) lts array) :
    ((int * 's) list, 'q, 'r, 'q, 'r) lts =
  let n = Array.length ls in
  let find_dom q =
    let rec go i = if i >= n then None else if ls.(i).dom q then Some i else go (i + 1) in
    go 0
  in
  let overlap ~rule q =
    match on_diag with
    | None -> ()
    | Some f -> (
      match List.filter (fun i -> ls.(i).dom q) (List.init n Fun.id) with
      | _ :: _ :: _ as accepting ->
        f
          (Diag.make ~phase:Diag.Linking ~kind:Diag.Domain_overlap
             ~context:
               (("rule", rule)
               :: List.map
                    (fun i -> (Printf.sprintf "component-%d" i, ls.(i).name))
                    accepting)
             "%d components accept the same question: overlapping domains"
             (List.length accepting))
      | _ -> ())
  in
  let dom q = find_dom q <> None in
  let init q =
    overlap ~rule:"init" q;
    match find_dom q with
    | None -> []
    | Some i -> List.map (fun s -> [ (i, s) ]) (ls.(i).init q)
  in
  let step = function
    | [] -> []
    | (i, s) :: k ->
      (* As in [compose]: probe the interaction points before running the
         internal step, which may mutate the active state in place. *)
      let pushes =
        match ls.(i).at_external s with
        | Some q -> (
          overlap ~rule:"push" q;
          match find_dom q with
          | Some j ->
            List.map (fun s' -> (Events.e0, (j, s') :: (i, s) :: k)) (ls.(j).init q)
          | None -> [])
        | None -> []
      in
      let pops =
        match (ls.(i).final s, k) with
        | Some r, (j, sj) :: k' ->
          List.map
            (fun sj' -> (Events.e0, (j, sj') :: k'))
            (ls.(j).after_external sj r)
        | _ -> []
      in
      let internal =
        List.map (fun (t, s') -> (t, (i, s') :: k)) (ls.(i).step s)
      in
      internal @ pushes @ pops
  in
  let at_external = function
    | (i, s) :: _ -> (
      match ls.(i).at_external s with
      | Some q when find_dom q = None -> Some q
      | _ -> None)
    | [] -> None
  in
  let after_external st r =
    match st with
    | (i, s) :: k -> List.map (fun s' -> (i, s') :: k) (ls.(i).after_external s r)
    | [] -> []
  in
  let final = function [ (i, s) ] -> ls.(i).final s | _ -> None in
  {
    name =
      Printf.sprintf "(+)[%s]"
        (String.concat "; " (Array.to_list (Array.map (fun l -> l.name) ls)));
    dom;
    init;
    step;
    at_external;
    after_external;
    final;
  }
