(** Open labeled transition systems (paper, Definition 3.1).

    An LTS [L : A ↠ B] describes a component activated by questions of
    the incoming language interface [B], that may perform external calls
    through the outgoing interface [A], and eventually answers with a [B]
    answer. *)

(** The tuple [⟨S, →, D, I, X, Y, F⟩] of Definition 3.1. Type parameters:
    states ['s]; incoming questions/answers ['qi]/['ri] (interface [B]);
    outgoing questions/answers ['qo]/['ro] (interface [A]). *)
type ('s, 'qi, 'ri, 'qo, 'ro) lts = {
  name : string;
  dom : 'qi -> bool;  (** [D ⊆ B°]: accepted questions *)
  init : 'qi -> 's list;  (** [I ⊆ D × S]: initial states *)
  step : 's -> (Events.trace * 's) list;  (** [→ ⊆ S × E* × S] *)
  at_external : 's -> 'qo option;  (** [X ⊆ S × A°]: external states *)
  after_external : 's -> 'ro -> 's list;  (** [Y ⊆ S × A• × S] *)
  final : 's -> 'ri option;  (** [F ⊆ S × B•]: final states *)
}

(** Transport an LTS along a bijection of its states. *)
val map_states :
  fwd:('s -> 't) ->
  bwd:('t -> 's) ->
  ('s, 'a, 'b, 'c, 'd) lts ->
  ('t, 'a, 'b, 'c, 'd) lts

(** Outcome of a deterministic run (first enabled transition). *)
type ('ri, 'qo) outcome =
  | Final of Events.trace * 'ri  (** terminated with an answer *)
  | Goes_wrong of Events.trace * string  (** stuck state (undefined behavior) *)
  | Env_stuck of Events.trace * 'qo  (** the oracle refused an external call *)
  | Env_violation of Events.trace * string
      (** the oracle's answer broke the simulation convention *)
  | Refused  (** question outside [D], or no initial state *)
  | Out_of_fuel of Events.trace

val pp_outcome :
  (Format.formatter -> 'ri -> unit) ->
  Format.formatter ->
  ('ri, 'qo) outcome ->
  unit

val outcome_trace : ('ri, 'qo) outcome -> Events.trace

(** [run ~fuel lts ~oracle q] activates [lts] on [q] and runs it to
    completion, answering outgoing questions with [oracle].
    [check_reply] validates each oracle answer against its question; a
    rejected answer yields [Env_violation] instead of resuming with a
    convention-breaking value. *)
val run :
  ?check_reply:('qo -> 'ro -> (unit, string) result) ->
  fuel:int ->
  ('s, 'qi, 'ri, 'qo, 'ro) lts ->
  oracle:('qo -> 'ro option) ->
  'qi ->
  ('ri, 'qo) outcome

(** Interaction points reached by [run_to_interaction]. *)
type ('s, 'ri, 'qo) interaction =
  | Ifinal of 'ri
  | Iexternal of 'qo * 's  (** the question, with the suspended state *)
  | Istuck
  | Ifuel

(** Advance a state to its next interaction point (used by the
    co-execution checker). *)
val run_to_interaction :
  fuel:int ->
  ('s, 'qi, 'ri, 'qo, 'ro) lts ->
  's ->
  Events.trace * ('s, 'ri, 'qo) interaction

(** Bounded breadth-first exploration of a (possibly nondeterministic)
    LTS; external calls are resumed through all answers of [answers]. *)
val reachable :
  ?bound:int ->
  ('s, 'qi, 'ri, 'qo, 'ro) lts ->
  answers:('qo -> 'ro list) ->
  'qi ->
  's list
