(** Open labeled transition systems (paper, Definition 3.1).

    An LTS [L : A ↠ B] describes a component that is activated by
    questions of the incoming language interface [B], may perform external
    calls through the outgoing interface [A], and eventually answers with a
    [B] answer. The type parameters are:

    - ['s]: states,
    - ['qi]/['ri]: incoming questions and answers (interface [B]),
    - ['qo]/['ro]: outgoing questions and answers (interface [A]).

    The fields correspond one-to-one to the tuple
    [⟨S, →, D, I, X, Y, F⟩] of Definition 3.1. Transition relations are
    represented as list-valued functions; the concrete language semantics
    of this development are deterministic (singleton or empty lists) but
    the framework, like the paper's, does not assume it. *)

type ('s, 'qi, 'ri, 'qo, 'ro) lts = {
  name : string;
  dom : 'qi -> bool;  (** [D ⊆ B°]: accepted questions *)
  init : 'qi -> 's list;  (** [I ⊆ D × S]: initial states *)
  step : 's -> (Events.trace * 's) list;  (** [→ ⊆ S × E* × S] *)
  at_external : 's -> 'qo option;  (** [X ⊆ S × A°]: external states *)
  after_external : 's -> 'ro -> 's list;  (** [Y ⊆ S × A• × S] *)
  final : 's -> 'ri option;  (** [F ⊆ S × B•]: final states *)
}

(** Transport an LTS along bijections of its states — handy for wrappers. *)
let map_states ~(fwd : 's -> 't) ~(bwd : 't -> 's) (l : ('s, 'a, 'b, 'c, 'd) lts) :
    ('t, 'a, 'b, 'c, 'd) lts =
  {
    name = l.name;
    dom = l.dom;
    init = (fun q -> List.map fwd (l.init q));
    step = (fun s -> List.map (fun (t, s') -> (t, fwd s')) (l.step (bwd s)));
    at_external = (fun s -> l.at_external (bwd s));
    after_external = (fun s r -> List.map fwd (l.after_external (bwd s) r));
    final = (fun s -> l.final (bwd s));
  }

(** {1 Deterministic execution}

    The concrete semantics of the pipeline are deterministic; these
    helpers run an LTS by always taking the first enabled transition.
    The environment is a partial oracle answering outgoing questions. *)

type ('ri, 'qo) outcome =
  | Final of Events.trace * 'ri  (** terminated with an answer *)
  | Goes_wrong of Events.trace * string  (** stuck state (undefined behavior) *)
  | Env_stuck of Events.trace * 'qo  (** the oracle refused an external call *)
  | Env_violation of Events.trace * string
      (** the oracle's answer broke the simulation convention *)
  | Refused  (** the incoming question is outside [D] or has no initial state *)
  | Out_of_fuel of Events.trace

let pp_outcome pp_ri fmt = function
  | Final (_, r) -> Format.fprintf fmt "final %a" pp_ri r
  | Goes_wrong (_, why) -> Format.fprintf fmt "goes wrong (%s)" why
  | Env_stuck (_, _) -> Format.fprintf fmt "environment stuck"
  | Env_violation (_, why) ->
    Format.fprintf fmt "environment violation (%s)" why
  | Refused -> Format.fprintf fmt "query refused"
  | Out_of_fuel _ -> Format.fprintf fmt "out of fuel"

let outcome_trace = function
  | Final (t, _) | Goes_wrong (t, _) | Env_stuck (t, _) | Env_violation (t, _)
  | Out_of_fuel t ->
    t
  | Refused -> []

(** [run ~fuel lts ~oracle q] activates [lts] on [q] and runs it to
    completion, answering outgoing questions with [oracle].

    [check_reply], when given, validates each oracle answer against the
    question it answers (the executable form of the convention's [A•]
    side); a rejected answer ends the run with [Env_violation] — a
    diagnosed outcome — instead of feeding a convention-breaking value
    into the component. *)
let run ?(check_reply = fun _ _ -> Ok ()) ~fuel
    (l : ('s, 'qi, 'ri, 'qo, 'ro) lts) ~(oracle : 'qo -> 'ro option) q :
    ('ri, 'qo) outcome =
  if not (l.dom q) then Refused
  else
    match l.init q with
    | [] -> Refused
    | s0 :: _ ->
      let rec go fuel trace s =
        if fuel <= 0 then Out_of_fuel (List.rev trace)
        else
          match l.final s with
          | Some r -> Final (List.rev trace, r)
          | None -> (
            match l.at_external s with
            | Some qo -> (
              match oracle qo with
              | None -> Env_stuck (List.rev trace, qo)
              | Some ro -> (
                match check_reply qo ro with
                | Error why -> Env_violation (List.rev trace, why)
                | Ok () -> (
                  match l.after_external s ro with
                  | s' :: _ -> go (fuel - 1) trace s'
                  | [] ->
                    Goes_wrong
                      (List.rev trace, "no resumption after external call"))))
            | None -> (
              match l.step s with
              | (t, s') :: _ -> go (fuel - 1) (List.rev_append t trace) s'
              | [] -> Goes_wrong (List.rev trace, "stuck state")))
      in
      go fuel [] s0

(** {1 Running to the next interaction point}

    Used by the co-execution checker: advance a state until it reaches a
    final state, an external state, gets stuck, or exhausts its fuel. *)

type ('s, 'ri, 'qo) interaction =
  | Ifinal of 'ri
  | Iexternal of 'qo * 's  (** external question together with the suspended state *)
  | Istuck
  | Ifuel

let run_to_interaction ~fuel (l : ('s, 'qi, 'ri, 'qo, 'ro) lts) s :
    Events.trace * ('s, 'ri, 'qo) interaction =
  let rec go fuel trace s =
    if fuel <= 0 then (List.rev trace, Ifuel)
    else
      match l.final s with
      | Some r -> (List.rev trace, Ifinal r)
      | None -> (
        match l.at_external s with
        | Some qo -> (List.rev trace, Iexternal (qo, s))
        | None -> (
          match l.step s with
          | (t, s') :: _ -> go (fuel - 1) (List.rev_append t trace) s'
          | [] -> (List.rev trace, Istuck)))
  in
  go fuel [] s

(** {1 Reachable-state enumeration}

    Bounded breadth-first exploration of the (possibly nondeterministic)
    transition relation, used by property-based tests of the framework on
    toy transition systems. External calls are resumed through all answers
    produced by [answers]. *)

let reachable ?(bound = 10_000) (l : ('s, 'qi, 'ri, 'qo, 'ro) lts)
    ~(answers : 'qo -> 'ro list) (q : 'qi) : 's list =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push s =
    if not (Hashtbl.mem seen (Hashtbl.hash s, s)) then begin
      Hashtbl.add seen (Hashtbl.hash s, s) ();
      Queue.add s queue
    end
  in
  List.iter push (l.init q);
  let out = ref [] in
  let count = ref 0 in
  while (not (Queue.is_empty queue)) && !count < bound do
    incr count;
    let s = Queue.take queue in
    out := s :: !out;
    List.iter (fun (_, s') -> push s') (l.step s);
    match l.at_external s with
    | Some qo -> List.iter (fun ro -> List.iter push (l.after_external s ro)) (answers qo)
    | None -> ()
  done;
  List.rev !out
