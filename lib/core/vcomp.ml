(** Layered (vertical-in-the-string-diagram) composition of open semantics
    (paper §3.5).

    [layer l1 l2 : A ↠ C] runs [l1 : B ↠ C] on top of [l2 : A ↠ B]:
    questions from the environment activate [l1]; the external calls of
    [l1] are served by [l2]; the external calls of [l2] escape to the
    environment. Unlike [⊕], calls only propagate downward — [l2] cannot
    call back into [l1] — which is what makes heterogeneous stacks such as
    [driver ∘ io ∘ nic] (Examples 1.1 and 3.10) expressible.

    [l1] may call [l2] repeatedly, and [l2] activations are well-bracketed,
    so a stack of pending [l1]-states suffices. *)

open Smallstep

type ('s1, 's2) state =
  | Upper of 's1  (** [l1] running, no pending [l2] activation *)
  | Lower of 's1 * 's2  (** [l1] suspended on a call being served by [l2] *)

let layer (l1 : ('s1, 'qc, 'rc, 'qb, 'rb) lts) (l2 : ('s2, 'qb, 'rb, 'qa, 'ra) lts) :
    (('s1, 's2) state, 'qc, 'rc, 'qa, 'ra) lts =
  let dom = l1.dom in
  let init q = List.map (fun s -> Upper s) (l1.init q) in
  (* Interaction probes run BEFORE the internal step: concrete semantics
     execute over mutable state, so [l.step] may write the active state
     in place; [at_external]/[final] must read the pre-step state. The
     returned lists still put internal transitions first. *)
  let step = function
    | Upper s1 -> (
      let calls =
        match l1.at_external s1 with
        | Some q when l2.dom q ->
          List.map (fun s2 -> (Events.e0, Lower (s1, s2))) (l2.init q)
        | _ -> []
      in
      let internal = List.map (fun (t, s') -> (t, Upper s')) (l1.step s1) in
      internal @ calls)
    | Lower (s1, s2) -> (
      let returns =
        match l2.final s2 with
        | Some r ->
          List.map (fun s1' -> (Events.e0, Upper s1')) (l1.after_external s1 r)
        | None -> []
      in
      let internal = List.map (fun (t, s2') -> (t, Lower (s1, s2'))) (l2.step s2) in
      internal @ returns)
  in
  let at_external = function
    (* An upper-level call not accepted below has nowhere to go in a
       layered stack: the state is stuck rather than external. *)
    | Upper _ -> None
    | Lower (_, s2) -> l2.at_external s2
  in
  let after_external st r =
    match st with
    | Lower (s1, s2) -> List.map (fun s2' -> Lower (s1, s2')) (l2.after_external s2 r)
    | Upper _ -> []
  in
  let final = function Upper s1 -> l1.final s1 | Lower _ -> None in
  {
    name = Printf.sprintf "(%s . %s)" l1.name l2.name;
    dom;
    init;
    step;
    at_external;
    after_external;
    final;
  }
