(** Co-execution: the executable counterpart of open forward simulations
    (paper §3.3, Fig. 6).

    Where the Coq development proves a simulation
    [L1 ≤ R_A ↠ R_B L2], this engine {e checks} the simulation's
    observable content on concrete runs:

    - the incoming questions are related by [R_B°] at a world [w_B]
      (obtained by marshaling the source question, Fig. 6a);
    - whenever both executions reach an outgoing call, the questions must
      be related by [R_A°] at some world [w_A] — witnessed here by the
      canonical marshaling — and the environment answers both sides with
      [R_A•]-related answers (Fig. 6c), produced from a single
      source-level oracle;
    - final answers must be related by [R_B•] at [w_B] (Fig. 6b).

    A successful co-execution is exactly one instance of the simulation
    diagrams; the test suites run many (including randomized) instances.
    Any divergence — unrelated external calls, an execution getting stuck,
    unrelated final answers, or mismatched event traces — produces a
    descriptive counterexample. *)

open Smallstep

type verdict =
  | Pass
  | Fail of string

let pp_verdict fmt = function
  | Pass -> Format.pp_print_string fmt "pass"
  | Fail msg -> Format.fprintf fmt "FAIL: %s" msg

let is_pass = function Pass -> true | Fail _ -> false

let fail fmt = Format.kasprintf (fun s -> Fail s) fmt

(* Observability: count relation checks per convention (and their
   outcome) so a co-execution campaign reports how much checking it
   actually did. No-ops unless [Obs.enabled]. *)
let record_check conv_name ok =
  Obs.Metrics.incr_counter
    ("coexec.checks." ^ conv_name ^ if ok then ".passed" else ".failed");
  ok

let record_query conv_name =
  Obs.Metrics.incr_counter "coexec.queries";
  Obs.Metrics.incr_counter ("coexec.queries." ^ conv_name)

(** [check ~fuel ~l1 ~l2 ~cc_in ~cc_out ~oracle q1] marshals the source
    question [q1] through [cc_in], activates both semantics, and co-executes
    them, checking relatedness at every interaction point. [oracle] gives
    the environment's behavior on source-level outgoing questions; the
    target-level answer is derived via [cc_out.fwd_reply], exactly as the
    environment of Fig. 6(c) must. *)
let check ~fuel ~(l1 : ('s1, 'q1, 'r1, 'qo1, 'ro1) lts)
    ~(l2 : ('s2, 'q2, 'r2, 'qo2, 'ro2) lts)
    ~(cc_in : ('wb, 'q1, 'q2, 'r1, 'r2) Simconv.t)
    ~(cc_out : ('wa, 'qo1, 'qo2, 'ro1, 'ro2) Simconv.t)
    ~(oracle : 'qo1 -> 'ro1 option) (q1 : 'q1) : verdict =
  match cc_in.Simconv.fwd_query q1 with
  | None -> fail "cc_in cannot marshal the incoming question"
  | Some (wb, q2) ->
    record_query cc_in.Simconv.name;
    if not (l1.dom q1) then
      if l2.dom q2 then fail "domains disagree: source refuses, target accepts"
      else Pass
    else if not (l2.dom q2) then fail "domains disagree: target refuses the question"
    else (
      match (l1.init q1, l2.init q2) with
      | [], [] -> Pass
      | [], _ :: _ -> fail "source has no initial state but target does"
      | _ :: _, [] -> fail "target has no initial state"
      | s1 :: _, s2 :: _ ->
        let rec co s1 s2 budget =
          if budget <= 0 then fail "co-execution fuel exhausted"
          else
            let t1, i1 = run_to_interaction ~fuel l1 s1 in
            let t2, i2 = run_to_interaction ~fuel l2 s2 in
            if not (Events.trace_equal t1 t2) then
              fail "event traces diverge between source and target"
            else
              match (i1, i2) with
              | Ifinal r1, Ifinal r2 ->
                if record_check cc_in.Simconv.name (cc_in.Simconv.chk_reply wb r1 r2)
                then Pass
                else fail "final answers are not related by the incoming convention"
              | Iexternal (m1, e1), Iexternal (m2, e2) -> (
                (* Fig. 6(c): the simulation chooses the world relating the
                   outgoing questions — witnessed here by inference from
                   the two actual questions. *)
                match cc_out.Simconv.infer_world m1 m2 with
                | None -> fail "no world relates the outgoing questions"
                | Some wa ->
                  if
                    not
                      (record_check cc_out.Simconv.name
                         (cc_out.Simconv.chk_query wa m1 m2))
                  then
                    fail "outgoing questions are not related by the outgoing convention"
                  else (
                    match oracle m1 with
                    | None -> fail "environment oracle refused the outgoing call"
                    | Some n1 -> (
                      match cc_out.Simconv.fwd_reply wa n1 with
                      | None -> fail "cc_out cannot marshal the environment answer"
                      | Some n2 -> (
                        match (l1.after_external e1 n1, l2.after_external e2 n2) with
                        | s1' :: _, s2' :: _ -> co s1' s2' (budget - 1)
                        | [], _ -> fail "source cannot resume after external call"
                        | _, [] -> fail "target cannot resume after external call"))))
              | Istuck, Istuck ->
                (* Both executions go wrong: the simulation property says
                   nothing (source UB licenses anything), so we accept. *)
                Pass
              | Istuck, _ ->
                (* Source goes wrong: anything the target does refines it. *)
                Pass
              | _, Istuck -> fail "target goes wrong but source does not"
              | Ifuel, _ | _, Ifuel -> fail "fuel exhausted mid-execution"
              | Ifinal _, Iexternal _ ->
                fail "source terminates but target performs an external call"
              | Iexternal _, Ifinal _ ->
                fail "source performs an external call but target terminates"
        in
        co s1 s2 1024)

(** Variant where both oracles are given explicitly (used when the two
    levels implement the environment independently, e.g. the Asm-level
    oracle reads arguments from registers). The relatedness of the two
    oracles is then part of the experiment setup. *)
let check_with_oracles ~fuel ~l1 ~l2 ~(cc_in : ('wb, 'q1, 'q2, 'r1, 'r2) Simconv.t)
    ~(oracle1 : 'qo1 -> 'ro1 option) ~(oracle2 : 'qo2 -> 'ro2 option)
    ~(reply_ok : 'wb -> 'r1 -> 'r2 -> bool) (q1 : 'q1) : verdict =
  match cc_in.Simconv.fwd_query q1 with
  | None -> fail "cc_in cannot marshal the incoming question"
  | Some (wb, q2) ->
    record_query cc_in.Simconv.name;
    let o1 = run ~fuel l1 ~oracle:oracle1 q1 in
    let o2 = run ~fuel l2 ~oracle:oracle2 q2 in
    let t1 = outcome_trace o1 and t2 = outcome_trace o2 in
    (match (o1, o2) with
    | Final (_, r1), Final (_, r2) ->
      if not (Events.trace_equal t1 t2) then fail "event traces diverge"
      else if record_check cc_in.Simconv.name (reply_ok wb r1 r2) then Pass
      else fail "final answers are not related"
    | Goes_wrong _, _ -> Pass (* source UB licenses any target behavior *)
    | Refused, Refused -> Pass
    | _, Goes_wrong (_, why) -> fail "target goes wrong (%s) but source does not" why
    | Out_of_fuel _, _ | _, Out_of_fuel _ -> fail "fuel exhausted"
    | Refused, _ -> fail "source refuses but target proceeds"
    | _, Refused -> fail "target refuses the marshaled question"
    | Env_stuck _, _ | _, Env_stuck _ -> fail "oracle refused an external call"
    | Env_violation (_, why), _ | _, Env_violation (_, why) ->
      fail "oracle answered outside the convention (%s)" why)
