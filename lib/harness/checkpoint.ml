(** Crash-safe append-only checkpoint journal.

    One line of JSON per terminal job outcome, written with [O_APPEND]
    and [fsync]'d before the write returns, so the journal survives a
    [kill -9] of the supervisor at any point: the worst case is a torn
    final line, which the loader tolerates (a half-written record means
    the job was not durably completed, so it will simply run again on
    resume — the safe direction). [occo batch --resume] and
    [occo chaos --resume] load the journal and skip every job whose
    recorded status counts as completed.

    The writer doubles as the incremental artifact sink for the chaos
    campaign's survivors ({!append_json}): anything worth keeping after
    a crash goes through the same fsync'd line-JSON discipline. *)

module Json = Obs.Json

type entry = {
  e_id : string;  (** the stable job id *)
  e_class : string;  (** the job class (breaker bucket) *)
  e_status : string;  (** "ok", "degraded", "failed", "crashed", ... *)
  e_attempts : int;  (** attempts consumed, including the first *)
  e_elapsed_us : float;  (** wall time across all attempts *)
}

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [
      ("job", Json.Str e.e_id);
      ("class", Json.Str e.e_class);
      ("status", Json.Str e.e_status);
      ("attempts", Json.num_of_int e.e_attempts);
      ("elapsed_us", Json.Num e.e_elapsed_us);
    ]

let entry_of_json (j : Json.t) : entry option =
  match
    ( Option.bind (Json.member "job" j) Json.to_str,
      Option.bind (Json.member "status" j) Json.to_str )
  with
  | Some id, Some status ->
    Some
      {
        e_id = id;
        e_class =
          Option.value ~default:""
            (Option.bind (Json.member "class" j) Json.to_str);
        e_status = status;
        e_attempts =
          (match Option.bind (Json.member "attempts" j) Json.to_num with
          | Some f -> int_of_float f
          | None -> 1);
        e_elapsed_us =
          Option.value ~default:0.
            (Option.bind (Json.member "elapsed_us" j) Json.to_num);
      }
  | _ -> None

(** {1 Writing} *)

type writer = { fd : Unix.file_descr; path : string; mutable closed : bool }

(** Open (creating if needed) the journal at [path]. Every append is
    [O_APPEND] + [fsync]. [truncate] starts the journal afresh — what a
    non-resuming run wants, so stale entries from a previous batch
    cannot shadow this one's. *)
let open_journal ?(truncate = false) (path : string) : writer =
  let flags =
    [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
    @ if truncate then [ Unix.O_TRUNC ] else []
  in
  let fd = Unix.openfile path flags 0o644 in
  { fd; path; closed = false }

let write_line (w : writer) (line : string) =
  if not w.closed then begin
    let s = line ^ "\n" in
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        go (off + Unix.write w.fd b off (Bytes.length b - off))
    in
    go 0;
    Unix.fsync w.fd
  end

(** Append one arbitrary JSON value as a journal line (fsync'd). *)
let append_json (w : writer) (j : Json.t) = write_line w (Json.to_string j)

(** Append one job-outcome entry (fsync'd). *)
let append (w : writer) (e : entry) = append_json w (entry_to_json e)

let close (w : writer) =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

(** {1 Loading} *)

(** Parse every well-formed line of [path]; a missing file is an empty
    journal, and torn or malformed lines (the tail a [kill -9] left
    behind) are skipped rather than fatal. *)
let load (path : string) : entry list =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line -> (
        if String.trim line = "" then go acc
        else
          match Json.parse_opt line with
          | None -> go acc (* torn or foreign line *)
          | Some j -> (
            match entry_of_json j with
            | None -> go acc
            | Some e -> go (e :: acc)))
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go [])

(** Statuses that count as "this job need not run again". Failures are
    deliberately not in the set: resuming a journal with failed jobs
    retries exactly those. *)
let completed_statuses = [ "ok"; "degraded" ]

(** {1 Compaction}

    An outcome journal grows by one line per terminal outcome, across
    every [--resume] cycle and for the whole life of a service — while
    its information content is only the {e last} entry per job id.
    [compact] rewrites the journal as that last-status-wins snapshot,
    atomically (tmp file in the same directory, [fsync], [rename]), so
    a crash mid-compaction leaves the original journal untouched. Ids
    keep their first-appearance order, which keeps diffs of successive
    compactions readable. Non-entry lines (foreign JSON appended via
    {!append_json}, torn tails) are dropped — compaction is for
    journals of job outcomes. *)

(** Compact the journal at [path] in place. Returns
    [(entries_kept, lines_dropped)]; a missing journal is a no-op
    [(0, 0)]. *)
let compact (path : string) : int * int =
  match Sys.file_exists path with
  | false -> (0, 0)
  | true ->
    let total_lines =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr n
             done
           with End_of_file -> ());
          !n)
    in
    let entries = load path in
    let last : (string, entry) Hashtbl.t = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace last e.e_id e) entries;
    let seen = Hashtbl.create 64 in
    let snapshot =
      List.filter_map
        (fun e ->
          if Hashtbl.mem seen e.e_id then None
          else begin
            Hashtbl.add seen e.e_id ();
            Hashtbl.find_opt last e.e_id
          end)
        entries
    in
    let tmp =
      Printf.sprintf "%s.compact.%d.tmp" path (Unix.getpid ())
    in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let w = { fd; path = tmp; closed = false } in
    (try List.iter (append w) snapshot
     with e ->
       close w;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    close w;
    Unix.rename tmp path;
    (List.length snapshot, total_lines - List.length snapshot)

(** The ids to skip on resume: the last recorded status wins, so a job
    that failed and was later re-run to completion is skipped. *)
let completed_ids (entries : entry list) : (string, entry) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if List.mem e.e_status completed_statuses then
        Hashtbl.replace tbl e.e_id e
      else Hashtbl.remove tbl e.e_id)
    entries;
  tbl
