(** Process-isolated job execution.

    A job runs in a forked child, so a segfault, an OOM, an infinite
    loop or a runaway allocation in the job is an {e exit status} the
    parent classifies — never the death of the supervisor. CompCertO's
    stance is that a component is characterized by its interactions
    with the environment; here the interaction is deliberately narrow:
    the child marshals one [('a, Diagnostics.t) result] over a pipe and
    exits, and everything else the parent learns comes from
    [waitpid].

    Watchdogs:

    - {e wall-clock}: the parent owns the deadline. The supervisor's
      select loop calls {!kill} (SIGKILL, not catchable, not
      maskable) when a handle's deadline passes; a hang in the child —
      even in a tight non-allocating loop — cannot survive it.
    - {e memory}: the toolchain's [Unix] binding has no [setrlimit], so
      the child self-limits at the OCaml level: a [Gc] alarm checks the
      major-heap size after every major collection and exits with the
      reserved status {!oom_exit_code} when it exceeds the limit. This
      bounds what an OCaml job can allocate, which is the resource that
      actually runs away in this codebase (program terms, memory
      states), at zero cost to well-behaved jobs. *)

module Diag = Support.Diagnostics

(** Reserved exit status: the in-child memory watchdog tripped. *)
let oom_exit_code = 125

(** Reserved exit status: the child computed a result but could not
    marshal it onto the pipe (unmarshalable payload, closed or full
    pipe). Distinct from a crash: the job itself completed. *)
let pipe_write_exit_code = 3

(** What became of a worker, classified by the parent. *)
type 'a verdict =
  | Returned of ('a, Diag.t) result
      (** the child ran the job to completion and sent its result —
          which may well be [Error]; that is a structured job failure,
          not a worker failure *)
  | Crashed of string  (** the child died: signal, bad exit, torn pipe *)
  | Pipe_write_failed
      (** the job ran to completion but its result never made it onto
          the pipe ({!pipe_write_exit_code}) *)
  | Oom  (** the child's memory watchdog tripped *)
  | Timed_out  (** the parent killed the child at its deadline *)

type handle = {
  pid : int;
  fd : Unix.file_descr;  (** read end of the result pipe *)
  buf : Buffer.t;  (** marshaled result accumulates here *)
  started_us : float;
  deadline_us : float;  (** [infinity] when the job has no timeout *)
  mutable reaped : bool;
}

let signal_name s =
  let names =
    [
      (Sys.sigsegv, "SIGSEGV"); (Sys.sigkill, "SIGKILL");
      (Sys.sigabrt, "SIGABRT"); (Sys.sigbus, "SIGBUS");
      (Sys.sigfpe, "SIGFPE"); (Sys.sigill, "SIGILL");
      (Sys.sigint, "SIGINT"); (Sys.sigterm, "SIGTERM");
      (Sys.sigpipe, "SIGPIPE");
    ]
  in
  match List.assoc_opt s names with
  | Some n -> n
  | None -> Printf.sprintf "signal %d" s

(** Arm the in-child memory watchdog: after each major collection,
    exit with {!oom_exit_code} if the major heap exceeds the limit. *)
let arm_memory_watchdog bytes =
  let words = bytes / (Sys.word_size / 8) in
  ignore
    (Gc.create_alarm (fun () ->
         if (Gc.quick_stat ()).Gc.heap_words > words then Unix._exit oom_exit_code))

(** Fork a worker for [job]. The child runs [job ()], catching every
    exception into an [Internal_error] diagnostic, marshals the result
    to the pipe and [_exit]s 0 (no [at_exit], no double-flushed
    buffers). The caller's payload must be marshalable (no closures) —
    every payload in this repo is plain data.

    Cross-process telemetry (ISSUE 6): when observability is on (the
    child inherits the parent's [Obs.enabled] through fork), the child
    first clears the sinks it inherited with the memory image, runs the
    job inside a span named [label] (carrying [attrs]), and ships an
    {!Obs.Snapshot} of everything it recorded — spans, counters,
    gauges, histogram sketches — over the pipe next to the result. The
    parent merges it in {!reap}, grafting the spans under the worker's
    real pid. *)
let spawn ?timeout_us ?memlimit_bytes ?(label = "job") ?(attrs = [])
    (job : unit -> ('a, Diag.t) result) : handle =
  flush stdout;
  flush stderr;
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* child *)
    Unix.close rfd;
    (* The parent may have installed interrupt handlers that raise to
       flush its sinks; a worker has no sinks — die by default. *)
    (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
    (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
    Option.iter arm_memory_watchdog memlimit_bytes;
    let obs_on = !Obs.enabled in
    if obs_on then Obs.reset_all ();
    let body () =
      match job () with
      | r -> r
      | exception e -> Error (Diag.of_exn ~phase:Diag.Batch e)
    in
    let result =
      if obs_on then Obs.Trace.with_span ~attrs label body else body ()
    in
    let payload :
        ('a, Diag.t) result * Obs.Snapshot.t option =
      (result, if obs_on then Some (Obs.Snapshot.capture ()) else None)
    in
    (try
       let oc = Unix.out_channel_of_descr wfd in
       Marshal.to_channel oc payload [];
       flush oc
     with _ -> Unix._exit pipe_write_exit_code);
    Unix._exit 0
  | pid ->
    Unix.close wfd;
    let now = Obs.now_us () in
    {
      pid;
      fd = rfd;
      buf = Buffer.create 256;
      started_us = now;
      deadline_us =
        (match timeout_us with Some t -> now +. t | None -> infinity);
      reaped = false;
    }

(** Read whatever the pipe has; [`Eof] means the child closed its end
    (it finished or died) and the handle is ready to {!reap}. *)
let read_chunk (h : handle) : [ `More | `Eof ] =
  let chunk = Bytes.create 65536 in
  match Unix.read h.fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
    Buffer.add_subbytes h.buf chunk 0 n;
    `More
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `More

(** SIGKILL the worker (idempotent; ESRCH is fine — it already died). *)
let kill (h : handle) =
  try Unix.kill h.pid Sys.sigkill with Unix.Unix_error _ -> ()

(** Wait for the child and classify. [timed_out] is the parent's
    verdict and overrides the exit status (a SIGKILLed child reports
    WSIGNALED, but the cause is the deadline). *)
let reap (h : handle) ~timed_out : 'a verdict =
  let rec wait () =
    match Unix.waitpid [] h.pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  let status = if h.reaped then Unix.WEXITED 0 else wait () in
  h.reaped <- true;
  (try Unix.close h.fd with Unix.Unix_error _ -> ());
  if timed_out then Timed_out
  else
    match status with
    | Unix.WEXITED 0 -> (
      match
        (Marshal.from_bytes (Buffer.to_bytes h.buf) 0
          : ('a, Diag.t) result * Obs.Snapshot.t option)
      with
      | result, snap ->
        (* The worker's telemetry folds into this process's sinks:
           counters add, gauges last-write-wins, histograms merge
           bucket-wise, spans graft under the worker's pid. The merge
           cost is itself metered (obs.snapshot_merge_us), so a batch
           report shows what the cross-process telemetry costs. *)
        Option.iter
          (fun s ->
            let t0 = Obs.now_us () in
            Obs.Snapshot.merge ~pid:h.pid s;
            Obs.Metrics.observe "obs.snapshot_merge_us" (Obs.now_us () -. t0))
          snap;
        Returned result
      | exception _ -> Crashed "result pipe carried a torn marshal")
    | Unix.WEXITED c when c = oom_exit_code -> Oom
    | Unix.WEXITED c when c = pipe_write_exit_code -> Pipe_write_failed
    | Unix.WEXITED c -> Crashed (Printf.sprintf "exit %d" c)
    | Unix.WSIGNALED s -> Crashed (signal_name s)
    | Unix.WSTOPPED s -> Crashed (Printf.sprintf "stopped by %s" (signal_name s))

(** Run one job synchronously under the watchdogs: spawn, pump the
    pipe, enforce the deadline, reap. The supervisor has its own
    multi-worker loop; this is the one-shot form for tests and simple
    callers. *)
let run ?timeout_us ?memlimit_bytes ?label ?attrs
    (job : unit -> ('a, Diag.t) result) : 'a verdict =
  let h = spawn ?timeout_us ?memlimit_bytes ?label ?attrs job in
  let rec pump () =
    let now = Obs.now_us () in
    if now >= h.deadline_us then begin
      kill h;
      reap h ~timed_out:true
    end
    else
      let wait =
        if h.deadline_us = infinity then -1.
        else (h.deadline_us -. now) /. 1e6
      in
      match Unix.select [ h.fd ] [] [] wait with
      | [], _, _ -> pump () (* deadline check on next turn *)
      | _ :: _, _, _ -> (
        match read_chunk h with `More -> pump () | `Eof -> reap h ~timed_out:false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
  in
  pump ()
