(** Supervised batch execution (ISSUE 3 tentpole).

    The pieces, bottom-up:

    - {!Backoff}: exponential retry delays with deterministic jitter;
    - {!Breaker}: per-job-class circuit breaker
      (closed → open → half-open) with trips in the metrics registry;
    - {!Checkpoint}: fsync'd append-only line-JSON journal, the
      crash-safe record behind [--resume];
    - {!Worker}: one job in one forked process, wall-clock and memory
      watchdogs, exit status classified into a structured verdict;
    - {!Supervisor}: the batch loop tying them together — concurrency,
      retry, shed, degrade, checkpoint.

    The same philosophy as the compiler it serves: treat each job as an
    open component characterized by its interactions (here: one
    marshaled result, one exit status), assume the environment can be
    hostile, and grade robustness instead of making it boolean. *)

module Backoff = Backoff
module Breaker = Breaker
module Checkpoint = Checkpoint
module Worker = Worker
module Supervisor = Supervisor
