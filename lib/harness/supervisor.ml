(** The supervised batch executor.

    Runs a list of jobs through forked {!Worker} processes, up to a
    configured concurrency, and degrades gracefully instead of
    crashing:

    - a worker that segfaults, OOMs or hangs becomes a structured
      [Job_crashed] / [Job_timeout] outcome ({!Worker});
    - transient failures ({!Support.Diagnostics.is_transient}) are
      retried with exponential backoff + jitter ({!Backoff});
    - a job class that keeps failing trips its circuit breaker and
      later jobs of the class are shed fast ({!Breaker});
    - every terminal outcome is appended, fsync'd, to the checkpoint
      journal, and a resumed run skips completed jobs
      ({!Checkpoint});
    - a job whose retries are exhausted can fall back to a {e degraded}
      variant (e.g. recompiling at [-O0], keeping partial artifacts) —
      a lesser answer beats no answer.

    The loop is single-threaded: one [select] over the workers' result
    pipes, with the timeout set to the nearest of (worker deadline,
    backoff wake-up). Time comes from the monotonic [Obs.now_us]. *)

module Diag = Support.Diagnostics

(** One unit of work. [job_run] executes in the forked child (which
    inherits the parent's memory image, so it may capture arbitrary
    state); its payload crosses back over a pipe and must therefore be
    marshalable — plain data, no closures. *)
type 'a job = {
  job_id : string;  (** stable across runs: the checkpoint key *)
  job_class : string;  (** breaker bucket, e.g. "compile" *)
  job_run : attempt:int -> ('a, Diag.t) result;
  job_degraded : (unit -> ('a, Diag.t) result) option;
      (** last-resort fallback once retries are exhausted *)
}

type status =
  | Completed  (** the job returned [Ok] *)
  | Degraded  (** the fallback returned [Ok] after the job failed *)
  | Failed  (** the job returned a structured [Error] *)
  | Crashed  (** the worker died (signal, bad exit, OOM) *)
  | Timed_out  (** the worker hit its wall-clock deadline *)
  | Shed  (** never ran: the class's breaker was open *)
  | Skipped  (** never ran: the journal says it already completed *)

let status_name = function
  | Completed -> "ok"
  | Degraded -> "degraded"
  | Failed -> "failed"
  | Crashed -> "crashed"
  | Timed_out -> "timeout"
  | Shed -> "shed"
  | Skipped -> "skipped"

(** Did the supervisor deliver an answer for this job (possibly a
    lesser one)? The batch exit code is the conjunction of these. *)
let status_ok = function
  | Completed | Degraded | Skipped -> true
  | Failed | Crashed | Timed_out | Shed -> false

type 'a outcome = {
  o_id : string;
  o_class : string;
  o_status : status;
  o_payload : 'a option;  (** present for [Completed] / [Degraded] *)
  o_diag : Diag.t option;  (** present for every non-success *)
  o_attempts : int;  (** worker launches, including the degraded one *)
  o_elapsed_us : float;  (** first launch to terminal outcome *)
}

type config = {
  c_jobs : int;  (** max concurrent workers *)
  c_retries : int;  (** extra attempts for transient failures *)
  c_timeout_us : float option;  (** per-attempt wall-clock deadline *)
  c_memlimit_bytes : int option;  (** per-worker major-heap cap *)
  c_backoff : Backoff.policy;
  c_breaker_threshold : int;
  c_breaker_cooldown_us : float;
  c_seed : int;  (** jitter determinism *)
  c_journal : string option;  (** checkpoint journal path *)
  c_resume : bool;  (** skip jobs the journal completed *)
}

let default_config =
  {
    c_jobs = 1;
    c_retries = 2;
    c_timeout_us = Some 60e6;
    c_memlimit_bytes = None;
    c_backoff = Backoff.default;
    c_breaker_threshold = 5;
    c_breaker_cooldown_us = 2e6;
    c_seed = 0;
    c_journal = None;
    c_resume = false;
  }

(* ------------------------------------------------------------------ *)
(* The loop                                                           *)
(* ------------------------------------------------------------------ *)

type 'a pending = {
  p_job : 'a job;
  p_attempt : int;  (** 0-based index of the attempt about to run *)
  p_degraded : bool;  (** this attempt is the degraded fallback *)
  p_ready_us : float;  (** backoff: not before this instant *)
  p_launches : int;  (** workers already spawned for this job *)
  p_first_us : float option;  (** when the first worker started *)
  p_rng : Random.State.t;  (** per-job deterministic jitter *)
}

type 'a running = { r_handle : Worker.handle; r_pending : 'a pending }

let run ?(on_outcome = fun (_ : 'a outcome) -> ()) (cfg : config)
    (jobs : 'a job list) : 'a outcome list =
  let cfg = { cfg with c_jobs = max 1 cfg.c_jobs } in
  let completed_before =
    match (cfg.c_resume, cfg.c_journal) with
    | true, Some path -> Checkpoint.completed_ids (Checkpoint.load path)
    | _ -> Hashtbl.create 1
  in
  let writer =
    (* A fresh (non-resume) run truncates: its journal describes this
       run only. A resumed run appends to the record it is completing. *)
    Option.map
      (Checkpoint.open_journal ~truncate:(not cfg.c_resume))
      cfg.c_journal
  in
  let outcomes : (string, 'a outcome) Hashtbl.t = Hashtbl.create 64 in
  let breakers : (string, Breaker.t) Hashtbl.t = Hashtbl.create 8 in
  let breaker cls =
    match Hashtbl.find_opt breakers cls with
    | Some b -> b
    | None ->
      let b =
        Breaker.create ~threshold:cfg.c_breaker_threshold
          ~cooldown_us:cfg.c_breaker_cooldown_us cls
      in
      Hashtbl.add breakers cls b;
      b
  in
  let finalize ?payload ?diag ~now (p : 'a pending) (st : status) =
    let elapsed =
      match p.p_first_us with Some t0 -> now -. t0 | None -> 0.
    in
    let o =
      {
        o_id = p.p_job.job_id;
        o_class = p.p_job.job_class;
        o_status = st;
        o_payload = payload;
        o_diag = diag;
        o_attempts = p.p_launches;
        o_elapsed_us = elapsed;
      }
    in
    Hashtbl.replace outcomes o.o_id o;
    Obs.Metrics.incr_counter ("harness.jobs." ^ status_name st);
    if st <> Skipped then Obs.Metrics.observe "harness.job_us" elapsed;
    Option.iter
      (fun w ->
        if st <> Skipped then
          Checkpoint.append w
            {
              Checkpoint.e_id = o.o_id;
              e_class = o.o_class;
              e_status = status_name st;
              e_attempts = o.o_attempts;
              e_elapsed_us = elapsed;
            })
      writer;
    on_outcome o
  in
  (* Initial queue: everything the journal has not already completed. *)
  let now0 = Obs.now_us () in
  let queue : 'a pending list ref = ref [] in
  List.iter
    (fun j ->
      if Hashtbl.mem completed_before j.job_id then
        finalize ~now:now0
          {
            p_job = j;
            p_attempt = 0;
            p_degraded = false;
            p_ready_us = now0;
            p_launches = 0;
            p_first_us = None;
            p_rng = Random.State.make [| cfg.c_seed |];
          }
          Skipped
      else
        queue :=
          {
            p_job = j;
            p_attempt = 0;
            p_degraded = false;
            p_ready_us = now0;
            p_launches = 0;
            p_first_us = None;
            p_rng = Random.State.make [| cfg.c_seed; Hashtbl.hash j.job_id |];
          }
          :: !queue)
    jobs;
  queue := List.rev !queue;
  let running : 'a running list ref = ref [] in
  (* Decide what a finished (or failed-to-finish) attempt leads to:
     retry with backoff, degrade, or a terminal outcome. *)
  let conclude ~now (p : 'a pending) (v : 'a Worker.verdict) =
    let b = breaker p.p_job.job_class in
    let ok = match v with Worker.Returned (Ok _) -> true | _ -> false in
    Breaker.record b ~now_us:now ~ok;
    let diag_of = function
      | Worker.Returned (Error d) -> d
      | Worker.Crashed why ->
        Diag.make ~phase:Diag.Batch ~kind:Diag.Job_crashed
          ~context:[ ("job", p.p_job.job_id) ]
          "worker died: %s" why
      | Worker.Pipe_write_failed ->
        Diag.make ~phase:Diag.Batch ~kind:Diag.Job_crashed
          ~context:[ ("job", p.p_job.job_id) ]
          "worker completed but could not write its result to the pipe"
      | Worker.Oom ->
        Diag.make ~phase:Diag.Batch ~kind:Diag.Resource_exhausted
          ~context:[ ("job", p.p_job.job_id) ]
          "worker exceeded its memory limit"
      | Worker.Timed_out ->
        Diag.make ~phase:Diag.Batch ~kind:Diag.Job_timeout
          ~context:[ ("job", p.p_job.job_id) ]
          "worker exceeded its wall-clock limit"
      | Worker.Returned (Ok _) -> assert false
    in
    let terminal_status = function
      | Worker.Returned (Error _) -> Failed
      | Worker.Crashed _ | Worker.Pipe_write_failed | Worker.Oom -> Crashed
      | Worker.Timed_out -> Timed_out
      | Worker.Returned (Ok _) -> assert false
    in
    match v with
    | Worker.Returned (Ok payload) ->
      finalize ~now ~payload p (if p.p_degraded then Degraded else Completed)
    | v ->
      let d = diag_of v in
      if p.p_degraded then
        (* The fallback itself failed: terminal, no more lifelines. *)
        finalize ~now ~diag:d p (terminal_status v)
      else if Diag.is_transient d.Diag.kind && p.p_attempt < cfg.c_retries
      then begin
        let delay =
          Backoff.delay_us cfg.c_backoff ~rng:p.p_rng
            ~attempt:(p.p_attempt + 1)
        in
        Obs.Metrics.incr_counter "harness.jobs.retries";
        queue :=
          !queue
          @ [ { p with p_attempt = p.p_attempt + 1; p_ready_us = now +. delay } ]
      end
      else
        match p.p_job.job_degraded with
        | Some _ ->
          Obs.Metrics.incr_counter "harness.jobs.degraded_attempts";
          queue := !queue @ [ { p with p_degraded = true; p_ready_us = now } ]
        | None -> finalize ~now ~diag:d p (terminal_status v)
  in
  let reap_running ~timed_out ~now (r : 'a running) =
    running := List.filter (fun r' -> r' != r) !running;
    if timed_out then Worker.kill r.r_handle;
    conclude ~now r.r_pending (Worker.reap r.r_handle ~timed_out)
  in
  let launch ~now (p : 'a pending) =
    let b = breaker p.p_job.job_class in
    if not (Breaker.allow b ~now_us:now) then
      finalize ~now
        ~diag:
          (Diag.make ~phase:Diag.Batch ~kind:Diag.Circuit_open
             ~context:[ ("class", p.p_job.job_class) ]
             "job shed: circuit breaker for class %s is open" p.p_job.job_class)
        p Shed
    else begin
      let thunk =
        if p.p_degraded then Option.get p.p_job.job_degraded
        else fun () -> p.p_job.job_run ~attempt:p.p_attempt
      in
      let h =
        Worker.spawn ?timeout_us:cfg.c_timeout_us
          ?memlimit_bytes:cfg.c_memlimit_bytes
          ~label:("job:" ^ p.p_job.job_id)
          ~attrs:
            [
              ("class", Obs.Json.Str p.p_job.job_class);
              ("attempt", Obs.Json.num_of_int p.p_attempt);
              ("degraded", Obs.Json.Bool p.p_degraded);
            ]
          thunk
      in
      Obs.Metrics.incr_counter "harness.jobs.launched";
      running :=
        {
          r_handle = h;
          r_pending =
            {
              p with
              p_launches = p.p_launches + 1;
              p_first_us =
                (match p.p_first_us with
                | Some _ as t -> t
                | None -> Some h.Worker.started_us);
            };
        }
        :: !running
    end
  in
  let loop () =
    while !queue <> [] || !running <> [] do
      let now = Obs.now_us () in
      (* Service gauges: what the supervisor looks like from outside,
         one write per loop turn (no-ops with observability off). *)
      Obs.Metrics.set_gauge "harness.queue_depth"
        (float_of_int (List.length !queue));
      Obs.Metrics.set_gauge "harness.inflight"
        (float_of_int (List.length !running));
      (* Launch every ready job while there is capacity. *)
      let rec fill () =
        if List.length !running < cfg.c_jobs then
          match
            List.partition (fun p -> p.p_ready_us <= now) !queue
          with
          | p :: rest_ready, not_ready ->
            queue := rest_ready @ not_ready;
            launch ~now p;
            fill ()
          | [], _ -> ()
      in
      fill ();
      (* Kill anything past its deadline. *)
      List.iter
        (fun r ->
          if now >= r.r_handle.Worker.deadline_us then
            reap_running ~timed_out:true ~now r)
        !running;
      if !queue <> [] || !running <> [] then begin
        let next_deadline =
          List.fold_left
            (fun acc r -> Float.min acc r.r_handle.Worker.deadline_us)
            infinity !running
        and next_ready =
          List.fold_left
            (fun acc p -> Float.min acc p.p_ready_us)
            infinity !queue
        in
        let horizon = Float.min next_deadline next_ready in
        let wait_s =
          if horizon = infinity then 0.5
          else Float.max 0. (Float.min 0.5 ((horizon -. now) /. 1e6))
        in
        match !running with
        | [] -> if wait_s > 0. then Unix.sleepf wait_s
        | rs -> (
          let fds = List.map (fun r -> r.r_handle.Worker.fd) rs in
          match Unix.select fds [] [] wait_s with
          | ready, _, _ ->
            List.iter
              (fun fd ->
                match
                  List.find_opt (fun r -> r.r_handle.Worker.fd = fd) !running
                with
                | None -> ()
                | Some r -> (
                  match Worker.read_chunk r.r_handle with
                  | `More -> ()
                  | `Eof ->
                    reap_running ~timed_out:false ~now:(Obs.now_us ()) r))
              ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      end
    done
  in
  let cleanup () =
    (* On any exit — including an interrupt raised from a signal
       handler — no worker outlives the supervisor, and the journal fd
       is closed (every line already hit the disk via fsync). *)
    List.iter
      (fun r ->
        Worker.kill r.r_handle;
        ignore (Worker.reap r.r_handle ~timed_out:true))
      !running;
    running := [];
    Option.iter Checkpoint.close writer
  in
  Fun.protect ~finally:cleanup loop;
  let t_end = Obs.now_us () in
  Obs.Metrics.set_gauge "harness.queue_depth" 0.;
  Obs.Metrics.set_gauge "harness.inflight" 0.;
  let executed =
    Hashtbl.fold
      (fun _ o n -> if o.o_status <> Skipped then n + 1 else n)
      outcomes 0
  in
  let elapsed_s = (t_end -. now0) /. 1e6 in
  if executed > 0 && elapsed_s > 0. then
    Obs.Metrics.set_gauge "harness.jobs_per_s"
      (float_of_int executed /. elapsed_s);
  List.filter_map (fun j -> Hashtbl.find_opt outcomes j.job_id) jobs

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let count (outcomes : 'a outcome list) (st : status) =
  List.length (List.filter (fun o -> o.o_status = st) outcomes)

(** True iff every job ended in an acceptable state. *)
let all_ok (outcomes : 'a outcome list) =
  List.for_all (fun o -> status_ok o.o_status) outcomes

let pp_summary fmt (outcomes : 'a outcome list) =
  let line st =
    let n = count outcomes st in
    if n > 0 then Format.fprintf fmt "  %-8s %d@." (status_name st) n
  in
  Format.fprintf fmt "%d job%s:@." (List.length outcomes)
    (if List.length outcomes = 1 then "" else "s");
  List.iter line
    [ Completed; Degraded; Skipped; Failed; Crashed; Timed_out; Shed ]

let outcome_to_json ?payload_to_json (o : 'a outcome) : Obs.Json.t =
  let open Obs.Json in
  Obj
    ([
       ("job", Str o.o_id);
       ("class", Str o.o_class);
       ("status", Str (status_name o.o_status));
       ("attempts", num_of_int o.o_attempts);
       ("elapsed_us", Num o.o_elapsed_us);
     ]
    @ (match o.o_diag with
      | Some d -> [ ("diagnostic", Str (Diag.to_string d)) ]
      | None -> [])
    @
    match (payload_to_json, o.o_payload) with
    | Some f, Some p -> [ ("payload", f p) ]
    | _ -> [])

let report_to_json ?payload_to_json (outcomes : 'a outcome list) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("jobs", num_of_int (List.length outcomes));
      ("ok", Bool (all_ok outcomes));
      ( "counts",
        Obj
          (List.map
             (fun st -> (status_name st, num_of_int (count outcomes st)))
             [ Completed; Degraded; Skipped; Failed; Crashed; Timed_out; Shed ])
      );
      ( "results",
        List (List.map (outcome_to_json ?payload_to_json) outcomes) );
    ]
