(** Per-job-class circuit breaker: closed → open → half-open.

    The supervisor keeps one breaker per job class (compile jobs, chaos
    mutants, fuzz programs, ...). While a class keeps failing there is
    no point feeding it more work — each failure costs a forked worker,
    its timeout, and its retry schedule — so after [threshold]
    {e consecutive} failures the breaker {e opens} and subsequent jobs
    of the class are shed immediately with a [Circuit_open] diagnostic.
    After [cooldown_us] the breaker becomes {e half-open}: exactly one
    probe job is let through; if it succeeds the breaker closes again,
    if it fails the breaker re-opens for another cooldown. Trips are
    recorded in the {!Obs.Metrics} registry
    ([harness.breaker.trips] and [harness.breaker.<class>.trips]) so a
    campaign report shows how often load was shed.

    Time is passed in by the caller (the supervisor's monotonic
    [Obs.now_us]) rather than read here, which keeps the state machine
    deterministic under test. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  name : string;  (** the job class this breaker guards *)
  threshold : int;  (** consecutive failures that trip it *)
  cooldown_us : float;  (** open time before the half-open probe *)
  mutable st : state;
  mutable consecutive : int;  (** consecutive failures while closed *)
  mutable opened_at : float;
  mutable probe_inflight : bool;  (** a half-open probe is running *)
  mutable trips : int;
}

let create ?(threshold = 3) ?(cooldown_us = 1_000_000.) name =
  {
    name;
    threshold = max 1 threshold;
    cooldown_us;
    st = Closed;
    consecutive = 0;
    opened_at = neg_infinity;
    probe_inflight = false;
    trips = 0;
  }

let trips (b : t) = b.trips

(* Every state transition lands in the interaction log (when
   observability is on): the supervisor's own interactions with its
   environment, replayable next to the LTS events. *)
let log_transition (b : t) ~from ~target =
  Obs.Interaction_log.record
    (Obs.Interaction_log.Service
       (Printf.sprintf "breaker %s: %s -> %s" b.name (state_name from)
          (state_name target)))

(** The state as of [now_us], performing the timed open → half-open
    transition if the cooldown has elapsed. *)
let state (b : t) ~now_us =
  (match b.st with
  | Open when now_us -. b.opened_at >= b.cooldown_us ->
    b.st <- Half_open;
    b.probe_inflight <- false;
    log_transition b ~from:Open ~target:Half_open
  | _ -> ());
  b.st

let trip (b : t) ~now_us =
  let from = b.st in
  b.st <- Open;
  b.opened_at <- now_us;
  b.consecutive <- 0;
  b.probe_inflight <- false;
  b.trips <- b.trips + 1;
  log_transition b ~from ~target:Open;
  Obs.Metrics.incr_counter "harness.breaker.trips";
  Obs.Metrics.incr_counter ("harness.breaker." ^ b.name ^ ".trips")

(** May a job of this class start now? In the half-open state only the
    single probe is admitted; calling [allow] admits it (the caller
    must follow up with {!record}). *)
let allow (b : t) ~now_us =
  match state b ~now_us with
  | Closed -> true
  | Open -> false
  | Half_open ->
    if b.probe_inflight then false
    else begin
      b.probe_inflight <- true;
      true
    end

(** Record the outcome of an admitted job. *)
let record (b : t) ~now_us ~ok =
  match state b ~now_us with
  | Closed ->
    if ok then b.consecutive <- 0
    else begin
      b.consecutive <- b.consecutive + 1;
      if b.consecutive >= b.threshold then trip b ~now_us
    end
  | Half_open ->
    b.probe_inflight <- false;
    if ok then begin
      b.st <- Closed;
      b.consecutive <- 0;
      log_transition b ~from:Half_open ~target:Closed
    end
    else trip b ~now_us
  | Open ->
    (* A job admitted before the trip finishing late: its outcome no
       longer changes the state. *)
    ()

let pp fmt (b : t) =
  Format.fprintf fmt "%s: %s (%d trip%s)" b.name (state_name b.st) b.trips
    (if b.trips = 1 then "" else "s")
