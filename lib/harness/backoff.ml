(** Exponential backoff with jitter for the retry policy.

    A transient failure ({!Support.Diagnostics.is_transient}) earns the
    job another attempt, but not immediately: attempt [k] waits
    [base * factor^(k-1)] microseconds, capped at [max], with a
    symmetric jitter of [±jitter] (a fraction of the raw delay) so that
    a batch of jobs felled by the same transient cause does not retry
    in lock-step. The jitter is drawn from a caller-supplied
    [Random.State.t]; the supervisor derives one per job from its seed
    and the job id, so a schedule is deterministic given (seed, job) —
    which is what the tests pin down. *)

type policy = {
  base_us : float;  (** delay before the first retry *)
  factor : float;  (** multiplier per further retry *)
  max_us : float;  (** cap on the raw (pre-jitter) delay *)
  jitter : float;  (** fraction of the raw delay, in [0, 1] *)
}

let default =
  { base_us = 50_000.; factor = 2.0; max_us = 2_000_000.; jitter = 0.25 }

(** The raw (jitter-free) delay before retry attempt [attempt]
    (1-based: [attempt = 1] is the first retry). *)
let raw_delay_us (p : policy) ~attempt =
  let a = max 1 attempt in
  Float.min p.max_us (p.base_us *. (p.factor ** float_of_int (a - 1)))

(** The jittered delay: raw ± jitter, never negative. *)
let delay_us (p : policy) ~(rng : Random.State.t) ~attempt =
  let r = raw_delay_us p ~attempt in
  if p.jitter <= 0. then r
  else
    let j = r *. p.jitter in
    Float.max 0. (r -. j +. Random.State.float rng (2. *. j))

(** The whole schedule for [retries] retries, in order. *)
let schedule (p : policy) ~(rng : Random.State.t) ~retries =
  List.init (max 0 retries) (fun i -> delay_us p ~rng ~attempt:(i + 1))
