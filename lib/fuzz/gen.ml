(** A generator of well-defined C programs for differential fuzzing.

    UB avoidance by construction: divisions guarded with [| 1], shifts by
    literal constants, array indices masked to the (power-of-two) array
    size, loops bounded by literal counters or count-down locals,
    recursion excluded (calls only target earlier functions). Signed
    overflow wraps in this semantics, so arithmetic is unrestricted. *)

open QCheck

type genv = {
  funs : (string * int) list;  (* name, arity *)
  locals : string list;  (* assignable *)
  ro : string list;  (* readable only (loop counters) *)
}

let gen_const : string Gen.t =
  Gen.map
    (fun n -> string_of_int n)
    (Gen.oneof [ Gen.int_range (-100) 100; Gen.int_range (-100000) 100000 ])

(* Expressions over the integer locals in scope. *)
let rec gen_expr (env : genv) (depth : int) : string Gen.t =
  let open Gen in
  if depth = 0 then
    oneof
      (gen_const
      :: (match env.locals @ env.ro with
         | [] -> []
         | vars -> [ oneofl vars ])
      @ [ return "g" ])
  else
    let sub = gen_expr env (depth - 1) in
    frequency
      [
        (2, sub);
        ( 4,
          map2
            (fun (a, b) op -> Printf.sprintf "(%s %s %s)" a op b)
            (pair sub sub)
            (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ]) );
        ( 1,
          map2
            (fun (a, b) op -> Printf.sprintf "(%s %s (%s | 1))" a op b)
            (pair sub sub) (oneofl [ "/"; "%" ]) );
        ( 1,
          map2
            (fun a k -> Printf.sprintf "(%s << %d)" a k)
            sub (int_range 0 8) );
        ( 1,
          map2
            (fun a k -> Printf.sprintf "(%s >> %d)" a k)
            sub (int_range 0 8) );
        ( 2,
          map2
            (fun (a, b) op -> Printf.sprintf "(%s %s %s)" a op b)
            (pair sub sub)
            (oneofl [ "<"; ">"; "<="; ">="; "=="; "!=" ]) );
        (1, map (fun a -> Printf.sprintf "(- %s)" a) sub);
        (1, map (fun a -> Printf.sprintf "(~%s)" a) sub);
        (1, map (fun a -> Printf.sprintf "(arr[(%s) & 7])" a) sub);
        ( 2,
          if env.funs = [] then sub
          else
            let* f, arity = oneofl env.funs in
            let* args = list_repeat arity sub in
            return (Printf.sprintf "%s(%s)" f (String.concat ", " args)) );
      ]

let rec gen_stmt (env : genv) (depth : int) : (string * genv) Gen.t =
  let open Gen in
  let assign =
    if env.locals = [] then
      map (fun e -> (Printf.sprintf "g = %s;" e, env)) (gen_expr env 2)
    else
      map2
        (fun x e -> (Printf.sprintf "%s = %s;" x e, env))
        (oneofl env.locals) (gen_expr env 2)
  in
  let decl =
    let name = Printf.sprintf "v%d" (List.length env.locals + List.length env.ro) in
    map
      (fun e ->
        ( Printf.sprintf "int %s = %s;" name e,
          { env with locals = name :: env.locals } ))
      (gen_expr env 2)
  in
  let arr_store =
    map2
      (fun i e -> (Printf.sprintf "arr[(%s) & 7] = %s;" i e, env))
      (gen_expr env 1) (gen_expr env 2)
  in
  if depth = 0 then oneof [ assign; decl; arr_store ]
  else
    let block d env0 =
      let* s1, env1 = gen_stmt env0 (d - 1) in
      let* s2, _ = gen_stmt env1 (d - 1) in
      (* locals declared inside do not escape *)
      return (Printf.sprintf "{ %s %s }" s1 s2, env0)
    in
    frequency
      [
        (3, assign);
        (2, decl);
        (1, arr_store);
        ( 2,
          let* c = gen_expr env 2 in
          let* s1, _ = block depth env in
          let* s2, _ = block depth env in
          return (Printf.sprintf "if (%s) %s else %s" c s1 s2, env) );
        ( 2,
          let* bound = int_range 1 12 in
          let loopvar = Printf.sprintf "i%d" (List.length env.locals + List.length env.ro) in
          let env' = { env with ro = loopvar :: env.ro } in
          let* body, _ = block depth env' in
          return
            ( Printf.sprintf "for (int %s = 0; %s < %d; %s++) %s" loopvar
                loopvar bound loopvar body,
              env ) );
        ( 2,
          let* s1, env1 = gen_stmt env (depth - 1) in
          let* s2, env2 = gen_stmt env1 (depth - 1) in
          return (Printf.sprintf "%s %s" s1 s2, env2) );
        ( 1,
          (* bounded while: counts down a fresh local *)
          let w = Printf.sprintf "w%d" (List.length env.locals + List.length env.ro) in
          let* bound = int_range 1 8 in
          let env' = { env with locals = w :: env.locals } in
          let* body, _ =
            let* s, _ = gen_stmt env' (depth - 1) in
            return (s, env')
          in
          return
            ( Printf.sprintf
                "{ int %s = %d; while (%s > 0) { %s %s = %s - 1; } }" w bound w
                body w w,
              env ) );
        ( 1,
          (* 64-bit arithmetic round-trip *)
          let* e1 = gen_expr env 1 in
          let* e2 = gen_expr env 1 in
          let name =
            Printf.sprintf "l%d" (List.length env.locals + List.length env.ro)
          in
          return
            ( Printf.sprintf
                "{ long %s = (long)(%s) * (long)(%s); g = g ^ (int)(%s >> 3); }"
                name e1 e2 name,
              env ) );
      ]

let gen_function (env : genv) (index : int) : (string * (string * int)) Gen.t =
  let open Gen in
  let* arity = int_range 0 8 in
  let name = Printf.sprintf "f%d" index in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let fenv = { env with locals = params; ro = [] } in
  let* body, benv = gen_stmt fenv 2 in
  let* ret = gen_expr benv 2 in
  let proto =
    Printf.sprintf "int %s(%s)" name
      (if params = [] then "void"
       else String.concat ", " (List.map (fun p -> "int " ^ p) params))
  in
  return
    (Printf.sprintf "%s { %s return %s; }" proto body ret, (name, arity))

let gen_program : string Gen.t =
  let open Gen in
  let* nfuns = int_range 1 3 in
  let rec build env i acc =
    if i >= nfuns then return (List.rev acc, env)
    else
      let* src, f = gen_function env i in
      build { env with funs = f :: env.funs } (i + 1) (src :: acc)
  in
  let* funs, env = build { funs = []; locals = []; ro = [] } 0 [] in
  let* main_body, benv = gen_stmt { env with locals = []; ro = [] } 2 in
  let* ret = gen_expr benv 2 in
  return
    (Printf.sprintf
       "int g = 1;\nint arr[8] = {1,2,3,4,5,6,7,8};\n%s\nint main(void) { %s return %s; }"
       (String.concat "\n" funs) main_body ret)

(** {1 Shrinking}

    The generator is string-based (each function occupies one line), so
    shrinking works on the same representation: structural reductions
    that usually preserve parseability, filtered by the caller's
    failure predicate. Reductions, from coarsest to finest:

    - drop a whole line (a function definition or a global);
    - replace a function's body with [{ return 0; }];
    - drop one top-level statement of a body;
    - replace a multi-digit integer literal with [0].

    Invalid candidates (dangling references, parse errors) are harmless:
    they simply fail the predicate and are discarded. *)

(* Top-level split of a function body on ';' at brace depth 0, so inner
   blocks travel with their statement. *)
let split_statements (body : string) : string list =
  let out = ref [] and buf = Buffer.create 64 and depth = ref 0 in
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      (match c with
      | '{' -> incr depth
      | '}' ->
        decr depth;
        if !depth = 0 then (
          out := Buffer.contents buf :: !out;
          Buffer.clear buf)
      | ';' ->
        if !depth = 0 then (
          out := Buffer.contents buf :: !out;
          Buffer.clear buf)
      | _ -> ()))
    body;
  if String.trim (Buffer.contents buf) <> "" then
    out := Buffer.contents buf :: !out;
  List.rev !out

(* "int f(..) { BODY return e; }" -> (header, BODY-statements, return) *)
let split_function (line : string) : (string * string list * string) option =
  match String.index_opt line '{' with
  | None -> None
  | Some i ->
    let header = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    (* strip the final closing brace *)
    let rest =
      match String.rindex_opt rest '}' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    let stmts = split_statements rest in
    let rec split_last acc = function
      | [] -> None
      | [ last ] -> Some (List.rev acc, last)
      | s :: tl -> split_last (s :: acc) tl
    in
    (match split_last [] stmts with
    | Some (body, ret) when String.length (String.trim ret) > 0 ->
      Some (header, body, String.trim ret)
    | _ -> None)

let shrink_candidates (src : string) : string list =
  let lines = String.split_on_char '\n' src in
  let n = List.length lines in
  let without i = List.filteri (fun j _ -> j <> i) lines in
  let replace i l = List.mapi (fun j x -> if j = i then l else x) lines in
  let drop_lines =
    List.init n (fun i -> String.concat "\n" (without i))
  in
  let stub_bodies =
    List.concat
      (List.mapi
         (fun i line ->
           match split_function line with
           | Some (header, body, _) when body <> [] ->
             [ String.concat "\n" (replace i (header ^ "{ return 0; }")) ]
           | _ -> [])
         lines)
  in
  let drop_statements =
    List.concat
      (List.mapi
         (fun i line ->
           match split_function line with
           | Some (header, body, ret) ->
             List.mapi
               (fun k _ ->
                 let body' = List.filteri (fun j _ -> j <> k) body in
                 String.concat "\n"
                   (replace i
                      (Printf.sprintf "%s{ %s %s }" header
                         (String.concat " " body') ret)))
               body
           | None -> [])
         lines)
  in
  let shrink_literals =
    (* replace the first multi-digit literal with 0, scanning by byte *)
    let b = Bytes.of_string src in
    let len = Bytes.length b in
    let is_digit c = c >= '0' && c <= '9' in
    let rec scan i acc =
      if i >= len then List.rev acc
      else if
        is_digit (Bytes.get b i) && (i = 0 || not (is_digit (Bytes.get b (i - 1))))
      then begin
        let j = ref i in
        while !j < len && is_digit (Bytes.get b !j) do incr j done;
        if !j - i > 1 then
          scan !j
            ((String.sub src 0 i ^ "0" ^ String.sub src !j (len - !j)) :: acc)
        else scan !j acc
      end
      else scan (i + 1) acc
    in
    scan 0 []
  in
  List.filter
    (fun s -> String.length s < String.length src)
    (drop_lines @ stub_bodies @ drop_statements @ shrink_literals)

(** Greedy minimization: repeatedly take the first candidate reduction
    on which [still_failing] holds, until no reduction applies. The
    predicate must be total (callers wrap parse errors etc. as [false]);
    every accepted candidate is strictly smaller, so this terminates. *)
let minimize ~(still_failing : string -> bool) (src : string) : string =
  let rec go src =
    match List.find_opt still_failing (shrink_candidates src) with
    | Some smaller -> go smaller
    | None -> src
  in
  go src

let shrink_program : string QCheck.Shrink.t =
 fun src -> QCheck.Iter.of_list (shrink_candidates src)

let arb_program =
  QCheck.make gen_program ~print:(fun s -> s) ~shrink:shrink_program

