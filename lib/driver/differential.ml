(** The differential harness: compile a source string and run it at
    every level of the pipeline through the simulation conventions'
    marshaling, checking that each level refines the Clight reference.
    Used by the test suites, the fuzzer, and the [occo fuzz] command. *)

open Iface
open Iface.Li

let fuel = 3_000_000

(** One level's result: either the outcome of running it, or the error
    (marshaling or otherwise) that prevented the run. A level error no
    longer aborts the collection — the remaining levels still run, and
    their results are reported alongside the per-level errors. *)
type level_result = {
  level : string;
  outcome : (Runners.c_outcome, string) result;
}

let pp_level_result fmt r =
  match r.outcome with
  | Ok o -> Format.fprintf fmt "%-12s %a" r.level Runners.pp_c_outcome o
  | Error e -> Format.fprintf fmt "%-12s level error: %s" r.level e

(** The levels that errored, with their messages. *)
let level_errors (results : level_result list) : (string * string) list =
  List.filter_map
    (fun r -> match r.outcome with Error e -> Some (r.level, e) | Ok _ -> None)
    results

(** Run a compiled program at every level on the given C query. *)
let run_all_levels ?options (p : Cfrontend.Csyntax.program) (q : c_query) :
    (level_result list, string) result =
  let symbols = Ast.prog_defs_names p in
  match Compiler.compile ?options p with
  | Error e -> Error ("compile: " ^ e)
  | Ok arts ->
    let open Runners in
    let c lts = Ok (run_c_level lts ~fuel q) in
    let results =
      [
        ("clight1", c (Cfrontend.Clight.semantics ~symbols arts.clight1));
        ( "clight2",
          c (Cfrontend.Clight.semantics ~mode:`Temp_params ~symbols arts.clight2)
        );
        ("csharpminor", c (Cfrontend.Csharpminor.semantics ~symbols arts.csharpminor));
        ("cminor", c (Middle.Cminor.semantics ~symbols arts.cminor));
        ("cminorsel", c (Middle.Cminorsel.semantics ~symbols arts.cminorsel));
        ("rtl_gen", c (Middle.Rtl.semantics ~symbols arts.rtl_gen));
        ("rtl_opt", c (Middle.Rtl.semantics ~symbols arts.rtl));
        ("ltl", run_l_level (Backend.Ltl.semantics ~symbols arts.ltl) ~fuel q);
        ( "ltl_tunneled",
          run_l_level (Backend.Ltl.semantics ~symbols arts.ltl_tunneled) ~fuel q );
        ("linear", run_l_level (Backend.Linear.semantics ~symbols arts.linear) ~fuel q);
        ( "linear_clean",
          run_l_level (Backend.Linear.semantics ~symbols arts.linear_clean) ~fuel q );
        ("mach", run_m_level (Backend.Mach.semantics ~symbols arts.mach) ~fuel q);
        ("asm", run_a_level (Backend.Asm.semantics ~symbols arts.asm) ~fuel q);
      ]
    in
    Ok (List.map (fun (level, outcome) -> { level; outcome }) results)

(** Check that every level's outcome refines the Clight reference. A
    level that errored is a failure of that level, reported with its
    message; it does not mask the other levels' results. *)
let check_all_refine (results : level_result list) : (unit, string) result =
  match results with
  | [] -> Error "no results"
  | { outcome = Error e; level } :: _ ->
    Error (Format.asprintf "reference level %s errored: %s" level e)
  | ({ outcome = Ok ref_outcome; _ } as reference) :: rest ->
    let rec go = function
      | [] -> Ok ()
      | { level; outcome = Error e } :: _ ->
        Error (Format.asprintf "%s: level error: %s" level e)
      | ({ level; outcome = Ok o } as r) :: rest ->
        if Runners.outcome_refines ref_outcome o then go rest
        else
          Error
            (Format.asprintf "@[<v>%s does not refine the source:@,%a@,%a@]"
               level pp_level_result reference pp_level_result r)
    in
    go rest

let main_query_of (p : Cfrontend.Csyntax.program) : c_query option =
  let symbols = Ast.prog_defs_names p in
  Runners.main_query ~symbols ~defs:p ()

(** The main differential check: compile [src] and require every level to
    refine the Clight behavior of [main]. *)
let differential ?options (src : string) : (level_result list, string) result =
  let p = Cfrontend.Cparser.parse_program src in
  match main_query_of p with
  | None -> Error "cannot build main query"
  | Some q -> (
    match run_all_levels ?options p q with
    | Error e -> Error e
    | Ok results -> (
      match check_all_refine results with
      | Ok () -> Ok results
      | Error e -> Error e))

