(** The compiler driver: composing the passes of Table 3.

    [compile] runs the full pipeline from parsed Clight to Asm, keeping
    every intermediate program so that tests and benchmarks can co-execute
    adjacent levels (the executable counterpart of the per-pass simulation
    proofs). *)

open Support.Errors
module Errors = Support.Errors
module C = Cfrontend.Csyntax

type options = {
  opt_tailcall : bool;
  opt_inlining : bool;
  opt_constprop : bool;
  opt_cse : bool;
  opt_deadcode : bool;
}

let all_optims =
  {
    opt_tailcall = true;
    opt_inlining = true;
    opt_constprop = true;
    opt_cse = true;
    opt_deadcode = true;
  }

let no_optims =
  {
    opt_tailcall = false;
    opt_inlining = false;
    opt_constprop = false;
    opt_cse = false;
    opt_deadcode = false;
  }

(** Every intermediate program of the pipeline. [clight1] is the source
    (memory-resident parameters); [clight2] is after [SimplLocals]. *)
type artifacts = {
  clight1 : C.program;
  clight2 : C.program;
  csharpminor : Cfrontend.Csharpminor.program;
  cminor : Middle.Cminor.program;
  cminorsel : Middle.Cminorsel.program;
  rtl_gen : Middle.Rtl.program;  (** straight out of RTLgen *)
  rtl : Middle.Rtl.program;  (** after the optional RTL optimizations *)
  ltl : Backend.Ltl.program;
  ltl_tunneled : Backend.Ltl.program;
  linear : Backend.Linear.program;
  linear_clean : Backend.Linear.program;
  mach : Backend.Mach.program;
  asm : Backend.Asm.program;
}

let when_opt flag pass p = if flag then pass p else ok p

(* Observability (ISSUE 1 tentpole, part 3; Gc profiling added in
   ISSUE 6): each executed pass runs inside a span carrying its wall
   time, the program shape before/after, and the Gc work it caused —
   words allocated (minor and major) and major collections triggered —
   and feeds per-pass duration and allocation histograms in the shared
   metrics registry, the same numbers the bench harness exports. When
   [Obs.enabled] is off this is a single boolean test per pass. *)
let observed name ~(before : 'a -> Sizes.shape) ~(after : 'b -> Sizes.shape)
    (pass : 'a -> 'b Errors.t) (p : 'a) : 'b Errors.t =
  if not !Obs.enabled then pass p
  else
    Obs.Trace.with_span ("pass:" ^ name) (fun () ->
        let sb = before p in
        Obs.Trace.add_attr "functions_before" (Obs.Json.num_of_int sb.Sizes.functions);
        Obs.Trace.add_attr "size_before" (Obs.Json.num_of_int sb.Sizes.size);
        let g0 = Gc.quick_stat () in
        (* Minor allocation comes from [Gc.minor_words ()], which reads
           the domain's young-pointer directly and is exact at any
           program point. The [Gc.counters] minor field is NOT: on
           OCaml 5 it only advances at minor-collection boundaries, so
           short passes read 0 and whichever pass happens to straddle a
           collection absorbs the whole ~minor-heap-sized lump —
           exactly the bogus multi-hundred-k tail the alloc_words
           histograms used to show. [counters] is still the source for
           the promoted/major pair (mutually coherent with each other);
           the major-net delta is clamped at 0 since those two fields
           share the boundary-only granularity. *)
        let mw0 = Gc.minor_words () in
        let _, pr0, ma0 = Gc.counters () in
        let r = Obs.Metrics.time ("pass." ^ name) (fun () -> pass p) in
        let _, pr1, ma1 = Gc.counters () in
        let mw1 = Gc.minor_words () in
        let g1 = Gc.quick_stat () in
        (* Words the pass allocated: everything born in the minor heap
           plus direct major allocations, not double-counting survivors
           promoted from one to the other. *)
        let minor_alloc = Float.max 0. (mw1 -. mw0) in
        let major_alloc = Float.max 0. (ma1 -. ma0 -. (pr1 -. pr0)) in
        Obs.Trace.add_attr "minor_alloc_words" (Obs.Json.Num minor_alloc);
        Obs.Trace.add_attr "major_alloc_words" (Obs.Json.Num major_alloc);
        Obs.Trace.add_attr "major_collections"
          (Obs.Json.num_of_int (g1.Gc.major_collections - g0.Gc.major_collections));
        Obs.Metrics.observe
          ("pass." ^ name ^ ".alloc_words")
          (minor_alloc +. major_alloc);
        (match r with
        | Ok q ->
          let sa = after q in
          Obs.Trace.add_attr "functions_after"
            (Obs.Json.num_of_int sa.Sizes.functions);
          Obs.Trace.add_attr "size_after" (Obs.Json.num_of_int sa.Sizes.size)
        | Error _ -> Obs.Trace.add_attr "failed" (Obs.Json.Bool true));
        r)

(** {1 The hardened, diagnosed pipeline}

    [compile_diag] is the primary driver. Every pass runs under a guard
    that (1) converts an [Error] result into a structured
    {!Diagnostics.t} carrying the pass name and pipeline phase, (2)
    catches any exception a buggy pass might raise and reports it as an
    [Internal_error] diagnostic instead of letting it escape, and (3)
    enforces an optional per-pass wall-clock budget. On failure the
    caller still gets every artifact produced {e before} the failing
    pass ({!partial_artifacts}), so downstream consumers can degrade
    gracefully (dump what exists, report the diagnostic) instead of
    aborting. *)

module Diag = Support.Diagnostics

(** The prefix of the pipeline that did complete: [pa_clight1] is always
    the input; each later field is [Some] iff its pass ran and
    succeeded. *)
type partial_artifacts = {
  pa_clight1 : C.program;
  pa_clight2 : C.program option;
  pa_csharpminor : Cfrontend.Csharpminor.program option;
  pa_cminor : Middle.Cminor.program option;
  pa_cminorsel : Middle.Cminorsel.program option;
  pa_rtl_gen : Middle.Rtl.program option;
  pa_rtl : Middle.Rtl.program option;
  pa_ltl : Backend.Ltl.program option;
  pa_ltl_tunneled : Backend.Ltl.program option;
  pa_linear : Backend.Linear.program option;
  pa_linear_clean : Backend.Linear.program option;
  pa_mach : Backend.Mach.program option;
  pa_asm : Backend.Asm.program option;
}

let empty_partial (p : C.program) : partial_artifacts =
  {
    pa_clight1 = p;
    pa_clight2 = None;
    pa_csharpminor = None;
    pa_cminor = None;
    pa_cminorsel = None;
    pa_rtl_gen = None;
    pa_rtl = None;
    pa_ltl = None;
    pa_ltl_tunneled = None;
    pa_linear = None;
    pa_linear_clean = None;
    pa_mach = None;
    pa_asm = None;
  }

(** The name of the last pass whose output is present in a partial. *)
let partial_progress (pa : partial_artifacts) : string =
  let stages =
    [
      ("Asmgen", pa.pa_asm <> None);
      ("Stacking", pa.pa_mach <> None);
      ("CleanupLabels", pa.pa_linear_clean <> None);
      ("Linearize", pa.pa_linear <> None);
      ("Tunneling", pa.pa_ltl_tunneled <> None);
      ("Allocation", pa.pa_ltl <> None);
      ("RTL optimizations", pa.pa_rtl <> None);
      ("RTLgen", pa.pa_rtl_gen <> None);
      ("Selection", pa.pa_cminorsel <> None);
      ("Cminorgen", pa.pa_cminor <> None);
      ("Cshmgen", pa.pa_csharpminor <> None);
      ("SimplLocals", pa.pa_clight2 <> None);
    ]
  in
  match List.find_opt snd stages with
  | Some (name, _) -> name
  | None -> "source"

(** A diagnosed compilation failure, with the artifacts that did build. *)
type failure = { fail_diag : Diag.t; fail_partial : partial_artifacts }

let compile_diag ?(options = all_optims) ?budget_us (p : C.program) :
    (artifacts, failure) result =
  Obs.Trace.with_span "compile" @@ fun () ->
  let partial = ref (empty_partial p) in
  (* Guard one pass: structured error on [Error], caught exception on
     [raise], budget check on success. [save] records the artifact in
     the partial record first, so even an over-budget pass contributes
     its output to graceful degradation. *)
  let stage ~phase name ~before ~after ~save pass x =
    let t0 = Obs.now_us () in
    let result =
      match observed name ~before ~after pass x with
      | Ok v -> Ok v
      | Error msg ->
        let kind =
          if name = "AllocCheck" then Diag.Validation_failure
          else Diag.Pass_failure
        in
        Error (Diag.make ~pass:name ~phase ~kind "%s" msg)
      | exception e -> Error (Diag.of_exn ~pass:name ~phase e)
    in
    match result with
    | Error d -> Error { fail_diag = d; fail_partial = !partial }
    | Ok v -> (
      partial := save !partial v;
      let elapsed = Obs.now_us () -. t0 in
      match budget_us with
      | Some b when elapsed > b ->
        Error
          {
            fail_diag =
              Diag.make ~pass:name ~phase ~kind:Diag.Budget_exceeded
                ~context:
                  [
                    ("elapsed_us", Printf.sprintf "%.0f" elapsed);
                    ("budget_us", Printf.sprintf "%.0f" b);
                  ]
                "pass exceeded its wall-clock budget";
            fail_partial = !partial;
          }
      | _ -> Ok v)
  in
  let ( let* ) m f = match m with Ok x -> f x | Error _ as e -> e in
  let* clight2 =
    stage ~phase:Diag.Frontend "SimplLocals" ~before:Sizes.clight
      ~after:Sizes.clight
      ~save:(fun pa v -> { pa with pa_clight2 = Some v })
      Passes.Simpllocals.transf_program p
  in
  let* csharpminor =
    stage ~phase:Diag.Frontend "Cshmgen" ~before:Sizes.clight
      ~after:Sizes.csharpminor
      ~save:(fun pa v -> { pa with pa_csharpminor = Some v })
      Passes.Cshmgen.transf_program clight2
  in
  let* cminor =
    stage ~phase:Diag.Frontend "Cminorgen" ~before:Sizes.csharpminor
      ~after:Sizes.cminor
      ~save:(fun pa v -> { pa with pa_cminor = Some v })
      Passes.Cminorgen.transf_program csharpminor
  in
  let* cminorsel =
    stage ~phase:Diag.Middle "Selection" ~before:Sizes.cminor
      ~after:Sizes.cminorsel
      ~save:(fun pa v -> { pa with pa_cminorsel = Some v })
      Passes.Selection.transf_program cminor
  in
  let* rtl_gen =
    stage ~phase:Diag.Middle "RTLgen" ~before:Sizes.cminorsel ~after:Sizes.rtl
      ~save:(fun pa v -> { pa with pa_rtl_gen = Some v })
      Passes.Rtlgen.transf_program cminorsel
  in
  let rtl_stage name pass flag x =
    stage ~phase:Diag.Middle name ~before:Sizes.rtl ~after:Sizes.rtl
      ~save:(fun pa v -> { pa with pa_rtl = Some v })
      (when_opt flag pass) x
  in
  let* rtl1 =
    rtl_stage "Tailcall" Passes.Tailcall.transf_program options.opt_tailcall
      rtl_gen
  in
  let* rtl2 =
    rtl_stage "Inlining" Passes.Inlining.transf_program options.opt_inlining rtl1
  in
  let* rtl3 = rtl_stage "Renumber" Passes.Renumber.transf_program true rtl2 in
  let* rtl4 =
    rtl_stage "Constprop" Passes.Constprop.transf_program options.opt_constprop
      rtl3
  in
  let* rtl5 = rtl_stage "CSE" Passes.Cse.transf_program options.opt_cse rtl4 in
  let* rtl =
    rtl_stage "Deadcode" Passes.Deadcode.transf_program options.opt_deadcode rtl5
  in
  (* Translation validation of the untrusted allocator (CompCert-style):
     a miscompilation in Allocation aborts the compilation here. The
     validator receives the allocator's own colorings and checks them
     from scratch instead of re-deriving them. When the linear-scan fast
     path produces a coloring the validator rejects, the driver falls
     back to the graph allocator and validates again — performance from
     the fast path, correctness from the check. *)
  let allocate_and_check strat =
    let* ltl, allocator_assigns =
      stage ~phase:Diag.Backend "Allocation" ~before:Sizes.rtl
        ~after:(fun (l, _) -> Sizes.ltl l)
        ~save:(fun pa (l, _) -> { pa with pa_ltl = Some l })
        (Passes.Allocation.transf_program_with_assignments ~strategy:strat)
        rtl
    in
    let* () =
      stage ~phase:Diag.Backend "AllocCheck" ~before:Sizes.ltl
        ~after:(fun () -> Sizes.ltl ltl)
        ~save:(fun pa () -> pa)
        (fun ltl ->
          Passes.Alloc_check.validate_program ~assignments:allocator_assigns
            rtl ltl)
        ltl
    in
    Ok ltl
  in
  let requested = !Passes.Allocation.default_strategy in
  let* ltl =
    match allocate_and_check requested with
    | Ok ltl ->
      Obs.Trace.add_attr "allocator"
        (Obs.Json.Str (Passes.Allocation.strategy_name requested));
      Ok ltl
    | Error f
      when requested = Passes.Allocation.Linear_scan
           && (f.fail_diag.Diag.pass = Some "AllocCheck"
              || f.fail_diag.Diag.pass = Some "Allocation")
           && f.fail_diag.Diag.kind <> Diag.Budget_exceeded ->
      (* The validator rejected the fast path (or it crashed): retry
         with the graph allocator, surfaced on the compile span and in
         the metrics registry. *)
      Obs.Metrics.incr_counter "alloc.linear_scan_fallback";
      Obs.Trace.add_attr "allocator" (Obs.Json.Str "graph_fallback");
      allocate_and_check Passes.Allocation.Graph
    | Error _ as e -> e
  in
  let* ltl_tunneled =
    stage ~phase:Diag.Backend "Tunneling" ~before:Sizes.ltl ~after:Sizes.ltl
      ~save:(fun pa v -> { pa with pa_ltl_tunneled = Some v })
      Passes.Tunneling.transf_program ltl
  in
  let* linear =
    stage ~phase:Diag.Backend "Linearize" ~before:Sizes.ltl ~after:Sizes.linear
      ~save:(fun pa v -> { pa with pa_linear = Some v })
      Passes.Linearize.transf_program ltl_tunneled
  in
  let* linear_clean =
    stage ~phase:Diag.Backend "CleanupLabels" ~before:Sizes.linear
      ~after:Sizes.linear
      ~save:(fun pa v -> { pa with pa_linear_clean = Some v })
      Passes.Cleanuplabels.transf_program linear
  in
  let* linear_dbg =
    stage ~phase:Diag.Backend "Debugvar" ~before:Sizes.linear
      ~after:Sizes.linear
      ~save:(fun pa _ -> pa)
      Passes.Debugvar.transf_program linear_clean
  in
  let* mach =
    stage ~phase:Diag.Backend "Stacking" ~before:Sizes.linear ~after:Sizes.mach
      ~save:(fun pa v -> { pa with pa_mach = Some v })
      Passes.Stacking.transf_program linear_dbg
  in
  let* asm =
    stage ~phase:Diag.Backend "Asmgen" ~before:Sizes.mach ~after:Sizes.asm
      ~save:(fun pa v -> { pa with pa_asm = Some v })
      Passes.Asmgen.transf_program mach
  in
  Ok
    {
      clight1 = p;
      clight2;
      csharpminor;
      cminor;
      cminorsel;
      rtl_gen;
      rtl;
      ltl;
      ltl_tunneled;
      linear;
      linear_clean;
      mach;
      asm;
    }

(** The string-error view of {!compile_diag}, kept for the many callers
    that only need the message. *)
let compile ?options (p : C.program) : artifacts Errors.t =
  match compile_diag ?options p with
  | Ok arts -> Ok arts
  | Error f -> Error (Diag.to_string f.fail_diag)

(** Parse a C source string as a diagnosed result: lexer and parser
    exceptions become [Parsing]-phase diagnostics instead of escaping. *)
let parse_diag (src : string) : C.program Diag.r =
  match Cfrontend.Cparser.parse_program src with
  | p -> Ok p
  | exception Cfrontend.Cparser.Parse_error (msg, line) ->
    Diag.error ~phase:Diag.Parsing ~kind:Diag.Syntax_error
      ~context:[ ("line", string_of_int line) ]
      "line %d: %s" line msg
  | exception Cfrontend.Clexer.Lex_error (msg, line) ->
    Diag.error ~phase:Diag.Parsing ~kind:Diag.Lexical_error
      ~context:[ ("line", string_of_int line) ]
      "line %d: %s" line msg
  | exception e -> Error (Diag.of_exn ~phase:Diag.Parsing e)

(** Parse and compile a C source string, fully diagnosed. *)
let compile_source_diag ?options ?budget_us (src : string) :
    (artifacts, failure) result =
  match parse_diag src with
  | Error d ->
    (* No program, hence no artifacts at all; any Clight program would
       be a lie, so fabricate the empty one. *)
    let empty =
      { Iface.Ast.prog_defs = []; prog_main = Support.Ident.intern "main" }
    in
    Error { fail_diag = d; fail_partial = empty_partial empty }
  | Ok p -> compile_diag ?options ?budget_us p

(** {1 Resuming the pipeline from an intermediate program}

    The fault-injection harness simulates a buggy pass by mutating one
    pass's output and recompiling everything downstream of it, so the
    mutation propagates to the final Asm exactly as a real
    miscompilation would. These entry points run the downstream suffix
    of the pipeline; they share the per-pass guards of the full driver
    (the translation validator still runs, so an ill-formed mutant can
    already be caught here). *)

(** The backend artifacts produced from a (possibly mutated) RTL
    program. *)
type backend_artifacts = {
  b_ltl : Backend.Ltl.program;
  b_ltl_tunneled : Backend.Ltl.program;
  b_linear : Backend.Linear.program;
  b_linear_clean : Backend.Linear.program;
  b_mach : Backend.Mach.program;
  b_asm : Backend.Asm.program;
}

let backend_from_rtl (rtl : Middle.Rtl.program) : backend_artifacts Errors.t =
  let guard name f x =
    match f x with
    | r -> r
    | exception e ->
      Errors.error "%s: uncaught exception: %s" name (Printexc.to_string e)
  in
  let allocate_and_check strat =
    let* ltl, assignments =
      guard "Allocation"
        (Passes.Allocation.transf_program_with_assignments ~strategy:strat)
        rtl
    in
    let* () =
      guard "AllocCheck"
        (Passes.Alloc_check.validate_program ~assignments rtl)
        ltl
    in
    ok ltl
  in
  let requested = !Passes.Allocation.default_strategy in
  let* ltl =
    match allocate_and_check requested with
    | Error _ when requested = Passes.Allocation.Linear_scan ->
      Obs.Metrics.incr_counter "alloc.linear_scan_fallback";
      allocate_and_check Passes.Allocation.Graph
    | r -> r
  in
  let* ltl_tunneled = guard "Tunneling" Passes.Tunneling.transf_program ltl in
  let* linear = guard "Linearize" Passes.Linearize.transf_program ltl_tunneled in
  let* linear_clean =
    guard "CleanupLabels" Passes.Cleanuplabels.transf_program linear
  in
  let* linear_dbg = guard "Debugvar" Passes.Debugvar.transf_program linear_clean in
  let* mach = guard "Stacking" Passes.Stacking.transf_program linear_dbg in
  let* asm = guard "Asmgen" Passes.Asmgen.transf_program mach in
  ok { b_ltl = ltl; b_ltl_tunneled = ltl_tunneled; b_linear = linear;
       b_linear_clean = linear_clean; b_mach = mach; b_asm = asm }

(** Finish compilation from a (possibly mutated) cleaned-up Linear
    program: Debugvar, Stacking, Asmgen. *)
let finish_from_linear (linear_clean : Backend.Linear.program) :
    (Backend.Mach.program * Backend.Asm.program) Errors.t =
  let guard name f x =
    match f x with
    | r -> r
    | exception e ->
      Errors.error "%s: uncaught exception: %s" name (Printexc.to_string e)
  in
  let* linear_dbg = guard "Debugvar" Passes.Debugvar.transf_program linear_clean in
  let* mach = guard "Stacking" Passes.Stacking.transf_program linear_dbg in
  let* asm = guard "Asmgen" Passes.Asmgen.transf_program mach in
  ok (mach, asm)

(** Parse and compile a C source string. *)
let compile_source ?options (src : string) : artifacts Errors.t =
  let p = Cfrontend.Cparser.parse_program src in
  compile ?options p

(** Compile a C source string to Asm only. *)
let compile_c_to_asm ?options (src : string) : Backend.Asm.program Errors.t =
  let* arts = compile_source ?options src in
  ok arts.asm
