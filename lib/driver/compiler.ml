(** The compiler driver: composing the passes of Table 3.

    [compile] runs the full pipeline from parsed Clight to Asm, keeping
    every intermediate program so that tests and benchmarks can co-execute
    adjacent levels (the executable counterpart of the per-pass simulation
    proofs). *)

open Support.Errors
module Errors = Support.Errors
module C = Cfrontend.Csyntax

type options = {
  opt_tailcall : bool;
  opt_inlining : bool;
  opt_constprop : bool;
  opt_cse : bool;
  opt_deadcode : bool;
}

let all_optims =
  {
    opt_tailcall = true;
    opt_inlining = true;
    opt_constprop = true;
    opt_cse = true;
    opt_deadcode = true;
  }

let no_optims =
  {
    opt_tailcall = false;
    opt_inlining = false;
    opt_constprop = false;
    opt_cse = false;
    opt_deadcode = false;
  }

(** Every intermediate program of the pipeline. [clight1] is the source
    (memory-resident parameters); [clight2] is after [SimplLocals]. *)
type artifacts = {
  clight1 : C.program;
  clight2 : C.program;
  csharpminor : Cfrontend.Csharpminor.program;
  cminor : Middle.Cminor.program;
  cminorsel : Middle.Cminorsel.program;
  rtl_gen : Middle.Rtl.program;  (** straight out of RTLgen *)
  rtl : Middle.Rtl.program;  (** after the optional RTL optimizations *)
  ltl : Backend.Ltl.program;
  ltl_tunneled : Backend.Ltl.program;
  linear : Backend.Linear.program;
  linear_clean : Backend.Linear.program;
  mach : Backend.Mach.program;
  asm : Backend.Asm.program;
}

let when_opt flag pass p = if flag then pass p else ok p

(* Observability (ISSUE 1 tentpole, part 3): each executed pass runs
   inside a span carrying its wall time and the program shape
   before/after, and feeds a per-pass duration histogram in the shared
   metrics registry — the same numbers the bench harness exports. When
   [Obs.enabled] is off this is a single boolean test per pass. *)
let observed name ~(before : 'a -> Sizes.shape) ~(after : 'b -> Sizes.shape)
    (pass : 'a -> 'b Errors.t) (p : 'a) : 'b Errors.t =
  if not !Obs.enabled then pass p
  else
    Obs.Trace.with_span ("pass:" ^ name) (fun () ->
        let sb = before p in
        Obs.Trace.add_attr "functions_before" (Obs.Json.num_of_int sb.Sizes.functions);
        Obs.Trace.add_attr "size_before" (Obs.Json.num_of_int sb.Sizes.size);
        let r = Obs.Metrics.time ("pass." ^ name) (fun () -> pass p) in
        (match r with
        | Ok q ->
          let sa = after q in
          Obs.Trace.add_attr "functions_after"
            (Obs.Json.num_of_int sa.Sizes.functions);
          Obs.Trace.add_attr "size_after" (Obs.Json.num_of_int sa.Sizes.size)
        | Error _ -> Obs.Trace.add_attr "failed" (Obs.Json.Bool true));
        r)

let compile ?(options = all_optims) (p : C.program) : artifacts Errors.t =
  Obs.Trace.with_span "compile" @@ fun () ->
  let pass = observed in
  let* clight2 =
    pass "SimplLocals" ~before:Sizes.clight ~after:Sizes.clight
      Passes.Simpllocals.transf_program p
  in
  let* csharpminor =
    pass "Cshmgen" ~before:Sizes.clight ~after:Sizes.csharpminor
      Passes.Cshmgen.transf_program clight2
  in
  let* cminor =
    pass "Cminorgen" ~before:Sizes.csharpminor ~after:Sizes.cminor
      Passes.Cminorgen.transf_program csharpminor
  in
  let* cminorsel =
    pass "Selection" ~before:Sizes.cminor ~after:Sizes.cminorsel
      Passes.Selection.transf_program cminor
  in
  let* rtl_gen =
    pass "RTLgen" ~before:Sizes.cminorsel ~after:Sizes.rtl
      Passes.Rtlgen.transf_program cminorsel
  in
  let rtl_pass name = pass name ~before:Sizes.rtl ~after:Sizes.rtl in
  let* rtl1 =
    when_opt options.opt_tailcall
      (rtl_pass "Tailcall" Passes.Tailcall.transf_program)
      rtl_gen
  in
  let* rtl2 =
    when_opt options.opt_inlining
      (rtl_pass "Inlining" Passes.Inlining.transf_program)
      rtl1
  in
  let* rtl3 = rtl_pass "Renumber" Passes.Renumber.transf_program rtl2 in
  let* rtl4 =
    when_opt options.opt_constprop
      (rtl_pass "Constprop" Passes.Constprop.transf_program)
      rtl3
  in
  let* rtl5 = when_opt options.opt_cse (rtl_pass "CSE" Passes.Cse.transf_program) rtl4 in
  let* rtl =
    when_opt options.opt_deadcode
      (rtl_pass "Deadcode" Passes.Deadcode.transf_program)
      rtl5
  in
  let* ltl =
    pass "Allocation" ~before:Sizes.rtl ~after:Sizes.ltl
      Passes.Allocation.transf_program rtl
  in
  (* Translation validation of the untrusted allocator (CompCert-style):
     a miscompilation in Allocation aborts the compilation here. *)
  let* () =
    pass "AllocCheck" ~before:Sizes.ltl
      ~after:(fun () -> Sizes.ltl ltl)
      (fun ltl -> Passes.Alloc_check.validate_program rtl ltl)
      ltl
  in
  let* ltl_tunneled =
    pass "Tunneling" ~before:Sizes.ltl ~after:Sizes.ltl
      Passes.Tunneling.transf_program ltl
  in
  let* linear =
    pass "Linearize" ~before:Sizes.ltl ~after:Sizes.linear
      Passes.Linearize.transf_program ltl_tunneled
  in
  let* linear_clean =
    pass "CleanupLabels" ~before:Sizes.linear ~after:Sizes.linear
      Passes.Cleanuplabels.transf_program linear
  in
  let* linear_dbg =
    pass "Debugvar" ~before:Sizes.linear ~after:Sizes.linear
      Passes.Debugvar.transf_program linear_clean
  in
  let* mach =
    pass "Stacking" ~before:Sizes.linear ~after:Sizes.mach
      Passes.Stacking.transf_program linear_dbg
  in
  let* asm =
    pass "Asmgen" ~before:Sizes.mach ~after:Sizes.asm
      Passes.Asmgen.transf_program mach
  in
  ok
    {
      clight1 = p;
      clight2;
      csharpminor;
      cminor;
      cminorsel;
      rtl_gen;
      rtl;
      ltl;
      ltl_tunneled;
      linear;
      linear_clean;
      mach;
      asm;
    }

(** Parse and compile a C source string. *)
let compile_source ?options (src : string) : artifacts Errors.t =
  let p = Cfrontend.Cparser.parse_program src in
  compile ?options p

(** Compile a C source string to Asm only. *)
let compile_c_to_asm ?options (src : string) : Backend.Asm.program Errors.t =
  let* arts = compile_source ?options src in
  ok arts.asm
