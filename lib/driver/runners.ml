(** Running each intermediate language on C-level queries.

    These are the executable counterparts of the simulation conventions
    used in the paper: a source-level [C] query is marshaled down through
    [CL], [LM] and [MA] to activate the lower-level semantics, and the
    answer is marshaled back up. The composite [CA = CL · LM · MA] is
    exactly the structural content of the calling convention [C] of
    Theorem 3.8. *)

open Support
open Memory.Values
open Core
open Iface
open Iface.Li
open Iface.Callconv

(** [CA = CL · LM · MA : C ⇔ A] (paper §5). *)
let cc_ca = Iface.Callconv.cc_ca

(** [CM = CL · LM : C ⇔ M]. *)
let cc_cm = Iface.Callconv.cc_cm

(* Outcome of a lower-level run, read back as a C-level reply. *)
type c_outcome = (c_reply, c_query) Smallstep.outcome

(* Lower-level external calls that the (empty) oracle cannot answer are
   reported as a distinguished kind of wrong behavior at the C level. *)
let map_outcome bwd (o : ('r2, 'q2) Smallstep.outcome) :
    (('r1, 'q1) Smallstep.outcome, string) result =
  match o with
  | Smallstep.Final (t, r2) -> (
    match bwd r2 with
    | Some r1 -> Ok (Smallstep.Final (t, r1))
    | None -> Error "cannot marshal the reply back to the source level")
  | Smallstep.Goes_wrong (t, why) -> Ok (Smallstep.Goes_wrong (t, why))
  | Smallstep.Env_stuck (t, _) ->
    Ok (Smallstep.Goes_wrong (t, "unresolved external call"))
  | Smallstep.Env_violation (t, why) -> Ok (Smallstep.Env_violation (t, why))
  | Smallstep.Refused -> Ok Smallstep.Refused
  | Smallstep.Out_of_fuel t -> Ok (Smallstep.Out_of_fuel t)

(** Build the conventional C query invoking [main] (or another function)
    of a program. *)
let main_query ~symbols ~(defs : ('f, 'v) Ast.program) ?(name = "main")
    ?(args = []) ?(sg = Memory.Mtypes.signature_main) () : c_query option =
  let ge = Genv.globalenv ~symbols defs in
  match (Genv.find_symbol ge (Ident.intern name), Genv.init_mem ~symbols defs) with
  | Some b, Some m -> Some { cq_vf = Vptr (b, 0); cq_sg = sg; cq_args = args; cq_mem = m }
  | _ -> None

(* Runs go through [Obs_lts.run]: identical to [Smallstep.run] when
   observability is off, and a span plus replayable interaction log
   (question, steps, calls/replies, final answer, fuel) when on. *)

(** Run a [C]-interfaced semantics (Clight through RTL) on a C query.
    [check_reply] validates oracle answers (see {!Smallstep.run}). *)
let run_c_level lts ~fuel ?(oracle = fun _ -> None) ?check_reply (q : c_query) :
    c_outcome =
  Obs_lts.run
    ~pp_qi:(Format.asprintf "%a" pp_c_query)
    ~pp_ri:(Format.asprintf "%a" pp_c_reply)
    ~pp_qo:(Format.asprintf "%a" pp_c_query)
    ?check_reply ~fuel lts ~oracle q

(** Run an [L]-interfaced semantics (LTL, Linear) on a C query through
    [CL]. *)
let run_l_level lts ~fuel ?(oracle = fun _ -> None) (q : c_query) :
    (c_outcome, string) result =
  match cc_cl.Simconv.fwd_query q with
  | None -> Error "CL cannot marshal the query"
  | Some (w, lq) ->
    let o = Obs_lts.run ~fuel lts ~oracle lq in
    map_outcome (fun r -> cc_cl.Simconv.bwd_reply w r) o

(** Run Mach on a C query through [CL · LM]. *)
let run_m_level lts ~fuel ?(oracle = fun _ -> None) (q : c_query) :
    (c_outcome, string) result =
  match cc_cm.Simconv.fwd_query q with
  | None -> Error "CL.LM cannot marshal the query"
  | Some (w, mq) ->
    let o = Obs_lts.run ~fuel lts ~oracle mq in
    map_outcome (fun r -> cc_cm.Simconv.bwd_reply w r) o

(** Run Asm on a C query through [CA = CL · LM · MA]. [oracle] answers
    A-level external calls; [check_reply] validates those answers
    against the A-side of the convention, diagnosing misbehaving
    environments as [Env_violation]. *)
let run_a_level lts ~fuel ?(oracle = fun _ -> None) ?check_reply (q : c_query) :
    (c_outcome, string) result =
  match cc_ca.Simconv.fwd_query q with
  | None -> Error "CA cannot marshal the query"
  | Some (w, aq) ->
    let o = Obs_lts.run ?check_reply ~fuel lts ~oracle aq in
    map_outcome (fun r -> cc_ca.Simconv.bwd_reply w r) o

(** The refinement check on outcomes used by the differential harness:
    traces must agree and the target's answer must refine the source's
    ([≤v] on result values). Source undefined behavior licenses any
    target behavior. *)
let outcome_refines (src : c_outcome) (tgt : c_outcome) : bool =
  match (src, tgt) with
  | Smallstep.Goes_wrong _, _ -> true
  | Smallstep.Final (t1, r1), Smallstep.Final (t2, r2) ->
    Events.trace_equal t1 t2 && lessdef r1.cr_res r2.cr_res
  | Smallstep.Refused, Smallstep.Refused -> true
  | Smallstep.Env_stuck (t1, _), Smallstep.Env_stuck (t2, _) ->
    Events.trace_equal t1 t2
  (* A diagnosed environment violation is the environment's fault, not
     the compiler's: both sides facing the same misbehaving oracle is
     consistent. *)
  | Smallstep.Env_violation (t1, _), Smallstep.Env_violation (t2, _) ->
    Events.trace_equal t1 t2
  (* Both sides exhausting the fuel is inconclusive rather than a
     refinement failure; curated tests always terminate. *)
  | Smallstep.Out_of_fuel _, Smallstep.Out_of_fuel _ -> true
  | _ -> false

let pp_c_outcome fmt (o : c_outcome) =
  Smallstep.pp_outcome pp_c_reply fmt o
