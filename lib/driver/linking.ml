(** Separate compilation and linking experiments (paper, Thm. 3.5 and
    Cor. 3.9).

    - [asm_link_experiment] compares the horizontal composition
      [Asm(p1) ⊕ Asm(p2)] against the syntactically linked [Asm(p1 + p2)]
      on a C-level query marshaled through [CA] (Thm. 3.5 states they
      coincide up to [≤id↠id]).
    - [separate_compilation_experiment] compares
      [Clight(M1) ⊕ ... ⊕ Clight(Mn)] against [Asm(M1.s + ... + Mn.s)]
      (Cor. 3.9) — the headline separate-compilation result.

    Both experiments use a shared symbol table for all units, per
    CompCertO's discipline (Appendix A.3). *)

open Support
open Support.Errors
module Errors = Support.Errors
open Core
open Iface
module C = Cfrontend.Csyntax
module A = Backend.Asm

(** The union of the symbols of several translation units, in
    first-occurrence order. Every unit's semantics must be built against
    this list so that block identities agree. A [Hashtbl] seen-set with a
    reversed accumulator keeps this linear in the total number of
    symbols (the naive [List.mem] + [acc @ [id]] version was quadratic,
    which showed up on many-unit link experiments). *)
let shared_symbols (defs_lists : Ident.t list list) : Ident.t list =
  let seen = Hashtbl.create 64 in
  let rev =
    List.fold_left
      (fun acc ids ->
        List.fold_left
          (fun acc id ->
            if Hashtbl.mem seen id then acc
            else (
              Hashtbl.add seen id ();
              id :: acc))
          acc ids)
      [] defs_lists
  in
  List.rev rev

(** Collect [Domain_overlap] diagnostics from a horizontal composition:
    returns the [on_diag] hook to pass to {!Core.Hcomp.compose} and a
    checker that demotes a successful outcome to [Error] if any overlap
    fired while running. *)
let overlap_guard () =
  let diags = ref [] in
  let on_diag d = diags := d :: !diags in
  let check (r : ('a, string) result) : ('a, string) result =
    match (r, !diags) with
    | Error _, _ | Ok _, [] -> r
    | Ok _, d :: _ -> Error (Diagnostics.to_string d)
  in
  (on_diag, check)

type 'a experiment = {
  exp_composed : 'a;  (** behavior of the horizontal composition *)
  exp_linked : 'a;  (** behavior of the syntactically linked program *)
  exp_agree : bool;
}

(** Theorem 3.5: [Asm(p1) ⊕ Asm(p2)] vs [Asm(p1 + p2)]. *)
let asm_link_experiment ~fuel (p1 : A.program) (p2 : A.program)
    (q : Li.c_query) : (Runners.c_outcome experiment, string) result =
  let symbols =
    shared_symbols [ Ast.prog_defs_names p1; Ast.prog_defs_names p2 ]
  in
  match A.link p1 p2 with
  | Error e -> Error ("linking failed: " ^ e)
  | Ok linked -> (
    let l1 = A.semantics ~symbols p1 in
    let l2 = A.semantics ~symbols p2 in
    let on_diag, check_overlap = overlap_guard () in
    let composed = Hcomp.compose ~on_diag l1 l2 in
    let l_linked = A.semantics ~symbols linked in
    match
      ( check_overlap (Runners.run_a_level composed ~fuel q),
        Runners.run_a_level l_linked ~fuel q )
    with
    | Ok o1, Ok o2 ->
      Ok
        {
          exp_composed = o1;
          exp_linked = o2;
          exp_agree = Runners.outcome_refines o1 o2 && Runners.outcome_refines o2 o1;
        }
    | Error e, _ | _, Error e -> Error e)

(** Corollary 3.9: compile each unit separately, link the Asm programs,
    and compare the source-level horizontal composition against the
    linked target program under the convention [C]. *)
let separate_compilation_experiment ?options ~fuel (units : C.program list)
    ~(query : Ident.t list -> Li.c_query option) :
    (Runners.c_outcome experiment, string) result =
  let symbols = shared_symbols (List.map Ast.prog_defs_names units) in
  match query symbols with
  | None -> Error "cannot build the query"
  | Some q -> (
    (* Source side: ⊕ of the Clight semantics of each unit. *)
    let srcs =
      Array.of_list
        (List.map (fun u -> Cfrontend.Clight.semantics ~symbols u) units)
    in
    let on_diag, check_overlap = overlap_guard () in
    let src = Hcomp.compose_all ~on_diag srcs in
    let* src_out = check_overlap (Ok (Runners.run_c_level src ~fuel q)) in
    (* Target side: compile each unit, link the Asm programs. *)
    let* asms =
      map_list
        (fun u ->
          let* arts = Compiler.compile ?options u in
          ok arts.Compiler.asm)
        units
    in
    let* linked =
      match asms with
      | [] -> error "no units"
      | a :: rest -> fold_list (fun acc a' -> A.link acc a') a rest
    in
    let tgt = A.semantics ~symbols linked in
    match Runners.run_a_level tgt ~fuel q with
    | Ok tgt_out ->
      Ok
        {
          exp_composed = src_out;
          exp_linked = tgt_out;
          exp_agree = Runners.outcome_refines src_out tgt_out;
        }
    | Error e -> Error e)
