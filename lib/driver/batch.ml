(** Batch compilation jobs for the supervised executor.

    [occo batch DIR] turns every C file in a directory into one
    {!Harness.Supervisor.job}. The job body runs in a forked worker, so
    a pass that segfaults, diverges or eats the heap on one input
    cannot take the batch down; its payload — a small JSON summary of
    the compiled artifacts — is what crosses back over the pipe.

    Graceful degradation reuses the partial-artifact machinery of
    {!Compiler.compile_diag}: when a job fails terminally at the full
    optimization level, its fallback recompiles at [-O0] (the
    optimizations are exactly the passes most likely to blow a budget),
    and if even that fails, the diagnostic carries how far the pipeline
    got ([Compiler.partial_progress]) so the report still says which
    artifacts exist. *)

module Diag = Support.Diagnostics
module Sup = Harness.Supervisor
module Json = Obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** The payload of a successful compile job. *)
let summary ~path ~optimized (arts : Compiler.artifacts) : Json.t =
  let asm = Sizes.asm arts.Compiler.asm in
  let rtl = Sizes.rtl arts.Compiler.rtl in
  Json.Obj
    [
      ("file", Json.Str (Filename.basename path));
      ("optimized", Json.Bool optimized);
      ("functions", Json.num_of_int asm.Sizes.functions);
      ("rtl_size", Json.num_of_int rtl.Sizes.size);
      ("asm_size", Json.num_of_int asm.Sizes.size);
    ]

let compile_once ~path ~options ~optimized () : (Json.t, Diag.t) result =
  match Compiler.compile_source_diag ~options (read_file path) with
  | Ok arts -> Ok (summary ~path ~optimized arts)
  | Error f ->
    (* Keep what the prefix of the pipeline did produce: the report
       can still say how far this input got. *)
    Error
      {
        f.Compiler.fail_diag with
        Diag.context =
          f.Compiler.fail_diag.Diag.context
          @ [
              ("file", Filename.basename path);
              ("progress", Compiler.partial_progress f.Compiler.fail_partial);
            ];
      }

(** One supervised job per C file. [inject_crash] is the testing hook
    behind [occo batch --inject-crash]: the named job SIGSEGVs its
    worker on the first attempt (and only the first), which is how the
    CI smoke test proves a crash is retried, not fatal. *)
let compile_job ?(inject_crash = false) ~optimize (path : string) :
    Json.t Sup.job =
  {
    Sup.job_id = Filename.basename path;
    job_class = "compile";
    job_run =
      (fun ~attempt ->
        if inject_crash && attempt = 0 then
          Unix.kill (Unix.getpid ()) Sys.sigsegv;
        compile_once ~path
          ~options:(if optimize then Compiler.all_optims else Compiler.no_optims)
          ~optimized:optimize ());
    job_degraded =
      (if optimize then
         Some (compile_once ~path ~options:Compiler.no_optims ~optimized:false)
       else None);
  }

(** The inputs of a batch: every [.c] file directly in [dir], sorted,
    so job order — and hence the journal — is stable across runs. *)
let inputs (dir : string) : string list =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".c")
  |> List.sort compare
  |> List.map (Filename.concat dir)
