(** Program-shape measurement for every IR of the pipeline.

    Each measure returns [(functions, size)] where [functions] counts
    internal function definitions and [size] counts statements (for the
    structured front-end/middle-end IRs: one per leaf or branching
    statement, sequencing is free) or instructions (for the CFG and
    linear back-end IRs). These feed the per-pass spans of
    [Compiler.compile], making size deltas per pass visible in a trace. *)

open Iface
module C = Cfrontend.Csyntax

type shape = { functions : int; size : int }

let measure (size_fn : 'f -> int) (p : ('f, 'v) Ast.program) : shape =
  List.fold_left
    (fun acc (_, d) ->
      match d with
      | Ast.Gfun (Ast.Internal f) ->
        { functions = acc.functions + 1; size = acc.size + size_fn f }
      | _ -> acc)
    { functions = 0; size = 0 }
    p.Ast.prog_defs

(* Statement counts: sequencing constructs are glue, not statements. *)

let rec clight_stmt (s : C.stmt) =
  match s with
  | C.Sskip -> 0
  | C.Ssequence (a, b) -> clight_stmt a + clight_stmt b
  | C.Sifthenelse (_, a, b) -> 1 + clight_stmt a + clight_stmt b
  | C.Sloop (a, b) -> 1 + clight_stmt a + clight_stmt b
  | C.Sassign _ | C.Sset _ | C.Scall _ | C.Sbreak | C.Scontinue | C.Sreturn _ -> 1

let rec cshm_stmt (s : Cfrontend.Csharpminor.stmt) =
  let open Cfrontend.Csharpminor in
  match s with
  | Sskip -> 0
  | Sseq (a, b) -> cshm_stmt a + cshm_stmt b
  | Sifthenelse (_, a, b) -> 1 + cshm_stmt a + cshm_stmt b
  | Sloop a | Sblock a -> 1 + cshm_stmt a
  | Sset _ | Sstore _ | Scall _ | Sexit _ | Sreturn _ -> 1

let rec cminor_stmt (s : Middle.Cminor.stmt) =
  let open Middle.Cminor in
  match s with
  | Sskip -> 0
  | Sseq (a, b) -> cminor_stmt a + cminor_stmt b
  | Sifthenelse (_, a, b) -> 1 + cminor_stmt a + cminor_stmt b
  | Sloop a | Sblock a -> 1 + cminor_stmt a
  | Sassign _ | Sstore _ | Scall _ | Stailcall _ | Sexit _ | Sreturn _ -> 1

let rec cminorsel_stmt (s : Middle.Cminorsel.stmt) =
  let open Middle.Cminorsel in
  match s with
  | Sskip -> 0
  | Sseq (a, b) -> cminorsel_stmt a + cminorsel_stmt b
  | Sifthenelse (_, a, b) -> 1 + cminorsel_stmt a + cminorsel_stmt b
  | Sloop a | Sblock a -> 1 + cminorsel_stmt a
  | Sassign _ | Sstore _ | Scall _ | Stailcall _ | Sexit _ | Sreturn _ -> 1

(* The measures, one per pipeline level. *)

let clight (p : C.program) = measure (fun f -> clight_stmt f.C.fn_body) p

let csharpminor (p : Cfrontend.Csharpminor.program) =
  measure (fun f -> cshm_stmt f.Cfrontend.Csharpminor.fn_body) p

let cminor (p : Middle.Cminor.program) =
  measure (fun f -> cminor_stmt f.Middle.Cminor.fn_body) p

let cminorsel (p : Middle.Cminorsel.program) =
  measure (fun f -> cminorsel_stmt f.Middle.Cminorsel.fn_body) p

let rtl (p : Middle.Rtl.program) =
  measure (fun f -> Middle.Rtl.Regmap.cardinal f.Middle.Rtl.fn_code) p

let ltl (p : Backend.Ltl.program) =
  measure (fun f -> Backend.Ltl.Nodemap.cardinal f.Backend.Ltl.fn_code) p

let linear (p : Backend.Linear.program) =
  measure (fun f -> List.length f.Backend.Linear.fn_code) p

let mach (p : Backend.Mach.program) =
  measure (fun f -> Array.length f.Backend.Mach.fn_code) p

let asm (p : Backend.Asm.program) =
  measure (fun f -> Array.length f.Backend.Asm.fn_code) p
