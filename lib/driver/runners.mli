(** Running each intermediate language on C-level queries: the executable
    use of the simulation conventions. A source-level [C] query is
    marshaled down through [CL], [LM] and [MA] to activate a lower-level
    semantics, and the answer is marshaled back up. *)

open Support
open Core
open Iface
open Iface.Li

(** [CA = CL · LM · MA : C ⇔ A] — the structural content of the calling
    convention [C] of Theorem 3.8 (see [Iface.Callconv.cc_ca]). *)
val cc_ca : (Iface.Callconv.ca_world, c_query, a_query, c_reply, a_reply) Simconv.t

(** [CM = CL · LM : C ⇔ M]. *)
val cc_cm :
  ( (Memory.Mtypes.signature * Target.Locations.Locset.t) * Iface.Callconv.lm_world,
    c_query, m_query, c_reply, m_reply ) Simconv.t

(** Outcome of a lower-level run, read back as a C-level reply. *)
type c_outcome = (c_reply, c_query) Smallstep.outcome

(** The conventional query invoking a function of a program: resolves the
    symbol, builds the initial memory. *)
val main_query :
  symbols:Ident.t list ->
  defs:('f, 'v) Ast.program ->
  ?name:string ->
  ?args:Memory.Values.value list ->
  ?sg:Memory.Mtypes.signature ->
  unit ->
  c_query option

val run_c_level :
  ('s, c_query, c_reply, c_query, 'ro) Smallstep.lts ->
  fuel:int ->
  ?oracle:(c_query -> 'ro option) ->
  ?check_reply:(c_query -> 'ro -> (unit, string) result) ->
  c_query ->
  c_outcome

val run_l_level :
  ('s, l_query, l_reply, 'qo, 'ro) Smallstep.lts ->
  fuel:int ->
  ?oracle:('qo -> 'ro option) ->
  c_query ->
  (c_outcome, string) result

val run_m_level :
  ('s, m_query, m_reply, 'qo, 'ro) Smallstep.lts ->
  fuel:int ->
  ?oracle:('qo -> 'ro option) ->
  c_query ->
  (c_outcome, string) result

(** [check_reply] validates A-level oracle answers against the A-side of
    the convention; violations surface as [Env_violation], a diagnosed
    outcome. *)
val run_a_level :
  ('s, a_query, a_reply, 'qo, 'ro) Smallstep.lts ->
  fuel:int ->
  ?oracle:('qo -> 'ro option) ->
  ?check_reply:('qo -> 'ro -> (unit, string) result) ->
  c_query ->
  (c_outcome, string) result

(** The refinement used by the differential harness: traces agree and the
    target's answer refines the source's ([≤v]); source UB licenses any
    target behavior; twin fuel exhaustion is inconclusive (accepted). *)
val outcome_refines : c_outcome -> c_outcome -> bool

val pp_c_outcome : Format.formatter -> c_outcome -> unit
