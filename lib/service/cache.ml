(** Content-addressed on-disk artifact cache for the compile service.

    One entry per [(source hash, pass, options)] triple, at pass
    granularity: the full-pipeline result (a portable JSON summary, the
    reply payload of a warm hit) and the optimized RTL program (the
    resume point for {!Driver.Compiler.backend_from_rtl}, so a request
    whose downstream artifacts were lost re-derives only the backend).

    Robustness is the design center, in this order:

    - {e atomic writes}: an entry is written to a temp file in the
      store directory, [fsync]'d, then [rename]'d into place — a
      reader never sees a torn entry, and a crash mid-write leaves at
      worst an orphan temp file (scrubbed by the next {!open_store});
    - {e per-entry checksums}: the first line of an entry is a JSON
      header carrying an MD5 of the payload; {!get} re-hashes the
      payload on every read ({e verify-on-read}) and a mismatch —
      bit-rot, truncation, a hostile edit — {e quarantines} the entry
      (moved aside, never deleted, so it can be triaged) and reports
      [`Corrupt]; the caller re-derives and re-stores;
    - {e epoch scoping for program payloads}: {!Support.Ident} interns
      names positionally into a process-global table, so a marshaled IR
      program is only guaranteed meaningful to readers whose intern
      history extends the writer's — i.e. workers forked from the same
      daemon incarnation (the daemon itself interns nothing after
      startup, so every fork shares one frozen prefix). Program entries
      are therefore stamped with the store's {e epoch} (fresh per
      {!open_store}) and reads of marshaled payloads reject other
      epochs as [`Stale]. The JSON summary is process-independent and
      survives restarts — which is what makes a restarted daemon warm.

    Every read outcome lands in the [serve.cache.*] counters. *)

module Json = Obs.Json

type t = {
  dir : string;
  epoch : string;  (** fresh per [open_store]: scopes program payloads *)
}

(** The quarantine corner of the store: corrupt entries are moved here
    (with a unique suffix), never silently deleted. *)
let quarantine_dir (c : t) = Filename.concat c.dir "quarantine"

let key_of ~(source : string) : string = Digest.to_hex (Digest.string source)

let entry_name ~key ~pass ~opts = Printf.sprintf "%s.%s.%s.entry" key pass opts

let entry_path (c : t) ~key ~pass ~opts =
  Filename.concat c.dir (entry_name ~key ~pass ~opts)

let header ~pass ~opts ~epoch ~payload : Json.t =
  Json.Obj
    [
      ("pass", Json.Str pass);
      ("opts", Json.Str opts);
      ("epoch", Json.Str epoch);
      ("checksum", Json.Str (Digest.to_hex (Digest.string payload)));
      ("bytes", Json.num_of_int (String.length payload));
    ]

let mkdir_p dir =
  if not (Sys.file_exists dir) then (
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

(* ------------------------------------------------------------------ *)
(* Opening and the rebuild scan                                       *)
(* ------------------------------------------------------------------ *)

(** Open (creating if needed) the store at [dir] and rebuild its index
    by scanning the directory: orphan temp files from a crashed writer
    are scrubbed, entries whose header line does not even parse are
    quarantined immediately, and the entry count lands in the
    [serve.cache.entries] gauge. [epoch] defaults to a token unique to
    this process incarnation. *)
let open_store ?epoch (dir : string) : t =
  let epoch =
    match epoch with
    | Some e -> e
    | None ->
      Printf.sprintf "%d.%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6)
  in
  mkdir_p dir;
  mkdir_p (Filename.concat dir "quarantine");
  let c = { dir; epoch } in
  let entries = ref 0 in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Filename.check_suffix name ".tmp" then (
        try Sys.remove path with Sys_error _ -> ())
      else if Filename.check_suffix name ".entry" then begin
        let head_ok =
          match open_in_bin path with
          | exception Sys_error _ -> false
          | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                match input_line ic with
                | exception End_of_file -> false
                | line -> Json.parse_opt line <> None)
        in
        if head_ok then incr entries
        else begin
          (* An unreadable header cannot even be checksummed: move it
             aside now rather than failing every future read. *)
          let dst =
            Filename.concat (quarantine_dir c)
              (Printf.sprintf "%s.%.0f" name (Unix.gettimeofday () *. 1e6))
          in
          (try Unix.rename path dst with Unix.Unix_error _ -> ());
          Obs.Metrics.incr_counter "serve.cache.corrupt";
          Format.eprintf
            "occo serve: quarantined corrupt cache entry %s (unparseable \
             header)@."
            name
        end
      end)
    (try Sys.readdir dir with Sys_error _ -> [||]);
  Obs.Metrics.set_gauge "serve.cache.entries" (float_of_int !entries);
  c

(* ------------------------------------------------------------------ *)
(* Writing (atomic: tmp + fsync + rename)                             *)
(* ------------------------------------------------------------------ *)

let write_all fd (s : string) =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(** Store [payload] under [(key, pass, opts)]. The write is atomic and
    durable before [put] returns: temp file in the store directory,
    [fsync], [rename] over the final name (and the directory itself is
    fsync'd, so the rename survives a power cut too). *)
let put (c : t) ~key ~pass ~opts ~(payload : string) : unit =
  let final = entry_path c ~key ~pass ~opts in
  let tmp =
    Printf.sprintf "%s.%d.%s.tmp" final (Unix.getpid ()) c.epoch
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd
        (Json.to_string (header ~pass ~opts ~epoch:c.epoch ~payload) ^ "\n");
      write_all fd payload;
      Unix.fsync fd);
  Unix.rename tmp final;
  (match Unix.openfile c.dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ());
  Obs.Metrics.incr_counter "serve.cache.writes"

(* ------------------------------------------------------------------ *)
(* Reading (verify-on-read; quarantine on corruption)                 *)
(* ------------------------------------------------------------------ *)

type lookup =
  [ `Hit of string  (** checksum verified; here is the payload *)
  | `Miss  (** no such entry *)
  | `Stale  (** a program entry from another epoch: unusable, not corrupt *)
  | `Corrupt  (** checksum mismatch; the entry was quarantined *) ]

let quarantine (c : t) ~path ~why : unit =
  let dst =
    Filename.concat (quarantine_dir c)
      (Printf.sprintf "%s.%.0f" (Filename.basename path)
         (Unix.gettimeofday () *. 1e6))
  in
  (try Unix.rename path dst with Unix.Unix_error _ -> ());
  Obs.Metrics.incr_counter "serve.cache.corrupt";
  Obs.Interaction_log.record
    (Obs.Interaction_log.Service
       (Printf.sprintf "cache: quarantined %s (%s)" (Filename.basename path)
          why));
  (* The greppable quarantine diagnostic the CI smoke asserts on. *)
  Format.eprintf "occo serve: quarantined corrupt cache entry %s (%s)@."
    (Filename.basename path) why

(** Look up [(key, pass, opts)]. [require_epoch] (default: the payload
    is marshaled, i.e. [pass <> "summary"]) rejects entries written by
    another store incarnation as [`Stale]. A checksum mismatch
    quarantines the entry and returns [`Corrupt] — a corrupt entry is
    never served and never seen twice. *)
let get ?require_epoch (c : t) ~key ~pass ~opts : lookup =
  let require_epoch =
    match require_epoch with Some b -> b | None -> pass <> "summary"
  in
  let path = entry_path c ~key ~pass ~opts in
  match open_in_bin path with
  | exception Sys_error _ -> `Miss
  | ic -> (
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | head ->
            let rest_len = in_channel_length ic - pos_in ic in
            let payload = really_input_string ic rest_len in
            Some (head, payload))
    in
    match contents with
    | None ->
      quarantine c ~path ~why:"empty entry";
      `Corrupt
    | Some (head, payload) -> (
      match Json.parse_opt head with
      | None ->
        quarantine c ~path ~why:"unparseable header";
        `Corrupt
      | Some h -> (
        let field k = Option.bind (Json.member k h) Json.to_str in
        match field "checksum" with
        | None ->
          quarantine c ~path ~why:"header carries no checksum";
          `Corrupt
        | Some sum ->
          if Digest.to_hex (Digest.string payload) <> sum then begin
            quarantine c ~path ~why:"checksum mismatch";
            `Corrupt
          end
          else if require_epoch && field "epoch" <> Some c.epoch then `Stale
          else `Hit payload)))

(* ------------------------------------------------------------------ *)
(* Introspection and fault injection                                  *)
(* ------------------------------------------------------------------ *)

let entry_count (c : t) : int =
  Array.fold_left
    (fun n name -> if Filename.check_suffix name ".entry" then n + 1 else n)
    0
    (try Sys.readdir c.dir with Sys_error _ -> [||])

let quarantined_count (c : t) : int =
  Array.length (try Sys.readdir (quarantine_dir c) with Sys_error _ -> [||])

(** Chaos hook ([occo serve --inject-corrupt], also used by tests): flip
    one payload byte of the entry in place, so the next read's
    verify-on-read path must fire. Returns false if the entry does not
    exist. *)
let corrupt_for_test (c : t) ~key ~pass ~opts : bool =
  let path = entry_path c ~key ~pass ~opts in
  match Unix.openfile path [ Unix.O_RDWR ] 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size = 0 then false
        else begin
          (* Flip the last byte: always inside the payload region. *)
          ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
          let b = Bytes.create 1 in
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
          ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1);
          true
        end)
