(** The compile service (ISSUE 8 tentpole): a long-running daemon that
    accepts compile requests over a Unix-domain socket, schedules them
    onto fork-isolated workers, and memoizes results in a
    content-addressed on-disk cache.

    The pieces, bottom-up:

    - {!Cache}: the content-addressed artifact store — atomic writes
      (tmp + fsync + rename), per-entry checksums, verify-on-read with
      quarantine, epoch scoping for marshaled program payloads;
    - {!Protocol}: the line-JSON wire protocol (requests, typed
      diagnostic replies) and its tolerant parser;
    - {!Engine}: one request compiled through the cache at pass
      granularity (summary hit → RTL resume → full pipeline);
    - {!Serve}: the daemon loop itself — bounded queue, load-shedding,
      degraded [-O0] path, poison-job quarantine, end-to-end deadlines,
      circuit breaker, SIGTERM drain, crash-safe [--resume] — and the
      line-protocol client ([occo request]). *)

module Cache = Cache
module Protocol = Protocol
module Engine = Engine
module Serve = Serve
