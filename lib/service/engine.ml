(** The compile engine behind the service: one request, compiled
    through the content-addressed cache at pass granularity.

    Lookup order, cheapest first:

    + {e summary hit} — the portable JSON summary of a previous full
      compile. Nothing runs; this is the warm path (and the only one
      the daemon may take in-process, since it touches no IR and hence
      no {!Support.Ident} interning).
    + {e rtl hit} — the optimized RTL program of a previous compile in
      this store epoch. Only the backend re-runs
      ({!Driver.Compiler.backend_from_rtl}, register-allocation
      validator included), and the summary is re-stored.
    + {e miss} — the full pipeline runs; both the RTL program and the
      summary are stored for the next request.

    Corrupt entries surface as [`Corrupt] from {!Cache.get}, which has
    already quarantined them — the engine just falls through to the
    next-cheapest derivation, so corruption costs one recompile, never
    a wrong answer. *)

module Json = Obs.Json
module Diag = Support.Diagnostics
module Compiler = Driver.Compiler
module Sizes = Driver.Sizes

(** The options component of a cache key. Requests only choose the
    optimization level, so two tags suffice; anything finer-grained
    later (per-pass toggles) extends this string. *)
let options_tag ~(optimize : bool) : string = if optimize then "O2" else "O0"

(** How the request was satisfied; [er_summary] is the reply payload. *)
type result = {
  er_summary : Json.t;
  er_cache : string;  (** ["hit"] (summary), ["rtl"] (backend only), ["miss"] *)
  er_optimized : bool;
}

let summary_json ~key ~optimize ~(rtl : Middle.Rtl.program)
    ~(asm : Backend.Asm.program) : Json.t =
  let r = Sizes.rtl rtl and a = Sizes.asm asm in
  Json.Obj
    [
      ("key", Json.Str key);
      ("optimized", Json.Bool optimize);
      ("functions", Json.num_of_int a.Sizes.functions);
      ("rtl_size", Json.num_of_int r.Sizes.size);
      ("asm_size", Json.num_of_int a.Sizes.size);
    ]

let put_summary cache ~key ~opts (j : Json.t) =
  Cache.put cache ~key ~pass:"summary" ~opts ~payload:(Json.to_string j)

let put_rtl cache ~key ~opts (rtl : Middle.Rtl.program) =
  Cache.put cache ~key ~pass:"rtl" ~opts ~payload:(Marshal.to_string rtl [])

(** The summary-only probe: safe to run in the daemon process itself
    (pure JSON, no interning). [None] means "not warm — schedule it". *)
let lookup_summary cache ~(source : string) ~(optimize : bool) : Json.t option
    =
  let key = Cache.key_of ~source in
  let opts = options_tag ~optimize in
  match Cache.get cache ~key ~pass:"summary" ~opts with
  | `Hit payload -> Json.parse_opt payload
  | `Miss | `Stale -> None
  | `Corrupt ->
    (* Already quarantined by the cache; the caller re-derives. *)
    None

(** Compile [source], going through the cache at every pass boundary.
    Runs inside a worker (it compiles, hence interns); results are
    plain data, marshalable back over the result pipe. *)
let compile_cached (cache : Cache.t) ~(source : string) ~(optimize : bool)
    ?budget_us () : (result, Diag.t) Stdlib.result =
  let key = Cache.key_of ~source in
  let opts = options_tag ~optimize in
  let options = if optimize then Compiler.all_optims else Compiler.no_optims in
  match Cache.get cache ~key ~pass:"summary" ~opts with
  | `Hit payload when Json.parse_opt payload <> None ->
    Obs.Metrics.incr_counter "serve.cache.hit";
    Ok
      {
        er_summary = Option.get (Json.parse_opt payload);
        er_cache = "hit";
        er_optimized = optimize;
      }
  | `Hit _ | `Miss | `Stale | `Corrupt -> (
    (* Try to resume from the cached optimized RTL: only the backend
       (with its validators) re-runs. *)
    let from_rtl =
      match Cache.get cache ~key ~pass:"rtl" ~opts with
      | `Hit payload -> (
        match (Marshal.from_string payload 0 : Middle.Rtl.program) with
        | rtl -> (
          match Compiler.backend_from_rtl rtl with
          | Ok b -> Some (rtl, b.Compiler.b_asm)
          | Error _ -> None)
        | exception _ -> None)
      | `Miss | `Stale | `Corrupt -> None
    in
    match from_rtl with
    | Some (rtl, asm) ->
      Obs.Metrics.incr_counter "serve.cache.rtl_hit";
      let s = summary_json ~key ~optimize ~rtl ~asm in
      put_summary cache ~key ~opts s;
      Ok { er_summary = s; er_cache = "rtl"; er_optimized = optimize }
    | None -> (
      Obs.Metrics.incr_counter "serve.cache.miss";
      match Compiler.compile_source_diag ~options ?budget_us source with
      | Ok arts ->
        let rtl = arts.Compiler.rtl and asm = arts.Compiler.asm in
        let s = summary_json ~key ~optimize ~rtl ~asm in
        put_rtl cache ~key ~opts rtl;
        put_summary cache ~key ~opts s;
        Ok { er_summary = s; er_cache = "miss"; er_optimized = optimize }
      | Error f -> Error f.Compiler.fail_diag))
