(** The compile service's wire protocol: one JSON object per line, in
    both directions, over a Unix-domain stream socket.

    A request line looks like

    {v
    {"id":"r1","op":"compile","source":"int main(void){return 0;}",
     "optimize":true,"deadline_ms":5000}
    v}

    and every request — accepted, shed, failed or poisoned — gets
    exactly one reply line carrying its [id], a [status], and on
    failure a {e typed} diagnostic (phase, kind, message), so clients
    can dispatch on [kind] ("overloaded", "poisoned", ...) instead of
    parsing prose. Unknown fields are ignored on both sides; a request
    that does not parse at all still gets a reply (with id ["?"]), so a
    confused client is never left hanging on a read. *)

module Json = Obs.Json
module Diag = Support.Diagnostics

type op =
  | Compile  (** compile [rq_source]; the normal case *)
  | Ping  (** liveness probe: replies ["ok"] without touching the queue *)
  | Stats  (** reply carries the current [serve.*] metrics snapshot *)
  | Shutdown  (** ask the daemon to drain and exit (same path as SIGTERM) *)

type request = {
  rq_id : string;
  rq_op : op;
  rq_source : string;  (** C source text (op = [Compile]) *)
  rq_optimize : bool;  (** [false] requests the [-O0] pipeline *)
  rq_deadline_ms : int option;
      (** end-to-end deadline, queue wait included, from receipt *)
}

let op_name = function
  | Compile -> "compile"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "compile" -> Some Compile
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

let request_to_json (r : request) : Json.t =
  Json.Obj
    ([
       ("id", Json.Str r.rq_id);
       ("op", Json.Str (op_name r.rq_op));
       ("source", Json.Str r.rq_source);
       ("optimize", Json.Bool r.rq_optimize);
     ]
    @
    match r.rq_deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.num_of_int ms) ]
    | None -> [])

(** Parse a request line. Tolerant: [op] defaults to [compile],
    [optimize] to [true]; only a line that is not a JSON object at all
    is rejected. *)
let request_of_line (line : string) : (request, string) result =
  match Json.parse_opt line with
  | None -> Error "request is not a JSON object"
  | Some j -> (
    let str k = Option.bind (Json.member k j) Json.to_str in
    let op =
      match str "op" with
      | None -> Some Compile
      | Some name -> op_of_name name
    in
    match op with
    | None ->
      Error (Printf.sprintf "unknown op %S" (Option.value ~default:"" (str "op")))
    | Some op ->
      Ok
        {
          rq_id = Option.value ~default:"?" (str "id");
          rq_op = op;
          rq_source = Option.value ~default:"" (str "source");
          rq_optimize =
            (match Json.member "optimize" j with
            | Some (Json.Bool b) -> b
            | _ -> true);
          rq_deadline_ms =
            Option.map int_of_float
              (Option.bind (Json.member "deadline_ms" j) Json.to_num);
        })

(** {1 Replies} *)

(** Build a reply line. [status] is one of ["ok"], ["degraded"] (the
    [-O0] fallback compiled it), ["failed"], ["shed"], ["poisoned"],
    ["pong"], ["stats"], ["draining"]. Failure replies carry the typed
    diagnostic under ["diagnostic"]. *)
let reply ?cache ?(degraded = false) ?elapsed_us ?summary ?diag ~id ~status ()
    : Json.t =
  Json.Obj
    ([ ("id", Json.Str id); ("status", Json.Str status) ]
    @ (match cache with Some c -> [ ("cache", Json.Str c) ] | None -> [])
    @ (if degraded then [ ("degraded", Json.Bool true) ] else [])
    @ (match elapsed_us with
      | Some us -> [ ("elapsed_us", Json.Num us) ]
      | None -> [])
    @ (match summary with Some s -> [ ("summary", s) ] | None -> [])
    @
    match diag with
    | Some (d : Diag.t) ->
      [
        ( "diagnostic",
          Json.Obj
            [
              ("phase", Json.Str (Diag.phase_name d.Diag.phase));
              ("kind", Json.Str (Diag.kind_name d.Diag.kind));
              ("message", Json.Str d.Diag.message);
            ] );
      ]
    | None -> [])

(** Read one reply's [status] (and [cache] mode, diagnostic kind) back
    out — the client side of the protocol. *)
let reply_field (j : Json.t) (k : string) : string option =
  Option.bind (Json.member k j) Json.to_str

let reply_status (j : Json.t) : string option = reply_field j "status"

let reply_diag_kind (j : Json.t) : string option =
  Option.bind (Json.member "diagnostic" j) (fun d ->
      Option.bind (Json.member "kind" d) Json.to_str)
