(** The compile service: a long-running supervisor loop accepting
    compile requests over a Unix-domain socket ([occo serve]).

    One single-threaded [select] loop multiplexes three kinds of file
    descriptors — the listening socket, the client connections (one
    line-JSON request per line, {!Protocol}), and the result pipes of
    the forked {!Harness.Worker} processes actually compiling — so the
    daemon itself never blocks on any one of them. The daemon process
    {e never compiles}: compilation interns identifiers
    ({!Support.Ident} is positional and process-global), and keeping
    the parent's intern table frozen after startup is what makes every
    forked worker see the same table and hence makes marshaled RTL
    cache entries meaningful within a store epoch ({!Cache}). The only
    cache access the parent allows itself is the JSON summary probe —
    the warm fast path that answers a repeat request without forking
    at all.

    Failure modes, each first-class:

    - {e corrupt cache entry}: quarantined by verify-on-read, then the
      request just falls through to a worker and re-derives
      ([serve.cache.corrupt]); a corrupt entry is never served;
    - {e poison job}: a request whose workers crash [s_poison_threshold]
      times is quarantined with a [Poisoned] diagnostic, journaled, and
      never retried into a crash loop — repeats are rejected instantly,
      across restarts ([serve.poisoned]);
    - {e overload}: the queue is bounded; beyond the watermark new work
      degrades to the [-O0] fast path, beyond the cap it is shed with
      [Overloaded] ([serve.shed.overload]);
    - {e deadlines}: a request's [deadline_ms] is enforced end-to-end —
      while queued, and as the worker's wall-clock watchdog
      ([serve.deadline_exceeded]);
    - {e breaker}: consecutive worker failures open the compile class's
      circuit breaker; shed requests fail fast with [Circuit_open]
      ([serve.shed.breaker]);
    - {e SIGTERM}: drain — stop accepting, finish queued and in-flight
      work, compact the journal, remove the socket, exit 0;
    - {e kill -9}: the journal (fsync'd line-JSON) and the cache
      (atomic renames) survive; [--resume] reloads the poison set,
      compacts the journal, and the cache-index rebuild scan in
      {!Cache.open_store} scrubs orphan temp files.

    Chaos mode ([--inject-crash], [--inject-hang], [--inject-corrupt])
    makes workers misbehave on purpose so CI can prove each of those
    paths survives contact with reality. *)

module Json = Obs.Json
module Diag = Support.Diagnostics
module Worker = Harness.Worker
module Breaker = Harness.Breaker
module Backoff = Harness.Backoff
module Checkpoint = Harness.Checkpoint

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type chaos = {
  ch_crash : bool;  (** each compile's first attempt SIGSEGVs itself *)
  ch_crash_forever : bool;  (** ... and so does every retry (→ poison) *)
  ch_hang : bool;  (** one attempt spins until the watchdog kills it *)
  ch_corrupt : bool;  (** flip a byte in each freshly written summary *)
}

let no_chaos =
  { ch_crash = false; ch_crash_forever = false; ch_hang = false;
    ch_corrupt = false }

type config = {
  s_socket : string;  (** Unix-domain socket path *)
  s_cache_dir : string;
  s_jobs : int;  (** max concurrent compile workers *)
  s_retries : int;  (** extra attempts for transient failures *)
  s_timeout_us : float option;  (** per-attempt wall-clock cap *)
  s_memlimit_bytes : int option;
  s_queue_cap : int;  (** bound on queued requests; beyond: shed *)
  s_degrade_watermark : int;  (** queue depth that forces [-O0] *)
  s_poison_threshold : int;  (** worker crashes before quarantine *)
  s_breaker_threshold : int;
  s_breaker_cooldown_us : float;
  s_journal : string option;
  s_resume : bool;
  s_seed : int;
  s_chaos : chaos;
}

let default_config =
  {
    s_socket = "occo.sock";
    s_cache_dir = ".occo-cache";
    s_jobs = 2;
    s_retries = 2;
    s_timeout_us = Some 60e6;
    s_memlimit_bytes = None;
    s_queue_cap = 64;
    s_degrade_watermark = 32;
    s_poison_threshold = 3;
    s_breaker_threshold = 10;
    s_breaker_cooldown_us = 2e6;
    s_journal = None;
    s_resume = false;
    s_seed = 0;
    s_chaos = no_chaos;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;  (** bytes read but not yet forming a full line *)
  mutable c_closed : bool;
}

let close_conn (c : conn) =
  if not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(** Write one reply line; a vanished client (EPIPE, reset) is the
    client's problem, not the daemon's. *)
let send_line (c : conn) (j : Json.t) =
  if not c.c_closed then begin
    let s = Json.to_string j ^ "\n" in
    let b = Bytes.of_string s in
    match
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write c.c_fd b off (Bytes.length b - off))
      in
      go 0
    with
    | () -> Obs.Metrics.incr_counter "serve.replies"
    | exception Unix.Unix_error _ ->
      Obs.Metrics.incr_counter "serve.replies_dropped";
      close_conn c
  end

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                  *)
(* ------------------------------------------------------------------ *)

type pending = {
  q_req : Protocol.request;
  q_key : string;  (** content hash of the source *)
  q_opts : string;  (** options tag (after any degrade decision) *)
  q_conn : conn;
  q_received_us : float;
  q_deadline_us : float;  (** absolute; [infinity] without a deadline *)
  q_attempt : int;
  q_crashes : int;  (** worker crashes so far — the poison counter *)
  q_ready_us : float;  (** backoff: not before this instant *)
  q_degraded : bool;  (** forced onto the [-O0] path *)
  q_rng : Random.State.t;
}

type running = { r_handle : Worker.handle; r_pending : pending }

(** The journal id of a request: stable across restarts (content hash,
    not arrival order), so the poison set survives [--resume]. *)
let journal_id (p : pending) = Printf.sprintf "req:%s:%s" p.q_key p.q_opts

(* ------------------------------------------------------------------ *)
(* The daemon                                                         *)
(* ------------------------------------------------------------------ *)

(** Run the service until it drains (SIGTERM, SIGINT or a [shutdown]
    request). Returns the number of requests served. Never raises for
    request-level trouble; socket-setup failures do raise. *)
let serve (cfg : config) : int =
  let cache = Cache.open_store cfg.s_cache_dir in
  (* Resume: the poison set is whatever the journal last said was
     poisoned; then compact, so the journal restarts from its
     snapshot rather than growing without bound across restarts. *)
  let poisoned : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (match cfg.s_journal with
  | Some path when cfg.s_resume ->
    let last : (string, string) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun e -> Hashtbl.replace last e.Checkpoint.e_id e.Checkpoint.e_status)
      (Checkpoint.load path);
    Hashtbl.iter
      (fun id st -> if st = "poisoned" then Hashtbl.replace poisoned id ())
      last;
    let kept, dropped = Checkpoint.compact path in
    Obs.Interaction_log.record
      (Obs.Interaction_log.Service
         (Printf.sprintf "journal: compacted on resume (%d kept, %d dropped)"
            kept dropped))
  | _ -> ());
  let journal =
    Option.map
      (fun path -> Checkpoint.open_journal ~truncate:(not cfg.s_resume) path)
      cfg.s_journal
  in
  let journal_append (p : pending) ~status ~now =
    Option.iter
      (fun w ->
        Checkpoint.append w
          {
            Checkpoint.e_id = journal_id p;
            e_class = "compile";
            e_status = status;
            e_attempts = p.q_attempt + 1;
            e_elapsed_us = now -. p.q_received_us;
          })
      journal
  in
  (* The listening socket. A stale socket file from a crashed daemon
     would make bind fail; remove it first — flock-style exclusivity is
     the operator's concern, not this loop's. *)
  (try Unix.unlink cfg.s_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.s_socket);
  Unix.listen listen_fd 16;
  (* Drain on SIGTERM/SIGINT: a flag the loop polls, not an exception —
     a signal must never tear the loop mid-reply. SIGPIPE is a write to
     a vanished client; send_line already handles the EPIPE. *)
  let draining = ref false in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> draining := true))
  and old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> draining := true))
  and old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let breaker =
    Breaker.create ~threshold:cfg.s_breaker_threshold
      ~cooldown_us:cfg.s_breaker_cooldown_us "serve.compile"
  in
  let conns : conn list ref = ref [] in
  let queue : pending list ref = ref [] in
  let running : running list ref = ref [] in
  let served = ref 0 in
  let t_start = Obs.now_us () in
  let reply_error (p : pending) ~status ~(diag : Diag.t) ~now =
    journal_append p ~status ~now;
    send_line p.q_conn
      (Protocol.reply ~id:p.q_req.Protocol.rq_id ~status ~diag
         ~elapsed_us:(now -. p.q_received_us) ())
  in
  let reply_result (p : pending) (r : Engine.result) ~now =
    incr served;
    let status = if p.q_degraded then "degraded" else "ok" in
    journal_append p ~status ~now;
    send_line p.q_conn
      (Protocol.reply ~id:p.q_req.Protocol.rq_id ~status
         ~cache:r.Engine.er_cache ~degraded:p.q_degraded
         ~elapsed_us:(now -. p.q_received_us) ~summary:r.Engine.er_summary ());
    (* Chaos: corrupt the summary this miss just wrote, so the next
       identical request must take the quarantine-and-re-derive path. *)
    if cfg.s_chaos.ch_corrupt && r.Engine.er_cache = "miss" then
      ignore
        (Cache.corrupt_for_test cache ~key:p.q_key ~pass:"summary"
           ~opts:p.q_opts)
  in
  (* What runs in the forked worker. Chaos injections happen in the
     child — the daemon only ever observes their exit statuses, exactly
     as it would observe a real crash or hang. *)
  let job_thunk (p : pending) () : (Engine.result, Diag.t) result =
    let ch = cfg.s_chaos in
    if ch.ch_crash && (p.q_attempt = 0 || ch.ch_crash_forever) then
      Unix.kill (Unix.getpid ()) Sys.sigsegv;
    if ch.ch_hang && p.q_attempt = (if ch.ch_crash then 1 else 0) then
      while true do
        ignore (Sys.opaque_identity 0)
      done;
    Engine.compile_cached cache ~source:p.q_req.Protocol.rq_source
      ~optimize:(p.q_req.Protocol.rq_optimize && not p.q_degraded)
      ()
  in
  let launch ~now (p : pending) =
    if not (Breaker.allow breaker ~now_us:now) then begin
      Obs.Metrics.incr_counter "serve.shed.breaker";
      reply_error p ~status:"shed" ~now
        ~diag:
          (Diag.make ~phase:Diag.Service ~kind:Diag.Circuit_open
             "request shed: the compile circuit breaker is open")
    end
    else begin
      let timeout_us =
        (* End-to-end deadline: the worker may use at most what is left
           of it, and at most the per-attempt cap. *)
        let remaining =
          if p.q_deadline_us = infinity then None
          else Some (Float.max 1e4 (p.q_deadline_us -. now))
        in
        match (cfg.s_timeout_us, remaining) with
        | Some a, Some b -> Some (Float.min a b)
        | (Some _ as a), None -> a
        | None, r -> r
      in
      let h =
        Worker.spawn ?timeout_us ?memlimit_bytes:cfg.s_memlimit_bytes
          ~label:("serve:" ^ String.sub p.q_key 0 8)
          ~attrs:
            [
              ("attempt", Json.num_of_int p.q_attempt);
              ("degraded", Json.Bool p.q_degraded);
            ]
          (job_thunk p)
      in
      running := { r_handle = h; r_pending = p } :: !running
    end
  in
  (* Decide what a worker verdict leads to: reply, retry, degrade,
     poison. *)
  let conclude ~now (p : pending) (v : Engine.result Worker.verdict) =
    Breaker.record breaker ~now_us:now
      ~ok:(match v with Worker.Returned (Ok _) -> true | _ -> false);
    (* [retry] requeues exactly the pending it is given — the caller
       threads accumulated state (the crash counter) through it. *)
    let retry ?degraded (p : pending) =
      let degraded = Option.value degraded ~default:p.q_degraded in
      let delay =
        Backoff.delay_us Backoff.default ~rng:p.q_rng
          ~attempt:(p.q_attempt + 1)
      in
      Obs.Metrics.incr_counter "serve.retries";
      queue :=
        !queue
        @ [
            {
              p with
              q_attempt = p.q_attempt + 1;
              q_ready_us = now +. delay;
              q_degraded = degraded;
              q_opts =
                (if degraded then Engine.options_tag ~optimize:false
                 else p.q_opts);
            };
          ]
    in
    match v with
    | Worker.Returned (Ok r) -> reply_result p r ~now
    | Worker.Returned (Error d) ->
      if Diag.is_transient d.Diag.kind && p.q_attempt < cfg.s_retries then
        retry p
      else reply_error p ~status:"failed" ~diag:d ~now
    | Worker.Crashed _ | Worker.Pipe_write_failed | Worker.Oom -> (
      let crashes = p.q_crashes + 1 in
      Obs.Metrics.incr_counter "serve.crashes";
      let p = { p with q_crashes = crashes } in
      if crashes >= cfg.s_poison_threshold then begin
        (* Poison: quarantine the request itself. Journaled, so the
           quarantine survives a restart; repeats are rejected at
           admission without ever reaching a worker again. *)
        Hashtbl.replace poisoned (journal_id p) ();
        Obs.Metrics.incr_counter "serve.poisoned";
        Format.eprintf
          "occo serve: poisoned request %s after %d worker crashes@."
          p.q_key crashes;
        reply_error p ~status:"poisoned" ~now
          ~diag:
            (Diag.make ~phase:Diag.Service ~kind:Diag.Poisoned
               ~context:[ ("crashes", string_of_int crashes) ]
               "request crashed %d workers and was quarantined" crashes)
      end
      else if p.q_attempt < cfg.s_retries then retry p
      else if not p.q_degraded then begin
        (* Retries exhausted: one last lifeline at -O0. *)
        Obs.Metrics.incr_counter "serve.degraded";
        retry ~degraded:true p
      end
      else
        reply_error p ~status:"crashed" ~now
          ~diag:
            (Diag.make ~phase:Diag.Service ~kind:Diag.Job_crashed
               "worker died %d times; degraded fallback crashed too" crashes))
    | Worker.Timed_out ->
      if now >= p.q_deadline_us then begin
        Obs.Metrics.incr_counter "serve.deadline_exceeded";
        reply_error p ~status:"failed" ~now
          ~diag:
            (Diag.make ~phase:Diag.Service ~kind:Diag.Deadline_exceeded
               "request deadline passed while compiling")
      end
      else if p.q_attempt < cfg.s_retries then retry p
      else if not p.q_degraded then begin
        Obs.Metrics.incr_counter "serve.degraded";
        retry ~degraded:true p
      end
      else
        reply_error p ~status:"timeout" ~now
          ~diag:
            (Diag.make ~phase:Diag.Service ~kind:Diag.Job_timeout
               "worker exceeded its wall-clock limit on every attempt")
  in
  let reap ~timed_out ~now (r : running) =
    running := List.filter (fun r' -> r' != r) !running;
    if timed_out then Worker.kill r.r_handle;
    conclude ~now r.r_pending (Worker.reap r.r_handle ~timed_out)
  in
  (* Admission: every request gets exactly one reply, and the expensive
     ones only get as far as their failure mode allows. *)
  let admit (c : conn) (line : string) ~now =
    Obs.Metrics.incr_counter "serve.requests";
    match Protocol.request_of_line line with
    | Error why ->
      send_line c
        (Protocol.reply ~id:"?" ~status:"failed"
           ~diag:
             (Diag.make ~phase:Diag.Service ~kind:Diag.Syntax_error
                "bad request: %s" why)
           ())
    | Ok req -> (
      match req.Protocol.rq_op with
      | Protocol.Ping ->
        send_line c (Protocol.reply ~id:req.Protocol.rq_id ~status:"pong" ())
      | Protocol.Stats ->
        send_line c
          (Json.Obj
             [
               ("id", Json.Str req.Protocol.rq_id);
               ("status", Json.Str "stats");
               ("queue_depth", Json.num_of_int (List.length !queue));
               ("inflight", Json.num_of_int (List.length !running));
               ("served", Json.num_of_int !served);
               ("metrics", Obs.Metrics.dump_json ());
             ])
      | Protocol.Shutdown ->
        draining := true;
        send_line c (Protocol.reply ~id:req.Protocol.rq_id ~status:"draining" ())
      | Protocol.Compile ->
        let degraded =
          (* Overload watermark: new optimized work drops to the -O0
             fast path before the queue fills enough to shed. *)
          req.Protocol.rq_optimize
          && List.length !queue >= cfg.s_degrade_watermark
        in
        let optimize = req.Protocol.rq_optimize && not degraded in
        let key = Cache.key_of ~source:req.Protocol.rq_source in
        let opts = Engine.options_tag ~optimize in
        let p =
          {
            q_req = req;
            q_key = key;
            q_opts = opts;
            q_conn = c;
            q_received_us = now;
            q_deadline_us =
              (match req.Protocol.rq_deadline_ms with
              | Some ms -> now +. (float_of_int ms *. 1e3)
              | None -> infinity);
            q_attempt = 0;
            q_crashes = 0;
            q_ready_us = now;
            q_degraded = degraded;
            q_rng = Random.State.make [| cfg.s_seed; Hashtbl.hash key |];
          }
        in
        if !draining then
          reply_error p ~status:"shed" ~now
            ~diag:
              (Diag.make ~phase:Diag.Service ~kind:Diag.Overloaded
                 "service is draining; not accepting new work")
        else if Hashtbl.mem poisoned (journal_id p) then begin
          Obs.Metrics.incr_counter "serve.poisoned_rejects";
          reply_error p ~status:"poisoned" ~now
            ~diag:
              (Diag.make ~phase:Diag.Service ~kind:Diag.Poisoned
                 "request is quarantined: it previously crashed its workers")
        end
        else if List.length !queue >= cfg.s_queue_cap then begin
          Obs.Metrics.incr_counter "serve.shed.overload";
          reply_error p ~status:"shed" ~now
            ~diag:
              (Diag.make ~phase:Diag.Service ~kind:Diag.Overloaded
                 "queue full (%d); request shed" cfg.s_queue_cap)
        end
        else begin
          if degraded then Obs.Metrics.incr_counter "serve.degraded";
          (* Warm fast path: a verified summary answers in-process —
             no fork, no interning, no queue. *)
          match
            Engine.lookup_summary cache ~source:req.Protocol.rq_source
              ~optimize
          with
          | Some summary ->
            incr served;
            Obs.Metrics.incr_counter "serve.cache.hit";
            journal_append p ~status:"ok" ~now;
            send_line c
              (Protocol.reply ~id:req.Protocol.rq_id ~status:"ok" ~cache:"hit"
                 ~degraded ~elapsed_us:(Obs.now_us () -. now) ~summary ())
          | None -> queue := !queue @ [ p ]
        end)
  in
  (* Pull complete lines out of a connection's buffer. *)
  let drain_lines (c : conn) ~now =
    let data = Buffer.contents c.c_buf in
    let rec go start =
      match String.index_from_opt data start '\n' with
      | None ->
        Buffer.clear c.c_buf;
        Buffer.add_substring c.c_buf data start (String.length data - start)
      | Some nl ->
        let line = String.sub data start (nl - start) in
        if String.trim line <> "" then admit c line ~now;
        go (nl + 1)
    in
    go 0
  in
  let read_conn (c : conn) ~now =
    let chunk = Bytes.create 65536 in
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> close_conn c
    | n ->
      Buffer.add_subbytes c.c_buf chunk 0 n;
      drain_lines c ~now
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  (* ---------------- the loop ---------------- *)
  let loop () =
    let live = ref true in
    while !live do
      let now = Obs.now_us () in
      Obs.Metrics.set_gauge "serve.queue_depth"
        (float_of_int (List.length !queue));
      Obs.Metrics.set_gauge "serve.inflight"
        (float_of_int (List.length !running));
      (* Expire queued requests whose end-to-end deadline has passed:
         they must not consume a worker they can no longer use. *)
      let expired, alive =
        List.partition (fun p -> now >= p.q_deadline_us) !queue
      in
      queue := alive;
      List.iter
        (fun p ->
          Obs.Metrics.incr_counter "serve.deadline_exceeded";
          reply_error p ~status:"failed" ~now
            ~diag:
              (Diag.make ~phase:Diag.Service ~kind:Diag.Deadline_exceeded
                 "request deadline passed while queued"))
        expired;
      (* Launch every ready request while there is worker capacity. *)
      let rec fill () =
        if List.length !running < max 1 cfg.s_jobs then
          match List.partition (fun p -> p.q_ready_us <= now) !queue with
          | p :: rest_ready, not_ready ->
            queue := rest_ready @ not_ready;
            launch ~now p;
            fill ()
          | [], _ -> ()
      in
      fill ();
      (* Kill workers past their wall-clock deadline. *)
      List.iter
        (fun r ->
          if now >= r.r_handle.Worker.deadline_us then
            reap ~timed_out:true ~now r)
        !running;
      (* Done draining? *)
      if !draining && !queue = [] && !running = [] then live := false
      else begin
        let next_deadline =
          List.fold_left
            (fun acc r -> Float.min acc r.r_handle.Worker.deadline_us)
            infinity !running
        and next_ready =
          List.fold_left
            (fun acc p ->
              Float.min acc (Float.min p.q_ready_us p.q_deadline_us))
            infinity !queue
        in
        let horizon = Float.min next_deadline next_ready in
        let wait_s =
          if horizon = infinity then 0.25
          else Float.max 0.01 (Float.min 0.25 ((horizon -. now) /. 1e6))
        in
        let conn_fds =
          List.filter_map
            (fun c -> if c.c_closed then None else Some c.c_fd)
            !conns
        and worker_fds = List.map (fun r -> r.r_handle.Worker.fd) !running in
        let read_set =
          (if !draining then [] else [ listen_fd ]) @ conn_fds @ worker_fds
        in
        match Unix.select read_set [] [] wait_s with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = listen_fd then begin
                match Unix.accept listen_fd with
                | cfd, _ ->
                  conns :=
                    { c_fd = cfd; c_buf = Buffer.create 256; c_closed = false }
                    :: !conns
                | exception Unix.Unix_error _ -> ()
              end
              else
                match
                  List.find_opt (fun r -> r.r_handle.Worker.fd = fd) !running
                with
                | Some r -> (
                  match Worker.read_chunk r.r_handle with
                  | `More -> ()
                  | `Eof -> reap ~timed_out:false ~now:(Obs.now_us ()) r)
                | None -> (
                  match
                    List.find_opt
                      (fun c -> (not c.c_closed) && c.c_fd = fd)
                      !conns
                  with
                  | Some c -> read_conn c ~now:(Obs.now_us ())
                  | None -> ()))
            ready;
          conns := List.filter (fun c -> not c.c_closed) !conns
      end
    done
  in
  let cleanup () =
    (* No worker outlives the daemon; every journal line already hit
       the disk. Compact so the next incarnation loads a snapshot. *)
    List.iter
      (fun r ->
        Worker.kill r.r_handle;
        ignore (Worker.reap r.r_handle ~timed_out:true))
      !running;
    running := [];
    Option.iter Checkpoint.close journal;
    Option.iter (fun p -> ignore (Checkpoint.compact p)) cfg.s_journal;
    List.iter close_conn !conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.s_socket with Unix.Unix_error _ -> ());
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Fun.protect ~finally:cleanup loop;
  let elapsed_s = (Obs.now_us () -. t_start) /. 1e6 in
  if !served > 0 && elapsed_s > 0. then
    Obs.Metrics.set_gauge "serve.jobs_per_s" (float_of_int !served /. elapsed_s);
  Obs.Metrics.set_gauge "serve.queue_depth" 0.;
  Obs.Metrics.set_gauge "serve.inflight" 0.;
  !served

(* ------------------------------------------------------------------ *)
(* Client                                                             *)
(* ------------------------------------------------------------------ *)

(** Connect, send one request line, read one reply line ([occo
    request] and the tests both go through this). [connect_wait_us]
    retries the connect while the daemon is still starting up. *)
let request ?(connect_wait_us = 5e6) ~(socket : string)
    (req : Protocol.request) : (Json.t, string) result =
  let deadline = Obs.now_us () +. connect_wait_us in
  let rec connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Obs.now_us () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      connect ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  match connect () with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let line = Json.to_string (Protocol.request_to_json req) ^ "\n" in
        let b = Bytes.of_string line in
        let rec put off =
          if off < Bytes.length b then
            put (off + Unix.write fd b off (Bytes.length b - off))
        in
        match put 0 with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("write: " ^ Unix.error_message e)
        | () -> (
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 4096 in
          let rec read_line () =
            match
              String.index_opt (Buffer.contents buf) '\n'
            with
            | Some i -> Ok (String.sub (Buffer.contents buf) 0 i)
            | None -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Error "daemon closed the connection without replying"
              | n ->
                Buffer.add_subbytes buf chunk 0 n;
                read_line ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
              | exception Unix.Unix_error (e, _, _) ->
                Error ("read: " ^ Unix.error_message e))
          in
          match read_line () with
          | Error _ as e -> e
          | Ok line -> (
            match Json.parse_opt line with
            | Some j -> Ok j
            | None -> Error "daemon replied with malformed JSON")))
