(** A minimal JSON tree, printer and parser.

    The toolchain has no yojson, and the observability exporters only
    need a small well-defined subset: finite numbers, strings, bools,
    null, arrays, objects. The parser exists so tests (and the CI smoke
    check) can load exported Chrome traces back and validate their
    shape, closing the loop on "emits valid JSON". *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int n = Num (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_num fmt f =
  (* JSON has no inf/nan literal; "%g" would print one and corrupt the
     document. A non-finite measurement carries no information anyway,
     so serialize it as null (and the parser reads null back as Null —
     the round trip is lossy in type, never in well-formedness). *)
  if not (Float.is_finite f) then Format.pp_print_string fmt "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Format.fprintf fmt "%.0f" f
  else Format.fprintf fmt "%.12g" f

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Num f -> pp_num fmt f
  | Str s -> Format.fprintf fmt "\"%s\"" (escape_string s)
  | List xs ->
    Format.fprintf fmt "@[<hv 1>[%a]@]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp)
      xs
  | Obj kvs ->
    Format.fprintf fmt "@[<hv 1>{%a}@]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
         (fun fmt (k, v) ->
           Format.fprintf fmt "\"%s\":@;<0 1>%a" (escape_string k) pp v))
      kvs

let to_string (j : t) =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt max_int;
  Format.fprintf fmt "%a@?" pp j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* Only BMP code points below 0x80 round-trip exactly; others
             are stored as '?' — the exporters never emit them. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* Accessors used by the validating tests. *)
let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
