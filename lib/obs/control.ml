(** The process-global observability switch.

    Everything in [Obs] is gated on this flag: when it is off (the
    default), instrumented code paths reduce to a single boolean load,
    so shipping the instrumentation costs nothing. Turn it on from the
    CLI ([occo --trace]/[--metrics]), the [OCCO_TRACE] environment
    variable, or programmatically from tests and bench. *)

let enabled = ref false

let with_enabled f =
  let saved = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := saved) f

(** Monotonic wall clock in microseconds.

    [Unix.gettimeofday] is the only wall clock the toolchain gives us
    without an mtime dependency, and it is {e not} monotonic: an NTP
    step can move it backwards, which would corrupt span durations,
    histogram observations and — worse, now that the supervised batch
    layer uses this clock for job deadlines — timeout accounting. We
    make it monotonic Mtime-style: remember the largest value ever
    returned and clamp to it, so [now_us] never decreases within a
    process. During a backwards step time appears frozen until the
    system clock catches up, which only shortens measured durations —
    the failure mode we can afford. Spans additionally carry a
    session-relative sequence number so ordering survives clock
    granularity. *)
let last_us = ref neg_infinity

let now_us () =
  let t = Unix.gettimeofday () *. 1e6 in
  if t > !last_us then last_us := t;
  !last_us
