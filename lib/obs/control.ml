(** The process-global observability switch.

    Everything in [Obs] is gated on this flag: when it is off (the
    default), instrumented code paths reduce to a single boolean load,
    so shipping the instrumentation costs nothing. Turn it on from the
    CLI ([occo --trace]/[--metrics]), the [OCCO_TRACE] environment
    variable, or programmatically from tests and bench. *)

let enabled = ref false

let with_enabled f =
  let saved = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := saved) f

(** Monotonic-enough wall clock in microseconds. [Unix.gettimeofday]
    is what the toolchain gives us without an mtime dependency; spans
    additionally carry a session-relative sequence number so ordering
    survives clock granularity. *)
let now_us () = Unix.gettimeofday () *. 1e6
