(** Cross-process telemetry snapshot (ISSUE 6 tentpole, part 1).

    A forked worker is an observability black hole unless what it
    recorded crosses its interface: in CompCertO's terms, a component is
    characterized entirely by its interactions with the environment, and
    a worker's only interaction is the marshaled payload on its result
    pipe plus an exit status. So the worker's whole telemetry state —
    its finished span forest and its full metrics registry — is captured
    into this plain, marshalable value and shipped over the same pipe,
    riding alongside the job result.

    The parent {!merge}s it on reap: counters add, gauges
    last-write-wins, histogram sketches merge bucket-wise
    ({!Metrics.absorb}), and the worker's spans graft into the parent
    trace under the worker's real pid ({!Trace.graft}), so
    [Trace.export_chrome] renders one lane per worker. *)

type t = {
  sn_pid : int;  (** the recording process: its Chrome-trace lane *)
  sn_spans : Trace.span list;  (** finished top-level spans, oldest first *)
  sn_metrics : Metrics.snap;
}

(** Capture this process's telemetry state. Spans still open at capture
    time are not included (a worker captures after its job span has
    closed, so in practice nothing is lost). *)
let capture () : t =
  {
    sn_pid = Unix.getpid ();
    sn_spans = Trace.roots ();
    sn_metrics = Metrics.snapshot ();
  }

(** Fold a snapshot into this process's sinks. [pid] overrides the lane
    the spans graft under (default: the recording process's pid). *)
let merge ?pid (s : t) : unit =
  Trace.graft ~pid:(Option.value pid ~default:s.sn_pid) s.sn_spans;
  Metrics.absorb s.sn_metrics

(** Spans + histogram buckets in a snapshot, a cheap size proxy for the
    merge-overhead accounting in EXPERIMENTS.md. *)
let weight (s : t) : int =
  let rec spans n (sp : Trace.span) = List.fold_left spans (n + 1) sp.Trace.children in
  List.fold_left spans 0 s.sn_spans + List.length s.sn_metrics.Metrics.s_histograms
