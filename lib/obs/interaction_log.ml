(** Interaction recorder: a replayable log of what happens at the
    interaction points of an LTS run.

    The paper's semantics only *mean* anything at interaction points —
    incoming questions, outgoing calls and their replies, final answers
    (§2) — but [Smallstep.run] discards all of that and keeps the
    outcome. This log is the executable counterpart of the paper's
    interaction traces: [Obs_lts.instrument] (in [Core]) wraps an LTS so
    that each of these events lands here, already rendered to strings so
    this module stays independent of the language-interface types.

    Events are recorded in order; [Steps] counts the silent internal
    steps executed since the previous interaction point. *)

type event =
  | Question of string  (** incoming question activating the LTS *)
  | Steps of int  (** internal steps since the last interaction point *)
  | Call of string  (** outgoing question to the environment *)
  | Reply of string  (** environment's answer, resuming the LTS *)
  | Final of string  (** final answer; the run is over *)
  | Stuck  (** no step, no interaction: undefined behavior *)
  | Out_of_fuel
  | Fuel_consumed of int  (** total fuel a completed run burned *)
  | Service of string
      (** a service-level state transition (e.g. a circuit breaker
          opening/closing in the batch supervisor) — the harness's own
          interactions with its environment, logged in the same stream
          as the LTS's *)

let log : event list ref = ref []

let reset () = log := []
let record ev = if !Control.enabled then log := ev :: !log

(** Recorded events, oldest first. *)
let events () = List.rev !log

let event_to_json = function
  | Question q -> Json.Obj [ ("event", Json.Str "question"); ("payload", Json.Str q) ]
  | Steps n -> Json.Obj [ ("event", Json.Str "steps"); ("count", Json.num_of_int n) ]
  | Call q -> Json.Obj [ ("event", Json.Str "call"); ("payload", Json.Str q) ]
  | Reply r -> Json.Obj [ ("event", Json.Str "reply"); ("payload", Json.Str r) ]
  | Final r -> Json.Obj [ ("event", Json.Str "final"); ("payload", Json.Str r) ]
  | Stuck -> Json.Obj [ ("event", Json.Str "stuck") ]
  | Out_of_fuel -> Json.Obj [ ("event", Json.Str "out_of_fuel") ]
  | Fuel_consumed n ->
    Json.Obj [ ("event", Json.Str "fuel_consumed"); ("count", Json.num_of_int n) ]
  | Service s -> Json.Obj [ ("event", Json.Str "service"); ("payload", Json.Str s) ]

let to_json () = Json.List (List.map event_to_json (events ()))

let pp_event fmt = function
  | Question q -> Format.fprintf fmt "? %s" q
  | Steps n -> Format.fprintf fmt ". %d internal steps" n
  | Call q -> Format.fprintf fmt "! call %s" q
  | Reply r -> Format.fprintf fmt "< reply %s" r
  | Final r -> Format.fprintf fmt "= final %s" r
  | Stuck -> Format.fprintf fmt "# stuck"
  | Out_of_fuel -> Format.fprintf fmt "# out of fuel"
  | Fuel_consumed n -> Format.fprintf fmt "~ %d fuel consumed" n
  | Service s -> Format.fprintf fmt "@@ %s" s

let pp fmt () =
  List.iter (fun ev -> Format.fprintf fmt "%a@." pp_event ev) (events ())
