(** Metrics-snapshot comparison: the bench regression gate (ISSUE 6
    tentpole, part 5).

    Compares two [Metrics.dump_json] snapshots (e.g. the committed
    [BENCH_pipeline.json] baseline and a freshly regenerated one) key
    by key with {e relative} thresholds, so the gate survives machines
    of different speeds as long as baseline and candidate ran on the
    same one — and CI can widen the threshold to absorb the
    dev-box-to-runner gap instead of hardcoding an absolute budget.

    Compared keys: every gauge, and every histogram's mean and p99 —
    spelled [mean_us]/[p99_us] for duration histograms and plain
    [mean]/[p99] for dimensionless ones ({!Metrics.unit_suffix}).
    Baselines written before the unit-honest key change spelled every
    field with [_us]; those are still read (the [_us] spelling is
    accepted as a fallback for any histogram), so an old committed
    baseline keeps gating a new binary. A key present in only one
    snapshot is reported but never a regression (new passes appear,
    old ones retire). The top-level ["meta"] key (run provenance
    stamped by the bench harness) is ignored entirely.

    A key regresses when {e both} hold:
    - the relative increase exceeds its threshold (per-key override or
      the default), and
    - the absolute increase exceeds [min_delta_us] — sub-microsecond
      passes jitter by whole multiples of themselves; without an
      absolute floor they would dominate the gate with noise. *)

type verdict = {
  v_key : string;
  v_old : float;
  v_new : float;
  v_rel : float;  (** (new - old) / old; 0 when old <= 0 *)
  v_regressed : bool;
}

(** Flatten one snapshot into the comparable (key, value) set. *)
let comparable_values (j : Json.t) : (string * float) list =
  let obj k =
    match Json.member k j with Some (Json.Obj kvs) -> kvs | _ -> []
  in
  let gauges =
    List.filter_map
      (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_num v))
      (obj "gauges")
  in
  let hists =
    List.concat_map
      (fun (k, h) ->
        let u = Metrics.unit_suffix k in
        List.filter_map
          (fun base ->
            (* Canonical spelling first, legacy [_us] second: the
               comparison key is always the canonical one, so an old
               baseline and a new snapshot still meet on one key. *)
            (match Json.member (base ^ u) h with
            | Some v -> Json.to_num v
            | None -> Option.bind (Json.member (base ^ "_us") h) Json.to_num)
            |> Option.map (fun f -> (k ^ "." ^ base ^ u, f)))
          [ "mean"; "p99" ])
      (obj "histograms")
  in
  gauges @ hists

(** Compare [current] against [baseline]. [default_threshold] and the
    per-key [thresholds] are relative fractions (0.20 = a 20% increase
    trips the gate). Returns one verdict per key present in both
    snapshots, sorted by key. *)
let compare_snapshots ?(default_threshold = 0.20) ?(thresholds = [])
    ?(min_delta_us = 10.) ~(baseline : Json.t) ~(current : Json.t) () :
    verdict list =
  let old_vals = comparable_values baseline in
  let new_vals = comparable_values current in
  List.filter_map
    (fun (k, ov) ->
      match List.assoc_opt k new_vals with
      | None -> None
      | Some nv ->
        let rel = if ov > 0. then (nv -. ov) /. ov else 0. in
        let threshold =
          (* The longest matching prefix override wins, so
             "pass." can set a family-wide threshold while
             "pass.Allocation.mean_us" pins one key. *)
          List.fold_left
            (fun (acc : (int * float) option) (prefix, t) ->
              if
                String.length prefix <= String.length k
                && String.sub k 0 (String.length prefix) = prefix
                && match acc with
                   | Some (len, _) -> String.length prefix > len
                   | None -> true
              then Some (String.length prefix, t)
              else acc)
            None thresholds
          |> Option.fold ~none:default_threshold ~some:snd
        in
        Some
          {
            v_key = k;
            v_old = ov;
            v_new = nv;
            v_rel = rel;
            v_regressed = rel > threshold && nv -. ov > min_delta_us;
          })
    (List.sort Stdlib.compare old_vals)

let regressions (vs : verdict list) = List.filter (fun v -> v.v_regressed) vs

(** The [n] biggest relative movers in each direction, so a perf PR
    shows its wins (and the price it paid) in the CI log even when the
    gate passes. Keys whose absolute delta is within [min_delta_us] are
    jitter, not movers. *)
let top_movers ?(n = 5) ?(min_delta_us = 10.) (vs : verdict list) :
    verdict list * verdict list =
  let significant v = Float.abs (v.v_new -. v.v_old) > min_delta_us in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let improved =
    List.filter (fun v -> v.v_rel < 0. && significant v) vs
    |> List.sort (fun a b -> Stdlib.compare a.v_rel b.v_rel)
    |> take n
  in
  let regressed =
    List.filter (fun v -> v.v_rel > 0. && significant v) vs
    |> List.sort (fun a b -> Stdlib.compare b.v_rel a.v_rel)
    |> take n
  in
  (improved, regressed)

let pp_movers fmt (vs : verdict list) =
  let improved, regressed = top_movers vs in
  let line v =
    Format.fprintf fmt "  %-42s %12.1f -> %-12.1f %+8.1f%%@." v.v_key v.v_old
      v.v_new (100. *. v.v_rel)
  in
  if improved <> [] then begin
    Format.fprintf fmt "top improved:@.";
    List.iter line improved
  end;
  if regressed <> [] then begin
    Format.fprintf fmt "top regressed:@.";
    List.iter line regressed
  end

(** Keys only one side has — informational, never a failure. *)
let only_in (j1 : Json.t) (j2 : Json.t) : string list =
  let k1 = List.map fst (comparable_values j1)
  and k2 = List.map fst (comparable_values j2) in
  List.filter (fun k -> not (List.mem k k2)) k1

let pp_verdict fmt (v : verdict) =
  Format.fprintf fmt "%-44s %12.1f %12.1f %+8.1f%%  %s" v.v_key v.v_old v.v_new
    (100. *. v.v_rel)
    (if v.v_regressed then "REGRESSED" else "ok")

let pp_report fmt (vs : verdict list) =
  Format.fprintf fmt "%-44s %12s %12s %9s@." "key" "old" "new" "delta";
  List.iter (fun v -> Format.fprintf fmt "%a@." pp_verdict v) vs;
  let r = regressions vs in
  if r = [] then
    Format.fprintf fmt "no regression across %d compared keys@."
      (List.length vs)
  else
    Format.fprintf fmt "%d of %d keys regressed@." (List.length r)
      (List.length vs)
