(** Span tracer: nested, timestamped spans with attributes.

    A span covers one dynamic region of execution — a compiler pass, an
    LTS run, a co-execution check. Spans nest: the sink keeps a stack of
    open spans, and a span closed while another is open becomes its
    child. Completed top-level spans accumulate in a process-global
    list, exportable as Chrome trace-event JSON (loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) or as a
    human-readable tree.

    Every entry point checks [Control.enabled] first, so an untraced run
    pays one boolean load per instrumentation site. *)

type span = {
  name : string;
  seq : int;  (** session-unique, monotone; orders spans when the clock can't *)
  start_us : float;
  mutable dur_us : float;
  mutable attrs : (string * Json.t) list;
  mutable children : span list;  (** reverse order while open *)
}

(* The sink: open-span stack, finished roots (reverse order), and a
   sequence counter. All process-global, like the registry in
   [Metrics]. [foreign] holds span forests grafted from other
   processes (forked workers), keyed by their real pid, so the Chrome
   export renders one lane per worker. *)
let open_stack : span list ref = ref []
let finished : span list ref = ref []
let seq_counter = ref 0
let foreign : (int * span list) list ref = ref []  (** reverse arrival order *)

let reset () =
  open_stack := [];
  finished := [];
  seq_counter := 0;
  foreign := []

let next_seq () =
  incr seq_counter;
  !seq_counter

let current () = match !open_stack with [] -> None | sp :: _ -> Some sp

(** Attach an attribute to the innermost open span (no-op when tracing
    is off or no span is open). *)
let add_attr key value =
  if !Control.enabled then
    match current () with
    | Some sp -> sp.attrs <- (key, value) :: sp.attrs
    | None -> ()

let push name attrs =
  let sp =
    {
      name;
      seq = next_seq ();
      start_us = Control.now_us ();
      dur_us = 0.;
      attrs;
      children = [];
    }
  in
  open_stack := sp :: !open_stack;
  sp

let pop sp =
  sp.dur_us <- Float.max 0. (Control.now_us () -. sp.start_us);
  sp.attrs <- List.rev sp.attrs;
  sp.children <- List.rev sp.children;
  (match !open_stack with
  | top :: rest when top == sp -> open_stack := rest
  | _ ->
    (* An exception unwound past nested spans without closing them:
       drop everything above [sp] rather than corrupt the stack. *)
    let rec unwind = function
      | top :: rest when top == sp -> rest
      | _ :: rest -> unwind rest
      | [] -> []
    in
    open_stack := unwind !open_stack);
  match !open_stack with
  | parent :: _ -> parent.children <- sp :: parent.children
  | [] -> finished := sp :: !finished

(** [with_span name f] runs [f ()] inside a span. The span is closed
    (and its duration recorded) even if [f] raises. When tracing is
    disabled this is exactly a call to [f]. *)
let with_span ?(attrs = []) name f =
  if not !Control.enabled then f ()
  else begin
    let sp = push name attrs in
    Fun.protect ~finally:(fun () -> pop sp) f
  end

(** Completed top-level spans, oldest first. *)
let roots () = List.rev !finished

(** Graft a finished span forest recorded by another process (a forked
    worker) into this trace under its real [pid]. The spans keep their
    own timestamps — parent and children share the clock domain, so
    they land correctly on the common timeline. *)
let graft ~pid (spans : span list) =
  if spans <> [] then foreign := (pid, spans) :: !foreign

(** Grafted worker forests, oldest first: [(pid, roots)] per graft. *)
let grafted () = List.rev !foreign

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

(** Chrome trace-event JSON: one complete ("ph":"X") event per span,
    timestamps and durations in microseconds. This process's spans go
    on its own pid lane; grafted worker forests go on their real pid
    lanes (with a "process_name" metadata event naming each worker),
    so a multi-worker batch renders one lane per worker instead of
    everything stacked on one pid. *)
let to_chrome_json () : Json.t =
  let own_pid = Unix.getpid () in
  (* Timestamps are rebased to the earliest span of any lane so they
     stay small (and exactly representable) regardless of the epoch. *)
  let t0 =
    List.fold_left
      (fun acc sp -> Float.min acc sp.start_us)
      infinity
      (roots () @ List.concat_map snd (grafted ()))
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let rec events ~pid sp acc =
    let ev =
      Json.Obj
        [
          ("name", Json.Str sp.name);
          ("cat", Json.Str "occo");
          ("ph", Json.Str "X");
          ("ts", Json.Num (sp.start_us -. t0));
          ("dur", Json.Num sp.dur_us);
          ("pid", Json.num_of_int pid);
          ("tid", Json.num_of_int pid);
          ("args", Json.Obj sp.attrs);
        ]
    in
    List.fold_left
      (fun acc child -> events ~pid child acc)
      (ev :: acc) sp.children
  in
  let own =
    List.fold_left (fun acc sp -> events ~pid:own_pid sp acc) [] (roots ())
  in
  let worker_pids =
    List.sort_uniq compare (List.map fst (grafted ()))
  in
  let lane_meta =
    (* Metadata events only when worker lanes exist: a single-process
       trace keeps its original all-"X" shape. *)
    if worker_pids = [] then []
    else
      List.map
        (fun pid ->
          Json.Obj
            [
              ("name", Json.Str "process_name");
              ("ph", Json.Str "M");
              ("pid", Json.num_of_int pid);
              ("tid", Json.num_of_int pid);
              ( "args",
                Json.Obj
                  [
                    ( "name",
                      Json.Str
                        (if pid = own_pid then "occo supervisor"
                         else Printf.sprintf "occo worker %d" pid) );
                  ] );
            ])
        (List.sort_uniq compare (own_pid :: worker_pids))
  in
  let foreign_evs =
    List.fold_left
      (fun acc (pid, spans) ->
        List.fold_left (fun acc sp -> events ~pid sp acc) acc spans)
      [] (grafted ())
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (lane_meta @ List.rev own @ List.rev foreign_evs) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let export_chrome (path : string) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_chrome_json ())))

(** Human-readable tree of the recorded spans. *)
let pp_tree fmt () =
  let rec pp_span indent sp =
    Format.fprintf fmt "%s%s  %.3f ms" indent sp.name (sp.dur_us /. 1e3);
    (match sp.attrs with
    | [] -> ()
    | attrs ->
      Format.fprintf fmt "  {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) attrs)));
    Format.pp_print_newline fmt ();
    List.iter (pp_span (indent ^ "  ")) sp.children
  in
  List.iter (pp_span "") (roots ());
  List.iter
    (fun (pid, spans) ->
      Format.fprintf fmt "[worker %d]@." pid;
      List.iter (pp_span "  ") spans)
    (grafted ())
