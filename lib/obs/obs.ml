(** Observability layer (ISSUE 1 tentpole): span tracing, metrics, and
    interaction recording for the pipeline.

    This module is the library's interface; see the submodules for the
    pieces:

    - {!Trace}: nested spans with attributes, exported as Chrome
      trace-event JSON (one lane per process) or a printed tree;
    - {!Metrics}: process-global counters / gauges / log-bucketed
      duration-histogram sketches (p50/p90/p99) with a JSON snapshot;
    - {!Interaction_log}: the replayable log of LTS interaction points
      and service-level events;
    - {!Snapshot}: the marshalable capture of spans + metrics a forked
      worker ships back over its result pipe, merged by the parent;
    - {!Bench_diff}: relative-threshold comparison of two metrics
      snapshots — the bench regression gate;
    - {!Json}: the minimal JSON tree the exporters print (and a parser,
      so tests can validate exported traces).

    Everything is off unless {!enabled} is set (one boolean load per
    instrumentation site when off). *)

module Json = Json
module Trace = Trace
module Metrics = Metrics
module Interaction_log = Interaction_log
module Snapshot = Snapshot
module Bench_diff = Bench_diff

(** The process-global switch gating all recording. *)
let enabled = Control.enabled

(** Run a thunk with observability forced on, restoring the previous
    state afterwards. *)
let with_enabled = Control.with_enabled

(** Wall-clock microseconds, the timebase of spans and histograms. *)
let now_us = Control.now_us

(** Clear every sink: spans, metrics, interaction log. *)
let reset_all () =
  Trace.reset ();
  Metrics.reset ();
  Interaction_log.reset ()
