(** Metrics registry: named counters, gauges, and duration histograms.

    One process-global registry, shared by the driver, the co-execution
    checker and the bench harness, so every consumer reads the same
    numbers (the bench's [BENCH_pipeline.json] is a [dump_json] of this
    registry, not a private timing table). Recording is gated on
    [Control.enabled]; reading and dumping always work.

    Histograms are log-bucketed HDR-style sketches: each observation
    lands in a geometric bucket (ratio {!gamma} between consecutive
    bucket bounds), so quantiles are answerable at any time with a
    bounded relative error of one bucket — p50/p90/p99 in [dump_json]
    next to the exact count/sum/min/max. Because a bucket array is
    plain data, two histograms merge bucket-wise, which is what lets a
    forked worker's registry snapshot fold losslessly into the parent's
    ({!snapshot} / {!absorb}, used by [Obs.Snapshot]). *)

(** Ratio between consecutive histogram bucket bounds. Bucket [i]
    (for [i >= 2]) covers [(gamma^(i-2), gamma^(i-1)]]. Two special
    buckets sit below the geometric ladder:
    - bucket 0 holds non-positive observations ([v <= 0]) and reports
      0.0 — a histogram of zeros (an [alloc_words] sketch for a pass
      that allocates nothing) must answer 0 for every quantile, not
      1.0 as it did when non-positives shared the [<= 1.0] bucket;
    - bucket 1 holds [(0, 1]], whose geometric midpoint is undefined,
      and reports 0.5.
    With 1.2 a reported quantile is within 10% of the true value, and
    every quantile is additionally clamped to the exact min/max the
    histogram tracks alongside the sketch. *)
let gamma = 1.2

let log_gamma = log gamma

(** 170 buckets reach [gamma^168] ~ 2e13 µs (~230 days): every
    duration this registry will ever see fits without overflow. *)
let bucket_count = 170

let bucket_of (v : float) : int =
  if v <= 0.0 then 0
  else if v <= 1.0 then 1
  else
    let i = 1 + int_of_float (Float.ceil (log v /. log_gamma)) in
    if i < 2 then 2 else if i >= bucket_count then bucket_count - 1 else i

(** The representative of bucket [i] — the value a quantile query
    reports for observations that landed there: 0.0 for the
    non-positive bucket, 0.5 for [(0, 1]], and the geometric midpoint
    of the bucket's bounds above that. *)
let bucket_rep (i : int) : float =
  if i = 0 then 0.0
  else if i = 1 then 0.5
  else gamma ** (float_of_int i -. 1.5)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  buckets : int array;  (** [bucket_count] log-spaced counts *)
}

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset histograms

(* ------------------------------------------------------------------ *)
(* Recording (no-ops while observability is off)                      *)
(* ------------------------------------------------------------------ *)

let incr_counter ?(by = 1) name =
  if !Control.enabled then
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add counters name (ref by)

let set_gauge name v =
  if !Control.enabled then
    match Hashtbl.find_opt gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add gauges name (ref v)

let fresh_histogram v =
  let h =
    { count = 1; sum = v; min = v; max = v; buckets = Array.make bucket_count 0 }
  in
  h.buckets.(bucket_of v) <- 1;
  h

(** Record one observation (for durations: microseconds). *)
let observe name v =
  if !Control.enabled then
    match Hashtbl.find_opt histograms name with
    | Some h ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      h.min <- Float.min h.min v;
      h.max <- Float.max h.max v;
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1
    | None -> Hashtbl.add histograms name (fresh_histogram v)

(** [time name f] runs [f ()] and records its wall time (µs) in the
    [name] histogram. When observability is off this is exactly [f ()]. *)
let time name f =
  if not !Control.enabled then f ()
  else begin
    let t0 = Control.now_us () in
    Fun.protect ~finally:(fun () -> observe name (Control.now_us () -. t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)
(* ------------------------------------------------------------------ *)

let get_counter name =
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let get_gauge name =
  Option.map ( ! ) (Hashtbl.find_opt gauges name)

(** The [q]-quantile (0 < q <= 1) of a histogram, from the sketch: the
    representative value of the bucket holding the rank-[ceil(q*n)]
    observation, clamped to the exact [min]/[max]. Within one bucket
    (a factor of {!gamma}) of the true quantile. *)
let hist_quantile (h : histogram) (q : float) : float =
  if h.count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
    let rank = min rank h.count in
    let acc = ref 0 and found = ref h.max in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + h.buckets.(i);
         if !acc >= rank then begin
           found := bucket_rep i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min h.max (Float.max h.min !found)
  end

type stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let stats_of (h : histogram) : stats =
  {
    count = h.count;
    sum = h.sum;
    min = h.min;
    max = h.max;
    mean = (if h.count = 0 then 0. else h.sum /. float_of_int h.count);
    p50 = hist_quantile h 0.50;
    p90 = hist_quantile h 0.90;
    p99 = hist_quantile h 0.99;
  }

let histogram_stats name : stats option =
  Option.map stats_of (Hashtbl.find_opt histograms name)

let quantile name q : float option =
  Option.map (fun h -> hist_quantile h q) (Hashtbl.find_opt histograms name)

let histogram_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) histograms [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Cross-process snapshot / merge                                     *)
(* ------------------------------------------------------------------ *)

(** A marshalable copy of the whole registry: what a forked worker
    sends back over its result pipe. Plain data — no refs shared with
    the live tables. *)
type hist_snap = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : int array;
}

type snap = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snap) list;
}

let snapshot () : snap =
  {
    s_counters = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters [];
    s_gauges = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges [];
    s_histograms =
      Hashtbl.fold
        (fun k (h : histogram) acc ->
          ( k,
            {
              hs_count = h.count;
              hs_sum = h.sum;
              hs_min = h.min;
              hs_max = h.max;
              hs_buckets = Array.copy h.buckets;
            } )
          :: acc)
        histograms [];
  }

(** Fold a snapshot into this process's registry: counters add, gauges
    last-write-wins (the snapshot is the later write), histograms merge
    bucket-wise. Not gated on [Control.enabled] — merging is an
    explicit management operation, like [reset]. *)
let absorb (s : snap) : unit =
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt counters k with
      | Some r -> r := !r + v
      | None -> Hashtbl.add counters k (ref v))
    s.s_counters;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt gauges k with
      | Some r -> r := v
      | None -> Hashtbl.add gauges k (ref v))
    s.s_gauges;
  List.iter
    (fun (k, hs) ->
      if hs.hs_count > 0 then
        match Hashtbl.find_opt histograms k with
        | Some h ->
          h.count <- h.count + hs.hs_count;
          h.sum <- h.sum +. hs.hs_sum;
          h.min <- Float.min h.min hs.hs_min;
          h.max <- Float.max h.max hs.hs_max;
          Array.iteri
            (fun i n -> if n > 0 then h.buckets.(i) <- h.buckets.(i) + n)
            hs.hs_buckets
        | None ->
          Hashtbl.add histograms k
            {
              count = hs.hs_count;
              sum = hs.hs_sum;
              min = hs.hs_min;
              max = hs.hs_max;
              buckets = Array.copy hs.hs_buckets;
            })
    s.s_histograms

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Histograms measure microseconds unless their name says otherwise:
    a [_words], [_bytes] or [_count] suffix marks a size/count
    histogram. The suffix returned here is appended to the sketch
    field names in [dump_json] — ["_us"] for durations, nothing for
    dimensionless histograms, so ["pass.Allocation.alloc_words"] dumps
    a plain ["sum"], not the lie ["sum_us"]. *)
let unit_suffix (name : string) : string =
  let ends_with suffix =
    let ls = String.length suffix and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  if ends_with "_words" || ends_with "_bytes" || ends_with "_count" then ""
  else "_us"

(** Snapshot of the whole registry:
    [{"counters": {..}, "gauges": {..}, "histograms": {name:
     {"count","sum_us","min_us","max_us","mean_us","p50_us","p90_us",
      "p99_us"}}}] — with the [_us] suffix dropped on every field of a
    non-duration histogram (see {!unit_suffix}). The count/sum/min/max
    fields predate the sketch and keep their exact meaning; the
    percentiles are sketch-derived. *)
let dump_json () : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, r) -> (k, Json.num_of_int !r)) (sorted_bindings counters))
      );
      ( "gauges",
        Json.Obj
          (List.map (fun (k, r) -> (k, Json.Num !r)) (sorted_bindings gauges)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histogram)) ->
               let s = stats_of h in
               let u = unit_suffix k in
               ( k,
                 Json.Obj
                   [
                     ("count", Json.num_of_int s.count);
                     ("sum" ^ u, Json.Num s.sum);
                     ("min" ^ u, Json.Num s.min);
                     ("max" ^ u, Json.Num s.max);
                     ("mean" ^ u, Json.Num s.mean);
                     ("p50" ^ u, Json.Num s.p50);
                     ("p90" ^ u, Json.Num s.p90);
                     ("p99" ^ u, Json.Num s.p99);
                   ] ))
             (sorted_bindings histograms)) );
    ]

let pp_summary fmt () =
  List.iter
    (fun (k, r) -> Format.fprintf fmt "%-40s %10d@." k !r)
    (sorted_bindings counters);
  List.iter
    (fun (k, r) -> Format.fprintf fmt "%-40s %10.2f@." k !r)
    (sorted_bindings gauges);
  List.iter
    (fun (k, (h : histogram)) ->
      let s = stats_of h in
      let u = if unit_suffix k = "" then "" else "us" in
      Format.fprintf fmt
        "%-40s n=%-6d mean=%.1f%s p50=%.1f%s p90=%.1f%s p99=%.1f%s min=%.1f%s \
         max=%.1f%s@."
        k s.count s.mean u s.p50 u s.p90 u s.p99 u s.min u s.max u)
    (sorted_bindings histograms)
