(** Metrics registry: named counters, gauges, and duration histograms.

    One process-global registry, shared by the driver, the co-execution
    checker and the bench harness, so every consumer reads the same
    numbers (the bench's [BENCH_pipeline.json] is a [dump_json] of this
    registry, not a private timing table). Recording is gated on
    [Control.enabled]; reading and dumping always work. *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset histograms

(* ------------------------------------------------------------------ *)
(* Recording (no-ops while observability is off)                      *)
(* ------------------------------------------------------------------ *)

let incr_counter ?(by = 1) name =
  if !Control.enabled then
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add counters name (ref by)

let set_gauge name v =
  if !Control.enabled then
    match Hashtbl.find_opt gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add gauges name (ref v)

(** Record one observation (for durations: microseconds). *)
let observe name v =
  if !Control.enabled then
    match Hashtbl.find_opt histograms name with
    | Some h ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      h.min <- Float.min h.min v;
      h.max <- Float.max h.max v
    | None -> Hashtbl.add histograms name { count = 1; sum = v; min = v; max = v }

(** [time name f] runs [f ()] and records its wall time (µs) in the
    [name] histogram. When observability is off this is exactly [f ()]. *)
let time name f =
  if not !Control.enabled then f ()
  else begin
    let t0 = Control.now_us () in
    Fun.protect ~finally:(fun () -> observe name (Control.now_us () -. t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                            *)
(* ------------------------------------------------------------------ *)

let get_counter name =
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let get_gauge name =
  Option.map ( ! ) (Hashtbl.find_opt gauges name)

type stats = { count : int; sum : float; min : float; max : float; mean : float }

let histogram_stats name : stats option =
  Option.map
    (fun (h : histogram) ->
      {
        count = h.count;
        sum = h.sum;
        min = h.min;
        max = h.max;
        mean = (if h.count = 0 then 0. else h.sum /. float_of_int h.count);
      })
    (Hashtbl.find_opt histograms name)

let histogram_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) histograms [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Snapshot of the whole registry:
    [{"counters": {..}, "gauges": {..}, "histograms": {name:
     {"count","sum_us","min_us","max_us","mean_us"}}}]. *)
let dump_json () : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, r) -> (k, Json.num_of_int !r)) (sorted_bindings counters))
      );
      ( "gauges",
        Json.Obj
          (List.map (fun (k, r) -> (k, Json.Num !r)) (sorted_bindings gauges)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histogram)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.num_of_int h.count);
                     ("sum_us", Json.Num h.sum);
                     ("min_us", Json.Num h.min);
                     ("max_us", Json.Num h.max);
                     ( "mean_us",
                       Json.Num
                         (if h.count = 0 then 0. else h.sum /. float_of_int h.count)
                     );
                   ] ))
             (sorted_bindings histograms)) );
    ]

let pp_summary fmt () =
  List.iter
    (fun (k, r) -> Format.fprintf fmt "%-40s %10d@." k !r)
    (sorted_bindings counters);
  List.iter
    (fun (k, r) -> Format.fprintf fmt "%-40s %10.2f@." k !r)
    (sorted_bindings gauges);
  List.iter
    (fun (k, (h : histogram)) ->
      Format.fprintf fmt "%-40s n=%-6d mean=%.1fus min=%.1fus max=%.1fus@." k
        h.count
        (if h.count = 0 then 0. else h.sum /. float_of_int h.count)
        h.min h.max)
    (sorted_bindings histograms)
