(** The concrete language interfaces of CompCertO (paper, Table 2).

    - [C]: function calls at the source level — function value, signature,
      argument values, memory. Used by Clight through RTL.
    - [L]: abstract locations — the arguments live in a location map.
      Used by LTL and Linear.
    - [M]: machine registers plus explicit stack pointer and return
      address. Used by Mach.
    - [A]: the full architectural register file (including PC, SP, RA)
      plus memory. Used by Asm. *)

open Memory
open Memory.Mtypes
open Memory.Values
open Target

(** {1 Interface C} *)

type c_query = {
  cq_vf : value;
  cq_sg : signature;
  cq_args : value list;
  cq_mem : Mem.t;
}

type c_reply = { cr_res : value; cr_mem : Mem.t }

let pp_c_query fmt q =
  Format.fprintf fmt "@[%a[%a](%a)@]" Values.pp q.cq_vf pp_signature q.cq_sg
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Values.pp)
    q.cq_args

let pp_c_reply fmt r = Format.fprintf fmt "%a" Values.pp r.cr_res

(** {1 Interface L} *)

type l_query = {
  lq_vf : value;
  lq_sg : signature;
  lq_ls : Locations.Locset.t;
  lq_mem : Mem.t;
}

type l_reply = { lr_ls : Locations.Locset.t; lr_mem : Mem.t }

(** {1 Interface M} *)

type m_query = {
  mq_vf : value;
  mq_sp : value;  (** caller stack pointer; stack args live at [sp+0..] *)
  mq_ra : value;  (** return address *)
  mq_rs : Machregs.Regfile.t;
  mq_mem : Mem.t;
}

type m_reply = { mr_rs : Machregs.Regfile.t; mr_mem : Mem.t }

(** {1 Interface A}

    The architectural register file: machine registers plus the program
    counter, stack pointer and return-address register. *)

type preg =
  | PC
  | SP
  | RA
  | SCR  (** assembler scratch register (r11), invisible above Asm *)
  | Mreg of Machregs.mreg

let pp_preg fmt = function
  | PC -> Format.pp_print_string fmt "pc"
  | SP -> Format.pp_print_string fmt "sp"
  | RA -> Format.pp_print_string fmt "ra"
  | SCR -> Format.pp_print_string fmt "r11"
  | Mreg r -> Machregs.pp_mreg fmt r

let all_pregs =
  PC :: SP :: RA :: SCR :: List.map (fun r -> Mreg r) Machregs.all_mregs

let num_pregs = 4 + Machregs.num_mregs

(** Dense ordinal of an architectural register, in [0, num_pregs). *)
let preg_index = function
  | PC -> 0
  | SP -> 1
  | RA -> 2
  | SCR -> 3
  | Mreg r -> 4 + Machregs.mreg_index r

module Pregfile = struct
  (* A dense array indexed by [preg_index], updated copy-on-write (like
     [Machregs.Regfile]): O(1) [get]/[set] with no polymorphic-compare
     calls, an allocation-free [equal], and purely functional values —
     the array is never mutated after [set] returns it. This is the
     register file the Asm interpreter reads and writes on every step. *)
  type t = value array

  let init : t = Array.make num_pregs Vundef
  let get r (rf : t) = rf.(preg_index r)

  let set r v (rf : t) : t =
    let i = preg_index r in
    if rf.(i) == v then rf
    else begin
      let rf' = Array.copy rf in
      rf'.(i) <- v;
      rf'
    end

  let set_list rvs rf = List.fold_left (fun rf (r, v) -> set r v rf) rf rvs

  (* Snapshot for the mutable-execution cores: interpreters that update a
     register file in place must hand out copies at every observation
     point (query/reply marshaling), never the live array. *)
  let copy : t -> t = Array.copy

  let of_regfile (mrs : Machregs.Regfile.t) : t =
    List.fold_left
      (fun rf r -> set (Mreg r) (Machregs.Regfile.get r mrs) rf)
      init Machregs.all_mregs

  let to_regfile (rf : t) : Machregs.Regfile.t =
    List.fold_left
      (fun mrs r -> Machregs.Regfile.set r (get (Mreg r) rf) mrs)
      Machregs.Regfile.init Machregs.all_mregs

  let equal (a : t) (b : t) =
    a == b
    ||
    let rec go i = i >= num_pregs || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let pp fmt rf =
    Format.fprintf fmt "@[<h>{";
    List.iter
      (fun r ->
        match get r rf with
        | Vundef -> ()
        | v -> Format.fprintf fmt " %a=%a" pp_preg r Values.pp v)
      all_pregs;
    Format.fprintf fmt " }@]"
end

type a_query = { aq_rs : Pregfile.t; aq_mem : Mem.t }
type a_reply = { ar_rs : Pregfile.t; ar_mem : Mem.t }
