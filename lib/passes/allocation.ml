(** Register allocation: RTL to LTL (CompCert's [Allocation]).

    Simulation convention: [wt · ext · CL ↠ wt · ext · CL] (Table 3):
    arguments move from abstract values to locations ([CL]), under the
    typing invariant [wt].

    The allocator is a greedy graph coloring over the liveness-based
    interference graph:
    - pseudo-registers live across a call may only receive callee-save
      machine registers (or spill), since the LTL semantics clobbers
      nothing but the convention gives no guarantee on caller-save
      registers across calls;
    - spilled pseudo-registers live in [Local] stack slots; operations on
      spilled values go through reserved scratch registers (r10/rsi for
      integers, x2/x3 for floats), which are excluded from allocation;
    - calls marshal arguments with a parallel-move sequence (cycles are
      broken through a reserved Local slot), mirroring CompCert's
      [Parmov]. *)

open Support
open Support.Errors
open Memory.Mtypes
open Target.Machregs
open Target.Locations
open Target.Conventions
module R = Middle.Rtl
module L = Backend.Ltl
module Op = Middle.Op
module RSet = Middle.Liveness.RSet

(* Scratch registers, reserved (never allocated). *)
let int_scratch1 = R10
let int_scratch2 = SI
let float_scratch1 = X2
let float_scratch2 = X3

let allocatable_int = [ AX; BX; CX; DX; DI; R8; R9; R12; R13; R14; R15 ]
let allocatable_float = [ X0; X1; X4; X5; X6; X7 ]

let is_float_typ = function
  | Tfloat | Tsingle -> true
  | Tint | Tlong | Tany64 -> false

(** {1 Type inference for pseudo-registers} *)

let infer_types (f : R.coq_function) : typ R.Regmap.t =
  let types = ref R.Regmap.empty in
  let set r t =
    match R.Regmap.find_opt r !types with
    | Some _ -> false
    | None ->
      types := R.Regmap.add r t !types;
      true
  in
  List.iter2
    (fun r t -> ignore (set r t))
    f.R.fn_params f.R.fn_sig.sig_args;
  let changed = ref true in
  while !changed do
    changed := false;
    R.Regmap.iter
      (fun _ i ->
        match i with
        | R.Iop (Op.Omove, [ src ], res, _) -> (
          match R.Regmap.find_opt src !types with
          | Some t -> if set res t then changed := true
          | None -> ())
        | R.Iop (op, _, res, _) -> (
          match Op.type_of_operation op with
          | Some t -> if set res t then changed := true
          | None -> ())
        | R.Iload (chunk, _, _, dst, _) ->
          if set dst (Memory.Memdata.type_of_chunk chunk) then changed := true
        | R.Icall (sg, _, _, res, _) ->
          if set res (proj_sig_res sg) then changed := true
        | _ -> ())
      f.R.fn_code
  done;
  !types

(** {1 Interference and coloring} *)

type assignment = Lreg of mreg | Lslot of int * typ

let loc_of_assignment = function
  | Lreg r -> R r
  | Lslot (i, t) -> S (Local, i, t)

(* [allocate_with types f]: the coloring itself, reusing an
   already-inferred typing (type inference runs once per function, shared
   with code generation). *)
let allocate_with (types : typ R.Regmap.t) (f : R.coq_function) :
    assignment R.Regmap.t * int (* number of Local slots used, incl. temps *) =
  let typ_of r = Option.value (R.Regmap.find_opt r types) ~default:Tlong in
  let live_out = Middle.Liveness.analyze_out f in
  (* Registers live across some call. *)
  let across_call = ref RSet.empty in
  R.Regmap.iter
    (fun n i ->
      match i with
      | R.Icall (_, _, _, res, _) ->
        across_call :=
          RSet.union !across_call (RSet.remove res (live_out n))
      | _ -> ())
    f.R.fn_code;
  (* Interference edges: at each definition, the defined register
     interferes with everything live after it (except itself, and except
     the source of a move). The defined register's neighbor set absorbs
     the whole live-out set with one word-parallel union; only the
     reverse edges are added bit by bit. *)
  let interf : (int, RSet.t) Hashtbl.t = Hashtbl.create 64 in
  let neighbors r = Option.value (Hashtbl.find_opt interf r) ~default:RSet.empty in
  let add_against res out =
    let out = RSet.remove res out in
    Hashtbl.replace interf res (RSet.union (neighbors res) out);
    RSet.iter (fun r -> Hashtbl.replace interf r (RSet.add res (neighbors r))) out
  in
  R.Regmap.iter
    (fun n i ->
      let out = live_out n in
      match i with
      | R.Iop (Op.Omove, [ src ], res, _) ->
        add_against res (RSet.remove src out)
      | R.Iop (_, _, res, _) | R.Iload (_, _, _, res, _) | R.Icall (_, _, _, res, _)
        ->
        add_against res out
      | _ -> ())
    f.R.fn_code;
  (* Parameters are defined simultaneously at entry. *)
  let add_edge a b =
    if a <> b then begin
      Hashtbl.replace interf a (RSet.add b (neighbors a));
      Hashtbl.replace interf b (RSet.add a (neighbors b))
    end
  in
  let rec pairwise = function
    | [] -> ()
    | p :: rest ->
      List.iter (add_edge p) rest;
      pairwise rest
  in
  pairwise f.R.fn_params;
  (* All registers, ordered by decreasing interference degree. *)
  let all_regs =
    RSet.elements
      (R.Regmap.fold
         (fun _ i acc ->
           RSet.union acc (RSet.of_list (R.instr_uses i @ R.instr_defs i)))
         f.R.fn_code
         (RSet.of_list f.R.fn_params))
  in
  (* Precompute degrees once: the sort comparator must not recount a
     neighbor set (O(edges)) on every comparison. *)
  let degrees : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace degrees r
        (RSet.cardinal
           (Option.value (Hashtbl.find_opt interf r) ~default:RSet.empty)))
    all_regs;
  let degree r = Option.value (Hashtbl.find_opt degrees r) ~default:0 in
  let ordered = List.sort (fun a b -> compare (degree b) (degree a)) all_regs in
  let assignment = ref R.Regmap.empty in
  let next_slot = ref 0 in
  List.iter
    (fun r ->
      let t = typ_of r in
      let neighbors =
        Option.value (Hashtbl.find_opt interf r) ~default:RSet.empty
      in
      let used_regs =
        RSet.fold
          (fun r' acc ->
            match R.Regmap.find_opt r' !assignment with
            | Some (Lreg m) -> m :: acc
            | _ -> acc)
          neighbors []
      in
      let candidates =
        let pool = if is_float_typ t then allocatable_float else allocatable_int in
        let pool =
          if RSet.mem r !across_call then List.filter is_callee_save pool
          else
            (* Prefer caller-save registers for values not live across
               calls, keeping callee-saves (which cost a save/restore)
               for when they are needed. *)
            List.filter (fun m -> not (is_callee_save m)) pool
            @ List.filter is_callee_save pool
        in
        List.filter (fun m -> not (List.mem m used_regs)) pool
      in
      let a =
        match candidates with
        | m :: _ -> Lreg m
        | [] ->
          let i = !next_slot in
          incr next_slot;
          Lslot (i, t)
      in
      assignment := R.Regmap.add r a !assignment)
    ordered;
  (!assignment, !next_slot)

let allocate (f : R.coq_function) : assignment R.Regmap.t * int =
  allocate_with (infer_types f) f

(** {1 Parallel moves}

    Sources and destinations are locations; all destinations are
    distinct. Cycles are broken through a reserved [Local] slot. *)

(* Each move carries the machine type of the datum it transfers, so that
   the parking slot used for cycle breaking normalizes correctly. *)
let compile_parallel_move ~(temp_slot : int) (moves : (loc * loc * typ) list) :
    (loc * loc) list =
  let n = List.length moves in
  let src = Array.of_list (List.map (fun (s, _, _) -> s) moves) in
  let dst = Array.of_list (List.map (fun (_, d, _) -> d) moves) in
  let tys = Array.of_list (List.map (fun (_, _, t) -> t) moves) in
  let status = Array.make n `To_move in
  let out = ref [] in
  let emit s d = if not (loc_equal s d) then out := (s, d) :: !out in
  let rec move_one i =
    status.(i) <- `Being_moved;
    for j = 0 to n - 1 do
      if j <> i && locs_overlap src.(j) dst.(i) then begin
        match status.(j) with
        | `To_move -> move_one j
        | `Being_moved ->
          (* Cycle: park j's source in the temp slot, typed by the datum. *)
          let tmp = S (Local, temp_slot, tys.(j)) in
          emit src.(j) tmp;
          src.(j) <- tmp
        | `Moved -> ()
      end
    done;
    emit src.(i) dst.(i);
    status.(i) <- `Moved
  in
  for i = 0 to n - 1 do
    if status.(i) = `To_move then
      if loc_equal src.(i) dst.(i) then status.(i) <- `Moved else move_one i
  done;
  List.rev !out

(** {1 Code generation} *)

type gen_state = {
  mutable code : L.code;
  mutable next_node : int;
}

(* Emit a chain of instructions ending at [cont]; returns the entry. Each
   element is a function from successor node to instruction. *)
let emit_chain (st : gen_state) (builders : (L.node -> L.instruction) list)
    (cont : L.node) : L.node =
  List.fold_right
    (fun mk cont ->
      let n = st.next_node in
      st.next_node <- n + 1;
      st.code <- L.Nodemap.add n (mk cont) st.code;
      n)
    builders cont

let scratch_for t which =
  if is_float_typ t then (if which = 0 then float_scratch1 else float_scratch2)
  else if which = 0 then int_scratch1
  else int_scratch2

(* Instructions realizing a single move between locations. *)
let move_loc (src : loc) (dst : loc) : (L.node -> L.instruction) list =
  match (src, dst) with
  | R r1, R r2 -> [ (fun n -> L.Lop (Op.Omove, [ r1 ], r2, n)) ]
  | R r1, S (k, o, t) -> [ (fun n -> L.Lsetstack (r1, k, o, t, n)) ]
  | S (k, o, t), R r2 -> [ (fun n -> L.Lgetstack (k, o, t, r2, n)) ]
  | S (k1, o1, t1), S (k2, o2, t2) ->
    let sc = scratch_for t1 0 in
    [
      (fun n -> L.Lgetstack (k1, o1, t1, sc, n));
      (fun n -> L.Lsetstack (sc, k2, o2, t2, n));
    ]

let moves_code moves = List.concat_map (fun (s, d) -> move_loc s d) moves

(* Read the pseudo-registers [args] into machine registers, spilled ones
   through scratches. Returns (prefix builders, machine registers). *)
let read_args (assign : assignment R.Regmap.t) (typ_of : R.reg -> typ)
    (args : R.reg list) : (L.node -> L.instruction) list * mreg list =
  let next_scratch = ref 0 in
  let prefix = ref [] in
  let regs =
    List.map
      (fun r ->
        match R.Regmap.find_opt r assign with
        | Some (Lreg m) -> m
        | Some (Lslot (i, t)) ->
          let sc = scratch_for t !next_scratch in
          incr next_scratch;
          prefix := !prefix @ [ (fun n -> L.Lgetstack (Local, i, t, sc, n)) ];
          sc
        | None ->
          (* Never-assigned register: undefined value; read a scratch. *)
          scratch_for (typ_of r) 0)
      args
  in
  (!prefix, regs)

(* Write machine register result into the location of [res]. Returns the
   destination machine register for the op and suffix builders. *)
let write_res (assign : assignment R.Regmap.t) (typ_of : R.reg -> typ)
    (res : R.reg) : mreg * (L.node -> L.instruction) list =
  match R.Regmap.find_opt res assign with
  | Some (Lreg m) -> (m, [])
  | Some (Lslot (i, t)) ->
    let sc = scratch_for t 0 in
    (sc, [ (fun n -> L.Lsetstack (sc, Local, i, t, n)) ])
  | None -> (scratch_for (typ_of res) 0, [])

let loc_of (assign : assignment R.Regmap.t) (typ_of : R.reg -> typ) (r : R.reg) :
    loc =
  match R.Regmap.find_opt r assign with
  | Some a -> loc_of_assignment a
  | None -> R (scratch_for (typ_of r) 0)

(* Translate one function; also returns the coloring used, so the
   validator can check the allocator's actual (untrusted) output instead
   of re-deriving it. *)
let transf_function_with_assignment (f : R.coq_function) :
    (L.coq_function * assignment R.Regmap.t) Errors.t =
  let types = infer_types f in
  let typ_of r = Option.value (R.Regmap.find_opt r types) ~default:Tlong in
  let assign, nslots = allocate_with types f in
  let temp_slot = nslots in
  let callee_slot = nslots + 1 in
  let st = { code = L.Nodemap.empty; next_node = R.max_node f + 1 } in
  let transl_node (i : R.instruction) : L.instruction =
    (* The first instruction of the expansion occupies node [n]; the rest
       chain through fresh nodes. We build the tail first. *)
    let with_chain (builders : (L.node -> L.instruction) list) (cont : L.node) :
        L.instruction =
      match builders with
      | [] -> L.Lnop cont
      | first :: rest -> first (emit_chain st rest cont)
    in
    match i with
    | R.Inop n' -> L.Lnop n'
    | R.Iop (Op.Omove, [ src ], res, n') ->
      let s = loc_of assign typ_of src and d = loc_of assign typ_of res in
      with_chain (move_loc s d) n'
    | R.Iop (op, args, res, n') ->
      let prefix, margs = read_args assign typ_of args in
      let mres, suffix = write_res assign typ_of res in
      with_chain
        (prefix @ [ (fun n -> L.Lop (op, margs, mres, n)) ] @ suffix)
        n'
    | R.Iload (chunk, addr, args, dst, n') ->
      let prefix, margs = read_args assign typ_of args in
      let mres, suffix = write_res assign typ_of dst in
      with_chain
        (prefix @ [ (fun n -> L.Lload (chunk, addr, margs, mres, n)) ] @ suffix)
        n'
    | R.Istore (chunk, addr, args, src, n') -> (
      let prefix, margs = read_args assign typ_of args in
      match R.Regmap.find_opt src assign with
      | Some (Lreg msrc) ->
        with_chain
          (prefix @ [ (fun n -> L.Lstore (chunk, addr, margs, msrc, n)) ])
          n'
      | _ ->
        (* Spilled source: collapse the address into the first integer
           scratch, freeing the second for the stored value. *)
        let t = typ_of src in
        let ssrc = if is_float_typ t then float_scratch1 else int_scratch2 in
        let sloc =
          match R.Regmap.find_opt src assign with
          | Some (Lslot (i, st')) -> Some (i, st')
          | _ -> None
        in
        let load_src n =
          match sloc with
          | Some (i, st') -> L.Lgetstack (Local, i, st', ssrc, n)
          | None -> L.Lop (Op.Omove, [ ssrc ], ssrc, n)
        in
        with_chain
          (prefix
          @ [
              (fun n -> L.Lop (Op.Olea addr, margs, int_scratch1, n));
              load_src;
              (fun n ->
                L.Lstore (chunk, Op.Aindexed 0, [ int_scratch1 ], ssrc, n));
            ])
          n')
    | R.Icall (sg, ros, args, res, n') ->
      let arg_locs = loc_arguments sg in
      let moves =
        List.map2
          (fun r l -> (loc_of assign typ_of r, l, typ_of r))
          args arg_locs
      in
      let par = compile_parallel_move ~temp_slot moves in
      let ros', ros_park, ros_fetch =
        match ros with
        | R.Rsymbol id -> (L.Rsymbol id, [], [])
        | R.Rreg r ->
          (* Park the function value in a dedicated Local slot before the
             argument moves (which may clobber both its register and the
             scratches), and fetch it just before the call. *)
          ( L.Rreg int_scratch1,
            move_loc (loc_of assign typ_of r) (S (Local, callee_slot, Tlong)),
            move_loc (S (Local, callee_slot, Tlong)) (R int_scratch1) )
      in
      let res_loc = loc_of assign typ_of res in
      let result_moves = move_loc (R (loc_result sg)) res_loc in
      with_chain
        (ros_park @ moves_code par @ ros_fetch
        @ [ (fun n -> L.Lcall (sg, ros', n)) ]
        @ result_moves)
        n'
    | R.Itailcall (sg, ros, args) ->
      let arg_locs = loc_arguments sg in
      let moves =
        List.map2
          (fun r l -> (loc_of assign typ_of r, l, typ_of r))
          args arg_locs
      in
      let par = compile_parallel_move ~temp_slot moves in
      let ros', ros_prefix =
        match ros with
        | R.Rsymbol id -> (L.Rsymbol id, [])
        | R.Rreg r ->
          ( L.Rreg int_scratch1,
            move_loc (loc_of assign typ_of r) (R int_scratch1) )
      in
      (match ros_prefix @ moves_code par with
      | [] -> L.Ltailcall (sg, ros')
      | first :: rest ->
        first (emit_chain st rest (emit_chain st [ (fun _ -> L.Ltailcall (sg, ros')) ] 0)))
    | R.Icond (cond, args, n1, n2) -> (
      let prefix, margs = read_args assign typ_of args in
      match prefix with
      | [] -> L.Lcond (cond, margs, n1, n2)
      | first :: rest ->
        first
          (emit_chain st rest
             (emit_chain st [ (fun _ -> L.Lcond (cond, margs, n1, n2)) ] 0)))
    | R.Ireturn optr -> (
      let moves =
        match optr with
        | Some r -> move_loc (loc_of assign typ_of r) (R (loc_result f.R.fn_sig))
        | None -> []
      in
      match moves with
      | [] -> L.Lreturn
      | first :: rest -> first (emit_chain st rest (emit_chain st [ (fun _ -> L.Lreturn) ] 0)))
  in
  (* Translate each RTL node; expansions allocate fresh LTL nodes. *)
  R.Regmap.iter
    (fun n i ->
      (* Evaluate the expansion first: it allocates fresh chain nodes in
         [st.code], which the final add must not discard. *)
      let ins = transl_node i in
      st.code <- L.Nodemap.add n ins st.code)
    f.R.fn_code;
  (* Entry: marshal incoming arguments from calling-convention locations
     (registers and Incoming slots) to the parameters' locations. *)
  let entry_moves =
    let arg_locs = loc_arguments f.R.fn_sig in
    let incoming =
      List.map
        (function S (Outgoing, o, t) -> S (Incoming, o, t) | l -> l)
        arg_locs
    in
    List.map2
      (fun l p -> (l, loc_of assign typ_of p, typ_of p))
      incoming f.R.fn_params
  in
  let par = compile_parallel_move ~temp_slot entry_moves in
  let entry = emit_chain st (moves_code par) f.R.fn_entrypoint in
  ok
    ( {
        L.fn_sig = f.R.fn_sig;
        fn_stacksize = f.R.fn_stacksize;
        fn_code = st.code;
        fn_entrypoint = entry;
      },
      assign )

let transf_function (f : R.coq_function) : L.coq_function Errors.t =
  Errors.map fst (transf_function_with_assignment f)

(** Translate a whole program, returning alongside the LTL the coloring
    the allocator chose for each internal function — the untrusted input
    [Alloc_check.validate_program] validates. *)
let transf_program_with_assignments (p : R.program) :
    (L.program * (Support.Ident.t * assignment R.Regmap.t) list) Errors.t =
  let open Errors in
  let* defs =
    map_list
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal f) ->
          let* f', assign = transf_function_with_assignment f in
          ok ((id, Iface.Ast.Gfun (Iface.Ast.Internal f')), Some (id, assign))
        | Iface.Ast.Gfun (Iface.Ast.External ef) ->
          ok ((id, Iface.Ast.Gfun (Iface.Ast.External ef)), None)
        | Iface.Ast.Gvar gv -> ok ((id, Iface.Ast.Gvar gv), None))
      p.Iface.Ast.prog_defs
  in
  ok
    ( { p with Iface.Ast.prog_defs = List.map fst defs },
      List.filter_map snd defs )

let transf_program (p : R.program) : L.program Errors.t =
  Errors.map fst (transf_program_with_assignments p)
