(** Register allocation: RTL to LTL (CompCert's [Allocation]).

    Simulation convention: [wt · ext · CL ↠ wt · ext · CL] (Table 3):
    arguments move from abstract values to locations ([CL]), under the
    typing invariant [wt].

    The allocator is a greedy graph coloring over the liveness-based
    interference graph:
    - pseudo-registers live across a call may only receive callee-save
      machine registers (or spill), since the LTL semantics clobbers
      nothing but the convention gives no guarantee on caller-save
      registers across calls;
    - spilled pseudo-registers live in [Local] stack slots; operations on
      spilled values go through reserved scratch registers (r10/rsi for
      integers, x2/x3 for floats), which are excluded from allocation;
    - calls marshal arguments with a parallel-move sequence (cycles are
      broken through a reserved Local slot), mirroring CompCert's
      [Parmov]. *)

open Support
open Support.Errors
open Memory.Mtypes
open Target.Machregs
open Target.Locations
open Target.Conventions
module R = Middle.Rtl
module L = Backend.Ltl
module Op = Middle.Op
module RSet = Middle.Liveness.RSet

(* Scratch registers, reserved (never allocated). *)
let int_scratch1 = R10
let int_scratch2 = SI
let float_scratch1 = X2
let float_scratch2 = X3

let allocatable_int = [ AX; BX; CX; DX; DI; R8; R9; R12; R13; R14; R15 ]
let allocatable_float = [ X0; X1; X4; X5; X6; X7 ]

(* The scan loop's candidate pools, fixed per (class, across-call)
   combination — built once, not re-filtered per interval. Caller-save
   first in the normal pools: callee-saves cost a save/restore. *)
let pool_int_across = List.filter is_callee_save allocatable_int
let pool_float_across = List.filter is_callee_save allocatable_float

let pool_int_normal =
  List.filter (fun m -> not (is_callee_save m)) allocatable_int
  @ pool_int_across

let pool_float_normal =
  List.filter (fun m -> not (is_callee_save m)) allocatable_float
  @ pool_float_across

let is_float_typ = function
  | Tfloat | Tsingle -> true
  | Tint | Tlong | Tany64 -> false

(** {1 Type inference for pseudo-registers} *)

let infer_types (f : R.coq_function) : typ R.Regmap.t =
  (* Dense by pseudo-register index: the fixpoint loop below revisits
     every instruction until no type changes, so each [set] probe must be
     an array read, not a balanced-tree descent allocating a new map. *)
  let nregs = R.max_reg_function f + 1 in
  let types : typ option array = Array.make nregs None in
  let set r t =
    if r >= 0 && r < nregs && types.(r) = None then begin
      types.(r) <- Some t;
      true
    end
    else false
  in
  List.iter2
    (fun r t -> ignore (set r t))
    f.R.fn_params f.R.fn_sig.sig_args;
  (* The instruction list, materialized once: re-walking the code tree on
     every fixpoint round costs more than the rounds themselves. *)
  let instrs = R.Regmap.fold (fun _ i acc -> i :: acc) f.R.fn_code [] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        match i with
        | R.Iop (Op.Omove, [ src ], res, _) -> (
          match (if src >= 0 && src < nregs then types.(src) else None) with
          | Some t -> if set res t then changed := true
          | None -> ())
        | R.Iop (op, _, res, _) -> (
          match Op.type_of_operation op with
          | Some t -> if set res t then changed := true
          | None -> ())
        | R.Iload (chunk, _, _, dst, _) ->
          if set dst (Memory.Memdata.type_of_chunk chunk) then changed := true
        | R.Icall (sg, _, _, res, _) ->
          if set res (proj_sig_res sg) then changed := true
        | _ -> ())
      instrs
  done;
  let m = ref R.Regmap.empty in
  Array.iteri
    (fun r t -> match t with Some t -> m := R.Regmap.add r t !m | None -> ())
    types;
  !m

(** {1 Interference and coloring} *)

type assignment = Lreg of mreg | Lslot of int * typ

let loc_of_assignment = function
  | Lreg r -> R r
  | Lslot (i, t) -> S (Local, i, t)

(** Which allocator runs. [Linear_scan] is the fast path (one pass over
    live intervals); [Graph] is the greedy graph coloring. Both are
    untrusted: [Alloc_check] validates every run, and the driver falls
    back to [Graph] when the validator rejects a linear-scan coloring. *)
type strategy = Linear_scan | Graph

let strategy_name = function Linear_scan -> "linear_scan" | Graph -> "graph"

let strategy_of_string = function
  | "linear-scan" | "linear_scan" | "linear" -> Some Linear_scan
  | "graph" -> Some Graph
  | _ -> None

(** The strategy used when callers don't pick one ([occo --allocator]
    sets this). *)
let default_strategy : strategy ref = ref Linear_scan

(** Test hook: when set, the linear-scan allocator ignores interval
    overlap and hands every pseudo-register the first register of its
    pool — a deliberately broken coloring, used to prove that the
    validator rejects it and the driver falls back to the graph
    allocator. *)
let clobber_linear_scan_for_test = ref false

(* [allocate_graph_with types f]: the graph coloring itself, reusing an
   already-inferred typing (type inference runs once per function, shared
   with code generation). *)
let allocate_graph_with (types : typ R.Regmap.t) (f : R.coq_function) :
    assignment R.Regmap.t * int (* number of Local slots used, incl. temps *) =
  let typ_of r = Option.value (R.Regmap.find_opt r types) ~default:Tlong in
  let live_out = Middle.Liveness.analyze_out f in
  (* Registers live across some call. *)
  let across_call = ref RSet.empty in
  R.Regmap.iter
    (fun n i ->
      match i with
      | R.Icall (_, _, _, res, _) ->
        across_call :=
          RSet.union !across_call (RSet.remove res (live_out n))
      | _ -> ())
    f.R.fn_code;
  (* Interference edges: at each definition, the defined register
     interferes with everything live after it (except itself, and except
     the source of a move). The defined register's neighbor set absorbs
     the whole live-out set with one word-parallel union; only the
     reverse edges are added bit by bit. *)
  let interf : (int, RSet.t) Hashtbl.t = Hashtbl.create 64 in
  let neighbors r = Option.value (Hashtbl.find_opt interf r) ~default:RSet.empty in
  let add_against res out =
    let out = RSet.remove res out in
    Hashtbl.replace interf res (RSet.union (neighbors res) out);
    RSet.iter (fun r -> Hashtbl.replace interf r (RSet.add res (neighbors r))) out
  in
  R.Regmap.iter
    (fun n i ->
      let out = live_out n in
      match i with
      | R.Iop (Op.Omove, [ src ], res, _) ->
        add_against res (RSet.remove src out)
      | R.Iop (_, _, res, _) | R.Iload (_, _, _, res, _) | R.Icall (_, _, _, res, _)
        ->
        add_against res out
      | _ -> ())
    f.R.fn_code;
  (* Parameters are defined simultaneously at entry. *)
  let add_edge a b =
    if a <> b then begin
      Hashtbl.replace interf a (RSet.add b (neighbors a));
      Hashtbl.replace interf b (RSet.add a (neighbors b))
    end
  in
  let rec pairwise = function
    | [] -> ()
    | p :: rest ->
      List.iter (add_edge p) rest;
      pairwise rest
  in
  pairwise f.R.fn_params;
  (* All registers, ordered by decreasing interference degree. *)
  let all_regs =
    RSet.elements
      (R.Regmap.fold
         (fun _ i acc ->
           RSet.union acc (RSet.of_list (R.instr_uses i @ R.instr_defs i)))
         f.R.fn_code
         (RSet.of_list f.R.fn_params))
  in
  (* Precompute degrees once: the sort comparator must not recount a
     neighbor set (O(edges)) on every comparison. *)
  let degrees : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace degrees r
        (RSet.cardinal
           (Option.value (Hashtbl.find_opt interf r) ~default:RSet.empty)))
    all_regs;
  let degree r = Option.value (Hashtbl.find_opt degrees r) ~default:0 in
  let ordered = List.sort (fun a b -> compare (degree b) (degree a)) all_regs in
  let assignment = ref R.Regmap.empty in
  let next_slot = ref 0 in
  List.iter
    (fun r ->
      let t = typ_of r in
      let neighbors =
        Option.value (Hashtbl.find_opt interf r) ~default:RSet.empty
      in
      let used_regs =
        RSet.fold
          (fun r' acc ->
            match R.Regmap.find_opt r' !assignment with
            | Some (Lreg m) -> m :: acc
            | _ -> acc)
          neighbors []
      in
      let candidates =
        let pool = if is_float_typ t then allocatable_float else allocatable_int in
        let pool =
          if RSet.mem r !across_call then List.filter is_callee_save pool
          else
            (* Prefer caller-save registers for values not live across
               calls, keeping callee-saves (which cost a save/restore)
               for when they are needed. *)
            List.filter (fun m -> not (is_callee_save m)) pool
            @ List.filter is_callee_save pool
        in
        List.filter (fun m -> not (List.mem m used_regs)) pool
      in
      let a =
        match candidates with
        | m :: _ -> Lreg m
        | [] ->
          let i = !next_slot in
          incr next_slot;
          Lslot (i, t)
      in
      assignment := R.Regmap.add r a !assignment)
    ordered;
  (!assignment, !next_slot)

(** {2 Linear scan}

    The fast path: one pass over the numbered RTL derives a live
    {e interval} per pseudo-register — the span of instruction positions
    (ascending node order) where it is live or defined — and intervals
    are allocated in start order against a free-register pool,
    spilling on exhaustion. Interval overlap over-approximates
    interference (two registers simultaneously live at a node share that
    node's position), so a coloring that keeps overlapping intervals
    apart satisfies the validator's interference check; the callee-save
    discipline across calls is the same pool restriction the graph
    allocator applies. *)
let allocate_linear_with (types : typ R.Regmap.t) (f : R.coq_function) :
    assignment R.Regmap.t * int =
  let typ_of r = Option.value (R.Regmap.find_opt r types) ~default:Tlong in
  let live_out = Middle.Liveness.analyze_out f in
  let nregs = R.max_reg_function f + 1 in
  (* Interval bounds, indexed by pseudo-register. Parameters are defined
     simultaneously at a virtual entry position -1, so they all overlap
     there and get pairwise-distinct locations. *)
  let istart = Array.make nregs max_int in
  let ifinish = Array.make nregs min_int in
  let extend r p =
    if p < istart.(r) then istart.(r) <- p;
    if p > ifinish.(r) then ifinish.(r) <- p
  in
  List.iter (fun r -> extend r (-1)) f.R.fn_params;
  let max_node =
    match R.Regmap.max_binding_opt f.R.fn_code with Some (n, _) -> n | None -> 0
  in
  (* Definition sites per pseudo-register and the move-source exemption
     per node, collected in the same pass: they turn the node-level
     interference probe below into a scan of one register's (usually
     single) definition site instead of the whole function body. *)
  let def_sites : int list array = Array.make nregs [] in
  let exempt_src = Array.make (max_node + 1) (-1) in
  let across_call = ref RSet.empty in
  let all_moves = ref [] in
  let pos = ref 0 in
  R.Regmap.iter
    (fun n i ->
      let p = !pos in
      incr pos;
      (* live-in = (live-out \ defs) ∪ uses, and defs are extended just
         below — so walking live-out plus the instruction's own uses
         covers both liveness views without a second bitset scan. *)
      RSet.iter (fun r -> extend r p) (live_out n);
      List.iter (fun r -> extend r p) (R.instr_uses i);
      (* Dead definitions still occupy their location at the def point. *)
      List.iter
        (fun r ->
          extend r p;
          def_sites.(r) <- n :: def_sites.(r))
        (R.instr_defs i);
      match i with
      | R.Icall (_, _, _, res, _) ->
        across_call := RSet.union !across_call (RSet.remove res (live_out n))
      | R.Iop (Op.Omove, [ src ], res, _) ->
        exempt_src.(n) <- src;
        if src <> res then all_moves := (res, src) :: !all_moves
      | _ -> ())
    f.R.fn_code;
  (* Calling-convention hints: bias call arguments, call results, return
     values and parameters toward the fixed register their convention
     location prescribes, so the marshalling moves around calls, entry
     and return collapse to elidable self-moves. Best-effort: the hint
     register is taken only when it is legal for the pseudo-register's
     pool (the across-call restriction still excludes caller-saves) and
     free over its whole interval. *)
  let fhint : mreg option array = Array.make nregs None in
  let suggest r m = if fhint.(r) = None then fhint.(r) <- Some m in
  let suggest_args args locs =
    List.iter2
      (fun r l -> match l with R m -> suggest r m | S _ -> ())
      args locs
  in
  R.Regmap.iter
    (fun _ i ->
      match i with
      | R.Icall (sg, _, args, res, _) ->
        suggest res (loc_result sg);
        suggest_args args (loc_arguments sg)
      | R.Itailcall (sg, _, args) -> suggest_args args (loc_arguments sg)
      | R.Ireturn (Some r) -> suggest r (loc_result f.R.fn_sig)
      | _ -> ())
    f.R.fn_code;
  suggest_args f.R.fn_params (loc_arguments f.R.fn_sig);
  (* Move-coalescing hints: for every move [res := src], each side is
     hinted toward the other's register, whichever is allocated first.
     Whether the shared register is actually taken is decided at
     allocation time by {!interferes} below. *)
  let hint = Array.make nregs (-1) in
  let rhint = Array.make nregs (-1) in
  List.iter
    (fun (res, src) ->
      hint.(res) <- src;
      rhint.(src) <- res)
    !all_moves;
  (* [a] and [b] interfere iff some definition of one happens while the
     other is live-out (the graph allocator's rule, including its move
     exemption: a move's destination does not interfere with its
     source), or both are parameters (defined simultaneously at entry).
     This is node-level truth, strictly finer than interval overlap: a
     move destination whose interval merely touches or even encloses the
     source's can still share its register. *)
  let interferes a b =
    (List.mem a f.R.fn_params && List.mem b f.R.fn_params)
    || List.exists
         (fun n -> b <> exempt_src.(n) && RSet.mem b (live_out n))
         def_sites.(a)
    || List.exists
         (fun n -> a <> exempt_src.(n) && RSet.mem a (live_out n))
         def_sites.(b)
  in
  let intervals = ref [] in
  for r = nregs - 1 downto 0 do
    if istart.(r) <= ifinish.(r) then intervals := r :: !intervals
  done;
  let intervals =
    List.stable_sort
      (fun a b ->
        let c = compare istart.(a) istart.(b) in
        if c <> 0 then c else compare ifinish.(a) ifinish.(b))
      !intervals
  in
  (* The coloring under construction, dense by pseudo-register index;
     the external [Regmap] view is built once at the end. *)
  let assign_arr : assignment option array = Array.make nregs None in
  let next_slot = ref 0 in
  (* Active intervals holding a machine register, sorted by increasing
     finish; [reg_used] mirrors their occupancy for O(pool) probes. Each
     entry remembers its pseudo-register so a coalescing hint can
     recognize (and take over from) the move source it targets. *)
  let active : (int * int * mreg) list ref = ref [] in
  let reg_used = Array.make num_mregs false in
  (* Coalesced intervals can co-hold one register, so releasing it on
     expiry must wait until no remaining active interval holds it. *)
  let expire p =
    let rec go = function
      | (fin, _, m) :: rest when fin < p ->
        let rest = go rest in
        if not (List.exists (fun (_, _, m') -> mreg_index m' = mreg_index m) rest)
        then reg_used.(mreg_index m) <- false;
        rest
      | l -> l
    in
    active := go !active
  in
  let rec insert ((fe, _, _) as entry) = function
    | [] -> [ entry ]
    | (fin, _, _) :: _ as l when fe <= fin -> entry :: l
    | e :: rest -> e :: insert entry rest
  in
  (* A hint register is usable when every active interval currently
     holding it is provably non-interfering with [r] — in particular
     when it is plain free. [r] then joins as a co-holder: the register
     stays occupied from every other interval's point of view, while the
     coalesced intervals share it and the moves between them lower to
     deletable self-moves. *)
  let co_holdable r m =
    List.for_all
      (fun (_, v, m') -> mreg_index m' <> mreg_index m || not (interferes v r))
      !active
  in
  let try_hint r pool =
    let usable m = List.memq m pool && co_holdable r m in
    let from_vreg s =
      if s < 0 then None
      else
        match assign_arr.(s) with
        | Some (Lreg m) when usable m -> Some m
        | _ -> None
    in
    match from_vreg hint.(r) with
    | Some m -> Some m
    | None -> (
      match fhint.(r) with
      | Some m when usable m -> Some m
      | _ -> from_vreg rhint.(r))
  in
  List.iter
    (fun r ->
      expire istart.(r);
      let t = typ_of r in
      let pool =
        match (is_float_typ t, RSet.mem r !across_call) with
        | true, true -> pool_float_across
        | true, false -> pool_float_normal
        | false, true -> pool_int_across
        | false, false -> pool_int_normal
      in
      let candidate =
        if !clobber_linear_scan_for_test then List.nth_opt pool 0
        else
          match try_hint r pool with
          | Some m -> Some m
          | None -> List.find_opt (fun m -> not reg_used.(mreg_index m)) pool
      in
      let a =
        match candidate with
        | Some m ->
          if not !clobber_linear_scan_for_test then begin
            reg_used.(mreg_index m) <- true;
            active := insert (ifinish.(r), r, m) !active
          end;
          Lreg m
        | None ->
          let i = !next_slot in
          incr next_slot;
          Lslot (i, t)
      in
      assign_arr.(r) <- Some a)
    intervals;
  let assignment = ref R.Regmap.empty in
  Array.iteri
    (fun r a ->
      match a with
      | Some a -> assignment := R.Regmap.add r a !assignment
      | None -> ())
    assign_arr;
  (!assignment, !next_slot)

let allocate_for (strat : strategy) (types : typ R.Regmap.t)
    (f : R.coq_function) : assignment R.Regmap.t * int =
  match strat with
  | Linear_scan -> allocate_linear_with types f
  | Graph -> allocate_graph_with types f

let allocate_with (types : typ R.Regmap.t) (f : R.coq_function) :
    assignment R.Regmap.t * int =
  allocate_for !default_strategy types f

let allocate (f : R.coq_function) : assignment R.Regmap.t * int =
  allocate_with (infer_types f) f

(** {1 Parallel moves}

    Sources and destinations are locations; all destinations are
    distinct. Cycles are broken through a reserved [Local] slot. *)

(* Each move carries the machine type of the datum it transfers, so that
   the parking slot used for cycle breaking normalizes correctly. *)
let compile_parallel_move ~(temp_slot : int) (moves : (loc * loc * typ) list) :
    (loc * loc) list =
  let n = List.length moves in
  let src = Array.of_list (List.map (fun (s, _, _) -> s) moves) in
  let dst = Array.of_list (List.map (fun (_, d, _) -> d) moves) in
  let tys = Array.of_list (List.map (fun (_, _, t) -> t) moves) in
  let status = Array.make n `To_move in
  let out = ref [] in
  let emit s d = if not (loc_equal s d) then out := (s, d) :: !out in
  let rec move_one i =
    status.(i) <- `Being_moved;
    for j = 0 to n - 1 do
      if j <> i && locs_overlap src.(j) dst.(i) then begin
        match status.(j) with
        | `To_move -> move_one j
        | `Being_moved ->
          (* Cycle: park j's source in the temp slot, typed by the datum. *)
          let tmp = S (Local, temp_slot, tys.(j)) in
          emit src.(j) tmp;
          src.(j) <- tmp
        | `Moved -> ()
      end
    done;
    emit src.(i) dst.(i);
    status.(i) <- `Moved
  in
  for i = 0 to n - 1 do
    if status.(i) = `To_move then
      if loc_equal src.(i) dst.(i) then status.(i) <- `Moved else move_one i
  done;
  List.rev !out

(** {1 Code generation} *)

type gen_state = {
  mutable code : L.code;
  mutable next_node : int;
}

(* Emit a chain of instructions ending at [cont]; returns the entry. Each
   element is a function from successor node to instruction. *)
let emit_chain (st : gen_state) (builders : (L.node -> L.instruction) list)
    (cont : L.node) : L.node =
  List.fold_right
    (fun mk cont ->
      let n = st.next_node in
      st.next_node <- n + 1;
      st.code <- L.Nodemap.add n (mk cont) st.code;
      n)
    builders cont

let scratch_for t which =
  if is_float_typ t then (if which = 0 then float_scratch1 else float_scratch2)
  else if which = 0 then int_scratch1
  else int_scratch2

(* Instructions realizing a single move between locations. A move whose
   endpoints coincide — the normal outcome of coalescing — realizes as
   nothing at all. *)
let move_loc (src : loc) (dst : loc) : (L.node -> L.instruction) list =
  if loc_equal src dst then []
  else
  match (src, dst) with
  | R r1, R r2 -> [ (fun n -> L.Lop (Op.Omove, [ r1 ], r2, n)) ]
  | R r1, S (k, o, t) -> [ (fun n -> L.Lsetstack (r1, k, o, t, n)) ]
  | S (k, o, t), R r2 -> [ (fun n -> L.Lgetstack (k, o, t, r2, n)) ]
  | S (k1, o1, t1), S (k2, o2, t2) ->
    let sc = scratch_for t1 0 in
    [
      (fun n -> L.Lgetstack (k1, o1, t1, sc, n));
      (fun n -> L.Lsetstack (sc, k2, o2, t2, n));
    ]

let moves_code moves = List.concat_map (fun (s, d) -> move_loc s d) moves

(* The assignment as a dense array keyed on pseudo-register index: code
   generation probes it once per operand, so each probe is an array read
   rather than a balanced-tree descent. *)
let aget (aarr : assignment option array) r =
  if r >= 0 && r < Array.length aarr then aarr.(r) else None

(* Read the pseudo-registers [args] into machine registers, spilled ones
   through scratches. Returns (prefix builders, machine registers). *)
let read_args (aarr : assignment option array) (typ_of : R.reg -> typ)
    (args : R.reg list) : (L.node -> L.instruction) list * mreg list =
  let next_scratch = ref 0 in
  let prefix = ref [] in
  let regs =
    List.map
      (fun r ->
        match aget aarr r with
        | Some (Lreg m) -> m
        | Some (Lslot (i, t)) ->
          let sc = scratch_for t !next_scratch in
          incr next_scratch;
          prefix := !prefix @ [ (fun n -> L.Lgetstack (Local, i, t, sc, n)) ];
          sc
        | None ->
          (* Never-assigned register: undefined value; read a scratch. *)
          scratch_for (typ_of r) 0)
      args
  in
  (!prefix, regs)

(* Write machine register result into the location of [res]. Returns the
   destination machine register for the op and suffix builders. *)
let write_res (aarr : assignment option array) (typ_of : R.reg -> typ)
    (res : R.reg) : mreg * (L.node -> L.instruction) list =
  match aget aarr res with
  | Some (Lreg m) -> (m, [])
  | Some (Lslot (i, t)) ->
    let sc = scratch_for t 0 in
    (sc, [ (fun n -> L.Lsetstack (sc, Local, i, t, n)) ])
  | None -> (scratch_for (typ_of res) 0, [])

let loc_of (aarr : assignment option array) (typ_of : R.reg -> typ) (r : R.reg) :
    loc =
  match aget aarr r with
  | Some a -> loc_of_assignment a
  | None -> R (scratch_for (typ_of r) 0)

(* Translate one function; also returns the coloring used, so the
   validator can check the allocator's actual (untrusted) output instead
   of re-deriving it. *)
let transf_function_with_assignment ?strategy (f : R.coq_function) :
    (L.coq_function * assignment R.Regmap.t) Errors.t =
  let strat = Option.value strategy ~default:!default_strategy in
  let types = infer_types f in
  let assign, nslots = allocate_for strat types f in
  (* Dense views of the typing and the coloring for the translation's
     per-operand probes. *)
  let nregs =
    let m = R.max_reg_function f in
    let m =
      match R.Regmap.max_binding_opt assign with
      | Some (r, _) -> max m r
      | None -> m
    in
    m + 1
  in
  let tarr = Array.make nregs Tlong in
  R.Regmap.iter (fun r t -> if r < nregs then tarr.(r) <- t) types;
  let typ_of r = if r >= 0 && r < nregs then tarr.(r) else Tlong in
  let aarr : assignment option array = Array.make nregs None in
  R.Regmap.iter (fun r a -> if r < nregs then aarr.(r) <- Some a) assign;
  let temp_slot = nslots in
  let callee_slot = nslots + 1 in
  let st = { code = L.Nodemap.empty; next_node = R.max_node f + 1 } in
  let transl_node (i : R.instruction) : L.instruction =
    (* The first instruction of the expansion occupies node [n]; the rest
       chain through fresh nodes. We build the tail first. *)
    let with_chain (builders : (L.node -> L.instruction) list) (cont : L.node) :
        L.instruction =
      match builders with
      | [] -> L.Lnop cont
      | first :: rest -> first (emit_chain st rest cont)
    in
    match i with
    | R.Inop n' -> L.Lnop n'
    | R.Iop (Op.Omove, [ src ], res, n') ->
      (* When coalescing gave both sides the same location, [move_loc]
         returns no builders and the move lowers to a bare [Lnop], which
         the validator accepts (the copy equation is trivially
         satisfied) and linearization elides on fall-through. *)
      let s = loc_of aarr typ_of src and d = loc_of aarr typ_of res in
      with_chain (move_loc s d) n'
    | R.Iop (op, args, res, n') ->
      let prefix, margs = read_args aarr typ_of args in
      let mres, suffix = write_res aarr typ_of res in
      with_chain
        (prefix @ [ (fun n -> L.Lop (op, margs, mres, n)) ] @ suffix)
        n'
    | R.Iload (chunk, addr, args, dst, n') ->
      let prefix, margs = read_args aarr typ_of args in
      let mres, suffix = write_res aarr typ_of dst in
      with_chain
        (prefix @ [ (fun n -> L.Lload (chunk, addr, margs, mres, n)) ] @ suffix)
        n'
    | R.Istore (chunk, addr, args, src, n') -> (
      let prefix, margs = read_args aarr typ_of args in
      match aget aarr src with
      | Some (Lreg msrc) ->
        with_chain
          (prefix @ [ (fun n -> L.Lstore (chunk, addr, margs, msrc, n)) ])
          n'
      | _ ->
        (* Spilled source: collapse the address into the first integer
           scratch, freeing the second for the stored value. *)
        let t = typ_of src in
        let ssrc = if is_float_typ t then float_scratch1 else int_scratch2 in
        let sloc =
          match aget aarr src with
          | Some (Lslot (i, st')) -> Some (i, st')
          | _ -> None
        in
        let load_src n =
          match sloc with
          | Some (i, st') -> L.Lgetstack (Local, i, st', ssrc, n)
          | None -> L.Lop (Op.Omove, [ ssrc ], ssrc, n)
        in
        with_chain
          (prefix
          @ [
              (fun n -> L.Lop (Op.Olea addr, margs, int_scratch1, n));
              load_src;
              (fun n ->
                L.Lstore (chunk, Op.Aindexed 0, [ int_scratch1 ], ssrc, n));
            ])
          n')
    | R.Icall (sg, ros, args, res, n') ->
      let arg_locs = loc_arguments sg in
      let moves =
        List.map2
          (fun r l -> (loc_of aarr typ_of r, l, typ_of r))
          args arg_locs
      in
      let par = compile_parallel_move ~temp_slot moves in
      let ros', ros_park, ros_fetch =
        match ros with
        | R.Rsymbol id -> (L.Rsymbol id, [], [])
        | R.Rreg r ->
          (* Park the function value in a dedicated Local slot before the
             argument moves (which may clobber both its register and the
             scratches), and fetch it just before the call. *)
          ( L.Rreg int_scratch1,
            move_loc (loc_of aarr typ_of r) (S (Local, callee_slot, Tlong)),
            move_loc (S (Local, callee_slot, Tlong)) (R int_scratch1) )
      in
      let res_loc = loc_of aarr typ_of res in
      let result_moves = move_loc (R (loc_result sg)) res_loc in
      with_chain
        (ros_park @ moves_code par @ ros_fetch
        @ [ (fun n -> L.Lcall (sg, ros', n)) ]
        @ result_moves)
        n'
    | R.Itailcall (sg, ros, args) ->
      let arg_locs = loc_arguments sg in
      let moves =
        List.map2
          (fun r l -> (loc_of aarr typ_of r, l, typ_of r))
          args arg_locs
      in
      let par = compile_parallel_move ~temp_slot moves in
      let ros', ros_prefix =
        match ros with
        | R.Rsymbol id -> (L.Rsymbol id, [])
        | R.Rreg r ->
          ( L.Rreg int_scratch1,
            move_loc (loc_of aarr typ_of r) (R int_scratch1) )
      in
      (match ros_prefix @ moves_code par with
      | [] -> L.Ltailcall (sg, ros')
      | first :: rest ->
        first (emit_chain st rest (emit_chain st [ (fun _ -> L.Ltailcall (sg, ros')) ] 0)))
    | R.Icond (cond, args, n1, n2) -> (
      let prefix, margs = read_args aarr typ_of args in
      match prefix with
      | [] -> L.Lcond (cond, margs, n1, n2)
      | first :: rest ->
        first
          (emit_chain st rest
             (emit_chain st [ (fun _ -> L.Lcond (cond, margs, n1, n2)) ] 0)))
    | R.Ireturn optr -> (
      let moves =
        match optr with
        | Some r -> move_loc (loc_of aarr typ_of r) (R (loc_result f.R.fn_sig))
        | None -> []
      in
      match moves with
      | [] -> L.Lreturn
      | first :: rest -> first (emit_chain st rest (emit_chain st [ (fun _ -> L.Lreturn) ] 0)))
  in
  (* Translate each RTL node; expansions allocate fresh LTL nodes. *)
  R.Regmap.iter
    (fun n i ->
      (* Evaluate the expansion first: it allocates fresh chain nodes in
         [st.code], which the final add must not discard. *)
      let ins = transl_node i in
      st.code <- L.Nodemap.add n ins st.code)
    f.R.fn_code;
  (* Entry: marshal incoming arguments from calling-convention locations
     (registers and Incoming slots) to the parameters' locations. *)
  let entry_moves =
    let arg_locs = loc_arguments f.R.fn_sig in
    let incoming =
      List.map
        (function S (Outgoing, o, t) -> S (Incoming, o, t) | l -> l)
        arg_locs
    in
    List.map2
      (fun l p -> (l, loc_of aarr typ_of p, typ_of p))
      incoming f.R.fn_params
  in
  let par = compile_parallel_move ~temp_slot entry_moves in
  let entry = emit_chain st (moves_code par) f.R.fn_entrypoint in
  ok
    ( {
        L.fn_sig = f.R.fn_sig;
        fn_stacksize = f.R.fn_stacksize;
        fn_code = st.code;
        fn_entrypoint = entry;
      },
      assign )

let transf_function (f : R.coq_function) : L.coq_function Errors.t =
  Errors.map fst (transf_function_with_assignment f)

(** Translate a whole program, returning alongside the LTL the coloring
    the allocator chose for each internal function — the untrusted input
    [Alloc_check.validate_program] validates. [strategy] picks the
    allocator (default {!default_strategy}). *)
let transf_program_with_assignments ?strategy (p : R.program) :
    (L.program * (Support.Ident.t * assignment R.Regmap.t) list) Errors.t =
  let open Errors in
  let* defs =
    map_list
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal f) ->
          let* f', assign = transf_function_with_assignment ?strategy f in
          ok ((id, Iface.Ast.Gfun (Iface.Ast.Internal f')), Some (id, assign))
        | Iface.Ast.Gfun (Iface.Ast.External ef) ->
          ok ((id, Iface.Ast.Gfun (Iface.Ast.External ef)), None)
        | Iface.Ast.Gvar gv -> ok ((id, Iface.Ast.Gvar gv), None))
      p.Iface.Ast.prog_defs
  in
  ok
    ( { p with Iface.Ast.prog_defs = List.map fst defs },
      List.filter_map snd defs )

let transf_program (p : R.program) : L.program Errors.t =
  Errors.map fst (transf_program_with_assignments p)
