(** Common subexpression elimination by local value numbering (a
    restriction of CompCert's [CSE] to extended basic blocks).

    Simulation convention: [va·ext ↠ va·ext] (Table 3).

    Within each extended basic block (maximal single-predecessor chain),
    pure operations already computed are replaced by moves from the
    register holding the previous result. Loads are reused until a store
    or call invalidates memory equations. *)

open Support.Errors
module Errors = Support.Errors
module R = Middle.Rtl
module Op = Middle.Op

(* Value-numbering keys: the right-hand side over the value numbers of
   its arguments, compared structurally. Operations and addressing modes
   are first-order data, so the polymorphic compare is exact — and far
   cheaper than serializing each instruction into a string key. *)
type rhs =
  | Rop of Op.operation * int list
  | Rload of Memory.Memdata.chunk * Op.addressing * int list

module RhsMap = Map.Make (struct
  type t = rhs

  let compare = Stdlib.compare
end)

type numbering = {
  num_of_reg : int R.Regmap.t;  (** register → value number *)
  reg_of_rhs : (R.reg * int) RhsMap.t;  (** available rhs → holding reg, vn of reg *)
  next_vn : int;
}

let empty_numbering = { num_of_reg = R.Regmap.empty; reg_of_rhs = RhsMap.empty; next_vn = 1 }

let vn_of (n : numbering) r =
  match R.Regmap.find_opt r n.num_of_reg with Some v -> (v, n) | None ->
    (* Assign a fresh value number lazily. *)
    (n.next_vn, { n with num_of_reg = R.Regmap.add r n.next_vn n.num_of_reg;
                  next_vn = n.next_vn + 1 })

let vns_of n args =
  List.fold_right
    (fun r (vs, n) ->
      let v, n = vn_of n r in
      (v :: vs, n))
    args ([], n)

let rhs_key_op (op : Op.operation) (vns : int list) = Rop (op, vns)
let rhs_key_load chunk addr (vns : int list) = Rload (chunk, addr, vns)

(* Operations whose result depends on more than their arguments cannot be
   numbered. *)
let op_is_pure = function
  | Op.Omove -> false (* handled as an alias, not an equation *)
  | _ -> true

(* Set [res := fresh vn] after an opaque definition. *)
let set_unknown n res =
  { n with num_of_reg = R.Regmap.add res n.next_vn n.num_of_reg; next_vn = n.next_vn + 1 }

let set_known n res vn = { n with num_of_reg = R.Regmap.add res vn n.num_of_reg }

let kill_loads n =
  {
    n with
    reg_of_rhs =
      RhsMap.filter (fun k _ -> match k with Rload _ -> false | Rop _ -> true)
        n.reg_of_rhs;
  }

(* Predecessor counts, to delimit extended basic blocks. *)
let predecessor_counts (f : R.coq_function) : (int, int) Hashtbl.t =
  let preds = Hashtbl.create 64 in
  R.Regmap.iter
    (fun _ i ->
      List.iter
        (fun s -> Hashtbl.replace preds s (1 + Option.value (Hashtbl.find_opt preds s) ~default:0))
        (R.successors_instr i))
    f.R.fn_code;
  Hashtbl.replace preds f.R.fn_entrypoint
    (1 + Option.value (Hashtbl.find_opt preds f.R.fn_entrypoint) ~default:0);
  preds

let transf_function (f : R.coq_function) : R.coq_function Errors.t =
  let preds = predecessor_counts f in
  let code = ref f.R.fn_code in
  let visited = Hashtbl.create 64 in
  (* Walk extended basic blocks carrying the numbering; restart with the
     empty numbering at join points. *)
  let rec walk n (num : numbering) =
    if Hashtbl.mem visited n then ()
    else begin
      Hashtbl.add visited n ();
      let num =
        if Option.value (Hashtbl.find_opt preds n) ~default:0 > 1 then
          empty_numbering
        else num
      in
      match R.Regmap.find_opt n !code with
      | None -> ()
      | Some i -> (
        match i with
        | R.Iop (Op.Omove, [ src ], res, n') ->
          let v, num = vn_of num src in
          walk n' (set_known num res v)
        | R.Iop (op, args, res, n') when op_is_pure op ->
          let vns, num = vns_of num args in
          let key = rhs_key_op op vns in
          (match RhsMap.find_opt key num.reg_of_rhs with
          | Some (r0, vn0)
            when R.Regmap.find_opt r0 num.num_of_reg = Some vn0 ->
            (* Previous result still available: replace by a move. *)
            code := R.Regmap.add n (R.Iop (Op.Omove, [ r0 ], res, n')) !code;
            walk n' (set_known num res vn0)
          | _ ->
            let num = set_unknown num res in
            let vn, num = vn_of num res in
            let num =
              { num with reg_of_rhs = RhsMap.add key (res, vn) num.reg_of_rhs }
            in
            walk n' num)
        | R.Iop (_, _, res, n') -> walk n' (set_unknown num res)
        | R.Iload (chunk, addr, args, dst, n') ->
          let vns, num = vns_of num args in
          let key = rhs_key_load chunk addr vns in
          (match RhsMap.find_opt key num.reg_of_rhs with
          | Some (r0, vn0)
            when R.Regmap.find_opt r0 num.num_of_reg = Some vn0 ->
            code := R.Regmap.add n (R.Iop (Op.Omove, [ r0 ], dst, n')) !code;
            walk n' (set_known num dst vn0)
          | _ ->
            let num = set_unknown num dst in
            let vn, num = vn_of num dst in
            let num =
              { num with reg_of_rhs = RhsMap.add key (dst, vn) num.reg_of_rhs }
            in
            walk n' num)
        | R.Istore (_, _, _, _, n') -> walk n' (kill_loads num)
        | R.Icall (_, _, _, res, n') ->
          (* Calls may change memory arbitrarily (including allocation
             and deallocation, which affect pointer-comparison results):
             drop all equations. *)
          walk n' (set_unknown empty_numbering res)
        | R.Inop n' -> walk n' num
        | R.Icond (_, _, n1, n2) ->
          walk n1 num;
          walk n2 num
        | R.Itailcall _ | R.Ireturn _ -> ())
    end
  in
  walk f.R.fn_entrypoint empty_numbering;
  ok { f with R.fn_code = !code }

let transf_program (p : R.program) : R.program Errors.t =
  Iface.Ast.transform_program transf_function p
