(** Translation validation for register allocation.

    CompCert validates its (untrusted, heuristic) register allocator a
    posteriori; this module plays the same role for [Allocation]. Given
    the RTL function, the allocator's assignment and the produced LTL
    code, two independent checks are performed:

    1. {b Assignment well-formedness} ([check_assignment]): liveness and
       interference are {e recomputed here} and the coloring is checked
       against them — interfering pseudo-registers get non-overlapping
       locations, values live across calls avoid caller-save registers,
       reserved scratch registers are never assigned.

    2. {b Code correspondence} ([check_code]): for every RTL instruction,
       the corresponding LTL expansion (the chain of fresh nodes up to
       the next RTL boundary node) is executed {e symbolically} over an
       abstract map from locations to value tags. A tag [Tentry r] means
       "the value pseudo-register [r] had at instruction entry"; [Tdef]
       is the value defined by this instruction. The expansion must
       apply the RTL operation to the right tags, route the defined value
       into the result's location, place [Tentry]-tagged arguments into
       the calling convention's locations at calls, invalidate
       caller-save locations across calls, and leave every live-out
       pseudo-register's current value in its assigned location at each
       boundary.

    [validate] runs both; a buggy allocator change is caught at compile
    time rather than at run time. *)

open Support.Errors
module Errors = Support.Errors
open Memory.Mtypes
open Target.Machregs
open Target.Locations
open Target.Conventions
module R = Middle.Rtl
module L = Backend.Ltl
module Op = Middle.Op
module RSet = Middle.Liveness.RSet

open Allocation (* the [assignment] type *)

let loc_of = function Lreg r -> R r | Lslot (i, t) -> S (Local, i, t)

let scratches = [ R10; SI; X2; X3 ]

(** {1 Check 1: the coloring} *)

(* Early exit for the hot validation loops: the Errors monad threads a
   closure per (definition, live register) pair, which dominates the
   validator's profile on large functions; a local exception keeps the
   loops allocation-free on the success path. *)
exception Check_fail of string

let fail fmt = Format.kasprintf (fun s -> raise (Check_fail s)) fmt

let check_assignment_with ~(live_out : int -> RSet.t) (f : R.coq_function)
    (assign : assignment R.Regmap.t) : unit Errors.t =
  (* The assignment is consulted once per (definition, live register)
     pair below: cache it in a hash table so each probe is O(1) instead
     of a balanced-tree descent. *)
  let locs : (int, loc) Hashtbl.t = Hashtbl.create 64 in
  R.Regmap.iter (fun r a -> Hashtbl.replace locs r (loc_of a)) assign;
  let loc r = Hashtbl.find_opt locs r in
  try
    (* Reserved scratch registers must not be allocated. *)
    R.Regmap.iter
      (fun r a ->
        match a with
        | Lreg m when List.mem m scratches ->
          fail "pseudo-register x%d assigned the scratch register %s" r
            (mreg_name m)
        | _ -> ())
      assign;
    (* Interference: at every definition point, the defined register's
       location must not overlap any live-out register's location (except
       the moved-from register of a move). *)
    R.Regmap.iter
      (fun n i ->
        match R.instr_defs i with
        | [] -> ()
        | defs ->
          let out = live_out n in
          (* Pseudo-registers are >= 1, so -1 never exempts anything. *)
          let exempt =
            match i with R.Iop (Op.Omove, [ src ], _, _) -> src | _ -> -1
          in
          List.iter
            (fun d ->
              match loc d with
              | None -> ()
              | Some ld ->
                RSet.iter
                  (fun r ->
                    if r <> d && r <> exempt then
                      match loc r with
                      | Some lr when locs_overlap ld lr ->
                        fail
                          "interference violated at node %d: x%d and x%d \
                           share %s"
                          n d r
                          (Format.asprintf "%a" pp_loc ld)
                      | _ -> ())
                  out)
            defs)
      f.R.fn_code;
    (* Values live across calls must not sit in caller-save registers. *)
    R.Regmap.iter
      (fun n i ->
        match i with
        | R.Icall (_, _, _, res, _) ->
          RSet.iter
            (fun r ->
              if r <> res then
                match R.Regmap.find_opt r assign with
                | Some (Lreg m) when not (is_callee_save m) ->
                  fail
                    "x%d is live across the call at node %d but assigned the \
                     caller-save register %s"
                    r n (mreg_name m)
                | _ -> ())
            (live_out n)
        | _ -> ())
      f.R.fn_code;
    ok ()
  with Check_fail e -> Error e

let check_assignment (f : R.coq_function) (assign : assignment R.Regmap.t) :
    unit Errors.t =
  check_assignment_with ~live_out:(Middle.Liveness.analyze_out f) f assign

(** {1 Check 2: the code} *)

type tag =
  | Tentry of R.reg  (** the value [r] had at instruction entry *)
  | Tdef  (** the value defined by this instruction *)
  | Topaque

(* The abstract state is a set of equations [(l, t)]: location [l] holds
   the value denoted by tag [t]. One location may satisfy several
   equations at once — this is exactly what validates move coalescing,
   where several pseudo-registers with provably equal values share a
   machine register.

   Equations are bucketed by {e storage class} — the unit of overlap: a
   machine register, or a (kind, word) slot cell (slots are one word wide
   on this target, [typ_words t = 1], so two slots overlap exactly when
   kind and word coincide). Writing a location invalidates precisely its
   bucket, and [holds]/[move] are one map lookup instead of a scan of
   every equation; the buckets themselves stay tiny (the few coalesced
   tags sharing one cell). *)
module AbsState = struct
  module KMap = Map.Make (Int)

  let key_of = function
    | R m -> mreg_index m
    | S (k, o, _) ->
      num_mregs
      + (3 * o)
      + (match k with Local -> 0 | Incoming -> 1 | Outgoing -> 2)

  type t = (loc * tag) list KMap.t

  let empty : t = KMap.empty

  let holds l tag (a : t) =
    match KMap.find_opt (key_of l) a with
    | None -> false
    | Some eqs -> List.exists (fun (l', t') -> loc_equal l l' && t' = tag) eqs

  let tags_of l (a : t) =
    match KMap.find_opt (key_of l) a with
    | None -> []
    | Some eqs ->
      List.filter_map (fun (l', t) -> if loc_equal l l' then Some t else None) eqs

  (* Writing [l] invalidates every equation on an overlapping location —
     exactly the bucket of [l]'s storage class. *)
  let assign_tags l tags (a : t) : t =
    match tags with
    | [] -> KMap.remove (key_of l) a
    | _ -> KMap.add (key_of l) (List.map (fun t -> (l, t)) tags) a

  let set l tag a = assign_tags l [ tag ] a

  (* Record an equation without invalidating others (used only when
     building the initial state, whose equations hold simultaneously). *)
  let add l tag (a : t) : t =
    KMap.update (key_of l)
      (fun eqs -> Some ((l, tag) :: Option.value eqs ~default:[]))
      a

  (* Copy: the destination receives every equation of the source. *)
  let move ~src ~dst (a : t) : t = assign_tags dst (tags_of src a) a

  (* Every equation in a bucket shares its storage class, so the first
     location decides the bucket's fate. *)
  let kill_caller_save (a : t) : t =
    KMap.filter
      (fun _ eqs ->
        match eqs with
        | (R m, _) :: _ -> is_callee_save m
        | (S (Local, _, _), _) :: _ -> true
        | (S ((Incoming | Outgoing), _, _), _) :: _ -> false
        | [] -> false)
      a
end

(* What each live pseudo-register's value is after the instruction.
   [defs] is the precomputed [R.instr_defs instr], so per-register
   queries allocate nothing. *)
let out_tag (instr : R.instruction) (defs : R.reg list) (r : R.reg) : tag =
  match instr with
  | R.Iop (Op.Omove, [ src ], dst, _) when r = dst -> Tentry src
  | _ -> if List.mem r defs then Tdef else Tentry r

let boundary (f : R.coq_function) n = R.Regmap.mem n f.R.fn_code

(* [ctx] describes the boundary for error messages; it is a thunk so the
   success path formats nothing. *)
let check_boundary (assign : assignment R.Regmap.t) (instr : R.instruction)
    (live : RSet.t) (a : AbsState.t) ~(ctx : unit -> string) : unit =
  let defs = R.instr_defs instr in
  RSet.iter
    (fun r ->
      match R.Regmap.find_opt r assign with
      | None -> fail "%s: live pseudo-register x%d has no location" (ctx ()) r
      | Some loc ->
        if not (AbsState.holds (loc_of loc) (out_tag instr defs r) a) then
          fail "%s: x%d is not in its location %a" (ctx ()) r pp_loc
            (loc_of loc))
    live

let args_hold (a : AbsState.t) (margs : mreg list) (rargs : R.reg list) : bool =
  List.length margs = List.length rargs
  && List.for_all2 (fun m r -> AbsState.holds (R m) (Tentry r) a) margs rargs

(* Symbolically execute the LTL chain from [n] until boundary nodes. *)
let rec walk (f : R.coq_function) (ltl : L.coq_function) (instr : R.instruction)
    (n : L.node) (a : AbsState.t) ~(performed : bool) ~(fuel : int) :
    (L.node * AbsState.t) list Errors.t =
  if fuel = 0 then error "expansion does not terminate"
  else
    match L.Nodemap.find_opt n ltl.L.fn_code with
    | None -> error "missing LTL node %d" n
    | Some li -> (
      let continue n' a ~performed =
        if boundary f n' then
          if performed then ok [ (n', a) ]
          else
            error "expansion reaches node %d without performing its instruction"
              n'
        else walk f ltl instr n' a ~performed ~fuel:(fuel - 1)
      in
      match (li, instr) with
      (* The instruction-specific step. *)
      | L.Lnop n', R.Inop _ -> continue n' a ~performed:true
      | L.Lop (op, margs, res, n'), R.Iop (rop, rargs, _, _)
        when op = rop && op <> Op.Omove && not performed ->
        if args_hold a margs rargs then
          continue n' (AbsState.set (R res) Tdef a) ~performed:true
        else error "operation arguments mismatched at LTL node %d" n
      | L.Lload (chunk, addr, margs, dst, n'), R.Iload (rchunk, raddr, rargs, _, _)
        when chunk = rchunk && addr = raddr && not performed ->
        if args_hold a margs rargs then
          continue n' (AbsState.set (R dst) Tdef a) ~performed:true
        else error "load arguments mismatched at LTL node %d" n
      | L.Lstore (chunk, addr, margs, src, n'), R.Istore (rchunk, raddr, rargs, rsrc, _)
        when chunk = rchunk && not performed ->
        (* Either the direct form (same addressing, args and source hold
           the RTL values) or the collapsed form (address materialized by
           a preceding [Olea], source reloaded through a scratch). *)
        let direct =
          addr = raddr
          && args_hold a margs rargs
          && AbsState.holds (R src) (Tentry rsrc) a
        in
        let collapsed =
          addr = Op.Aindexed 0 && AbsState.holds (R src) (Tentry rsrc) a
        in
        if direct || collapsed then continue n' a ~performed:true
        else error "store operands mismatched at LTL node %d" n
      | L.Lop (Op.Olea addr, margs, res, n'), R.Istore (_, raddr, rargs, _, _)
        when addr = raddr && not performed ->
        (* Address materialization for the collapsed store form. *)
        if args_hold a margs rargs then
          continue n' (AbsState.set (R res) Topaque a) ~performed
        else error "lea arguments mismatched at LTL node %d" n
      | L.Lcond (cond, margs, n1, n2), R.Icond (rcond, rargs, rn1, rn2)
        when cond = rcond ->
        if not (args_hold a margs rargs) then
          error "condition arguments mismatched at LTL node %d" n
        else if n1 <> rn1 || n2 <> rn2 then
          error "condition targets changed at LTL node %d" n
        else ok [ (n1, a); (n2, a) ]
      | L.Lcall (sg, _, n'), R.Icall (rsg, _, rargs, _, _)
        when signature_equal sg rsg && not performed ->
        let ok_args =
          List.length (loc_arguments sg) = List.length rargs
          && List.for_all2
               (fun l r -> AbsState.holds l (Tentry r) a)
               (loc_arguments sg) rargs
        in
        if not ok_args then error "call arguments misplaced at LTL node %d" n
        else
          let a = AbsState.kill_caller_save a in
          let a = AbsState.set (R (loc_result sg)) Tdef a in
          continue n' a ~performed:true
      | L.Ltailcall (sg, _), R.Itailcall (rsg, _, rargs)
        when signature_equal sg rsg ->
        let ok_args =
          List.length (loc_arguments sg) = List.length rargs
          && List.for_all2
               (fun l r -> AbsState.holds l (Tentry r) a)
               (loc_arguments sg) rargs
        in
        if ok_args then ok [] else error "tailcall arguments misplaced at node %d" n
      | L.Lreturn, R.Ireturn ropt -> (
        match ropt with
        | None -> ok []
        | Some r ->
          if AbsState.holds (R (loc_result f.R.fn_sig)) (Tentry r) a then ok []
          else error "return value not in the result register")
      (* Generic data movement within the expansion. *)
      | L.Lnop n', _ -> continue n' a ~performed
      | L.Lop (Op.Omove, [ src ], dst, n'), _ ->
        continue n' (AbsState.move ~src:(R src) ~dst:(R dst) a) ~performed
      | L.Lgetstack (k, o, t, dst, n'), _ ->
        continue n' (AbsState.move ~src:(S (k, o, t)) ~dst:(R dst) a) ~performed
      | L.Lsetstack (src, k, o, t, n'), _ ->
        continue n' (AbsState.move ~src:(R src) ~dst:(S (k, o, t)) a) ~performed
      | _ -> error "unexpected LTL instruction at node %d" n)

(* Initial abstract state at an RTL node: every live-in register's entry
   value sits in its assigned location. *)
let init_state (assign : assignment R.Regmap.t) (live_in : RSet.t) : AbsState.t =
  RSet.fold
    (fun r a ->
      match R.Regmap.find_opt r assign with
      | Some loc -> AbsState.add (loc_of loc) (Tentry r) a
      | None -> a)
    live_in AbsState.empty

(* A move instruction "performs" by routing: special-case it since its
   expansion contains no distinguished operation. *)
let is_move = function R.Iop (Op.Omove, [ _ ], _, _) -> true | _ -> false

let check_code_with ~(live_in : int -> RSet.t) (f : R.coq_function)
    (assign : assignment R.Regmap.t) (ltl : L.coq_function) : unit Errors.t =
  try
    R.Regmap.iter
      (fun n instr ->
        let a0 = init_state assign (live_in n) in
        match walk f ltl instr n a0 ~performed:(is_move instr) ~fuel:64 with
        | Error e -> raise (Check_fail e)
        | Ok boundaries ->
          List.iter
            (fun (b, a) ->
              check_boundary assign instr (live_in b) a ~ctx:(fun () ->
                  Printf.sprintf "after node %d, entering %d" n b))
            boundaries)
      f.R.fn_code;
    ok ()
  with Check_fail e -> Error e

let check_code (f : R.coq_function) (assign : assignment R.Regmap.t)
    (ltl : L.coq_function) : unit Errors.t =
  check_code_with ~live_in:(Middle.Liveness.analyze f) f assign ltl

(** Run both validation passes on one function. Liveness is solved once
    and both checks read their view of it. *)
let validate (f : R.coq_function) (assign : assignment R.Regmap.t)
    (ltl : L.coq_function) : unit Errors.t =
  let live_in, live_out = Middle.Liveness.analyze_both f in
  let* () = check_assignment_with ~live_out f assign in
  check_code_with ~live_in f assign ltl

(** Validate a whole program against [Allocation]. The allocator's own
    (untrusted) colorings are taken from [assignments] when provided —
    the CompCert architecture, where validation consumes the allocator's
    output rather than re-deriving it; both checks treat the assignment
    as hostile. Without [assignments] the deterministic coloring is
    recomputed, for callers that only hold the two programs. *)
let validate_program ?(assignments = []) (rtl : R.program) (ltl : L.program) :
    unit Errors.t =
  fold_list
    (fun () (id, d) ->
      match d with
      | Iface.Ast.Gfun (Iface.Ast.Internal rf) -> (
        match Iface.Ast.find_def ltl id with
        | Some (Iface.Ast.Gfun (Iface.Ast.Internal lf)) ->
          let assign =
            match List.assoc_opt id assignments with
            | Some assign -> assign
            | None -> fst (Allocation.allocate rf)
          in
          (match validate rf assign lf with
          | Ok () -> ok ()
          | Error e -> error "%s: %s" (Support.Ident.name id) e)
        | _ -> error "%s: missing from the LTL program" (Support.Ident.name id))
      | _ -> ok ())
    () rtl.Iface.Ast.prog_defs
