(** Translation validation for register allocation.

    CompCert validates its (untrusted, heuristic) register allocator a
    posteriori; this module plays the same role for [Allocation]. Given
    the RTL function, the allocator's assignment and the produced LTL
    code, two independent checks are performed:

    1. {b Assignment well-formedness} ([check_assignment]): liveness and
       interference are {e recomputed here} and the coloring is checked
       against them — interfering pseudo-registers get non-overlapping
       locations, values live across calls avoid caller-save registers,
       reserved scratch registers are never assigned.

    2. {b Code correspondence} ([check_code]): for every RTL instruction,
       the corresponding LTL expansion (the chain of fresh nodes up to
       the next RTL boundary node) is executed {e symbolically} over an
       abstract map from locations to value tags. A tag [Tentry r] means
       "the value pseudo-register [r] had at instruction entry"; [Tdef]
       is the value defined by this instruction. The expansion must
       apply the RTL operation to the right tags, route the defined value
       into the result's location, place [Tentry]-tagged arguments into
       the calling convention's locations at calls, invalidate
       caller-save locations across calls, and leave every live-out
       pseudo-register's current value in its assigned location at each
       boundary.

    [validate] runs both; a buggy allocator change is caught at compile
    time rather than at run time. *)

open Support.Errors
module Errors = Support.Errors
open Memory.Mtypes
open Target.Machregs
open Target.Locations
open Target.Conventions
module R = Middle.Rtl
module L = Backend.Ltl
module Op = Middle.Op
module RSet = Middle.Liveness.RSet

open Allocation (* the [assignment] type *)

let loc_of = function Lreg r -> R r | Lslot (i, t) -> S (Local, i, t)

let scratches = [ R10; SI; X2; X3 ]

(** {1 Check 1: the coloring} *)

(* Early exit for the hot validation loops: the Errors monad threads a
   closure per (definition, live register) pair, which dominates the
   validator's profile on large functions; a local exception keeps the
   loops allocation-free on the success path. *)
exception Check_fail of string

let fail fmt = Format.kasprintf (fun s -> raise (Check_fail s)) fmt

(* The assignment, re-indexed as a dense array keyed on pseudo-register
   index. Pseudo-registers are small consecutive integers, so every probe
   — and both checks probe once per (definition, live register) pair —
   becomes one bounds-checked array read instead of a balanced-tree
   descent or a hash lookup. Built once per function and shared by the
   coloring check, the symbolic walk's initial states, and the boundary
   checks. *)
let loc_array_of (assign : assignment R.Regmap.t) : loc option array =
  let maxr =
    match R.Regmap.max_binding_opt assign with Some (r, _) -> r | None -> 0
  in
  let arr = Array.make (maxr + 1) None in
  R.Regmap.iter (fun r a -> arr.(r) <- Some (loc_of a)) assign;
  arr

let check_assignment_arr ~(live_out : int -> RSet.t) (f : R.coq_function)
    (assign : assignment R.Regmap.t) (loc_arr : loc option array) :
    unit Errors.t =
  let loc r = if r < Array.length loc_arr then loc_arr.(r) else None in
  try
    (* Reserved scratch registers must not be allocated. *)
    R.Regmap.iter
      (fun r a ->
        match a with
        | Lreg m when List.mem m scratches ->
          fail "pseudo-register x%d assigned the scratch register %s" r
            (mreg_name m)
        | _ -> ())
      assign;
    (* Interference: at every definition point, the defined register's
       location must not overlap any live-out register's location (except
       the moved-from register of a move). *)
    R.Regmap.iter
      (fun n i ->
        match R.instr_defs i with
        | [] -> ()
        | defs ->
          let out = live_out n in
          (* Pseudo-registers are >= 1, so -1 never exempts anything. *)
          let exempt =
            match i with R.Iop (Op.Omove, [ src ], _, _) -> src | _ -> -1
          in
          List.iter
            (fun d ->
              match loc d with
              | None -> ()
              | Some ld ->
                RSet.iter
                  (fun r ->
                    if r <> d && r <> exempt then
                      match loc r with
                      | Some lr when locs_overlap ld lr ->
                        fail
                          "interference violated at node %d: x%d and x%d \
                           share %s"
                          n d r
                          (Format.asprintf "%a" pp_loc ld)
                      | _ -> ())
                  out)
            defs)
      f.R.fn_code;
    (* Values live across calls must not sit in caller-save registers. *)
    R.Regmap.iter
      (fun n i ->
        match i with
        | R.Icall (_, _, _, res, _) ->
          RSet.iter
            (fun r ->
              if r <> res then
                match loc r with
                | Some (R m) when not (is_callee_save m) ->
                  fail
                    "x%d is live across the call at node %d but assigned the \
                     caller-save register %s"
                    r n (mreg_name m)
                | _ -> ())
            (live_out n)
        | _ -> ())
      f.R.fn_code;
    ok ()
  with Check_fail e -> Error e

let check_assignment_with ~(live_out : int -> RSet.t) (f : R.coq_function)
    (assign : assignment R.Regmap.t) : unit Errors.t =
  check_assignment_arr ~live_out f assign (loc_array_of assign)

let check_assignment (f : R.coq_function) (assign : assignment R.Regmap.t) :
    unit Errors.t =
  check_assignment_with ~live_out:(Middle.Liveness.analyze_out f) f assign

(** {1 Check 2: the code} *)

type tag =
  | Tentry of R.reg  (** the value [r] had at instruction entry *)
  | Tdef  (** the value defined by this instruction *)
  | Topaque

(* The abstract state is a set of equations [(l, t)]: location [l] holds
   the value denoted by tag [t]. One location may satisfy several
   equations at once — this is exactly what validates move coalescing,
   where several pseudo-registers with provably equal values share a
   machine register.

   Equations are bucketed by {e storage class} — the unit of overlap: a
   machine register, or a (kind, word) slot cell (slots are one word wide
   on this target, [typ_words t = 1], so two slots overlap exactly when
   kind and word coincide).

   The store is an indexed mutable structure rather than a functional
   map. Storage classes resolve through a dense array for registers and
   a small hash table for slots into an arena of {e cells}; cells form a
   union-find whose classes are locations with provably equal values, so
   the data moves of an expansion ([Omove], [Lgetstack], [Lsetstack])
   attach the destination to the source's class in O(1) instead of
   copying equations. Writing a location rebinds its storage class to a
   fresh cell — surviving members of the old class keep reading the old
   root, which is what makes a call's caller-save kill safe. Everything
   is generation-stamped and arena-allocated, so one scratch store is
   reused across every RTL node of every function: resetting it is one
   integer bump, and steady-state validation allocates only the tag
   lists themselves. *)
module AbsState = struct
  let key_of = function
    | R m -> mreg_index m
    | S (k, o, _) ->
      num_mregs
      + (3 * o)
      + (match k with Local -> 0 | Incoming -> 1 | Outgoing -> 2)

  let dummy_loc = R (List.hd all_mregs)

  let callee_save_of_index =
    let a = Array.make num_mregs false in
    List.iter (fun m -> a.(mreg_index m) <- is_callee_save m) all_mregs;
    a

  type t = {
    mutable gen : int;  (** current generation; stale entries are invisible *)
    mutable len : int;  (** live extent of the cell arena *)
    (* Cell arena (struct-of-arrays). [parent] is the union-find link;
       [label] the location whose equations the cell carries; [tags] the
       class's tags, valid at the root; [extra] rare overflow equations
       for a second overlapping location in the same storage class
       (possible only in initial states of hostile assignments). *)
    mutable parent : int array;
    mutable label : loc array;
    mutable tags : tag list array;
    mutable extra : (loc * tag) list array;
    (* Storage class -> cell: dense for registers, table for slots. *)
    reg_cell : int array;
    reg_gen : int array;
    slot_cell : (int, int) Hashtbl.t;
    mutable slot_keys : int list;  (** slot keys bound this generation *)
  }

  let create () =
    {
      gen = 0;
      len = 0;
      parent = Array.make 64 0;
      label = Array.make 64 dummy_loc;
      tags = Array.make 64 [];
      extra = Array.make 64 [];
      reg_cell = Array.make num_mregs (-1);
      reg_gen = Array.make num_mregs (-1);
      slot_cell = Hashtbl.create 32;
      slot_keys = [];
    }

  let reset a =
    a.gen <- a.gen + 1;
    a.len <- 0;
    if a.slot_keys <> [] then begin
      List.iter (Hashtbl.remove a.slot_cell) a.slot_keys;
      a.slot_keys <- []
    end

  let grow a =
    let cap = Array.length a.parent in
    let ext arr dummy =
      let n = Array.make (2 * cap) dummy in
      Array.blit arr 0 n 0 cap;
      n
    in
    a.parent <- ext a.parent 0;
    a.label <- ext a.label dummy_loc;
    a.tags <- ext a.tags [];
    a.extra <- ext a.extra []

  let new_cell a l ts =
    if a.len = Array.length a.parent then grow a;
    let i = a.len in
    a.len <- i + 1;
    a.parent.(i) <- i;
    a.label.(i) <- l;
    a.tags.(i) <- ts;
    a.extra.(i) <- [];
    i

  let rec find a i =
    let p = a.parent.(i) in
    if p = i then i
    else begin
      let r = find a p in
      a.parent.(i) <- r;
      r
    end

  let cell_of_key a k =
    if k < num_mregs then
      if a.reg_gen.(k) = a.gen then a.reg_cell.(k) else -1
    else
      match Hashtbl.find_opt a.slot_cell (k - num_mregs) with
      | Some i -> i
      | None -> -1

  let bind_key a k i =
    if k < num_mregs then begin
      a.reg_gen.(k) <- a.gen;
      a.reg_cell.(k) <- i
    end
    else begin
      let sk = k - num_mregs in
      if not (Hashtbl.mem a.slot_cell sk) then a.slot_keys <- sk :: a.slot_keys;
      Hashtbl.replace a.slot_cell sk i
    end

  let unbind_key a k =
    if k < num_mregs then begin
      a.reg_gen.(k) <- a.gen;
      a.reg_cell.(k) <- -1
    end
    else Hashtbl.remove a.slot_cell (k - num_mregs)

  let holds l tag (a : t) =
    let c = cell_of_key a (key_of l) in
    c >= 0
    && ((loc_equal a.label.(c) l && List.mem tag a.tags.(find a c))
       || List.exists (fun (l', t') -> loc_equal l l' && t' = tag) a.extra.(c))

  let tags_of l (a : t) =
    let c = cell_of_key a (key_of l) in
    if c < 0 then []
    else
      let base = if loc_equal a.label.(c) l then a.tags.(find a c) else [] in
      match a.extra.(c) with
      | [] -> base
      | ex ->
        base
        @ List.filter_map (fun (l', t) -> if loc_equal l l' then Some t else None) ex

  (* Writing [l] invalidates every equation on an overlapping location —
     its storage class rebinds to a fresh singleton class. *)
  let set l tag (a : t) : t =
    bind_key a (key_of l) (new_cell a l [ tag ]);
    a

  (* [set] with the singleton tag list preallocated by the caller
     (interned constants — the walk writes [Tdef]/[Topaque] once per
     expansion), so the write allocates nothing. *)
  let set_tags l (ts : tag list) (a : t) : t =
    bind_key a (key_of l) (new_cell a l ts);
    a

  (* Record an equation without invalidating others (used only when
     building the initial state, whose equations hold simultaneously). *)
  let add l tag (a : t) : t =
    let k = key_of l in
    let c = cell_of_key a k in
    if c < 0 then bind_key a k (new_cell a l [ tag ])
    else if loc_equal a.label.(c) l then begin
      let r = find a c in
      a.tags.(r) <- tag :: a.tags.(r)
    end
    else a.extra.(c) <- (l, tag) :: a.extra.(c);
    a

  (* [add] with the equation's tag list preallocated (the per-function
     interned singletons): a fresh storage class — the common case when
     filling an initial state — binds the list structurally without
     consing. Collisions (hostile assignments only) fall back to the
     consing path. *)
  let add_tags l (ts : tag list) (a : t) : t =
    let k = key_of l in
    if cell_of_key a k < 0 then begin
      bind_key a k (new_cell a l ts);
      a
    end
    else List.fold_left (fun a tag -> add l tag a) a ts

  (* Copy: the destination receives every equation of the source. In the
     common case this is a union-find attach — the destination's fresh
     cell joins the source's class and shares its tags structurally. *)
  let move ~src ~dst (a : t) : t =
    let c = cell_of_key a (key_of src) in
    let kd = key_of dst in
    if c < 0 then unbind_key a kd
    else if loc_equal a.label.(c) src && a.extra.(c) = [] then begin
      let i = new_cell a dst [] in
      a.parent.(i) <- find a c;
      bind_key a kd i
    end
    else begin
      match tags_of src a with
      | [] -> unbind_key a kd
      | ts -> bind_key a kd (new_cell a dst ts)
    end;
    a

  (* A call clobbers caller-save registers and argument-passing slots.
     Unbinding the storage classes (rather than clearing cells) leaves
     surviving classes intact: a callee-save member of a killed
     register's class keeps its equations. *)
  let kill_caller_save (a : t) : t =
    for m = 0 to num_mregs - 1 do
      if a.reg_gen.(m) = a.gen && a.reg_cell.(m) >= 0 && not callee_save_of_index.(m)
      then a.reg_cell.(m) <- -1
    done;
    if a.slot_keys <> [] then
      a.slot_keys <-
        List.filter
          (fun sk ->
            Hashtbl.mem a.slot_cell sk
            &&
            (* [sk = 3*word + kind]: Local (0) survives a call, Incoming
               (1) and Outgoing (2) do not. *)
            (sk mod 3 = 0
            ||
            (Hashtbl.remove a.slot_cell sk;
             false)))
          a.slot_keys;
    a

  (* One scratch store reused across every validation in the process;
     [reset] runs per RTL node, so cross-node and cross-function reuse
     costs nothing and saves rebuilding the store each time. *)
  let scratch = lazy (create ())
end

(* [Tentry] tags (and their singleton lists, for the initial-state
   equations) interned per function: the walk and the boundary checks
   ask "does location [l] hold the entry value of [r]" once per (node,
   live register) pair, and a fresh [Tentry r] box each time is pure
   allocation ([holds] compares structurally, so sharing is invisible). *)
let tentry_tables (n : int) : (R.reg -> tag) * (R.reg -> tag list) =
  let tbl = Array.init n (fun r -> Tentry r) in
  let sing = Array.init n (fun r -> [ tbl.(r) ]) in
  ( (fun r -> if r >= 0 && r < n then tbl.(r) else Tentry r),
    fun r -> if r >= 0 && r < n then sing.(r) else [ Tentry r ] )

let tentry_table (n : int) : R.reg -> tag = fst (tentry_tables n)

(* Interned singleton tag lists for the walk's writes. *)
let tags_def = [ Tdef ]
let tags_opaque = [ Topaque ]

(* What each live pseudo-register's value is after the instruction.
   [defs] is the precomputed [R.instr_defs instr], so per-register
   queries allocate nothing. *)
let out_tag (tent : R.reg -> tag) (instr : R.instruction) (defs : R.reg list)
    (r : R.reg) : tag =
  match instr with
  | R.Iop (Op.Omove, [ src ], dst, _) when r = dst -> tent src
  | _ -> if List.mem r defs then Tdef else tent r

(* [at]/[entering] locate the boundary for error messages — plain ints,
   so the success path allocates no context. *)
let check_boundary (tent : R.reg -> tag) (loc_arr : loc option array)
    (instr : R.instruction) ~(defs : R.reg list) (live : RSet.t)
    (a : AbsState.t) ~(at : int) ~(entering : int) : unit =
  RSet.iter
    (fun r ->
      match (if r < Array.length loc_arr then loc_arr.(r) else None) with
      | None ->
        fail "after node %d, entering %d: live pseudo-register x%d has no \
              location" at entering r
      | Some l ->
        if not (AbsState.holds l (out_tag tent instr defs r) a) then
          fail "after node %d, entering %d: x%d is not in its location %a" at
            entering r pp_loc l)
    live

let args_hold (tent : R.reg -> tag) (a : AbsState.t) (margs : mreg list)
    (rargs : R.reg list) : bool =
  List.length margs = List.length rargs
  && List.for_all2 (fun m r -> AbsState.holds (R m) (tent r) a) margs rargs

(* The walk's per-function context. The immutable fields are fixed for
   the whole function; the mutable ones are rebound once per RTL node.
   One record per function keeps the mutually recursive walk's
   signatures small without allocating a closure (or re-passing ten
   arguments) per hop. *)
type walk_env = {
  w_barr : bool array;  (** RTL node set — the expansion boundaries *)
  w_tent : R.reg -> tag;
  w_f : R.coq_function;
  w_larr : L.instruction option array;
  w_loc_arr : loc option array;
  w_live_in : int -> RSet.t;
  mutable w_instr : R.instruction;  (** RTL instruction being covered *)
  mutable w_defs : R.reg list;  (** its [instr_defs] *)
  mutable w_origin : int;  (** its RTL node, for error messages *)
}

let env_is_boundary env n = n >= 0 && n < Array.length env.w_barr && env.w_barr.(n)

(* A boundary has been reached with state [a]: every live-in register of
   the target node must sit in its location. *)
let env_boundary env (n : L.node) (a : AbsState.t) : unit =
  check_boundary env.w_tent env.w_loc_arr env.w_instr ~defs:env.w_defs
    (env.w_live_in n) a ~at:env.w_origin ~entering:n

(* Symbolically execute the LTL chain from [n] until boundary nodes,
   checking each reached boundary in place. Failures raise {!Check_fail}
   (caught at the per-function boundary): threading a result through
   every hop of every chain would allocate a closure and an [Ok] box per
   symbolic step on the success path; checking boundaries in place
   rather than returning them spares the per-node result list too.
   [walk] processes the instruction at [n]; [walk_from] is the
   continuation for a reached successor — it stops at boundary nodes. *)
let rec walk_from (env : walk_env) (n : L.node) (a : AbsState.t)
    ~(performed : bool) ~(fuel : int) : unit =
  if env_is_boundary env n then
    if performed then env_boundary env n a
    else fail "expansion reaches node %d without performing its instruction" n
  else walk env n a ~performed ~fuel

and walk (env : walk_env) (n : L.node) (a : AbsState.t) ~(performed : bool)
    ~(fuel : int) : unit =
  if fuel = 0 then fail "expansion does not terminate"
  else
    let tent = env.w_tent in
    match (if n >= 0 && n < Array.length env.w_larr then env.w_larr.(n) else None)
    with
    | None -> fail "missing LTL node %d" n
    | Some li -> (
      match (li, env.w_instr) with
      (* The instruction-specific step. *)
      | L.Lnop n', R.Inop _ -> walk_from env n' a ~performed:true ~fuel:(fuel - 1)
      | L.Lop (op, margs, res, n'), R.Iop (rop, rargs, _, _)
        when op = rop && op <> Op.Omove && not performed ->
        if args_hold tent a margs rargs then
          walk_from env n'
            (AbsState.set_tags (R res) tags_def a)
            ~performed:true ~fuel:(fuel - 1)
        else fail "operation arguments mismatched at LTL node %d" n
      | L.Lload (chunk, addr, margs, dst, n'), R.Iload (rchunk, raddr, rargs, _, _)
        when chunk = rchunk && addr = raddr && not performed ->
        if args_hold tent a margs rargs then
          walk_from env n'
            (AbsState.set_tags (R dst) tags_def a)
            ~performed:true ~fuel:(fuel - 1)
        else fail "load arguments mismatched at LTL node %d" n
      | L.Lstore (chunk, addr, margs, src, n'), R.Istore (rchunk, raddr, rargs, rsrc, _)
        when chunk = rchunk && not performed ->
        (* Either the direct form (same addressing, args and source hold
           the RTL values) or the collapsed form (address materialized by
           a preceding [Olea], source reloaded through a scratch). *)
        let direct =
          addr = raddr
          && args_hold tent a margs rargs
          && AbsState.holds (R src) (tent rsrc) a
        in
        let collapsed =
          addr = Op.Aindexed 0 && AbsState.holds (R src) (tent rsrc) a
        in
        if direct || collapsed then
          walk_from env n' a ~performed:true ~fuel:(fuel - 1)
        else fail "store operands mismatched at LTL node %d" n
      | L.Lop (Op.Olea addr, margs, res, n'), R.Istore (_, raddr, rargs, _, _)
        when addr = raddr && not performed ->
        (* Address materialization for the collapsed store form. *)
        if args_hold tent a margs rargs then
          walk_from env n'
            (AbsState.set_tags (R res) tags_opaque a)
            ~performed ~fuel:(fuel - 1)
        else fail "lea arguments mismatched at LTL node %d" n
      | L.Lcond (cond, margs, n1, n2), R.Icond (rcond, rargs, rn1, rn2)
        when cond = rcond ->
        if not (args_hold tent a margs rargs) then
          fail "condition arguments mismatched at LTL node %d" n
        else if n1 <> rn1 || n2 <> rn2 then
          fail "condition targets changed at LTL node %d" n
        else begin
          (* Both targets are RTL boundary nodes; the state only gets
             read, so the two checks share it. *)
          env_boundary env n1 a;
          env_boundary env n2 a
        end
      | L.Lcall (sg, _, n'), R.Icall (rsg, _, rargs, _, _)
        when signature_equal sg rsg && not performed ->
        let ok_args =
          List.length (loc_arguments sg) = List.length rargs
          && List.for_all2
               (fun l r -> AbsState.holds l (tent r) a)
               (loc_arguments sg) rargs
        in
        if not ok_args then fail "call arguments misplaced at LTL node %d" n
        else
          let a = AbsState.kill_caller_save a in
          let a = AbsState.set_tags (R (loc_result sg)) tags_def a in
          walk_from env n' a ~performed:true ~fuel:(fuel - 1)
      | L.Ltailcall (sg, _), R.Itailcall (rsg, _, rargs)
        when signature_equal sg rsg ->
        let ok_args =
          List.length (loc_arguments sg) = List.length rargs
          && List.for_all2
               (fun l r -> AbsState.holds l (tent r) a)
               (loc_arguments sg) rargs
        in
        if not ok_args then fail "tailcall arguments misplaced at node %d" n
      | L.Lreturn, R.Ireturn ropt -> (
        match ropt with
        | None -> ()
        | Some r ->
          if AbsState.holds (R (loc_result env.w_f.R.fn_sig)) (tent r) a then ()
          else fail "return value not in the result register")
      (* Generic data movement within the expansion. *)
      | L.Lnop n', _ -> walk_from env n' a ~performed ~fuel:(fuel - 1)
      | L.Lop (Op.Omove, [ src ], dst, n'), _ ->
        walk_from env n'
          (AbsState.move ~src:(R src) ~dst:(R dst) a)
          ~performed ~fuel:(fuel - 1)
      | L.Lgetstack (k, o, t, dst, n'), _ ->
        walk_from env n'
          (AbsState.move ~src:(S (k, o, t)) ~dst:(R dst) a)
          ~performed ~fuel:(fuel - 1)
      | L.Lsetstack (src, k, o, t, n'), _ ->
        walk_from env n'
          (AbsState.move ~src:(R src) ~dst:(S (k, o, t)) a)
          ~performed ~fuel:(fuel - 1)
      | _ -> fail "unexpected LTL instruction at node %d" n)

(* Initial abstract state at an RTL node: every live-in register's entry
   value sits in its assigned location. Resets and refills the scratch
   store — the previous node's state becomes garbage by generation bump,
   not by traversal. [tsing] is the interned singleton table, so a fresh
   equation binds without consing. *)
let init_state (tsing : R.reg -> tag list) (loc_arr : loc option array)
    (live_in : RSet.t) : AbsState.t =
  let a = Lazy.force AbsState.scratch in
  AbsState.reset a;
  RSet.iter
    (fun r ->
      if r < Array.length loc_arr then
        match loc_arr.(r) with
        | Some l -> ignore (AbsState.add_tags l (tsing r) a)
        | None -> ())
    live_in;
  a

(* A move instruction "performs" by routing: special-case it since its
   expansion contains no distinguished operation. *)
let is_move = function R.Iop (Op.Omove, [ _ ], _, _) -> true | _ -> false

let check_code_arr ~(live_in : int -> RSet.t) (f : R.coq_function)
    (loc_arr : loc option array) (ltl : L.coq_function) : unit Errors.t =
  let max_n =
    match R.Regmap.max_binding_opt f.R.fn_code with Some (n, _) -> n | None -> -1
  in
  let barr = Array.make (max_n + 1) false in
  R.Regmap.iter (fun n _ -> barr.(n) <- true) f.R.fn_code;
  (* The LTL code re-indexed as a dense array: the symbolic walk visits
     each expansion node once per covering RTL origin, so tree lookups
     on every hop dominate; an array probe is one bounds check. *)
  let larr =
    let max_l =
      match L.Nodemap.max_binding_opt ltl.L.fn_code with
      | Some (n, _) -> n
      | None -> -1
    in
    let a = Array.make (max_l + 1) None in
    L.Nodemap.iter (fun n i -> a.(n) <- Some i) ltl.L.fn_code;
    a
  in
  let tent, tsing = tentry_tables (Array.length loc_arr) in
  let env =
    {
      w_barr = barr;
      w_tent = tent;
      w_f = f;
      w_larr = larr;
      w_loc_arr = loc_arr;
      w_live_in = live_in;
      w_instr = R.Ireturn None;
      w_defs = [];
      w_origin = -1;
    }
  in
  try
    R.Regmap.iter
      (fun n instr ->
        env.w_instr <- instr;
        env.w_defs <- R.instr_defs instr;
        env.w_origin <- n;
        let a0 = init_state tsing loc_arr (live_in n) in
        walk env n a0 ~performed:(is_move instr) ~fuel:64)
      f.R.fn_code;
    ok ()
  with Check_fail e -> Error e

let check_code_with ~(live_in : int -> RSet.t) (f : R.coq_function)
    (assign : assignment R.Regmap.t) (ltl : L.coq_function) : unit Errors.t =
  check_code_arr ~live_in f (loc_array_of assign) ltl

let check_code (f : R.coq_function) (assign : assignment R.Regmap.t)
    (ltl : L.coq_function) : unit Errors.t =
  check_code_with ~live_in:(Middle.Liveness.analyze f) f assign ltl

(** Run both validation passes on one function. Liveness is solved once,
    the assignment is re-indexed once, and both checks read them. *)
let validate (f : R.coq_function) (assign : assignment R.Regmap.t)
    (ltl : L.coq_function) : unit Errors.t =
  let live_in, live_out = Middle.Liveness.analyze_both f in
  let loc_arr = loc_array_of assign in
  let* () = check_assignment_arr ~live_out f assign loc_arr in
  check_code_arr ~live_in f loc_arr ltl

(** Validate a whole program against [Allocation]. The allocator's own
    (untrusted) colorings are taken from [assignments] when provided —
    the CompCert architecture, where validation consumes the allocator's
    output rather than re-deriving it; both checks treat the assignment
    as hostile. Without [assignments] the deterministic coloring is
    recomputed, for callers that only hold the two programs. *)
let validate_program ?(assignments = []) (rtl : R.program) (ltl : L.program) :
    unit Errors.t =
  fold_list
    (fun () (id, d) ->
      match d with
      | Iface.Ast.Gfun (Iface.Ast.Internal rf) -> (
        match Iface.Ast.find_def ltl id with
        | Some (Iface.Ast.Gfun (Iface.Ast.Internal lf)) ->
          let assign =
            match List.assoc_opt id assignments with
            | Some assign -> assign
            | None -> fst (Allocation.allocate rf)
          in
          (match validate rf assign lf with
          | Ok () -> ok ()
          | Error e -> error "%s: %s" (Support.Ident.name id) e)
        | _ -> error "%s: missing from the LTL program" (Support.Ident.name id))
      | _ -> ok ())
    () rtl.Iface.Ast.prog_defs
