(** Adversarial environments ("chaos oracles").

    An open component's correctness statement quantifies over {e all}
    environments, including hostile ones: an environment may refuse to
    answer, answer with an ill-typed value, clobber registers the
    convention says it must preserve, hand back pointers that violate
    the memory injection, or simply never let the component finish. The
    harness must {e detect and report} each of these — never surface an
    uncaught exception.

    Each chaos mode wraps a well-behaved base oracle and corrupts its
    replies in one specific way. Detection happens through the
    [check_reply] hook of {!Core.Smallstep.run}: {!conformance_c} /
    {!conformance_a} validate every answer against the convention's
    obligations, so a corrupted reply surfaces as
    [Smallstep.Env_violation] (and a refusal as [Env_stuck], fuel
    burning as [Out_of_fuel]) — all ordinary, reportable outcomes. *)

open Memory
open Memory.Mtypes
open Memory.Values
open Target
open Iface.Li

type mode =
  | Well_behaved  (** the base oracle, unperturbed (control) *)
  | Refuse  (** answer [None] to every question *)
  | Ill_typed  (** answer with a value outside the signature's result type *)
  | Clobber_callee_save  (** trash a callee-save register in the reply *)
  | Wild_pointer  (** reply with a pointer outside the shared injection *)
  | Burn_fuel  (** answer, but so "slowly" the component runs out of fuel *)

let all_modes =
  [ Well_behaved; Refuse; Ill_typed; Clobber_callee_save; Wild_pointer; Burn_fuel ]

let mode_name = function
  | Well_behaved -> "well-behaved"
  | Refuse -> "refuse"
  | Ill_typed -> "ill-typed"
  | Clobber_callee_save -> "clobber-callee-save"
  | Wild_pointer -> "wild-pointer"
  | Burn_fuel -> "burn-fuel"

let mode_of_name s = List.find_opt (fun m -> mode_name m = s) all_modes

(** {1 Chaos wrappers}

    Each wrapper perturbs the base oracle's replies according to the
    mode. The C-level and A-level shapes differ (values vs register
    files), so there is one wrapper per interface. *)

(* A pointer into a block the injection cannot contain: any block at or
   beyond the reply memory's nextblock is unallocated, hence unrelated
   to any source-level block. *)
let wild_pointer m = Vptr (Mem.nextblock m + 64, 0)

(** {1 Shared corruption vocabulary}

    Register-file corruptions used both here (adversarial {e
    environments}: oracles at the query/reply boundary) and by
    {!Robust.Partner} (adversarial {e components}: whole synthesized
    partners pushed through [⊕]). Keeping them in one place makes the
    two campaigns' attack matrices comparable mode-for-mode. *)

(** The pattern written into clobbered registers — recognizable in
    dumps. *)
let clobber_pattern = Vint 0xDEADl

(** Trash every callee-save register of the target convention. *)
let clobber_callee_saves (rs : Pregfile.t) : Pregfile.t =
  List.fold_left
    (fun rs m -> Pregfile.set (Mreg m) clobber_pattern rs)
    rs Machregs.callee_save_regs

(** Overwrite the result register of signature [sg] with [v]. *)
let set_result ?(sg = signature_main) (v : value) (rs : Pregfile.t) :
    Pregfile.t =
  Pregfile.set (Mreg (Conventions.loc_result sg)) v rs

(** A value guaranteed to be outside the signature's result type (the
    conventions here never return floats in integer registers). *)
let ill_typed_value = Vfloat 0.5

let c_chaos (mode : mode) (base : c_query -> c_reply option) :
    c_query -> c_reply option =
 fun q ->
  match mode with
  | Well_behaved -> base q
  | Refuse -> None
  | Ill_typed -> (
    match base q with
    | Some r -> Some { r with cr_res = Vfloat 0.5 }
    | None -> None)
  | Clobber_callee_save ->
    (* No register file at the C level; the closest C-shaped attack is
       answering with an unrelated (wild) result pointer, same as
       [Wild_pointer]. Kept distinct so the A-level matrix lines up. *)
    Option.map (fun r -> { r with cr_res = wild_pointer r.cr_mem }) (base q)
  | Wild_pointer ->
    Option.map (fun r -> { r with cr_res = wild_pointer r.cr_mem }) (base q)
  | Burn_fuel -> base q

let a_chaos (mode : mode) (base : a_query -> a_reply option) :
    a_query -> a_reply option =
 fun q ->
  match mode with
  | Well_behaved -> base q
  | Refuse -> None
  | Ill_typed ->
    Option.map (fun r -> { r with ar_rs = set_result ill_typed_value r.ar_rs }) (base q)
  | Clobber_callee_save ->
    Option.map (fun r -> { r with ar_rs = clobber_callee_saves r.ar_rs }) (base q)
  | Wild_pointer ->
    Option.map
      (fun r -> { r with ar_rs = set_result (wild_pointer r.ar_mem) r.ar_rs })
      (base q)
  | Burn_fuel -> base q

(** Under [Burn_fuel] the oracle answers but the run is given only this
    much fuel, modeling an environment that starves the component. *)
let burnt_fuel = 16

let fuel_for mode ~fuel = match mode with Burn_fuel -> burnt_fuel | _ -> fuel

(** {1 Conformance checking}

    The reply-side obligations of the conventions, as executable checks
    suitable for [Smallstep.run ~check_reply]. A violated obligation
    yields [Error why], which the interpreter turns into
    [Env_violation] — detected, reported, no exception. *)

(* A value the convention can accept for a result of type [t]: it must
   have the type, and any pointer must be into memory the caller could
   know about (i.e. allocated — blocks >= nextblock violate the
   injection). *)
let check_result_value ~mem v t =
  if not (has_rettype v t) then
    Error
      (Format.asprintf "ill-typed result %a for return type %a" Values.pp v
         (fun fmt -> function
           | Some t -> pp_typ fmt t
           | None -> Format.pp_print_string fmt "void")
         t)
  else
    match v with
    | Vptr (b, _) when b >= Mem.nextblock mem ->
      Error
        (Format.asprintf
           "result pointer %a outside the injection (nextblock %d)" Values.pp
           v (Mem.nextblock mem))
    | _ -> Ok ()

(** C-level conformance: the reply's result value must match the query
    signature's result type and not leak unallocated pointers. *)
let conformance_c (q : c_query) (r : c_reply) : (unit, string) result =
  check_result_value ~mem:r.cr_mem r.cr_res q.cq_sg.sig_res

(** A-level conformance, the reply side of the paper's eq. (7): the
    environment must return to the caller ([PC' = RA]), preserve the
    stack pointer and every callee-save register, and put a well-typed,
    injection-respecting value in the result register. *)
let conformance_a ?(sg = signature_main) (q : a_query) (r : a_reply) :
    (unit, string) result =
  let rs = q.aq_rs and rs' = r.ar_rs in
  if Pregfile.get PC rs' <> Pregfile.get RA rs then
    Error
      (Format.asprintf "environment did not return to RA: pc' = %a, ra = %a"
         Values.pp (Pregfile.get PC rs') Values.pp (Pregfile.get RA rs))
  else if Pregfile.get SP rs' <> Pregfile.get SP rs then
    Error
      (Format.asprintf "environment moved the stack pointer: %a -> %a"
         Values.pp (Pregfile.get SP rs) Values.pp (Pregfile.get SP rs'))
  else
    let clobbered =
      List.filter
        (fun m -> Pregfile.get (Mreg m) rs' <> Pregfile.get (Mreg m) rs)
        Machregs.callee_save_regs
    in
    match clobbered with
    | m :: _ ->
      Error
        (Format.asprintf "environment clobbered callee-save %a: %a -> %a"
           Machregs.pp_mreg m Values.pp
           (Pregfile.get (Mreg m) rs)
           Values.pp
           (Pregfile.get (Mreg m) rs'))
    | [] ->
      let res = Pregfile.get (Mreg (Conventions.loc_result sg)) rs' in
      check_result_value ~mem:r.ar_mem res sg.sig_res
