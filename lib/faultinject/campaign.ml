(** The fault-injection campaign runner.

    A campaign pushes [n] seeded mutants — each a single semantic
    corruption of one pass's output ({!Mutate}) — through the
    verification harness and records, per mutant class and per detector,
    whether the corruption was {e killed} (detected) or {e survived}.
    The resulting kill-rate matrix quantifies how much the executable
    checkers actually constrain the pipeline, the operational analogue
    of the paper's simulation proofs.

    Detectors:

    - [pipeline]: recompiling downstream of the injection point fails —
      typically the register-allocation validator ([AllocCheck])
      rejecting the mutated RTL;
    - [differential]: some level compiled from the mutant no longer
      refines the Clight reference under the simulation conventions'
      marshaling;
    - [coexec]: the co-execution checker (the executable Fig. 6 proof)
      refutes the simulation between the source and the mutated Asm
      under [CA].

    Survivors are legitimate objects of study — a mutation of dead or
    semantically-neutral code {e should} survive — so they are dumped
    with their injection site for triage rather than treated as errors.
    The classes in {!Mutate.must_kill_classes}, however, must each be
    killed at least once; a campaign where one escapes entirely fails
    its acceptance check ({!must_kill_ok}).

    The adversarial-environment half ({!run_chaos_modes}) subjects an
    open component to each {!Chaos_oracle.mode} and checks the harness
    {e diagnoses} the misbehavior (as [Env_stuck], [Env_violation] or
    [Out_of_fuel]) instead of crashing. *)

open Support
module Diag = Support.Diagnostics

let detectors = [ "pipeline"; "differential"; "coexec" ]

(** {1 The corpus}

    Small deterministic closed programs, chosen so every mutation class
    has sites: arithmetic with non-commutative operators and immediates
    (swap/perturb), loads and stores (drop/dup), conditional branches
    (retarget), and a call with more arguments than there are parameter
    registers, so the Linear code traffics in [Outgoing] stack slots
    (convention-slot corruption). *)
let corpus : (string * string) list =
  [
    ( "arith-branch",
      {|
int main(void) {
  int a = 41; int b = 17;
  int d = a - b;
  int q = a / 7;
  int r = a % 7;
  int s = 0;
  if (d > 20) s = d - q; else s = d + r;
  return s * 3 - b;
}
|} );
    ( "loop-memory",
      {|
int g[8];
int main(void) {
  int i;
  for (i = 0; i < 8; i++) g[i] = i * i - 3;
  int acc = 0;
  for (i = 0; i < 8; i++) acc = acc * 2 + g[i];
  return acc - 5;
}
|} );
    ( "many-args",
      {|
int wide(int a, int b, int c, int d, int e, int f, int g, int h) {
  return (a - b) + (c - d) + (e - f) + (g - h) * 2;
}
int main(void) {
  int x = wide(9, 4, 12, 5, 30, 11, 7, 2);
  int y = wide(x, 3, x / 2, 1, x % 5, 0, 6, x);
  return x + y;
}
|} );
    ( "nested-calls",
      {|
int dec(int n) { return n - 1; }
int tri(int n) {
  int acc = 0;
  while (n > 0) { acc = acc + n; n = dec(n); }
  return acc;
}
int main(void) { return tri(9) - tri(4); }
|} );
  ]

let fuel = 300_000

(** {1 Campaign records} *)

type mutant_result = {
  mr_program : string;  (** corpus program name *)
  mr_class : Mutate.mclass;
  mr_site : Mutate.site;
  mr_killed_by : (string * string) list;
      (** (detector, reason) for each detector that killed it *)
  mr_survived : bool;
}

type cell = { mutable tried : int; mutable killed : int }

type report = {
  rp_seed : int;
  rp_requested : int;
  rp_results : mutant_result list;
  rp_matrix : (Mutate.mclass * (string * int) list) list;
      (** per class: kills per detector *)
  rp_totals : (Mutate.mclass * cell) list;
  rp_chaos : chaos_result list;
}

and chaos_result = {
  cr_mode : Chaos_oracle.mode;
  cr_level : string;  (** "C" or "A" *)
  cr_outcome : string;  (** printable outcome classification *)
  cr_diagnosed : bool;
      (** the harness reported the misbehavior as a structured outcome *)
}

(** {1 Detectors} *)

(* Run a detector defensively: a detector that crashes on a mutant has
   detected it (the mutant broke an invariant the detector relies on),
   but the campaign itself must never propagate the exception. *)
let guard name f =
  match f () with
  | Some reason -> Some (name, reason)
  | None -> None
  | exception e ->
    Some (name, Printf.sprintf "detector raised: %s" (Printexc.to_string e))

let reference_outcome (arts : Driver.Compiler.artifacts) ~symbols q =
  Driver.Runners.run_c_level
    (Cfrontend.Clight.semantics ~symbols arts.Driver.Compiler.clight1)
    ~fuel q

(* The differential detector over the mutated backend: each mutated
   level, run through its simulation convention, must still refine the
   Clight reference. *)
let differential_detector ~symbols ~ref_outcome
    (levels : (string * (unit -> (Driver.Runners.c_outcome, string) result)) list)
    () : string option =
  let check (name, run) =
    match run () with
    | Error e -> Some (Printf.sprintf "%s: %s" name e)
    | Ok o ->
      if Driver.Runners.outcome_refines ref_outcome o then None
      else
        Some
          (Format.asprintf "%s does not refine the reference: %a" name
             Driver.Runners.pp_c_outcome o)
  in
  ignore symbols;
  List.find_map check levels

(* The coexec detector: source Clight (post-SimplLocals, whose memory
   is exactly the shared globals) against the mutated Asm under CA. *)
let coexec_detector ~symbols ~(clight2 : Cfrontend.Csyntax.program)
    (asm : Backend.Asm.program) q () : string option =
  let l1 = Cfrontend.Clight.semantics ~mode:`Temp_params ~symbols clight2 in
  let l2 = Backend.Asm.semantics ~symbols asm in
  match
    Core.Coexec.check ~fuel ~l1 ~l2 ~cc_in:Driver.Runners.cc_ca
      ~cc_out:Driver.Runners.cc_ca
      ~oracle:(fun _ -> None)
      q
  with
  | Core.Coexec.Pass -> None
  | Core.Coexec.Fail msg -> Some msg

(** Judge one mutant: recompile downstream of the injection point and
    run every detector. *)
let judge ~symbols ~(arts : Driver.Compiler.artifacts) ~ref_outcome ~program
    ~(cls : Mutate.mclass) ~(site : Mutate.site) q
    (mutated : [ `Rtl of Middle.Rtl.program | `Linear of Backend.Linear.program ])
    : mutant_result =
  let open Driver in
  let pipeline_err, levels, masm =
    match mutated with
    | `Rtl rtl -> (
      match Compiler.backend_from_rtl rtl with
      | Error e -> (Some e, [], None)
      | Ok b ->
        ( None,
          [
            ( "rtl(mutated)",
              fun () ->
                Ok
                  (Runners.run_c_level
                     (Middle.Rtl.semantics ~symbols rtl)
                     ~fuel q) );
            ( "mach(mutated)",
              fun () ->
                Runners.run_m_level
                  (Backend.Mach.semantics ~symbols b.Compiler.b_mach)
                  ~fuel q );
            ( "asm(mutated)",
              fun () ->
                Runners.run_a_level
                  (Backend.Asm.semantics ~symbols b.Compiler.b_asm)
                  ~fuel q );
          ],
          Some b.Compiler.b_asm ))
    | `Linear linear -> (
      match Compiler.finish_from_linear linear with
      | Error e -> (Some e, [], None)
      | Ok (mach, asm) ->
        ( None,
          [
            ( "linear(mutated)",
              fun () ->
                Runners.run_l_level
                  (Backend.Linear.semantics ~symbols linear)
                  ~fuel q );
            ( "mach(mutated)",
              fun () ->
                Runners.run_m_level (Backend.Mach.semantics ~symbols mach) ~fuel q
            );
            ( "asm(mutated)",
              fun () ->
                Runners.run_a_level (Backend.Asm.semantics ~symbols asm) ~fuel q
            );
          ],
          Some asm ))
  in
  let kills =
    List.filter_map
      (fun k -> k)
      [
        (match pipeline_err with
        | Some e -> Some ("pipeline", e)
        | None -> None);
        guard "differential"
          (differential_detector ~symbols ~ref_outcome levels);
        (match masm with
        | Some asm ->
          guard "coexec"
            (coexec_detector ~symbols ~clight2:arts.Compiler.clight2 asm q)
        | None -> None);
      ]
  in
  {
    mr_program = program;
    mr_class = cls;
    mr_site = site;
    mr_killed_by = kills;
    mr_survived = kills = [];
  }

(** {1 The mutation campaign} *)

type compiled = {
  cp_name : string;
  cp_symbols : Ident.t list;
  cp_arts : Driver.Compiler.artifacts;
  cp_query : Iface.Li.c_query;
  cp_ref : Driver.Runners.c_outcome;
}

let compile_corpus () : (compiled list, Diag.t) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (name, src) :: rest -> (
      match Driver.Compiler.compile_source_diag src with
      | Error f -> Error f.Driver.Compiler.fail_diag
      | Ok arts -> (
        let p = arts.Driver.Compiler.clight1 in
        let symbols = Iface.Ast.prog_defs_names p in
        match Driver.Runners.main_query ~symbols ~defs:p () with
        | None ->
          Error
            (Diag.make ~phase:Diag.Campaign ~kind:Diag.Internal_error
               ~context:[ ("program", name) ]
               "cannot build the main query for corpus program %s" name)
        | Some q ->
          let r = reference_outcome arts ~symbols q in
          go
            ({ cp_name = name; cp_symbols = symbols; cp_arts = arts;
               cp_query = q; cp_ref = r }
            :: acc)
            rest))
  in
  go [] corpus

(** {1 Adversarial environments}

    Subject one open component (external calls to two primitives) to
    every chaos mode, at the C level (Clight + C oracle) and the A level
    (compiled Asm + A oracle), with the conformance checkers installed.
    Each misbehavior must come back as a structured outcome. *)

let chaos_src =
  "int env_twice(int n);\n\
   int env_out(int chan, int v);\n\
   int main(void) {\n\
  \  int acc = 0;\n\
  \  for (int i = 0; i < 4; i++) {\n\
  \    int d = env_twice(i + acc);\n\
  \    env_out(1, d);\n\
  \    acc = acc + d;\n\
  \  }\n\
  \  return acc;\n\
   }\n"

let chaos_prims () =
  let open Memory.Mtypes in
  [
    { Driver.Io_oracle.prim_name = "env_twice";
      prim_sig = { sig_args = [ Tint ]; sig_res = Some Tint };
      prim_impl =
        (fun args -> match args with [ n ] -> Int32.mul 2l n | _ -> 0l) };
    { Driver.Io_oracle.prim_name = "env_out";
      prim_sig = { sig_args = [ Tint; Tint ]; sig_res = Some Tint };
      prim_impl = (fun _ -> 0l) };
  ]

let classify_outcome (o : Driver.Runners.c_outcome) : string * bool =
  match o with
  | Core.Smallstep.Final _ -> ("final", false)
  | Core.Smallstep.Goes_wrong (_, why) -> ("goes-wrong: " ^ why, true)
  | Core.Smallstep.Env_stuck _ -> ("env-stuck", true)
  | Core.Smallstep.Env_violation (_, why) -> ("env-violation: " ^ why, true)
  | Core.Smallstep.Refused -> ("refused", true)
  | Core.Smallstep.Out_of_fuel _ -> ("out-of-fuel", true)

(** Expected diagnosis per mode: [Well_behaved] must complete normally;
    every other mode must be diagnosed (not crash, not complete). *)
let chaos_expectation (m : Chaos_oracle.mode) (diagnosed : bool) : bool =
  match m with
  | Chaos_oracle.Well_behaved -> not diagnosed
  | _ -> diagnosed

let run_chaos_modes () : chaos_result list =
  match Driver.Compiler.compile_source_diag chaos_src with
  | Error _ -> [] (* the corpus is fixed; this cannot happen *)
  | Ok arts -> (
    let p = arts.Driver.Compiler.clight1 in
    let symbols = Iface.Ast.prog_defs_names p in
    match Driver.Runners.main_query ~symbols ~defs:p () with
    | None -> []
    | Some q ->
      List.concat_map
        (fun mode ->
          let fuel = Chaos_oracle.fuel_for mode ~fuel in
          let c_run () =
            let rec_, _ = Driver.Io_oracle.make_log () in
            let base =
              Driver.Io_oracle.c_oracle ~symbols (chaos_prims ()) rec_
            in
            Driver.Runners.run_c_level
              (Cfrontend.Clight.semantics ~symbols p)
              ~fuel
              ~oracle:(Chaos_oracle.c_chaos mode base)
              ~check_reply:Chaos_oracle.conformance_c q
          in
          let a_run () =
            let rec_, _ = Driver.Io_oracle.make_log () in
            let base =
              Driver.Io_oracle.a_oracle ~symbols (chaos_prims ()) rec_
            in
            match
              Driver.Runners.run_a_level
                (Backend.Asm.semantics ~symbols arts.Driver.Compiler.asm)
                ~fuel
                ~oracle:(Chaos_oracle.a_chaos mode base)
                ~check_reply:(Chaos_oracle.conformance_a ?sg:None)
                q
            with
            | Ok o -> o
            | Error e -> Core.Smallstep.Goes_wrong ([], "marshal: " ^ e)
          in
          let result level run =
            let outcome, diagnosed =
              match run () with
              | o -> classify_outcome o
              | exception e ->
                ("uncaught exception: " ^ Printexc.to_string e, false)
            in
            { cr_mode = mode; cr_level = level; cr_outcome = outcome;
              cr_diagnosed = diagnosed }
          in
          [ result "C" c_run; result "A" a_run ])
        Chaos_oracle.all_modes)

(** {1 The campaign}

    Mutant [i] of a seeded campaign is deterministic in [(seed, i)]
    alone: its class cycles over [classes], its corpus program rotates
    with [i], and its site is drawn from an RNG derived from [seed] and
    [i] — {e not} from a state threaded through the whole run. That
    independence is what lets the supervised runner
    ({!run_supervised}) execute mutants in isolated worker processes,
    in any completion order, resumable after a crash, and still agree
    with the in-process {!run} on what mutant [i] is. *)

(** Attempt mutant [i]: pick class, program and site, apply the
    mutation and judge it. [None] when the class has no applicable
    site anywhere in the corpus. *)
let try_mutant ~(compiled : compiled list) ~classes ~seed i :
    mutant_result option =
  let n_classes = List.length classes in
  let n_programs = List.length compiled in
  let cls = List.nth classes (i mod n_classes) in
  (* Pick a corpus program that has sites for this class, starting
     from a rotating index so the load spreads. *)
  let start = i mod n_programs in
  let candidates =
    List.init n_programs (fun k ->
        List.nth compiled ((start + k) mod n_programs))
  in
  let pick =
    List.find_map
      (fun cp ->
        let sites =
          match Mutate.injection_point cls with
          | `Rtl -> Mutate.rtl_sites cls cp.cp_arts.Driver.Compiler.rtl
          | `Linear ->
            Mutate.linear_sites cls cp.cp_arts.Driver.Compiler.linear_clean
        in
        if sites = [] then None else Some (cp, sites))
      candidates
  in
  match pick with
  | None -> None (* no sites anywhere for this class: nothing to try *)
  | Some (cp, sites) ->
    let rng = Random.State.make [| seed; 7919 * (i + 1) |] in
    let site = List.nth sites (Random.State.int rng (List.length sites)) in
    let mutated =
      match Mutate.injection_point cls with
      | `Rtl ->
        Option.map
          (fun p -> `Rtl p)
          (Mutate.apply_rtl cls site cp.cp_arts.Driver.Compiler.rtl)
      | `Linear ->
        Option.map
          (fun p -> `Linear p)
          (Mutate.apply_linear cls site cp.cp_arts.Driver.Compiler.linear_clean)
    in
    match mutated with
    | None -> None (* site did not apply; enumeration/application skew *)
    | Some m ->
      Some
        (judge ~symbols:cp.cp_symbols ~arts:cp.cp_arts ~ref_outcome:cp.cp_ref
           ~program:cp.cp_name ~cls ~site cp.cp_query m)

let record_result_metrics (r : mutant_result) =
  Obs.Metrics.incr_counter "chaos.mutants";
  Obs.Metrics.incr_counter
    (if r.mr_survived then "chaos.survived" else "chaos.killed")

(** Tally a result list into the kill-rate matrix and per-class
    totals. *)
let assemble ~seed ~requested ~classes ~(results : mutant_result list) ~chaos :
    report =
  let of_class c = List.filter (fun r -> r.mr_class = c) results in
  {
    rp_seed = seed;
    rp_requested = requested;
    rp_results = results;
    rp_matrix =
      List.map
        (fun c ->
          let rs = of_class c in
          ( c,
            List.map
              (fun d ->
                ( d,
                  List.length
                    (List.filter (fun r -> List.mem_assoc d r.mr_killed_by) rs)
                ))
              detectors ))
        classes;
    rp_totals =
      List.map
        (fun c ->
          let rs = of_class c in
          ( c,
            {
              tried = List.length rs;
              killed =
                List.length (List.filter (fun r -> not r.mr_survived) rs);
            } ))
        classes;
    rp_chaos = chaos;
  }

(** Run a seeded campaign of [mutants] mutants in-process, cycling over
    the mutant classes and the corpus. Never raises: every failure mode
    is part of the result. [on_result] fires as each mutant is judged —
    the incremental-survivor dump hangs off it, so a campaign that dies
    halfway has still left its triage artifacts behind. *)
let run ?(classes = Mutate.all_classes) ?(on_result = fun _ -> ()) ~seed
    ~mutants () : (report, Diag.t) result =
  match compile_corpus () with
  | Error d -> Error d
  | Ok compiled ->
    let results = ref [] in
    for i = 0 to mutants - 1 do
      match try_mutant ~compiled ~classes ~seed i with
      | None -> ()
      | Some r ->
        record_result_metrics r;
        on_result r;
        results := r :: !results
    done;
    let chaos = run_chaos_modes () in
    Ok
      (assemble ~seed ~requested:mutants ~classes ~results:(List.rev !results)
         ~chaos)

(** The supervised campaign: one {!Harness.Supervisor} job per mutant,
    each judged in a forked worker, so a mutant that wedges or crashes
    a detector is a [Job_timeout]/[Job_crashed] outcome instead of the
    end of the campaign. The corpus is compiled once in the parent;
    workers inherit it through [fork]. With a journal and [resume],
    already-judged mutants are skipped (their results are then absent
    from the report, which accounts for them in [rp_requested] vs
    [rp_results]). Returns the report plus the raw supervisor
    outcomes. *)
let run_supervised ?(classes = Mutate.all_classes) ?(on_result = fun _ -> ())
    ~(cfg : Harness.Supervisor.config) ~seed ~mutants () :
    (report * mutant_result option Harness.Supervisor.outcome list, Diag.t)
    result =
  match compile_corpus () with
  | Error d -> Error d
  | Ok compiled ->
    let jobs =
      List.init mutants (fun i ->
          {
            Harness.Supervisor.job_id = Printf.sprintf "mutant-%04d" i;
            job_class = "chaos-mutant";
            job_run =
              (fun ~attempt:_ -> Ok (try_mutant ~compiled ~classes ~seed i));
            job_degraded = None;
          })
    in
    let results = ref [] in
    let on_outcome (o : mutant_result option Harness.Supervisor.outcome) =
      match o.Harness.Supervisor.o_payload with
      | Some (Some r) ->
        record_result_metrics r;
        on_result r;
        results := r :: !results
      | _ -> ()
    in
    let outcomes = Harness.Supervisor.run ~on_outcome cfg jobs in
    let chaos = run_chaos_modes () in
    Ok
      ( assemble ~seed ~requested:mutants ~classes
          ~results:(List.rev !results) ~chaos,
        outcomes )

(** Every chaos mode behaved as expected (misbehavior diagnosed, the
    control run clean, no uncaught exceptions). *)
let chaos_ok (rp : report) : bool =
  rp.rp_chaos <> []
  && List.for_all
       (fun c -> chaos_expectation c.cr_mode c.cr_diagnosed)
       rp.rp_chaos

(** Every must-kill class that was exercised was killed at least once,
    and all of them were exercised. *)
let must_kill_ok (rp : report) : bool =
  List.for_all
    (fun c ->
      match List.assoc_opt c rp.rp_totals with
      | Some cell -> cell.tried > 0 && cell.killed = cell.tried
      | None -> false)
    Mutate.must_kill_classes

(** The weaker acceptance check for resumed campaigns: every must-kill
    mutant that {e was} judged in this run was killed, but classes whose
    mutants were all skipped by the journal are not required to have
    been exercised again. *)
let partial_must_kill_ok (rp : report) : bool =
  List.for_all
    (fun c ->
      match List.assoc_opt c rp.rp_totals with
      | Some cell -> cell.killed = cell.tried
      | None -> true)
    Mutate.must_kill_classes

let survivors (rp : report) : mutant_result list =
  List.filter (fun r -> r.mr_survived) rp.rp_results

(** One survivor as a JSON line — the incremental triage artifact
    streamed out as the campaign runs, and the shape used in the final
    report's [survivors] array. *)
let survivor_to_json (r : mutant_result) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("class", Str (Mutate.class_name r.mr_class));
      ("program", Str r.mr_program);
      ("function", Str r.mr_site.Mutate.site_fun);
      ("loc", num_of_int r.mr_site.Mutate.site_loc);
      ("note", Str r.mr_site.Mutate.site_note);
    ]

(** {1 Reporting} *)

let pp_matrix fmt (rp : report) =
  Format.fprintf fmt "%-18s %8s %8s %8s" "class" "mutants" "killed" "rate";
  List.iter (fun d -> Format.fprintf fmt " %12s" d) detectors;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (c, cell) ->
      let rate =
        if cell.tried = 0 then "-"
        else Printf.sprintf "%3d%%" (100 * cell.killed / cell.tried)
      in
      Format.fprintf fmt "%-18s %8d %8d %8s" (Mutate.class_name c) cell.tried
        cell.killed rate;
      let row = List.assoc c rp.rp_matrix in
      List.iter
        (fun d -> Format.fprintf fmt " %12d" (List.assoc d row))
        detectors;
      Format.pp_print_newline fmt ())
    rp.rp_totals

let pp_chaos fmt (rp : report) =
  Format.fprintf fmt "%-22s %-4s %-10s %s@." "chaos mode" "lvl" "verdict"
    "outcome";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-22s %-4s %-10s %s@."
        (Chaos_oracle.mode_name c.cr_mode)
        c.cr_level
        (if chaos_expectation c.cr_mode c.cr_diagnosed then "ok"
         else "UNEXPECTED")
        c.cr_outcome)
    rp.rp_chaos

let pp_survivors fmt (rp : report) =
  match survivors rp with
  | [] -> Format.fprintf fmt "no survivors@."
  | ss ->
    List.iter
      (fun r ->
        Format.fprintf fmt "SURVIVOR %s in %s at %a@."
          (Mutate.class_name r.mr_class)
          r.mr_program Mutate.pp_site r.mr_site)
      ss

let to_json (rp : report) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("seed", num_of_int rp.rp_seed);
      ("requested", num_of_int rp.rp_requested);
      ("tried", num_of_int (List.length rp.rp_results));
      ( "killed",
        num_of_int
          (List.length (List.filter (fun r -> not r.mr_survived) rp.rp_results))
      );
      ("survived", num_of_int (List.length (survivors rp)));
      ("must_kill_ok", Bool (must_kill_ok rp));
      ("chaos_ok", Bool (chaos_ok rp));
      ( "matrix",
        Obj
          (List.map
             (fun (c, cell) ->
               let row = List.assoc c rp.rp_matrix in
               ( Mutate.class_name c,
                 Obj
                   ([
                      ("mutants", num_of_int cell.tried);
                      ("killed", num_of_int cell.killed);
                    ]
                   @ List.map (fun (d, n) -> (d, num_of_int n)) row) ))
             rp.rp_totals) );
      ("survivors", List (List.map survivor_to_json (survivors rp)));
      ( "chaos",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("mode", Str (Chaos_oracle.mode_name c.cr_mode));
                   ("level", Str c.cr_level);
                   ("outcome", Str c.cr_outcome);
                   ("diagnosed", Bool c.cr_diagnosed);
                   ( "as_expected",
                     Bool (chaos_expectation c.cr_mode c.cr_diagnosed) );
                 ])
             rp.rp_chaos) );
    ]
