(** Semantic mutators over the pipeline IRs.

    Each mutator simulates one family of compiler bugs by corrupting a
    single instruction of one pass's output; the campaign runner
    ({!Campaign}) then recompiles everything downstream of the injection
    point and asks the verification harness — the differential runner,
    the co-execution checker, the translation validator — whether the
    corruption is {e detected}. A high kill rate is the executable
    analogue of the simulation proofs actually constraining the
    compiler: it quantifies how much deviation the checkers catch.

    Mutation classes (the taxonomy of the kill-rate matrix):

    - {!Swap_operands}: reverse the operands of a non-commutative
      binary operation (RTL);
    - {!Perturb_const}: nudge an immediate or literal constant by one
      (RTL);
    - {!Drop_instr}: replace an effectful instruction by a no-op (RTL);
    - {!Dup_instr}: execute an instruction twice (RTL);
    - {!Retarget_branch}: swap the two targets of a conditional branch
      (RTL);
    - {!Corrupt_conv_slot}: corrupt a calling-convention slot (Linear) —
      a register write realizing an argument/result slot is redirected
      to a scratch register, or a stack-slot access has its offset
      shifted by one word. *)

open Support
module R = Middle.Rtl
module L = Backend.Linear
module Op = Middle.Op
module Mach = Target.Machregs

type mclass =
  | Swap_operands
  | Perturb_const
  | Drop_instr
  | Dup_instr
  | Retarget_branch
  | Corrupt_conv_slot

let all_classes =
  [
    Swap_operands;
    Perturb_const;
    Drop_instr;
    Dup_instr;
    Retarget_branch;
    Corrupt_conv_slot;
  ]

(** The classes a sound pipeline must never let escape undetected:
    dropping an instruction, retargeting a branch, and corrupting a
    convention slot change observable behavior on any live code path. *)
let must_kill_classes = [ Drop_instr; Retarget_branch; Corrupt_conv_slot ]

let class_name = function
  | Swap_operands -> "swap-operands"
  | Perturb_const -> "perturb-const"
  | Drop_instr -> "drop-instr"
  | Dup_instr -> "dup-instr"
  | Retarget_branch -> "retarget-branch"
  | Corrupt_conv_slot -> "corrupt-conv-slot"

let class_of_name s =
  List.find_opt (fun c -> class_name c = s) all_classes

(** A mutation site: the function and the instruction within it.
    [site_loc] is a CFG node for RTL classes and an instruction index
    for Linear ones; [site_note] describes the planned corruption. *)
type site = { site_fun : string; site_loc : int; site_note : string }

let pp_site fmt s =
  Format.fprintf fmt "%s@%d (%s)" s.site_fun s.site_loc s.site_note

(** {1 RTL mutators} *)

(* Operand order matters for these. *)
let non_commutative = function
  | Op.Osub | Op.Odiv | Op.Odivu | Op.Omod | Op.Omodu | Op.Oshl | Op.Oshr
  | Op.Oshru | Op.Osubl | Op.Odivl | Op.Odivlu | Op.Omodl | Op.Omodlu
  | Op.Oshll | Op.Oshrl | Op.Oshrlu | Op.Osubf | Op.Odivf | Op.Osubfs
  | Op.Odivfs ->
    true
  | _ -> false

let perturb_op = function
  | Op.Ointconst n -> Some (Op.Ointconst (Int32.add n 1l))
  | Op.Olongconst n -> Some (Op.Olongconst (Int64.add n 1L))
  | Op.Oaddimm n -> Some (Op.Oaddimm (Int32.add n 1l))
  | Op.Omulimm n -> Some (Op.Omulimm (Int32.add n 1l))
  | Op.Oandimm n -> Some (Op.Oandimm (Int32.add n 1l))
  | Op.Oorimm n -> Some (Op.Oorimm (Int32.add n 1l))
  | Op.Oxorimm n -> Some (Op.Oxorimm (Int32.add n 1l))
  | Op.Oaddlimm n -> Some (Op.Oaddlimm (Int64.add n 1L))
  | _ -> None

let perturb_cond = function
  | Op.Ccompimm (c, n) -> Some (Op.Ccompimm (c, Int32.add n 1l))
  | Op.Ccompuimm (c, n) -> Some (Op.Ccompuimm (c, Int32.add n 1l))
  | _ -> None

(* Enumerate the sites of an RTL mutation class in one function. *)
let rtl_fun_sites (cls : mclass) (name : string) (f : R.coq_function) :
    site list =
  let site loc note = { site_fun = name; site_loc = loc; site_note = note } in
  R.Regmap.fold
    (fun pc instr acc ->
      let here =
        match (cls, instr) with
        | Swap_operands, R.Iop (op, [ a; b ], _, _)
          when non_commutative op && a <> b ->
          [ site pc "swap the two operands" ]
        | Perturb_const, R.Iop (op, _, _, _) when perturb_op op <> None ->
          [ site pc "constant + 1" ]
        | Perturb_const, R.Icond (c, _, _, _) when perturb_cond c <> None ->
          [ site pc "branch immediate + 1" ]
        (* Only effectful instructions: dropping a pure op may be
           semantically neutral (dead code), which would poison the
           must-kill guarantee for this class. *)
        | Drop_instr, (R.Istore _ | R.Icall _) ->
          [ site pc "replace by nop" ]
        | Dup_instr, (R.Iop _ | R.Iload _ | R.Istore _ | R.Icall _) ->
          [ site pc "execute twice" ]
        | Retarget_branch, R.Icond (_, _, n1, n2) when n1 <> n2 ->
          [ site pc "swap branch targets" ]
        | _ -> []
      in
      here @ acc)
    f.R.fn_code []

let map_program_fun (p : ('f, 'v) Iface.Ast.program) (name : string)
    (tr : 'f -> 'f option) : ('f, 'v) Iface.Ast.program option =
  let changed = ref false in
  let defs =
    List.map
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal f) when Ident.name id = name -> (
          match tr f with
          | Some f' ->
            changed := true;
            (id, Iface.Ast.Gfun (Iface.Ast.Internal f'))
          | None -> (id, d))
        | _ -> (id, d))
      p.Iface.Ast.prog_defs
  in
  if !changed then Some { p with Iface.Ast.prog_defs = defs } else None

(* Functions reachable from [main] through direct calls. A mutation in
   an unreachable function (e.g. one fully inlined at its call sites but
   still emitted) is trivially equivalent, so such functions host no
   sites. *)
let reachable_funs (callees : 'f -> string list)
    (p : ('f, 'v) Iface.Ast.program) : string list =
  let bodies =
    List.filter_map
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal f) -> Some (Ident.name id, f)
        | _ -> None)
      p.Iface.Ast.prog_defs
  in
  let rec go seen = function
    | [] -> seen
    | name :: rest when List.mem name seen -> go seen rest
    | name :: rest -> (
      match List.assoc_opt name bodies with
      | None -> go seen rest
      | Some f -> go (name :: seen) (callees f @ rest))
  in
  go [] [ "main" ]

let rtl_callees (f : R.coq_function) : string list =
  R.Regmap.fold
    (fun _ instr acc ->
      match instr with
      | R.Icall (_, R.Rsymbol id, _, _, _) | R.Itailcall (_, R.Rsymbol id, _) ->
        Ident.name id :: acc
      | _ -> acc)
    f.R.fn_code []

(** All sites of [cls] in an RTL program (empty for the Linear-level
    class), restricted to functions reachable from [main]. *)
let rtl_sites (cls : mclass) (p : R.program) : site list =
  match cls with
  | Corrupt_conv_slot -> []
  | _ ->
    let live = reachable_funs rtl_callees p in
    List.concat_map
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal f)
          when List.mem (Ident.name id) live ->
          rtl_fun_sites cls (Ident.name id) f
        | _ -> [])
      p.Iface.Ast.prog_defs

(* The single-successor instructions can be split in two for
   duplication: [pc: i -> fresh; fresh: i -> succ]. *)
let with_successor instr n =
  match instr with
  | R.Iop (op, args, res, _) -> Some (R.Iop (op, args, res, n))
  | R.Iload (ch, a, args, dst, _) -> Some (R.Iload (ch, a, args, dst, n))
  | R.Istore (ch, a, args, src, _) -> Some (R.Istore (ch, a, args, src, n))
  | R.Icall (sg, ros, args, res, _) -> Some (R.Icall (sg, ros, args, res, n))
  | _ -> None

(** Apply an RTL mutation at a site; [None] if the site no longer
    matches (wrong class, missing node). *)
let apply_rtl (cls : mclass) (s : site) (p : R.program) : R.program option =
  map_program_fun p s.site_fun (fun f ->
      match R.Regmap.find_opt s.site_loc f.R.fn_code with
      | None -> None
      | Some instr -> (
        let set i = { f with R.fn_code = R.Regmap.add s.site_loc i f.R.fn_code } in
        match (cls, instr) with
        | Swap_operands, R.Iop (op, [ a; b ], res, n) when non_commutative op ->
          Some (set (R.Iop (op, [ b; a ], res, n)))
        | Perturb_const, R.Iop (op, args, res, n) -> (
          match perturb_op op with
          | Some op' -> Some (set (R.Iop (op', args, res, n)))
          | None -> None)
        | Perturb_const, R.Icond (c, args, n1, n2) -> (
          match perturb_cond c with
          | Some c' -> Some (set (R.Icond (c', args, n1, n2)))
          | None -> None)
        | Drop_instr, (R.Istore _ | R.Icall _) -> (
          match R.successors_instr instr with
          | [ n ] -> Some (set (R.Inop n))
          | _ -> None)
        | Dup_instr, (R.Iop _ | R.Iload _ | R.Istore _ | R.Icall _) -> (
          let fresh = R.max_node f + 1 in
          match (with_successor instr fresh, R.successors_instr instr) with
          | Some first, [ n ] ->
            let second = Option.get (with_successor instr n) in
            Some
              {
                f with
                R.fn_code =
                  R.Regmap.add s.site_loc first
                    (R.Regmap.add fresh second f.R.fn_code);
              }
          | _ -> None)
        | Retarget_branch, R.Icond (c, args, n1, n2) when n1 <> n2 ->
          Some (set (R.Icond (c, args, n2, n1)))
        | _ -> None))

(** {1 Linear mutators: convention-slot corruption}

    Writes to the registers that realize calling-convention slots — the
    argument registers before an [Lcall], the result register before an
    [Lreturn] — and accesses to [Incoming]/[Outgoing] stack slots are
    the executable form of the convention's "slots". Corrupting one
    (redirecting the write to a scratch register, or shifting the slot
    offset by a word) is exactly the class of bug the structural
    conventions [CL]/[LM]/[MA] exist to rule out. *)

let conv_regs =
  Target.Conventions.int_param_regs @ [ Target.Conventions.loc_result
                                          Memory.Mtypes.signature_main ]

let scratch_reg = Mach.R10

(* A self-move [r = move(r)] writes nothing new; redirecting its
   destination is semantically neutral, so it is not a site. *)
let self_move op args dest =
  match (op, args) with Middle.Op.Omove, [ src ] -> src = dest | _ -> false

(* A write to [reg] at instruction [i] realizes a convention slot only
   if the written value actually reaches the convention point: a call
   that takes [reg] as a parameter register, or a return with [reg] the
   result register — with no intervening redefinition. Otherwise the
   write merely happens to target a register that doubles as a parameter
   register (a call result retrieved into CX, say), and corrupting it
   can be semantically invisible: the callee may have left the very same
   value there. Equivalent mutants like that would defeat the must-kill
   gate. The scan is intraprocedural and stops conservatively at labels
   and branches; convention writes are emitted immediately before their
   call/return, so the straight-line suffix always contains them. *)
let reaches_convention_point (sg : Memory.Mtypes.signature)
    (code : L.instruction array) (i : int) (reg : Mach.mreg) : bool =
  let n = Array.length code in
  let defines = function
    | L.Lop (_, _, d) | L.Lload (_, _, _, d) | L.Lgetstack (_, _, _, d) ->
      d = reg
    | _ -> false
  in
  let rec go j =
    if j >= n then false
    else
      match code.(j) with
      | L.Lcall _ | L.Ltailcall _ ->
        List.mem reg Target.Conventions.int_param_regs
      | L.Lreturn -> reg = Target.Conventions.loc_result sg
      | L.Llabel _ | L.Lgoto _ | L.Lcond _ -> false
      | instr -> if defines instr then false else go (j + 1)
  in
  go (i + 1)

let linear_fun_sites (name : string) (f : L.coq_function) : site list =
  let site loc note = { site_fun = name; site_loc = loc; site_note = note } in
  let code = Array.of_list f.L.fn_code in
  List.concat
    (List.mapi
       (fun i instr ->
         match instr with
         | L.Lop (op, args, dest)
           when List.mem dest conv_regs && dest <> scratch_reg
                && not (self_move op args dest)
                && reaches_convention_point f.L.fn_sig code i dest ->
           [ site i "redirect convention-register write to scratch" ]
         | L.Lgetstack (_, _, _, _) -> [ site i "shift stack slot by one word" ]
         | L.Lsetstack (_, _, _, _) -> [ site i "shift stack slot by one word" ]
         | _ -> [])
       f.L.fn_code)

let linear_callees (f : L.coq_function) : string list =
  List.filter_map
    (function
      | L.Lcall (_, L.Rsymbol id) | L.Ltailcall (_, L.Rsymbol id) ->
        Some (Ident.name id)
      | _ -> None)
    f.L.fn_code

let linear_sites (cls : mclass) (p : L.program) : site list =
  match cls with
  | Corrupt_conv_slot ->
    let live = reachable_funs linear_callees p in
    List.concat_map
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal f)
          when List.mem (Ident.name id) live ->
          linear_fun_sites (Ident.name id) f
        | _ -> [])
      p.Iface.Ast.prog_defs
  | _ -> []

let apply_linear (cls : mclass) (s : site) (p : L.program) : L.program option =
  match cls with
  | Corrupt_conv_slot ->
    map_program_fun p s.site_fun (fun f ->
        let changed = ref false in
        let code =
          List.mapi
            (fun i instr ->
              if i <> s.site_loc then instr
              else
                match instr with
                | L.Lop (op, args, dest)
                  when List.mem dest conv_regs && dest <> scratch_reg
                       && not (self_move op args dest) ->
                  changed := true;
                  L.Lop (op, args, scratch_reg)
                | L.Lgetstack (sl, ofs, ty, dst) ->
                  changed := true;
                  L.Lgetstack (sl, ofs + 1, ty, dst)
                | L.Lsetstack (src, sl, ofs, ty) ->
                  changed := true;
                  L.Lsetstack (src, sl, ofs + 1, ty)
                | other -> other)
            f.L.fn_code
        in
        if !changed then Some { f with L.fn_code = code } else None)
  | _ -> None

(** Which IR a class mutates. *)
let injection_point = function
  | Corrupt_conv_slot -> `Linear
  | _ -> `Rtl
