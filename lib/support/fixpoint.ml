(** Generic worklist fixpoint solver over integer-indexed flow graphs.

    This is the analogue of CompCert's [Kildall] library. Dataflow analyses
    (liveness, constant propagation, value analysis, neededness) instantiate
    the [SEMILATTICE] signature and solve either in the forward or the
    backward direction. Nodes are plain integers (RTL nodes, Linear labels). *)

module type SEMILATTICE = sig
  type t

  val bot : t
  val equal : t -> t -> bool

  (** Least upper bound. Must be monotone; the solver iterates to a
      post-fixpoint and relies on finite ascending chains for termination
      (analyses with infinite-height lattices must widen in [lub]).
      Implementations should return one of their arguments physically
      when it already absorbs the other — the solver tests physical
      equality before the (potentially expensive) [equal]. *)
  val lub : t -> t -> t
end

module type SOLVER = sig
  type fact

  (** [solve ~successors ~transfer ~entries nodes] returns the least solution
      [s] such that for every node [n] and successor [m] of [n],
      [transfer n s(n) <= s(m)], and [v <= s(n)] for every entry [(n, v)].
      The returned function gives the fact at the *entrance* of each node. *)
  val solve :
    successors:(int -> int list) ->
    transfer:(int -> fact -> fact) ->
    entries:(int * fact) list ->
    int list ->
    int -> fact

  (** Backward analysis: facts flow from successors to predecessors. The
      returned function gives the fact at the *exit* of each node, i.e. the
      join of the transferred facts of all successors. *)
  val solve_backward :
    successors:(int -> int list) ->
    transfer:(int -> fact -> fact) ->
    entries:(int * fact) list ->
    int list ->
    int -> fact
end

module Make (L : SEMILATTICE) : SOLVER with type fact = L.t = struct
  type fact = L.t

  (* Both directions run on a dense-array engine: nodes are small
     non-negative integers (RTL nodes and Linear labels are allocated
     sequentially from 1), so facts, the visited queue and the
     predecessor lists live in flat arrays — no hashing in the hot loop.
     The queue holds each node at most once ([in_queue]), so a ring
     buffer of [n + 1] slots never overflows. *)

  let run ~(edges : int -> int list) ~transfer ~entries ~(seed : int list)
      (size : int) : int -> L.t =
    let value = Array.make size L.bot in
    let in_queue = Array.make size false in
    let queue = Array.make (size + 1) 0 in
    let head = ref 0 and tail = ref 0 in
    let enqueue n =
      if not in_queue.(n) then begin
        in_queue.(n) <- true;
        queue.(!tail) <- n;
        tail := (!tail + 1) mod Array.length queue
      end
    in
    let augment n v =
      let old = value.(n) in
      let merged = L.lub old v in
      (* [lub] preserves sharing when one side absorbs the other, so a
         physical-equality check skips most [equal] calls. *)
      if merged != old && not (L.equal old merged) then begin
        value.(n) <- merged;
        enqueue n
      end
    in
    List.iter (fun (n, v) -> augment n v) entries;
    List.iter enqueue seed;
    while !head <> !tail do
      let n = queue.(!head) in
      head := (!head + 1) mod Array.length queue;
      in_queue.(n) <- false;
      let out = transfer n value.(n) in
      List.iter (fun p -> augment p out) (edges n)
    done;
    fun n -> if n >= 0 && n < size then value.(n) else L.bot

  let graph_size entries nodes successors =
    let m = List.fold_left (fun acc (n, _) -> max acc n) 0 entries in
    List.fold_left
      (fun acc n -> List.fold_left max (max acc n) (successors n))
      m nodes
    + 1

  let solve ~successors ~transfer ~entries nodes =
    run
      ~edges:successors
      ~transfer ~entries ~seed:nodes
      (graph_size entries nodes successors)

  let solve_backward ~successors ~transfer ~entries nodes =
    let size = graph_size entries nodes successors in
    (* Invert the graph, then run the forward engine on it. *)
    let preds = Array.make size [] in
    List.iter
      (fun n -> List.iter (fun m -> preds.(m) <- n :: preds.(m)) (successors n))
      nodes;
    (* Seed in reverse: node ids grow roughly in program order, so
       processing later nodes first lets facts propagate backward in few
       passes. *)
    run
      ~edges:(fun n -> preds.(n))
      ~transfer ~entries ~seed:(List.rev nodes) size
end
