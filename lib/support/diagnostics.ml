(** Structured diagnostics for the driver, runners and CLI.

    The error monad of {!Errors} carries a bare string, which is enough
    for a pass to say {e why} it failed but not for the driver to say
    {e where}: which pass, in which phase of the pipeline, under what
    circumstances. A [Diagnostics.t] carries that context, so the
    hardened driver ([Compiler.compile_diag]), the campaign runner and
    [occo] can report a failure — including a caught exception or an
    exceeded per-pass budget — as data rather than as an abort with a
    raw backtrace. *)

(** Where in the lifecycle the failure happened. *)
type phase =
  | Parsing  (** lexing / parsing the C source *)
  | Frontend  (** SimplLocals through Cminorgen *)
  | Middle  (** Selection through the RTL optimizations *)
  | Backend  (** Allocation through Asmgen *)
  | Linking  (** syntactic linking *)
  | Running  (** executing a semantics / marshaling a query *)
  | Campaign  (** the fault-injection campaign harness *)
  | Batch  (** the supervised batch-execution layer *)
  | Service  (** the long-running compile service ([occo serve]) *)

(** What kind of failure it was. *)
type kind =
  | Lexical_error
  | Syntax_error
  | Pass_failure  (** a pass returned [Error] *)
  | Validation_failure  (** a translation validator rejected the output *)
  | Budget_exceeded  (** a pass exceeded its wall-clock budget *)
  | Marshal_failure  (** a simulation convention could not carry a query/reply *)
  | Oracle_refusal  (** the environment refused an external call *)
  | Oracle_violation  (** the environment answered outside the convention *)
  | Resource_exhausted  (** fuel or another bounded resource ran out *)
  | Internal_error  (** a caught exception: a bug in the compiler itself *)
  | Job_crashed  (** a supervised worker process died (signal or bad exit) *)
  | Job_timeout  (** a supervised worker exceeded its wall-clock limit *)
  | Circuit_open  (** the job was shed: its class's circuit breaker is open *)
  | Domain_overlap
      (** two horizontally composed components both accept the same
          question — linked programs must have disjoint domains, so the
          routing choice would silently mask a linker error *)
  | Cache_corrupt
      (** an on-disk artifact-cache entry failed its checksum on read;
          the entry was quarantined and the artifact re-derived *)
  | Poisoned
      (** the request crashed its workers repeatedly and was quarantined
          — it will not be retried into a crash loop *)
  | Overloaded  (** the service queue is full; the request was shed *)
  | Deadline_exceeded
      (** the request's end-to-end deadline passed before a worker
          could finish it *)

type t = {
  phase : phase;
  kind : kind;
  pass : string option;  (** the pass or component that failed, if known *)
  message : string;
  context : (string * string) list;  (** free-form key/value details *)
}

(** Results diagnosed with structured errors. *)
type 'a r = ('a, t) result

let phase_name = function
  | Parsing -> "parsing"
  | Frontend -> "frontend"
  | Middle -> "middle"
  | Backend -> "backend"
  | Linking -> "linking"
  | Running -> "running"
  | Campaign -> "campaign"
  | Batch -> "batch"
  | Service -> "service"

let kind_name = function
  | Lexical_error -> "lexical-error"
  | Syntax_error -> "syntax-error"
  | Pass_failure -> "pass-failure"
  | Validation_failure -> "validation-failure"
  | Budget_exceeded -> "budget-exceeded"
  | Marshal_failure -> "marshal-failure"
  | Oracle_refusal -> "oracle-refusal"
  | Oracle_violation -> "oracle-violation"
  | Resource_exhausted -> "resource-exhausted"
  | Internal_error -> "internal-error"
  | Job_crashed -> "job-crashed"
  | Job_timeout -> "job-timeout"
  | Circuit_open -> "circuit-open"
  | Domain_overlap -> "domain-overlap"
  | Cache_corrupt -> "cache-corrupt"
  | Poisoned -> "poisoned"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"

(** Transient failure classes: ones where retrying the same job can
    plausibly succeed (a slow machine, a transiently loaded box, an
    OOM-killed or wedged worker whose next incarnation draws a fresh
    address space). Deterministic rejections — a pass returning
    [Error], a validator refusal, a syntax error — are not transient:
    retrying them only burns the backoff schedule. [Circuit_open] is
    deliberately not transient either; shed load must fail fast, the
    breaker's half-open probe is the retry mechanism. *)
let is_transient = function
  | Budget_exceeded | Resource_exhausted | Job_crashed | Job_timeout
  | Cache_corrupt ->
    (* A corrupt cache entry is quarantined on detection, so the retry
       recompiles from scratch — it can plausibly succeed. *)
    true
  | Lexical_error | Syntax_error | Pass_failure | Validation_failure
  | Marshal_failure | Oracle_refusal | Oracle_violation | Internal_error
  | Circuit_open | Domain_overlap | Poisoned | Overloaded
  | Deadline_exceeded ->
    (* Poisoned requests must never re-enter the crash loop; shed load
       and blown deadlines must fail fast — the client decides. *)
    false

let make ?pass ?(context = []) ~phase ~kind fmt =
  Format.kasprintf
    (fun message -> { phase; kind; pass; message; context })
    fmt

let error ?pass ?context ~phase ~kind fmt =
  Format.kasprintf
    (fun message ->
      Error
        {
          phase;
          kind;
          pass;
          message;
          context = Option.value context ~default:[];
        })
    fmt

(** Capture an exception as an [Internal_error] diagnostic. The
    backtrace is folded into the context, never printed raw. *)
let of_exn ?pass ~phase (e : exn) : t =
  {
    phase;
    kind = Internal_error;
    pass;
    message = Printexc.to_string e;
    context = [ ("exception", Printexc.to_string e) ];
  }

(** Flatten to key/value pairs, ready for a JSON or log renderer (the
    [Obs.Json] dependency lives upstream, so the rendering does too). *)
let to_fields (d : t) : (string * string) list =
  [ ("phase", phase_name d.phase); ("kind", kind_name d.kind) ]
  @ (match d.pass with Some p -> [ ("pass", p) ] | None -> [])
  @ [ ("message", d.message) ]
  @ d.context

let pp fmt (d : t) =
  Format.fprintf fmt "[%s/%s]%s %s" (phase_name d.phase) (kind_name d.kind)
    (match d.pass with Some p -> " " ^ p ^ ":" | None -> "")
    d.message;
  match d.context with
  | [] -> ()
  | ctx ->
    Format.fprintf fmt " (%s)"
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) ctx))

let to_string (d : t) = Format.asprintf "%a" pp d

(** Downgrade to the plain-string error monad of {!Errors}. *)
let to_errors (r : 'a r) : 'a Errors.t =
  match r with Ok x -> Ok x | Error d -> Error (to_string d)

(** Upgrade a plain [Errors.t] failure into a diagnostic. *)
let of_errors ?pass ~phase ~kind (r : 'a Errors.t) : 'a r =
  match r with
  | Ok x -> Ok x
  | Error msg -> Error { phase; kind; pass; message = msg; context = [] }

let ( let* ) m f = match m with Ok x -> f x | Error _ as e -> e
