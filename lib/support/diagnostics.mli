(** Structured diagnostics: the error taxonomy used by the hardened
    driver, the runners and the [occo] CLI. Each diagnostic records the
    lifecycle phase, the kind of failure, the pass (when known), a
    message, and free-form context — so failures are reported as data
    rather than as uncaught exceptions. *)

type phase =
  | Parsing
  | Frontend
  | Middle
  | Backend
  | Linking
  | Running
  | Campaign
  | Batch
  | Service

type kind =
  | Lexical_error
  | Syntax_error
  | Pass_failure
  | Validation_failure
  | Budget_exceeded
  | Marshal_failure
  | Oracle_refusal
  | Oracle_violation
  | Resource_exhausted
  | Internal_error
  | Job_crashed
  | Job_timeout
  | Circuit_open
  | Domain_overlap
  | Cache_corrupt
  | Poisoned
  | Overloaded
  | Deadline_exceeded

type t = {
  phase : phase;
  kind : kind;
  pass : string option;
  message : string;
  context : (string * string) list;
}

type 'a r = ('a, t) result

val phase_name : phase -> string
val kind_name : kind -> string

(** Is retrying a failure of this kind worthwhile? True for crashes,
    timeouts and exhausted budgets/resources; false for deterministic
    rejections (and for [Circuit_open], which must fail fast). *)
val is_transient : kind -> bool

(** [make ~phase ~kind fmt ...] builds a diagnostic with a formatted
    message. *)
val make :
  ?pass:string ->
  ?context:(string * string) list ->
  phase:phase ->
  kind:kind ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** [error] is [make] wrapped in [Error]. *)
val error :
  ?pass:string ->
  ?context:(string * string) list ->
  phase:phase ->
  kind:kind ->
  ('a, Format.formatter, unit, 'b r) format4 ->
  'a

(** Capture a caught exception as an [Internal_error] diagnostic. *)
val of_exn : ?pass:string -> phase:phase -> exn -> t

(** Key/value pairs for a JSON or log renderer. *)
val to_fields : t -> (string * string) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Downgrade to the plain-string error monad. *)
val to_errors : 'a r -> 'a Errors.t

(** Upgrade a plain [Errors.t] failure into a diagnostic. *)
val of_errors : ?pass:string -> phase:phase -> kind:kind -> 'a Errors.t -> 'a r

val ( let* ) : 'a r -> ('a -> 'b r) -> 'b r
