(** Liveness analysis over RTL (backward dataflow, CompCert's [Liveness]).

    Used by register allocation (interference construction) and by the
    dead-code elimination pass. *)

module RSet = Set.Make (Int)

module L = struct
  type t = RSet.t

  let bot = RSet.empty
  let equal = RSet.equal
  let lub = RSet.union
end

module Solver = Support.Fixpoint.Make (L)

(* Transfer function at node [n] holding instruction [i]:
   live-in = (live-out \ defs) ∪ uses. *)
let transfer (f : Rtl.coq_function) n (live_out : RSet.t) : RSet.t =
  match Rtl.Regmap.find_opt n f.Rtl.fn_code with
  | None -> RSet.empty
  | Some i ->
    let defs = RSet.of_list (Rtl.instr_defs i) in
    let uses = RSet.of_list (Rtl.instr_uses i) in
    RSet.union (RSet.diff live_out defs) uses

(** [analyze f] returns [live_in]: for each node, the registers live at
    the entrance of the node's instruction. *)
let analyze (f : Rtl.coq_function) : int -> RSet.t =
  let nodes = List.map fst (Rtl.Regmap.bindings f.Rtl.fn_code) in
  let successors n =
    match Rtl.Regmap.find_opt n f.Rtl.fn_code with
    | Some i -> Rtl.successors_instr i
    | None -> []
  in
  (* solve_backward gives the fact at the exit of each node: the join of
     live-ins of successors. live-in is then one transfer application. *)
  let live_out =
    Solver.solve_backward ~successors
      ~transfer:(fun n out -> transfer f n out)
      ~entries:[] nodes
  in
  fun n -> transfer f n (live_out n)

(** Live-out of each node. *)
let analyze_out (f : Rtl.coq_function) : int -> RSet.t =
  let nodes = List.map fst (Rtl.Regmap.bindings f.Rtl.fn_code) in
  let successors n =
    match Rtl.Regmap.find_opt n f.Rtl.fn_code with
    | Some i -> Rtl.successors_instr i
    | None -> []
  in
  Solver.solve_backward ~successors
    ~transfer:(fun n out -> transfer f n out)
    ~entries:[] nodes
