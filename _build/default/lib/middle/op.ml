(** Machine operations, addressing modes and conditions (CompCert's
    [Op], x86-64-flavored).

    These are the operators of CminorSel, RTL, LTL, Linear, Mach and Asm.
    The [Selection] pass translates [Cmops] operators into these,
    recognizing immediate forms and addressing modes. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values

type condition =
  | Ccomp of comparison  (** signed 32-bit *)
  | Ccompu of comparison
  | Ccompimm of comparison * int32
  | Ccompuimm of comparison * int32
  | Ccompl of comparison  (** signed 64-bit *)
  | Ccomplu of comparison
  | Ccomplimm of comparison * int64
  | Ccompluimm of comparison * int64
  | Ccompf of comparison
  | Ccompfs of comparison
  | Cmaskzero of int32
  | Cmasknotzero of int32

type addressing =
  | Aindexed of int  (** r1 + ofs *)
  | Aindexed2 of int  (** r1 + r2 + ofs *)
  | Ascaled of int * int  (** r1 * scale + ofs *)
  | Aindexed2scaled of int * int  (** r1 + r2 * scale + ofs *)
  | Aglobal of Ident.t * int
  | Ainstack of int

type operation =
  | Omove
  | Ointconst of int32
  | Olongconst of int64
  | Ofloatconst of float
  | Osingleconst of float
  | Oaddrsymbol of Ident.t * int
  | Oaddrstack of int
  (* 32-bit integer arithmetic *)
  | Oadd | Oaddimm of int32
  | Osub
  | Omul | Omulimm of int32
  | Odiv | Odivu | Omod | Omodu
  | Oand | Oandimm of int32
  | Oor | Oorimm of int32
  | Oxor | Oxorimm of int32
  | Oshl | Oshlimm of int32
  | Oshr | Oshrimm of int32
  | Oshru | Oshruimm of int32
  | Oneg | Onot
  | Ocast8signed | Ocast8unsigned | Ocast16signed | Ocast16unsigned
  (* 64-bit integer arithmetic *)
  | Oaddl | Oaddlimm of int64
  | Osubl
  | Omull | Omullimm of int64
  | Odivl | Odivlu | Omodl | Omodlu
  | Oandl | Oandlimm of int64
  | Oorl | Oorlimm of int64
  | Oxorl | Oxorlimm of int64
  | Oshll | Oshllimm of int32
  | Oshrl | Oshrlimm of int32
  | Oshrlu | Oshrluimm of int32
  | Onegl | Onotl
  (* leaq-style address computation *)
  | Olea of addressing
  (* conversions *)
  | Olongofint | Olongofintu | Ointoflong
  | Ofloatofint | Ointoffloat
  | Ofloatoflong | Olongoffloat
  | Osingleoffloat | Ofloatofsingle
  | Osingleofint | Ointofsingle
  (* floating point *)
  | Onegf | Oabsf | Oaddf | Osubf | Omulf | Odivf
  | Onegfs | Oaddfs | Osubfs | Omulfs | Odivfs
  (* conditions *)
  | Ocmp of condition

(** {1 Evaluation} *)

type genv_view = { find_symbol : Ident.t -> block option }

let eval_condition (cond : condition) (vl : value list) (m : Mem.t) : bool option =
  let valid b o = Mem.weak_valid_pointer m b o in
  match (cond, vl) with
  | Ccomp c, [ v1; v2 ] -> cmp_bool c v1 v2
  | Ccompu c, [ v1; v2 ] -> cmpu_bool c v1 v2
  | Ccompimm (c, n), [ v1 ] -> cmp_bool c v1 (Vint n)
  | Ccompuimm (c, n), [ v1 ] -> cmpu_bool c v1 (Vint n)
  | Ccompl c, [ v1; v2 ] -> cmpl_bool c v1 v2
  | Ccomplu c, [ v1; v2 ] -> cmplu_bool ~valid c v1 v2
  | Ccomplimm (c, n), [ v1 ] -> cmpl_bool c v1 (Vlong n)
  | Ccompluimm (c, n), [ v1 ] -> cmplu_bool ~valid c v1 (Vlong n)
  | Ccompf c, [ v1; v2 ] -> cmpf_bool c v1 v2
  | Ccompfs c, [ v1; v2 ] -> cmpfs_bool c v1 v2
  | Cmaskzero n, [ v1 ] -> (
    match and_ v1 (Vint n) with Vint r -> Some (r = 0l) | _ -> None)
  | Cmasknotzero n, [ v1 ] -> (
    match and_ v1 (Vint n) with Vint r -> Some (r <> 0l) | _ -> None)
  | _ -> None

let eval_addressing (ge : genv_view) (sp : value) (addr : addressing)
    (vl : value list) : value option =
  let scale v s =
    match v with Vlong n -> Some (Vlong (Int64.mul n (Int64.of_int s))) | _ -> None
  in
  match (addr, vl) with
  | Aindexed ofs, [ v1 ] -> Some (addl v1 (Vlong (Int64.of_int ofs)))
  | Aindexed2 ofs, [ v1; v2 ] -> Some (addl (addl v1 v2) (Vlong (Int64.of_int ofs)))
  | Ascaled (sc, ofs), [ v1 ] -> (
    match scale v1 sc with
    | Some v -> Some (addl v (Vlong (Int64.of_int ofs)))
    | None -> None)
  | Aindexed2scaled (sc, ofs), [ v1; v2 ] -> (
    match scale v2 sc with
    | Some v -> Some (addl (addl v1 v) (Vlong (Int64.of_int ofs)))
    | None -> None)
  | Aglobal (id, ofs), [] -> (
    match ge.find_symbol id with Some b -> Some (Vptr (b, ofs)) | None -> None)
  | Ainstack ofs, [] -> (
    match sp with Vptr (b, base) -> Some (Vptr (b, base + ofs)) | _ -> None)
  | _ -> None

let eval_operation (ge : genv_view) (sp : value) (op : operation)
    (vl : value list) (m : Mem.t) : value option =
  let b1 f = match vl with [ v1 ] -> f v1 | _ -> None in
  let b2 f = match vl with [ v1; v2 ] -> f v1 v2 | _ -> None in
  let t1 f = b1 (fun v -> Some (f v)) in
  let t2 f = b2 (fun v1 v2 -> Some (f v1 v2)) in
  match op with
  | Omove -> b1 (fun v -> Some v)
  | Ointconst n -> Some (Vint n)
  | Olongconst n -> Some (Vlong n)
  | Ofloatconst f -> Some (Vfloat f)
  | Osingleconst f -> Some (Vsingle f)
  | Oaddrsymbol (id, ofs) -> (
    match ge.find_symbol id with Some b -> Some (Vptr (b, ofs)) | None -> None)
  | Oaddrstack ofs -> (
    match sp with Vptr (b, base) -> Some (Vptr (b, base + ofs)) | _ -> None)
  | Oadd -> t2 add
  | Oaddimm n -> t1 (fun v -> add v (Vint n))
  | Osub -> t2 sub
  | Omul -> t2 mul
  | Omulimm n -> t1 (fun v -> mul v (Vint n))
  | Odiv -> b2 divs
  | Odivu -> b2 divu
  | Omod -> b2 mods
  | Omodu -> b2 modu
  | Oand -> t2 and_
  | Oandimm n -> t1 (fun v -> and_ v (Vint n))
  | Oor -> t2 or_
  | Oorimm n -> t1 (fun v -> or_ v (Vint n))
  | Oxor -> t2 xor
  | Oxorimm n -> t1 (fun v -> xor v (Vint n))
  | Oshl -> t2 shl
  | Oshlimm n -> t1 (fun v -> shl v (Vint n))
  | Oshr -> t2 shr
  | Oshrimm n -> t1 (fun v -> shr v (Vint n))
  | Oshru -> t2 shru
  | Oshruimm n -> t1 (fun v -> shru v (Vint n))
  | Oneg -> t1 neg
  | Onot -> t1 notint
  | Ocast8signed -> t1 (sign_ext 8)
  | Ocast8unsigned -> t1 (zero_ext 8)
  | Ocast16signed -> t1 (sign_ext 16)
  | Ocast16unsigned -> t1 (zero_ext 16)
  | Oaddl -> t2 addl
  | Oaddlimm n -> t1 (fun v -> addl v (Vlong n))
  | Osubl -> t2 subl
  | Omull -> t2 mull
  | Omullimm n -> t1 (fun v -> mull v (Vlong n))
  | Odivl -> b2 divls
  | Odivlu -> b2 divlu
  | Omodl -> b2 modls
  | Omodlu -> b2 modlu
  | Oandl -> t2 andl
  | Oandlimm n -> t1 (fun v -> andl v (Vlong n))
  | Oorl -> t2 orl
  | Oorlimm n -> t1 (fun v -> orl v (Vlong n))
  | Oxorl -> t2 xorl
  | Oxorlimm n -> t1 (fun v -> xorl v (Vlong n))
  | Oshll -> t2 shll
  | Oshllimm n -> t1 (fun v -> shll v (Vint n))
  | Oshrl -> t2 shrl
  | Oshrlimm n -> t1 (fun v -> shrl v (Vint n))
  | Oshrlu -> t2 shrlu
  | Oshrluimm n -> t1 (fun v -> shrlu v (Vint n))
  | Onegl -> t1 negl
  | Onotl -> t1 notl
  | Olea addr -> eval_addressing ge sp addr vl
  | Olongofint -> t1 longofint
  | Olongofintu -> t1 longofintu
  | Ointoflong -> t1 intoflong
  | Ofloatofint -> t1 floatofint
  | Ointoffloat -> b1 intoffloat
  | Ofloatoflong -> t1 floatoflong
  | Olongoffloat -> b1 longoffloat
  | Osingleoffloat -> t1 singleoffloat
  | Ofloatofsingle -> t1 floatofsingle
  | Osingleofint -> t1 singleofint
  | Ointofsingle -> b1 intofsingle
  | Onegf -> t1 negf
  | Oabsf -> t1 absf
  | Oaddf -> t2 addf
  | Osubf -> t2 subf
  | Omulf -> t2 mulf
  | Odivf -> t2 divf
  | Onegfs -> t1 negfs
  | Oaddfs -> t2 addfs
  | Osubfs -> t2 subfs
  | Omulfs -> t2 mulfs
  | Odivfs -> t2 divfs
  | Ocmp c -> (
    match eval_condition c vl m with
    | Some b -> Some (of_bool b)
    | None -> Some Vundef)

(** Number of arguments expected by an operation. *)
let rec args_of_operation = function
  | Omove -> 1
  | Ointconst _ | Olongconst _ | Ofloatconst _ | Osingleconst _
  | Oaddrsymbol _ | Oaddrstack _ ->
    0
  | Oaddimm _ | Omulimm _ | Oandimm _ | Oorimm _ | Oxorimm _ | Oshlimm _
  | Oshrimm _ | Oshruimm _ | Oneg | Onot | Ocast8signed | Ocast8unsigned
  | Ocast16signed | Ocast16unsigned | Oaddlimm _ | Omullimm _ | Oandlimm _
  | Oorlimm _ | Oxorlimm _ | Oshllimm _ | Oshrlimm _ | Oshrluimm _ | Onegl
  | Onotl | Olongofint | Olongofintu | Ointoflong | Ofloatofint | Ointoffloat
  | Ofloatoflong | Olongoffloat | Osingleoffloat | Ofloatofsingle
  | Osingleofint | Ointofsingle | Onegf | Oabsf | Onegfs ->
    1
  | Oadd | Osub | Omul | Odiv | Odivu | Omod | Omodu | Oand | Oor | Oxor
  | Oshl | Oshr | Oshru | Oaddl | Osubl | Omull | Odivl | Odivlu | Omodl
  | Omodlu | Oandl | Oorl | Oxorl | Oshll | Oshrl | Oshrlu | Oaddf | Osubf
  | Omulf | Odivf | Oaddfs | Osubfs | Omulfs | Odivfs ->
    2
  | Olea (Aindexed _ | Ascaled _) -> 1
  | Olea (Aindexed2 _ | Aindexed2scaled _) -> 2
  | Olea (Aglobal _ | Ainstack _) -> 0
  | Ocmp c -> args_of_condition c

and args_of_condition = function
  | Ccomp _ | Ccompu _ | Ccompl _ | Ccomplu _ | Ccompf _ | Ccompfs _ -> 2
  | Ccompimm _ | Ccompuimm _ | Ccomplimm _ | Ccompluimm _ | Cmaskzero _
  | Cmasknotzero _ ->
    1

(** The machine type of an operation's result (used by the register
    allocator and the [wt] reasoning). *)
let type_of_operation = function
  | Omove -> None (* polymorphic: type of its argument *)
  | Ointconst _ | Oadd | Oaddimm _ | Osub | Omul | Omulimm _ | Odiv | Odivu
  | Omod | Omodu | Oand | Oandimm _ | Oor | Oorimm _ | Oxor | Oxorimm _
  | Oshl | Oshlimm _ | Oshr | Oshrimm _ | Oshru | Oshruimm _ | Oneg | Onot
  | Ocast8signed | Ocast8unsigned | Ocast16signed | Ocast16unsigned
  | Ointoflong | Ointoffloat | Ointofsingle | Ocmp _ ->
    Some Tint
  | Olongconst _ | Oaddrsymbol _ | Oaddrstack _ | Oaddl | Oaddlimm _ | Osubl
  | Omull | Omullimm _ | Odivl | Odivlu | Omodl | Omodlu | Oandl | Oandlimm _
  | Oorl | Oorlimm _ | Oxorl | Oxorlimm _ | Oshll | Oshllimm _ | Oshrl
  | Oshrlimm _ | Oshrlu | Oshrluimm _ | Onegl | Onotl | Olea _ | Olongofint
  | Olongofintu | Olongoffloat ->
    Some Tlong
  | Ofloatconst _ | Ofloatofint | Ofloatoflong | Ofloatofsingle | Onegf
  | Oabsf | Oaddf | Osubf | Omulf | Odivf ->
    Some Tfloat
  | Osingleconst _ | Osingleoffloat | Osingleofint | Onegfs | Oaddfs
  | Osubfs | Omulfs | Odivfs ->
    Some Tsingle

(** {1 Printing} *)

let pp_condition fmt (c : condition) =
  let p = Format.fprintf in
  match c with
  | Ccomp c -> p fmt "cmp%a" pp_comparison c
  | Ccompu c -> p fmt "cmpu%a" pp_comparison c
  | Ccompimm (c, n) -> p fmt "cmp%a[%ld]" pp_comparison c n
  | Ccompuimm (c, n) -> p fmt "cmpu%a[%ld]" pp_comparison c n
  | Ccompl c -> p fmt "cmpl%a" pp_comparison c
  | Ccomplu c -> p fmt "cmplu%a" pp_comparison c
  | Ccomplimm (c, n) -> p fmt "cmpl%a[%Ld]" pp_comparison c n
  | Ccompluimm (c, n) -> p fmt "cmplu%a[%Ld]" pp_comparison c n
  | Ccompf c -> p fmt "cmpf%a" pp_comparison c
  | Ccompfs c -> p fmt "cmpfs%a" pp_comparison c
  | Cmaskzero n -> p fmt "maskzero[%ld]" n
  | Cmasknotzero n -> p fmt "masknotzero[%ld]" n

let pp_addressing fmt (a : addressing) =
  let p = Format.fprintf in
  match a with
  | Aindexed ofs -> p fmt "indexed(%d)" ofs
  | Aindexed2 ofs -> p fmt "indexed2(%d)" ofs
  | Ascaled (sc, ofs) -> p fmt "scaled(%d,%d)" sc ofs
  | Aindexed2scaled (sc, ofs) -> p fmt "indexed2scaled(%d,%d)" sc ofs
  | Aglobal (id, ofs) -> p fmt "&%a+%d" Ident.pp id ofs
  | Ainstack ofs -> p fmt "stack(%d)" ofs

let pp_operation fmt (op : operation) =
  let p = Format.fprintf in
  match op with
  | Omove -> p fmt "move"
  | Ointconst n -> p fmt "%ld" n
  | Olongconst n -> p fmt "%LdL" n
  | Ofloatconst f -> p fmt "%g" f
  | Osingleconst f -> p fmt "%gf" f
  | Oaddrsymbol (id, ofs) -> p fmt "&%a+%d" Ident.pp id ofs
  | Oaddrstack ofs -> p fmt "&stack+%d" ofs
  | Oadd -> p fmt "add"
  | Oaddimm n -> p fmt "add[%ld]" n
  | Osub -> p fmt "sub"
  | Omul -> p fmt "mul"
  | Omulimm n -> p fmt "mul[%ld]" n
  | Odiv -> p fmt "div" | Odivu -> p fmt "divu"
  | Omod -> p fmt "mod" | Omodu -> p fmt "modu"
  | Oand -> p fmt "and" | Oandimm n -> p fmt "and[%ld]" n
  | Oor -> p fmt "or" | Oorimm n -> p fmt "or[%ld]" n
  | Oxor -> p fmt "xor" | Oxorimm n -> p fmt "xor[%ld]" n
  | Oshl -> p fmt "shl" | Oshlimm n -> p fmt "shl[%ld]" n
  | Oshr -> p fmt "shr" | Oshrimm n -> p fmt "shr[%ld]" n
  | Oshru -> p fmt "shru" | Oshruimm n -> p fmt "shru[%ld]" n
  | Oneg -> p fmt "neg" | Onot -> p fmt "not"
  | Ocast8signed -> p fmt "cast8s" | Ocast8unsigned -> p fmt "cast8u"
  | Ocast16signed -> p fmt "cast16s" | Ocast16unsigned -> p fmt "cast16u"
  | Oaddl -> p fmt "addl" | Oaddlimm n -> p fmt "addl[%Ld]" n
  | Osubl -> p fmt "subl"
  | Omull -> p fmt "mull" | Omullimm n -> p fmt "mull[%Ld]" n
  | Odivl -> p fmt "divl" | Odivlu -> p fmt "divlu"
  | Omodl -> p fmt "modl" | Omodlu -> p fmt "modlu"
  | Oandl -> p fmt "andl" | Oandlimm n -> p fmt "andl[%Ld]" n
  | Oorl -> p fmt "orl" | Oorlimm n -> p fmt "orl[%Ld]" n
  | Oxorl -> p fmt "xorl" | Oxorlimm n -> p fmt "xorl[%Ld]" n
  | Oshll -> p fmt "shll" | Oshllimm n -> p fmt "shll[%ld]" n
  | Oshrl -> p fmt "shrl" | Oshrlimm n -> p fmt "shrl[%ld]" n
  | Oshrlu -> p fmt "shrlu" | Oshrluimm n -> p fmt "shrlu[%ld]" n
  | Onegl -> p fmt "negl" | Onotl -> p fmt "notl"
  | Olea a -> p fmt "lea %a" pp_addressing a
  | Olongofint -> p fmt "longofint" | Olongofintu -> p fmt "longofintu"
  | Ointoflong -> p fmt "intoflong"
  | Ofloatofint -> p fmt "floatofint" | Ointoffloat -> p fmt "intoffloat"
  | Ofloatoflong -> p fmt "floatoflong" | Olongoffloat -> p fmt "longoffloat"
  | Osingleoffloat -> p fmt "singleoffloat"
  | Ofloatofsingle -> p fmt "floatofsingle"
  | Osingleofint -> p fmt "singleofint" | Ointofsingle -> p fmt "intofsingle"
  | Onegf -> p fmt "negf" | Oabsf -> p fmt "absf"
  | Oaddf -> p fmt "addf" | Osubf -> p fmt "subf"
  | Omulf -> p fmt "mulf" | Odivf -> p fmt "divf"
  | Onegfs -> p fmt "negfs"
  | Oaddfs -> p fmt "addfs" | Osubfs -> p fmt "subfs"
  | Omulfs -> p fmt "mulfs" | Odivfs -> p fmt "divfs"
  | Ocmp c -> p fmt "cmp(%a)" pp_condition c
