lib/middle/op.ml: Format Ident Int64 Mem Memory Support
