lib/middle/cminor.ml: Ast Cfrontend Cmops Core Genv Ident Iface List Mem Memory Support
