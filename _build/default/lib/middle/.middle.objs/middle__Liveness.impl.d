lib/middle/liveness.ml: Int List Rtl Set Support
