lib/middle/rtl.ml: Ast Core Format Genv Ident Iface Int List Map Mem Memory Op Option Support
