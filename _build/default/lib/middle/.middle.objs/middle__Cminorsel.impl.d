lib/middle/cminorsel.ml: Ast Core Genv Ident Iface List Mem Memory Op Support
