lib/middle/valueanalysis.ml: Int List Map Memory Op Option Rtl Support
