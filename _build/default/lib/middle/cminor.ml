(** Cminor: the last structured intermediate language (CompCert's
    [Cminor]).

    Differences from Csharpminor: all memory-resident locals of a function
    have been collapsed into a single stack block of [fn_stackspace] bytes
    (by the [Cminorgen] pass); addresses are taken with [Oaddrstack]
    relative to that block, or [Oaddrsymbol] for globals. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Memory.Memdata
open Iface
open Iface.Li
open Cfrontend

type constant =
  | Ointconst of int32
  | Olongconst of int64
  | Ofloatconst of float
  | Osingleconst of float
  | Oaddrsymbol of Ident.t * int
  | Oaddrstack of int

type expr =
  | Evar of Ident.t
  | Econst of constant
  | Eunop of Cmops.unary_operation * expr
  | Ebinop of Cmops.binary_operation * expr * expr
  | Eload of chunk * expr

type stmt =
  | Sskip
  | Sassign of Ident.t * expr
  | Sstore of chunk * expr * expr
  | Scall of Ident.t option * signature * expr * expr list
  | Stailcall of signature * expr * expr list
  | Sseq of stmt * stmt
  | Sifthenelse of expr * stmt * stmt
  | Sloop of stmt
  | Sblock of stmt
  | Sexit of int
  | Sreturn of expr option

type coq_function = {
  fn_sig : signature;
  fn_params : Ident.t list;
  fn_vars : Ident.t list;  (** temporaries *)
  fn_stackspace : int;
  fn_body : stmt;
}

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig
let link p1 p2 = Ast.link ~internal_sig p1 p2

(** {1 Semantics} *)

type env = value Ident.Map.t

type cont =
  | Kstop
  | Kseq of stmt * cont
  | Kblock of cont
  | Kcall of Ident.t option * coq_function * value (* sp *) * env * cont

type state =
  | State of coq_function * stmt * cont * value (* sp *) * env * Mem.t
  | Callstate of value * signature * value list * cont * Mem.t
  | Returnstate of value * cont * Mem.t

type genv = (coq_function, unit) Genv.t

let rec call_cont = function
  | Kseq (_, k) | Kblock k -> call_cont k
  | (Kstop | Kcall _) as k -> k

let rec eval_expr (ge : genv) (sp : value) (e : env) (m : Mem.t) (a : expr) :
    value option =
  match a with
  | Evar id -> Ident.Map.find_opt id e
  | Econst (Ointconst n) -> Some (Vint n)
  | Econst (Olongconst n) -> Some (Vlong n)
  | Econst (Ofloatconst f) -> Some (Vfloat f)
  | Econst (Osingleconst f) -> Some (Vsingle f)
  | Econst (Oaddrsymbol (id, ofs)) -> (
    match Genv.find_symbol ge id with
    | Some b -> Some (Vptr (b, ofs))
    | None -> None)
  | Econst (Oaddrstack ofs) -> (
    match sp with Vptr (b, base) -> Some (Vptr (b, base + ofs)) | _ -> None)
  | Eunop (op, a1) -> (
    match eval_expr ge sp e m a1 with
    | Some v -> Cmops.eval_unop op v
    | None -> None)
  | Ebinop (op, a1, a2) -> (
    match (eval_expr ge sp e m a1, eval_expr ge sp e m a2) with
    | Some v1, Some v2 -> Cmops.eval_binop op v1 v2 m
    | _ -> None)
  | Eload (chunk, a1) -> (
    match eval_expr ge sp e m a1 with
    | Some va -> Mem.loadv chunk m va
    | None -> None)

let eval_exprlist ge sp e m al =
  List.fold_right
    (fun a acc ->
      match (eval_expr ge sp e m a, acc) with
      | Some v, Some vs -> Some (v :: vs)
      | _ -> None)
    al (Some [])

let free_stack m sp sz =
  match sp with
  | Vptr (b, 0) -> Mem.free m b 0 sz
  | _ -> if sz = 0 then Some m else None

let step (ge : genv) (s : state) : (Core.Events.trace * state) list =
  let ret s' = [ (Core.Events.e0, s') ] in
  match s with
  | State (f, stmt, k, sp, e, m) -> (
    match stmt with
    | Sskip -> (
      match k with
      | Kseq (s2, k') -> ret (State (f, s2, k', sp, e, m))
      | Kblock k' -> ret (State (f, Sskip, k', sp, e, m))
      | Kcall _ | Kstop -> (
        if f.fn_sig.sig_res <> None then []
        else
          match free_stack m sp f.fn_stackspace with
          | Some m' -> ret (Returnstate (Vundef, k, m'))
          | None -> []))
    | Sassign (id, a) -> (
      match eval_expr ge sp e m a with
      | Some v -> ret (State (f, Sskip, k, sp, Ident.Map.add id v e, m))
      | None -> [])
    | Sstore (chunk, addr, a) -> (
      match (eval_expr ge sp e m addr, eval_expr ge sp e m a) with
      | Some vaddr, Some v -> (
        match Mem.storev chunk m vaddr v with
        | Some m' -> ret (State (f, Sskip, k, sp, e, m'))
        | None -> [])
      | _ -> [])
    | Scall (optid, sg, a, args) -> (
      match (eval_expr ge sp e m a, eval_exprlist ge sp e m args) with
      | Some vf, Some vargs ->
        ret (Callstate (vf, sg, vargs, Kcall (optid, f, sp, e, k), m))
      | _ -> [])
    | Stailcall (sg, a, args) -> (
      match (eval_expr ge sp e m a, eval_exprlist ge sp e m args) with
      | Some vf, Some vargs -> (
        match free_stack m sp f.fn_stackspace with
        | Some m' -> ret (Callstate (vf, sg, vargs, call_cont k, m'))
        | None -> [])
      | _ -> [])
    | Sseq (s1, s2) -> ret (State (f, s1, Kseq (s2, k), sp, e, m))
    | Sifthenelse (a, s1, s2) -> (
      match eval_expr ge sp e m a with
      | Some (Vint n) -> ret (State (f, (if n <> 0l then s1 else s2), k, sp, e, m))
      | _ -> [])
    | Sloop s1 -> ret (State (f, s1, Kseq (Sloop s1, k), sp, e, m))
    | Sblock s1 -> ret (State (f, s1, Kblock k, sp, e, m))
    | Sexit n -> (
      match k with
      | Kseq (_, k') -> ret (State (f, Sexit n, k', sp, e, m))
      | Kblock k' ->
        if n = 0 then ret (State (f, Sskip, k', sp, e, m))
        else ret (State (f, Sexit (n - 1), k', sp, e, m))
      | _ -> [])
    | Sreturn None -> (
      match free_stack m sp f.fn_stackspace with
      | Some m' -> ret (Returnstate (Vundef, call_cont k, m'))
      | None -> [])
    | Sreturn (Some a) -> (
      match eval_expr ge sp e m a with
      | Some v -> (
        match free_stack m sp f.fn_stackspace with
        | Some m' -> ret (Returnstate (v, call_cont k, m'))
        | None -> [])
      | None -> []))
  | Callstate (vf, sg, args, k, m) -> (
    match Genv.find_funct ge vf with
    | Some (Ast.Internal f) ->
      if not (signature_equal sg f.fn_sig) then []
      else if List.length f.fn_params <> List.length args then []
      else
        let m1, b = Mem.alloc m 0 f.fn_stackspace in
        let e =
          List.fold_left
            (fun e id -> Ident.Map.add id Vundef e)
            Ident.Map.empty f.fn_vars
        in
        let e =
          List.fold_left2 (fun e id v -> Ident.Map.add id v e) e f.fn_params args
        in
        ret (State (f, f.fn_body, k, Vptr (b, 0), e, m1))
    | Some (Ast.External _) | None -> [])
  | Returnstate (v, k, m) -> (
    match k with
    | Kcall (optid, f, sp, e, k') ->
      let e' = match optid with Some id -> Ident.Map.add id v e | None -> e in
      ret (State (f, Sskip, k', sp, e', m))
    | _ -> [])

let semantics ~(symbols : Ident.t list) (p : program) :
    (state, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  {
    Core.Smallstep.name = "Cminor";
    dom =
      (fun q ->
        match Genv.find_funct ge q.cq_vf with
        | Some (Ast.Internal f) -> signature_equal q.cq_sg f.fn_sig
        | _ -> false);
    init = (fun q -> [ Callstate (q.cq_vf, q.cq_sg, q.cq_args, Kstop, q.cq_mem) ]);
    step = (fun s -> step ge s);
    at_external =
      (fun s ->
        match s with
        | Callstate (vf, sg, args, _, m) when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { cq_vf = vf; cq_sg = sg; cq_args = args; cq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s with
        | Callstate (_, _, _, k, _) -> [ Returnstate (r.cr_res, k, r.cr_mem) ]
        | _ -> []);
    final =
      (fun s ->
        match s with
        | Returnstate (v, Kstop, m) -> Some { cr_res = v; cr_mem = m }
        | _ -> None);
  }
