(** Asm: the target assembly language, over the full architectural
    register file (CompCert's [Asm], link-register style).

    The program counter holds code pointers [Vptr (fb, pos)] where [fb]
    is the block of a function symbol and [pos] an instruction index.
    [Pcall] sets the return-address register; function prologues
    ([Pallocframe]) allocate the frame and spill the back link and RA;
    epilogues ([Pfreeframe]) restore them. Asm uses the interface [A]:
    queries and answers are a register file plus memory (paper §3.2 —
    "the semantics of assembly is formulated exclusively in terms of the
    language interface A", Appendix A.6).

    Following CompCertO, an activation is complete when control returns
    to the address that the environment installed in [RA] at entry. *)

open Support
open Memory
open Memory.Values
open Memory.Mtypes
open Memory.Memdata
open Middle
open Iface
open Iface.Li

type label = int

type ros = Rreg of preg | Rsymbol of Ident.t

type instruction =
  | Pallocframe of int * int * int  (** size, ofs_link, ofs_ra *)
  | Pfreeframe of int * int * int  (** size, ofs_link, ofs_ra *)
  | Pop of Op.operation * preg list * preg
  | Pload of chunk * Op.addressing * preg list * preg
  | Pstore of chunk * Op.addressing * preg list * preg
  | Plabel of label
  | Pjmp of label
  | Pjcc of Op.condition * preg list * label
  | Pcall of ros
  | Pjmp_tail of ros  (** tail jump to another function *)
  | Pret

type coq_function = { fn_sig : signature; fn_code : instruction array }

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig

(** Syntactic linking of Asm programs: the [+] operator of Theorem 3.5. *)
let link p1 p2 = Ast.link ~internal_sig p1 p2

let find_label (lbl : label) (code : instruction array) : int option =
  let rec go i =
    if i >= Array.length code then None
    else match code.(i) with Plabel l when l = lbl -> Some (i + 1) | _ -> go (i + 1)
  in
  go 0

(** {1 Semantics} *)

type state = { rs : Pregfile.t; m : Mem.t }

type genv = (coq_function, unit) Genv.t

let genv_view (ge : genv) : Op.genv_view =
  { Op.find_symbol = (fun id -> Genv.find_symbol ge id) }

let ros_address (ge : genv) ros (rs : Pregfile.t) =
  match ros with
  | Rreg r -> Some (Pregfile.get r rs)
  | Rsymbol id -> (
    match Genv.find_symbol ge id with Some b -> Some (Vptr (b, 0)) | None -> None)

let chunk_of_typ = function
  | Tint -> Mint32
  | Tlong -> Mint64
  | Tfloat -> Mfloat64
  | Tsingle -> Mfloat32
  | Tany64 -> Many64

(* One instruction. [fb] is the current function's block, [pos] the index
   of the instruction being executed. *)
let exec_instr (ge : genv) (f : coq_function) (fb : block) (pos : int)
    (i : instruction) (rs : Pregfile.t) (m : Mem.t) : (Pregfile.t * Mem.t) option =
  let next rs = Some (Pregfile.set PC (Vptr (fb, pos + 1)) rs, m) in
  let next_m rs m = Some (Pregfile.set PC (Vptr (fb, pos + 1)) rs, m) in
  let goto lbl rs =
    match find_label lbl f.fn_code with
    | Some pos' -> Some (Pregfile.set PC (Vptr (fb, pos')) rs, m)
    | None -> None
  in
  match i with
  | Pallocframe (sz, ofs_link, ofs_ra) -> (
    let m1, b = Mem.alloc m 0 sz in
    let sp' = Vptr (b, 0) in
    match Mem.store Mint64 m1 b ofs_link (Pregfile.get SP rs) with
    | None -> None
    | Some m2 -> (
      match Mem.store Mint64 m2 b ofs_ra (Pregfile.get RA rs) with
      | None -> None
      | Some m3 -> next_m (Pregfile.set SP sp' rs) m3))
  | Pfreeframe (sz, ofs_link, ofs_ra) -> (
    match Pregfile.get SP rs with
    | Vptr (b, 0) -> (
      match (Mem.load Mint64 m b ofs_link, Mem.load Mint64 m b ofs_ra) with
      | Some link, Some ra -> (
        match Mem.free m b 0 sz with
        | Some m' ->
          next_m (Pregfile.set SP link (Pregfile.set RA ra rs)) m'
        | None -> None)
      | _ -> None)
    | _ -> None)
  | Pop (op, args, res) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_operation (genv_view ge) (Pregfile.get SP rs) op vl m with
    | Some v -> next (Pregfile.set res v rs)
    | None -> None)
  | Pload (chunk, addr, args, dst) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_addressing (genv_view ge) (Pregfile.get SP rs) addr vl with
    | Some va -> (
      match Mem.loadv chunk m va with
      | Some v -> next (Pregfile.set dst v rs)
      | None -> None)
    | None -> None)
  | Pstore (chunk, addr, args, src) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_addressing (genv_view ge) (Pregfile.get SP rs) addr vl with
    | Some va -> (
      match Mem.storev chunk m va (Pregfile.get src rs) with
      | Some m' -> next_m rs m'
      | None -> None)
    | None -> None)
  | Plabel _ -> next rs
  | Pjmp lbl -> goto lbl rs
  | Pjcc (cond, args, lbl) -> (
    let vl = List.map (fun r -> Pregfile.get r rs) args in
    match Op.eval_condition cond vl m with
    | Some true -> goto lbl rs
    | Some false -> next rs
    | None -> None)
  | Pcall ros -> (
    match ros_address ge ros rs with
    | Some vf ->
      let rs = Pregfile.set RA (Vptr (fb, pos + 1)) rs in
      Some (Pregfile.set PC vf rs, m)
    | None -> None)
  | Pjmp_tail ros -> (
    match ros_address ge ros rs with
    | Some vf -> Some (Pregfile.set PC vf rs, m)
    | None -> None)
  | Pret -> Some (Pregfile.set PC (Pregfile.get RA rs) rs, m)

let step (ge : genv) (s : state) : (Core.Events.trace * state) list =
  match Pregfile.get PC s.rs with
  | Vptr (fb, pos) -> (
    match Genv.find_funct_ptr ge fb with
    | Some (Ast.Internal f) when pos >= 0 && pos < Array.length f.fn_code -> (
      match exec_instr ge f fb pos f.fn_code.(pos) s.rs s.m with
      | Some (rs', m') -> [ (Core.Events.e0, { rs = rs'; m = m' }) ]
      | None -> [])
    | _ -> [])
  | _ -> []

type full_state = { asm_init_ra : value; asm_st : state }

let semantics ~(symbols : Ident.t list) (p : program) :
    (full_state, a_query, a_reply, a_query, a_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  (* A state is at an interaction point when the PC leaves this unit's
     internal code: either at the environment return address (final) or
     at a block this unit does not define internally (external call). *)
  let is_internal v =
    match v with
    | Vptr (b, 0) -> (
      match Genv.find_funct_ptr ge b with Some (Ast.Internal _) -> true | _ -> false)
    | _ -> false
  in
  {
    Core.Smallstep.name = "Asm";
    dom = (fun q -> is_internal (Pregfile.get PC q.aq_rs));
    init = (fun q -> [ { asm_init_ra = Pregfile.get RA q.aq_rs;
                         asm_st = { rs = q.aq_rs; m = q.aq_mem } } ]);
    step =
      (fun s ->
        List.map (fun (t, st) -> (t, { s with asm_st = st })) (step ge s.asm_st));
    at_external =
      (fun s ->
        (* An external call is a control transfer to the base of a global
           symbol block this unit does not define internally. Return
           addresses point into the middle of code blocks and are excluded;
           garbage PCs are stuck, not external. *)
        let pc = Pregfile.get PC s.asm_st.rs in
        if
          Genv.plausible_funct ge pc
          && (not (is_internal pc))
          && pc <> s.asm_init_ra
        then Some { aq_rs = s.asm_st.rs; aq_mem = s.asm_st.m }
        else None);
    after_external =
      (fun s r -> [ { s with asm_st = { rs = r.ar_rs; m = r.ar_mem } } ]);
    final =
      (fun s ->
        if Pregfile.get PC s.asm_st.rs = s.asm_init_ra then
          Some { ar_rs = s.asm_st.rs; ar_mem = s.asm_st.m }
        else None);
  }

(** {1 Printing} *)

let pp_ros fmt = function
  | Rreg r -> pp_preg fmt r
  | Rsymbol id -> Ident.pp fmt id

let pp_instruction fmt i =
  let regs fmt rl =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_preg fmt rl
  in
  match i with
  | Pallocframe (sz, ol, orr) -> Format.fprintf fmt "allocframe %d, %d, %d" sz ol orr
  | Pfreeframe (sz, ol, orr) -> Format.fprintf fmt "freeframe %d, %d, %d" sz ol orr
  | Pop (op, args, res) ->
    Format.fprintf fmt "%a = %a(%a)" pp_preg res Op.pp_operation op regs args
  | Pload (chunk, addr, args, dst) ->
    Format.fprintf fmt "%a = load %a %a(%a)" pp_preg dst pp_chunk chunk
      Op.pp_addressing addr regs args
  | Pstore (chunk, addr, args, src) ->
    Format.fprintf fmt "store %a %a(%a) := %a" pp_chunk chunk Op.pp_addressing
      addr regs args pp_preg src
  | Plabel l -> Format.fprintf fmt "%d:" l
  | Pjmp l -> Format.fprintf fmt "jmp %d" l
  | Pjcc (cond, args, l) ->
    Format.fprintf fmt "j%a(%a) %d" Op.pp_condition cond regs args l
  | Pcall ros -> Format.fprintf fmt "call %a" pp_ros ros
  | Pjmp_tail ros -> Format.fprintf fmt "jmp-tail %a" pp_ros ros
  | Pret -> Format.fprintf fmt "ret"

let pp_function fmt (f : coq_function) =
  Format.fprintf fmt "@[<v>asm function(%a)@," pp_signature f.fn_sig;
  Array.iteri (fun i instr -> Format.fprintf fmt "  %3d: %a@," i pp_instruction instr) f.fn_code;
  Format.fprintf fmt "@]"
