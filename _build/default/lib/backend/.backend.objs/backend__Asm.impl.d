lib/backend/asm.ml: Array Ast Core Format Genv Ident Iface List Mem Memory Middle Op Pregfile Support
