lib/backend/mach.ml: Array Ast Core Format Genv Ident Iface List Mem Memory Middle Op Regfile Support Target
