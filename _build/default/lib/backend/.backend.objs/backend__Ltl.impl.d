lib/backend/ltl.ml: Ast Core Format Genv Ident Iface Int List LocMap Locset Map Mem Memory Middle Op Support Target
