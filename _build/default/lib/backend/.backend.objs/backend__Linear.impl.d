lib/backend/linear.ml: Ast Core Format Genv Ident Iface List Locset Ltl Mem Memory Middle Op Support Target
