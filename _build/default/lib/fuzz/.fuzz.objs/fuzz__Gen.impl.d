lib/fuzz/gen.ml: Gen List Printf QCheck String
