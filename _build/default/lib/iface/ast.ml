(** Program skeletons shared by all languages (CompCert's [AST]).

    A program is a list of global definitions (functions and variables)
    together with a distinguished [main]. Function definitions are either
    [Internal] (with a language-specific body ['fn]) or [External]
    (declared here, defined in another component or by the environment —
    these are what become {e outgoing questions} in the open semantics).

    The syntactic linking operator [+] of the paper (§3.1, Thm. 3.5)
    merges definition lists, resolving [External]/[Internal] pairs. *)

open Support
open Memory.Mtypes

type init_data =
  | Init_int8 of int32
  | Init_int16 of int32
  | Init_int32 of int32
  | Init_int64 of int64
  | Init_float32 of float
  | Init_float64 of float
  | Init_space of int
  | Init_addrof of Ident.t * int

let init_data_size = function
  | Init_int8 _ -> 1
  | Init_int16 _ -> 2
  | Init_int32 _ -> 4
  | Init_int64 _ -> 8
  | Init_float32 _ -> 4
  | Init_float64 _ -> 8
  | Init_space n -> max n 0
  | Init_addrof _ -> 8

let init_data_list_size l = List.fold_left (fun a d -> a + init_data_size d) 0 l

type 'v globvar = {
  gvar_info : 'v;  (** language-specific type information *)
  gvar_init : init_data list;
  gvar_readonly : bool;
}

(** External functions: known only by name and signature. Calls to them
    are the outgoing questions of a component's open semantics. *)
type external_function = { ef_name : Ident.t; ef_sig : signature }

type 'fn fundef = Internal of 'fn | External of external_function

let fundef_sig ~internal_sig = function
  | Internal f -> internal_sig f
  | External ef -> ef.ef_sig

type ('fn, 'v) globdef = Gfun of 'fn fundef | Gvar of 'v globvar

type ('fn, 'v) program = {
  prog_defs : (Ident.t * ('fn, 'v) globdef) list;
  prog_main : Ident.t;
}

let prog_defs_names p = List.map fst p.prog_defs

let find_def p id =
  List.assoc_opt id p.prog_defs

(** Functions defined (with a body) by this translation unit: these make
    up the domain [D] of the unit's open semantics. *)
let defined_functions p =
  List.filter_map
    (fun (id, d) -> match d with Gfun (Internal _) -> Some id | _ -> None)
    p.prog_defs

(** {1 Syntactic linking}

    [link p1 p2] merges the definitions of two translation units:
    - a definition present in only one unit is kept;
    - an [External] declaration links against an [Internal] definition
      with a matching signature;
    - two [External] declarations with equal signatures merge;
    - two [Internal] definitions of the same symbol clash;
    - variable definitions clash unless one of them is declaration-like
      ([Init_space]-only and matching size, a common-symbol approximation). *)

let link_fundef ~internal_sig id fd1 fd2 =
  match (fd1, fd2) with
  | Internal _, Internal _ ->
    Errors.error "multiple definitions of function %s" (Ident.name id)
  | Internal f, External ef | External ef, Internal f ->
    if signature_equal (internal_sig f) ef.ef_sig then Errors.ok (Internal f)
    else
      Errors.error "signature mismatch when linking function %s" (Ident.name id)
  | External ef1, External ef2 ->
    if signature_equal ef1.ef_sig ef2.ef_sig then Errors.ok (External ef1)
    else
      Errors.error "conflicting declarations of function %s" (Ident.name id)

let is_var_decl gv =
  List.for_all (function Init_space _ -> true | _ -> false) gv.gvar_init

let link_vardef id gv1 gv2 =
  let sz1 = init_data_list_size gv1.gvar_init in
  let sz2 = init_data_list_size gv2.gvar_init in
  if sz1 <> sz2 then
    Errors.error "size mismatch when linking variable %s" (Ident.name id)
  else if is_var_decl gv2 then Errors.ok gv1
  else if is_var_decl gv1 then Errors.ok gv2
  else Errors.error "multiple definitions of variable %s" (Ident.name id)

let link_def ~internal_sig id d1 d2 =
  match (d1, d2) with
  | Gfun fd1, Gfun fd2 ->
    Errors.map (fun fd -> Gfun fd) (link_fundef ~internal_sig id fd1 fd2)
  | Gvar gv1, Gvar gv2 -> Errors.map (fun gv -> Gvar gv) (link_vardef id gv1 gv2)
  | _ ->
    Errors.error "symbol %s defined both as function and variable"
      (Ident.name id)

let link ~internal_sig p1 p2 =
  let open Errors in
  let* merged =
    fold_list
      (fun acc (id, d2) ->
        match List.assoc_opt id acc with
        | None -> ok (acc @ [ (id, d2) ])
        | Some d1 ->
          let* d = link_def ~internal_sig id d1 d2 in
          ok (List.map (fun (id', d') -> if Ident.equal id id' then (id, d) else (id', d')) acc))
      p1.prog_defs p2.prog_defs
  in
  ok { prog_defs = merged; prog_main = p1.prog_main }

let link_list ~internal_sig = function
  | [] -> Errors.error "cannot link an empty list of programs"
  | p :: ps -> Errors.fold_list (fun acc q -> link ~internal_sig acc q) p ps

(** Transform the internal function bodies of a program (the shape of
    every compiler pass). *)
let transform_program (f : 'a -> 'b Errors.t) (p : ('a, 'v) program) :
    ('b, 'v) program Errors.t =
  let open Errors in
  let* defs =
    map_list
      (fun (id, d) ->
        match d with
        | Gfun (Internal fn) ->
          let* fn' = f fn in
          ok (id, Gfun (Internal fn'))
        | Gfun (External ef) -> ok (id, Gfun (External ef))
        | Gvar gv -> ok (id, Gvar gv))
      p.prog_defs
  in
  ok { p with prog_defs = defs }
