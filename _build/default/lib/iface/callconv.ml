(** Concrete simulation conventions (paper §5 and Appendix C).

    This module builds the executable conventions used to state compiler
    correctness:

    - [cc_c (R)]: a CKLR [R] promoted to a convention on the [C] interface
      ([R_C] in §4.4);
    - [cc_wt]: the typing invariant [wt] (Appendix B.2);
    - [cc_cl]: [CL : C ⇔ L] — marshaling of arguments into locations
      (Appendix C.1);
    - [cc_lm]: [LM : L ⇔ M] — location maps realized as machine registers
      and in-memory argument regions, with the argument region carved out
      of the source memory ([free_args]/[mix], Appendix C.2, Fig. 13);
    - [cc_ma]: [MA : M ⇔ A] — explicit PC/SP/RA registers (Appendix C.3);
    - [cc_asm (R)]: a CKLR on the [A] interface.

    The composite [CA ≡ CL · LM · MA] is the structural content of the C
    calling convention (paper §5). *)

open Memory
open Memory.Mtypes
open Memory.Values
open Target
open Target.Machregs
open Target.Locations
open Core
open Li

(** Conventional return address used when the environment invokes a
    component at the machine level: a non-code value that cannot collide
    with any function block address. *)
let env_ra = Vlong 1L

(** {1 CKLRs on the C interface} *)

type 'w c_world = { cw : 'w; cw_next1 : int; cw_next2 : int }

(** [cc_cklr (module R)] is the simulation convention [R_C : C ⇔ C]
    (paper §4.4). The world additionally records the memory bounds at the
    time of the question so that the reply check can apply the canonical
    world evolution [grow] (the [^] modality of [R•_C]). *)
let cc_cklr (type w) (module R : Cklr.CKLR with type world = w) :
    (w c_world, c_query, c_query, c_reply, c_reply) Simconv.t =
  let grow (cw : w c_world) (m1 : Mem.t) (m2 : Mem.t) : w =
    R.grow cw.cw m1 m2
  in
  {
    Simconv.name = R.name ^ "@C";
    chk_query =
      (fun w q1 q2 ->
        R.match_val w.cw q1.cq_vf q2.cq_vf
        && signature_equal q1.cq_sg q2.cq_sg
        && List.length q1.cq_args = List.length q2.cq_args
        && List.for_all2 (R.match_val w.cw) q1.cq_args q2.cq_args
        && R.match_mem w.cw q1.cq_mem q2.cq_mem);
    chk_reply =
      (fun w r1 r2 ->
        let w' = grow w r1.cr_mem r2.cr_mem in
        R.acc w.cw w'
        && R.match_val w' r1.cr_res r2.cr_res
        && R.match_mem w' r1.cr_mem r2.cr_mem);
    fwd_query =
      (fun q1 ->
        let w, m2 = R.init q1.cq_mem in
        match
          ( R.map_val w q1.cq_vf,
            List.fold_right
              (fun v acc ->
                match (R.map_val w v, acc) with
                | Some v', Some vs -> Some (v' :: vs)
                | _ -> None)
              q1.cq_args (Some []) )
        with
        | Some vf2, Some args2 ->
          Some
            ( { cw = w; cw_next1 = Mem.nextblock q1.cq_mem; cw_next2 = Mem.nextblock m2 },
              { cq_vf = vf2; cq_sg = q1.cq_sg; cq_args = args2; cq_mem = m2 } )
        | _ -> None);
    fwd_reply =
      (fun w r1 ->
        let w' = grow w r1.cr_mem r1.cr_mem in
        match R.map_val w' r1.cr_res with
        | Some res -> Some { cr_res = res; cr_mem = r1.cr_mem }
        | None -> None);
    bwd_reply = (fun _w r2 -> Some r2);
    (* Injections cannot be decoded from the target side alone; only the
       identity-shaped fragment is invertible, which [infer_world]
       captures by re-marshaling. *)
    bwd_query = (fun _ -> None);
    infer_world =
      (fun q1 q2 ->
        let w, _ = R.init q1.cq_mem in
        let cw =
          { cw = w; cw_next1 = Mem.nextblock q1.cq_mem;
            cw_next2 = Mem.nextblock q2.cq_mem }
        in
        Some cw);
  }

(** {1 The typing invariant [wt] (Appendix B.2)} *)

let wt_c : (signature, c_query, c_reply) Invariant.t =
  {
    Invariant.inv_name = "wt";
    query_inv =
      (fun sg q ->
        signature_equal sg q.cq_sg && has_type_list q.cq_args sg.sig_args);
    reply_inv = (fun sg r -> has_rettype r.cr_res sg.sig_res);
    world_of = (fun q -> Some q.cq_sg);
  }

let cc_wt = Invariant.to_conv wt_c

(** {1 CL : C ⇔ L (Appendix C.1)}

    The world records the signature and the locset chosen at the question,
    so that the canonical after-call locset can preserve callee-save
    locations. *)

let cc_cl : (signature * Locset.t, c_query, l_query, c_reply, l_reply) Simconv.t =
  {
    Simconv.name = "CL";
    chk_query =
      (fun (sg, _) q1 q2 ->
        q1.cq_vf = q2.lq_vf
        && signature_equal sg q1.cq_sg
        && signature_equal sg q2.lq_sg
        && q1.cq_args = Conventions.extract_arguments sg q2.lq_ls
        && Mem.equal q1.cq_mem q2.lq_mem);
    chk_reply =
      (fun (sg, _) r1 r2 ->
        lessdef r1.cr_res (Conventions.extract_result sg r2.lr_ls)
        && Mem.equal r1.cr_mem r2.lr_mem);
    fwd_query =
      (fun q1 ->
        match Conventions.build_arguments q1.cq_sg q1.cq_args Locset.init with
        | None -> None
        | Some ls ->
          Some
            ( (q1.cq_sg, ls),
              { lq_vf = q1.cq_vf; lq_sg = q1.cq_sg; lq_ls = ls; lq_mem = q1.cq_mem }
            ));
    fwd_reply =
      (fun (sg, ls0) r1 ->
        (* Canonical environment answer: result in the result register,
           caller-save clobbered, callee-save preserved from the call. *)
        let ls' = Locset.undef_caller_save ls0 in
        let ls' = Conventions.set_result sg r1.cr_res ls' in
        Some { lr_ls = ls'; lr_mem = r1.cr_mem });
    bwd_reply =
      (fun (sg, _) r2 ->
        Some { cr_res = Conventions.extract_result sg r2.lr_ls; cr_mem = r2.lr_mem });
    bwd_query =
      (fun q2 ->
        Some
          { cq_vf = q2.lq_vf; cq_sg = q2.lq_sg;
            cq_args = Conventions.extract_arguments q2.lq_sg q2.lq_ls;
            cq_mem = q2.lq_mem });
    infer_world = (fun q1 q2 -> ignore q1; Some (q2.lq_sg, q2.lq_ls));
  }

(** {1 LM : L ⇔ M (Appendix C.2)} *)

let read_outgoing_slot m sp ofs ty =
  match sp with
  | Vptr (b, base) -> (
    match Mem.load (Memdata.chunk_of_type ty) m b (base + (8 * ofs)) with
    | Some v -> v
    | None -> Vundef)
  | _ -> Vundef

(** Equality of location maps on the footprint relevant to a signature:
    all machine registers and the outgoing argument slots of [sg]. *)
let locset_eq_on sg (ls1 : Locset.t) (ls2 : Locset.t) =
  List.for_all (fun r -> Locset.get (R r) ls1 = Locset.get (R r) ls2) all_mregs
  && List.for_all
       (fun l ->
         match l with
         | S (Outgoing, _, _) -> Locset.get l ls1 = Locset.get l ls2
         | _ -> true)
       (Conventions.loc_arguments sg)

let make_locset_sg sg (rs : Regfile.t) (m : Mem.t) (sp : value) : Locset.t =
  let ls =
    List.fold_left
      (fun ls r -> Locset.set (R r) (Regfile.get r rs) ls)
      Locset.init all_mregs
  in
  List.fold_left
    (fun ls l ->
      match l with
      | S (Outgoing, ofs, ty) -> Locset.set l (read_outgoing_slot m sp ofs ty) ls
      | _ -> ls)
    ls (Conventions.loc_arguments sg)

(** [free_args sg m sp] removes all permissions on the argument region,
    producing the source-level memory [m̄] (Fig. 13: the source never sees
    the argument slots). *)
let free_args sg m sp =
  let n = Conventions.size_arguments sg in
  if n = 0 then Some m
  else
    match sp with
    | Vptr (b, base) -> Mem.drop_range m b base (base + (8 * n))
    | _ -> None

(** [mix sg sp m m̄'] copies the argument region of the memory [m] at the
    question back into the answer memory [m̄'], restoring permissions. *)
let mix sg sp (m : Mem.t) (mbar' : Mem.t) : Mem.t option =
  let n = Conventions.size_arguments sg in
  if n = 0 then Some mbar'
  else
    match sp with
    | Vptr (b, base) -> (
      match Mem.loadbytes m b base (8 * n) with
      | None -> None
      | Some bytes -> (
        match Mem.grant_perm mbar' b base (base + (8 * n)) Mem.Freeable with
        | None -> None
        | Some m1 -> (
          match Mem.storebytes m1 b base bytes with
          | None -> None
          | Some m2 ->
            (* Restore the permission level the region had in [m]. *)
            (match Mem.perm_at m b base with
            | Some p -> Mem.drop_perm m2 b base (base + (8 * n)) p
            | None -> Some m2))))
    | _ -> None

type lm_world = {
  lm_sg : signature;
  lm_rs : Regfile.t;
  lm_mem : Mem.t;  (** target memory at the question *)
  lm_sp : value;
}

let cc_lm : (lm_world, l_query, m_query, l_reply, m_reply) Simconv.t =
  {
    Simconv.name = "LM";
    chk_query =
      (fun w q1 q2 ->
        q1.lq_vf = q2.mq_vf
        && signature_equal w.lm_sg q1.lq_sg
        && w.lm_sp = q2.mq_sp
        && Regfile.equal w.lm_rs q2.mq_rs
        && locset_eq_on w.lm_sg q1.lq_ls
             (make_locset_sg w.lm_sg q2.mq_rs q2.mq_mem q2.mq_sp)
        && (match free_args w.lm_sg q2.mq_mem q2.mq_sp with
           | Some mbar ->
             (* The source memory must agree with the target memory with
                the argument region carved out, on the blocks both know. *)
             Mem.unchanged_on (fun _ _ -> true) q1.lq_mem mbar
           | None -> false));
    chk_reply =
      (fun w r1 r2 ->
        (* rs' ≡R ls' on all machine registers … *)
        List.for_all
          (fun r ->
            lessdef (Locset.get (R r) r1.lr_ls) (Regfile.get r r2.mr_rs))
          all_mregs
        (* … callee-save registers preserved from the question … *)
        && List.for_all
             (fun r ->
               (not (is_callee_save r))
               || Regfile.get r r2.mr_rs = Regfile.get r w.lm_rs)
             all_mregs
        (* … and the argument region is restored in the answer memory. *)
        &&
        match mix w.lm_sg w.lm_sp w.lm_mem r1.lr_mem with
        | Some m' -> Mem.unchanged_on (fun _ _ -> true) m' r2.mr_mem
        | None -> false);
    fwd_query =
      (fun q1 ->
        let sg = q1.lq_sg in
        let n = Conventions.size_arguments sg in
        let rs =
          List.fold_left
            (fun rs r -> Regfile.set r (Locset.get (R r) q1.lq_ls) rs)
            Regfile.init all_mregs
        in
        if n = 0 then
          let w = { lm_sg = sg; lm_rs = rs; lm_mem = q1.lq_mem; lm_sp = Vlong 0L } in
          Some
            ( w,
              {
                mq_vf = q1.lq_vf;
                mq_sp = Vlong 0L;
                mq_ra = env_ra;
                mq_rs = rs;
                mq_mem = q1.lq_mem;
              } )
        else
          (* Materialize the argument region in a fresh block. *)
          let m0, b = Mem.alloc q1.lq_mem 0 (8 * n) in
          let sp = Vptr (b, 0) in
          let store_arg m l =
            match (m, l) with
            | None, _ -> None
            | Some m, S (Outgoing, ofs, ty) ->
              Mem.store (Memdata.chunk_of_type ty) m b (8 * ofs)
                (Locset.get l q1.lq_ls)
            | Some m, _ -> Some m
          in
          match List.fold_left store_arg (Some m0) (Conventions.loc_arguments sg) with
          | None -> None
          | Some m ->
            let w = { lm_sg = sg; lm_rs = rs; lm_mem = m; lm_sp = sp } in
            Some
              ( w,
                { mq_vf = q1.lq_vf; mq_sp = sp; mq_ra = env_ra; mq_rs = rs; mq_mem = m }
              ));
    fwd_reply =
      (fun w r1 ->
        let rs' =
          List.fold_left
            (fun rs r ->
              if is_callee_save r then Regfile.set r (Regfile.get r w.lm_rs) rs
              else Regfile.set r (Locset.get (R r) r1.lr_ls) rs)
            Regfile.init all_mregs
        in
        match mix w.lm_sg w.lm_sp w.lm_mem r1.lr_mem with
        | Some m' -> Some { mr_rs = rs'; mr_mem = m' }
        | None -> None);
    bwd_reply =
      (fun w r2 ->
        let ls' =
          List.fold_left
            (fun ls r -> Locset.set (R r) (Regfile.get r r2.mr_rs) ls)
            Locset.init all_mregs
        in
        match free_args w.lm_sg r2.mr_mem w.lm_sp with
        | Some mbar -> Some { lr_ls = ls'; lr_mem = mbar }
        | None -> None);
    (* The signature is not recoverable from an M question. *)
    bwd_query = (fun _ -> None);
    infer_world =
      (fun q1 q2 ->
        Some
          { lm_sg = q1.lq_sg; lm_rs = q2.mq_rs; lm_mem = q2.mq_mem;
            lm_sp = q2.mq_sp });
  }

(** {1 MA : M ⇔ A (Appendix C.3)} *)

type ma_world = { ma_sp : value; ma_ra : value; ma_rs : Regfile.t }

let cc_ma : (ma_world, m_query, a_query, m_reply, a_reply) Simconv.t =
  {
    Simconv.name = "MA";
    chk_query =
      (fun w q1 q2 ->
        w.ma_sp = q1.mq_sp && w.ma_ra = q1.mq_ra
        && Pregfile.get PC q2.aq_rs = q1.mq_vf
        && Pregfile.get SP q2.aq_rs = q1.mq_sp
        && Pregfile.get RA q2.aq_rs = q1.mq_ra
        && List.for_all
             (fun r -> Pregfile.get (Mreg r) q2.aq_rs = Regfile.get r q1.mq_rs)
             all_mregs
        && Mem.equal q1.mq_mem q2.aq_mem);
    chk_reply =
      (fun w r1 r2 ->
        Pregfile.get SP r2.ar_rs = w.ma_sp
        && Pregfile.get PC r2.ar_rs = w.ma_ra
        && List.for_all
             (fun r ->
               lessdef (Regfile.get r r1.mr_rs) (Pregfile.get (Mreg r) r2.ar_rs))
             all_mregs
        && Mem.equal r1.mr_mem r2.ar_mem);
    fwd_query =
      (fun q1 ->
        let rs =
          Pregfile.of_regfile q1.mq_rs
          |> Pregfile.set PC q1.mq_vf |> Pregfile.set SP q1.mq_sp
          |> Pregfile.set RA q1.mq_ra
        in
        Some
          ( { ma_sp = q1.mq_sp; ma_ra = q1.mq_ra; ma_rs = q1.mq_rs },
            { aq_rs = rs; aq_mem = q1.mq_mem } ));
    fwd_reply =
      (fun w r1 ->
        let rs' =
          Pregfile.of_regfile r1.mr_rs
          |> Pregfile.set SP w.ma_sp |> Pregfile.set PC w.ma_ra
          |> Pregfile.set RA Vundef
        in
        Some { ar_rs = rs'; ar_mem = r1.mr_mem });
    bwd_reply =
      (fun _w r2 ->
        Some { mr_rs = Pregfile.to_regfile r2.ar_rs; mr_mem = r2.ar_mem });
    bwd_query =
      (fun q2 ->
        Some
          { mq_vf = Pregfile.get PC q2.aq_rs;
            mq_sp = Pregfile.get SP q2.aq_rs;
            mq_ra = Pregfile.get RA q2.aq_rs;
            mq_rs = Pregfile.to_regfile q2.aq_rs;
            mq_mem = q2.aq_mem });
    infer_world =
      (fun q1 _q2 ->
        Some { ma_sp = q1.mq_sp; ma_ra = q1.mq_ra; ma_rs = q1.mq_rs });
  }

(** {1 CKLRs on the A interface} *)

let cc_asm (type w) (module R : Cklr.CKLR with type world = w) :
    (w c_world, a_query, a_query, a_reply, a_reply) Simconv.t =
  let grow (cw : w c_world) m1 m2 : w = R.grow cw.cw m1 m2 in
  {
    Simconv.name = R.name ^ "@A";
    chk_query =
      (fun w q1 q2 ->
        List.for_all
          (fun r -> R.match_val w.cw (Pregfile.get r q1.aq_rs) (Pregfile.get r q2.aq_rs))
          all_pregs
        && R.match_mem w.cw q1.aq_mem q2.aq_mem);
    chk_reply =
      (fun w r1 r2 ->
        let w' = grow w r1.ar_mem r2.ar_mem in
        R.acc w.cw w'
        && List.for_all
             (fun r ->
               R.match_val w' (Pregfile.get r r1.ar_rs) (Pregfile.get r r2.ar_rs))
             all_pregs
        && R.match_mem w' r1.ar_mem r2.ar_mem);
    fwd_query =
      (fun q1 ->
        let w, m2 = R.init q1.aq_mem in
        let rec map_regs rs = function
          | [] -> Some rs
          | r :: rest -> (
            match R.map_val w (Pregfile.get r q1.aq_rs) with
            | Some v -> map_regs (Pregfile.set r v rs) rest
            | None -> None)
        in
        match map_regs Pregfile.init all_pregs with
        | Some rs2 ->
          Some
            ( { cw = w; cw_next1 = Mem.nextblock q1.aq_mem; cw_next2 = Mem.nextblock m2 },
              { aq_rs = rs2; aq_mem = m2 } )
        | None -> None);
    fwd_reply =
      (fun w r1 ->
        let w' = grow w r1.ar_mem r1.ar_mem in
        let rec map_regs rs = function
          | [] -> Some rs
          | r :: rest -> (
            match R.map_val w' (Pregfile.get r r1.ar_rs) with
            | Some v -> map_regs (Pregfile.set r v rs) rest
            | None -> None)
        in
        match map_regs Pregfile.init all_pregs with
        | Some rs' -> Some { ar_rs = rs'; ar_mem = r1.ar_mem }
        | None -> None);
    bwd_reply = (fun _w r2 -> Some r2);
    bwd_query = (fun _ -> None);
    infer_world =
      (fun q1 q2 ->
        let w, _ = R.init q1.aq_mem in
        Some
          { cw = w; cw_next1 = Mem.nextblock q1.aq_mem;
            cw_next2 = Mem.nextblock q2.aq_mem });
  }


(** {1 The composite [CA = CL · LM · MA : C ⇔ A] (paper §5)}

    Built from the generic composition, with two adjustments that make it
    usable as a {e checking} convention on actual executions:

    - the existential middle questions are witnessed by {e mixed
      decoding}: the signature comes from the source question (it is not
      recoverable from machine-level questions) while the register file,
      stack pointer and memory come from the target question — realizing
      the dual nondeterminism of the calling convention (Appendix A.4);
    - the memory clause is the {e identity-injection fragment} of
      [R* · CA]: the source memory must embed into the target memory
      (every source-accessible location has the same permission and
      contents at the same address in the target, which may additionally
      hold stack frames and other compilation artifacts). The full
      injection worlds of [R*] relate block structures that cannot be
      inferred from two running executions; the identity fragment is the
      canonical witness for components whose remaining memory state is
      shared (globals). *)

(* Source memory embeds identically into target memory. *)
let mem_embeds m1 m2 = Mem.unchanged_on (fun _ _ -> true) m1 m2

type ca_world = {
  ca_sg : signature;
  ca_rs : Regfile.t;  (** machine registers at the question *)
  ca_sp : value;
  ca_ra : value;
  ca_mem : Mem.t;  (** target memory at the question *)
  ca_src_mem : Mem.t;  (** source memory at the question *)
}

(* Transplant the environment's memory writes — the contents diff between
   the source memories [before] and [after] — onto the target memory.
   Environments that allocate or change permissions are outside the
   identity fragment this convention checks. *)
let transplant_diff ~before ~after ~onto =
  Mem.fold_live_offsets after
    (fun b ofs acc ->
      match acc with
      | None -> None
      | Some m ->
        let c = Mem.contents_at after b ofs in
        if Mem.contents_at before b ofs = c then Some m
        else Mem.storebytes m b ofs [ c ])
    (Some onto)

let cc_ca : (ca_world, c_query, a_query, c_reply, a_reply) Simconv.t =
  let infer (q1 : c_query) (q3 : a_query) : ca_world option =
    let rs = q3.aq_rs in
    Some
      {
        ca_sg = q1.cq_sg;
        ca_rs = Pregfile.to_regfile rs;
        ca_sp = Pregfile.get SP rs;
        ca_ra = Pregfile.get RA rs;
        ca_mem = q3.aq_mem;
        ca_src_mem = q1.cq_mem;
      }
  in
  let chk_query (w : ca_world) (q1 : c_query) (q3 : a_query) =
    let rs = q3.aq_rs in
    Pregfile.get PC rs = q1.cq_vf
    && signature_equal w.ca_sg q1.cq_sg
    && Pregfile.get SP rs = w.ca_sp
    && Pregfile.get RA rs = w.ca_ra
    (* Arguments, read per the calling convention from registers and the
       in-memory argument region. *)
    && (let ls = make_locset_sg w.ca_sg (Pregfile.to_regfile rs) q3.aq_mem w.ca_sp in
        lessdef_list q1.cq_args (Conventions.extract_arguments w.ca_sg ls))
    (* Source memory embeds into the target memory with the argument
       region carved out (Fig. 13). *)
    && (match free_args w.ca_sg q3.aq_mem w.ca_sp with
       | Some mbar -> mem_embeds q1.cq_mem mbar
       | None -> false)
  in
  let chk_reply (w : ca_world) (r1 : c_reply) (r3 : a_reply) =
    let rs' = r3.ar_rs in
    (* MA: return to the caller with the stack pointer restored. *)
    Pregfile.get PC rs' = w.ca_ra
    && Pregfile.get SP rs' = w.ca_sp
    (* Result in the result register. *)
    && lessdef r1.cr_res (Pregfile.get (Mreg (Conventions.loc_result w.ca_sg)) rs')
    (* Callee-save registers preserved (the CA guarantee, paper §5). *)
    && List.for_all
         (fun r ->
           (not (is_callee_save r))
           || Regfile.get r w.ca_rs = Pregfile.get (Mreg r) rs')
         all_mregs
    (* Memory: the source answer memory embeds into the target answer
       memory with the argument region restored. *)
    && (match mix w.ca_sg w.ca_sp w.ca_mem r3.ar_mem with
       | Some _ -> mem_embeds r1.cr_mem r3.ar_mem
       | None -> mem_embeds r1.cr_mem r3.ar_mem)
  in
  let generic = Simconv.compose cc_cl (Simconv.compose cc_lm cc_ma) in
  let fwd_query q1 =
    match generic.Simconv.fwd_query q1 with
    | None -> None
    | Some (_, q3) -> (
      match infer q1 q3 with Some w -> Some (w, q3) | None -> None)
  in
  {
    Simconv.name = "CA";
    chk_query;
    chk_reply;
    fwd_query;
    fwd_reply =
      (fun w r1 ->
        (* Canonical target answer: result placed, callee-saves restored
           from the question, caller-saves clobbered, PC := RA, SP
           restored; the argument region of the question's memory is
           mixed back into the answer memory. *)
        let rs' =
          List.fold_left
            (fun rs r ->
              if is_callee_save r then
                Pregfile.set (Mreg r) (Regfile.get r w.ca_rs) rs
              else Pregfile.set (Mreg r) Vundef rs)
            Pregfile.init all_mregs
          |> Pregfile.set (Mreg (Conventions.loc_result w.ca_sg)) r1.cr_res
          |> Pregfile.set PC w.ca_ra |> Pregfile.set SP w.ca_sp
          |> Pregfile.set RA Vundef
        in
        match transplant_diff ~before:w.ca_src_mem ~after:r1.cr_mem ~onto:w.ca_mem with
        | Some m' -> Some { ar_rs = rs'; ar_mem = m' }
        | None -> None);
    bwd_reply =
      (fun w r3 ->
        Some
          {
            cr_res = Pregfile.get (Mreg (Conventions.loc_result w.ca_sg)) r3.ar_rs;
            cr_mem = r3.ar_mem;
          });
    bwd_query = (fun _ -> None);
    infer_world = infer;
  }

(** [CM = CL · LM : C ⇔ M]. *)
let cc_cm = Simconv.compose cc_cl cc_lm
