(** Global environments (CompCert's [Globalenvs]) with CompCertO's
    shared-symbol-table discipline (paper, Appendix A.3): all units of a
    composite program see the same symbol→block assignment, while each
    unit's environment resolves only the definitions it owns — calls to
    other blocks become outgoing questions. *)

open Support
open Memory
open Memory.Values

type ('fn, 'v) t

(** Assign blocks [1..n] to the symbols in list order; returns the table
    and the first non-global block. All units of a program must use the
    same symbol list. *)
val make_symtbl : Ident.t list -> block Ident.Map.t * block

val globalenv : symbols:Ident.t list -> ('fn, 'v) Ast.program -> ('fn, 'v) t
val find_symbol : ('fn, 'v) t -> Ident.t -> block option
val symbol_address : ('fn, 'v) t -> Ident.t -> int -> value
val invert_symbol : ('fn, 'v) t -> block -> Ident.t option
val find_def_by_block : ('fn, 'v) t -> block -> ('fn, 'v) Ast.globdef option
val find_funct_ptr : ('fn, 'v) t -> block -> 'fn Ast.fundef option

(** Resolve a function value (pointers at offset 0 only). *)
val find_funct : ('fn, 'v) t -> value -> 'fn Ast.fundef option

(** Does this unit define (with a body) the function at [v]? The domain
    [D] of the unit's open semantics. *)
val defines_internal : ('fn, 'v) t -> value -> bool

(** Is [v] the base address of some global symbol block? Calls to such
    addresses that are not defined internally become outgoing questions;
    calls to anything else are stuck. *)
val plausible_funct : ('fn, 'v) t -> value -> bool

val store_init_data :
  ('fn, 'v) t -> Mem.t -> block -> int -> Ast.init_data -> Mem.t option

val store_init_data_list :
  ('fn, 'v) t -> Mem.t -> block -> int -> Ast.init_data list -> Mem.t option

(** Allocate one block per symbol in table order (so block identities
    agree with [globalenv]); variables are initialized ([Init_space]
    zero-fills) with [Readable]/[Writable] permission, function and
    external-symbol blocks get 1 byte at [Nonempty]. *)
val init_mem : symbols:Ident.t list -> ('fn, 'v) Ast.program -> Mem.t option

(** Read-only regions of the initial memory: the basis of the [va]
    invariant and the [vainj]/[vaext] CKLRs (Lemma 5.8). *)
val romem : symbols:Ident.t list -> ('fn, 'v) Ast.program -> Core.Cklr.romem
