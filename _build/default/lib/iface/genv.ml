(** Global environments (CompCert's [Globalenvs]), with CompCertO's
    shared-symbol-table discipline (paper, Appendix A.3).

    A global environment maps symbols to memory blocks and blocks to the
    definitions of {e this} translation unit. Crucially, the symbol table
    is global: every unit of a composite program sees the same
    symbol-to-block assignment (derived from the set of all symbols, in a
    canonical order), while each unit's environment only resolves the
    blocks of functions the unit itself defines — calls to all other
    blocks become outgoing questions. *)

open Support
open Memory
open Memory.Values

module BMap = Map.Make (Int)

type ('fn, 'v) t = {
  symbols : block Ident.Map.t;  (** the shared symbol table *)
  defs : (Ident.t * ('fn, 'v) Ast.globdef) list;  (** this unit's definitions *)
  blocks : ('fn, 'v) Ast.globdef BMap.t;  (** block → local definition *)
  next : block;  (** first non-global block *)
}

(** Assign blocks 1..n to [symbols] in list order. All units of a program
    must be built with the same symbol list. *)
let make_symtbl (symbols : Ident.t list) : block Ident.Map.t * block =
  let tbl, next =
    List.fold_left
      (fun (tbl, b) id ->
        if Ident.Map.mem id tbl then (tbl, b) else (Ident.Map.add id b tbl, b + 1))
      (Ident.Map.empty, 1) symbols
  in
  (tbl, next)

let globalenv ~(symbols : Ident.t list) (p : ('fn, 'v) Ast.program) : ('fn, 'v) t =
  let symtbl, next = make_symtbl symbols in
  let blocks =
    List.fold_left
      (fun acc (id, d) ->
        match Ident.Map.find_opt id symtbl with
        | Some b -> BMap.add b d acc
        | None -> acc)
      BMap.empty p.Ast.prog_defs
  in
  { symbols = symtbl; defs = p.Ast.prog_defs; blocks; next }

let find_symbol ge id = Ident.Map.find_opt id ge.symbols

let symbol_address ge id ofs =
  match find_symbol ge id with
  | Some b -> Vptr (b, ofs)
  | None -> Vundef

let invert_symbol ge b =
  Ident.Map.fold
    (fun id b' acc -> if b = b' then Some id else acc)
    ge.symbols None

let find_def_by_block ge b = BMap.find_opt b ge.blocks

let find_funct_ptr ge b =
  match find_def_by_block ge b with Some (Ast.Gfun fd) -> Some fd | _ -> None

(** Resolve a function value. Only pointers with offset 0 denote
    functions. *)
let find_funct ge v =
  match v with Vptr (b, 0) -> find_funct_ptr ge b | _ -> None

(** Does this unit define (with a body) the function at [v]? This is the
    domain [D] of the unit's open semantics. *)
let defines_internal ge v =
  match find_funct ge v with Some (Ast.Internal _) -> true | _ -> false

(** Is [v] a plausible function entry point: the base address of some
    global symbol block? Calls to such addresses that this unit does not
    define internally become outgoing questions; calls to anything else
    are undefined behavior (stuck states). *)
let plausible_funct ge v =
  match v with Vptr (b, 0) -> b >= 1 && b < ge.next | _ -> false

(** {1 Initial memory}

    [init_mem ~symbols p] allocates one block per symbol, in symbol-table
    order, so that block identities agree with the global environment.
    Function blocks get size 1 with [Nonempty] permission (their address
    is observable but their contents are not bytes); variable blocks are
    initialized from their [init_data] with [Readable] or [Writable]
    permission. Symbols that [p] does not define still receive a
    (1-byte, [Nonempty]) block, so that a unit's semantics can refer to
    them; the harness builds the "real" memory from the linked program. *)

let store_init_data ge m b ofs (d : Ast.init_data) =
  let open Memdata in
  match d with
  | Ast.Init_int8 n -> Mem.store Mint8unsigned m b ofs (Vint n)
  | Ast.Init_int16 n -> Mem.store Mint16unsigned m b ofs (Vint n)
  | Ast.Init_int32 n -> Mem.store Mint32 m b ofs (Vint n)
  | Ast.Init_int64 n -> Mem.store Mint64 m b ofs (Vlong n)
  | Ast.Init_float32 f -> Mem.store Mfloat32 m b ofs (Vsingle f)
  | Ast.Init_float64 f -> Mem.store Mfloat64 m b ofs (Vfloat f)
  | Ast.Init_space n ->
    (* Static storage is zero-initialized. *)
    Mem.storebytes m b ofs (List.init (max n 0) (fun _ -> Memdata.Byte 0))
  | Ast.Init_addrof (id, o) -> (
    match find_symbol ge id with
    | Some b' -> Mem.store Mint64 m b ofs (Vptr (b', o))
    | None -> None)

let store_init_data_list ge m b ofs dl =
  let rec go m ofs = function
    | [] -> Some m
    | d :: rest -> (
      match store_init_data ge m b ofs d with
      | Some m' -> go m' (ofs + Ast.init_data_size d) rest
      | None -> None)
  in
  go m ofs dl

let init_mem ~(symbols : Ident.t list) (p : ('fn, 'v) Ast.program) : Mem.t option =
  let ge = globalenv ~symbols p in
  let ordered =
    List.sort
      (fun id1 id2 ->
        compare (Ident.Map.find id1 ge.symbols) (Ident.Map.find id2 ge.symbols))
      (Ident.Map.fold (fun id _ acc -> id :: acc) ge.symbols [])
  in
  let alloc_one m id =
    match m with
    | None -> None
    | Some m -> (
      match Ast.find_def p id with
      | Some (Ast.Gvar gv) -> (
        let sz = Ast.init_data_list_size gv.Ast.gvar_init in
        let m, b = Mem.alloc m 0 sz in
        match store_init_data_list ge m b 0 gv.Ast.gvar_init with
        | None -> None
        | Some m ->
          let perm = if gv.Ast.gvar_readonly then Mem.Readable else Mem.Writable in
          Mem.drop_perm m b 0 sz perm)
      | Some (Ast.Gfun _) | None ->
        (* Function block, or symbol defined in another unit. *)
        let m, b = Mem.alloc m 0 1 in
        Mem.drop_perm m b 0 1 Mem.Nonempty)
  in
  List.fold_left alloc_one (Some Mem.empty) ordered

(** Read-only regions of the initial memory: the basis of the [va]
    invariant and the [vainj]/[vaext] CKLRs (paper §5, Lemma 5.8). *)
let romem ~symbols (p : ('fn, 'v) Ast.program) : Core.Cklr.romem =
  let ge = globalenv ~symbols p in
  match init_mem ~symbols p with
  | None -> []
  | Some m ->
    List.filter_map
      (fun (id, d) ->
        match d with
        | Ast.Gvar gv when gv.Ast.gvar_readonly -> (
          match find_symbol ge id with
          | Some b -> (
            let sz = Ast.init_data_list_size gv.Ast.gvar_init in
            match Mem.loadbytes m b 0 sz with
            | Some bytes -> Some (b, 0, bytes)
            | None -> None)
          | None -> None)
        | _ -> None)
      p.Ast.prog_defs
