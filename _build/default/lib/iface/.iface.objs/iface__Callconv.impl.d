lib/iface/callconv.ml: Cklr Conventions Core Invariant Li List Locset Mem Memdata Memory Pregfile Regfile Simconv Target
