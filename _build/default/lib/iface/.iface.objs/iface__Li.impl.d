lib/iface/li.ml: Format List Locations Machregs Map Mem Memory Option Target Values
