lib/iface/genv.mli: Ast Core Ident Mem Memory Support
