lib/iface/genv.ml: Ast Core Ident Int List Map Mem Memdata Memory Support
