lib/iface/ast.ml: Errors Ident List Memory Support
