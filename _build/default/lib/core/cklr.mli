(** CompCert Kripke logical relations (paper §4.4), executable.

    A CKLR packages a Kripke frame [⟨W, ⇝⟩] with world-indexed relations
    on values and memory states; the frame conditions of Fig. 8 are
    checked by the property-based test suite. Instances: [ext]
    (extensions), [inj] (injections), [injp] (injections protecting
    unmapped/out-of-reach regions, §4.5), and [vaext]/[vainj] which
    additionally require read-only global data intact (Lemma 5.8). *)

open Memory

module type CKLR = sig
  type world

  val name : string
  val match_val : world -> Values.value -> Values.value -> bool
  val match_mem : world -> Mem.t -> Mem.t -> bool

  (** Accessibility [w ⇝ w']. *)
  val acc : world -> world -> bool

  (** Canonical (identity-shaped) world and target memory for entering a
      component on a given source memory. *)
  val init : Mem.t -> world * Mem.t

  (** Canonical target value related to a source value. *)
  val map_val : world -> Values.value -> Values.value option

  (** Canonical world evolution for the [^] modality: blocks allocated in
      lockstep on both sides are related identically. *)
  val grow : world -> Mem.t -> Mem.t -> world

  val pp_world : Format.formatter -> world -> unit
end

(** Identity-extension of an injection to lockstep-allocated blocks. *)
val grow_meminj : Meminj.t -> Mem.t -> Mem.t -> Meminj.t

module Ext : CKLR with type world = unit
module Inj : CKLR with type world = Meminj.t
module Injp : CKLR with type world = Meminj.injp_world

(** Read-only regions (blocks of const globals with their contents): the
    basis of the [va] invariant. *)
type romem = (Values.block * int * Memdata.memval list) list

val romem_sound : romem -> Mem.t -> bool

module Vainj (_ : sig
  val romem : romem
end) : CKLR with type world = Meminj.t

module Vaext (_ : sig
  val romem : romem
end) : CKLR with type world = unit

(** First-class packaging for manipulating sets of CKLRs (the sum
    [R = injp + inj + ext + vainj + vaext] of §5). *)
type some_cklr = Some_cklr : (module CKLR with type world = 'w) -> some_cklr

val all_basic : some_cklr list
val cklr_name : some_cklr -> string
