(** Observable events (CompCert's [Events], restricted).

    Transitions of an open LTS are labeled by traces of events (Def. 3.1:
    [→ ⊆ S × E* × S]). In this development events arise from I/O
    primitives handled by the environment oracles of the test harness and
    from annotations; cross-component calls are {e not} events — they are
    the questions and answers of language interfaces. *)

open Memory

type eventval =
  | EVint of int32
  | EVlong of int64
  | EVfloat of float
  | EVsingle of float
  | EVptr_global of Support.Ident.t * int

type event =
  | Event_syscall of string * eventval list * eventval
  | Event_annot of string * eventval list

type trace = event list

let e0 : trace = []

let eventval_of_value = function
  | Values.Vint n -> Some (EVint n)
  | Values.Vlong n -> Some (EVlong n)
  | Values.Vfloat f -> Some (EVfloat f)
  | Values.Vsingle f -> Some (EVsingle f)
  | _ -> None

let value_of_eventval = function
  | EVint n -> Values.Vint n
  | EVlong n -> Values.Vlong n
  | EVfloat f -> Values.Vfloat f
  | EVsingle f -> Values.Vsingle f
  | EVptr_global _ -> Values.Vundef

let pp_eventval fmt = function
  | EVint n -> Format.fprintf fmt "%ld" n
  | EVlong n -> Format.fprintf fmt "%LdL" n
  | EVfloat f -> Format.fprintf fmt "%g" f
  | EVsingle f -> Format.fprintf fmt "%gf" f
  | EVptr_global (id, ofs) -> Format.fprintf fmt "&%a+%d" Support.Ident.pp id ofs

let pp_event fmt = function
  | Event_syscall (name, args, res) ->
    Format.fprintf fmt "syscall %s(%a) -> %a" name
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_eventval)
      args pp_eventval res
  | Event_annot (text, args) ->
    Format.fprintf fmt "annot %S(%a)" text
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_eventval)
      args

let pp_trace fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    t

let trace_equal (t1 : trace) (t2 : trace) = t1 = t2
