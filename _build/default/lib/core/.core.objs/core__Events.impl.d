lib/core/events.ml: Format Memory Support Values
