lib/core/hcomp.ml: Array Events List Printf Smallstep String
