lib/core/closed.mli: Smallstep
