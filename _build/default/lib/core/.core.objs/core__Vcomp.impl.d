lib/core/vcomp.ml: Events List Printf Smallstep
