lib/core/simconv.ml: List Option
