lib/core/smallstep.ml: Events Format Hashtbl List Queue
