lib/core/closed.ml: List Option Smallstep
