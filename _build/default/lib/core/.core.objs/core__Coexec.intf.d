lib/core/coexec.mli: Format Simconv Smallstep
