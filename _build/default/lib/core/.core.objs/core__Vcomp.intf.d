lib/core/vcomp.mli: Smallstep
