lib/core/invariant.mli: Simconv Smallstep
