lib/core/coexec.ml: Events Format Simconv Smallstep
