lib/core/cklr.mli: Format Mem Memdata Meminj Memory Values
