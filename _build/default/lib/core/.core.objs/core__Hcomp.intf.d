lib/core/hcomp.mli: Smallstep
