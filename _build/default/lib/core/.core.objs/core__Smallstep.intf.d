lib/core/smallstep.mli: Events Format
