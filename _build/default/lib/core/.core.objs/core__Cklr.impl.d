lib/core/cklr.ml: Format List Mem Memdata Meminj Memory Values
