lib/core/simconv.mli:
