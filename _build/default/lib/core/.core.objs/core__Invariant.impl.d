lib/core/invariant.ml: Simconv Smallstep
