(** Closing an open semantics into a whole-program semantics
    (paper §3.1–3.2: the interface [1 ↠ W]).

    [close lts ~entry ~decode] turns [L : A ↠ B] into a process semantics
    over the whole-program interface [W = ⟨1, int⟩]: the unique question
    [()] activates [L] on the conventional entry query (e.g. a call to
    [main]), external calls escape unanswered (a closed program must not
    have any, unless an oracle is supplied), and the exit status is
    decoded from the final answer. This recovers the original CompCert
    semantics shape from our open semantics, reproducing the first row of
    the paper's Table 4. *)

open Smallstep

type 's state = Sys of 's

let close (l : ('s, 'qi, 'ri, 'qo, 'ro) lts) ~(entry : 'qi)
    ~(decode : 'ri -> int32 option) : ('s state, unit, int32, 'qo, 'ro) lts =
  {
    name = "[" ^ l.name ^ "]";
    dom = (fun () -> l.dom entry);
    init = (fun () -> List.map (fun s -> Sys s) (l.init entry));
    step = (fun (Sys s) -> List.map (fun (t, s') -> (t, Sys s')) (l.step s));
    at_external = (fun (Sys s) -> l.at_external s);
    after_external = (fun (Sys s) r -> List.map (fun s' -> Sys s') (l.after_external s r));
    final = (fun (Sys s) -> Option.bind (l.final s) decode);
  }
