(** Invariants as degenerate simulation conventions (paper, Appendix B):
    predicates on the questions and answers of a single language
    interface, promoted to conventions relating equal elements
    (Definition B.3), with the strengthened semantics [Lᴾ] of
    Appendix B.4. *)

open Smallstep

type ('w, 'q, 'r) t = {
  inv_name : string;
  query_inv : 'w -> 'q -> bool;  (** [w ⊩ q ∈ P°] *)
  reply_inv : 'w -> 'r -> bool;  (** [w ⊩ r ∈ P•] *)
  world_of : 'q -> 'w option;  (** canonical world for an incoming question *)
}

(** Promotion [P ↦ P̂] (Definition B.3). *)
val to_conv : ('w, 'q, 'r) t -> ('w, 'q, 'q, 'r, 'r) Simconv.t

(** The strengthened semantics [Lᴾ]: refuses incoming questions violating
    the incoming invariant; outgoing interactions are filtered by the
    outgoing invariant. [L ≤P̂↠P̂ Lᴾ] holds by construction. *)
val strengthen :
  ('wb, 'qi, 'ri) t ->
  ('wa, 'qo, 'ro) t ->
  ('s, 'qi, 'ri, 'qo, 'ro) lts ->
  ('s, 'qi, 'ri, 'qo, 'ro) lts
