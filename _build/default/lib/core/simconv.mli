(** Simulation conventions (paper, Definition 2.6), in executable form:
    the relations [R° ]/[R•] of a convention [R : A1 ⇔ A2] together with
    {e marshaling} functions choosing canonical related counterparts,
    so that conventions can both {e check} relatedness and {e carry}
    queries between levels. *)

type ('w, 'q1, 'q2, 'r1, 'r2) t = {
  name : string;
  chk_query : 'w -> 'q1 -> 'q2 -> bool;  (** [w ⊩ q1 R° q2] *)
  chk_reply : 'w -> 'r1 -> 'r2 -> bool;
      (** [w ⊩ r1 R• r2]; conventions allowing world evolution fold the
          [^] modality (§4.4) into this check. *)
  fwd_query : 'q1 -> ('w * 'q2) option;
      (** choose a world and a canonical related target question *)
  fwd_reply : 'w -> 'r1 -> 'r2 option;
      (** canonical target answer for a source answer (the environment's
          side of Fig. 6(c)) *)
  bwd_reply : 'w -> 'r2 -> 'r1 option;
      (** read a target answer back at the source level *)
  bwd_query : 'q2 -> 'q1 option;
      (** decode a target question when the convention permits it ([MA]
          and [CL] do; [LM] cannot — the signature is not recoverable
          from an [M] question) *)
  infer_world : 'q1 -> 'q2 -> 'w option;
      (** find a world relating two {e given} questions — the existential
          of Fig. 6(c), for checking outgoing calls of two running
          executions *)
}

(** The identity convention [id] with the singleton world. *)
val cc_id : ?name:string -> unit -> (unit, 'q, 'q, 'r, 'r) t

(** Composition [R · S] (Definition 3.6): worlds are pairs; the
    existential middle questions are witnessed by decoding from the
    target when possible, else by canonical marshaling from the source. *)
val compose :
  ('w1, 'q1, 'q2, 'r1, 'r2) t ->
  ('w2, 'q2, 'q3, 'r2, 'r3) t ->
  ('w1 * 'w2, 'q1, 'q3, 'r1, 'r3) t

(** Refinement check [R ⊑ S] (Definition 5.1) on a finite sample of
    question pairs and answer pairs. *)
val check_refinement :
  r:('wr, 'q1, 'q2, 'r1, 'r2) t ->
  s:('ws, 'q1, 'q2, 'r1, 'r2) t ->
  sample_queries:('ws * 'q1 * 'q2) list ->
  sample_replies:'r1 list * 'r2 list ->
  bool
