(** Layered composition of open semantics (paper §3.5): the asymmetric
    operator [∘ : (B ↠ C) × (A ↠ B) → (A ↠ C)] where calls propagate
    downward only — the shape of heterogeneous stacks such as
    [driver ∘ io ∘ nic] (Examples 1.1 and 3.10). *)

open Smallstep

type ('s1, 's2) state =
  | Upper of 's1  (** the upper layer running *)
  | Lower of 's1 * 's2  (** upper suspended on a call served below *)

(** [layer l1 l2]: questions activate [l1]; [l1]'s external calls are
    served by [l2] when its domain accepts them (an unaccepted upper call
    is a stuck state); [l2]'s external calls escape to the environment. *)
val layer :
  ('s1, 'qc, 'rc, 'qb, 'rb) lts ->
  ('s2, 'qb, 'rb, 'qa, 'ra) lts ->
  (('s1, 's2) state, 'qc, 'rc, 'qa, 'ra) lts
