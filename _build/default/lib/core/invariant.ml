(** Invariants as degenerate simulation conventions (paper, Appendix B).

    An invariant [P = ⟨W, P°, P•⟩] constrains questions and answers of a
    single language interface. Promoting it to a simulation convention
    [P̂] relates equal questions/answers that satisfy the predicates
    (Definition B.3). [strengthen] builds the strengthened transition
    system [Lᴾ] of Appendix B.4, which refuses queries violating [P°] and
    suppresses answers violating [P•]; simulations from [Lᴾ] may assume
    the invariant, and [L ≤P̂↠P̂ Lᴾ] holds by construction. *)

open Smallstep

type ('w, 'q, 'r) t = {
  inv_name : string;
  query_inv : 'w -> 'q -> bool;  (** [w ⊩ q ∈ P°] *)
  reply_inv : 'w -> 'r -> bool;  (** [w ⊩ r ∈ P•] *)
  world_of : 'q -> 'w option;  (** canonical world for an incoming question *)
}

(** Promotion [P ↦ P̂] to a simulation convention (Definition B.3). *)
let to_conv (p : ('w, 'q, 'r) t) : ('w, 'q, 'q, 'r, 'r) Simconv.t =
  {
    Simconv.name = p.inv_name;
    chk_query = (fun w q1 q2 -> q1 = q2 && p.query_inv w q1);
    chk_reply = (fun w r1 r2 -> r1 = r2 && p.reply_inv w r1);
    fwd_query =
      (fun q ->
        match p.world_of q with
        | Some w when p.query_inv w q -> Some (w, q)
        | _ -> None);
    fwd_reply = (fun w r -> if p.reply_inv w r then Some r else None);
    bwd_reply = (fun w r -> if p.reply_inv w r then Some r else None);
    bwd_query = (fun q -> Some q);
    infer_world =
      (fun q1 q2 ->
        if q1 = q2 then
          match p.world_of q1 with
          | Some w when p.query_inv w q1 -> Some w
          | _ -> None
        else None);
  }

(** The strengthened semantics [Lᴾ]: identical transitions, but incoming
    questions outside the invariant are refused and outgoing interactions
    are filtered by [P] on the outgoing interface [Pᴬ]. *)
let strengthen (p_in : ('wb, 'qi, 'ri) t) (p_out : ('wa, 'qo, 'ro) t)
    (l : ('s, 'qi, 'ri, 'qo, 'ro) lts) : ('s, 'qi, 'ri, 'qo, 'ro) lts =
  {
    l with
    name = l.name ^ "^" ^ p_in.inv_name;
    dom =
      (fun q ->
        l.dom q && match p_in.world_of q with Some w -> p_in.query_inv w q | None -> false);
    at_external =
      (fun s ->
        match l.at_external s with
        | Some q -> (
          match p_out.world_of q with
          | Some w when p_out.query_inv w q -> Some q
          | _ -> None)
        | None -> None);
  }
