(** Horizontal composition of open semantics (paper, Definition 3.2 and
    Figure 5): linking with support for mutual recursion, through an
    alternating stack of activations. *)

open Smallstep

(** A frame of the composite: an activation of the first or second
    component. *)
type ('s1, 's2) frame = F1 of 's1 | F2 of 's2

(** Composite states: the head frame is running, the tail frames are
    suspended callers. *)
type ('s1, 's2) state = ('s1, 's2) frame list

(** [compose l1 l2] is [l1 ⊕ l2 : A ↠ A], implementing the eight rules
    of Fig. 5 (i°, run, i•, push, pop, x°, x•). Incoming questions are
    routed to the component whose domain accepts them; external questions
    accepted by either component start a new activation (push); questions
    accepted by neither escape to the environment (x°). *)
val compose :
  ('s1, 'q, 'r, 'q, 'r) lts ->
  ('s2, 'q, 'r, 'q, 'r) lts ->
  (('s1, 's2) state, 'q, 'r, 'q, 'r) lts

(** n-ary composition of components sharing a state type (e.g. [n]
    translation units of one language); frames carry component indices.
    Agrees with iterated binary [compose] (tested). *)
val compose_all :
  ('s, 'q, 'r, 'q, 'r) lts array -> ((int * 's) list, 'q, 'r, 'q, 'r) lts
