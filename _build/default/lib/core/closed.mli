(** Closing an open semantics into a whole-program semantics over the
    interface [W = ⟨1, int⟩] (paper §3.1–3.2, Table 4 row 1). *)

open Smallstep

type 's state = Sys of 's

(** [close lts ~entry ~decode]: the unique question [()] activates [lts]
    on the conventional entry query; the exit status is decoded from the
    final answer. *)
val close :
  ('s, 'qi, 'ri, 'qo, 'ro) lts ->
  entry:'qi ->
  decode:('ri -> int32 option) ->
  ('s state, unit, int32, 'qo, 'ro) lts
