(** CompCert Kripke logical relations (paper §4.4), executable.

    A CKLR packages a Kripke frame [⟨W, ⇝⟩] with relations on values and
    memory states indexed by worlds, satisfying the frame conditions of
    Fig. 8 (checked by the property-based test suite rather than proved).
    Each instance also provides constructive directions used by the
    marshaling machinery:

    - [init m]: a canonical world and target memory related to [m]
      (identity-shaped, used when entering a component);
    - [map_val w v]: the canonical target value related to [v].

    Instances: [ext] (memory extensions), [inj] (memory injections),
    [injp] (injections with protection of unmapped/out-of-reach regions,
    §4.5), and [vaext]/[vainj] which additionally require the read-only
    global data to be intact (the [va] invariant embedded into a CKLR,
    Lemma 5.8). *)

open Memory

module type CKLR = sig
  type world

  val name : string
  val match_val : world -> Values.value -> Values.value -> bool
  val match_mem : world -> Mem.t -> Mem.t -> bool

  (** Accessibility [w ⇝ w']. *)
  val acc : world -> world -> bool

  val init : Mem.t -> world * Mem.t
  val map_val : world -> Values.value -> Values.value option

  (** Canonical world evolution: given the memories reached when the call
      returns, produce the accessible world [w'] used to check the answer
      relation under the [^] modality. New blocks allocated in lockstep on
      both sides are related identically. *)
  val grow : world -> Mem.t -> Mem.t -> world

  val pp_world : Format.formatter -> world -> unit
end

(* Extend an injection with identity entries for blocks allocated (in
   lockstep) after the mapping was created. *)
let grow_meminj (f : Meminj.t) m1 m2 =
  let base =
    Meminj.IMap.fold (fun b _ acc -> max acc (b + 1)) f 1
  in
  let upper = min (Mem.nextblock m1) (Mem.nextblock m2) in
  let rec go b f = if b >= upper then f else go (b + 1) (Meminj.add b b 0 f) in
  go base f

module Ext : CKLR with type world = unit = struct
  type world = unit

  let name = "ext"
  let match_val () v1 v2 = Values.lessdef v1 v2
  let match_mem () m1 m2 = Meminj.mem_extends m1 m2
  let acc () () = true
  let init m = ((), m)
  let map_val () v = Some v
  let grow () _ _ = ()
  let pp_world fmt () = Format.pp_print_string fmt "tt"
end

module Inj : CKLR with type world = Meminj.t = struct
  type world = Meminj.t

  let name = "inj"
  let match_val f v1 v2 = Meminj.val_inject f v1 v2
  let match_mem f m1 m2 = Meminj.mem_inject f m1 m2
  let acc f f' = Meminj.incl f f'
  let init m = (Meminj.id_below (Mem.nextblock m), m)
  let map_val f v = Meminj.map_val f v
  let grow = grow_meminj
  let pp_world = Meminj.pp
end

module Injp : CKLR with type world = Meminj.injp_world = struct
  type world = Meminj.injp_world

  let name = "injp"

  let match_val w v1 v2 = Meminj.val_inject w.Meminj.injp_f v1 v2

  (* The world of injp fixes the memories at the interaction point: the
     relation holds precisely at those memories (paper §4.5). *)
  let match_mem w m1 m2 =
    Mem.equal w.Meminj.injp_m1 m1
    && Mem.equal w.Meminj.injp_m2 m2
    && Meminj.mem_inject w.Meminj.injp_f m1 m2

  let acc = Meminj.injp_acc

  let init m =
    (Meminj.injp_world (Meminj.id_below (Mem.nextblock m)) m m, m)

  let map_val w v = Meminj.map_val w.Meminj.injp_f v

  let grow w m1 m2 =
    Meminj.injp_world (grow_meminj w.Meminj.injp_f m1 m2) m1 m2

  let pp_world fmt w =
    Format.fprintf fmt "injp(%a)" Meminj.pp w.Meminj.injp_f
end

(** Read-only data soundness: the [va] (value-analysis) invariant requires
    the contents of const global blocks to be intact. The checker is
    parameterized by the set of protected regions. *)
type romem = (Values.block * int * Memdata.memval list) list

let romem_sound (ro : romem) m =
  List.for_all
    (fun (b, ofs, mvl) ->
      match Mem.loadbytes m b ofs (List.length mvl) with
      | Some mvl' -> mvl = mvl'
      | None -> false)
    ro

module Vainj (R : sig
  val romem : romem
end) : CKLR with type world = Meminj.t = struct
  type world = Meminj.t

  let name = "vainj"
  let match_val = Inj.match_val

  let match_mem f m1 m2 =
    Meminj.mem_inject f m1 m2 && romem_sound R.romem m1

  let acc = Inj.acc
  let init = Inj.init
  let map_val = Inj.map_val
  let grow = Inj.grow
  let pp_world = Inj.pp_world
end

module Vaext (R : sig
  val romem : romem
end) : CKLR with type world = unit = struct
  type world = unit

  let name = "vaext"
  let match_val = Ext.match_val
  let match_mem () m1 m2 = Meminj.mem_extends m1 m2 && romem_sound R.romem m1
  let acc = Ext.acc
  let init = Ext.init
  let map_val = Ext.map_val
  let grow = Ext.grow
  let pp_world = Ext.pp_world
end

(** First-class packaging, used when a set of CKLRs must be manipulated
    uniformly (the sum [R = injp + inj + ext + vainj + vaext] of §5). *)
type some_cklr = Some_cklr : (module CKLR with type world = 'w) -> some_cklr

let all_basic : some_cklr list =
  [ Some_cklr (module Ext); Some_cklr (module Inj); Some_cklr (module Injp) ]

let cklr_name (Some_cklr (module R)) = R.name
