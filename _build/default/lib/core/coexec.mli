(** Co-execution: the executable counterpart of open forward simulations
    (paper §3.3, Fig. 6). A successful co-execution is one concrete
    instance of the simulation diagrams; a divergence produces a
    descriptive counterexample. *)

open Smallstep

type verdict = Pass | Fail of string

val pp_verdict : Format.formatter -> verdict -> unit
val is_pass : verdict -> bool

(** [check ~fuel ~l1 ~l2 ~cc_in ~cc_out ~oracle q1] marshals [q1] through
    [cc_in], activates both semantics and co-executes them:
    - at every pair of outgoing calls, a world relating the two questions
      is inferred ([cc_out.infer_world]) and the relation checked;
    - [oracle] answers the source-level call and [cc_out.fwd_reply]
      produces the related target-level answer;
    - final answers must satisfy [cc_in.chk_reply]; event traces must
      agree; a stuck source licenses any target behavior. *)
val check :
  fuel:int ->
  l1:('s1, 'q1, 'r1, 'qo1, 'ro1) lts ->
  l2:('s2, 'q2, 'r2, 'qo2, 'ro2) lts ->
  cc_in:('wb, 'q1, 'q2, 'r1, 'r2) Simconv.t ->
  cc_out:('wa, 'qo1, 'qo2, 'ro1, 'ro2) Simconv.t ->
  oracle:('qo1 -> 'ro1 option) ->
  'q1 ->
  verdict

(** Variant with independent oracles at each level (e.g. an Asm-level
    oracle decoding arguments from registers); the relatedness of the two
    oracles is part of the experiment setup. *)
val check_with_oracles :
  fuel:int ->
  l1:('s1, 'q1, 'r1, 'qo1, 'ro1) lts ->
  l2:('s2, 'q2, 'r2, 'qo2, 'ro2) lts ->
  cc_in:('wb, 'q1, 'q2, 'r1, 'r2) Simconv.t ->
  oracle1:('qo1 -> 'ro1 option) ->
  oracle2:('qo2 -> 'ro2 option) ->
  reply_ok:('wb -> 'r1 -> 'r2 -> bool) ->
  'q1 ->
  verdict
