(** Simulation conventions (paper, Definition 2.6), in executable form.

    A simulation convention [R : A1 ⇔ A2] is a set of worlds [W] together
    with Kripke relations on questions ([R°]) and answers ([R•]). The Coq
    development uses them purely relationally; to make them executable we
    additionally equip each convention with {e marshaling} functions that
    pick canonical related counterparts:

    - [fwd_query q1] chooses a world and a target question related to the
      source question [q1] (exercising the environment's freedom to choose
      a valid low-level representation, cf. Appendix A.4);
    - [fwd_reply w r1] chooses a target answer related to a source answer
      at world [w] — used when the environment answers an outgoing call at
      both levels;
    - [bwd_reply w r2] recovers the source-level answer implied by a
      target answer — used to read back final results.

    As in the paper, a single world constrains the 4-way relationship
    between a pair of questions and the corresponding pair of answers
    (§4.4); conventions whose worlds must remember parts of the questions
    (e.g. [LM]'s [(sg, rs, m, sp)]) simply store them in ['w]. Conventions
    that allow world evolution fold the [^] modality into [chk_reply]. *)

type ('w, 'q1, 'q2, 'r1, 'r2) t = {
  name : string;
  chk_query : 'w -> 'q1 -> 'q2 -> bool;  (** [w ⊩ q1 R° q2] *)
  chk_reply : 'w -> 'r1 -> 'r2 -> bool;  (** [w ⊩ r1 R• r2] *)
  fwd_query : 'q1 -> ('w * 'q2) option;
  fwd_reply : 'w -> 'r1 -> 'r2 option;
  bwd_reply : 'w -> 'r2 -> 'r1 option;
  bwd_query : 'q2 -> 'q1 option;
      (** Decode a target question into the source question it represents,
          when the convention permits it ([MA] and [CL] do; [LM] cannot —
          the signature is not recoverable from an [M] question). *)
  infer_world : 'q1 -> 'q2 -> 'w option;
      (** Find a world at which two {e given} questions are related — the
          existential of Fig. 6(c), used when checking the outgoing calls
          of two running executions (whose worlds are chosen by the
          programs, not by the harness). *)
}

(** The identity convention [id] with the singleton world. *)
let cc_id ?(name = "id") () : (unit, 'q, 'q, 'r, 'r) t =
  {
    name;
    chk_query = (fun () q1 q2 -> q1 = q2);
    chk_reply = (fun () r1 r2 -> r1 = r2);
    fwd_query = (fun q -> Some ((), q));
    fwd_reply = (fun () r -> Some r);
    bwd_reply = (fun () r -> Some r);
    bwd_query = (fun q -> Some q);
    infer_world = (fun q1 q2 -> if q1 = q2 then Some () else None);
  }

(** Composition [R · S] (Definition 3.6): worlds are pairs, relations are
    relational composition. The purely existential checks ([∃ middle])
    are under-approximated through the canonical marshaling functions;
    this is sound for the harness (a successful check implies the
    relation) and is how the checker witnesses the existentials. *)
let compose (r : ('w1, 'q1, 'q2, 'r1, 'r2) t) (s : ('w2, 'q2, 'q3, 'r2, 'r3) t) :
    ('w1 * 'w2, 'q1, 'q3, 'r1, 'r3) t =
  {
    name = r.name ^ " . " ^ s.name;
    chk_query =
      (fun (w1, w2) q1 q3 ->
        (* Witness the existential middle question: decode it from the
           target when possible, else marshal it from the source. *)
        let middle =
          match s.bwd_query q3 with
          | Some q2 -> Some q2
          | None -> Option.map snd (r.fwd_query q1)
        in
        match middle with
        | Some q2 -> r.chk_query w1 q1 q2 && s.chk_query w2 q2 q3
        | None -> false);
    chk_reply =
      (fun (w1, w2) r1 r3 ->
        (* Witness the existential middle answer from either side. *)
        let ok r2 = r.chk_reply w1 r1 r2 && s.chk_reply w2 r2 r3 in
        (match s.bwd_reply w2 r3 with Some r2 -> ok r2 | None -> false)
        || (match r.fwd_reply w1 r1 with Some r2 -> ok r2 | None -> false));
    fwd_query =
      (fun q1 ->
        match r.fwd_query q1 with
        | None -> None
        | Some (w1, q2) -> (
          match s.fwd_query q2 with
          | None -> None
          | Some (w2, q3) -> Some ((w1, w2), q3)));
    fwd_reply =
      (fun (w1, w2) r1 ->
        match r.fwd_reply w1 r1 with
        | None -> None
        | Some r2 -> s.fwd_reply w2 r2);
    bwd_reply =
      (fun (w1, w2) r3 ->
        match s.bwd_reply w2 r3 with
        | None -> None
        | Some r2 -> r.bwd_reply w1 r2);
    bwd_query =
      (fun q3 -> Option.bind (s.bwd_query q3) r.bwd_query);
    infer_world =
      (fun q1 q3 ->
        (* Witness the middle question: decode it from the target when
           possible, otherwise marshal it canonically from the source. *)
        let middle =
          match s.bwd_query q3 with
          | Some q2 -> Some q2
          | None -> Option.map snd (r.fwd_query q1)
        in
        match middle with
        | Some q2 -> (
          match (r.infer_world q1 q2, s.infer_world q2 q3) with
          | Some w1, Some w2 -> Some (w1, w2)
          | _ -> None)
        | None -> None);
  }

(** Refinement check [R ⊑ S] (Definition 5.1), verified on a finite sample:
    for every sampled [S]-world and question pair related by [S°], there
    must exist an [R]-world relating them (found with [R]'s [fwd_query])
    such that [R•]-related answers are [S•]-related (checked over the
    sampled answer pairs). The executable counterpart of the paper's
    refinement judgment, used by property tests of the algebra. *)
let check_refinement ~(r : ('wr, 'q1, 'q2, 'r1, 'r2) t)
    ~(s : ('ws, 'q1, 'q2, 'r1, 'r2) t) ~(sample_queries : ('ws * 'q1 * 'q2) list)
    ~(sample_replies : 'r1 list * 'r2 list) : bool =
  let r1s, r2s = sample_replies in
  List.for_all
    (fun (ws, q1, q2) ->
      (not (s.chk_query ws q1 q2))
      ||
      match r.fwd_query q1 with
      | None -> false
      | Some (wr, _) ->
        List.for_all
          (fun r1 ->
            List.for_all
              (fun r2 -> (not (r.chk_reply wr r1 r2)) || s.chk_reply ws r1 r2)
              r2s)
          r1s)
    sample_queries
