(** Significant-lines-of-code measurement over this repository.

    The paper's evaluation (Tables 3 and 5) reports SLOC measured by
    [coqwc] over the Coq development; the analogous measurement here
    counts non-blank, non-comment lines of our OCaml sources, grouped by
    the same components. The benchmark harness uses it to regenerate the
    shape of both tables. *)

let is_blank line = String.trim line = ""

(* Count significant lines: a small OCaml-comment-aware scanner. Strings
   are not tracked (a "(*" inside a string literal is rare enough not to
   matter for a size metric). *)
let count_file (path : string) : int =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
    let depth = ref 0 in
    let sloc = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let n = String.length line in
         let significant = ref false in
         let i = ref 0 in
         while !i < n do
           if !i + 1 < n && line.[!i] = '(' && line.[!i + 1] = '*' then begin
             incr depth;
             i := !i + 2
           end
           else if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')' then begin
             if !depth > 0 then decr depth;
             i := !i + 2
           end
           else begin
             if !depth = 0 && line.[!i] <> ' ' && line.[!i] <> '\t' then
               significant := true;
             incr i
           end
         done;
         if !significant && not (is_blank line) then incr sloc
       done
     with End_of_file -> ());
    close_in ic;
    !sloc

let count_files paths = List.fold_left (fun acc p -> acc + count_file p) 0 paths

(** Find the repository root: the nearest ancestor containing
    [dune-project]. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let ml_files_in dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.map (Filename.concat dir)

let count_dir dir = count_files (ml_files_in dir)

(** Components of Table 5, mapped to this repository's layout. *)
let table5_components root =
  let lib sub = Filename.concat (Filename.concat root "lib") sub in
  [
    ("Semantic framework (§3)", [ lib "core" ]);
    ("Language interfaces and conventions (§4-5, App. C)", [ lib "iface" ]);
    ("Simulation convention algebra (§2.5, §5)", [ lib "convalg" ]);
    ("Memory model and CKLR substrate (§3.1, §4)", [ lib "memory" ]);
    ("Target description", [ lib "target" ]);
    ("Language semantics (frontend)", [ lib "cfrontend" ]);
    ("Language semantics (middle/backend)", [ lib "middle"; lib "backend" ]);
    ("Pass implementations (Table 3)", [ lib "passes" ]);
    ("Driver and harness", [ lib "driver"; lib "support"; lib "sloc" ]);
  ]

let measure_table5 () =
  match repo_root () with
  | None -> []
  | Some root ->
    List.map
      (fun (name, dirs) -> (name, List.fold_left (fun a d -> a + count_dir d) 0 dirs))
      (table5_components root)

(** Per-pass source files, for the SLOC column of Table 3. *)
let pass_file pass =
  let f =
    match pass with
    | "SimplLocals" -> "simpllocals.ml"
    | "Cshmgen" -> "cshmgen.ml"
    | "Cminorgen" -> "cminorgen.ml"
    | "Selection" -> "selection.ml"
    | "RTLgen" -> "rtlgen.ml"
    | "Tailcall" -> "tailcall.ml"
    | "Inlining" -> "inlining.ml"
    | "Renumber" -> "renumber.ml"
    | "Constprop" -> "constprop.ml"
    | "CSE" -> "cse.ml"
    | "Deadcode" -> "deadcode.ml"
    | "Allocation" -> "allocation.ml"
    | "Tunneling" -> "tunneling.ml"
    | "Linearize" -> "linearize.ml"
    | "CleanupLabels" -> "cleanuplabels.ml"
    | "Debugvar" -> "debugvar.ml"
    | "Stacking" -> "stacking.ml"
    | "Asmgen" -> "asmgen.ml"
    | _ -> ""
  in
  if f = "" then None else Some (Filename.concat "lib/passes" f)

let measure_pass pass =
  match (repo_root (), pass_file pass) with
  | Some root, Some rel -> count_file (Filename.concat root rel)
  | _ -> 0

let measure_total () =
  match repo_root () with
  | None -> 0
  | Some root ->
    let rec walk dir =
      match Sys.readdir dir with
      | exception Sys_error _ -> 0
      | entries ->
        Array.to_list entries
        |> List.fold_left
             (fun acc e ->
               let p = Filename.concat dir e in
               if Sys.is_directory p && e <> "_build" && e.[0] <> '.' then
                 acc + walk p
               else if Filename.check_suffix e ".ml" then acc + count_file p
               else acc)
             0
    in
    walk root
