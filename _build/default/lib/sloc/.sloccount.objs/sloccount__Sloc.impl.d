lib/sloc/sloc.ml: Array Filename List String Sys
