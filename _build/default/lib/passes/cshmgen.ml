(** Cshmgen: type-directed lowering of Clight to Csharpminor (CompCert's
    [Cshmgen]). Simulation convention: [id ↠ id] (Table 3) — the memory
    behavior is preserved exactly.

    The pass makes all implicit operations explicit: memory chunks for
    variable accesses, arithmetic promotions, pointer arithmetic scaling,
    and the [Sblock]/[Sexit] encoding of [break]/[continue]. *)

open Support
open Support.Errors
open Cfrontend
open Cfrontend.Ctypes
module C = Cfrontend.Csyntax
module Cs = Cfrontend.Csharpminor
open Cfrontend.Cmops

type env = {
  temps : Ident.Set.t;  (** register-like identifiers *)
  ret_ty : ty;
}

(** {1 Casts} *)

(* Explicit conversion from type [tf] to type [tt], mirroring
   [Cop.sem_cast]. *)
let make_cast (tf : ty) (tt : ty) (e : Cs.expr) : Cs.expr Errors.t =
  let u op e = Cs.Eunop (op, e) in
  match (tf, tt) with
  | _, Tvoid -> ok e
  | Tint _, Tint (I8, Signed) -> ok (u Ocast8signed e)
  | Tint _, Tint (I8, Unsigned) -> ok (u Ocast8unsigned e)
  | Tint _, Tint (I16, Signed) -> ok (u Ocast16signed e)
  | Tint _, Tint (I16, Unsigned) -> ok (u Ocast16unsigned e)
  | Tint _, Tint (I32, _) -> ok e
  | Tlong _, Tint (sz, sg) ->
    let e = u Ointoflong e in
    (match (sz, sg) with
    | I8, Signed -> ok (u Ocast8signed e)
    | I8, Unsigned -> ok (u Ocast8unsigned e)
    | I16, Signed -> ok (u Ocast16signed e)
    | I16, Unsigned -> ok (u Ocast16unsigned e)
    | I32, _ -> ok e)
  | Tfloat, Tint (sz, sg) ->
    let e = u Ointoffloat e in
    (match (sz, sg) with
    | I8, Signed -> ok (u Ocast8signed e)
    | I8, Unsigned -> ok (u Ocast8unsigned e)
    | I16, Signed -> ok (u Ocast16signed e)
    | I16, Unsigned -> ok (u Ocast16unsigned e)
    | I32, _ -> ok e)
  | Tsingle, Tint (sz, sg) ->
    let e = u Ointofsingle e in
    (match (sz, sg) with
    | I8, Signed -> ok (u Ocast8signed e)
    | I8, Unsigned -> ok (u Ocast8unsigned e)
    | I16, Signed -> ok (u Ocast16signed e)
    | I16, Unsigned -> ok (u Ocast16unsigned e)
    | I32, _ -> ok e)
  | Tint (_, Signed), Tlong _ -> ok (u Olongofint e)
  | Tint (_, Unsigned), Tlong _ -> ok (u Olongofintu e)
  | Tlong _, Tlong _ -> ok e
  | Tfloat, Tlong _ -> ok (u Olongoffloat e)
  | Tsingle, Tlong _ -> ok (u Olongoffloat (u Ofloatofsingle e))
  | Tint (_, Signed), Tfloat -> ok (u Ofloatofint e)
  | Tint (_, Unsigned), Tfloat ->
    ok (u Ofloatoflong (u Olongofintu e))
  | Tlong _, Tfloat -> ok (u Ofloatoflong e)
  | Tfloat, Tfloat -> ok e
  | Tsingle, Tfloat -> ok (u Ofloatofsingle e)
  | Tint (_, Signed), Tsingle -> ok (u Osingleofint e)
  | Tint (_, Unsigned), Tsingle ->
    ok (u Osingleoffloat (u Ofloatoflong (u Olongofintu e)))
  | Tlong _, Tsingle -> ok (u Osingleoffloat (u Ofloatoflong e))
  | Tfloat, Tsingle -> ok (u Osingleoffloat e)
  | Tsingle, Tsingle -> ok e
  | (Tpointer _ | Tarray _ | Tfunction _), (Tpointer _ | Tlong _) -> ok e
  | Tlong _, Tpointer _ -> ok e
  | Tint _, Tpointer _ ->
    (* Null-pointer constants only; materialize as 0L. The dynamic check
       of [sem_cast] is approximated by the zero extension. *)
    ok (u Olongofint e)
  | _ -> error "unsupported cast"

(** {1 Operators} *)

let classify = Cop.classify_arith

(* Convert operand [e : t] to the arithmetic class [cls]. *)
let conv_arith cls t e =
  match cls with
  | Cop.Cl_i _ -> make_cast t tint e
  | Cop.Cl_l g -> make_cast t (Tlong g) e
  | Cop.Cl_f -> make_cast t Tfloat e
  | Cop.Cl_s -> make_cast t Tsingle e
  | _ -> error "bad arithmetic classification"

let make_binarith ~i ~iu ~l ~lu ~f ~s t1 e1 t2 e2 =
  let cls = classify t1 t2 in
  let* e1' = conv_arith cls t1 e1 in
  let* e2' = conv_arith cls t2 e2 in
  let op =
    match cls with
    | Cop.Cl_i Signed -> Some i
    | Cop.Cl_i Unsigned -> Some iu
    | Cop.Cl_l Signed -> Some l
    | Cop.Cl_l Unsigned -> Some lu
    | Cop.Cl_f -> Some f
    | Cop.Cl_s -> Some s
    | _ -> None
  in
  match op with
  | Some op -> ok (Cs.Ebinop (op, e1', e2'))
  | None -> error "ill-typed arithmetic"

let longconst n = Cs.Econst (Cs.Olongconst n)

(* Index scaling for pointer arithmetic: [e * sizeof te] as a 64-bit
   value, where [e : t] is an integer expression. *)
let scaled_index te t e =
  let* e64 =
    match t with
    | Tint (_, Unsigned) -> ok (Cs.Eunop (Olongofintu, e))
    | Tint _ -> ok (Cs.Eunop (Olongofint, e))
    | Tlong _ -> ok e
    | _ -> error "pointer arithmetic with non-integer index"
  in
  ok (Cs.Ebinop (Omull, e64, longconst (Int64.of_int (sizeof te))))

let make_add t1 e1 t2 e2 =
  if Cop.is_pointer_ty t1 && not (Cop.is_pointer_ty t2) then
    let te = Option.get (Cop.pointee t1) in
    let* idx = scaled_index te t2 e2 in
    ok (Cs.Ebinop (Oaddl, e1, idx))
  else if Cop.is_pointer_ty t2 && not (Cop.is_pointer_ty t1) then
    let te = Option.get (Cop.pointee t2) in
    let* idx = scaled_index te t1 e1 in
    ok (Cs.Ebinop (Oaddl, e2, idx))
  else
    make_binarith ~i:Oadd ~iu:Oadd ~l:Oaddl ~lu:Oaddl ~f:Oaddf ~s:Oaddfs t1 e1
      t2 e2

let make_sub t1 e1 t2 e2 =
  if Cop.is_pointer_ty t1 && Cop.is_pointer_ty t2 then
    let te = Option.get (Cop.pointee t1) in
    ok
      (Cs.Ebinop
         ( Odivl,
           Cs.Ebinop (Osubl, e1, e2),
           longconst (Int64.of_int (sizeof te)) ))
  else if Cop.is_pointer_ty t1 then
    let te = Option.get (Cop.pointee t1) in
    let* idx = scaled_index te t2 e2 in
    ok (Cs.Ebinop (Osubl, e1, idx))
  else
    make_binarith ~i:Osub ~iu:Osub ~l:Osubl ~lu:Osubl ~f:Osubf ~s:Osubfs t1 e1
      t2 e2

(* Comparisons. Pointer comparisons are performed on 64-bit values. *)
let make_cmp c t1 e1 t2 e2 =
  if Cop.is_pointer_ty t1 || Cop.is_pointer_ty t2 then
    let norm t e =
      match t with
      | Tint (_, Unsigned) -> ok (Cs.Eunop (Olongofintu, e))
      | Tint _ -> ok (Cs.Eunop (Olongofint, e))
      | _ -> ok e
    in
    let* e1' = norm t1 e1 in
    let* e2' = norm t2 e2 in
    ok (Cs.Ebinop (Ocmplu c, e1', e2'))
  else
    make_binarith ~i:(Ocmp c) ~iu:(Ocmpu c) ~l:(Ocmpl c) ~lu:(Ocmplu c)
      ~f:(Ocmpf c) ~s:(Ocmpfs c) t1 e1 t2 e2

let make_binop op t1 e1 t2 e2 =
  match op with
  | Cop.Oadd -> make_add t1 e1 t2 e2
  | Cop.Osub -> make_sub t1 e1 t2 e2
  | Cop.Omul ->
    make_binarith ~i:Omul ~iu:Omul ~l:Omull ~lu:Omull ~f:Omulf ~s:Omulfs t1 e1 t2 e2
  | Cop.Odiv ->
    make_binarith ~i:Odiv ~iu:Odivu ~l:Odivl ~lu:Odivlu ~f:Odivf ~s:Odivfs t1 e1 t2 e2
  | Cop.Omod ->
    let err = error "floating-point modulo" in
    let cls = classify t1 t2 in
    (match cls with
    | Cop.Cl_f | Cop.Cl_s -> err
    | _ ->
      make_binarith ~i:Omod ~iu:Omodu ~l:Omodl ~lu:Omodlu ~f:Oaddf ~s:Oaddfs t1
        e1 t2 e2)
  | Cop.Oand ->
    make_binarith ~i:Oand ~iu:Oand ~l:Oandl ~lu:Oandl ~f:Oaddf ~s:Oaddfs t1 e1 t2 e2
  | Cop.Oor ->
    make_binarith ~i:Oor ~iu:Oor ~l:Oorl ~lu:Oorl ~f:Oaddf ~s:Oaddfs t1 e1 t2 e2
  | Cop.Oxor ->
    make_binarith ~i:Oxor ~iu:Oxor ~l:Oxorl ~lu:Oxorl ~f:Oaddf ~s:Oaddfs t1 e1 t2 e2
  | Cop.Oshl -> (
    (* Shifts: no usual conversions on the right operand; normalize the
       amount to a 32-bit integer. *)
    let amount t2 e2 =
      match t2 with
      | Tint _ -> ok e2
      | Tlong _ -> ok (Cs.Eunop (Ointoflong, e2))
      | _ -> error "bad shift amount"
    in
    let* e2' = amount t2 e2 in
    match classify t1 t1 with
    | Cop.Cl_i _ -> ok (Cs.Ebinop (Oshl, e1, e2'))
    | Cop.Cl_l _ -> ok (Cs.Ebinop (Oshll, e1, e2'))
    | _ -> error "bad shift")
  | Cop.Oshr -> (
    let amount t2 e2 =
      match t2 with
      | Tint _ -> ok e2
      | Tlong _ -> ok (Cs.Eunop (Ointoflong, e2))
      | _ -> error "bad shift amount"
    in
    let* e2' = amount t2 e2 in
    match classify t1 t1 with
    | Cop.Cl_i Signed -> ok (Cs.Ebinop (Oshr, e1, e2'))
    | Cop.Cl_i Unsigned -> ok (Cs.Ebinop (Oshru, e1, e2'))
    | Cop.Cl_l Signed -> ok (Cs.Ebinop (Oshrl, e1, e2'))
    | Cop.Cl_l Unsigned -> ok (Cs.Ebinop (Oshrlu, e1, e2'))
    | _ -> error "bad shift")
  | Cop.Oeq -> make_cmp Memory.Mtypes.Ceq t1 e1 t2 e2
  | Cop.One -> make_cmp Memory.Mtypes.Cne t1 e1 t2 e2
  | Cop.Olt -> make_cmp Memory.Mtypes.Clt t1 e1 t2 e2
  | Cop.Ogt -> make_cmp Memory.Mtypes.Cgt t1 e1 t2 e2
  | Cop.Ole -> make_cmp Memory.Mtypes.Cle t1 e1 t2 e2
  | Cop.Oge -> make_cmp Memory.Mtypes.Cge t1 e1 t2 e2

(* Truth-value tests for conditions: produce a 32-bit 0/1. *)
let make_boolean (t : ty) (e : Cs.expr) : Cs.expr Errors.t =
  match t with
  | Tint _ -> ok e
  | Tlong _ -> ok (Cs.Ebinop (Ocmpl Memory.Mtypes.Cne, e, longconst 0L))
  | Tfloat ->
    ok (Cs.Ebinop (Ocmpf Memory.Mtypes.Cne, e, Cs.Econst (Cs.Ofloatconst 0.0)))
  | Tsingle ->
    ok (Cs.Ebinop (Ocmpfs Memory.Mtypes.Cne, e, Cs.Econst (Cs.Osingleconst 0.0)))
  | Tpointer _ | Tarray _ | Tfunction _ ->
    ok (Cs.Ebinop (Ocmplu Memory.Mtypes.Cne, e, longconst 0L))
  | Tvoid -> error "void used as condition"

(** {1 Expressions} *)

let chunk_of_ty t =
  match access_mode t with
  | By_value chunk -> Some chunk
  | _ -> None

let rec transl_expr (env : env) (a : C.expr) : Cs.expr Errors.t =
  match a with
  | C.Econst_int (n, _) -> ok (Cs.Econst (Cs.Ointconst n))
  | C.Econst_long (n, _) -> ok (Cs.Econst (Cs.Olongconst n))
  | C.Econst_float (f, _) -> ok (Cs.Econst (Cs.Ofloatconst f))
  | C.Econst_single (f, _) -> ok (Cs.Econst (Cs.Osingleconst f))
  | C.Etempvar (id, _) -> ok (Cs.Evar id)
  | C.Esizeof (t, _) -> ok (longconst (Int64.of_int (sizeof t)))
  | C.Evar (id, t) when Ident.Set.mem id env.temps ->
    ignore t;
    ok (Cs.Evar id)
  | C.Evar (_, t) | C.Ederef (_, t) -> (
    let* addr = transl_lvalue env a in
    match access_mode t with
    | By_value chunk -> ok (Cs.Eload (chunk, addr))
    | By_reference -> ok addr
    | By_nothing -> error "bad dereference")
  | C.Eaddrof (a1, _) -> transl_lvalue env a1
  | C.Eunop (op, a1, _) -> (
    let t1 = C.typeof a1 in
    let* e1 = transl_expr env a1 in
    match op with
    | Cop.Onotbool ->
      let* b = make_boolean t1 e1 in
      ok (Cs.Ebinop (Ocmp Memory.Mtypes.Ceq, b, Cs.Econst (Cs.Ointconst 0l)))
    | Cop.Onotint -> (
      match classify t1 t1 with
      | Cop.Cl_i _ -> ok (Cs.Eunop (Onotint, e1))
      | Cop.Cl_l _ -> ok (Cs.Eunop (Onotl, e1))
      | _ -> error "~ on non-integer")
    | Cop.Oneg -> (
      match classify t1 t1 with
      | Cop.Cl_i _ -> ok (Cs.Eunop (Onegint, e1))
      | Cop.Cl_l _ -> ok (Cs.Eunop (Onegl, e1))
      | Cop.Cl_f -> ok (Cs.Eunop (Onegf, e1))
      | Cop.Cl_s -> ok (Cs.Eunop (Onegfs, e1))
      | _ -> error "- on non-arithmetic")
    | Cop.Oabsfloat ->
      let* e1' = make_cast t1 Tfloat e1 in
      ok (Cs.Eunop (Oabsf, e1')))
  | C.Ebinop (op, a1, a2, _) ->
    let* e1 = transl_expr env a1 in
    let* e2 = transl_expr env a2 in
    make_binop op (C.typeof a1) e1 (C.typeof a2) e2
  | C.Ecast (a1, t) ->
    let* e1 = transl_expr env a1 in
    make_cast (C.typeof a1) t e1

and transl_lvalue (env : env) (a : C.expr) : Cs.expr Errors.t =
  match a with
  | C.Evar (id, _) ->
    if Ident.Set.mem id env.temps then error "temporary used as l-value"
    else ok (Cs.Eaddrof id)
  | C.Ederef (a1, _) -> transl_expr env a1
  | _ -> error "expression is not an l-value"

let transl_exprlist env args tys =
  let rec go args tys =
    match (args, tys) with
    | [], [] -> ok []
    | a :: args', t :: tys' ->
      let* e = transl_expr env a in
      let* e' = make_cast (C.typeof a) t e in
      let* rest = go args' tys' in
      ok (e' :: rest)
    | _ -> error "wrong number of arguments"
  in
  go args tys

(** {1 Statements}

    [nbrk]/[ncnt]: number of blocks to exit for [break]/[continue]
    (CompCert's encoding). *)

let rec transl_stmt (env : env) (nbrk : int) (ncnt : int) (s : C.stmt) :
    Cs.stmt Errors.t =
  match s with
  | C.Sskip -> ok Cs.Sskip
  | C.Sassign (a1, a2) -> (
    let t1 = C.typeof a1 in
    let* addr = transl_lvalue env a1 in
    let* e2 = transl_expr env a2 in
    let* e2' = make_cast (C.typeof a2) t1 e2 in
    match chunk_of_ty t1 with
    | Some chunk -> ok (Cs.Sstore (chunk, addr, e2'))
    | None -> error "unsupported assignment")
  | C.Sset (id, a) ->
    let* e = transl_expr env a in
    ok (Cs.Sset (id, e))
  | C.Scall (optid, a, args) -> (
    match C.typeof a with
    | Tfunction (targs, tres) | Tpointer (Tfunction (targs, tres)) ->
      let* ef = transl_expr env a in
      let* eargs = transl_exprlist env args targs in
      ok (Cs.Scall (optid, signature_of_type targs tres, ef, eargs))
    | _ -> error "call of a non-function")
  | C.Ssequence (s1, s2) ->
    let* s1' = transl_stmt env nbrk ncnt s1 in
    let* s2' = transl_stmt env nbrk ncnt s2 in
    ok (Cs.Sseq (s1', s2'))
  | C.Sifthenelse (a, s1, s2) ->
    let* e = transl_expr env a in
    let* b = make_boolean (C.typeof a) e in
    let* s1' = transl_stmt env nbrk ncnt s1 in
    let* s2' = transl_stmt env nbrk ncnt s2 in
    ok (Cs.Sifthenelse (b, s1', s2'))
  | C.Sloop (s1, s2) ->
    let* s1' = transl_stmt env 1 0 s1 in
    let* s2' = transl_stmt env 0 1 s2 in
    ok (Cs.Sblock (Cs.Sloop (Cs.Sseq (Cs.Sblock s1', s2'))))
  | C.Sbreak -> ok (Cs.Sexit nbrk)
  | C.Scontinue -> ok (Cs.Sexit ncnt)
  | C.Sreturn None -> ok (Cs.Sreturn None)
  | C.Sreturn (Some a) ->
    let* e = transl_expr env a in
    let* e' = make_cast (C.typeof a) env.ret_ty e in
    ok (Cs.Sreturn (Some e'))

let transf_function (f : C.coq_function) : Cs.coq_function Errors.t =
  let temps =
    Ident.Set.of_list (List.map fst (f.C.fn_params @ f.C.fn_temps))
  in
  let env = { temps; ret_ty = f.C.fn_return } in
  let* body = transl_stmt env 0 0 f.C.fn_body in
  ok
    {
      Cs.fn_sig = C.fn_sig f;
      fn_params = List.map fst f.C.fn_params;
      fn_vars = List.map (fun (id, t) -> (id, sizeof t)) f.C.fn_vars;
      fn_temps = List.map fst f.C.fn_temps;
      fn_body = body;
    }

let transf_program (p : C.program) : Cs.program Errors.t =
  let open Errors in
  let* defs =
    map_list
      (fun (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal fn) ->
          let* fn' = transf_function fn in
          ok (id, Iface.Ast.Gfun (Iface.Ast.Internal fn'))
        | Iface.Ast.Gfun (Iface.Ast.External ef) ->
          ok (id, Iface.Ast.Gfun (Iface.Ast.External ef))
        | Iface.Ast.Gvar gv ->
          ok (id, Iface.Ast.Gvar { gv with Iface.Ast.gvar_info = () }))
      p.Iface.Ast.prog_defs
  in
  ok { Iface.Ast.prog_defs = defs; prog_main = p.Iface.Ast.prog_main }
