(** Asmgen: Mach to Asm (CompCert's [Asmgen]).

    Simulation convention: [ext · MA ↠ ext · MA] (Table 3): the stack
    pointer, return address and program counter become explicit registers
    ([MA], Appendix C.3).

    The frame-allocating behavior that the Mach semantics performs at
    call states becomes an explicit [Pallocframe] prologue; [Mreturn]
    becomes [Pfreeframe] followed by [Pret]. [Mgetparam] reads the back
    link through the scratch register. *)

open Memory.Mtypes
open Iface.Li
module Errors = Support.Errors
module M = Backend.Mach
module A = Backend.Asm
module Op = Middle.Op

let chunk_of_typ = function
  | Tint -> Memory.Memdata.Mint32
  | Tlong -> Memory.Memdata.Mint64
  | Tfloat -> Memory.Memdata.Mfloat64
  | Tsingle -> Memory.Memdata.Mfloat32
  | Tany64 -> Memory.Memdata.Many64

let preg r = Mreg r
let pregs rl = List.map preg rl

let transl_instr (fl : M.frame_layout) (i : M.instruction) : A.instruction list
    =
  match i with
  | M.Mgetstack (ofs, ty, dst) ->
    [ A.Pload (chunk_of_typ ty, Op.Ainstack ofs, [], preg dst) ]
  | M.Msetstack (src, ofs, ty) ->
    [ A.Pstore (chunk_of_typ ty, Op.Ainstack ofs, [], preg src) ]
  | M.Mgetparam (ofs, ty, dst) ->
    [
      (* Load the back link, then the caller's outgoing slot. *)
      A.Pload (Memory.Memdata.Mint64, Op.Ainstack fl.M.fl_ofs_link, [], SCR);
      A.Pload (chunk_of_typ ty, Op.Aindexed ofs, [ SCR ], preg dst);
    ]
  | M.Mop (op, args, res) -> [ A.Pop (op, pregs args, preg res) ]
  | M.Mload (chunk, addr, args, dst) ->
    [ A.Pload (chunk, addr, pregs args, preg dst) ]
  | M.Mstore (chunk, addr, args, src) ->
    [ A.Pstore (chunk, addr, pregs args, preg src) ]
  | M.Mcall (_, ros) ->
    [ A.Pcall (match ros with M.Rreg r -> A.Rreg (preg r) | M.Rsymbol s -> A.Rsymbol s) ]
  | M.Mtailcall (_, ros) ->
    [
      A.Pfreeframe (fl.M.fl_size, fl.M.fl_ofs_link, fl.M.fl_ofs_ra);
      A.Pjmp_tail
        (match ros with M.Rreg r -> A.Rreg (preg r) | M.Rsymbol s -> A.Rsymbol s);
    ]
  | M.Mlabel l -> [ A.Plabel l ]
  | M.Mgoto l -> [ A.Pjmp l ]
  | M.Mcond (c, args, l) -> [ A.Pjcc (c, pregs args, l) ]
  | M.Mreturn ->
    [ A.Pfreeframe (fl.M.fl_size, fl.M.fl_ofs_link, fl.M.fl_ofs_ra); A.Pret ]

let transf_function (f : M.coq_function) : A.coq_function Errors.t =
  let fl = f.M.fn_layout in
  let body = Array.to_list f.M.fn_code |> List.concat_map (transl_instr fl) in
  let code =
    A.Pallocframe (fl.M.fl_size, fl.M.fl_ofs_link, fl.M.fl_ofs_ra) :: body
  in
  Errors.ok { A.fn_sig = f.M.fn_sig; fn_code = Array.of_list code }

let transf_program (p : M.program) : A.program Errors.t =
  Iface.Ast.transform_program transf_function p
