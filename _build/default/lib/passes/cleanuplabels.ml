(** CleanupLabels: remove labels that no branch references (CompCert's
    [CleanupLabels]). Simulation convention: [id ↠ id]. *)

module Errors = Support.Errors
module Lin = Backend.Linear

let referenced_labels (code : Lin.code) =
  List.fold_left
    (fun acc i ->
      match i with
      | Lin.Lgoto l | Lin.Lcond (_, _, l) -> l :: acc
      | _ -> acc)
    [] code

let transf_function (f : Lin.coq_function) : Lin.coq_function Errors.t =
  let used = referenced_labels f.Lin.fn_code in
  let code =
    List.filter
      (function Lin.Llabel l -> List.mem l used | _ -> true)
      f.Lin.fn_code
  in
  Errors.ok { f with Lin.fn_code = code }

let transf_program (p : Lin.program) : Lin.program Errors.t =
  Iface.Ast.transform_program transf_function p
