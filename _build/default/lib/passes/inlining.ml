(** Function inlining (a restricted version of CompCert's [Inlining]).

    Simulation convention: [injp ↠ inj] (Table 3) — in full CompCert the
    inlined callee's stack block is merged into the caller's, which is
    what makes the pass injection-based. Our implementation restricts
    inlining to {e stackless leaf} functions (no stack data, no calls),
    so the block structure changes only by the disappearance of the
    callee's empty stack block; the convention assignment is preserved.

    Candidates: internal, small ([max_size] instructions), no stack data,
    no calls or tail calls, defined in the same translation unit. *)

open Support
open Support.Errors
module R = Middle.Rtl
module Op = Middle.Op

let max_size = 16

let is_inlinable (f : R.coq_function) : bool =
  f.R.fn_stacksize = 0
  && R.Regmap.cardinal f.R.fn_code <= max_size
  && R.Regmap.for_all
       (fun _ i ->
         match i with
         | R.Icall _ | R.Itailcall _ -> false
         | _ -> true)
       f.R.fn_code

(* Splice [callee]'s body into [st]'s code graph. Registers are shifted
   by [reg_base], nodes are remapped to fresh ones. Returns the entry
   node; [Ireturn]s become moves of the result into [res] followed by a
   jump to [cont]. *)
type splice_state = {
  mutable code : R.code;
  mutable next_node : int;
  mutable next_reg : int;
}

let splice (st : splice_state) (callee : R.coq_function) (args : R.reg list)
    (res : R.reg) (cont : R.node) : R.node =
  let reg_base = st.next_reg in
  st.next_reg <- st.next_reg + R.max_reg_function callee + 1;
  let shift_reg r = reg_base + r in
  let node_map = Hashtbl.create 16 in
  R.Regmap.iter
    (fun n _ ->
      Hashtbl.add node_map n st.next_node;
      st.next_node <- st.next_node + 1)
    callee.R.fn_code;
  let shift_node n = Hashtbl.find node_map n in
  let fresh_node () =
    let n = st.next_node in
    st.next_node <- n + 1;
    n
  in
  R.Regmap.iter
    (fun n i ->
      let i' =
        match i with
        | R.Inop n' -> R.Inop (shift_node n')
        | R.Iop (op, iargs, ires, n') ->
          R.Iop (op, List.map shift_reg iargs, shift_reg ires, shift_node n')
        | R.Iload (c, a, iargs, d, n') ->
          R.Iload (c, a, List.map shift_reg iargs, shift_reg d, shift_node n')
        | R.Istore (c, a, iargs, s, n') ->
          R.Istore (c, a, List.map shift_reg iargs, shift_reg s, shift_node n')
        | R.Icond (c, iargs, n1, n2) ->
          R.Icond (c, List.map shift_reg iargs, shift_node n1, shift_node n2)
        | R.Ireturn (Some r) ->
          R.Iop (Op.Omove, [ shift_reg r ], res, cont)
        | R.Ireturn None -> R.Inop cont
        | R.Icall _ | R.Itailcall _ -> assert false
      in
      st.code <- R.Regmap.add (shift_node n) i' st.code)
    callee.R.fn_code;
  (* Parameter binding: moves from the argument registers. *)
  let entry = shift_node callee.R.fn_entrypoint in
  let rec bind params args cont =
    match (params, args) with
    | [], [] -> cont
    | p :: params', a :: args' ->
      (* Evaluate the tail first: it mutates [st.code]. *)
      let cont' = bind params' args' cont in
      let n = fresh_node () in
      st.code <- R.Regmap.add n (R.Iop (Op.Omove, [ a ], shift_reg p, cont')) st.code;
      n
    | _ -> cont
  in
  (* Bind right-to-left so the first move executes first. *)
  bind callee.R.fn_params args entry

let transf_function (candidates : R.coq_function Ident.Map.t)
    (f : R.coq_function) : R.coq_function Errors.t =
  let st =
    {
      code = f.R.fn_code;
      next_node = R.max_node f + 1;
      next_reg = R.max_reg_function f + 1;
    }
  in
  R.Regmap.iter
    (fun n i ->
      match i with
      | R.Icall (sg, R.Rsymbol id, args, res, cont) -> (
        match Ident.Map.find_opt id candidates with
        | Some callee when Memory.Mtypes.signature_equal sg callee.R.fn_sig
                           && List.length args = List.length callee.R.fn_params ->
          let entry = splice st callee args res cont in
          st.code <- R.Regmap.add n (R.Inop entry) st.code
        | _ -> ())
      | _ -> ())
    f.R.fn_code;
  ok { f with R.fn_code = st.code }

let transf_program (p : R.program) : R.program Errors.t =
  let candidates =
    List.fold_left
      (fun acc (id, d) ->
        match d with
        | Iface.Ast.Gfun (Iface.Ast.Internal fn) when is_inlinable fn ->
          Ident.Map.add id fn acc
        | _ -> acc)
      Ident.Map.empty p.Iface.Ast.prog_defs
  in
  Iface.Ast.transform_program (transf_function candidates) p
