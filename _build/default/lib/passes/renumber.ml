(** Renumber: renumber CFG nodes densely in reachability order
    (CompCert's [Renumber]). Simulation convention: [id ↠ id]. *)

open Support.Errors
module Errors = Support.Errors
module R = Middle.Rtl

let transf_function (f : R.coq_function) : R.coq_function Errors.t =
  (* Depth-first enumeration from the entry point. *)
  let mapping = Hashtbl.create 64 in
  let next = ref 1 in
  let rec visit n =
    if not (Hashtbl.mem mapping n) then begin
      Hashtbl.add mapping n !next;
      incr next;
      match R.Regmap.find_opt n f.R.fn_code with
      | Some i -> List.iter visit (R.successors_instr i)
      | None -> ()
    end
  in
  visit f.R.fn_entrypoint;
  let renum n = Option.value (Hashtbl.find_opt mapping n) ~default:n in
  let renum_instr = function
    | R.Inop n -> R.Inop (renum n)
    | R.Iop (op, args, res, n) -> R.Iop (op, args, res, renum n)
    | R.Iload (c, a, args, d, n) -> R.Iload (c, a, args, d, renum n)
    | R.Istore (c, a, args, s, n) -> R.Istore (c, a, args, s, renum n)
    | R.Icall (sg, ros, args, res, n) -> R.Icall (sg, ros, args, res, renum n)
    | R.Itailcall _ as i -> i
    | R.Icond (c, args, n1, n2) -> R.Icond (c, args, renum n1, renum n2)
    | R.Ireturn _ as i -> i
  in
  let code =
    R.Regmap.fold
      (fun n i acc ->
        if Hashtbl.mem mapping n then
          R.Regmap.add (renum n) (renum_instr i) acc
        else acc (* unreachable node: dropped *))
      f.R.fn_code R.Regmap.empty
  in
  ok { f with R.fn_code = code; fn_entrypoint = renum f.R.fn_entrypoint }

let transf_program (p : R.program) : R.program Errors.t =
  Iface.Ast.transform_program transf_function p
