(** Dead-code elimination based on liveness (a neededness-lite version of
    CompCert's [Deadcode]).

    Simulation convention: [va·ext ↠ va·ext] (Table 3).

    Pure instructions whose destination is dead at the program point
    after them are turned into [Inop]. Loads are removed too (they are
    side-effect-free); stores, calls and control flow are kept. *)

open Support.Errors
module Errors = Support.Errors
module R = Middle.Rtl
module Op = Middle.Op
module RSet = Middle.Liveness.RSet

(* Operations that may be partial (division by zero) still go wrong when
   executed, so removing them when dead strictly increases definedness —
   which the [ext] direction of the convention allows. *)
let transf_instr (live_out : RSet.t) (i : R.instruction) : R.instruction =
  match i with
  | R.Iop (_, _, res, n) when not (RSet.mem res live_out) -> R.Inop n
  | R.Iload (_, _, _, dst, n) when not (RSet.mem dst live_out) -> R.Inop n
  | _ -> i

let transf_function (f : R.coq_function) : R.coq_function Errors.t =
  let live_out = Middle.Liveness.analyze_out f in
  ok
    {
      f with
      R.fn_code = R.Regmap.mapi (fun n i -> transf_instr (live_out n) i) f.R.fn_code;
    }

let transf_program (p : R.program) : R.program Errors.t =
  Iface.Ast.transform_program transf_function p
