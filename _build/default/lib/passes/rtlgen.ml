(** RTLgen: translate CminorSel's structured statements into an RTL
    control-flow graph (CompCert's [RTLgen]).

    Simulation convention: [ext ↠ ext] (Table 3).

    The translation is destination-driven and built back-to-front: each
    statement/expression is translated given the node to continue at, and
    returns its entry node. [Sexit n] jumps to the n-th enclosing exit
    node; loops go through a reserved node that is patched once the body
    entry is known. *)

open Support
open Support.Errors
module Sel = Middle.Cminorsel
module R = Middle.Rtl
module Op = Middle.Op

type state = {
  mutable code : R.code;
  mutable next_node : int;
  mutable next_reg : int;
}

let new_state () = { code = R.Regmap.empty; next_node = 1; next_reg = 1 }

let fresh_reg st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

let add_instr st i =
  let n = st.next_node in
  st.next_node <- n + 1;
  st.code <- R.Regmap.add n i st.code;
  n

let reserve_node st =
  let n = st.next_node in
  st.next_node <- n + 1;
  n

let patch_node st n i = st.code <- R.Regmap.add n i st.code

(* Variable environment: CminorSel locals to RTL registers. *)
type venv = R.reg Ident.Map.t

let var_reg (env : venv) id =
  match Ident.Map.find_opt id env with
  | Some r -> ok r
  | None -> error "unbound variable %s" (Ident.name id)

(** Translate expression [a] into register [dst], continuing at [nd];
    returns the entry node. *)
let rec transl_expr st (env : venv) (a : Sel.expr) (dst : R.reg) (nd : R.node) :
    R.node Errors.t =
  match a with
  | Sel.Evar id ->
    let* r = var_reg env id in
    ok (add_instr st (R.Iop (Op.Omove, [ r ], dst, nd)))
  | Sel.Eop (op, args) ->
    let regs = List.map (fun _ -> fresh_reg st) args in
    let n1 = add_instr st (R.Iop (op, regs, dst, nd)) in
    transl_exprlist st env args regs n1
  | Sel.Eload (chunk, addr, args) ->
    let regs = List.map (fun _ -> fresh_reg st) args in
    let n1 = add_instr st (R.Iload (chunk, addr, regs, dst, nd)) in
    transl_exprlist st env args regs n1

and transl_exprlist st env (al : Sel.expr list) (dsts : R.reg list) (nd : R.node)
    : R.node Errors.t =
  match (al, dsts) with
  | [], [] -> ok nd
  | a :: al', r :: dsts' ->
    let* n1 = transl_exprlist st env al' dsts' nd in
    transl_expr st env a r n1
  | _ -> error "transl_exprlist: arity mismatch"

let transl_condexpr st env (Sel.CEcond (cond, args)) (ntrue : R.node)
    (nfalse : R.node) : R.node Errors.t =
  let regs = List.map (fun _ -> fresh_reg st) args in
  let n1 = add_instr st (R.Icond (cond, regs, ntrue, nfalse)) in
  transl_exprlist st env args regs n1

(** Translate statement [s]; [nd] is the continuation node, [nexits] the
    stack of exit nodes for [Sexit], [nret] the return node (shared
    [Ireturn None]), [rret] the register for return values. *)
let rec transl_stmt st (env : venv) (s : Sel.stmt) (nd : R.node)
    (nexits : R.node list) (rret : R.reg) : R.node Errors.t =
  match s with
  | Sel.Sskip -> ok nd
  | Sel.Sassign (id, a) ->
    let* r = var_reg env id in
    transl_expr st env a r nd
  | Sel.Sstore (chunk, addr, args, a) ->
    let regs = List.map (fun _ -> fresh_reg st) args in
    let src = fresh_reg st in
    let n1 = add_instr st (R.Istore (chunk, addr, regs, src, nd)) in
    let* n2 = transl_expr st env a src n1 in
    transl_exprlist st env args regs n2
  | Sel.Scall (optid, sg, a, args) ->
    let* rres =
      match optid with
      | Some id -> var_reg env id
      | None -> ok (fresh_reg st)
    in
    let regs = List.map (fun _ -> fresh_reg st) args in
    (match a with
    | Sel.Eop (Op.Oaddrsymbol (id, 0), []) ->
      let n1 = add_instr st (R.Icall (sg, R.Rsymbol id, regs, rres, nd)) in
      transl_exprlist st env args regs n1
    | _ ->
      let rf = fresh_reg st in
      let n1 = add_instr st (R.Icall (sg, R.Rreg rf, regs, rres, nd)) in
      let* n2 = transl_exprlist st env args regs n1 in
      transl_expr st env a rf n2)
  | Sel.Stailcall (sg, a, args) ->
    let regs = List.map (fun _ -> fresh_reg st) args in
    (match a with
    | Sel.Eop (Op.Oaddrsymbol (id, 0), []) ->
      let n1 = add_instr st (R.Itailcall (sg, R.Rsymbol id, regs)) in
      transl_exprlist st env args regs n1
    | _ ->
      let rf = fresh_reg st in
      let n1 = add_instr st (R.Itailcall (sg, R.Rreg rf, regs)) in
      let* n2 = transl_exprlist st env args regs n1 in
      transl_expr st env a rf n2)
  | Sel.Sseq (s1, s2) ->
    let* n2 = transl_stmt st env s2 nd nexits rret in
    transl_stmt st env s1 n2 nexits rret
  | Sel.Sifthenelse (c, s1, s2) ->
    let* n1 = transl_stmt st env s1 nd nexits rret in
    let* n2 = transl_stmt st env s2 nd nexits rret in
    transl_condexpr st env c n1 n2
  | Sel.Sloop s1 ->
    let nloop = reserve_node st in
    let* nbody = transl_stmt st env s1 nloop nexits rret in
    patch_node st nloop (R.Inop nbody);
    ok nbody
  | Sel.Sblock s1 -> transl_stmt st env s1 nd (nd :: nexits) rret
  | Sel.Sexit n -> (
    match List.nth_opt nexits n with
    | Some nx -> ok nx
    | None -> error "Sexit out of range")
  | Sel.Sreturn None -> ok (add_instr st (R.Ireturn None))
  | Sel.Sreturn (Some a) ->
    let n1 = add_instr st (R.Ireturn (Some rret)) in
    transl_expr st env a rret n1

let transf_function (f : Sel.coq_function) : R.coq_function Errors.t =
  let st = new_state () in
  let env =
    List.fold_left
      (fun env id -> Ident.Map.add id (fresh_reg st) env)
      Ident.Map.empty (f.Sel.fn_params @ f.Sel.fn_vars)
  in
  let rret = fresh_reg st in
  (* Fall-through at the end of the body returns void. *)
  let nret = add_instr st (R.Ireturn None) in
  let* entry = transl_stmt st env f.Sel.fn_body nret [] rret in
  let params = List.map (fun id -> Ident.Map.find id env) f.Sel.fn_params in
  ok
    {
      R.fn_sig = f.Sel.fn_sig;
      fn_params = params;
      fn_stacksize = f.Sel.fn_stackspace;
      fn_code = st.code;
      fn_entrypoint = entry;
    }

let transf_program (p : Sel.program) : R.program Errors.t =
  Iface.Ast.transform_program transf_function p
