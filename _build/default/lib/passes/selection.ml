(** Selection: instruction selection from Cminor to CminorSel (CompCert's
    [Selection]).

    Simulation convention: [wt · ext ↠ wt · ext] (Table 3). Smart
    constructors recognize immediate operands, addressing modes, and
    condition operators; unmatched shapes fall through to the generic
    forms. The smart constructors here are a representative subset of
    CompCert's (immediates, symbol/stack addressing, comparisons). *)

open Support.Errors
open Cfrontend.Cmops
module Cm = Middle.Cminor
module Sel = Middle.Cminorsel
module Op = Middle.Op

(** {1 Smart constructors} *)

let intconst n = Sel.Eop (Op.Ointconst n, [])
let longconst n = Sel.Eop (Op.Olongconst n, [])

let as_intconst = function Sel.Eop (Op.Ointconst n, []) -> Some n | _ -> None
let as_longconst = function Sel.Eop (Op.Olongconst n, []) -> Some n | _ -> None

(* Binary operator with an immediate form on the right. *)
let binop_imm ~op ~imm_op e1 e2 ~as_const =
  match as_const e2 with
  | Some n -> Sel.Eop (imm_op n, [ e1 ])
  | None -> Sel.Eop (op, [ e1; e2 ])

let sel_add e1 e2 =
  match (as_intconst e1, as_intconst e2) with
  | Some n1, Some n2 -> intconst (Int32.add n1 n2)
  | Some n, None -> Sel.Eop (Op.Oaddimm n, [ e2 ])
  | None, Some n -> Sel.Eop (Op.Oaddimm n, [ e1 ])
  | None, None -> Sel.Eop (Op.Oadd, [ e1; e2 ])

let sel_addl e1 e2 =
  match (as_longconst e1, as_longconst e2) with
  | Some n1, Some n2 -> longconst (Int64.add n1 n2)
  | Some n, None -> Sel.Eop (Op.Oaddlimm n, [ e2 ])
  | None, Some n -> Sel.Eop (Op.Oaddlimm n, [ e1 ])
  | None, None -> (
    (* Fold address computations into lea forms. *)
    match e1 with
    | Sel.Eop (Op.Oaddlimm n, [ e1' ]) ->
      Sel.Eop (Op.Olea (Op.Aindexed2 (Int64.to_int n)), [ e1'; e2 ])
    | _ -> Sel.Eop (Op.Oaddl, [ e1; e2 ]))

let sel_mull e1 e2 =
  match (as_longconst e1, as_longconst e2) with
  | Some n1, Some n2 -> longconst (Int64.mul n1 n2)
  | Some n, None -> Sel.Eop (Op.Omullimm n, [ e2 ])
  | None, Some n -> Sel.Eop (Op.Omullimm n, [ e1 ])
  | None, None -> Sel.Eop (Op.Omull, [ e1; e2 ])

let shift_amount e2 =
  match as_intconst e2 with
  | Some n when Int32.unsigned_compare n 64l < 0 -> Some n
  | _ -> None

let sel_shift ~op ~imm_op e1 e2 =
  match shift_amount e2 with
  | Some n -> Sel.Eop (imm_op n, [ e1 ])
  | None -> Sel.Eop (op, [ e1; e2 ])

(* Comparisons become Ocmp operations with immediate recognition. *)
let sel_comparison (c : Op.condition) (args : Sel.expr list) : Sel.expr =
  match (c, args) with
  | Op.Ccomp cc, [ e1; e2 ] -> (
    match as_intconst e2 with
    | Some n -> Sel.Eop (Op.Ocmp (Op.Ccompimm (cc, n)), [ e1 ])
    | None -> Sel.Eop (Op.Ocmp c, args))
  | Op.Ccompu cc, [ e1; e2 ] -> (
    match as_intconst e2 with
    | Some n -> Sel.Eop (Op.Ocmp (Op.Ccompuimm (cc, n)), [ e1 ])
    | None -> Sel.Eop (Op.Ocmp c, args))
  | Op.Ccompl cc, [ e1; e2 ] -> (
    match as_longconst e2 with
    | Some n -> Sel.Eop (Op.Ocmp (Op.Ccomplimm (cc, n)), [ e1 ])
    | None -> Sel.Eop (Op.Ocmp c, args))
  | Op.Ccomplu cc, [ e1; e2 ] -> (
    match as_longconst e2 with
    | Some n -> Sel.Eop (Op.Ocmp (Op.Ccompluimm (cc, n)), [ e1 ])
    | None -> Sel.Eop (Op.Ocmp c, args))
  | _ -> Sel.Eop (Op.Ocmp c, args)

let sel_unop (op : unary_operation) (e : Sel.expr) : Sel.expr =
  let simple o = Sel.Eop (o, [ e ]) in
  match op with
  | Ocast8unsigned -> simple Op.Ocast8unsigned
  | Ocast8signed -> simple Op.Ocast8signed
  | Ocast16unsigned -> simple Op.Ocast16unsigned
  | Ocast16signed -> simple Op.Ocast16signed
  | Onegint -> (
    match as_intconst e with
    | Some n -> intconst (Int32.neg n)
    | None -> simple Op.Oneg)
  | Onotint -> simple Op.Onot
  | Onegl -> simple Op.Onegl
  | Onotl -> simple Op.Onotl
  | Onegf -> simple Op.Onegf
  | Oabsf -> simple Op.Oabsf
  | Onegfs -> simple Op.Onegfs
  | Osingleoffloat -> simple Op.Osingleoffloat
  | Ofloatofsingle -> simple Op.Ofloatofsingle
  | Ointoffloat -> simple Op.Ointoffloat
  | Ofloatofint -> simple Op.Ofloatofint
  | Ointofsingle -> simple Op.Ointofsingle
  | Osingleofint -> simple Op.Osingleofint
  | Olongoffloat -> simple Op.Olongoffloat
  | Ofloatoflong -> simple Op.Ofloatoflong
  | Olongofint -> (
    match as_intconst e with
    | Some n -> longconst (Int64.of_int32 n)
    | None -> simple Op.Olongofint)
  | Olongofintu -> simple Op.Olongofintu
  | Ointoflong -> (
    match as_longconst e with
    | Some n -> intconst (Int64.to_int32 n)
    | None -> simple Op.Ointoflong)

let sel_binop (op : binary_operation) (e1 : Sel.expr) (e2 : Sel.expr) : Sel.expr =
  let simple o = Sel.Eop (o, [ e1; e2 ]) in
  match op with
  | Oadd -> sel_add e1 e2
  | Osub -> simple Op.Osub
  | Omul -> binop_imm ~op:Op.Omul ~imm_op:(fun n -> Op.Omulimm n) e1 e2 ~as_const:as_intconst
  | Odiv -> simple Op.Odiv
  | Odivu -> simple Op.Odivu
  | Omod -> simple Op.Omod
  | Omodu -> simple Op.Omodu
  | Oand -> binop_imm ~op:Op.Oand ~imm_op:(fun n -> Op.Oandimm n) e1 e2 ~as_const:as_intconst
  | Oor -> binop_imm ~op:Op.Oor ~imm_op:(fun n -> Op.Oorimm n) e1 e2 ~as_const:as_intconst
  | Oxor -> binop_imm ~op:Op.Oxor ~imm_op:(fun n -> Op.Oxorimm n) e1 e2 ~as_const:as_intconst
  | Oshl -> sel_shift ~op:Op.Oshl ~imm_op:(fun n -> Op.Oshlimm n) e1 e2
  | Oshr -> sel_shift ~op:Op.Oshr ~imm_op:(fun n -> Op.Oshrimm n) e1 e2
  | Oshru -> sel_shift ~op:Op.Oshru ~imm_op:(fun n -> Op.Oshruimm n) e1 e2
  | Oaddl -> sel_addl e1 e2
  | Osubl -> simple Op.Osubl
  | Omull -> sel_mull e1 e2
  | Odivl -> simple Op.Odivl
  | Odivlu -> simple Op.Odivlu
  | Omodl -> simple Op.Omodl
  | Omodlu -> simple Op.Omodlu
  | Oandl -> binop_imm ~op:Op.Oandl ~imm_op:(fun n -> Op.Oandlimm n) e1 e2 ~as_const:as_longconst
  | Oorl -> binop_imm ~op:Op.Oorl ~imm_op:(fun n -> Op.Oorlimm n) e1 e2 ~as_const:as_longconst
  | Oxorl -> binop_imm ~op:Op.Oxorl ~imm_op:(fun n -> Op.Oxorlimm n) e1 e2 ~as_const:as_longconst
  | Oshll -> sel_shift ~op:Op.Oshll ~imm_op:(fun n -> Op.Oshllimm n) e1 e2
  | Oshrl -> sel_shift ~op:Op.Oshrl ~imm_op:(fun n -> Op.Oshrlimm n) e1 e2
  | Oshrlu -> sel_shift ~op:Op.Oshrlu ~imm_op:(fun n -> Op.Oshrluimm n) e1 e2
  | Oaddf -> simple Op.Oaddf
  | Osubf -> simple Op.Osubf
  | Omulf -> simple Op.Omulf
  | Odivf -> simple Op.Odivf
  | Oaddfs -> simple Op.Oaddfs
  | Osubfs -> simple Op.Osubfs
  | Omulfs -> simple Op.Omulfs
  | Odivfs -> simple Op.Odivfs
  | Ocmp c -> sel_comparison (Op.Ccomp c) [ e1; e2 ]
  | Ocmpu c -> sel_comparison (Op.Ccompu c) [ e1; e2 ]
  | Ocmpl c -> sel_comparison (Op.Ccompl c) [ e1; e2 ]
  | Ocmplu c -> sel_comparison (Op.Ccomplu c) [ e1; e2 ]
  | Ocmpf c -> Sel.Eop (Op.Ocmp (Op.Ccompf c), [ e1; e2 ])
  | Ocmpfs c -> Sel.Eop (Op.Ocmp (Op.Ccompfs c), [ e1; e2 ])

(** Addressing-mode selection for loads and stores. *)
let sel_addressing (e : Sel.expr) : Op.addressing * Sel.expr list =
  match e with
  | Sel.Eop (Op.Oaddrsymbol (id, ofs), []) -> (Op.Aglobal (id, ofs), [])
  | Sel.Eop (Op.Oaddrstack ofs, []) -> (Op.Ainstack ofs, [])
  | Sel.Eop (Op.Oaddlimm n, [ e1 ]) -> (Op.Aindexed (Int64.to_int n), [ e1 ])
  | Sel.Eop (Op.Oaddl, [ e1; e2 ]) -> (Op.Aindexed2 0, [ e1; e2 ])
  | Sel.Eop (Op.Olea (Op.Aindexed2 n), [ e1; e2 ]) -> (Op.Aindexed2 n, [ e1; e2 ])
  | _ -> (Op.Aindexed 0, [ e ])

(** Condition selection: strip the [Ocmp] of a boolean-valued expression. *)
let sel_condition (e : Sel.expr) : Sel.condexpr =
  match e with
  | Sel.Eop (Op.Ocmp c, args) -> Sel.CEcond (c, args)
  | _ -> Sel.CEcond (Op.Ccompimm (Memory.Mtypes.Cne, 0l), [ e ])

(** {1 Translation} *)

let rec sel_expr (a : Cm.expr) : Sel.expr =
  match a with
  | Cm.Evar id -> Sel.Evar id
  | Cm.Econst (Cm.Ointconst n) -> intconst n
  | Cm.Econst (Cm.Olongconst n) -> longconst n
  | Cm.Econst (Cm.Ofloatconst f) -> Sel.Eop (Op.Ofloatconst f, [])
  | Cm.Econst (Cm.Osingleconst f) -> Sel.Eop (Op.Osingleconst f, [])
  | Cm.Econst (Cm.Oaddrsymbol (id, ofs)) -> Sel.Eop (Op.Oaddrsymbol (id, ofs), [])
  | Cm.Econst (Cm.Oaddrstack ofs) -> Sel.Eop (Op.Oaddrstack ofs, [])
  | Cm.Eunop (op, a1) -> sel_unop op (sel_expr a1)
  | Cm.Ebinop (op, a1, a2) -> sel_binop op (sel_expr a1) (sel_expr a2)
  | Cm.Eload (chunk, a1) ->
    let addr, args = sel_addressing (sel_expr a1) in
    Sel.Eload (chunk, addr, args)

let rec sel_stmt (s : Cm.stmt) : Sel.stmt Support.Errors.t =
  match s with
  | Cm.Sskip -> ok Sel.Sskip
  | Cm.Sassign (id, a) -> ok (Sel.Sassign (id, sel_expr a))
  | Cm.Sstore (chunk, addr, a) ->
    let am, args = sel_addressing (sel_expr addr) in
    ok (Sel.Sstore (chunk, am, args, sel_expr a))
  | Cm.Scall (optid, sg, a, args) ->
    ok (Sel.Scall (optid, sg, sel_expr a, List.map sel_expr args))
  | Cm.Stailcall (sg, a, args) ->
    ok (Sel.Stailcall (sg, sel_expr a, List.map sel_expr args))
  | Cm.Sseq (s1, s2) ->
    let* s1' = sel_stmt s1 in
    let* s2' = sel_stmt s2 in
    ok (Sel.Sseq (s1', s2'))
  | Cm.Sifthenelse (a, s1, s2) ->
    let* s1' = sel_stmt s1 in
    let* s2' = sel_stmt s2 in
    ok (Sel.Sifthenelse (sel_condition (sel_expr a), s1', s2'))
  | Cm.Sloop s1 ->
    let* s1' = sel_stmt s1 in
    ok (Sel.Sloop s1')
  | Cm.Sblock s1 ->
    let* s1' = sel_stmt s1 in
    ok (Sel.Sblock s1')
  | Cm.Sexit n -> ok (Sel.Sexit n)
  | Cm.Sreturn None -> ok (Sel.Sreturn None)
  | Cm.Sreturn (Some a) -> ok (Sel.Sreturn (Some (sel_expr a)))

let transf_function (f : Cm.coq_function) : Sel.coq_function Support.Errors.t =
  let* body = sel_stmt f.Cm.fn_body in
  ok
    {
      Sel.fn_sig = f.Cm.fn_sig;
      fn_params = f.Cm.fn_params;
      fn_vars = f.Cm.fn_vars;
      fn_stackspace = f.Cm.fn_stackspace;
      fn_body = body;
    }

let transf_program (p : Cm.program) : Sel.program Support.Errors.t =
  Iface.Ast.transform_program transf_function p
