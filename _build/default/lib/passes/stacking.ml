(** Stacking: lay out activation records and concretize abstract stack
    slots (CompCert's [Stacking]).

    Simulation convention: [injp · LM ↠ LM · inj] (Table 3) — the
    frame regions introduced here (locals, callee-save area, link/RA)
    exist only in the target memory, and the [LM] component carves the
    in-memory argument region out of the source view (Appendix C.2).

    Frame layout (byte offsets from sp):
    {v
    0 .. 8*out-1        outgoing argument area
    8*out               back link (caller sp)
    8*out+8             return address
    ...                 callee-save area (one 8-byte slot per saved reg)
    ...                 Local slots
    ...                 source-level stack data (Cminor block)
    v} *)


open Target.Machregs
open Target.Locations
module Errors = Support.Errors
module Lin = Backend.Linear
module M = Backend.Mach
module Op = Middle.Op

(* Scan the code for the resources the frame must provide. *)
let measure (f : Lin.coq_function) =
  let outgoing = ref 0 in
  let max_local = ref (-1) in
  let saved = ref [] in
  let note_write r =
    if is_callee_save r && not (List.mem r !saved) then saved := r :: !saved
  in
  List.iter
    (fun i ->
      match i with
      | Lin.Lcall (sg, _) | Lin.Ltailcall (sg, _) ->
        outgoing := max !outgoing (Target.Conventions.size_arguments sg)
      | Lin.Lgetstack (Local, ofs, _, r) ->
        max_local := max !max_local ofs;
        note_write r
      | Lin.Lsetstack (_, Local, ofs, _) -> max_local := max !max_local ofs
      | Lin.Lgetstack (_, _, _, r) -> note_write r
      | Lin.Lop (_, _, r) | Lin.Lload (_, _, _, r) -> note_write r
      | _ -> ())
    f.Lin.fn_code;
  (!outgoing, !max_local + 1, List.rev !saved)

let make_layout (f : Lin.coq_function) : M.frame_layout =
  let outgoing, nlocals, saved = measure f in
  let ofs_link = 8 * outgoing in
  let ofs_ra = ofs_link + 8 in
  let ofs_saved = ofs_ra + 8 in
  let fl_saved = List.mapi (fun i r -> (r, ofs_saved + (8 * i))) saved in
  let fl_locals = ofs_saved + (8 * List.length saved) in
  let fl_stackdata = fl_locals + (8 * nlocals) in
  let fl_size = fl_stackdata + ((f.Lin.fn_stacksize + 7) / 8 * 8) in
  {
    M.fl_outgoing = outgoing;
    fl_ofs_link = ofs_link;
    fl_ofs_ra = ofs_ra;
    fl_saved;
    fl_locals;
    fl_stackdata;
    fl_size;
  }

(* Shift [Ainstack]/[Oaddrstack] offsets: the source stack data now lives
   at [fl_stackdata] within the frame. *)
let shift_addressing (fl : M.frame_layout) = function
  | Op.Ainstack ofs -> Op.Ainstack (fl.M.fl_stackdata + ofs)
  | a -> a

let shift_operation (fl : M.frame_layout) = function
  | Op.Oaddrstack ofs -> Op.Oaddrstack (fl.M.fl_stackdata + ofs)
  | Op.Olea a -> Op.Olea (shift_addressing fl a)
  | op -> op

let transl_instr (fl : M.frame_layout) (i : Lin.instruction) :
    M.instruction list Errors.t =
  let open Errors in
  match i with
  | Lin.Lgetstack (Local, ofs, ty, r) ->
    ok [ M.Mgetstack (fl.M.fl_locals + (8 * ofs), ty, r) ]
  | Lin.Lgetstack (Incoming, ofs, ty, r) -> ok [ M.Mgetparam (8 * ofs, ty, r) ]
  | Lin.Lgetstack (Outgoing, ofs, ty, r) -> ok [ M.Mgetstack (8 * ofs, ty, r) ]
  | Lin.Lsetstack (r, Local, ofs, ty) ->
    ok [ M.Msetstack (r, fl.M.fl_locals + (8 * ofs), ty) ]
  | Lin.Lsetstack (r, Outgoing, ofs, ty) -> ok [ M.Msetstack (r, 8 * ofs, ty) ]
  | Lin.Lsetstack (_, Incoming, _, _) ->
    error "Stacking: write to an Incoming slot"
  | Lin.Lop (op, args, res) -> ok [ M.Mop (shift_operation fl op, args, res) ]
  | Lin.Lload (chunk, addr, args, dst) ->
    ok [ M.Mload (chunk, shift_addressing fl addr, args, dst) ]
  | Lin.Lstore (chunk, addr, args, src) ->
    ok [ M.Mstore (chunk, shift_addressing fl addr, args, src) ]
  | Lin.Lcall (sg, ros) ->
    ok
      [ M.Mcall (sg, match ros with Lin.Rreg r -> M.Rreg r | Lin.Rsymbol s -> M.Rsymbol s) ]
  | Lin.Ltailcall (sg, ros) ->
    (* Restore callee-save registers before the tail jump. *)
    ok
      (List.map (fun (r, ofs) -> M.Mgetstack (ofs, Memory.Mtypes.Tany64, r)) fl.M.fl_saved
      @ [ M.Mtailcall (sg, match ros with Lin.Rreg r -> M.Rreg r | Lin.Rsymbol s -> M.Rsymbol s) ])
  | Lin.Llabel l -> ok [ M.Mlabel l ]
  | Lin.Lgoto l -> ok [ M.Mgoto l ]
  | Lin.Lcond (c, args, l) -> ok [ M.Mcond (c, args, l) ]
  | Lin.Lreturn ->
    ok
      (List.map (fun (r, ofs) -> M.Mgetstack (ofs, Memory.Mtypes.Tany64, r)) fl.M.fl_saved
      @ [ M.Mreturn ])

let transf_function (f : Lin.coq_function) : M.coq_function Errors.t =
  let open Errors in
  let fl = make_layout f in
  let* body = map_list (transl_instr fl) f.Lin.fn_code in
  (* Prologue: save the used callee-save registers. *)
  let prologue =
    List.map (fun (r, ofs) -> M.Msetstack (r, ofs, Memory.Mtypes.Tany64)) fl.M.fl_saved
  in
  ok
    {
      M.fn_sig = f.Lin.fn_sig;
      fn_code = Array.of_list (prologue @ List.concat body);
      fn_layout = fl;
    }

let transf_program (p : Lin.program) : M.program Errors.t =
  Iface.Ast.transform_program transf_function p
