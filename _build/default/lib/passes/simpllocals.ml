(** SimplLocals: pull non-addressed scalar local variables out of memory
    into temporaries (CompCert's [SimplLocals]).

    Simulation convention: [injp ↠ inj] (paper, Table 3) — the pass
    removes memory blocks, so the source has blocks with no target
    counterpart, and external calls must not disturb them (Example 4.4).

    After this pass, function parameters are bound as temporaries
    ([`Temp_params] entry); addressable parameters are copied into fresh
    memory variables at entry. *)

open Support
open Cfrontend.Ctypes
open Cfrontend.Csyntax

module ISet = Ident.Set

(* Identifiers whose address is taken somewhere in the function. *)
let rec addr_taken_expr (acc : ISet.t) (a : expr) : ISet.t =
  match a with
  | Eaddrof (Evar (id, _), _) -> ISet.add id acc
  | Eaddrof (a1, _) | Ederef (a1, _) | Eunop (_, a1, _) | Ecast (a1, _) ->
    addr_taken_expr acc a1
  | Ebinop (_, a1, a2, _) -> addr_taken_expr (addr_taken_expr acc a1) a2
  | Econst_int _ | Econst_long _ | Econst_float _ | Econst_single _ | Evar _
  | Etempvar _ | Esizeof _ ->
    acc

let rec addr_taken_stmt (acc : ISet.t) (s : stmt) : ISet.t =
  match s with
  | Sskip | Sbreak | Scontinue | Sreturn None -> acc
  | Sassign (a1, a2) -> addr_taken_expr (addr_taken_expr acc a1) a2
  | Sset (_, a) | Sreturn (Some a) -> addr_taken_expr acc a
  | Scall (_, a, args) ->
    List.fold_left addr_taken_expr (addr_taken_expr acc a) args
  | Ssequence (s1, s2) | Sloop (s1, s2) ->
    addr_taken_stmt (addr_taken_stmt acc s1) s2
  | Sifthenelse (a, s1, s2) ->
    addr_taken_stmt (addr_taken_stmt (addr_taken_expr acc a) s1) s2

(* A variable can be lifted when its address is never taken and it has a
   scalar (By_value) type. *)
let can_lift (addr : ISet.t) (id, t) =
  (not (ISet.mem id addr))
  && match access_mode t with By_value _ -> true | _ -> false

(* Rewrite variable accesses: lifted [Evar] become [Etempvar]. *)
let rec simpl_expr (lifted : ISet.t) (a : expr) : expr =
  match a with
  | Evar (id, t) when ISet.mem id lifted -> Etempvar (id, t)
  | Evar _ | Etempvar _ | Econst_int _ | Econst_long _ | Econst_float _
  | Econst_single _ | Esizeof _ ->
    a
  | Ederef (a1, t) -> Ederef (simpl_expr lifted a1, t)
  | Eaddrof (a1, t) -> Eaddrof (simpl_expr lifted a1, t)
  | Eunop (op, a1, t) -> Eunop (op, simpl_expr lifted a1, t)
  | Ebinop (op, a1, a2, t) ->
    Ebinop (op, simpl_expr lifted a1, simpl_expr lifted a2, t)
  | Ecast (a1, t) -> Ecast (simpl_expr lifted a1, t)

let rec simpl_stmt (lifted : ISet.t) (s : stmt) : stmt =
  match s with
  | Sskip | Sbreak | Scontinue | Sreturn None -> s
  | Sassign (Evar (id, t), a2) when ISet.mem id lifted ->
    (* Assignments to lifted variables become [Sset] with the implicit
       store normalization made explicit as a cast. *)
    Sset (id, Ecast (simpl_expr lifted a2, t))
  | Sassign (a1, a2) -> Sassign (simpl_expr lifted a1, simpl_expr lifted a2)
  | Sset (id, a) -> Sset (id, simpl_expr lifted a)
  | Scall (optid, a, args) ->
    Scall (optid, simpl_expr lifted a, List.map (simpl_expr lifted) args)
  | Ssequence (s1, s2) -> Ssequence (simpl_stmt lifted s1, simpl_stmt lifted s2)
  | Sifthenelse (a, s1, s2) ->
    Sifthenelse (simpl_expr lifted a, simpl_stmt lifted s1, simpl_stmt lifted s2)
  | Sloop (s1, s2) -> Sloop (simpl_stmt lifted s1, simpl_stmt lifted s2)
  | Sreturn (Some a) -> Sreturn (Some (simpl_expr lifted a))

let transf_function (f : coq_function) : coq_function Errors.t =
  let addr = addr_taken_stmt ISet.empty f.fn_body in
  (* Parameters: lifted ones stay parameters (now temporaries); the
     others are copied into memory variables at function entry. *)
  let lifted_params = List.filter (can_lift addr) f.fn_params in
  let unlifted_params =
    List.filter (fun p -> not (List.mem p lifted_params)) f.fn_params
  in
  let lifted_vars = List.filter (can_lift addr) f.fn_vars in
  let kept_vars = List.filter (fun v -> not (List.mem v lifted_vars)) f.fn_vars in
  let lifted =
    ISet.of_list (List.map fst (lifted_params @ lifted_vars))
  in
  (* For each unlifted parameter x, introduce a fresh temporary x' that
     receives the argument and is copied into x's memory block. *)
  let renamed =
    List.map (fun (id, t) -> (id, (Ident.fresh_named (Ident.name id), t)))
      unlifted_params
  in
  let params' =
    List.map
      (fun (id, t) ->
        match List.assoc_opt id renamed with
        | Some (id', _) -> (id', t)
        | None -> (id, t))
      f.fn_params
  in
  let copy_in =
    List.fold_right
      (fun (id, (id', t)) s ->
        Ssequence (Sassign (Evar (id, t), Etempvar (id', t)), s))
      renamed Sskip
  in
  let body = simpl_stmt lifted f.fn_body in
  Errors.ok
    {
      f with
      fn_params = params';
      fn_vars = unlifted_params @ kept_vars;
      (* Lifted parameters are not added to [fn_temps]: as parameters of
         the [`Temp_params] entry discipline they are bound directly. *)
      fn_temps = lifted_vars
                 @ List.map (fun (_, (id', t)) -> (id', t)) renamed
                 @ f.fn_temps;
      fn_body = Ssequence (copy_in, body);
    }

let transf_program (p : program) : program Errors.t =
  Iface.Ast.transform_program transf_function p
