lib/passes/cleanuplabels.ml: Backend Iface List Support
