lib/passes/selection.ml: Cfrontend Iface Int32 Int64 List Memory Middle Support
