lib/passes/inlining.ml: Errors Hashtbl Ident Iface List Memory Middle Support
