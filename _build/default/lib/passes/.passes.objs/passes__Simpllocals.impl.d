lib/passes/simpllocals.ml: Cfrontend Errors Ident Iface List Support
