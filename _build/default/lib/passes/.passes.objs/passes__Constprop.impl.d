lib/passes/constprop.ml: Iface List Memory Middle Support
