lib/passes/stacking.ml: Array Backend Iface List Memory Middle Support Target
