lib/passes/alloc_check.ml: Allocation Backend Format Iface List Memory Middle Option Printf Support Target
