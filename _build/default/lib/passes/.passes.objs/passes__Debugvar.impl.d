lib/passes/debugvar.ml: Backend Iface Support
