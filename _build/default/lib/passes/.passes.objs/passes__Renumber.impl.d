lib/passes/renumber.ml: Hashtbl Iface List Middle Option Support
