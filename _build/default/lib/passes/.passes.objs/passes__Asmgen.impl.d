lib/passes/asmgen.ml: Array Backend Iface List Memory Middle Support
