lib/passes/allocation.ml: Array Backend Errors Hashtbl Iface List Memory Middle Option Support Target
