lib/passes/linearize.ml: Backend Hashtbl Iface List Support
