lib/passes/cminorgen.ml: Cfrontend Errors Ident Iface List Middle Support
