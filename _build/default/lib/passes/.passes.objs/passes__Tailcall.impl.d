lib/passes/tailcall.ml: Iface Middle Support Target
