lib/passes/rtlgen.ml: Errors Ident Iface List Middle Support
