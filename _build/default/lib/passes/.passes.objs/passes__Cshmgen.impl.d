lib/passes/cshmgen.ml: Cfrontend Cop Errors Ident Iface Int64 List Memory Option Support
