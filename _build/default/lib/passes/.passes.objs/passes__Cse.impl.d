lib/passes/cse.ml: Hashtbl Iface List Map Marshal Middle Option String Support
