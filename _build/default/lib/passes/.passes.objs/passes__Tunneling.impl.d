lib/passes/tunneling.ml: Backend Hashtbl Iface List Support
