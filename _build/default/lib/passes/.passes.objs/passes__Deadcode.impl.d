lib/passes/deadcode.ml: Iface Middle Support
