(** Linearize: lay out the LTL control-flow graph as a list of Linear
    instructions (CompCert's [Linearize]). Simulation convention:
    [id ↠ id].

    Reachable nodes are enumerated depth-first; each node becomes a label
    followed by its instruction, with explicit [Lgoto]s where the chosen
    order does not fall through. *)

module Errors = Support.Errors
module L = Backend.Ltl
module Lin = Backend.Linear

let enumerate (f : L.coq_function) : int list =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      order := n :: !order;
      match L.Nodemap.find_opt n f.L.fn_code with
      | Some i -> List.iter dfs (L.successors_instr i)
      | None -> ()
    end
  in
  dfs f.L.fn_entrypoint;
  List.rev !order

let transf_function (f : L.coq_function) : Lin.coq_function Errors.t =
  let order = enumerate f in
  (* Labels are node numbers. *)
  let code = ref [] in
  let emit i = code := i :: !code in
  let rec fills = function
    | [] -> ()
    | n :: rest ->
      emit (Lin.Llabel n);
      (match L.Nodemap.find_opt n f.L.fn_code with
      | None -> ()
      | Some i -> (
        let goto_unless_next target =
          match rest with
          | next :: _ when next = target -> ()
          | _ -> emit (Lin.Lgoto target)
        in
        match i with
        | L.Lnop n' -> goto_unless_next n'
        | L.Lop (op, args, res, n') ->
          emit (Lin.Lop (op, args, res));
          goto_unless_next n'
        | L.Lload (c, a, args, d, n') ->
          emit (Lin.Lload (c, a, args, d));
          goto_unless_next n'
        | L.Lstore (c, a, args, s, n') ->
          emit (Lin.Lstore (c, a, args, s));
          goto_unless_next n'
        | L.Lgetstack (k, o, ty, d, n') ->
          emit (Lin.Lgetstack (k, o, ty, d));
          goto_unless_next n'
        | L.Lsetstack (s, k, o, ty, n') ->
          emit (Lin.Lsetstack (s, k, o, ty));
          goto_unless_next n'
        | L.Lcall (sg, ros, n') ->
          emit
            (Lin.Lcall
               ( sg,
                 match ros with
                 | L.Rreg r -> Lin.Rreg r
                 | L.Rsymbol id -> Lin.Rsymbol id ));
          goto_unless_next n'
        | L.Ltailcall (sg, ros) ->
          emit
            (Lin.Ltailcall
               ( sg,
                 match ros with
                 | L.Rreg r -> Lin.Rreg r
                 | L.Rsymbol id -> Lin.Rsymbol id ))
        | L.Lcond (c, args, n1, n2) ->
          (* Branch to n1, fall through (or goto) n2. *)
          emit (Lin.Lcond (c, args, n1));
          goto_unless_next n2
        | L.Lreturn -> emit Lin.Lreturn));
      fills rest
  in
  fills order;
  Errors.ok
    {
      Lin.fn_sig = f.L.fn_sig;
      fn_stacksize = f.L.fn_stacksize;
      fn_code = List.rev !code;
    }

let transf_program (p : L.program) : Lin.program Errors.t =
  Iface.Ast.transform_program transf_function p
