(** Constant propagation over the results of value analysis (CompCert's
    [Constprop]).

    Simulation convention: [va·ext ↠ va·ext] (Table 3): the correctness
    argument relies on the abstract states computed by [Valueanalysis]
    soundly approximating the concrete states, which at interaction
    boundaries is exactly the [va] invariant. *)

open Support.Errors
module Errors = Support.Errors
open Memory.Values
module R = Middle.Rtl
module Op = Middle.Op
module VA = Middle.Valueanalysis

let const_for (v : value) : Op.operation option =
  match v with
  | Vint n -> Some (Op.Ointconst n)
  | Vlong n -> Some (Op.Olongconst n)
  | Vfloat f -> Some (Op.Ofloatconst f)
  | Vsingle f -> Some (Op.Osingleconst f)
  | Vundef | Vptr _ -> None

let transf_instr (ae : VA.aenv) (i : R.instruction) : R.instruction =
  match i with
  | R.Iop (op, args, res, n) -> (
    let avals = List.map (fun r -> VA.aenv_get r ae) args in
    (* If the whole operation is statically known, emit the constant. *)
    match VA.abstract_op op avals with
    | VA.Const v -> (
      match const_for v with
      | Some cop -> R.Iop (cop, [], res, n)
      | None -> i)
    | _ -> (
      (* Otherwise strengthen operands: replace a known-constant second
         operand by the immediate form. *)
      match (op, args, avals) with
      | Op.Oadd, [ r1; _ ], [ _; VA.Const (Vint n2) ] ->
        R.Iop (Op.Oaddimm n2, [ r1 ], res, n)
      | Op.Oaddl, [ r1; _ ], [ _; VA.Const (Vlong n2) ] ->
        R.Iop (Op.Oaddlimm n2, [ r1 ], res, n)
      | Op.Omul, [ r1; _ ], [ _; VA.Const (Vint n2) ] ->
        R.Iop (Op.Omulimm n2, [ r1 ], res, n)
      | Op.Omull, [ r1; _ ], [ _; VA.Const (Vlong n2) ] ->
        R.Iop (Op.Omullimm n2, [ r1 ], res, n)
      | _ -> i))
  | R.Icond (cond, args, n1, n2) -> (
    let avals = List.map (fun r -> VA.aenv_get r ae) args in
    match VA.abstract_cond cond avals with
    | Some true -> R.Inop n1
    | Some false -> R.Inop n2
    | None -> i)
  | _ -> i

let transf_function (f : R.coq_function) : R.coq_function Errors.t =
  let analysis = VA.analyze f in
  ok
    {
      f with
      R.fn_code = R.Regmap.mapi (fun n i -> transf_instr (analysis n) i) f.R.fn_code;
    }

let transf_program (p : R.program) : R.program Errors.t =
  Iface.Ast.transform_program transf_function p
