(** Tailcall recognition (CompCert's [Tailcall]).

    Simulation convention: [ext ↠ ext] (Table 3).

    An [Icall] whose continuation immediately returns the call's result
    (possibly through [Inop]s) becomes [Itailcall], provided the function
    has no stack data (its stack block must be freeable before the call)
    and the callee's arguments all fit in registers (no outgoing stack
    area to preserve). *)

open Support.Errors
module Errors = Support.Errors
module R = Middle.Rtl

(* Does control starting at [n] do nothing but return [r]? Follows
   [Inop]s and moves of [r], as CompCert's [is_return] does. *)
let rec return_measures_to (code : R.code) (n : R.node) (r : R.reg) fuel =
  if fuel = 0 then false
  else
    match R.Regmap.find_opt n code with
    | Some (R.Inop n') -> return_measures_to code n' r (fuel - 1)
    | Some (R.Iop (Middle.Op.Omove, [ src ], dst, n')) when src = r ->
      return_measures_to code n' dst (fuel - 1)
    | Some (R.Ireturn (Some r')) -> r = r'
    | _ -> false

let transf_instr (stacksize : int) (code : R.code) (i : R.instruction) :
    R.instruction =
  match i with
  | R.Icall (sg, ros, args, res, n)
    when stacksize = 0
         && Target.Conventions.size_arguments sg = 0
         && return_measures_to code n res 10 ->
    R.Itailcall (sg, ros, args)
  | _ -> i

let transf_function (f : R.coq_function) : R.coq_function Errors.t =
  ok
    {
      f with
      R.fn_code =
        R.Regmap.map (transf_instr f.R.fn_stacksize f.R.fn_code) f.R.fn_code;
    }

let transf_program (p : R.program) : R.program Errors.t =
  Iface.Ast.transform_program transf_function p
