(** Cminorgen: collapse the per-variable memory blocks of Csharpminor into
    a single stack block per function (CompCert's [Cminorgen]).

    Simulation convention: [injp ↠ inj] (Table 3) — the n source blocks
    of a function are injected at offsets into the single target block. *)

open Support
open Support.Errors
module Cs = Cfrontend.Csharpminor
module Cm = Middle.Cminor

(* Assign 8-byte-aligned offsets to the local variables. *)
let layout_vars (vars : (Ident.t * int) list) : int Ident.Map.t * int =
  List.fold_left
    (fun (env, ofs) (id, sz) ->
      let ofs = (ofs + 7) / 8 * 8 in
      (Ident.Map.add id ofs env, ofs + max sz 1))
    (Ident.Map.empty, 0) vars

let rec transl_expr (cenv : int Ident.Map.t) (a : Cs.expr) : Cm.expr Errors.t =
  match a with
  | Cs.Evar id -> ok (Cm.Evar id)
  | Cs.Eaddrof id -> (
    match Ident.Map.find_opt id cenv with
    | Some ofs -> ok (Cm.Econst (Cm.Oaddrstack ofs))
    | None -> ok (Cm.Econst (Cm.Oaddrsymbol (id, 0))))
  | Cs.Econst (Cs.Ointconst n) -> ok (Cm.Econst (Cm.Ointconst n))
  | Cs.Econst (Cs.Olongconst n) -> ok (Cm.Econst (Cm.Olongconst n))
  | Cs.Econst (Cs.Ofloatconst f) -> ok (Cm.Econst (Cm.Ofloatconst f))
  | Cs.Econst (Cs.Osingleconst f) -> ok (Cm.Econst (Cm.Osingleconst f))
  | Cs.Eunop (op, a1) ->
    let* e1 = transl_expr cenv a1 in
    ok (Cm.Eunop (op, e1))
  | Cs.Ebinop (op, a1, a2) ->
    let* e1 = transl_expr cenv a1 in
    let* e2 = transl_expr cenv a2 in
    ok (Cm.Ebinop (op, e1, e2))
  | Cs.Eload (chunk, a1) ->
    let* e1 = transl_expr cenv a1 in
    ok (Cm.Eload (chunk, e1))

let rec transl_stmt (cenv : int Ident.Map.t) (s : Cs.stmt) : Cm.stmt Errors.t =
  match s with
  | Cs.Sskip -> ok Cm.Sskip
  | Cs.Sset (id, a) ->
    let* e = transl_expr cenv a in
    ok (Cm.Sassign (id, e))
  | Cs.Sstore (chunk, addr, a) ->
    let* eaddr = transl_expr cenv addr in
    let* e = transl_expr cenv a in
    ok (Cm.Sstore (chunk, eaddr, e))
  | Cs.Scall (optid, sg, a, args) ->
    let* ef = transl_expr cenv a in
    let* eargs = map_list (transl_expr cenv) args in
    ok (Cm.Scall (optid, sg, ef, eargs))
  | Cs.Sseq (s1, s2) ->
    let* s1' = transl_stmt cenv s1 in
    let* s2' = transl_stmt cenv s2 in
    ok (Cm.Sseq (s1', s2'))
  | Cs.Sifthenelse (a, s1, s2) ->
    let* e = transl_expr cenv a in
    let* s1' = transl_stmt cenv s1 in
    let* s2' = transl_stmt cenv s2 in
    ok (Cm.Sifthenelse (e, s1', s2'))
  | Cs.Sloop s1 ->
    let* s1' = transl_stmt cenv s1 in
    ok (Cm.Sloop s1')
  | Cs.Sblock s1 ->
    let* s1' = transl_stmt cenv s1 in
    ok (Cm.Sblock s1')
  | Cs.Sexit n -> ok (Cm.Sexit n)
  | Cs.Sreturn None -> ok (Cm.Sreturn None)
  | Cs.Sreturn (Some a) ->
    let* e = transl_expr cenv a in
    ok (Cm.Sreturn (Some e))

let transf_function (f : Cs.coq_function) : Cm.coq_function Errors.t =
  let cenv, size = layout_vars f.Cs.fn_vars in
  let* body = transl_stmt cenv f.Cs.fn_body in
  ok
    {
      Cm.fn_sig = f.Cs.fn_sig;
      fn_params = f.Cs.fn_params;
      fn_vars = f.Cs.fn_temps;
      fn_stackspace = (size + 7) / 8 * 8;
      fn_body = body;
    }

let transf_program (p : Cs.program) : Cm.program Errors.t =
  Iface.Ast.transform_program transf_function p
