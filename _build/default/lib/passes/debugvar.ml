(** Debugvar: propagate debug annotations for location tracking
    (CompCert's [Debugvar]). Simulation convention: [id ↠ id] (Table 3).

    Our Linear has no debug annotations (the frontend does not generate
    [Lannot]-style instructions), so the pass is the identity on code; it
    exists so that the pipeline and the convention algebra match the
    paper's Table 3 row for row. *)

module Errors = Support.Errors
module Lin = Backend.Linear

let transf_function (f : Lin.coq_function) : Lin.coq_function Errors.t =
  Errors.ok f

let transf_program (p : Lin.program) : Lin.program Errors.t =
  Iface.Ast.transform_program transf_function p
