(** Branch tunneling: short-circuit chains of [Lnop]s (CompCert's
    [Tunneling], union-find based). Simulation convention: [ext ↠ ext]. *)

module Errors = Support.Errors
module L = Backend.Ltl

(* Union-find over nodes: the representative of [n] is the final target
   of the [Lnop] chain starting at [n]. Cycles of [Lnop]s (infinite
   loops) keep their entry as representative. *)
let compute_targets (code : L.code) : int -> int =
  let target = Hashtbl.create 64 in
  let rec chase path n =
    match Hashtbl.find_opt target n with
    | Some t -> t
    | None ->
      if List.mem n path then n
      else (
        match L.Nodemap.find_opt n code with
        | Some (L.Lnop n') ->
          let t = chase (n :: path) n' in
          Hashtbl.replace target n t;
          t
        | _ ->
          Hashtbl.replace target n n;
          n)
  in
  fun n -> chase [] n

let transf_function (f : L.coq_function) : L.coq_function Errors.t =
  let t = compute_targets f.L.fn_code in
  let tr = function
    | L.Lnop n -> L.Lnop (t n)
    | L.Lop (op, args, res, n) -> L.Lop (op, args, res, t n)
    | L.Lload (c, a, args, d, n) -> L.Lload (c, a, args, d, t n)
    | L.Lstore (c, a, args, s, n) -> L.Lstore (c, a, args, s, t n)
    | L.Lgetstack (k, o, ty, d, n) -> L.Lgetstack (k, o, ty, d, t n)
    | L.Lsetstack (s, k, o, ty, n) -> L.Lsetstack (s, k, o, ty, t n)
    | L.Lcall (sg, ros, n) -> L.Lcall (sg, ros, t n)
    | L.Ltailcall _ as i -> i
    | L.Lcond (c, args, n1, n2) -> L.Lcond (c, args, t n1, t n2)
    | L.Lreturn -> L.Lreturn
  in
  Errors.ok
    {
      f with
      L.fn_code = L.Nodemap.map tr f.L.fn_code;
      fn_entrypoint = t f.L.fn_entrypoint;
    }

let transf_program (p : L.program) : L.program Errors.t =
  Iface.Ast.transform_program transf_function p
