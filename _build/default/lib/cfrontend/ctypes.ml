(** C type expressions (CompCert's [Ctypes], restricted).

    Supported: void; integer types of 8/16/32 bits (signed/unsigned) and
    64-bit [long]; [double] and [float]; pointers; arrays; function types.
    Structs, unions and varargs are out of scope (documented in
    DESIGN.md). *)

open Memory.Memdata
module MT = Memory.Mtypes

type intsize = I8 | I16 | I32
type signedness = Signed | Unsigned

type ty =
  | Tvoid
  | Tint of intsize * signedness
  | Tlong of signedness
  | Tfloat  (** double *)
  | Tsingle  (** float *)
  | Tpointer of ty
  | Tarray of ty * int
  | Tfunction of ty list * ty

let tint = Tint (I32, Signed)
let tuint = Tint (I32, Unsigned)
let tchar = Tint (I8, Signed)
let tuchar = Tint (I8, Unsigned)
let tshort = Tint (I16, Signed)
let tushort = Tint (I16, Unsigned)
let tlong = Tlong Signed
let tulong = Tlong Unsigned
let tdouble = Tfloat
let tfloat = Tsingle
let tptr t = Tpointer t

let rec sizeof = function
  | Tvoid -> 1
  | Tint (I8, _) -> 1
  | Tint (I16, _) -> 2
  | Tint (I32, _) -> 4
  | Tlong _ -> 8
  | Tfloat -> 8
  | Tsingle -> 4
  | Tpointer _ -> 8
  | Tarray (t, n) -> sizeof t * max n 0
  | Tfunction _ -> 1

let rec alignof = function
  | Tvoid -> 1
  | Tint (I8, _) -> 1
  | Tint (I16, _) -> 2
  | Tint (I32, _) -> 4
  | Tlong _ -> 8
  | Tfloat -> 8
  | Tsingle -> 4
  | Tpointer _ -> 8
  | Tarray (t, _) -> alignof t
  | Tfunction _ -> 1

(** How an object of a given type is accessed. *)
type mode =
  | By_value of chunk  (** load/store with this chunk *)
  | By_reference  (** the l-value itself is the value (arrays, functions) *)
  | By_nothing

let access_mode = function
  | Tint (I8, Signed) -> By_value Mint8signed
  | Tint (I8, Unsigned) -> By_value Mint8unsigned
  | Tint (I16, Signed) -> By_value Mint16signed
  | Tint (I16, Unsigned) -> By_value Mint16unsigned
  | Tint (I32, _) -> By_value Mint32
  | Tlong _ -> By_value Mint64
  | Tfloat -> By_value Mfloat64
  | Tsingle -> By_value Mfloat32
  | Tpointer _ -> By_value Mint64
  | Tarray _ | Tfunction _ -> By_reference
  | Tvoid -> By_nothing

(** The machine-level type carrying values of a C type. *)
let typ_of_type = function
  | Tint _ -> MT.Tint
  | Tlong _ | Tpointer _ | Tarray _ | Tfunction _ -> MT.Tlong
  | Tfloat -> MT.Tfloat
  | Tsingle -> MT.Tsingle
  | Tvoid -> MT.Tint

let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tfloat, Tfloat | Tsingle, Tsingle -> true
  | Tint (s1, g1), Tint (s2, g2) -> s1 = s2 && g1 = g2
  | Tlong g1, Tlong g2 -> g1 = g2
  | Tpointer t1, Tpointer t2 -> ty_equal t1 t2
  | Tarray (t1, n1), Tarray (t2, n2) -> ty_equal t1 t2 && n1 = n2
  | Tfunction (a1, r1), Tfunction (a2, r2) ->
    List.length a1 = List.length a2
    && List.for_all2 ty_equal a1 a2 && ty_equal r1 r2
  | _ -> false

(** Signature of a function type, at the machine level. *)
let signature_of_type args res =
  {
    MT.sig_args = List.map typ_of_type args;
    MT.sig_res = (match res with Tvoid -> None | t -> Some (typ_of_type t));
  }

let rec pp_ty fmt = function
  | Tvoid -> Format.pp_print_string fmt "void"
  | Tint (I8, Signed) -> Format.pp_print_string fmt "char"
  | Tint (I8, Unsigned) -> Format.pp_print_string fmt "unsigned char"
  | Tint (I16, Signed) -> Format.pp_print_string fmt "short"
  | Tint (I16, Unsigned) -> Format.pp_print_string fmt "unsigned short"
  | Tint (I32, Signed) -> Format.pp_print_string fmt "int"
  | Tint (I32, Unsigned) -> Format.pp_print_string fmt "unsigned int"
  | Tlong Signed -> Format.pp_print_string fmt "long"
  | Tlong Unsigned -> Format.pp_print_string fmt "unsigned long"
  | Tfloat -> Format.pp_print_string fmt "double"
  | Tsingle -> Format.pp_print_string fmt "float"
  | Tpointer t -> Format.fprintf fmt "%a*" pp_ty t
  | Tarray (t, n) -> Format.fprintf fmt "%a[%d]" pp_ty t n
  | Tfunction (args, res) ->
    Format.fprintf fmt "%a(*)(%a)" pp_ty res
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_ty)
      args
