(** Type-directed semantics of C operators (CompCert's [Cop]).

    Casts, arithmetic with the usual conversions, pointer arithmetic, and
    comparisons — all defined over runtime values classified by their C
    types. Partial operations return [None] (undefined behavior). *)

open Memory
open Memory.Values
open Memory.Mtypes
open Ctypes

type unary_operation = Onotbool | Onotint | Oneg | Oabsfloat

type binary_operation =
  | Oadd | Osub | Omul | Odiv | Omod
  | Oand | Oor | Oxor | Oshl | Oshr
  | Oeq | One | Olt | Ogt | Ole | Oge

let pp_unop fmt op =
  Format.pp_print_string fmt
    (match op with Onotbool -> "!" | Onotint -> "~" | Oneg -> "-" | Oabsfloat -> "__abs")

let pp_binop fmt op =
  Format.pp_print_string fmt
    (match op with
    | Oadd -> "+" | Osub -> "-" | Omul -> "*" | Odiv -> "/" | Omod -> "%"
    | Oand -> "&" | Oor -> "|" | Oxor -> "^" | Oshl -> "<<" | Oshr -> ">>"
    | Oeq -> "==" | One -> "!=" | Olt -> "<" | Ogt -> ">" | Ole -> "<=" | Oge -> ">=")

(** {1 Classification of arithmetic} *)

type classification =
  | Cl_i of signedness  (** 32-bit integer computation *)
  | Cl_l of signedness  (** 64-bit integer computation *)
  | Cl_f  (** double *)
  | Cl_s  (** single *)
  | Cl_ptr of ty  (** pointer *)
  | Cl_default

let classify_arith t1 t2 =
  match (t1, t2) with
  | Tfloat, _ | _, Tfloat -> Cl_f
  | Tsingle, _ | _, Tsingle -> Cl_s
  | Tlong g1, Tlong g2 ->
    Cl_l (if g1 = Unsigned || g2 = Unsigned then Unsigned else Signed)
  | Tlong g, Tint _ | Tint _, Tlong g -> Cl_l g
  | Tint (_, g1), Tint (_, g2) ->
    (* After promotion, both are 32-bit; unsigned wins only at I32. *)
    let u1 = (match t1 with Tint (I32, Unsigned) -> true | _ -> false) in
    let u2 = (match t2 with Tint (I32, Unsigned) -> true | _ -> false) in
    ignore g1; ignore g2;
    Cl_i (if u1 || u2 then Unsigned else Signed)
  | _ -> Cl_default

(** {1 Casts} *)

let cast_int_int sz sg v =
  match sz with
  | I8 -> (match sg with Signed -> sign_ext 8 v | Unsigned -> zero_ext 8 v)
  | I16 -> (match sg with Signed -> sign_ext 16 v | Unsigned -> zero_ext 16 v)
  | I32 -> v

(** [sem_cast v t_from t_to]: the value of [(t_to) v] where [v : t_from]. *)
let sem_cast (v : value) (tfrom : ty) (tto : ty) : value option =
  match (tfrom, tto) with
  | (Tint _ | Tlong _ | Tfloat | Tsingle | Tpointer _ | Tarray _ | Tfunction _), Tvoid
    ->
    Some v
  | Tint _, Tint (sz, sg) -> (
    match v with Vint _ -> Some (cast_int_int sz sg v) | _ -> None)
  | Tlong _, Tint (sz, sg) -> (
    match v with Vlong _ -> Some (cast_int_int sz sg (intoflong v)) | _ -> None)
  | Tfloat, Tint (sz, sg) -> (
    match intoffloat v with
    | Some v' -> Some (cast_int_int sz sg v')
    | None -> None)
  | Tsingle, Tint (sz, sg) -> (
    match intofsingle v with
    | Some v' -> Some (cast_int_int sz sg v')
    | None -> None)
  | Tint (_, sg), Tlong _ -> (
    match v with
    | Vint _ -> Some (if sg = Unsigned then longofintu v else longofint v)
    | _ -> None)
  | Tlong _, Tlong _ -> ( match v with Vlong _ -> Some v | _ -> None)
  | Tfloat, Tlong _ -> longoffloat v
  | Tsingle, Tlong _ -> ( match v with Vsingle f -> longoffloat (Vfloat f) | _ -> None)
  | Tint (_, sg), Tfloat -> (
    match v with
    | Vint n ->
      Some
        (if sg = Unsigned then Vfloat (Int64.to_float (Int64.logand (Int64.of_int32 n) 0xFFFFFFFFL))
         else floatofint v)
    | _ -> None)
  | Tlong _, Tfloat -> ( match v with Vlong _ -> Some (floatoflong v) | _ -> None)
  | Tfloat, Tfloat -> ( match v with Vfloat _ -> Some v | _ -> None)
  | Tsingle, Tfloat -> ( match v with Vsingle _ -> Some (floatofsingle v) | _ -> None)
  | Tint (_, sg), Tsingle -> (
    match v with
    | Vint n ->
      Some
        (if sg = Unsigned then
           Vsingle (to_single (Int64.to_float (Int64.logand (Int64.of_int32 n) 0xFFFFFFFFL)))
         else singleofint v)
    | _ -> None)
  | Tlong _, Tsingle -> (
    match v with Vlong n -> Some (Vsingle (to_single (Int64.to_float n))) | _ -> None)
  | Tfloat, Tsingle -> ( match v with Vfloat _ -> Some (singleoffloat v) | _ -> None)
  | Tsingle, Tsingle -> ( match v with Vsingle _ -> Some v | _ -> None)
  | (Tpointer _ | Tarray _ | Tfunction _), (Tpointer _) -> (
    match v with Vptr _ | Vlong _ -> Some v | _ -> None)
  | Tlong _, Tpointer _ -> ( match v with Vlong _ -> Some v | _ -> None)
  | Tint _, Tpointer _ -> (
    (* Integer-to-pointer casts: only constant 0 (null). *)
    match v with Vint 0l -> Some (Vlong 0L) | _ -> None)
  | (Tpointer _ | Tarray _ | Tfunction _), Tlong _ -> (
    match v with Vptr _ | Vlong _ -> Some v | _ -> None)
  | _ -> None

(** {1 Truth values} *)

let bool_val (v : value) (t : ty) (m : Mem.t) : bool option =
  match (t, v) with
  | Tint _, Vint n -> Some (n <> 0l)
  | Tlong _, Vlong n -> Some (n <> 0L)
  | Tfloat, Vfloat f -> Some (f <> 0.0)
  | Tsingle, Vsingle f -> Some (f <> 0.0)
  | (Tpointer _ | Tarray _ | Tfunction _), Vlong n -> Some (n <> 0L)
  | (Tpointer _ | Tarray _ | Tfunction _), Vptr (b, o) ->
    if Mem.weak_valid_pointer m b o then Some true else None
  | _ -> None

(** {1 Unary operators} *)

let sem_notbool v t m =
  match bool_val v t m with Some b -> Some (of_bool (not b)) | None -> None

let sem_notint v t =
  match (classify_arith t t, v) with
  | Cl_i _, Vint _ -> Some (notint v)
  | Cl_l _, Vlong _ -> Some (notl v)
  | _ -> None

let sem_neg v t =
  match (classify_arith t t, v) with
  | Cl_i _, Vint _ -> Some (neg v)
  | Cl_l _, Vlong _ -> Some (negl v)
  | Cl_f, Vfloat _ -> Some (negf v)
  | Cl_s, Vsingle _ -> Some (negfs v)
  | _ -> None

let sem_absfloat v t =
  match (classify_arith t t, v) with
  | Cl_f, Vfloat _ -> Some (absf v)
  | Cl_i _, Vint n -> Some (Vfloat (Float.abs (Int32.to_float n)))
  | _ -> None

let sem_unop op v t m =
  match op with
  | Onotbool -> sem_notbool v t m
  | Onotint -> sem_notint v t
  | Oneg -> sem_neg v t
  | Oabsfloat -> sem_absfloat v t

(** {1 Binary operators} *)

(* Promote both operands to the common arithmetic type. *)
let arith_conv cls v t =
  match cls with
  | Cl_i _ -> sem_cast v t tint
  | Cl_l g -> sem_cast v t (Tlong g)
  | Cl_f -> sem_cast v t Tfloat
  | Cl_s -> sem_cast v t Tsingle
  | _ -> None

let sem_binarith ~int_op ~long_op ~float_op ~single_op v1 t1 v2 t2 =
  let cls = classify_arith t1 t2 in
  match (arith_conv cls v1 t1, arith_conv cls v2 t2) with
  | Some v1', Some v2' -> (
    match cls with
    | Cl_i g -> int_op g v1' v2'
    | Cl_l g -> long_op g v1' v2'
    | Cl_f -> float_op v1' v2'
    | Cl_s -> single_op v1' v2'
    | _ -> None)
  | _ -> None

let is_pointer_ty = function Tpointer _ | Tarray _ -> true | _ -> false

let pointee = function
  | Tpointer t -> Some t
  | Tarray (t, _) -> Some t
  | _ -> None

let ptr_add t v1 v2 =
  (* v1 : pointer to t, v2 : integer index *)
  match pointee t with
  | None -> None
  | Some te -> (
    let sz = Int64.of_int (sizeof te) in
    match v2 with
    | Vint n -> Some (addl v1 (Vlong (Int64.mul sz (Int64.of_int32 n))))
    | Vlong n -> Some (addl v1 (Vlong (Int64.mul sz n)))
    | _ -> None)

let sem_add v1 t1 v2 t2 =
  if is_pointer_ty t1 && not (is_pointer_ty t2) then ptr_add t1 v1 v2
  else if is_pointer_ty t2 && not (is_pointer_ty t1) then ptr_add t2 v2 v1
  else
    sem_binarith
      ~int_op:(fun _ a b -> Some (add a b))
      ~long_op:(fun _ a b -> Some (addl a b))
      ~float_op:(fun a b -> Some (addf a b))
      ~single_op:(fun a b -> Some (addfs a b))
      v1 t1 v2 t2

let sem_sub v1 t1 v2 t2 =
  if is_pointer_ty t1 && not (is_pointer_ty t2) then (
    match v2 with
    | Vint n -> ptr_add t1 v1 (Vint (Int32.neg n))
    | Vlong n -> ptr_add t1 v1 (Vlong (Int64.neg n))
    | _ -> None)
  else if is_pointer_ty t1 && is_pointer_ty t2 then (
    (* Pointer difference, scaled by element size. *)
    match (pointee t1, subl v1 v2) with
    | Some te, Vlong d ->
      let sz = Int64.of_int (sizeof te) in
      if sz = 0L || Int64.rem d sz <> 0L then None
      else Some (Vlong (Int64.div d sz))
    | _ -> None)
  else
    sem_binarith
      ~int_op:(fun _ a b -> Some (sub a b))
      ~long_op:(fun _ a b -> Some (subl a b))
      ~float_op:(fun a b -> Some (subf a b))
      ~single_op:(fun a b -> Some (subfs a b))
      v1 t1 v2 t2

let sem_mul v1 t1 v2 t2 =
  sem_binarith
    ~int_op:(fun _ a b -> Some (mul a b))
    ~long_op:(fun _ a b -> Some (mull a b))
    ~float_op:(fun a b -> Some (mulf a b))
    ~single_op:(fun a b -> Some (mulfs a b))
    v1 t1 v2 t2

let sem_div v1 t1 v2 t2 =
  sem_binarith
    ~int_op:(fun g a b -> if g = Unsigned then divu a b else divs a b)
    ~long_op:(fun g a b -> if g = Unsigned then divlu a b else divls a b)
    ~float_op:(fun a b -> Some (divf a b))
    ~single_op:(fun a b -> Some (divfs a b))
    v1 t1 v2 t2

let sem_mod v1 t1 v2 t2 =
  sem_binarith
    ~int_op:(fun g a b -> if g = Unsigned then modu a b else mods a b)
    ~long_op:(fun g a b -> if g = Unsigned then modlu a b else modls a b)
    ~float_op:(fun _ _ -> None)
    ~single_op:(fun _ _ -> None)
    v1 t1 v2 t2

let sem_bitwise op v1 t1 v2 t2 =
  let i32 f = fun (_ : signedness) a b -> Some (f a b) in
  let i64 f = fun (_ : signedness) a b -> Some (f a b) in
  let none _ _ = None in
  match op with
  | `And -> sem_binarith ~int_op:(i32 and_) ~long_op:(i64 andl) ~float_op:none ~single_op:none v1 t1 v2 t2
  | `Or -> sem_binarith ~int_op:(i32 or_) ~long_op:(i64 orl) ~float_op:none ~single_op:none v1 t1 v2 t2
  | `Xor -> sem_binarith ~int_op:(i32 xor) ~long_op:(i64 xorl) ~float_op:none ~single_op:none v1 t1 v2 t2

(* Shifts do not apply the usual conversions to the right operand. *)
let sem_shift ~int_op ~long_op v1 t1 v2 t2 =
  let amount =
    match v2 with
    | Vint n -> Some n
    | Vlong n -> Some (Int64.to_int32 n)
    | _ -> None
  in
  match (classify_arith t1 t1, v1, amount, t2) with
  | Cl_i g, Vint _, Some n, (Tint _ | Tlong _) ->
    if Int32.unsigned_compare n 32l < 0 then int_op g v1 (Vint n) else None
  | Cl_l g, Vlong _, Some n, (Tint _ | Tlong _) ->
    if Int32.unsigned_compare n 64l < 0 then long_op g v1 (Vint n) else None
  | _ -> None

let sem_shl v1 t1 v2 t2 =
  sem_shift
    ~int_op:(fun _ a n -> Some (shl a n))
    ~long_op:(fun _ a n -> Some (shll a n))
    v1 t1 v2 t2

let sem_shr v1 t1 v2 t2 =
  sem_shift
    ~int_op:(fun g a n -> Some (if g = Unsigned then shru a n else shr a n))
    ~long_op:(fun g a n -> Some (if g = Unsigned then shrlu a n else shrl a n))
    v1 t1 v2 t2

let sem_cmp c v1 t1 v2 t2 m =
  let valid b o = Mem.weak_valid_pointer m b o in
  if is_pointer_ty t1 || is_pointer_ty t2 then
    (* Pointer comparison at 64 bits. *)
    let norm v t =
      match (v, t) with
      | Vint n, Tint (_, Unsigned) -> Some (Vlong (Int64.logand (Int64.of_int32 n) 0xFFFFFFFFL))
      | Vint n, Tint (_, Signed) -> Some (Vlong (Int64.of_int32 n))
      | (Vlong _ | Vptr _), _ -> Some v
      | _ -> None
    in
    match (norm v1 t1, norm v2 t2) with
    | Some v1', Some v2' -> (
      match cmplu_bool ~valid c v1' v2' with
      | Some b -> Some (of_bool b)
      | None -> None)
    | _ -> None
  else
    sem_binarith
      ~int_op:(fun g a b ->
        let r = if g = Unsigned then cmpu_bool c a b else cmp_bool c a b in
        Option.map of_bool r)
      ~long_op:(fun g a b ->
        let r =
          if g = Unsigned then cmplu_bool ~valid c a b else cmpl_bool c a b
        in
        Option.map of_bool r)
      ~float_op:(fun a b -> Option.map of_bool (cmpf_bool c a b))
      ~single_op:(fun a b -> Option.map of_bool (cmpfs_bool c a b))
      v1 t1 v2 t2

let sem_binop op v1 t1 v2 t2 (m : Mem.t) : value option =
  match op with
  | Oadd -> sem_add v1 t1 v2 t2
  | Osub -> sem_sub v1 t1 v2 t2
  | Omul -> sem_mul v1 t1 v2 t2
  | Odiv -> sem_div v1 t1 v2 t2
  | Omod -> sem_mod v1 t1 v2 t2
  | Oand -> sem_bitwise `And v1 t1 v2 t2
  | Oor -> sem_bitwise `Or v1 t1 v2 t2
  | Oxor -> sem_bitwise `Xor v1 t1 v2 t2
  | Oshl -> sem_shl v1 t1 v2 t2
  | Oshr -> sem_shr v1 t1 v2 t2
  | Oeq -> sem_cmp Ceq v1 t1 v2 t2 m
  | One -> sem_cmp Cne v1 t1 v2 t2 m
  | Olt -> sem_cmp Clt v1 t1 v2 t2 m
  | Ogt -> sem_cmp Cgt v1 t1 v2 t2 m
  | Ole -> sem_cmp Cle v1 t1 v2 t2 m
  | Oge -> sem_cmp Cge v1 t1 v2 t2 m

(** The C type resulting from a binary operation (used by elaboration). *)
let type_binop op t1 t2 =
  match op with
  | Oeq | One | Olt | Ogt | Ole | Oge -> tint
  | Oadd when is_pointer_ty t1 -> Tpointer (Option.get (pointee t1))
  | Oadd when is_pointer_ty t2 -> Tpointer (Option.get (pointee t2))
  | Osub when is_pointer_ty t1 && is_pointer_ty t2 -> tlong
  | Osub when is_pointer_ty t1 -> Tpointer (Option.get (pointee t1))
  | Oshl | Oshr -> (
    match classify_arith t1 t1 with
    | Cl_l g -> Tlong g
    | Cl_i Unsigned -> tuint
    | _ -> tint)
  | _ -> (
    match classify_arith t1 t2 with
    | Cl_i Signed -> tint
    | Cl_i Unsigned -> tuint
    | Cl_l Signed -> tlong
    | Cl_l Unsigned -> tulong
    | Cl_f -> Tfloat
    | Cl_s -> Tsingle
    | _ -> tint)
