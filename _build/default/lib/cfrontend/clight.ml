(** Open small-step semantics of Clight: an LTS for [C ↠ C]
    (paper §3.2: "the semantics of the source language Clight has type
    C ↠ C").

    States follow CompCert: regular states (function, statement,
    continuation, environments, memory), call states and return states.
    A call state whose function value is not defined by this translation
    unit is an {e external state}: it surfaces as an outgoing question of
    the [C] interface, and the environment's answer resumes execution.

    The semantics is parameterized by the function-entry discipline:
    [`Mem_params] allocates parameters in memory (Clight before
    [SimplLocals]); [`Temp_params] binds them as temporaries (after). *)

open Support
open Memory
open Memory.Values
open Iface
open Iface.Li
open Ctypes
open Csyntax

type env = (block * ty) Ident.Map.t
type temp_env = value Ident.Map.t

type cont =
  | Kstop
  | Kseq of stmt * cont
  | Kloop1 of stmt * stmt * cont  (** in the body of [Sloop] *)
  | Kloop2 of stmt * stmt * cont  (** in the continue-statement of [Sloop] *)
  | Kcall of Ident.t option * coq_function * env * temp_env * cont

type state =
  | State of coq_function * stmt * cont * env * temp_env * Mem.t
  | Callstate of value * Mtypes.signature * value list * cont * Mem.t
  | Returnstate of value * cont * Mem.t

type genv = (coq_function, ty) Genv.t

(* Strip local continuations up to the enclosing call. *)
let rec call_cont = function
  | Kseq (_, k) | Kloop1 (_, _, k) | Kloop2 (_, _, k) -> call_cont k
  | (Kstop | Kcall _) as k -> k

(** {1 Expression evaluation} *)

let deref_loc (t : ty) (m : Mem.t) (b : block) (ofs : int) : value option =
  match access_mode t with
  | By_value chunk -> Mem.load chunk m b ofs
  | By_reference -> Some (Vptr (b, ofs))
  | By_nothing -> None

let assign_loc (t : ty) (m : Mem.t) (b : block) (ofs : int) (v : value) :
    Mem.t option =
  match access_mode t with
  | By_value chunk -> Mem.store chunk m b ofs v
  | By_reference | By_nothing -> None

let rec eval_expr (ge : genv) (e : env) (le : temp_env) (m : Mem.t) (a : expr) :
    value option =
  match a with
  | Econst_int (n, _) -> Some (Vint n)
  | Econst_long (n, _) -> Some (Vlong n)
  | Econst_float (f, _) -> Some (Vfloat f)
  | Econst_single (f, _) -> Some (Vsingle f)
  | Etempvar (id, _) -> Ident.Map.find_opt id le
  | Eaddrof (a1, _) -> (
    match eval_lvalue ge e le m a1 with
    | Some (b, ofs) -> Some (Vptr (b, ofs))
    | None -> None)
  | Eunop (op, a1, _) -> (
    match eval_expr ge e le m a1 with
    | Some v1 -> Cop.sem_unop op v1 (typeof a1) m
    | None -> None)
  | Ebinop (op, a1, a2, _) -> (
    match (eval_expr ge e le m a1, eval_expr ge e le m a2) with
    | Some v1, Some v2 -> Cop.sem_binop op v1 (typeof a1) v2 (typeof a2) m
    | _ -> None)
  | Ecast (a1, t) -> (
    match eval_expr ge e le m a1 with
    | Some v1 -> Cop.sem_cast v1 (typeof a1) t
    | None -> None)
  | Esizeof (t, _) -> Some (Vlong (Int64.of_int (sizeof t)))
  | Evar _ | Ederef _ -> (
    (* An l-value read. *)
    match eval_lvalue ge e le m a with
    | Some (b, ofs) -> deref_loc (typeof a) m b ofs
    | None -> None)

and eval_lvalue ge e le m (a : expr) : (block * int) option =
  match a with
  | Evar (id, _) -> (
    match Ident.Map.find_opt id e with
    | Some (b, _) -> Some (b, 0)
    | None -> (
      match Genv.find_symbol ge id with Some b -> Some (b, 0) | None -> None))
  | Ederef (a1, _) -> (
    match eval_expr ge e le m a1 with
    | Some (Vptr (b, ofs)) -> Some (b, ofs)
    | _ -> None)
  | _ -> None

let eval_exprlist ge e le m al tys =
  let rec go al tys =
    match (al, tys) with
    | [], [] -> Some []
    | a :: al', t :: tys' -> (
      match eval_expr ge e le m a with
      | Some v -> (
        match Cop.sem_cast v (typeof a) t with
        | Some v' -> (
          match go al' tys' with Some vs -> Some (v' :: vs) | None -> None)
        | None -> None)
      | None -> None)
    | _ -> None
  in
  go al tys

(** {1 Function entry and exit} *)

let alloc_variables m (vars : (Ident.t * ty) list) : env * Mem.t =
  List.fold_left
    (fun (e, m) (id, t) ->
      let m, b = Mem.alloc m 0 (sizeof t) in
      (Ident.Map.add id (b, t) e, m))
    (Ident.Map.empty, m) vars

let bind_parameters ge (e : env) m (params : (Ident.t * ty) list) (args : value list) :
    Mem.t option =
  ignore ge;
  let rec go m params args =
    match (params, args) with
    | [], [] -> Some m
    | (id, t) :: params', v :: args' -> (
      match Ident.Map.find_opt id e with
      | Some (b, _) -> (
        match assign_loc t m b 0 v with
        | Some m' -> go m' params' args'
        | None -> None)
      | None -> None)
    | _ -> None
  in
  go m params args

let blocks_of_env (e : env) =
  Ident.Map.fold (fun _ (b, t) acc -> (b, 0, sizeof t) :: acc) e []

type entry_mode = [ `Mem_params | `Temp_params ]

let function_entry (mode : entry_mode) ge (f : coq_function) (args : value list)
    (m : Mem.t) : (env * temp_env * Mem.t) option =
  match mode with
  | `Mem_params -> (
    let e, m1 = alloc_variables m (f.fn_params @ f.fn_vars) in
    match bind_parameters ge e m1 f.fn_params args with
    | Some m2 ->
      let le =
        List.fold_left
          (fun le (id, _) -> Ident.Map.add id Vundef le)
          Ident.Map.empty f.fn_temps
      in
      Some (e, le, m2)
    | None -> None)
  | `Temp_params ->
    if List.length f.fn_params <> List.length args then None
    else
      let e, m1 = alloc_variables m f.fn_vars in
      let le =
        List.fold_left
          (fun le (id, _) -> Ident.Map.add id Vundef le)
          Ident.Map.empty f.fn_temps
      in
      let le =
        List.fold_left2
          (fun le (id, _) v -> Ident.Map.add id v le)
          le f.fn_params args
      in
      Some (e, le, m1)

(** {1 Transition relation} *)

let step (mode : entry_mode) (ge : genv) (s : state) : (Core.Events.trace * state) list
    =
  let ret s' = [ (Core.Events.e0, s') ] in
  match s with
  | State (f, stmt, k, e, le, m) -> (
    match stmt with
    | Sskip -> (
      match k with
      | Kseq (s2, k') -> ret (State (f, s2, k', e, le, m))
      | Kloop1 (s1, s2, k') -> ret (State (f, s2, Kloop2 (s1, s2, k'), e, le, m))
      | Kloop2 (s1, s2, k') -> ret (State (f, Sloop (s1, s2), k', e, le, m))
      | Kcall _ | Kstop -> (
        (* Fall through the end of the function body: return void. *)
        match f.fn_return with
        | Tvoid -> (
          match Mem.free_list m (blocks_of_env e) with
          | Some m' -> ret (Returnstate (Vundef, k, m'))
          | None -> [])
        | _ -> []))
    | Sassign (a1, a2) -> (
      match eval_lvalue ge e le m a1 with
      | Some (b, ofs) -> (
        match eval_expr ge e le m a2 with
        | Some v -> (
          match Cop.sem_cast v (typeof a2) (typeof a1) with
          | Some v' -> (
            match assign_loc (typeof a1) m b ofs v' with
            | Some m' -> ret (State (f, Sskip, k, e, le, m'))
            | None -> [])
          | None -> [])
        | None -> [])
      | None -> [])
    | Sset (id, a) -> (
      match eval_expr ge e le m a with
      | Some v -> ret (State (f, Sskip, k, e, Ident.Map.add id v le, m))
      | None -> [])
    | Scall (optid, a, args) -> (
      match typeof a with
      | Tpointer (Tfunction (targs, tres)) | Tfunction (targs, tres) -> (
        match eval_expr ge e le m a with
        | Some vf -> (
          match eval_exprlist ge e le m args targs with
          | Some vargs ->
            let sg = signature_of_type targs tres in
            ret (Callstate (vf, sg, vargs, Kcall (optid, f, e, le, k), m))
          | None -> [])
        | None -> [])
      | _ -> [])
    | Ssequence (s1, s2) -> ret (State (f, s1, Kseq (s2, k), e, le, m))
    | Sifthenelse (a, s1, s2) -> (
      match eval_expr ge e le m a with
      | Some v -> (
        match Cop.bool_val v (typeof a) m with
        | Some b -> ret (State (f, (if b then s1 else s2), k, e, le, m))
        | None -> [])
      | None -> [])
    | Sloop (s1, s2) -> ret (State (f, s1, Kloop1 (s1, s2, k), e, le, m))
    | Sbreak -> (
      match k with
      | Kseq (_, k') -> ret (State (f, Sbreak, k', e, le, m))
      | Kloop1 (_, _, k') | Kloop2 (_, _, k') -> ret (State (f, Sskip, k', e, le, m))
      | _ -> [])
    | Scontinue -> (
      match k with
      | Kseq (_, k') -> ret (State (f, Scontinue, k', e, le, m))
      | Kloop1 (s1, s2, k') -> ret (State (f, s2, Kloop2 (s1, s2, k'), e, le, m))
      | _ -> [])
    | Sreturn None -> (
      match Mem.free_list m (blocks_of_env e) with
      | Some m' -> ret (Returnstate (Vundef, call_cont k, m'))
      | None -> [])
    | Sreturn (Some a) -> (
      match eval_expr ge e le m a with
      | Some v -> (
        match Cop.sem_cast v (typeof a) f.fn_return with
        | Some v' -> (
          match Mem.free_list m (blocks_of_env e) with
          | Some m' -> ret (Returnstate (v', call_cont k, m'))
          | None -> [])
        | None -> [])
      | None -> []))
  | Callstate (vf, sg, args, k, m) -> (
    match Genv.find_funct ge vf with
    | Some (Ast.Internal f) ->
      if not (Mtypes.signature_equal sg (fn_sig f)) then []
      else (
        match function_entry mode ge f args m with
        | Some (e, le, m') -> ret (State (f, f.fn_body, k, e, le, m'))
        | None -> [])
    | Some (Ast.External _) | None -> [] (* external: handled by at_external *))
  | Returnstate (v, k, m) -> (
    match k with
    | Kcall (optid, f, e, le, k') ->
      let le' = match optid with Some id -> Ident.Map.add id v le | None -> le in
      ret (State (f, Sskip, k', e, le', m))
    | Kstop | Kseq _ | Kloop1 _ | Kloop2 _ -> [])

(** {1 The open LTS} *)

let semantics ?(mode : entry_mode = `Mem_params) ~(symbols : Ident.t list)
    (p : program) : (state, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  {
    Core.Smallstep.name = "Clight";
    dom =
      (fun q ->
        match Genv.find_funct ge q.cq_vf with
        | Some (Ast.Internal f) -> Mtypes.signature_equal q.cq_sg (fn_sig f)
        | _ -> false);
    init =
      (fun q -> [ Callstate (q.cq_vf, q.cq_sg, q.cq_args, Kstop, q.cq_mem) ]);
    step = (fun s -> step mode ge s);
    at_external =
      (fun s ->
        match s with
        | Callstate (vf, sg, args, _, m) when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { cq_vf = vf; cq_sg = sg; cq_args = args; cq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s with
        | Callstate (_, _, _, k, _) -> [ Returnstate (r.cr_res, k, r.cr_mem) ]
        | _ -> []);
    final =
      (fun s ->
        match s with
        | Returnstate (v, Kstop, m) -> Some { cr_res = v; cr_mem = m }
        | _ -> None);
  }
