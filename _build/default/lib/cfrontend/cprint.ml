(** Pretty-printer for Clight programs. *)

open Support
open Ctypes
open Csyntax

let rec pp_expr fmt (e : expr) =
  match e with
  | Econst_int (n, _) -> Format.fprintf fmt "%ld" n
  | Econst_long (n, _) -> Format.fprintf fmt "%LdL" n
  | Econst_float (f, _) -> Format.fprintf fmt "%g" f
  | Econst_single (f, _) -> Format.fprintf fmt "%gf" f
  | Evar (id, _) -> Ident.pp fmt id
  | Etempvar (id, _) -> Format.fprintf fmt "$%a" Ident.pp id
  | Ederef (a, _) -> Format.fprintf fmt "*(%a)" pp_expr a
  | Eaddrof (a, _) -> Format.fprintf fmt "&(%a)" pp_expr a
  | Eunop (op, a, _) -> Format.fprintf fmt "%a(%a)" Cop.pp_unop op pp_expr a
  | Ebinop (op, a1, a2, _) ->
    Format.fprintf fmt "(%a %a %a)" pp_expr a1 Cop.pp_binop op pp_expr a2
  | Ecast (a, t) -> Format.fprintf fmt "(%a)(%a)" pp_ty t pp_expr a
  | Esizeof (t, _) -> Format.fprintf fmt "sizeof(%a)" pp_ty t

let rec pp_stmt fmt (s : stmt) =
  match s with
  | Sskip -> Format.fprintf fmt "skip;"
  | Sassign (a1, a2) -> Format.fprintf fmt "%a = %a;" pp_expr a1 pp_expr a2
  | Sset (id, a) -> Format.fprintf fmt "$%a = %a;" Ident.pp id pp_expr a
  | Scall (None, f, args) ->
    Format.fprintf fmt "%a(%a);" pp_expr f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      args
  | Scall (Some id, f, args) ->
    Format.fprintf fmt "$%a = %a(%a);" Ident.pp id pp_expr f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      args
  | Ssequence (s1, s2) -> Format.fprintf fmt "%a@,%a" pp_stmt s1 pp_stmt s2
  | Sifthenelse (a, s1, s2) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
      pp_expr a pp_stmt s1 pp_stmt s2
  | Sloop (s1, s2) ->
    Format.fprintf fmt "@[<v 2>loop {@,%a@]@,@[<v 2>} continue: {@,%a@]@,}"
      pp_stmt s1 pp_stmt s2
  | Sbreak -> Format.fprintf fmt "break;"
  | Scontinue -> Format.fprintf fmt "continue;"
  | Sreturn None -> Format.fprintf fmt "return;"
  | Sreturn (Some a) -> Format.fprintf fmt "return %a;" pp_expr a

let pp_function fmt (name : Ident.t) (f : coq_function) =
  Format.fprintf fmt "@[<v 2>%a %a(%a) {@," pp_ty f.fn_return Ident.pp name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (id, t) -> Format.fprintf fmt "%a %a" pp_ty t Ident.pp id))
    f.fn_params;
  List.iter
    (fun (id, t) -> Format.fprintf fmt "%a %a;@," pp_ty t Ident.pp id)
    f.fn_vars;
  List.iter
    (fun (id, t) -> Format.fprintf fmt "register %a $%a;@," pp_ty t Ident.pp id)
    f.fn_temps;
  Format.fprintf fmt "%a@]@,}" pp_stmt f.fn_body

let pp_program fmt (p : program) =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (id, d) ->
      match d with
      | Iface.Ast.Gfun (Iface.Ast.Internal f) ->
        Format.fprintf fmt "%a@,@," (fun fmt () -> pp_function fmt id f) ()
      | Iface.Ast.Gfun (Iface.Ast.External ef) ->
        Format.fprintf fmt "extern %a; /* %a */@,@," Ident.pp id
          Memory.Mtypes.pp_signature ef.Iface.Ast.ef_sig
      | Iface.Ast.Gvar gv ->
        Format.fprintf fmt "%a %a;@,@," pp_ty gv.Iface.Ast.gvar_info Ident.pp id)
    p.Iface.Ast.prog_defs;
  Format.fprintf fmt "@]"
