(** Machine-level operators shared by Csharpminor, Cminor and CminorSel
    (CompCert's [Cminor] operator syntax and [Cminorsel]'s evaluation).

    Unlike the type-directed operators of [Cop], these are monomorphic:
    each operator fixes the machine types of its operands. *)

open Memory
open Memory.Mtypes
open Memory.Values

type unary_operation =
  | Ocast8unsigned | Ocast8signed | Ocast16unsigned | Ocast16signed
  | Onegint | Onotint
  | Onegl | Onotl
  | Onegf | Oabsf
  | Onegfs
  | Osingleoffloat | Ofloatofsingle
  | Ointoffloat | Ofloatofint
  | Ointofsingle | Osingleofint
  | Olongoffloat | Ofloatoflong
  | Olongofint | Olongofintu | Ointoflong

type binary_operation =
  | Oadd | Osub | Omul | Odiv | Odivu | Omod | Omodu
  | Oand | Oor | Oxor | Oshl | Oshr | Oshru
  | Oaddl | Osubl | Omull | Odivl | Odivlu | Omodl | Omodlu
  | Oandl | Oorl | Oxorl | Oshll | Oshrl | Oshrlu
  | Oaddf | Osubf | Omulf | Odivf
  | Oaddfs | Osubfs | Omulfs | Odivfs
  | Ocmp of comparison
  | Ocmpu of comparison
  | Ocmpl of comparison
  | Ocmplu of comparison
  | Ocmpf of comparison
  | Ocmpfs of comparison

let eval_unop (op : unary_operation) (v : value) : value option =
  match op with
  | Ocast8unsigned -> Some (zero_ext 8 v)
  | Ocast8signed -> Some (sign_ext 8 v)
  | Ocast16unsigned -> Some (zero_ext 16 v)
  | Ocast16signed -> Some (sign_ext 16 v)
  | Onegint -> Some (neg v)
  | Onotint -> Some (notint v)
  | Onegl -> Some (negl v)
  | Onotl -> Some (notl v)
  | Onegf -> Some (negf v)
  | Oabsf -> Some (absf v)
  | Onegfs -> Some (negfs v)
  | Osingleoffloat -> Some (singleoffloat v)
  | Ofloatofsingle -> Some (floatofsingle v)
  | Ointoffloat -> intoffloat v
  | Ofloatofint -> Some (floatofint v)
  | Ointofsingle -> intofsingle v
  | Osingleofint -> Some (singleofint v)
  | Olongoffloat -> longoffloat v
  | Ofloatoflong -> Some (floatoflong v)
  | Olongofint -> Some (longofint v)
  | Olongofintu -> Some (longofintu v)
  | Ointoflong -> Some (intoflong v)

let eval_binop (op : binary_operation) (v1 : value) (v2 : value) (m : Mem.t) :
    value option =
  let valid b o = Mem.weak_valid_pointer m b o in
  let some v = match v with Vundef -> None | v -> Some v in
  match op with
  | Oadd -> some (add v1 v2)
  | Osub -> some (sub v1 v2)
  | Omul -> some (mul v1 v2)
  | Odiv -> divs v1 v2
  | Odivu -> divu v1 v2
  | Omod -> mods v1 v2
  | Omodu -> modu v1 v2
  | Oand -> some (and_ v1 v2)
  | Oor -> some (or_ v1 v2)
  | Oxor -> some (xor v1 v2)
  | Oshl -> some (shl v1 v2)
  | Oshr -> some (shr v1 v2)
  | Oshru -> some (shru v1 v2)
  | Oaddl -> some (addl v1 v2)
  | Osubl -> some (subl v1 v2)
  | Omull -> some (mull v1 v2)
  | Odivl -> divls v1 v2
  | Odivlu -> divlu v1 v2
  | Omodl -> modls v1 v2
  | Omodlu -> modlu v1 v2
  | Oandl -> some (andl v1 v2)
  | Oorl -> some (orl v1 v2)
  | Oxorl -> some (xorl v1 v2)
  | Oshll -> some (shll v1 v2)
  | Oshrl -> some (shrl v1 v2)
  | Oshrlu -> some (shrlu v1 v2)
  | Oaddf -> some (addf v1 v2)
  | Osubf -> some (subf v1 v2)
  | Omulf -> some (mulf v1 v2)
  | Odivf -> some (divf v1 v2)
  | Oaddfs -> some (addfs v1 v2)
  | Osubfs -> some (subfs v1 v2)
  | Omulfs -> some (mulfs v1 v2)
  | Odivfs -> some (divfs v1 v2)
  | Ocmp c -> Option.map of_bool (cmp_bool c v1 v2)
  | Ocmpu c -> Option.map of_bool (cmpu_bool c v1 v2)
  | Ocmpl c -> Option.map of_bool (cmpl_bool c v1 v2)
  | Ocmplu c -> Option.map of_bool (cmplu_bool ~valid c v1 v2)
  | Ocmpf c -> Option.map of_bool (cmpf_bool c v1 v2)
  | Ocmpfs c -> Option.map of_bool (cmpfs_bool c v1 v2)

let pp_unop fmt op =
  Format.pp_print_string fmt
    (match op with
    | Ocast8unsigned -> "cast8u" | Ocast8signed -> "cast8s"
    | Ocast16unsigned -> "cast16u" | Ocast16signed -> "cast16s"
    | Onegint -> "negint" | Onotint -> "notint"
    | Onegl -> "negl" | Onotl -> "notl"
    | Onegf -> "negf" | Oabsf -> "absf" | Onegfs -> "negfs"
    | Osingleoffloat -> "singleoffloat" | Ofloatofsingle -> "floatofsingle"
    | Ointoffloat -> "intoffloat" | Ofloatofint -> "floatofint"
    | Ointofsingle -> "intofsingle" | Osingleofint -> "singleofint"
    | Olongoffloat -> "longoffloat" | Ofloatoflong -> "floatoflong"
    | Olongofint -> "longofint" | Olongofintu -> "longofintu"
    | Ointoflong -> "intoflong")

let pp_binop fmt op =
  let cmp s c = Format.asprintf "%s%a" s pp_comparison c in
  Format.pp_print_string fmt
    (match op with
    | Oadd -> "+" | Osub -> "-" | Omul -> "*" | Odiv -> "/s" | Odivu -> "/u"
    | Omod -> "%s" | Omodu -> "%u" | Oand -> "&" | Oor -> "|" | Oxor -> "^"
    | Oshl -> "<<" | Oshr -> ">>s" | Oshru -> ">>u"
    | Oaddl -> "+l" | Osubl -> "-l" | Omull -> "*l" | Odivl -> "/ls"
    | Odivlu -> "/lu" | Omodl -> "%ls" | Omodlu -> "%lu" | Oandl -> "&l"
    | Oorl -> "|l" | Oxorl -> "^l" | Oshll -> "<<l" | Oshrl -> ">>ls"
    | Oshrlu -> ">>lu"
    | Oaddf -> "+f" | Osubf -> "-f" | Omulf -> "*f" | Odivf -> "/f"
    | Oaddfs -> "+fs" | Osubfs -> "-fs" | Omulfs -> "*fs" | Odivfs -> "/fs"
    | Ocmp c -> cmp "cmp" c
    | Ocmpu c -> cmp "cmpu" c
    | Ocmpl c -> cmp "cmpl" c
    | Ocmplu c -> cmp "cmplu" c
    | Ocmpf c -> cmp "cmpf" c
    | Ocmpfs c -> cmp "cmpfs" c)
