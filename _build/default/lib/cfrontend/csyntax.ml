(** Abstract syntax of Clight (CompCert's [Clight]).

    Expressions are pure (side-effect-free); all side effects happen in
    statements. Every expression node carries its C type, established by
    the elaborator ([Ctyping]). Local variables are split into
    memory-resident variables ([fn_vars], addressable) and temporaries
    ([fn_temps], register-like, not addressable); the [SimplLocals] pass
    moves eligible variables from the former to the latter. *)

open Support
open Ctypes

type expr =
  | Econst_int of int32 * ty
  | Econst_long of int64 * ty
  | Econst_float of float * ty
  | Econst_single of float * ty
  | Evar of Ident.t * ty  (** memory-resident variable (local or global) *)
  | Etempvar of Ident.t * ty  (** temporary *)
  | Ederef of expr * ty
  | Eaddrof of expr * ty
  | Eunop of Cop.unary_operation * expr * ty
  | Ebinop of Cop.binary_operation * expr * expr * ty
  | Ecast of expr * ty
  | Esizeof of ty * ty

let typeof = function
  | Econst_int (_, t)
  | Econst_long (_, t)
  | Econst_float (_, t)
  | Econst_single (_, t)
  | Evar (_, t)
  | Etempvar (_, t)
  | Ederef (_, t)
  | Eaddrof (_, t)
  | Eunop (_, _, t)
  | Ebinop (_, _, _, t)
  | Ecast (_, t)
  | Esizeof (_, t) ->
    t

type stmt =
  | Sskip
  | Sassign of expr * expr  (** lvalue = rvalue, in memory *)
  | Sset of Ident.t * expr  (** temporary = rvalue *)
  | Scall of Ident.t option * expr * expr list
  | Ssequence of stmt * stmt
  | Sifthenelse of expr * stmt * stmt
  | Sloop of stmt * stmt
      (** infinite loop: body; continue-target. [break]/[continue] exit or
          advance it (CompCert encoding of while/for). *)
  | Sbreak
  | Scontinue
  | Sreturn of expr option

(** [while (c) s] *)
let swhile c s =
  Sloop (Ssequence (Sifthenelse (c, Sskip, Sbreak), s), Sskip)

(** [for (;c;inc) s] — initialization is sequenced before the loop. *)
let sfor c s inc =
  Sloop (Ssequence (Sifthenelse (c, Sskip, Sbreak), s), inc)

type coq_function = {
  fn_return : ty;
  fn_params : (Ident.t * ty) list;
  fn_vars : (Ident.t * ty) list;  (** memory-resident locals *)
  fn_temps : (Ident.t * ty) list;
  fn_body : stmt;
}

let fn_type f = Tfunction (List.map snd f.fn_params, f.fn_return)

let fn_sig f =
  signature_of_type (List.map snd f.fn_params) f.fn_return

type program = (coq_function, ty) Iface.Ast.program

let internal_sig = fn_sig

(** Clight programs link through the generic operator with [fn_sig]. *)
let link p1 p2 = Iface.Ast.link ~internal_sig p1 p2
