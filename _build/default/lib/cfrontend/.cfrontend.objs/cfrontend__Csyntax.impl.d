lib/cfrontend/csyntax.ml: Cop Ctypes Ident Iface List Support
