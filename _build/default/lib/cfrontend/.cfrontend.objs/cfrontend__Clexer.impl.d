lib/cfrontend/clexer.ml: Array Char Format Int64 List Printf String
