lib/cfrontend/cmops.ml: Format Mem Memory Option
