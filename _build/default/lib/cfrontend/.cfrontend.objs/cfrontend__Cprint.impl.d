lib/cfrontend/cprint.ml: Cop Csyntax Ctypes Format Ident Iface List Memory Support
