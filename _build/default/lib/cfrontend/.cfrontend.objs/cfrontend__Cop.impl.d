lib/cfrontend/cop.ml: Ctypes Float Format Int32 Int64 Mem Memory Option
