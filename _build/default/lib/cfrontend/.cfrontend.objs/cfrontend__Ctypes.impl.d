lib/cfrontend/ctypes.ml: Format List Memory
