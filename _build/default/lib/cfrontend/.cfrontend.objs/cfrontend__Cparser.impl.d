lib/cfrontend/cparser.ml: Clexer Cop Csyntax Ctypes Format Ident Iface Int64 List Memory Option Support
