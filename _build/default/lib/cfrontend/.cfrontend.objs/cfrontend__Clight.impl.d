lib/cfrontend/clight.ml: Ast Cop Core Csyntax Ctypes Genv Ident Iface Int64 List Mem Memory Mtypes Support
