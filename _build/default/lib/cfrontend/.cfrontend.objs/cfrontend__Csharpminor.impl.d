lib/cfrontend/csharpminor.ml: Ast Cmops Core Genv Ident Iface List Mem Memory Support
