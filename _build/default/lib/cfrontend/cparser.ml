(** Recursive-descent parser and elaborator for the C subset.

    Produces typed Clight abstract syntax directly. Expressions with
    control effects ([&&], [||], [?:]) or embedded calls are lowered into
    statements over fresh temporaries, exactly as CompCert's SimplExpr
    pass does; the resulting Clight expressions are pure. Implicit
    conversions are materialized as [Ecast] nodes. *)

open Support
open Ctypes
open Csyntax
open Clexer

exception Parse_error of string * int

let err lx fmt =
  Format.kasprintf (fun s -> raise (Parse_error (s, line lx))) fmt

(** {1 Token helpers} *)

let expect_punct lx s =
  match peek lx with
  | PUNCT p when p = s -> advance lx
  | t -> err lx "expected '%s' but found %a" s pp_token t

let eat_punct lx s =
  match peek lx with
  | PUNCT p when p = s ->
    advance lx;
    true
  | _ -> false

let eat_kw lx s =
  match peek lx with
  | KW k when k = s ->
    advance lx;
    true
  | _ -> false

let expect_ident lx =
  match peek lx with
  | IDENT s ->
    advance lx;
    s
  | t -> err lx "expected identifier but found %a" pp_token t

(** {1 Types} *)

let is_type_start lx =
  match peek lx with
  | KW ("int" | "long" | "char" | "short" | "unsigned" | "signed" | "double"
       | "float" | "void" | "const") ->
    true
  | _ -> false

(* Parse a base type: sequences like "unsigned long", "const int", ... *)
let parse_base_type lx =
  let readonly = ref false in
  let signed = ref None in
  let base = ref None in
  let continue_ = ref true in
  while !continue_ do
    match peek lx with
    | KW "const" -> readonly := true; advance lx
    | KW "unsigned" -> signed := Some Unsigned; advance lx
    | KW "signed" -> signed := Some Signed; advance lx
    | KW (("int" | "long" | "char" | "short" | "double" | "float" | "void") as k) ->
      (match (!base, k) with
      | None, _ -> base := Some k
      | Some "long", "long" -> () (* long long = long *)
      | Some "long", "int" | Some "short", "int" -> ()
      | Some b, k -> err lx "conflicting type specifiers %s %s" b k);
      advance lx
    | _ -> continue_ := false
  done;
  let sg = Option.value !signed ~default:Signed in
  let t =
    match !base with
    | Some "char" -> Tint (I8, sg)
    | Some "short" -> Tint (I16, sg)
    | Some "int" | None -> Tint (I32, sg)
    | Some "long" -> Tlong sg
    | Some "double" -> Tfloat
    | Some "float" -> Tsingle
    | Some "void" -> Tvoid
    | Some other -> err lx "unknown type %s" other
  in
  (t, !readonly)

let parse_pointers lx t =
  let t = ref t in
  while eat_punct lx "*" do
    t := Tpointer !t
  done;
  !t

(* Array suffixes: T x[3][4] gives Tarray (Tarray (T, 4), 3). *)
let rec parse_array_suffix lx t =
  if eat_punct lx "[" then begin
    let n =
      match peek lx with
      | INT_LIT (v, _) ->
        advance lx;
        Int64.to_int v
      | tok -> err lx "expected array size, found %a" pp_token tok
    in
    expect_punct lx "]";
    let inner = parse_array_suffix lx t in
    Tarray (inner, n)
  end
  else t

(* Parameter lists: [T x, U y] or [void]. Parameter names may be omitted
   in prototypes. Array parameters decay to pointers. *)
let rec parse_params lx =
  expect_punct lx "(";
  if eat_punct lx ")" then []
  else if peek lx = KW "void" && peek2 lx = PUNCT ")" then begin
    advance lx;
    advance lx;
    []
  end
  else begin
    let rec go acc =
      let bt, _ = parse_base_type lx in
      let t = parse_pointers lx bt in
      let name, t =
        match peek lx with
        | IDENT s ->
          advance lx;
          (s, decayed_type0 (parse_array_suffix lx t))
        | PUNCT "(" ->
          let name, t = parse_fptr_declarator lx t in
          (name, t)
        | _ -> ("", t)
      in
      let acc = (name, t) :: acc in
      if eat_punct lx "," then go acc
      else begin
        expect_punct lx ")";
        List.rev acc
      end
    in
    go []
  end

(* Function-pointer declarator "( * name)(params)"; the return type has
   already been parsed. *)
and parse_fptr_declarator lx ret_ty =
  expect_punct lx "(";
  expect_punct lx "*";
  let name = expect_ident lx in
  expect_punct lx ")";
  let params = parse_params lx in
  (name, Tpointer (Tfunction (List.map snd params, ret_ty)))

and decayed_type0 t = match t with Tarray (te, _) -> Tpointer te | t -> t

(** {1 Elaboration environment} *)

type venv = {
  locals : ty Ident.Map.t;  (** parameters and declared locals *)
  globals : ty Ident.Map.t;
}

let lookup_var env id =
  match Ident.Map.find_opt id env.locals with
  | Some t -> Some t
  | None -> Ident.Map.find_opt id env.globals

(* Per-function elaboration state: declared variables and generated
   temporaries. *)
type fstate = {
  mutable vars : (Ident.t * ty) list;
  mutable temps : (Ident.t * ty) list;
}

let fresh_temp fs t =
  let id = Ident.fresh_named "t" in
  fs.temps <- (id, t) :: fs.temps;
  id

(** {1 Expressions}

    [parse_expr] returns a list of prelude statements (in execution
    order) together with a pure Clight expression. *)

(* Decay array/function types when an expression is used as a value. *)
let decay e =
  match typeof e with
  | Tarray (t, _) -> Ecast (Eaddrof (e, Tpointer t), Tpointer t)
  | Tfunction _ as t -> Eaddrof (e, Tpointer t)
  | _ -> e

let decayed_type t =
  match t with Tarray (te, _) -> Tpointer te | t -> t

let cast_to t e = if ty_equal (typeof e) t then e else Ecast (e, t)

let is_scalar = function
  | Tint _ | Tlong _ | Tfloat | Tsingle | Tpointer _ | Tarray _ | Tfunction _ ->
    true
  | Tvoid -> false

let common_type lx t1 t2 =
  if ty_equal t1 t2 then t1
  else
    match Cop.classify_arith t1 t2 with
    | Cop.Cl_i Signed -> tint
    | Cop.Cl_i Unsigned -> tuint
    | Cop.Cl_l g -> Tlong g
    | Cop.Cl_f -> Tfloat
    | Cop.Cl_s -> Tsingle
    | _ -> err lx "incompatible branch types in conditional expression"

let rec parse_expr lx env fs : stmt list * expr = parse_conditional lx env fs

and parse_conditional lx env fs =
  let p1, c = parse_logical_or lx env fs in
  if eat_punct lx "?" then begin
    let p2, e1 = parse_expr lx env fs in
    expect_punct lx ":";
    let p3, e2 = parse_conditional lx env fs in
    let e1 = decay e1 and e2 = decay e2 in
    let t = common_type lx (typeof e1) (typeof e2) in
    let tmp = fresh_temp fs t in
    let branch p e = seq_stmts (p @ [ Sset (tmp, cast_to t e) ]) in
    ( p1 @ [ Sifthenelse (decay c, branch p2 e1, branch p3 e2) ],
      Etempvar (tmp, t) )
  end
  else (p1, c)

and parse_logical_or lx env fs =
  let p1, e1 = parse_logical_and lx env fs in
  if eat_punct lx "||" then begin
    let p2, e2 = parse_logical_or lx env fs in
    let tmp = fresh_temp fs tint in
    let one = Sset (tmp, Econst_int (1l, tint)) in
    let test2 =
      seq_stmts
        (p2
        @ [ Sifthenelse (decay e2, one, Sset (tmp, Econst_int (0l, tint))) ])
    in
    (p1 @ [ Sifthenelse (decay e1, one, test2) ], Etempvar (tmp, tint))
  end
  else (p1, e1)

and parse_logical_and lx env fs =
  let p1, e1 = parse_bitor lx env fs in
  if eat_punct lx "&&" then begin
    let p2, e2 = parse_logical_and lx env fs in
    let tmp = fresh_temp fs tint in
    let zero = Sset (tmp, Econst_int (0l, tint)) in
    let test2 =
      seq_stmts
        (p2
        @ [ Sifthenelse (decay e2, Sset (tmp, Econst_int (1l, tint)), zero) ])
    in
    (p1 @ [ Sifthenelse (decay e1, test2, zero) ], Etempvar (tmp, tint))
  end
  else (p1, e1)

and binop_level ops next lx env fs =
  let rec loop p e1 =
    match peek lx with
    | PUNCT s when List.mem_assoc s ops ->
      advance lx;
      let op = List.assoc s ops in
      let p2, e2 = next lx env fs in
      let e1 = decay e1 and e2 = decay e2 in
      let t = Cop.type_binop op (typeof e1) (typeof e2) in
      loop (p @ p2) (Ebinop (op, e1, e2, t))
    | _ -> (p, e1)
  in
  let p, e = next lx env fs in
  loop p e

and parse_bitor lx env fs = binop_level [ ("|", Cop.Oor) ] parse_bitxor lx env fs
and parse_bitxor lx env fs = binop_level [ ("^", Cop.Oxor) ] parse_bitand lx env fs

and parse_bitand lx env fs =
  (* Only match single '&' used as a binary operator. *)
  binop_level [ ("&", Cop.Oand) ] parse_equality lx env fs

and parse_equality lx env fs =
  binop_level [ ("==", Cop.Oeq); ("!=", Cop.One) ] parse_relational lx env fs

and parse_relational lx env fs =
  binop_level
    [ ("<", Cop.Olt); (">", Cop.Ogt); ("<=", Cop.Ole); (">=", Cop.Oge) ]
    parse_shift lx env fs

and parse_shift lx env fs =
  binop_level [ ("<<", Cop.Oshl); (">>", Cop.Oshr) ] parse_additive lx env fs

and parse_additive lx env fs =
  binop_level [ ("+", Cop.Oadd); ("-", Cop.Osub) ] parse_multiplicative lx env fs

and parse_multiplicative lx env fs =
  binop_level
    [ ("*", Cop.Omul); ("/", Cop.Odiv); ("%", Cop.Omod) ]
    parse_unary lx env fs

and parse_unary lx env fs : stmt list * expr =
  match peek lx with
  | PUNCT "-" ->
    advance lx;
    let p, e = parse_unary lx env fs in
    let e = decay e in
    (p, Eunop (Cop.Oneg, e, Cop.type_binop Cop.Oadd (typeof e) (typeof e)))
  | PUNCT "!" ->
    advance lx;
    let p, e = parse_unary lx env fs in
    (p, Eunop (Cop.Onotbool, decay e, tint))
  | PUNCT "~" ->
    advance lx;
    let p, e = parse_unary lx env fs in
    let e = decay e in
    (p, Eunop (Cop.Onotint, e, Cop.type_binop Cop.Oadd (typeof e) (typeof e)))
  | PUNCT "*" ->
    advance lx;
    let p, e = parse_unary lx env fs in
    let e = decay e in
    (match typeof e with
    | Tpointer t -> (p, Ederef (e, t))
    | _ -> err lx "dereference of a non-pointer value")
  | PUNCT "&" ->
    advance lx;
    let p, e = parse_unary lx env fs in
    (match e with
    | Evar (_, t) | Ederef (_, t) -> (p, Eaddrof (e, Tpointer t))
    | _ -> err lx "cannot take the address of this expression")
  | KW "sizeof" ->
    advance lx;
    expect_punct lx "(";
    let t =
      if is_type_start lx then begin
        let bt, _ = parse_base_type lx in
        parse_pointers lx bt
      end
      else
        let _, e = parse_expr lx env fs in
        typeof e
    in
    expect_punct lx ")";
    (* sizeof has type unsigned long *)
    ([], Esizeof (t, tulong))
  | PUNCT "(" when (match peek2 lx with
                   | KW ("int" | "long" | "char" | "short" | "unsigned" | "signed"
                        | "double" | "float" | "void") -> true
                   | _ -> false) ->
    (* cast *)
    advance lx;
    let bt, _ = parse_base_type lx in
    let t = parse_pointers lx bt in
    expect_punct lx ")";
    let p, e = parse_unary lx env fs in
    (p, Ecast (decay e, t))
  | _ -> parse_postfix lx env fs

and parse_postfix lx env fs =
  let p, e = parse_primary lx env fs in
  let rec loop p e =
    match peek lx with
    | PUNCT "[" ->
      advance lx;
      let p2, idx = parse_expr lx env fs in
      expect_punct lx "]";
      let e' = decay e and idx = decay idx in
      (match decayed_type (typeof e) with
      | Tpointer t ->
        loop (p @ p2) (Ederef (Ebinop (Cop.Oadd, e', idx, Tpointer t), t))
      | _ -> err lx "indexing a non-array value")
    | PUNCT "(" ->
      advance lx;
      let args = ref [] in
      let preludes = ref [] in
      if not (eat_punct lx ")") then begin
        let rec more () =
          let pa, a = parse_expr lx env fs in
          preludes := !preludes @ pa;
          args := !args @ [ decay a ];
          if eat_punct lx "," then more () else expect_punct lx ")"
        in
        more ()
      end;
      let targs, tres =
        match typeof e with
        | Tfunction (targs, tres) | Tpointer (Tfunction (targs, tres)) ->
          (targs, tres)
        | _ -> err lx "call of a non-function value"
      in
      if List.length targs <> List.length !args then
        err lx "wrong number of arguments in call";
      let cast_args = List.map2 (fun a t -> cast_to t a) !args targs in
      (* Lower the call to a statement over a fresh temporary. *)
      let res_temp, res_expr =
        match tres with
        | Tvoid -> (None, Econst_int (0l, tint))
        | t ->
          let tmp = fresh_temp fs t in
          (Some tmp, Etempvar (tmp, t))
      in
      loop (p @ !preludes @ [ Scall (res_temp, e, cast_args) ]) res_expr
    | _ -> (p, e)
  in
  loop p e

and parse_primary lx env fs : stmt list * expr =
  match peek lx with
  | INT_LIT (v, sfx) ->
    advance lx;
    let e =
      match sfx with
      | `I ->
        if Int64.compare v 2147483647L <= 0 then
          Econst_int (Int64.to_int32 v, tint)
        else Econst_long (v, tlong)
      | `U -> Econst_int (Int64.to_int32 v, tuint)
      | `L -> Econst_long (v, tlong)
      | `UL -> Econst_long (v, tulong)
    in
    ([], e)
  | FLOAT_LIT (f, sfx) ->
    advance lx;
    ( [],
      match sfx with
      | `D -> Econst_float (f, Tfloat)
      | `F -> Econst_single (Memory.Values.to_single f, Tsingle) )
  | IDENT name -> (
    advance lx;
    let id = Ident.intern name in
    match lookup_var env id with
    | Some t -> ([], Evar (id, t))
    | None -> err lx "undeclared identifier %s" name)
  | PUNCT "(" ->
    advance lx;
    let p, e = parse_expr lx env fs in
    expect_punct lx ")";
    (p, e)
  | t -> err lx "unexpected token %a in expression" pp_token t

and seq_stmts = function
  | [] -> Sskip
  | [ s ] -> s
  | s :: rest -> Ssequence (s, seq_stmts rest)

(** {1 Statements} *)

let check_assignable lx e =
  match e with
  | Evar _ | Ederef _ -> ()
  | _ -> err lx "expression is not assignable"

let rec parse_stmt lx env fs : stmt * venv =
  match peek lx with
  | PUNCT "{" -> (parse_block lx env fs, env)
  | PUNCT ";" ->
    advance lx;
    (Sskip, env)
  | KW "if" ->
    advance lx;
    expect_punct lx "(";
    let p, c = parse_expr lx env fs in
    expect_punct lx ")";
    let s1, _ = parse_stmt lx env fs in
    let s2 = if eat_kw lx "else" then fst (parse_stmt lx env fs) else Sskip in
    (seq_stmts (p @ [ Sifthenelse (decay c, s1, s2) ]), env)
  | KW "while" ->
    advance lx;
    expect_punct lx "(";
    let p, c = parse_expr lx env fs in
    expect_punct lx ")";
    let body, _ = parse_stmt lx env fs in
    (* Condition preludes must re-execute on each iteration. *)
    ( Sloop
        ( Ssequence
            (seq_stmts (p @ [ Sifthenelse (decay c, Sskip, Sbreak) ]), body),
          Sskip ),
      env )
  | KW "do" ->
    (* do body while (c); — the condition is tested in the loop's
       continue-statement position. *)
    advance lx;
    let body, _ = parse_stmt lx env fs in
    if not (eat_kw lx "while") then err lx "expected while after do-body";
    expect_punct lx "(";
    let p, c = parse_expr lx env fs in
    expect_punct lx ")";
    expect_punct lx ";";
    ( Sloop (body, seq_stmts (p @ [ Sifthenelse (decay c, Sskip, Sbreak) ])),
      env )
  | KW "for" ->
    advance lx;
    expect_punct lx "(";
    let init, env' =
      if eat_punct lx ";" then (Sskip, env)
      else if is_type_start lx then parse_decl_stmt lx env fs
      else begin
        let s = parse_expr_stmt lx env fs in
        expect_punct lx ";";
        (s, env)
      end
    in
    let p, c =
      if eat_punct lx ";" then ([], Econst_int (1l, tint))
      else begin
        let pc = parse_expr lx env' fs in
        expect_punct lx ";";
        pc
      end
    in
    let inc =
      if eat_punct lx ")" then Sskip
      else begin
        (* The increment clause may be a comma-separated sequence. *)
        let rec more acc =
          let s = parse_expr_stmt lx env' fs in
          let acc = acc @ [ s ] in
          if eat_punct lx "," then more acc
          else begin
            expect_punct lx ")";
            seq_stmts acc
          end
        in
        more []
      end
    in
    let body, _ = parse_stmt lx env' fs in
    ( Ssequence
        ( init,
          Sloop
            ( Ssequence
                (seq_stmts (p @ [ Sifthenelse (decay c, Sskip, Sbreak) ]), body),
              inc ) ),
      env )
  | KW "return" ->
    advance lx;
    if eat_punct lx ";" then (Sreturn None, env)
    else begin
      let p, e = parse_expr lx env fs in
      expect_punct lx ";";
      (seq_stmts (p @ [ Sreturn (Some (decay e)) ]), env)
    end
  | KW "break" ->
    advance lx;
    expect_punct lx ";";
    (Sbreak, env)
  | KW "continue" ->
    advance lx;
    expect_punct lx ";";
    (Scontinue, env)
  | KW ("int" | "long" | "char" | "short" | "unsigned" | "signed" | "double"
       | "float" | "void" | "const") ->
    let s, env' = parse_decl_stmt lx env fs in
    (s, env')
  | _ ->
    let s = parse_expr_stmt lx env fs in
    expect_punct lx ";";
    (s, env)

(* Local declaration: [T x = e, y;] — declares memory-resident locals. *)
and parse_decl_stmt lx env fs : stmt * venv =
  let bt, _ = parse_base_type lx in
  let rec decls env stmts =
    let t = parse_pointers lx bt in
    let name, t =
      if peek lx = PUNCT "(" then parse_fptr_declarator lx t
      else
        let name = expect_ident lx in
        (name, parse_array_suffix lx t)
    in
    let id = Ident.intern name in
    fs.vars <- (id, t) :: fs.vars;
    let env = { env with locals = Ident.Map.add id t env.locals } in
    let stmts =
      if eat_punct lx "=" then begin
        let p, e = parse_expr lx env fs in
        stmts @ p @ [ Sassign (Evar (id, t), cast_to t (decay e)) ]
      end
      else stmts
    in
    if eat_punct lx "," then decls env stmts
    else begin
      expect_punct lx ";";
      (seq_stmts stmts, env)
    end
  in
  decls env []

(* Expression statement: assignment, compound assignment, ++/--, or call. *)
and parse_expr_stmt lx env fs : stmt =
  let p, e = parse_expr lx env fs in
  match peek lx with
  | PUNCT "=" ->
    advance lx;
    check_assignable lx e;
    let p2, rhs = parse_expr lx env fs in
    seq_stmts (p @ p2 @ [ Sassign (e, cast_to (typeof e) (decay rhs)) ])
  | PUNCT ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=")
    ->
    let ops =
      [ ("+=", Cop.Oadd); ("-=", Cop.Osub); ("*=", Cop.Omul); ("/=", Cop.Odiv);
        ("%=", Cop.Omod); ("&=", Cop.Oand); ("|=", Cop.Oor); ("^=", Cop.Oxor);
        ("<<=", Cop.Oshl); (">>=", Cop.Oshr) ]
    in
    let op =
      match peek lx with PUNCT s -> List.assoc s ops | _ -> assert false
    in
    advance lx;
    check_assignable lx e;
    let p2, rhs = parse_expr lx env fs in
    let rhs = decay rhs in
    let t = Cop.type_binop op (typeof e) (typeof rhs) in
    seq_stmts
      (p @ p2
      @ [ Sassign (e, cast_to (typeof e) (Ebinop (op, e, rhs, t))) ])
  | PUNCT ("++" | "--") ->
    let op = if peek lx = PUNCT "++" then Cop.Oadd else Cop.Osub in
    advance lx;
    check_assignable lx e;
    let one = Econst_int (1l, tint) in
    let t = Cop.type_binop op (typeof e) tint in
    seq_stmts (p @ [ Sassign (e, cast_to (typeof e) (Ebinop (op, e, one, t))) ])
  | _ ->
    (* Pure expression evaluated for side effects only: the prelude
       carries any calls; the value is dropped. *)
    seq_stmts p

and parse_block lx env fs : stmt =
  expect_punct lx "{";
  let rec go env acc =
    if eat_punct lx "}" then seq_stmts (List.rev acc)
    else begin
      let s, env' = parse_stmt lx env fs in
      go env' (s :: acc)
    end
  in
  go env []

(** {1 Top level} *)

(* Global initializers: constant expressions. *)
let rec const_init lx (t : ty) : Iface.Ast.init_data list =
  let const_scalar () =
    let neg = eat_punct lx "-" in
    match peek lx with
    | INT_LIT (v, _) ->
      advance lx;
      let v = if neg then Int64.neg v else v in
      (match t with
      | Tint (I8, _) -> [ Iface.Ast.Init_int8 (Int64.to_int32 v) ]
      | Tint (I16, _) -> [ Iface.Ast.Init_int16 (Int64.to_int32 v) ]
      | Tint (I32, _) -> [ Iface.Ast.Init_int32 (Int64.to_int32 v) ]
      | Tlong _ | Tpointer _ -> [ Iface.Ast.Init_int64 v ]
      | Tfloat -> [ Iface.Ast.Init_float64 (Int64.to_float v) ]
      | Tsingle -> [ Iface.Ast.Init_float32 (Int64.to_float v) ]
      | _ -> err lx "bad initializer")
    | FLOAT_LIT (f, _) ->
      advance lx;
      let f = if neg then -.f else f in
      (match t with
      | Tfloat -> [ Iface.Ast.Init_float64 f ]
      | Tsingle -> [ Iface.Ast.Init_float32 f ]
      | _ -> err lx "bad float initializer")
    | PUNCT "&" ->
      advance lx;
      let name = expect_ident lx in
      [ Iface.Ast.Init_addrof (Ident.intern name, 0) ]
    | tok -> err lx "unsupported initializer %a" pp_token tok
  in
  match t with
  | Tarray (te, n) ->
    expect_punct lx "{";
    let rec go i acc =
      if eat_punct lx "}" then (i, acc)
      else begin
        let d = const_init lx te in
        let acc = acc @ d in
        let i = i + 1 in
        if eat_punct lx "," then
          if eat_punct lx "}" then (i, acc) else go i acc
        else begin
          expect_punct lx "}";
          (i, acc)
        end
      end
    in
    let filled, data = go 0 [] in
    if filled > n then err lx "too many array initializers";
    data
    @ (if filled < n then [ Iface.Ast.Init_space ((n - filled) * sizeof te) ]
       else [])
  | _ -> const_scalar ()

let parse_program (src : string) : Csyntax.program =
  let lx = tokenize src in
  let globals = ref Ident.Map.empty in
  let defs = ref [] in
  (* A function definition replaces its earlier prototype, so that each
     symbol has a single entry in the program. *)
  let add_def id d =
    match (List.assoc_opt id !defs, d) with
    | Some (Iface.Ast.Gfun (Iface.Ast.External _)), Iface.Ast.Gfun (Iface.Ast.Internal _)
      ->
      defs :=
        List.map (fun (id', d') -> if Ident.equal id id' then (id, d) else (id', d')) !defs
    | Some _, _ -> err lx "duplicate definition of %s" (Ident.name id)
    | None, _ -> defs := !defs @ [ (id, d) ]
  in
  while peek lx <> EOF do
    let _ = eat_kw lx "extern" in
    let _ = eat_kw lx "static" in
    let bt, readonly = parse_base_type lx in
    let t0 = parse_pointers lx bt in
    let name = expect_ident lx in
    let id = Ident.intern name in
    if peek lx = PUNCT "(" then begin
      (* function definition or prototype *)
      let params = parse_params lx in
      let targs = List.map snd params in
      let ftype = Tfunction (targs, t0) in
      globals := Ident.Map.add id ftype !globals;
      if eat_punct lx ";" then
        add_def id
          (Iface.Ast.Gfun
             (Iface.Ast.External
                { Iface.Ast.ef_name = id; ef_sig = signature_of_type targs t0 }))
      else begin
        let params =
          List.map
            (fun (n, t) ->
              if n = "" then err lx "parameter name required in definition"
              else (Ident.intern n, t))
            params
        in
        let fs = { vars = []; temps = [] } in
        let env =
          {
            locals =
              List.fold_left
                (fun m (pid, pt) -> Ident.Map.add pid pt m)
                Ident.Map.empty params;
            globals = !globals;
          }
        in
        let body = parse_block lx env fs in
        let f =
          {
            fn_return = t0;
            fn_params = params;
            fn_vars = List.rev fs.vars;
            fn_temps = List.rev fs.temps;
            fn_body = body;
          }
        in
        add_def id (Iface.Ast.Gfun (Iface.Ast.Internal f))
      end
    end
    else begin
      (* global variable(s): [T x = e, y, z = e;] *)
      let rec declare id t0 =
        let t = parse_array_suffix lx t0 in
        globals := Ident.Map.add id t !globals;
        let init =
          if eat_punct lx "=" then const_init lx t
          else [ Iface.Ast.Init_space (sizeof t) ]
        in
        add_def id
          (Iface.Ast.Gvar
             { Iface.Ast.gvar_info = t; gvar_init = init; gvar_readonly = readonly });
        if eat_punct lx "," then begin
          let t' = parse_pointers lx bt in
          let name' = expect_ident lx in
          declare (Ident.intern name') t'
        end
        else expect_punct lx ";"
      in
      declare id t0
    end
  done;
  { Iface.Ast.prog_defs = !defs; prog_main = Ident.intern "main" }
