(** Csharpminor: untyped expressions with explicit memory chunks, and
    block/exit control flow (CompCert's [Csharpminor]).

    Local variables have explicit byte sizes and live in per-variable
    memory blocks; temporaries live in a register-like environment.
    Structured [break]/[continue] are encoded with [Sblock]/[Sexit]. *)

open Support
open Memory
open Memory.Mtypes
open Memory.Values
open Memory.Memdata
open Iface
open Iface.Li

type constant =
  | Ointconst of int32
  | Olongconst of int64
  | Ofloatconst of float
  | Osingleconst of float

type expr =
  | Evar of Ident.t  (** temporary *)
  | Eaddrof of Ident.t  (** address of local variable or global symbol *)
  | Econst of constant
  | Eunop of Cmops.unary_operation * expr
  | Ebinop of Cmops.binary_operation * expr * expr
  | Eload of chunk * expr

type stmt =
  | Sskip
  | Sset of Ident.t * expr
  | Sstore of chunk * expr * expr
  | Scall of Ident.t option * signature * expr * expr list
  | Sseq of stmt * stmt
  | Sifthenelse of expr * stmt * stmt
  | Sloop of stmt
  | Sblock of stmt
  | Sexit of int
  | Sreturn of expr option

type coq_function = {
  fn_sig : signature;
  fn_params : Ident.t list;
  fn_vars : (Ident.t * int) list;  (** memory-resident, with byte sizes *)
  fn_temps : Ident.t list;
  fn_body : stmt;
}

type program = (coq_function, unit) Ast.program

let internal_sig f = f.fn_sig
let link p1 p2 = Ast.link ~internal_sig p1 p2

(** {1 Semantics} *)

type env = (block * int) Ident.Map.t
type temp_env = value Ident.Map.t

type cont =
  | Kstop
  | Kseq of stmt * cont
  | Kblock of cont
  | Kcall of Ident.t option * coq_function * env * temp_env * cont

type state =
  | State of coq_function * stmt * cont * env * temp_env * Mem.t
  | Callstate of value * signature * value list * cont * Mem.t
  | Returnstate of value * cont * Mem.t

type genv = (coq_function, unit) Genv.t

let rec call_cont = function
  | Kseq (_, k) | Kblock k -> call_cont k
  | (Kstop | Kcall _) as k -> k

let rec eval_expr (ge : genv) (e : env) (le : temp_env) (m : Mem.t) (a : expr) :
    value option =
  match a with
  | Evar id -> Ident.Map.find_opt id le
  | Eaddrof id -> (
    match Ident.Map.find_opt id e with
    | Some (b, _) -> Some (Vptr (b, 0))
    | None -> (
      match Genv.find_symbol ge id with
      | Some b -> Some (Vptr (b, 0))
      | None -> None))
  | Econst (Ointconst n) -> Some (Vint n)
  | Econst (Olongconst n) -> Some (Vlong n)
  | Econst (Ofloatconst f) -> Some (Vfloat f)
  | Econst (Osingleconst f) -> Some (Vsingle f)
  | Eunop (op, a1) -> (
    match eval_expr ge e le m a1 with
    | Some v -> Cmops.eval_unop op v
    | None -> None)
  | Ebinop (op, a1, a2) -> (
    match (eval_expr ge e le m a1, eval_expr ge e le m a2) with
    | Some v1, Some v2 -> Cmops.eval_binop op v1 v2 m
    | _ -> None)
  | Eload (chunk, a1) -> (
    match eval_expr ge e le m a1 with
    | Some va -> Mem.loadv chunk m va
    | None -> None)

let eval_exprlist ge e le m al =
  List.fold_right
    (fun a acc ->
      match (eval_expr ge e le m a, acc) with
      | Some v, Some vs -> Some (v :: vs)
      | _ -> None)
    al (Some [])

let alloc_variables m vars =
  List.fold_left
    (fun (e, m) (id, sz) ->
      let m, b = Mem.alloc m 0 sz in
      (Ident.Map.add id (b, sz) e, m))
    (Ident.Map.empty, m) vars

let blocks_of_env (e : env) =
  Ident.Map.fold (fun _ (b, sz) acc -> (b, 0, sz) :: acc) e []

let step (ge : genv) (s : state) : (Core.Events.trace * state) list =
  let ret s' = [ (Core.Events.e0, s') ] in
  match s with
  | State (f, stmt, k, e, le, m) -> (
    match stmt with
    | Sskip -> (
      match k with
      | Kseq (s2, k') -> ret (State (f, s2, k', e, le, m))
      | Kblock k' -> ret (State (f, Sskip, k', e, le, m))
      | Kcall _ | Kstop -> (
        if f.fn_sig.sig_res <> None then []
        else
          match Mem.free_list m (blocks_of_env e) with
          | Some m' -> ret (Returnstate (Vundef, k, m'))
          | None -> []))
    | Sset (id, a) -> (
      match eval_expr ge e le m a with
      | Some v -> ret (State (f, Sskip, k, e, Ident.Map.add id v le, m))
      | None -> [])
    | Sstore (chunk, addr, a) -> (
      match (eval_expr ge e le m addr, eval_expr ge e le m a) with
      | Some vaddr, Some v -> (
        match Mem.storev chunk m vaddr v with
        | Some m' -> ret (State (f, Sskip, k, e, le, m'))
        | None -> [])
      | _ -> [])
    | Scall (optid, sg, a, args) -> (
      match (eval_expr ge e le m a, eval_exprlist ge e le m args) with
      | Some vf, Some vargs ->
        ret (Callstate (vf, sg, vargs, Kcall (optid, f, e, le, k), m))
      | _ -> [])
    | Sseq (s1, s2) -> ret (State (f, s1, Kseq (s2, k), e, le, m))
    | Sifthenelse (a, s1, s2) -> (
      match eval_expr ge e le m a with
      | Some (Vint n) -> ret (State (f, (if n <> 0l then s1 else s2), k, e, le, m))
      | _ -> [])
    | Sloop s1 -> ret (State (f, s1, Kseq (Sloop s1, k), e, le, m))
    | Sblock s1 -> ret (State (f, s1, Kblock k, e, le, m))
    | Sexit n -> (
      match k with
      | Kseq (_, k') -> ret (State (f, Sexit n, k', e, le, m))
      | Kblock k' ->
        if n = 0 then ret (State (f, Sskip, k', e, le, m))
        else ret (State (f, Sexit (n - 1), k', e, le, m))
      | _ -> [])
    | Sreturn None -> (
      match Mem.free_list m (blocks_of_env e) with
      | Some m' -> ret (Returnstate (Vundef, call_cont k, m'))
      | None -> [])
    | Sreturn (Some a) -> (
      match eval_expr ge e le m a with
      | Some v -> (
        match Mem.free_list m (blocks_of_env e) with
        | Some m' -> ret (Returnstate (v, call_cont k, m'))
        | None -> [])
      | None -> []))
  | Callstate (vf, sg, args, k, m) -> (
    match Genv.find_funct ge vf with
    | Some (Ast.Internal f) ->
      if not (signature_equal sg f.fn_sig) then []
      else if List.length f.fn_params <> List.length args then []
      else
        let e, m1 = alloc_variables m f.fn_vars in
        let le =
          List.fold_left
            (fun le id -> Ident.Map.add id Vundef le)
            Ident.Map.empty f.fn_temps
        in
        let le =
          List.fold_left2
            (fun le id v -> Ident.Map.add id v le)
            le f.fn_params args
        in
        ret (State (f, f.fn_body, k, e, le, m1))
    | Some (Ast.External _) | None -> [])
  | Returnstate (v, k, m) -> (
    match k with
    | Kcall (optid, f, e, le, k') ->
      let le' = match optid with Some id -> Ident.Map.add id v le | None -> le in
      ret (State (f, Sskip, k', e, le', m))
    | _ -> [])

let semantics ~(symbols : Ident.t list) (p : program) :
    (state, c_query, c_reply, c_query, c_reply) Core.Smallstep.lts =
  let ge = Genv.globalenv ~symbols p in
  {
    Core.Smallstep.name = "Csharpminor";
    dom =
      (fun q ->
        match Genv.find_funct ge q.cq_vf with
        | Some (Ast.Internal f) -> signature_equal q.cq_sg f.fn_sig
        | _ -> false);
    init = (fun q -> [ Callstate (q.cq_vf, q.cq_sg, q.cq_args, Kstop, q.cq_mem) ]);
    step = (fun s -> step ge s);
    at_external =
      (fun s ->
        match s with
        | Callstate (vf, sg, args, _, m) when Genv.plausible_funct ge vf && not (Genv.defines_internal ge vf) ->
          Some { cq_vf = vf; cq_sg = sg; cq_args = args; cq_mem = m }
        | _ -> None);
    after_external =
      (fun s r ->
        match s with
        | Callstate (_, _, _, k, _) -> [ Returnstate (r.cr_res, k, r.cr_mem) ]
        | _ -> []);
    final =
      (fun s ->
        match s with
        | Returnstate (v, Kstop, m) -> Some { cr_res = v; cr_mem = m }
        | _ -> None);
  }
