(** Hand-written lexer for the C subset. *)

type token =
  | INT_LIT of int64 * [ `I | `U | `L | `UL ]
  | FLOAT_LIT of float * [ `F | `D ]
  | IDENT of string
  | KW of string  (** keywords: int, long, char, ... *)
  | PUNCT of string  (** operators and punctuation *)
  | EOF

type t = { tokens : (token * int) array; mutable pos : int }
(** token stream with line numbers *)

exception Lex_error of string * int

let keywords =
  [ "int"; "long"; "char"; "short"; "unsigned"; "signed"; "double"; "float";
    "void"; "if"; "else"; "while"; "for"; "do"; "return"; "break"; "continue";
    "extern"; "const"; "static"; "sizeof" ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let three_char_ops = [ "<<="; ">>=" ]

let two_char_ops =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "++"; "--"; "->" ]

let tokenize (src : string) : t =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit tok = toks := (tok, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then raise (Lex_error ("unterminated comment", !line))
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          fin := true
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then i := !i + 2;
      let isfloat = ref false in
      let valid = if hex then is_hex else is_digit in
      while !i < n && (valid src.[!i] || (not hex && (src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E'
                                                     || ((src.[!i] = '+' || src.[!i] = '-')
                                                        && (src.[!i-1] = 'e' || src.[!i-1] = 'E'))))) do
        if src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E' then isfloat := true;
        incr i
      done;
      let text = String.sub src start (!i - start) in
      if !isfloat then begin
        let suffix =
          if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then begin incr i; `F end
          else `D
        in
        emit (FLOAT_LIT (float_of_string text, suffix))
      end
      else begin
        let u = ref false and l = ref false in
        let continue_suffix = ref true in
        while !continue_suffix && !i < n do
          match src.[!i] with
          | 'u' | 'U' -> u := true; incr i
          | 'l' | 'L' -> l := true; incr i
          | _ -> continue_suffix := false
        done;
        let v = Int64.of_string text in
        let suffix =
          match (!u, !l) with
          | false, false -> `I
          | true, false -> `U
          | false, true -> `L
          | true, true -> `UL
        in
        emit (INT_LIT (v, suffix))
      end
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      if List.mem text keywords then emit (KW text) else emit (IDENT text)
    end
    else if c = '\'' then begin
      (* character literal *)
      incr i;
      if !i >= n then raise (Lex_error ("unterminated char literal", !line));
      let v =
        if src.[!i] = '\\' then begin
          incr i;
          let e = src.[!i] in
          incr i;
          match e with
          | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0 | '\\' -> 92 | '\'' -> 39
          | c -> Char.code c
        end
        else begin
          let v = Char.code src.[!i] in
          incr i;
          v
        end
      in
      if !i >= n || src.[!i] <> '\'' then raise (Lex_error ("bad char literal", !line));
      incr i;
      emit (INT_LIT (Int64.of_int v, `I))
    end
    else begin
      let try_op len list =
        if !i + len <= n then
          let s = String.sub src !i len in
          if List.mem s list then Some s else None
        else None
      in
      match try_op 3 three_char_ops with
      | Some s -> emit (PUNCT s); i := !i + 3
      | None -> (
        match try_op 2 two_char_ops with
        | Some s -> emit (PUNCT s); i := !i + 2
        | None ->
          (match c with
          | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '!' | '~' | '&'
          | '|' | '^' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '?'
          | ':' | '.' ->
            emit (PUNCT (String.make 1 c));
            incr i
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))))
    end
  done;
  toks := (EOF, !line) :: !toks;
  { tokens = Array.of_list (List.rev !toks); pos = 0 }

let peek (lx : t) = fst lx.tokens.(lx.pos)
let peek2 (lx : t) =
  if lx.pos + 1 < Array.length lx.tokens then fst lx.tokens.(lx.pos + 1) else EOF
let line (lx : t) = snd lx.tokens.(lx.pos)
let advance (lx : t) = if lx.pos + 1 < Array.length lx.tokens then lx.pos <- lx.pos + 1

let pp_token fmt = function
  | INT_LIT (n, _) -> Format.fprintf fmt "%Ld" n
  | FLOAT_LIT (f, _) -> Format.fprintf fmt "%g" f
  | IDENT s -> Format.fprintf fmt "identifier %s" s
  | KW s -> Format.fprintf fmt "keyword %s" s
  | PUNCT s -> Format.fprintf fmt "'%s'" s
  | EOF -> Format.fprintf fmt "end of file"
