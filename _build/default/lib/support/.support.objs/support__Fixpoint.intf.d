lib/support/fixpoint.mli:
