lib/support/pp_util.ml: Array Buffer Format List String
