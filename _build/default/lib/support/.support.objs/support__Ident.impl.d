lib/support/ident.ml: Format Hashtbl Int Map Printf Set
