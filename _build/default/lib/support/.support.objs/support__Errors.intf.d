lib/support/errors.mli: Format
