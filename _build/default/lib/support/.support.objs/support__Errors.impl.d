lib/support/errors.ml: Format
