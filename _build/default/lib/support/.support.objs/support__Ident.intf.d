lib/support/ident.mli: Format Hashtbl Map Set
