lib/support/fixpoint.ml: Hashtbl List Option Queue
