(** Pretty-printing helpers shared by all language printers. *)

let pp_list ?(sep = ", ") pp fmt xs =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt sep)
    pp fmt xs

let pp_comma_list pp fmt xs =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp fmt xs

let pp_semi_list pp fmt xs =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp fmt xs

let to_string pp x = Format.asprintf "%a" pp x

(** Print a table as aligned columns, used by the benchmark harness to
    regenerate the paper's tables. [rows] are lists of cells; the first row
    is treated as a header when [header] is set. *)
let render_table ?(header = true) rows =
  match rows with
  | [] -> ""
  | first :: _ ->
    let ncols = List.length first in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri
          (fun i cell ->
            if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
          row)
      rows;
    let buf = Buffer.create 256 in
    let render_row row =
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf cell;
          if i < ncols - 1 then
            Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    (match rows with
    | hd :: tl when header ->
      render_row hd;
      let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
      Buffer.add_string buf (String.make total '-');
      Buffer.add_char buf '\n';
      List.iter render_row tl
    | _ -> List.iter render_row rows);
    Buffer.contents buf
