(** Generic worklist fixpoint solver over integer-indexed flow graphs
    (the analogue of CompCert's [Kildall]); used by liveness, value
    analysis and dead-code elimination. *)

module type SEMILATTICE = sig
  type t

  val bot : t
  val equal : t -> t -> bool

  (** Least upper bound; must be monotone, with finite ascending chains
      (widen in [lub] otherwise). *)
  val lub : t -> t -> t
end

module type SOLVER = sig
  type fact

  (** Forward analysis; the returned function gives the fact at the
      {e entrance} of each node. *)
  val solve :
    successors:(int -> int list) ->
    transfer:(int -> fact -> fact) ->
    entries:(int * fact) list ->
    int list ->
    int -> fact

  (** Backward analysis; the returned function gives the fact at the
      {e exit} of each node. *)
  val solve_backward :
    successors:(int -> int list) ->
    transfer:(int -> fact -> fact) ->
    entries:(int * fact) list ->
    int list ->
    int -> fact
end

module Make (L : SEMILATTICE) : SOLVER with type fact = L.t
