(** The error monad used by compiler passes (CompCert's [Errors]):
    [Ok x] or [Error message]. *)

type 'a t = ('a, string) result

val ok : 'a -> 'a t

(** [error fmt ...] builds an [Error] with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b t) format4 -> 'a

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t
val map_list : ('a -> 'b t) -> 'a list -> 'b list t
val iter_list : ('a -> unit t) -> 'a list -> unit t
val fold_list : ('a -> 'b -> 'a t) -> 'a -> 'b list -> 'a t
val of_option : msg:string -> 'a option -> 'a t

(** Extract the value; raises [Invalid_argument] on [Error] (tests and
    examples only). *)
val get : 'a t -> 'a

val is_ok : 'a t -> bool
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
