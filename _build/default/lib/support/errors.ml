(** Error monad used by compiler passes.

    Mirrors CompCert's [Errors] library: a pass either returns [OK x] or
    [Error msg]. We use OCaml's [result] with a structured message so that
    the driver can report which pass failed and why. *)

type 'a t = ('a, string) result

let ok x = Ok x
let error fmt = Format.kasprintf (fun s -> Error s) fmt

let ( let* ) m f =
  match m with
  | Ok x -> f x
  | Error _ as e -> e

let ( let+ ) m f =
  match m with
  | Ok x -> Ok (f x)
  | Error _ as e -> e

let map f m =
  match m with
  | Ok x -> Ok (f x)
  | Error _ as e -> e

let rec map_list f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_list f xs in
    Ok (y :: ys)

let rec iter_list f = function
  | [] -> Ok ()
  | x :: xs ->
    let* () = f x in
    iter_list f xs

let rec fold_list f acc = function
  | [] -> Ok acc
  | x :: xs ->
    let* acc = f acc x in
    fold_list f acc xs

let of_option ~msg = function
  | Some x -> Ok x
  | None -> Error msg

let get = function
  | Ok x -> x
  | Error msg -> invalid_arg ("Errors.get: " ^ msg)

let is_ok = function Ok _ -> true | Error _ -> false

let pp pp_ok fmt = function
  | Ok x -> pp_ok fmt x
  | Error msg -> Format.fprintf fmt "error: %s" msg
