(** Generic worklist fixpoint solver over integer-indexed flow graphs.

    This is the analogue of CompCert's [Kildall] library. Dataflow analyses
    (liveness, constant propagation, value analysis, neededness) instantiate
    the [SEMILATTICE] signature and solve either in the forward or the
    backward direction. Nodes are plain integers (RTL nodes, Linear labels). *)

module type SEMILATTICE = sig
  type t

  val bot : t
  val equal : t -> t -> bool

  (** Least upper bound. Must be monotone; the solver iterates to a
      post-fixpoint and relies on finite ascending chains for termination
      (analyses with infinite-height lattices must widen in [lub]). *)
  val lub : t -> t -> t
end

module type SOLVER = sig
  type fact

  (** [solve ~successors ~transfer ~entries nodes] returns the least solution
      [s] such that for every node [n] and successor [m] of [n],
      [transfer n s(n) <= s(m)], and [v <= s(n)] for every entry [(n, v)].
      The returned function gives the fact at the *entrance* of each node. *)
  val solve :
    successors:(int -> int list) ->
    transfer:(int -> fact -> fact) ->
    entries:(int * fact) list ->
    int list ->
    int -> fact

  (** Backward analysis: facts flow from successors to predecessors. The
      returned function gives the fact at the *exit* of each node, i.e. the
      join of the transferred facts of all successors. *)
  val solve_backward :
    successors:(int -> int list) ->
    transfer:(int -> fact -> fact) ->
    entries:(int * fact) list ->
    int list ->
    int -> fact
end

module Make (L : SEMILATTICE) : SOLVER with type fact = L.t = struct
  type fact = L.t

  let solve ~successors ~transfer ~entries nodes =
    let value : (int, L.t) Hashtbl.t = Hashtbl.create 64 in
    let get n = Option.value (Hashtbl.find_opt value n) ~default:L.bot in
    let queue = Queue.create () in
    let in_queue : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let enqueue n =
      if not (Hashtbl.mem in_queue n) then begin
        Hashtbl.add in_queue n ();
        Queue.add n queue
      end
    in
    let augment n v =
      let old = get n in
      let merged = L.lub old v in
      if not (L.equal old merged) then begin
        Hashtbl.replace value n merged;
        enqueue n
      end
    in
    List.iter (fun (n, v) -> augment n v) entries;
    (* Seed every node once so unreachable nodes still get [bot] and
       self-stabilize. *)
    List.iter enqueue nodes;
    let rec loop () =
      match Queue.take_opt queue with
      | None -> ()
      | Some n ->
        Hashtbl.remove in_queue n;
        let out = transfer n (get n) in
        List.iter (fun m -> augment m out) (successors n);
        loop ()
    in
    loop ();
    get

  let solve_backward ~successors ~transfer ~entries nodes =
    (* Invert the graph, then run the forward engine on it. *)
    let preds : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun n ->
        List.iter
          (fun m ->
            let cur = Option.value (Hashtbl.find_opt preds m) ~default:[] in
            Hashtbl.replace preds m (n :: cur))
          (successors n))
      nodes;
    let value : (int, L.t) Hashtbl.t = Hashtbl.create 64 in
    let get n = Option.value (Hashtbl.find_opt value n) ~default:L.bot in
    let queue = Queue.create () in
    let in_queue : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let enqueue n =
      if not (Hashtbl.mem in_queue n) then begin
        Hashtbl.add in_queue n ();
        Queue.add n queue
      end
    in
    let augment n v =
      let old = get n in
      let merged = L.lub old v in
      if not (L.equal old merged) then begin
        Hashtbl.replace value n merged;
        enqueue n
      end
    in
    List.iter (fun (n, v) -> augment n v) entries;
    List.iter enqueue nodes;
    let rec loop () =
      match Queue.take_opt queue with
      | None -> ()
      | Some n ->
        Hashtbl.remove in_queue n;
        let out = transfer n (get n) in
        let ps = Option.value (Hashtbl.find_opt preds n) ~default:[] in
        List.iter (fun p -> augment p out) ps;
        loop ()
    in
    loop ();
    get
end
