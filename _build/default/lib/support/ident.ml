(** Interned identifiers.

    All languages in the pipeline refer to functions, global variables and
    temporaries through identifiers. We intern strings into integers so that
    identifier comparison is O(1) and identifiers can index efficient maps,
    while retaining a way to print the original name. Fresh identifiers (for
    compiler-generated temporaries) are allocated past the interned ones and
    print as [$n]. *)

type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 64
let names : (int, string) Hashtbl.t = Hashtbl.create 64
let next = ref 1

let intern s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    Hashtbl.add table s id;
    Hashtbl.add names id s;
    id

let fresh () =
  let id = !next in
  incr next;
  id

let fresh_named prefix =
  let id = !next in
  incr next;
  Hashtbl.add names id (Printf.sprintf "%s$%d" prefix id);
  id

let name id =
  match Hashtbl.find_opt names id with
  | Some s -> s
  | None -> Printf.sprintf "$%d" id

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp fmt id = Format.pp_print_string fmt (name id)

module Map = Map.Make (Int)
module Set = Set.Make (Int)
module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
