(** Interned identifiers: O(1) comparison, efficient maps, printable
    names. Fresh identifiers (compiler temporaries) are allocated past
    the interned ones. *)

type t = int

(** Intern a source-level name (idempotent). *)
val intern : string -> t

(** A fresh identifier, never equal to any interned one. *)
val fresh : unit -> t

(** A fresh identifier printing as [prefix$n]. *)
val fresh_named : string -> t

(** The name an identifier prints as. *)
val name : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
