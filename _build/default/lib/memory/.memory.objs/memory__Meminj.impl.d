lib/memory/meminj.ml: Format Int List Map Mem Memdata Values
