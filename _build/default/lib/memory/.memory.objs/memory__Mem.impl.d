lib/memory/mem.ml: Format Int List Map Memdata Option Values
