lib/memory/values.ml: Float Format Int32 Int64 List Mtypes
