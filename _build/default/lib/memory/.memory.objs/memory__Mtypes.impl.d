lib/memory/mtypes.ml: Format List Option
