lib/memory/mem.mli: Format Memdata Values
