lib/memory/meminj.mli: Format Map Mem Memdata Values
