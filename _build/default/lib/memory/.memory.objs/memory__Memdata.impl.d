lib/memory/memdata.ml: Format Int32 Int64 List Mtypes Values
