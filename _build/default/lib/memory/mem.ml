(** The CompCert memory model (paper §3.1, Fig. 4).

    A memory state is a finite collection of blocks. Each block has bounds
    [lo, hi), per-offset permissions, and per-offset contents ([Memdata.memval]).
    The model is purely functional: every operation returns a new memory
    state. Operations are partial exactly where CompCert's are: [load] and
    [store] require permissions and alignment, [free] requires [Freeable]
    permission over the whole range.

    Permissions form a total order [Nonempty < Readable < Writable <
    Freeable]; an offset with no permission entry is inaccessible. Per-offset
    permissions are what later allows the [LM] simulation convention to carve
    the argument region out of a stack block (paper, Appendix C.2, Fig. 13). *)

open Values
open Memdata

type permission = Nonempty | Readable | Writable | Freeable

let perm_rank = function
  | Nonempty -> 0
  | Readable -> 1
  | Writable -> 2
  | Freeable -> 3

(** [perm_order p1 p2]: permission [p1] implies permission [p2]. *)
let perm_order p1 p2 = perm_rank p1 >= perm_rank p2

let pp_permission fmt p =
  Format.pp_print_string fmt
    (match p with
    | Nonempty -> "nonempty"
    | Readable -> "readable"
    | Writable -> "writable"
    | Freeable -> "freeable")

module IMap = Map.Make (Int)

type block_info = {
  lo : int;
  hi : int;
  contents : memval IMap.t;  (** default [Undef] *)
  perms : permission IMap.t;  (** absent = no permission *)
}

type t = { next_block : block; blocks : block_info IMap.t }

let empty = { next_block = 1; blocks = IMap.empty }

let nextblock m = m.next_block
let valid_block m b = b > 0 && b < m.next_block && IMap.mem b m.blocks

let block_bounds m b =
  match IMap.find_opt b m.blocks with
  | Some bi -> Some (bi.lo, bi.hi)
  | None -> None

(** {1 Permissions} *)

let perm m b ofs p =
  match IMap.find_opt b m.blocks with
  | None -> false
  | Some bi -> (
    match IMap.find_opt ofs bi.perms with
    | None -> false
    | Some p' -> perm_order p' p)

let range_perm m b lo hi p =
  let rec go ofs = ofs >= hi || (perm m b ofs p && go (ofs + 1)) in
  go lo

let valid_pointer m b ofs = perm m b ofs Nonempty

(* Weak validity: valid or one-past-the-end, as used by pointer
   comparisons. *)
let weak_valid_pointer m b ofs =
  valid_pointer m b ofs || valid_pointer m b (ofs - 1)

(** {1 Allocation and deallocation} *)

let alloc m lo hi =
  let b = m.next_block in
  let perms =
    let rec fill ofs acc =
      if ofs >= hi then acc else fill (ofs + 1) (IMap.add ofs Freeable acc)
    in
    fill lo IMap.empty
  in
  let bi = { lo; hi; contents = IMap.empty; perms } in
  ({ next_block = b + 1; blocks = IMap.add b bi m.blocks }, b)

let free m b lo hi =
  if lo >= hi then Some m
  else if not (range_perm m b lo hi Freeable) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi ->
      let rec clear ofs perms =
        if ofs >= hi then perms else clear (ofs + 1) (IMap.remove ofs perms)
      in
      let bi = { bi with perms = clear lo bi.perms } in
      Some { m with blocks = IMap.add b bi m.blocks }

let rec free_list m = function
  | [] -> Some m
  | (b, lo, hi) :: rest -> (
    match free m b lo hi with None -> None | Some m' -> free_list m' rest)

(** Remove permissions on [b, lo..hi) entirely (used by [LM.free_args]). *)
let drop_range m b lo hi = free m b lo hi

(** Restrict permissions on a range to at most [p]. *)
let drop_perm m b lo hi p =
  if not (range_perm m b lo hi p) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi ->
      let rec set ofs perms =
        if ofs >= hi then perms else set (ofs + 1) (IMap.add ofs p perms)
      in
      let bi = { bi with perms = set lo bi.perms } in
      Some { m with blocks = IMap.add b bi m.blocks }

(** Re-grant permission [p] on a range (used by [LM.mix] to restore the
    argument region after an external call returns). *)
let grant_perm m b lo hi p =
  match IMap.find_opt b m.blocks with
  | None -> None
  | Some bi ->
    let rec set ofs perms =
      if ofs >= hi then perms else set (ofs + 1) (IMap.add ofs p perms)
    in
    let bi = { bi with perms = set lo bi.perms } in
    Some { m with blocks = IMap.add b bi m.blocks }

(** {1 Loads and stores} *)

let getN bi ofs n =
  List.init n (fun i ->
      Option.value (IMap.find_opt (ofs + i) bi.contents) ~default:Undef)

let setN bi ofs mvl =
  let contents, _ =
    List.fold_left
      (fun (c, i) mv -> (IMap.add (ofs + i) mv c, i + 1))
      (bi.contents, 0) mvl
  in
  { bi with contents }

let aligned chunk ofs = ofs mod align_chunk chunk = 0

let loadbytes m b ofs n =
  if n < 0 then None
  else if not (range_perm m b ofs (ofs + n) Readable) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi -> Some (getN bi ofs n)

let storebytes m b ofs mvl =
  let n = List.length mvl in
  if not (range_perm m b ofs (ofs + n) Writable) then None
  else
    match IMap.find_opt b m.blocks with
    | None -> None
    | Some bi ->
      Some { m with blocks = IMap.add b (setN bi ofs mvl) m.blocks }

let load chunk m b ofs =
  if not (aligned chunk ofs) then None
  else
    match loadbytes m b ofs (size_chunk chunk) with
    | None -> None
    | Some mvl -> Some (decode_val chunk mvl)

let store chunk m b ofs v =
  if not (aligned chunk ofs) then None
  else if not (range_perm m b ofs (ofs + size_chunk chunk) Writable) then None
  else storebytes m b ofs (encode_val chunk v)

let loadv chunk m = function
  | Vptr (b, ofs) -> load chunk m b ofs
  | _ -> None

let storev chunk m a v =
  match a with Vptr (b, ofs) -> store chunk m b ofs v | _ -> None

(** {1 Observation helpers used by relational checks} *)

(** All (block, offset) pairs that hold at least [Nonempty] permission.
    Only used by bounded relational checks in tests; memories there are
    small. *)
let fold_live_offsets m f acc =
  IMap.fold
    (fun b bi acc ->
      IMap.fold (fun ofs _ acc -> f b ofs acc) bi.perms acc)
    m.blocks acc

let contents_at m b ofs =
  match IMap.find_opt b m.blocks with
  | None -> Undef
  | Some bi -> Option.value (IMap.find_opt ofs bi.contents) ~default:Undef

let perm_at m b ofs =
  match IMap.find_opt b m.blocks with
  | None -> None
  | Some bi -> IMap.find_opt ofs bi.perms

(** [unchanged_on pred m m'] holds when every location satisfying [pred]
    keeps its permission and contents from [m] to [m']. This is CompCert's
    [Mem.unchanged_on], the workhorse of the [injp] accessibility relation
    (paper, Fig. 9). *)
let unchanged_on (pred : block -> int -> bool) m m' =
  m.next_block <= m'.next_block
  && fold_live_offsets m
       (fun b ofs ok ->
         ok
         && ((not (pred b ofs))
            || perm_at m b ofs = perm_at m' b ofs
               && contents_at m b ofs = contents_at m' b ofs))
       true

let equal m1 m2 =
  m1.next_block = m2.next_block
  && IMap.equal
       (fun b1 b2 ->
         b1.lo = b2.lo && b1.hi = b2.hi
         && IMap.equal ( = ) b1.contents b2.contents
         && IMap.equal ( = ) b1.perms b2.perms)
       m1.blocks m2.blocks

let pp fmt m =
  Format.fprintf fmt "@[<v>mem (next=b%d)" m.next_block;
  IMap.iter
    (fun b bi -> Format.fprintf fmt "@ b%d: [%d,%d)" b bi.lo bi.hi)
    m.blocks;
  Format.fprintf fmt "@]"
