(** Runtime values and their operations (CompCert's [Values] library).

    A value is either an undefined value [Vundef], a 32- or 64-bit machine
    integer, a double- or single-precision float, or a pointer [Vptr (b, o)]
    into block [b] of the memory model at byte offset [o]. On our 64-bit
    target, pointers participate in 64-bit ("long") arithmetic. *)

open Mtypes

type block = int

let pp_block fmt b = Format.fprintf fmt "b%d" b

type value =
  | Vundef
  | Vint of int32
  | Vlong of int64
  | Vfloat of float  (** double precision *)
  | Vsingle of float  (** single precision, kept 32-bit-rounded *)
  | Vptr of block * int

let vtrue = Vint 1l
let vfalse = Vint 0l
let of_bool b = if b then vtrue else vfalse
let vzero = Vint 0l
let vzerol = Vlong 0L

(* Null pointers are represented as the 64-bit integer 0, as on a 64-bit
   CompCert target. *)
let vnullptr = Vlong 0L

let pp fmt = function
  | Vundef -> Format.pp_print_string fmt "undef"
  | Vint n -> Format.fprintf fmt "%ld" n
  | Vlong n -> Format.fprintf fmt "%LdL" n
  | Vfloat f -> Format.fprintf fmt "%g" f
  | Vsingle f -> Format.fprintf fmt "%gf" f
  | Vptr (b, o) -> Format.fprintf fmt "&b%d+%d" b o

let to_string v = Format.asprintf "%a" pp v

let equal (a : value) (b : value) = a = b

(** Round a float to single precision. *)
let to_single f = Int32.float_of_bits (Int32.bits_of_float f)

(** {1 Typing} *)

let has_type v t =
  match (v, t) with
  | Vundef, _ -> true
  | _, Tany64 -> true
  | Vint _, Tint -> true
  | Vlong _, Tlong -> true
  | Vptr _, Tlong -> true
  | Vfloat _, Tfloat -> true
  | Vsingle _, Tsingle -> true
  | _ -> false

let has_type_list vs ts =
  List.length vs = List.length ts && List.for_all2 has_type vs ts

let has_rettype v = function
  | Some t -> has_type v t
  | None -> true

(** {1 Value refinement}

    [lessdef v1 v2] is the refinement order [≤v] of the paper (§3.1):
    [Vundef] may be refined into any value. *)

let lessdef v1 v2 = v1 = Vundef || v1 = v2
let lessdef_list l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 lessdef l1 l2

(** {1 32-bit integer arithmetic} *)

let add v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Vint (Int32.add a b)
  | _ -> Vundef

let sub v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Vint (Int32.sub a b)
  | _ -> Vundef

let mul v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Vint (Int32.mul a b)
  | _ -> Vundef

let neg = function Vint a -> Vint (Int32.neg a) | _ -> Vundef

(* Division and modulus are partial: division by zero and the overflowing
   [min_int / -1] yield [None], mirroring CompCert. *)
let divs v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b ->
    if b = 0l || (a = Int32.min_int && b = -1l) then None
    else Some (Vint (Int32.div a b))
  | _ -> None

let mods v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b ->
    if b = 0l || (a = Int32.min_int && b = -1l) then None
    else Some (Vint (Int32.rem a b))
  | _ -> None

let divu v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b ->
    if b = 0l then None else Some (Vint (Int32.unsigned_div a b))
  | _ -> None

let modu v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b ->
    if b = 0l then None else Some (Vint (Int32.unsigned_rem a b))
  | _ -> None

let and_ v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Vint (Int32.logand a b)
  | _ -> Vundef

let or_ v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Vint (Int32.logor a b)
  | _ -> Vundef

let xor v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Vint (Int32.logxor a b)
  | _ -> Vundef

let notint = function Vint a -> Vint (Int32.lognot a) | _ -> Vundef

let shl v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b when Int32.unsigned_to_int b <> None && Int32.to_int b < 32 ->
    Vint (Int32.shift_left a (Int32.to_int b))
  | _ -> Vundef

let shr v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b when Int32.unsigned_to_int b <> None && Int32.to_int b < 32 ->
    Vint (Int32.shift_right a (Int32.to_int b))
  | _ -> Vundef

let shru v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b when Int32.unsigned_to_int b <> None && Int32.to_int b < 32 ->
    Vint (Int32.shift_right_logical a (Int32.to_int b))
  | _ -> Vundef

(** Sign/zero extensions used by small-integer loads and casts. *)
let sign_ext nbits = function
  | Vint a ->
    let shift = 32 - nbits in
    Vint (Int32.shift_right (Int32.shift_left a shift) shift)
  | _ -> Vundef

let zero_ext nbits = function
  | Vint a ->
    let shift = 32 - nbits in
    Vint (Int32.shift_right_logical (Int32.shift_left a shift) shift)
  | _ -> Vundef

(** {1 64-bit integer and pointer arithmetic} *)

let addl v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Vlong (Int64.add a b)
  | Vptr (b, o), Vlong n | Vlong n, Vptr (b, o) -> Vptr (b, o + Int64.to_int n)
  | _ -> Vundef

let subl v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Vlong (Int64.sub a b)
  | Vptr (b, o), Vlong n -> Vptr (b, o - Int64.to_int n)
  | Vptr (b1, o1), Vptr (b2, o2) when b1 = b2 -> Vlong (Int64.of_int (o1 - o2))
  | _ -> Vundef

let mull v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Vlong (Int64.mul a b)
  | _ -> Vundef

let negl = function Vlong a -> Vlong (Int64.neg a) | _ -> Vundef

let divls v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b ->
    if b = 0L || (a = Int64.min_int && b = -1L) then None
    else Some (Vlong (Int64.div a b))
  | _ -> None

let modls v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b ->
    if b = 0L || (a = Int64.min_int && b = -1L) then None
    else Some (Vlong (Int64.rem a b))
  | _ -> None

let divlu v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b ->
    if b = 0L then None else Some (Vlong (Int64.unsigned_div a b))
  | _ -> None

let modlu v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b ->
    if b = 0L then None else Some (Vlong (Int64.unsigned_rem a b))
  | _ -> None

let andl v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Vlong (Int64.logand a b)
  | _ -> Vundef

let orl v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Vlong (Int64.logor a b)
  | _ -> Vundef

let xorl v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Vlong (Int64.logxor a b)
  | _ -> Vundef

let notl = function Vlong a -> Vlong (Int64.lognot a) | _ -> Vundef

let shll v1 v2 =
  match (v1, v2) with
  | Vlong a, Vint b when Int32.unsigned_to_int b <> None && Int32.to_int b < 64 ->
    Vlong (Int64.shift_left a (Int32.to_int b))
  | _ -> Vundef

let shrl v1 v2 =
  match (v1, v2) with
  | Vlong a, Vint b when Int32.unsigned_to_int b <> None && Int32.to_int b < 64 ->
    Vlong (Int64.shift_right a (Int32.to_int b))
  | _ -> Vundef

let shrlu v1 v2 =
  match (v1, v2) with
  | Vlong a, Vint b when Int32.unsigned_to_int b <> None && Int32.to_int b < 64 ->
    Vlong (Int64.shift_right_logical a (Int32.to_int b))
  | _ -> Vundef

(** {1 Floating-point arithmetic} *)

let addf v1 v2 =
  match (v1, v2) with Vfloat a, Vfloat b -> Vfloat (a +. b) | _ -> Vundef

let subf v1 v2 =
  match (v1, v2) with Vfloat a, Vfloat b -> Vfloat (a -. b) | _ -> Vundef

let mulf v1 v2 =
  match (v1, v2) with Vfloat a, Vfloat b -> Vfloat (a *. b) | _ -> Vundef

let divf v1 v2 =
  match (v1, v2) with Vfloat a, Vfloat b -> Vfloat (a /. b) | _ -> Vundef

let negf = function Vfloat a -> Vfloat (-.a) | _ -> Vundef
let absf = function Vfloat a -> Vfloat (Float.abs a) | _ -> Vundef

let addfs v1 v2 =
  match (v1, v2) with
  | Vsingle a, Vsingle b -> Vsingle (to_single (a +. b))
  | _ -> Vundef

let subfs v1 v2 =
  match (v1, v2) with
  | Vsingle a, Vsingle b -> Vsingle (to_single (a -. b))
  | _ -> Vundef

let mulfs v1 v2 =
  match (v1, v2) with
  | Vsingle a, Vsingle b -> Vsingle (to_single (a *. b))
  | _ -> Vundef

let divfs v1 v2 =
  match (v1, v2) with
  | Vsingle a, Vsingle b -> Vsingle (to_single (a /. b))
  | _ -> Vundef

let negfs = function Vsingle a -> Vsingle (-.a) | _ -> Vundef

(** {1 Conversions} *)

let longofint = function
  | Vint n -> Vlong (Int64.of_int32 n)
  | _ -> Vundef

let longofintu = function
  | Vint n -> Vlong (Int64.logand (Int64.of_int32 n) 0xFFFFFFFFL)
  | _ -> Vundef

let intoflong = function Vlong n -> Vint (Int64.to_int32 n) | _ -> Vundef

let floatofint = function Vint n -> Vfloat (Int32.to_float n) | _ -> Vundef

let intoffloat = function
  | Vfloat f ->
    if Float.is_nan f || f >= 2147483648.0 || f < -2147483904.0 then None
    else Some (Vint (Int32.of_float f))
  | _ -> None

let floatoflong = function Vlong n -> Vfloat (Int64.to_float n) | _ -> Vundef

let longoffloat = function
  | Vfloat f ->
    if Float.is_nan f || f >= 9.2233720368547758e18 || f < -9.3e18 then None
    else Some (Vlong (Int64.of_float f))
  | _ -> None

let singleoffloat = function Vfloat f -> Vsingle (to_single f) | _ -> Vundef
let floatofsingle = function Vsingle f -> Vfloat f | _ -> Vundef
let singleofint = function Vint n -> Vsingle (to_single (Int32.to_float n)) | _ -> Vundef

let intofsingle = function
  | Vsingle f ->
    if Float.is_nan f || f >= 2147483648.0 || f < -2147483904.0 then None
    else Some (Vint (Int32.of_float f))
  | _ -> None

(** {1 Comparisons}

    Pointer comparisons are only defined within a common block (the paper's
    memory model is block-structured; inter-block ordering is unspecified).
    Equality across distinct blocks requires validity of both pointers,
    which is checked by the caller-provided [valid] predicate. *)

let cmp_bool_of_int c (n : int) =
  match c with
  | Ceq -> n = 0
  | Cne -> n <> 0
  | Clt -> n < 0
  | Cle -> n <= 0
  | Cgt -> n > 0
  | Cge -> n >= 0

let cmp_bool c v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Some (cmp_bool_of_int c (Int32.compare a b))
  | _ -> None

let cmpu_bool c v1 v2 =
  match (v1, v2) with
  | Vint a, Vint b -> Some (cmp_bool_of_int c (Int32.unsigned_compare a b))
  | _ -> None

let cmpl_bool c v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Some (cmp_bool_of_int c (Int64.compare a b))
  | _ -> None

let cmplu_bool ~valid c v1 v2 =
  match (v1, v2) with
  | Vlong a, Vlong b -> Some (cmp_bool_of_int c (Int64.unsigned_compare a b))
  | Vptr (b1, o1), Vptr (b2, o2) ->
    if b1 = b2 then
      if valid b1 o1 && valid b2 o2 then Some (cmp_bool_of_int c (compare o1 o2))
      else None
    else if valid b1 o1 && valid b2 o2 then
      match c with Ceq -> Some false | Cne -> Some true | _ -> None
    else None
  | Vptr (b1, o1), Vlong 0L | Vlong 0L, Vptr (b1, o1) ->
    if valid b1 o1 then
      match c with Ceq -> Some false | Cne -> Some true | _ -> None
    else None
  | _ -> None

let cmpf_bool c v1 v2 =
  match (v1, v2) with
  | Vfloat a, Vfloat b ->
    Some
      (match c with
      | Ceq -> a = b
      | Cne -> a <> b
      | Clt -> a < b
      | Cle -> a <= b
      | Cgt -> a > b
      | Cge -> a >= b)
  | _ -> None

let cmpfs_bool c v1 v2 =
  match (v1, v2) with
  | Vsingle a, Vsingle b -> cmpf_bool c (Vfloat a) (Vfloat b)
  | _ -> None

let of_optbool = function Some b -> of_bool b | None -> Vundef

(** Truth value of a value used as a condition, as in C. [None] when the
    value does not have a defined truth value. *)
let bool_of_value = function
  | Vint n -> Some (n <> 0l)
  | Vlong n -> Some (n <> 0L)
  | Vfloat f -> Some (f <> 0.0)
  | Vsingle f -> Some (f <> 0.0)
  | Vptr _ -> Some true
  | Vundef -> None

(** Normalize a value to a register type: keep values matching the type,
    turn everything else into [Vundef]. Used when reading uninitialized
    or ill-typed machine registers. *)
let load_result_typ t v = if has_type v t then v else Vundef
