(** Memory chunks and the byte-level representation of stored values
    (CompCert's [Memdata]).

    A memory access is described by a {e chunk} giving its size, alignment
    and the reinterpretation applied on load. In-memory contents are
    sequences of {e memvals}: concrete bytes, undefined bytes, or opaque
    fragments of a pointer value (pointers are not byte-decomposable since
    block identifiers are abstract). *)

open Mtypes
open Values

type chunk =
  | Mint8signed
  | Mint8unsigned
  | Mint16signed
  | Mint16unsigned
  | Mint32
  | Mint64
  | Mfloat32
  | Mfloat64
  | Many32
  | Many64

let size_chunk = function
  | Mint8signed | Mint8unsigned -> 1
  | Mint16signed | Mint16unsigned -> 2
  | Mint32 | Mfloat32 | Many32 -> 4
  | Mint64 | Mfloat64 | Many64 -> 8

let align_chunk = function
  | Mint8signed | Mint8unsigned -> 1
  | Mint16signed | Mint16unsigned -> 2
  | Mint32 | Mfloat32 | Many32 -> 4
  | Mint64 | Mfloat64 | Many64 -> 8

let type_of_chunk = function
  | Mint8signed | Mint8unsigned | Mint16signed | Mint16unsigned | Mint32
  | Many32 ->
    Tint
  | Mint64 | Many64 -> Tlong
  | Mfloat32 -> Tsingle
  | Mfloat64 -> Tfloat

let chunk_of_type = function
  | Tint -> Mint32
  | Tlong -> Mint64
  | Tfloat -> Mfloat64
  | Tsingle -> Mfloat32
  | Tany64 -> Many64

let pp_chunk fmt c =
  Format.pp_print_string fmt
    (match c with
    | Mint8signed -> "int8s"
    | Mint8unsigned -> "int8u"
    | Mint16signed -> "int16s"
    | Mint16unsigned -> "int16u"
    | Mint32 -> "int32"
    | Mint64 -> "int64"
    | Mfloat32 -> "float32"
    | Mfloat64 -> "float64"
    | Many32 -> "any32"
    | Many64 -> "any64")

(** Fragment quantities: a pointer stored in memory occupies 8 abstract
    fragment bytes [Fragment (v, Q64, 7) ... Fragment (v, Q64, 0)]. *)
type quantity = Q32 | Q64

let size_quantity = function Q32 -> 4 | Q64 -> 8

type memval =
  | Undef
  | Byte of int  (** one concrete byte, 0..255 *)
  | Fragment of value * quantity * int

(** {1 Byte-level encoding} *)

let rec bytes_of_int64 count (n : int64) =
  if count = 0 then []
  else
    Int64.to_int (Int64.logand n 0xFFL)
    :: bytes_of_int64 (count - 1) (Int64.shift_right_logical n 8)

let rec int64_of_bytes = function
  | [] -> 0L
  | b :: rest ->
    Int64.logor (Int64.of_int b) (Int64.shift_left (int64_of_bytes rest) 8)

let inj_bytes bl = List.map (fun b -> Byte b) bl

let proj_bytes mvl =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Byte b :: rest -> go (b :: acc) rest
    | _ -> None
  in
  go [] mvl

let inj_value q v =
  let n = size_quantity q in
  List.init n (fun i -> Fragment (v, q, n - 1 - i))

(* A stored value can be recovered from fragments only if all fragments
   carry the same value and quantity and appear in decreasing index order
   [n-1, ..., 0]. *)
let proj_value q mvl =
  let n = size_quantity q in
  match mvl with
  | Fragment (v0, _, _) :: _ when List.length mvl = n ->
    let ok =
      List.for_all2
        (fun mv expected_idx ->
          match mv with
          | Fragment (v', q', idx) -> v' = v0 && q' = q && idx = expected_idx
          | _ -> false)
        mvl
        (List.init n (fun i -> n - 1 - i))
    in
    if ok then Some v0 else None
  | _ -> None

let encode_val chunk v : memval list =
  let sz = size_chunk chunk in
  match (v, chunk) with
  | Vint n, (Mint8signed | Mint8unsigned | Mint16signed | Mint16unsigned | Mint32)
    ->
    inj_bytes (bytes_of_int64 sz (Int64.logand (Int64.of_int32 n) 0xFFFFFFFFL))
  | Vlong n, Mint64 -> inj_bytes (bytes_of_int64 8 n)
  | Vsingle f, Mfloat32 ->
    inj_bytes
      (bytes_of_int64 4
         (Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL))
  | Vfloat f, Mfloat64 -> inj_bytes (bytes_of_int64 8 (Int64.bits_of_float f))
  | Vptr _, Mint64 -> inj_value Q64 v
  | Vptr _, Many64 -> inj_value Q64 v
  | _, Many32 -> inj_value Q32 v
  | _, Many64 -> inj_value Q64 v
  | _ -> List.init sz (fun _ -> Undef)

let decode_val chunk (mvl : memval list) : value =
  match proj_bytes mvl with
  | Some bl -> (
    let n = int64_of_bytes bl in
    match chunk with
    | Mint8signed -> sign_ext 8 (Vint (Int64.to_int32 n))
    | Mint8unsigned -> zero_ext 8 (Vint (Int64.to_int32 n))
    | Mint16signed -> sign_ext 16 (Vint (Int64.to_int32 n))
    | Mint16unsigned -> zero_ext 16 (Vint (Int64.to_int32 n))
    | Mint32 -> Vint (Int64.to_int32 n)
    | Mint64 -> Vlong n
    | Mfloat32 -> Vsingle (Int32.float_of_bits (Int64.to_int32 n))
    | Mfloat64 -> Vfloat (Int64.float_of_bits n)
    | Many32 | Many64 -> Vundef)
  | None -> (
    match chunk with
    | Mint64 | Many64 -> (
      match proj_value Q64 mvl with
      | Some (Vptr _ as v) -> v
      | Some v -> if chunk = Many64 then v else Vundef
      | None -> Vundef)
    | Many32 -> (
      match proj_value Q32 mvl with Some v -> v | None -> Vundef)
    | _ -> Vundef)

(** Values loaded with a chunk are normalized: e.g. anything loaded with
    [Mint8signed] is a sign-extended 8-bit integer. *)
let load_result chunk v =
  match (chunk, v) with
  | (Mint8signed | Mint8unsigned | Mint16signed | Mint16unsigned | Mint32), Vint _
    ->
    v
  | Mint64, (Vlong _ | Vptr _) -> v
  | Mfloat32, Vsingle _ -> v
  | Mfloat64, Vfloat _ -> v
  | Many32, (Vint _ | Vsingle _) -> v
  | Many64, _ -> v
  | _ -> Vundef
