(** Memory extensions and memory injections (paper §4.1–4.2, §4.5).

    An injection mapping [f : block ⇀ block × Z] relocates source blocks
    into target blocks at an offset. It induces a relation on values
    ([val_inject], written [↩→v] in the paper) and on memory states
    ([mem_inject], [↩→m]). Extensions ([≤m]) are the special case of an
    identical block structure with value refinement on contents.

    These executable relations power the CKLR instances in [Core.Cklr] and
    the co-execution checker: where the Coq development proves simulation
    diagrams, we check the same relations on concrete states. *)

open Values
open Memdata

module IMap = Map.Make (Int)

(** {1 Injection mappings} *)

type t = (block * int) IMap.t

let empty : t = IMap.empty
let apply (f : t) b = IMap.find_opt b f
let add b b' delta (f : t) = IMap.add b (b', delta) f

(** The identity mapping on all blocks below [next]. *)
let id_below next : t =
  let rec go b acc = if b >= next then acc else go (b + 1) (add b b 0 acc) in
  go 1 empty

(** [incl f f'] is the mapping inclusion [f ⊆ f'] driving world
    accessibility for [inj] (paper, Example 4.2). *)
let incl (f : t) (f' : t) =
  IMap.for_all (fun b entry -> apply f' b = Some entry) f

let compose (f : t) (g : t) : t =
  IMap.filter_map
    (fun _b (b', d1) ->
      match apply g b' with
      | Some (b'', d2) -> Some (b'', d1 + d2)
      | None -> None)
    f

let pp fmt (f : t) =
  Format.fprintf fmt "@[<h>{";
  IMap.iter (fun b (b', d) -> Format.fprintf fmt " b%d->b%d+%d" b b' d) f;
  Format.fprintf fmt " }@]"

(** {1 Value relations} *)

let val_inject f v1 v2 =
  match (v1, v2) with
  | Vundef, _ -> true
  | Vptr (b, o), Vptr (b', o') -> (
    match apply f b with Some (b'', d) -> b' = b'' && o' = o + d | None -> false)
  | _ -> v1 = v2

let val_inject_list f l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 (val_inject f) l1 l2

(** Constructive direction: the canonical target value related to [v]. *)
let map_val f v =
  match v with
  | Vptr (b, o) -> (
    match apply f b with
    | Some (b', d) -> Some (Vptr (b', o + d))
    | None -> None)
  | _ -> Some v

let memval_inject f mv1 mv2 =
  match (mv1, mv2) with
  | Undef, _ -> true
  | Byte b1, Byte b2 -> b1 = b2
  | Fragment (v1, q1, i1), Fragment (v2, q2, i2) ->
    q1 = q2 && i1 = i2 && val_inject f v1 v2
  | _ -> false

let map_memval f = function
  | Undef -> Some Undef
  | Byte b -> Some (Byte b)
  | Fragment (v, q, i) -> (
    match map_val f v with
    | Some v' -> Some (Fragment (v', q, i))
    | None -> None)

(** {1 Memory extensions [≤m]} *)

(* [m2] extends [m1]: same block structure; every location accessible in
   [m1] is accessible in [m2] with at least the same permission, and its
   contents refine those of [m1]. [m2] may have extra permissions. *)
let mem_extends m1 m2 =
  Mem.nextblock m1 = Mem.nextblock m2
  && Mem.fold_live_offsets m1
       (fun b ofs ok ->
         ok
         && (match (Mem.perm_at m1 b ofs, Mem.perm_at m2 b ofs) with
            | Some p1, Some p2 -> Mem.perm_order p2 p1
            | Some _, None -> false
            | None, _ -> true)
         && memval_inject (id_below (Mem.nextblock m1))
              (Mem.contents_at m1 b ofs) (Mem.contents_at m2 b ofs))
       true

(** {1 Memory injections [↩→m]} *)

let mem_inject (f : t) m1 m2 =
  (* Mapped blocks must be valid and respect bounds/permissions/contents. *)
  IMap.for_all
    (fun b (b', delta) ->
      Mem.valid_block m1 b && Mem.valid_block m2 b'
      &&
      match Mem.block_bounds m1 b with
      | None -> false
      | Some (lo, hi) ->
        let rec ofs_ok ofs =
          ofs >= hi
          || ((match Mem.perm_at m1 b ofs with
              | None -> true
              | Some p1 -> (
                match Mem.perm_at m2 b' (ofs + delta) with
                | Some p2 ->
                  Mem.perm_order p2 p1
                  && memval_inject f (Mem.contents_at m1 b ofs)
                       (Mem.contents_at m2 b' (ofs + delta))
                | None -> false))
             && ofs_ok (ofs + 1))
        in
        ofs_ok lo)
    f
  (* No overlap: distinct source blocks cannot map to overlapping target
     regions (checked coarsely at block granularity with ranges). *)
  && IMap.for_all
       (fun b1 (b1', d1) ->
         IMap.for_all
           (fun b2 (b2', d2) ->
             b1 = b2 || b1' <> b2'
             ||
             match (Mem.block_bounds m1 b1, Mem.block_bounds m1 b2) with
             | Some (lo1, hi1), Some (lo2, hi2) ->
               hi1 + d1 <= lo2 + d2 || hi2 + d2 <= lo1 + d1
               || hi1 <= lo1 || hi2 <= lo2
             | _ -> false)
           f)
       f

(** {1 Location predicates for [injp] (paper, Fig. 9)} *)

(** Source locations with no counterpart in the target. *)
let loc_unmapped (f : t) b (_ofs : int) = apply f b = None

(** Target locations that no accessible source location maps onto. *)
let loc_out_of_reach (f : t) m1 b' ofs' =
  IMap.for_all
    (fun b (b'', delta) ->
      b'' <> b' || not (Mem.perm m1 b (ofs' - delta) Nonempty))
    f

(** {1 injp worlds} *)

(** A world of the CKLR [injp]: the injection together with the memory
    states at the time of the call. Accessibility [⇝injp] (Fig. 9) demands
    that the protected regions are untouched. *)
type injp_world = { injp_f : t; injp_m1 : Mem.t; injp_m2 : Mem.t }

let injp_world f m1 m2 = { injp_f = f; injp_m1 = m1; injp_m2 = m2 }

let injp_acc w w' =
  incl w.injp_f w'.injp_f
  && Mem.unchanged_on (loc_unmapped w.injp_f) w.injp_m1 w'.injp_m1
  && Mem.unchanged_on (loc_out_of_reach w.injp_f w.injp_m1) w.injp_m2 w'.injp_m2
