(** Memory extensions and injections (paper §4.1–4.2, §4.5): the
    executable relations behind the CKLRs [ext], [inj] and [injp]. *)

open Values
open Memdata

module IMap : Map.S with type key = int

(** Injection mappings [f : block ⇀ block × Z]. *)
type t = (block * int) IMap.t

val empty : t
val apply : t -> block -> (block * int) option
val add : block -> block -> int -> t -> t

(** The identity mapping on all blocks below [next]. *)
val id_below : block -> t

(** Mapping inclusion [f ⊆ f'] (the accessibility of [inj]). *)
val incl : t -> t -> bool

val compose : t -> t -> t
val pp : Format.formatter -> t -> unit

(** {1 Value relations} *)

(** [val_inject f v1 v2], written [f ⊩ v1 ↪v v2] in the paper: [Vundef]
    refines into anything; pointers are relocated along [f]. *)
val val_inject : t -> value -> value -> bool

val val_inject_list : t -> value list -> value list -> bool

(** Constructive direction: the canonical target value related to [v]. *)
val map_val : t -> value -> value option

val memval_inject : t -> memval -> memval -> bool
val map_memval : t -> memval -> memval option

(** {1 Memory relations} *)

(** [mem_extends m1 m2] is [m1 ≤m m2]: same block structure, contents
    refined, permissions at least preserved. *)
val mem_extends : Mem.t -> Mem.t -> bool

(** [mem_inject f m1 m2] is [f ⊩ m1 ↪m m2]: mapped blocks relocated with
    related contents and no overlap. *)
val mem_inject : t -> Mem.t -> Mem.t -> bool

(** {1 The [injp] frame (paper §4.5, Fig. 9)} *)

(** Source locations with no counterpart in the target. *)
val loc_unmapped : t -> block -> int -> bool

(** Target locations that no accessible source location maps onto. *)
val loc_out_of_reach : t -> Mem.t -> block -> int -> bool

(** A world of the CKLR [injp]: the injection and the memories at the
    interaction point. *)
type injp_world = { injp_f : t; injp_m1 : Mem.t; injp_m2 : Mem.t }

val injp_world : t -> Mem.t -> Mem.t -> injp_world

(** Accessibility [⇝injp]: the mapping grows, unmapped source regions and
    out-of-reach target regions are untouched. *)
val injp_acc : injp_world -> injp_world -> bool
