(** Machine-level types and function signatures.

    Every value manipulated by the languages of the pipeline is classified by
    one of these low-level types (CompCert's [AST.typ]). The architecture is
    64-bit: pointers have type [Tlong]. *)

type typ =
  | Tint  (** 32-bit integers *)
  | Tlong  (** 64-bit integers and pointers *)
  | Tfloat  (** 64-bit floating-point *)
  | Tsingle  (** 32-bit floating-point *)
  | Tany64  (** any 64-bit-representable value; used for register saves *)

let typ_size = function
  | Tint -> 4
  | Tlong -> 8
  | Tfloat -> 8
  | Tsingle -> 4
  | Tany64 -> 8

(** Number of 8-byte stack words occupied by a value of the given type.
    Every stack slot is 8-byte aligned on our 64-bit target. *)
let typ_words (_ : typ) = 1

let typ_equal (a : typ) (b : typ) = a = b

let pp_typ fmt t =
  Format.pp_print_string fmt
    (match t with
    | Tint -> "int"
    | Tlong -> "long"
    | Tfloat -> "float"
    | Tsingle -> "single"
    | Tany64 -> "any64")

(** Function signatures: argument types and result type ([None] = void).
    Signatures drive the calling convention ([Target.Conventions]) and the
    [wt] invariant (paper, Appendix B.2). *)
type signature = { sig_args : typ list; sig_res : typ option }

let signature_main = { sig_args = []; sig_res = Some Tint }

let proj_sig_res sg = Option.value sg.sig_res ~default:Tint

let signature_equal a b =
  List.length a.sig_args = List.length b.sig_args
  && List.for_all2 typ_equal a.sig_args b.sig_args
  && Option.equal typ_equal a.sig_res b.sig_res

let pp_signature fmt sg =
  Format.fprintf fmt "(%a) -> %a"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_typ)
    sg.sig_args
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "void"
      | Some t -> pp_typ fmt t)
    sg.sig_res

(** Comparison operators shared by all languages. *)
type comparison = Ceq | Cne | Clt | Cle | Cgt | Cge

let negate_comparison = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cle -> Cgt
  | Cgt -> Cle
  | Cge -> Clt

let swap_comparison = function
  | Ceq -> Ceq
  | Cne -> Cne
  | Clt -> Cgt
  | Cle -> Cge
  | Cgt -> Clt
  | Cge -> Cle

let pp_comparison fmt c =
  Format.pp_print_string fmt
    (match c with
    | Ceq -> "=="
    | Cne -> "!="
    | Clt -> "<"
    | Cle -> "<="
    | Cgt -> ">"
    | Cge -> ">=")
