lib/driver/linking.ml: Array Ast Backend Cfrontend Compiler Core Hcomp Ident Iface Li List Runners Support
