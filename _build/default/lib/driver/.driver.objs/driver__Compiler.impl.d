lib/driver/compiler.ml: Backend Cfrontend Middle Passes Support
