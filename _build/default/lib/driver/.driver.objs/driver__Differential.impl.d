lib/driver/differential.ml: Ast Backend Cfrontend Compiler Format Iface List Middle Runners
