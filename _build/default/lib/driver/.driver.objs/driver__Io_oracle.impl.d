lib/driver/io_oracle.ml: Conventions Either Format Genv Ident Iface Int32 List Locations Memory Pregfile String Support Target
