lib/driver/runners.mli: Ast Core Format Ident Iface Memory Simconv Smallstep Support Target
