lib/driver/runners.ml: Ast Core Events Genv Ident Iface Memory Simconv Smallstep Support
