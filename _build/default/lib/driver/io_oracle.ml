(** Level-specific environment oracles for I/O primitives.

    Open components interact with their environment through outgoing
    questions; at different levels of the pipeline these questions take
    different shapes (C calls vs register files). This module implements
    the same environment behavior — a set of primitives keyed by symbol
    name, logging their invocations — at the [C] and [A] levels, so that
    the observable interaction sequences of a source component and its
    compiled form can be compared (the content of the paper's
    requirement #2: characterizing compiled components directly by their
    interactions).

    The [A]-level oracle decodes arguments from the argument registers
    and answers with the result register set and [PC := RA] — i.e. it is
    the assembly-level axiomatization of the primitives, related to the
    [C]-level one exactly as the paper's eq. (7) prescribes. *)

open Support
open Memory.Mtypes
open Memory.Values
open Target
open Iface
open Iface.Li

type primitive = {
  prim_name : string;
  prim_sig : signature;
  prim_impl : int32 list -> int32;  (** integer-only primitives *)
}

type log_entry = { call_name : string; call_args : int32 list; call_res : int32 }

let pp_log_entry fmt e =
  Format.fprintf fmt "%s(%s) -> %ld" e.call_name
    (String.concat ", " (List.map Int32.to_string e.call_args))
    e.call_res

type 'q oracle = { ask : 'q -> ('q, 'q) Either.t option }

(** Shared logging state: [make_log ()] gives a recorder and a reader. *)
let make_log () =
  let log = ref [] in
  let record e = log := e :: !log in
  (record, fun () -> List.rev !log)

let find_prim prims name =
  List.find_opt (fun p -> p.prim_name = name) prims

(* Resolve a function value against the shared symbol table. *)
let name_of_vf ~symbols vf =
  let symtbl, _ = Genv.make_symtbl symbols in
  match vf with
  | Vptr (b, 0) ->
    Ident.Map.fold
      (fun id b' acc -> if b = b' then Some (Ident.name id) else acc)
      symtbl None
  | _ -> None

(** The [C]-level oracle: answers queries whose function value resolves
    to a primitive's symbol. *)
let c_oracle ~symbols (prims : primitive list) record : c_query -> c_reply option
    =
 fun q ->
  match name_of_vf ~symbols q.cq_vf with
  | None -> None
  | Some name -> (
    match find_prim prims name with
    | Some p when signature_equal q.cq_sg p.prim_sig -> (
      let ints =
        List.fold_right
          (fun v acc ->
            match (v, acc) with
            | Vint n, Some ns -> Some (n :: ns)
            | _ -> None)
          q.cq_args (Some [])
      in
      match ints with
      | Some args ->
        let res = p.prim_impl args in
        record { call_name = name; call_args = args; call_res = res };
        Some { cr_res = Vint res; cr_mem = q.cq_mem }
      | None -> None)
    | _ -> None)

(** The [A]-level oracle: decodes the arguments from the calling
    convention's argument registers, and returns per the convention
    (result in the result register, [PC := RA], SP preserved). *)
let a_oracle ~symbols (prims : primitive list) record : a_query -> a_reply option
    =
 fun q ->
  let rs = q.aq_rs in
  match name_of_vf ~symbols (Pregfile.get PC rs) with
  | None -> None
  | Some name -> (
    match find_prim prims name with
    | Some p -> (
      let arg_locs = Conventions.loc_arguments p.prim_sig in
      let ints =
        List.fold_right
          (fun l acc ->
            match (l, acc) with
            | Locations.R r, Some ns -> (
              match Pregfile.get (Mreg r) rs with
              | Vint n -> Some (n :: ns)
              | _ -> None)
            | _ -> None (* integer register args only *))
          arg_locs (Some [])
      in
      match ints with
      | Some args ->
        let res = p.prim_impl args in
        record { call_name = name; call_args = args; call_res = res };
        let rs' =
          rs
          |> Pregfile.set (Mreg (Conventions.loc_result p.prim_sig))
               (Vint res)
          |> Pregfile.set PC (Pregfile.get RA rs)
        in
        Some { ar_rs = rs'; ar_mem = q.aq_mem }
      | None -> None)
    | None -> None)
