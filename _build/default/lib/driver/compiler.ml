(** The compiler driver: composing the passes of Table 3.

    [compile] runs the full pipeline from parsed Clight to Asm, keeping
    every intermediate program so that tests and benchmarks can co-execute
    adjacent levels (the executable counterpart of the per-pass simulation
    proofs). *)

open Support.Errors
module Errors = Support.Errors
module C = Cfrontend.Csyntax

type options = {
  opt_tailcall : bool;
  opt_inlining : bool;
  opt_constprop : bool;
  opt_cse : bool;
  opt_deadcode : bool;
}

let all_optims =
  {
    opt_tailcall = true;
    opt_inlining = true;
    opt_constprop = true;
    opt_cse = true;
    opt_deadcode = true;
  }

let no_optims =
  {
    opt_tailcall = false;
    opt_inlining = false;
    opt_constprop = false;
    opt_cse = false;
    opt_deadcode = false;
  }

(** Every intermediate program of the pipeline. [clight1] is the source
    (memory-resident parameters); [clight2] is after [SimplLocals]. *)
type artifacts = {
  clight1 : C.program;
  clight2 : C.program;
  csharpminor : Cfrontend.Csharpminor.program;
  cminor : Middle.Cminor.program;
  cminorsel : Middle.Cminorsel.program;
  rtl_gen : Middle.Rtl.program;  (** straight out of RTLgen *)
  rtl : Middle.Rtl.program;  (** after the optional RTL optimizations *)
  ltl : Backend.Ltl.program;
  ltl_tunneled : Backend.Ltl.program;
  linear : Backend.Linear.program;
  linear_clean : Backend.Linear.program;
  mach : Backend.Mach.program;
  asm : Backend.Asm.program;
}

let when_opt flag pass p = if flag then pass p else ok p

let compile ?(options = all_optims) (p : C.program) : artifacts Errors.t =
  let* clight2 = Passes.Simpllocals.transf_program p in
  let* csharpminor = Passes.Cshmgen.transf_program clight2 in
  let* cminor = Passes.Cminorgen.transf_program csharpminor in
  let* cminorsel = Passes.Selection.transf_program cminor in
  let* rtl_gen = Passes.Rtlgen.transf_program cminorsel in
  let* rtl1 = when_opt options.opt_tailcall Passes.Tailcall.transf_program rtl_gen in
  let* rtl2 = when_opt options.opt_inlining Passes.Inlining.transf_program rtl1 in
  let* rtl3 = Passes.Renumber.transf_program rtl2 in
  let* rtl4 = when_opt options.opt_constprop Passes.Constprop.transf_program rtl3 in
  let* rtl5 = when_opt options.opt_cse Passes.Cse.transf_program rtl4 in
  let* rtl = when_opt options.opt_deadcode Passes.Deadcode.transf_program rtl5 in
  let* ltl = Passes.Allocation.transf_program rtl in
  (* Translation validation of the untrusted allocator (CompCert-style):
     a miscompilation in Allocation aborts the compilation here. *)
  let* () = Passes.Alloc_check.validate_program rtl ltl in
  let* ltl_tunneled = Passes.Tunneling.transf_program ltl in
  let* linear = Passes.Linearize.transf_program ltl_tunneled in
  let* linear_clean = Passes.Cleanuplabels.transf_program linear in
  let* linear_dbg = Passes.Debugvar.transf_program linear_clean in
  let* mach = Passes.Stacking.transf_program linear_dbg in
  let* asm = Passes.Asmgen.transf_program mach in
  ok
    {
      clight1 = p;
      clight2;
      csharpminor;
      cminor;
      cminorsel;
      rtl_gen;
      rtl;
      ltl;
      ltl_tunneled;
      linear;
      linear_clean;
      mach;
      asm;
    }

(** Parse and compile a C source string. *)
let compile_source ?options (src : string) : artifacts Errors.t =
  let p = Cfrontend.Cparser.parse_program src in
  compile ?options p

(** Compile a C source string to Asm only. *)
let compile_c_to_asm ?options (src : string) : Backend.Asm.program Errors.t =
  let* arts = compile_source ?options src in
  ok arts.asm
