(** The rule database of the simulation convention algebra (Thm. 5.2,
    Lemmas 5.3/5.4/5.7/5.8, Thm. 5.6), as directed rewrite rules over
    convention terms, each carrying its paper citation and refinement
    direction. *)

open Cterm

(** [Equiv]: [lhs ≡ rhs]. [Up]: [lhs ⊑ rhs] — valid when weakening an
    incoming convention (Thm. 5.2). [Down]: [rhs ⊑ lhs] — valid when
    strengthening an outgoing convention. *)
type sense = Equiv | Up | Down

type rule = {
  rule_name : string;
  cite : string;
  lhs : atom list;
  rhs : atom list;
  sense : sense;
}

val all_rules : rule list

(** May [rule] be used when rewriting the given side? *)
val usable : [ `Incoming | `Outgoing ] -> rule -> bool
