(** The derivation engine reproducing the proof of Theorem 3.8
    (paper §5, Figures 10 and 11).

    Starting from the per-pass simulation conventions of Table 3, the
    engine:

    1. composes them vertically (Thm. 3.7 / Thm. 5.2 associativity);
    2. inserts the parametricity self-simulations of Clight and Asm
       (Thm. 4.3, iterated with Thm. 5.6) as pseudo-passes — this is the
       paper's "requirements of most passes on their outgoing calls are
       met using the properties of the source language, inserted as a
       pseudo-pass" (§2.5);
    3. rewrites the composite with the rule database ([Rules.all_rules]),
       each step being a valid refinement in the direction required by
       Thm. 5.2 for the side (incoming/outgoing) being normalized;
    4. checks that the result is the uniform convention
       [C = R* · wt · CL · LM · MA · vainj].

    The recorded trace is a machine-checked (type- and direction-checked)
    derivation; printing it regenerates the content of Figs. 10–11. *)

open Cterm

type step = {
  step_desc : string;  (** what happened *)
  step_cite : string;  (** paper citation *)
  step_term : t;  (** term after the step *)
}

type trace = { initial : t; steps : step list; final : t }

let pp_trace fmt (tr : trace) =
  Format.fprintf fmt "@[<v>start: %a@," pp tr.initial;
  List.iteri
    (fun i s ->
      Format.fprintf fmt "%3d. %-38s [%s]@,     = %a@," (i + 1) s.step_desc
        s.step_cite pp s.step_term)
    tr.steps;
  Format.fprintf fmt "end:   %a@]" pp tr.final

(** Apply the first usable rule at the leftmost position; [None] when the
    term is in normal form. *)
let rewrite_once (dir : [ `Incoming | `Outgoing ]) (t : t) :
    (Rules.rule * t) option =
  let rules = List.filter (Rules.usable dir) Rules.all_rules in
  let rec at_position prefix suffix =
    match suffix with
    | [] -> None
    | _ -> (
      let try_rule (r : Rules.rule) =
        let n = List.length r.Rules.lhs in
        if List.length suffix >= n then
          let seg = List.filteri (fun i _ -> i < n) suffix in
          if seg = r.Rules.lhs then
            Some (r, List.rev_append prefix (r.Rules.rhs @ List.filteri (fun i _ -> i >= n) suffix))
          else None
        else None
      in
      match List.find_map try_rule rules with
      | Some result -> Some result
      | None -> at_position (List.hd suffix :: prefix) (List.tl suffix))
  in
  at_position [] t

let normalize (dir : [ `Incoming | `Outgoing ]) (t : t) : t * step list =
  let rec go t acc fuel =
    if fuel = 0 || equal t uniform_c then (t, List.rev acc)
    else
      match rewrite_once dir t with
      | None -> (t, List.rev acc)
      | Some (r, t') ->
        go t'
          ({ step_desc = r.Rules.rule_name; step_cite = r.Rules.cite; step_term = t' }
          :: acc)
          (fuel - 1)
  in
  go t [] 1000

(** {1 The passes of Table 3} *)

type pass_info = {
  pass_name : string;
  pass_source : string;
  pass_target : string;
  outgoing : t;  (** outgoing simulation convention *)
  incoming : t;  (** incoming simulation convention *)
  optional : bool;
}

let p name src tgt outgoing incoming optional =
  { pass_name = name; pass_source = src; pass_target = tgt; outgoing; incoming; optional }

(** Table 3 of the paper: every pass with its conventions. *)
let table3 : pass_info list =
  [
    p "SimplLocals" "Clight" "Clight" [ Injp ] [ Inj ] false;
    p "Cshmgen" "Clight" "Csharpminor" [] [] false;
    p "Cminorgen" "Csharpminor" "Cminor" [ Injp ] [ Inj ] false;
    p "Selection" "Cminor" "CminorSel" [ Wt; Ext ] [ Wt; Ext ] false;
    p "RTLgen" "CminorSel" "RTL" [ Ext ] [ Ext ] false;
    p "Tailcall" "RTL" "RTL" [ Ext ] [ Ext ] true;
    p "Inlining" "RTL" "RTL" [ Injp ] [ Inj ] true;
    p "Renumber" "RTL" "RTL" [] [] false;
    p "Constprop" "RTL" "RTL" [ Va; Ext ] [ Va; Ext ] true;
    p "CSE" "RTL" "RTL" [ Va; Ext ] [ Va; Ext ] true;
    p "Deadcode" "RTL" "RTL" [ Va; Ext ] [ Va; Ext ] true;
    p "Allocation" "RTL" "LTL" [ Wt; Ext; CL ] [ Wt; Ext; CL ] false;
    p "Tunneling" "LTL" "LTL" [ Ext ] [ Ext ] false;
    p "Linearize" "LTL" "Linear" [] [] false;
    p "CleanupLabels" "Linear" "Linear" [] [] false;
    p "Debugvar" "Linear" "Linear" [] [] false;
    p "Stacking" "Linear" "Mach" [ Injp; LM ] [ LM; Inj ] false;
    p "Asmgen" "Mach" "Asm" [ Ext; MA ] [ Ext; MA ] false;
  ]

(** Vertical composition of the per-pass conventions (Thm. 3.7). *)
let composite side =
  List.concat_map
    (fun pi -> match side with `Out -> pi.outgoing | `In -> pi.incoming)
    table3

(** {1 The Theorem 3.8 derivation} *)

type side_derivation = {
  side : [ `Incoming | `Outgoing ];
  trace : trace;
  ok : bool;  (** reached the uniform convention [C] *)
}

let derive_side (dir : [ `Incoming | `Outgoing ]) : side_derivation =
  let base = composite (match dir with `Incoming -> `In | `Outgoing -> `Out) in
  (* Pseudo-passes: Clight self-simulation at R* (Thm. 4.3 + Thm. 5.6)
     pre-composed, Asm self-simulation at vainj post-composed. *)
  let t0 = (Rstar :: base) @ [ Vainj ] in
  let self_steps =
    [
      {
        step_desc = "pre-compose Clight self-simulation at R*";
        step_cite = "Thm. 4.3 + Thm. 5.6";
        step_term = Rstar :: base;
      };
      {
        step_desc = "post-compose Asm self-simulation at vainj";
        step_cite = "Thm. 4.3";
        step_term = t0;
      };
    ]
  in
  let final, steps = normalize dir t0 in
  {
    side = dir;
    trace = { initial = base; steps = self_steps @ steps; final };
    ok = equal final uniform_c && well_typed ~src:IC ~tgt:IA final;
  }

(** The full Theorem 3.8 derivation: both sides normalize to [C]. *)
let thm_3_8 () : side_derivation * side_derivation =
  (derive_side `Outgoing, derive_side `Incoming)

let pp_side fmt (d : side_derivation) =
  Format.fprintf fmt "@[<v>%s side:@,%a@,%s@]"
    (match d.side with `Incoming -> "Incoming" | `Outgoing -> "Outgoing")
    pp_trace d.trace
    (if d.ok then "==> reached the uniform convention C (Thm. 3.8)"
     else "==> FAILED to reach C")
