(** The derivation engine reproducing the proof of Theorem 3.8
    (paper §5, Figs. 10–11): vertical composition of Table 3's per-pass
    conventions, insertion of the Clight/Asm parametricity pseudo-passes
    (Thm. 4.3 + 5.6), and direction- and type-checked rewriting to the
    uniform convention [C]. *)

open Cterm

type step = {
  step_desc : string;
  step_cite : string;  (** paper citation justifying the step *)
  step_term : t;  (** term after the step *)
}

type trace = { initial : t; steps : step list; final : t }

val pp_trace : Format.formatter -> trace -> unit

(** One rewriting step (leftmost position, first usable rule);
    [None] = normal form. *)
val rewrite_once : [ `Incoming | `Outgoing ] -> t -> (Rules.rule * t) option

(** Normalize, stopping at [uniform_c] or a normal form. *)
val normalize : [ `Incoming | `Outgoing ] -> t -> t * step list

(** Table 3 of the paper: every pass with its conventions. *)
type pass_info = {
  pass_name : string;
  pass_source : string;
  pass_target : string;
  outgoing : t;
  incoming : t;
  optional : bool;
}

val table3 : pass_info list

(** Vertical composition of the per-pass conventions (Thm. 3.7). *)
val composite : [ `In | `Out ] -> t

type side_derivation = {
  side : [ `Incoming | `Outgoing ];
  trace : trace;
  ok : bool;  (** reached the uniform convention [C] *)
}

val derive_side : [ `Incoming | `Outgoing ] -> side_derivation

(** Both sides of the Theorem 3.8 derivation. *)
val thm_3_8 : unit -> side_derivation * side_derivation

val pp_side : Format.formatter -> side_derivation -> unit
