(** Symbolic simulation-convention terms (paper §5): compositions of the
    primitive conventions of Table 3, typed by the language interfaces
    they connect. *)

type iface = IC | IL | IM | IA

val pp_iface : Format.formatter -> iface -> unit

type atom =
  | Injp
  | Inj
  | Ext
  | Vainj
  | Vaext
  | Va  (** the value-analysis invariant *)
  | Wt  (** the typing invariant *)
  | Rstar  (** [R*] with [R = injp + inj + ext + vainj + vaext] *)
  | CL
  | LM
  | MA

val atom_name : atom -> string
val pp_atom : Format.formatter -> atom -> unit

(** Endo-atoms keep the interface; structural atoms transport it
    ([CL : C→L], [LM : L→M], [MA : M→A]). [None] = ill-typed here. *)
val atom_type : atom -> iface -> iface option

val is_cklr : atom -> bool
val is_structural : atom -> bool

(** A term is a composition of atoms (associative with identity,
    Thm. 5.2), read source-side to target-side; [[]] is [id]. *)
type t = atom list

val infer : iface -> t -> iface option
val well_typed : src:iface -> tgt:iface -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** The uniform convention of Theorem 3.8:
    [C = R* · wt · CL · LM · MA · vainj]. *)
val uniform_c : t
