(** The rule database of the simulation-convention algebra
    (paper, Thm. 5.2, Lemmas 5.3, 5.4, 5.7, 5.8, Thm. 5.6).

    A rule rewrites a contiguous segment [lhs ⟶ rhs] of a convention
    term. Its [sense] records the refinement direction it realizes:

    - [Equiv]: [lhs ≡ rhs] — usable in both derivation directions;
    - [Up]: [lhs ⊑ rhs] — usable when weakening an {e incoming}
      convention (Thm. 5.2 allows [S ⟶ S'] when [S ⊑ S']);
    - [Down]: [rhs ⊑ lhs] — usable when strengthening an {e outgoing}
      convention.

    The individual rule instances correspond to the lemmas proved in
    CompCertO's [driver/CallConv.v]. *)

open Cterm

type sense = Equiv | Up | Down

type rule = {
  rule_name : string;
  cite : string;  (** where in the paper the rule comes from *)
  lhs : atom list;
  rhs : atom list;
  sense : sense;
}

let mk name cite sense lhs rhs = { rule_name = name; cite; lhs; rhs; sense }

(* CKLR composition (Lemma 5.3), extended to the va-carrying CKLRs
   (Lemma 5.8 gives vainj ≡ va·inj ≡ vainj·vainj, vaext ≡ va·ext). *)
let cklr_composition =
  [
    mk "ext.ext==ext" "Lemma 5.3" Equiv [ Ext; Ext ] [ Ext ];
    mk "ext.inj==inj" "Lemma 5.3" Equiv [ Ext; Inj ] [ Inj ];
    mk "inj.ext==inj" "Lemma 5.3" Equiv [ Inj; Ext ] [ Inj ];
    mk "inj.inj==inj" "Lemma 5.3" Equiv [ Inj; Inj ] [ Inj ];
    mk "va.ext==vaext" "Lemma 5.8" Equiv [ Va; Ext ] [ Vaext ];
    mk "va.inj==vainj" "Lemma 5.8" Equiv [ Va; Inj ] [ Vainj ];
    mk "vainj.vainj==vainj" "Lemma 5.8" Equiv [ Vainj; Vainj ] [ Vainj ];
    mk "inj.vainj==vainj" "Lemmas 5.3+5.8" Equiv [ Inj; Vainj ] [ Vainj ];
    mk "vainj.inj==vainj" "Lemmas 5.3+5.8" Equiv [ Vainj; Inj ] [ Vainj ];
    mk "ext.vainj==vainj" "Lemmas 5.3+5.8" Equiv [ Ext; Vainj ] [ Vainj ];
  ]

(* Commutation of CKLRs across the structural conventions (Lemma 5.4):
   R_X · XY ⊑ XY · R_Y. Left-to-right is an Up step; right-to-left Down. *)
let structural_commutation =
  List.concat_map
    (fun xy ->
      List.concat_map
        (fun k ->
          [
            mk
              (Printf.sprintf "%s.%s<=%s.%s" (atom_name k) (atom_name xy)
                 (atom_name xy) (atom_name k))
              "Lemma 5.4" Up [ k; xy ] [ xy; k ];
            mk
              (Printf.sprintf "%s.%s=>%s.%s" (atom_name xy) (atom_name k)
                 (atom_name k) (atom_name xy))
              "Lemma 5.4" Down [ xy; k ] [ k; xy ];
          ])
        [ Injp; Inj; Ext; Vainj; Vaext ])
    [ CL; LM; MA ]

(* The typing invariant commutes with CKLR-built conventions and is
   idempotent (Lemma 5.7, Appendix B.2). The commutation is oriented
   left-moving so that the rewriting terminates. *)
let wt_rules =
  List.map
    (fun k ->
      mk
        (Printf.sprintf "%s.wt==wt.%s" (atom_name k) (atom_name k))
        "Lemma 5.7" Equiv [ k; Wt ] [ Wt; k ])
    [ Injp; Inj; Ext; Vainj; Vaext ]
  @ [ mk "wt.wt==wt" "Appendix B.2" Equiv [ Wt; Wt ] [ Wt ] ]

(* Kleene-star absorption (Thm. 5.6): R* absorbs any member of R on
   either side, and injp ∈ R, inj ∈ R, ext ∈ R, vainj ∈ R, vaext ∈ R. *)
let star_rules =
  List.concat_map
    (fun k ->
      [
        mk
          (Printf.sprintf "R*.%s==R*" (atom_name k))
          "Thm. 5.6" Equiv [ Rstar; k ] [ Rstar ];
        mk
          (Printf.sprintf "%s.R*==R*" (atom_name k))
          "Thm. 5.6" Equiv [ k; Rstar ] [ Rstar ];
        (* Derived: commute across wt (Lemma 5.7), then absorb. *)
        mk
          (Printf.sprintf "R*.wt.%s==R*.wt" (atom_name k))
          "Thm. 5.6 + Lemma 5.7" Equiv [ Rstar; Wt; k ] [ Rstar; Wt ];
      ])
    [ Injp; Inj; Ext; Vainj; Vaext ]
  @ [ mk "R*.R*==R*" "Thm. 5.6" Equiv [ Rstar; Rstar ] [ Rstar ] ]

let all_rules =
  cklr_composition @ structural_commutation @ wt_rules @ star_rules

(** Can [r] be used when rewriting in the given derivation direction? *)
let usable (dir : [ `Incoming | `Outgoing ]) (r : rule) =
  match (r.sense, dir) with
  | Equiv, _ -> true
  | Up, `Incoming -> true
  | Down, `Outgoing -> true
  | Up, `Outgoing | Down, `Incoming -> false
