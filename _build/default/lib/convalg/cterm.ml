(** Symbolic simulation-convention terms (paper §5).

    Terms denote compositions of the primitive conventions used in
    Table 3: CKLRs ([injp], [inj], [ext], [vainj], [vaext]), invariants
    ([wt], [va]), the structural conventions [CL], [LM], [MA], the Kleene
    star [R*] of the CKLR sum [R = injp + inj + ext + vainj + vaext], and
    identities. Composition is associative with identity (Thm. 5.2), so a
    term is a list of atoms. Each atom is typed by the language
    interfaces it connects. *)

type iface = IC | IL | IM | IA

let pp_iface fmt i =
  Format.pp_print_string fmt
    (match i with IC -> "C" | IL -> "L" | IM -> "M" | IA -> "A")

type atom =
  | Injp
  | Inj
  | Ext
  | Vainj
  | Vaext
  | Va  (** the value-analysis invariant *)
  | Wt  (** the typing invariant *)
  | Rstar  (** [R*] where [R = injp + inj + ext + vainj + vaext] *)
  | CL
  | LM
  | MA

let atom_name = function
  | Injp -> "injp"
  | Inj -> "inj"
  | Ext -> "ext"
  | Vainj -> "vainj"
  | Vaext -> "vaext"
  | Va -> "va"
  | Wt -> "wt"
  | Rstar -> "R*"
  | CL -> "CL"
  | LM -> "LM"
  | MA -> "MA"

let pp_atom fmt a = Format.pp_print_string fmt (atom_name a)

(** Endo-atoms keep the interface; structural atoms transport it. *)
let atom_type (a : atom) (i : iface) : iface option =
  match a with
  | Injp | Inj | Ext | Vainj | Vaext | Va | Wt | Rstar -> Some i
  | CL -> if i = IC then Some IL else None
  | LM -> if i = IL then Some IM else None
  | MA -> if i = IM then Some IA else None

let is_cklr = function
  | Injp | Inj | Ext | Vainj | Vaext -> true
  | _ -> false

let is_structural = function CL | LM | MA -> true | _ -> false

(** A convention term: a composition of atoms, read left (source side)
    to right (target side); [[]] is the identity. *)
type t = atom list

(** [infer i t] types [t] starting from interface [i]. *)
let rec infer (i : iface) (t : t) : iface option =
  match t with
  | [] -> Some i
  | a :: rest -> (
    match atom_type a i with Some i' -> infer i' rest | None -> None)

let well_typed ~src ~tgt (t : t) = infer src t = Some tgt

let pp fmt (t : t) =
  match t with
  | [] -> Format.pp_print_string fmt "id"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " . ")
      pp_atom fmt t

let to_string t = Format.asprintf "%a" pp t

let equal (a : t) (b : t) = a = b

(** The uniform convention of Theorem 3.8:
    [C = R* . wt . CA . vainj_A] with [CA = CL . LM . MA]. *)
let uniform_c : t = [ Rstar; Wt; CL; LM; MA; Vainj ]
