lib/convalg/derive.mli: Cterm Format Rules
