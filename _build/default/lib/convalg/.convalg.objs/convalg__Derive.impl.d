lib/convalg/derive.ml: Cterm Format List Rules
