lib/convalg/rules.ml: Cterm List Printf
