lib/convalg/cterm.ml: Format
