lib/convalg/rules.mli: Cterm
