lib/convalg/cterm.mli: Format
