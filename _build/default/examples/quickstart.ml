(** Quickstart: compile a C component and watch the correctness theorem at
    work.

    This example:
    1. parses and compiles a small C program through all 17 passes;
    2. runs it at the source level (Clight, language interface [C]);
    3. marshals the same query through the calling convention
       [CA = CL · LM · MA] (paper §5) and runs the compiled Asm;
    4. checks that the answers are related — one concrete instance of
       Theorem 3.8. *)

open Support
open Memory.Values
open Iface

let source =
  {|
/* Greatest common divisor, iteratively. */
int gcd(int a, int b) {
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int main(void) {
  return gcd(252, 105) * 1000 + gcd(17, 5);
}
|}

let () =
  Format.printf "=== CompCertO quickstart ===@.@.";
  Format.printf "Source program:%s@." source;

  (* 1. Compile. *)
  let program = Cfrontend.Cparser.parse_program source in
  let symbols = Ast.prog_defs_names program in
  let arts = Errors.get (Driver.Compiler.compile program) in
  Format.printf "Compiled through %d passes; Asm code for gcd:@.@."
    (List.length Convalg.Derive.table3);
  (match Ast.find_def arts.asm (Ident.intern "gcd") with
  | Some (Ast.Gfun (Ast.Internal f)) ->
    Format.printf "%a@." Backend.Asm.pp_function f
  | _ -> ());

  (* 2. Run the source semantics: Clight(p) : C ↠ C. *)
  let q = Option.get (Driver.Runners.main_query ~symbols ~defs:program ()) in
  let src_sem = Cfrontend.Clight.semantics ~symbols program in
  let src_out = Driver.Runners.run_c_level src_sem ~fuel:1_000_000 q in
  Format.printf "Clight(p) on main():  %a@." Driver.Runners.pp_c_outcome src_out;

  (* 3. Marshal the query through CA = CL · LM · MA and run Asm(p'). *)
  let tgt_sem = Backend.Asm.semantics ~symbols arts.asm in
  (match Driver.Runners.run_a_level tgt_sem ~fuel:1_000_000 q with
  | Ok tgt_out ->
    Format.printf "Asm(p')  on main():   %a@." Driver.Runners.pp_c_outcome tgt_out;
    (* 4. The refinement check of Thm. 3.8 (answers related under C). *)
    Format.printf "@.Thm 3.8 instance (Clight(p) ≤C↠C Asm(p')): %s@."
      (if Driver.Runners.outcome_refines src_out tgt_out then "HOLDS"
       else "VIOLATED");
    (match (src_out, tgt_out) with
    | Core.Smallstep.Final (_, r1), Core.Smallstep.Final (_, r2) ->
      Format.printf "  source answer: %a, target answer: %a@." pp r1.Li.cr_res
        pp r2.Li.cr_res
    | _ -> ())
  | Error e -> Format.printf "marshaling error: %s@." e)
