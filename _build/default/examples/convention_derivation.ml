(** The simulation convention algebra at work: print the machine-checked
    derivation of Theorem 3.8 (paper §5, Figs. 10–11).

    Starting from the per-pass conventions of Table 3, the derivation
    engine inserts the parametricity pseudo-passes (Thm. 4.3/5.6) and
    rewrites the composite — every step justified by a lemma of the
    algebra — into the uniform convention

        C  =  R* . wt . CL . LM . MA . vainj

    independently for the outgoing and incoming sides. *)

let () =
  Format.printf "=== Deriving Thm 3.8's uniform convention (Figs. 10-11) ===@.@.";
  Format.printf "Per-pass conventions (Table 3):@.";
  List.iter
    (fun (p : Convalg.Derive.pass_info) ->
      Format.printf "  %-14s %-12s -> %-12s   %a ->> %a@."
        (p.pass_name ^ if p.optional then "*" else "")
        p.pass_source p.pass_target Convalg.Cterm.pp p.outgoing
        Convalg.Cterm.pp p.incoming)
    Convalg.Derive.table3;
  Format.printf "@.";
  let out, inc = Convalg.Derive.thm_3_8 () in
  Format.printf "%a@.@.%a@.@." Convalg.Derive.pp_side out Convalg.Derive.pp_side
    inc;
  Format.printf "Uniform convention: C = %a : C <=> A@." Convalg.Cterm.pp
    Convalg.Cterm.uniform_c
