(** Heterogeneous verification — the NIC driver of Examples 1.1 and 3.10.

    The paper motivates CompCertO with a network-card driver that should
    be specified directly in terms of network communication, not C-level
    interactions. We build the scenario of Fig. 7:

    - [Net]: the language interface of the network — questions poll for or
      transmit ethernet-level bytes;
    - [IO]: device I/O — questions read or write NIC registers;
    - [sigma_nic : Net ↠ IO]: a model of the NIC hardware, mapping
      register accesses to network activity;
    - [sigma_io : IO ↠ C]: C-callable I/O primitives ([io_read],
      [io_write]), axiomatized rather than implemented (they are the
      unverifiable hardware access layer);
    - the driver: an actual C program providing [net_recv]/[net_send]
      /[net_echo] on top of the primitives.

    The layered composition [driver ∘ sigma_io ∘ sigma_nic : Net ↠ C]
    gives the high-level specification's type. We then compile the driver
    with the full pipeline and run
    [Asm(driver') ∘ sigma_io_asm ∘ sigma_nic], where [sigma_io_asm] is
    the assembly-level axiomatization of the primitives (eq. (7) of the
    paper: [sigma_io ≤ id↠C sigma_io']), and check that both stacks
    produce the same network-level behavior. *)

open Support
open Memory.Mtypes
open Memory.Values
open Core
open Iface
open Iface.Li

(** {1 The Net and IO language interfaces} *)

type net_query = Poll | Transmit of int
type net_reply = NetByte of int | NetAck

type io_query = IoRead of int | IoWrite of int * int
type io_reply = IoVal of int

(* NIC register map. *)
let reg_tx = 0
let reg_rx = 1

(** {1 sigma_nic : Net ↠ IO — the NIC model} *)

type nic_state = NicIdle of io_query | NicWaiting of io_query

let sigma_nic : (nic_state, io_query, io_reply, net_query, net_reply) Smallstep.lts =
  {
    Smallstep.name = "sigma_nic";
    dom = (fun _ -> true);
    init = (fun q -> [ NicIdle q ]);
    step = (fun _ -> []);
    at_external =
      (fun s ->
        match s with
        | NicIdle (IoWrite (r, b)) when r = reg_tx -> Some (Transmit b)
        | NicIdle (IoRead r) when r = reg_rx -> Some Poll
        | _ -> None);
    after_external =
      (fun s reply ->
        match (s, reply) with
        | NicIdle q, NetAck -> [ NicWaiting q ]
        | NicIdle q, NetByte _ -> (
          match q with IoRead _ -> [ NicWaiting q ] | _ -> [])
        | _ -> []);
    final =
      (fun s ->
        match s with
        | NicWaiting (IoWrite _) -> Some (IoVal 0)
        | NicIdle (IoWrite (r, _)) when r <> reg_tx -> Some (IoVal 0)
        | NicIdle (IoRead r) when r <> reg_rx -> Some (IoVal 0)
        | _ -> None);
  }

(* The NIC answers reads of RX with the polled byte: we need the byte from
   the Net reply. Rework with the byte recorded. *)
type nic_state2 = N_init of io_query | N_done of int

let sigma_nic : (nic_state2, io_query, io_reply, net_query, net_reply) Smallstep.lts =
  ignore sigma_nic;
  {
    Smallstep.name = "sigma_nic";
    dom = (fun _ -> true);
    init = (fun q -> [ N_init q ]);
    step =
      (fun s ->
        match s with
        (* Accesses to unknown registers complete immediately with 0. *)
        | N_init (IoWrite (r, _)) when r <> reg_tx -> [ (Events.e0, N_done 0) ]
        | N_init (IoRead r) when r <> reg_rx -> [ (Events.e0, N_done 0) ]
        | _ -> []);
    at_external =
      (fun s ->
        match s with
        | N_init (IoWrite (r, b)) when r = reg_tx -> Some (Transmit b)
        | N_init (IoRead r) when r = reg_rx -> Some Poll
        | _ -> None);
    after_external =
      (fun s reply ->
        match (s, reply) with
        | N_init (IoWrite _), NetAck -> [ N_done 0 ]
        | N_init (IoRead _), NetByte b -> [ N_done b ]
        | _ -> []);
    final = (fun s -> match s with N_done v -> Some (IoVal v) | _ -> None);
  }

(** {1 sigma_io : IO ↠ C — C-callable I/O primitives} *)

let id_io_read = Ident.intern "io_read"
let id_io_write = Ident.intern "io_write"

let sg_read = { sig_args = [ Tint ]; sig_res = Some Tint }
let sg_write = { sig_args = [ Tint; Tint ]; sig_res = Some Tint }

type io_c_state = IoC_init of c_query | IoC_done of int * Memory.Mem.t

(* Which C functions sigma_io provides, given the shared symbol table. *)
let sigma_io ~(symbols : Ident.t list) :
    (io_c_state, c_query, c_reply, io_query, io_reply) Smallstep.lts =
  let symtbl, _ = Genv.make_symtbl symbols in
  let addr_of id =
    match Ident.Map.find_opt id symtbl with
    | Some b -> Vptr (b, 0)
    | None -> Vundef
  in
  let classify q =
    if q.cq_vf = addr_of id_io_read && signature_equal q.cq_sg sg_read then
      match q.cq_args with
      | [ Vint r ] -> Some (IoRead (Int32.to_int r))
      | _ -> None
    else if q.cq_vf = addr_of id_io_write && signature_equal q.cq_sg sg_write
    then
      match q.cq_args with
      | [ Vint r; Vint v ] -> Some (IoWrite (Int32.to_int r, Int32.to_int v))
      | _ -> None
    else None
  in
  {
    Smallstep.name = "sigma_io";
    dom = (fun q -> classify q <> None);
    init = (fun q -> [ IoC_init q ]);
    step = (fun _ -> []);
    at_external = (fun s -> match s with IoC_init q -> classify q | _ -> None);
    after_external =
      (fun s (IoVal v) ->
        match s with
        | IoC_init q -> [ IoC_done (v, q.cq_mem) ]
        | _ -> []);
    final =
      (fun s ->
        match s with
        | IoC_done (v, m) -> Some { cr_res = Vint (Int32.of_int v); cr_mem = m }
        | _ -> None);
  }

(** {1 sigma_io' : IO ↠ A — the assembly-level axiomatization (eq. 7)}

    The same primitives, specified at the level of machine registers: the
    argument values are read from the argument registers of the calling
    convention, and the answer sets the result register, restores SP and
    jumps to RA — the shape the [CA] convention prescribes. *)

type io_a_state = IoA_init of a_query | IoA_done of a_reply

let sigma_io_asm ~(symbols : Ident.t list) :
    (io_a_state, a_query, a_reply, io_query, io_reply) Smallstep.lts =
  let symtbl, _ = Genv.make_symtbl symbols in
  let addr_of id =
    match Ident.Map.find_opt id symtbl with
    | Some b -> Vptr (b, 0)
    | None -> Vundef
  in
  let classify q =
    let rs = q.aq_rs in
    let pc = Pregfile.get PC rs in
    if pc = addr_of id_io_read then
      match Pregfile.get (Mreg Target.Machregs.DI) rs with
      | Vint r -> Some (IoRead (Int32.to_int r))
      | _ -> None
    else if pc = addr_of id_io_write then
      match
        ( Pregfile.get (Mreg Target.Machregs.DI) rs,
          Pregfile.get (Mreg Target.Machregs.SI) rs )
      with
      | Vint r, Vint v -> Some (IoWrite (Int32.to_int r, Int32.to_int v))
      | _ -> None
    else None
  in
  {
    Smallstep.name = "sigma_io'";
    dom = (fun q -> classify q <> None);
    init = (fun q -> [ IoA_init q ]);
    step = (fun _ -> []);
    at_external = (fun s -> match s with IoA_init q -> classify q | _ -> None);
    after_external =
      (fun s (IoVal v) ->
        match s with
        | IoA_init q ->
          (* Return per the calling convention: result in AX, PC := RA,
             SP preserved. *)
          let rs' =
            q.aq_rs
            |> Pregfile.set (Mreg Target.Machregs.AX) (Vint (Int32.of_int v))
            |> Pregfile.set PC (Pregfile.get RA q.aq_rs)
          in
          [ IoA_done { ar_rs = rs'; ar_mem = q.aq_mem } ]
        | _ -> []);
    final = (fun s -> match s with IoA_done r -> Some r | _ -> None);
  }

(** {1 The driver, in C} *)

let driver_source =
  {|
int io_read(int reg);
int io_write(int reg, int val);

/* Receive one byte from the network. */
int net_recv(void) {
  return io_read(1);
}

/* Send one byte to the network. */
int net_send(int b) {
  return io_write(0, b);
}

/* Echo n bytes, incrementing each: the driver's "protocol". */
int net_echo(int n) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    int b = net_recv();
    net_send(b + 1);
    sum = sum + b;
  }
  return sum;
}
|}

(** {1 The network environment}

    The environment supplies polled bytes and records transmissions: the
    observable network behavior. *)

let net_env () =
  let transmitted = ref [] in
  let next = ref 10 in
  let oracle (q : net_query) =
    match q with
    | Poll ->
      let b = !next in
      next := b + 10;
      Some (NetByte b)
    | Transmit b ->
      transmitted := b :: !transmitted;
      Some NetAck
  in
  (oracle, fun () -> List.rev !transmitted)

(** {1 Putting the stacks together (Fig. 7)} *)

let fuel = 1_000_000

let () =
  Format.printf "=== Heterogeneous NIC driver (Examples 1.1 / 3.10) ===@.@.";
  let driver = Cfrontend.Cparser.parse_program driver_source in
  let symbols = Ast.prog_defs_names driver in
  let ge = Genv.globalenv ~symbols driver in
  let m0 = Option.get (Genv.init_mem ~symbols driver) in
  let q =
    { cq_vf = Genv.symbol_address ge (Ident.intern "net_echo") 0;
      cq_sg = { sig_args = [ Tint ]; sig_res = Some Tint };
      cq_args = [ Vint 3l ]; cq_mem = m0 }
  in

  (* Source-level stack: Clight(driver) ∘ sigma_io ∘ sigma_nic : Net ↠ C *)
  let src_stack =
    Vcomp.layer
      (Vcomp.layer (Cfrontend.Clight.semantics ~symbols driver) (sigma_io ~symbols))
      sigma_nic
  in
  let oracle_src, sent_src = net_env () in
  let src_out = Smallstep.run ~fuel src_stack ~oracle:oracle_src q in
  Format.printf "Source stack  Clight(drv) . sigma_io . sigma_nic:@.";
  Format.printf "  net_echo(3) = %a@."
    (Smallstep.pp_outcome pp_c_reply) src_out;
  Format.printf "  transmitted frames: %s@.@."
    (String.concat ", " (List.map string_of_int (sent_src ())));

  (* Target-level stack: Asm(driver') ∘ sigma_io' ∘ sigma_nic : Net ↠ A,
     activated through the convention C (paper: sigma <= id↠C Asm(p') ∘
     sigma_io' ∘ sigma_nic). *)
  let arts = Errors.get (Driver.Compiler.compile driver) in
  let tgt_stack =
    Vcomp.layer
      (Vcomp.layer (Backend.Asm.semantics ~symbols arts.asm) (sigma_io_asm ~symbols))
      sigma_nic
  in
  let oracle_tgt, sent_tgt = net_env () in
  (match Driver.Runners.cc_ca.Simconv.fwd_query q with
  | Some (w, aq) -> (
    let tgt_out = Smallstep.run ~fuel tgt_stack ~oracle:oracle_tgt aq in
    Format.printf "Target stack  Asm(drv') . sigma_io' . sigma_nic:@.";
    (match tgt_out with
    | Smallstep.Final (_, ar) -> (
      match Driver.Runners.cc_ca.Simconv.bwd_reply w ar with
      | Some cr ->
        Format.printf "  net_echo(3) = final %a@." pp cr.cr_res;
        Format.printf "  transmitted frames: %s@.@."
          (String.concat ", " (List.map string_of_int (sent_tgt ())));
        let agree =
          sent_src () = sent_tgt ()
          &&
          match src_out with
          | Smallstep.Final (_, cr0) -> lessdef cr0.cr_res cr.cr_res
          | _ -> false
        in
        Format.printf
          "Network-level behaviors agree across the heterogeneous stacks: %s@."
          (if agree then "YES" else "NO")
      | None -> Format.printf "  (reply unmarshalable)@.")
    | o ->
      Format.printf "  %a@."
        (Smallstep.pp_outcome (fun fmt _ -> Format.pp_print_string fmt "<rs>"))
        o))
  | None -> Format.printf "marshaling failed@.")
