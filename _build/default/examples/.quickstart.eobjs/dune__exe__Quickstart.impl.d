examples/quickstart.ml: Ast Backend Cfrontend Convalg Core Driver Errors Format Ident Iface Li List Memory Option Support
