examples/convention_derivation.mli:
