examples/nic_driver.ml: Ast Backend Cfrontend Core Driver Errors Events Format Genv Ident Iface Int32 List Memory Option Pregfile Simconv Smallstep String Support Target Vcomp
