examples/convention_derivation.ml: Convalg Format List
