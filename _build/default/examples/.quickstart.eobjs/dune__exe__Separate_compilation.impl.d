examples/separate_compilation.ml: Ast Backend Cfrontend Core Driver Errors Format Genv Ident Iface Memory Option Support
