examples/nic_driver.mli:
