examples/quickstart.mli:
