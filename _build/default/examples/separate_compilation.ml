(** Separate compilation — the paper's running example (Fig. 1,
    Example 2.2, Corollary 3.9).

    Two translation units, [A.c] defining [mult] and [B.c] defining
    [sqr] which calls [mult], are compiled {e separately} and linked at
    the Asm level. Three semantics are compared:

    - the horizontal composition [Clight(A.c) ⊕ Clight(B.c)] — the
      source-level behavior, with the cross-module call resolved by the
      push/pop rules of Fig. 5;
    - the horizontal composition [Asm(A.s) ⊕ Asm(B.s)] of the separately
      compiled units;
    - the syntactically linked program [Asm(A.s + B.s)] (Thm. 3.5).

    The plays observed at the interface match the paper's example:
    [sqr(3) · mult(3,3) · 9 · 9]. *)

open Support
open Memory.Mtypes
open Memory.Values
open Iface
open Iface.Li

let unit_a = "int mult(int n, int p) { return n * p; }"

let unit_b =
  "int mult(int n, int p);\nint sqr(int n) { return mult(n, n); }"

let fuel = 100_000

let () =
  Format.printf "=== Separate compilation (Fig. 1 / Cor. 3.9) ===@.@.";
  Format.printf "A.c: %s@.B.c: %s@.@." unit_a unit_b;
  let pa = Cfrontend.Cparser.parse_program unit_a in
  let pb = Cfrontend.Cparser.parse_program unit_b in
  let symbols =
    Driver.Linking.shared_symbols [ Ast.prog_defs_names pa; Ast.prog_defs_names pb ]
  in
  let linked_src =
    Errors.get (Ast.link_list ~internal_sig:Cfrontend.Csyntax.fn_sig [ pa; pb ])
  in
  let ge = Genv.globalenv ~symbols linked_src in
  let m0 = Option.get (Genv.init_mem ~symbols linked_src) in
  let sg = { sig_args = [ Tint ]; sig_res = Some Tint } in
  let q =
    { cq_vf = Genv.symbol_address ge (Ident.intern "sqr") 0;
      cq_sg = sg; cq_args = [ Vint 3l ]; cq_mem = m0 }
  in
  Format.printf "Query: %a@.@." pp_c_query q;

  (* Source-level horizontal composition: the cross-module call from sqr
     to mult is resolved by ⊕'s push/pop rules; we instrument the
     composition to print the play. *)
  let la = Cfrontend.Clight.semantics ~symbols pa in
  let lb = Cfrontend.Clight.semantics ~symbols pb in
  let composed = Core.Hcomp.compose la lb in
  (* Observe the play by intercepting the composite's initial question and
     the inner component boundaries: we re-run component B alone with an
     oracle standing for A, printing the interaction. *)
  Format.printf "The play at the C interface (cf. paper eq. (2)):@.";
  Format.printf "  sqr(3)";
  let oracle (qa : c_query) =
    Format.printf " . %a" pp_c_query qa;
    match Core.Smallstep.run ~fuel la ~oracle:(fun _ -> None) qa with
    | Core.Smallstep.Final (_, r) ->
      Format.printf " . %a" pp r.cr_res;
      Some r
    | _ -> None
  in
  (match Core.Smallstep.run ~fuel lb ~oracle q with
  | Core.Smallstep.Final (_, r) -> Format.printf " . %a@.@." pp r.cr_res
  | _ -> Format.printf " (stuck)@.");

  (* Now the three semantics. *)
  let show name outcome =
    Format.printf "%-28s %a@." name Driver.Runners.pp_c_outcome outcome
  in
  show "Clight(A.c) (+) Clight(B.c):"
    (Driver.Runners.run_c_level composed ~fuel q);

  let asm_a = Errors.get (Driver.Compiler.compile_c_to_asm unit_a) in
  let asm_b = Errors.get (Driver.Compiler.compile_c_to_asm unit_b) in
  let aa = Backend.Asm.semantics ~symbols asm_a in
  let ab = Backend.Asm.semantics ~symbols asm_b in
  (match Driver.Runners.run_a_level (Core.Hcomp.compose aa ab) ~fuel q with
  | Ok o -> show "Asm(A.s) (+) Asm(B.s):" o
  | Error e -> Format.printf "error: %s@." e);

  let linked_asm = Errors.get (Backend.Asm.link asm_a asm_b) in
  (match
     Driver.Runners.run_a_level (Backend.Asm.semantics ~symbols linked_asm) ~fuel q
   with
  | Ok o -> show "Asm(A.s + B.s):" o
  | Error e -> Format.printf "error: %s@." e);

  Format.printf
    "@.All three agree: Cor. 3.9 (separate compilation) and Thm. 3.5@.(linking implements horizontal composition) on this instance.@."
