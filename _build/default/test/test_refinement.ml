(** Executable counterparts of the algebra's equations on the {e
    concrete} conventions (Lemmas 5.3, 5.8, Thm. 5.2's identity laws):
    the refinement judgment of Def. 5.1 is checked over sampled queries
    and answers of the [C] interface, connecting the symbolic rule
    database ([Convalg.Rules]) to the executable conventions
    ([Iface.Callconv]). *)

open Memory
open Memory.Mtypes
open Memory.Values
open Core
open Iface.Li
open Iface.Callconv

let check = Alcotest.(check bool)

let sg = { sig_args = [ Tint; Tint ]; sig_res = Some Tint }

(* Sample queries: a couple of memories and argument vectors. *)
let sample_queries () =
  let m0 = Mem.empty in
  let m1, b = Mem.alloc m0 0 16 in
  let m2 = Option.get (Mem.store Memdata.Mint32 m1 b 0 (Vint 7l)) in
  List.map
    (fun (args, m) -> { cq_vf = Vptr (b, 0); cq_sg = sg; cq_args = args; cq_mem = m })
    [
      ([ Vint 1l; Vint 2l ], m1);
      ([ Vint (-5l); Vint 100l ], m2);
      ([ Vundef; Vint 0l ], m2);
    ]

let sample_replies m =
  [
    { cr_res = Vint 3l; cr_mem = m };
    { cr_res = Vundef; cr_mem = m };
    { cr_res = Vint (-1l); cr_mem = m };
  ]

let cc_ext = cc_cklr (module Cklr.Ext)
let cc_inj = cc_cklr (module Cklr.Inj)

(* R ⊑ S on the samples: for every S-related query pair, R relates them
   (via R's canonical world), and R-related answers are S-related. *)
let refines (type wr ws) (r : (wr, c_query, c_query, c_reply, c_reply) Simconv.t)
    (s : (ws, c_query, c_query, c_reply, c_reply) Simconv.t) : bool =
  let qs =
    List.filter_map
      (fun q ->
        match s.Simconv.fwd_query q with
        | Some (w, q2) -> Some (w, q, q2)
        | None -> None)
      (sample_queries ())
  in
  let m = (List.hd (sample_queries ())).cq_mem in
  Simconv.check_refinement ~r ~s ~sample_queries:qs
    ~sample_replies:(sample_replies m, sample_replies m)

let tests =
  [
    Alcotest.test_case "ext . ext == ext on samples (Lemma 5.3)" `Quick
      (fun () ->
        let composed = Simconv.compose cc_ext cc_ext in
        check "ext.ext refines ext" true (refines composed cc_ext);
        check "ext refines ext.ext" true (refines cc_ext composed));
    Alcotest.test_case "ext . inj == inj on samples (Lemma 5.3)" `Quick
      (fun () ->
        let composed = Simconv.compose cc_ext cc_inj in
        check "ext.inj refines inj" true (refines composed cc_inj);
        check "inj refines ext.inj" true (refines cc_inj composed));
    Alcotest.test_case "id . R == R (Thm. 5.2)" `Quick (fun () ->
        let idc : (unit, c_query, c_query, c_reply, c_reply) Simconv.t =
          Simconv.cc_id ()
        in
        let composed = Simconv.compose idc cc_ext in
        check "id.ext refines ext" true (refines composed cc_ext);
        check "ext refines id.ext" true (refines cc_ext composed));
    Alcotest.test_case "wt . wt == wt (App. B.2)" `Quick (fun () ->
        let composed = Simconv.compose cc_wt cc_wt in
        check "wt.wt refines wt" true (refines composed cc_wt);
        check "wt refines wt.wt" true (refines cc_wt composed));
    Alcotest.test_case "ext does NOT refine inj on pointer queries" `Quick
      (fun () ->
        (* Sanity that the refinement check has teeth: a query pair
           related by a nontrivial injection is not ext-related. *)
        let m0 = Mem.empty in
        let m1, b1 = Mem.alloc m0 0 8 in
        let m2, b2 = Mem.alloc m1 0 8 in
        ignore b2;
        let f = Meminj.add b1 b1 0 Meminj.empty in
        let q1 = { cq_vf = Vptr (b1, 0); cq_sg = sg; cq_args = [ Vint 0l; Vint 0l ]; cq_mem = m1 } in
        let q2 = { q1 with cq_mem = m2 } in
        (* inj relates m1 (1 block) to m2 (2 blocks); ext cannot. *)
        let winj =
          { Iface.Callconv.cw = f; cw_next1 = Mem.nextblock m1;
            cw_next2 = Mem.nextblock m2 }
        in
        check "inj relates" true (cc_inj.Simconv.chk_query winj q1 q2);
        (match cc_ext.Simconv.fwd_query q1 with
        | Some (wext, _) ->
          check "ext does not relate" false (cc_ext.Simconv.chk_query wext q1 q2)
        | None -> Alcotest.fail "ext fwd failed"));
  ]

let suite = ("refinement", tests)
