test/test_meminj.ml: Alcotest Int32 List Mem Meminj Memory Option QCheck QCheck_alcotest
