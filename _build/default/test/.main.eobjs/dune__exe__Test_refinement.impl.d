test/test_refinement.ml: Alcotest Cklr Core Iface List Mem Memdata Meminj Memory Option Simconv
