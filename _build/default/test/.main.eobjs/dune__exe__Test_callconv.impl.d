test/test_callconv.ml: Alcotest Cklr Conventions Core Iface Int32 Invariant List Locset Mem Memdata Meminj Memory Option Pregfile Regfile Simconv Target
