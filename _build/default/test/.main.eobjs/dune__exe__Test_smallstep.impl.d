test/test_smallstep.ml: Alcotest Closed Core Events Format Hcomp Int32 List QCheck QCheck_alcotest Vcomp
