test/main.mli:
