test/test_pipeline.ml: Driver Testlib
