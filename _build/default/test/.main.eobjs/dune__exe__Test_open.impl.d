test/test_open.ml: Alcotest Ast Backend Cfrontend Core Driver Errors Genv Ident Iface Int32 List Memory Option Passes Support Testlib
