test/test_values.ml: Alcotest Int32 Int64 List Memory Option QCheck QCheck_alcotest
