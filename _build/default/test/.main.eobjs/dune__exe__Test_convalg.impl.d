test/test_convalg.ml: Alcotest Convalg Derive List Rules String
