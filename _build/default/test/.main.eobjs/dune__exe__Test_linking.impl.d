test/test_linking.ml: Alcotest Ast Cfrontend Core Driver Errors Genv Ident Iface Int32 List Memory QCheck QCheck_alcotest Support
