test/test_random.ml: Cfrontend Driver Iface Int32 List Memory QCheck QCheck_alcotest Support Testlib
