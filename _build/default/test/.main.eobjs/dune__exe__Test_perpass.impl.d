test/test_perpass.ml: Alcotest Cfrontend Core Driver Iface List Mem Meminj Memory Middle Option Support
