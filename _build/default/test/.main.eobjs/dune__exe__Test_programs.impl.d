test/test_programs.ml: Testlib
