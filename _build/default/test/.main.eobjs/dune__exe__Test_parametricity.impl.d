test/test_parametricity.ml: Alcotest Ast Backend Cfrontend Core Driver Errors Genv Ident Iface Int32 List Mem Meminj Memory Middle Option QCheck QCheck_alcotest Support
