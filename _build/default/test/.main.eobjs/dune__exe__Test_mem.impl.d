test/test_mem.ml: Alcotest Int32 Int64 List Mem Memory Option QCheck QCheck_alcotest
