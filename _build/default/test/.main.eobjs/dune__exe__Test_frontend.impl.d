test/test_frontend.ml: Alcotest Ast Cfrontend Clexer Clight Core Cparser Genv Ident Iface List Memory Pp_util Support
