test/test_target.ml: Alcotest List Locset Memory QCheck QCheck_alcotest Target
