test/test_passes.ml: Alcotest Array Backend Cfrontend Driver Errors Ident Iface Int32 List Locset Memory Middle Passes QCheck QCheck_alcotest Support Target
