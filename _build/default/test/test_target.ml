(** Property tests for the target description: location maps and the
    calling-convention layout ([Target.Locations],
    [Target.Conventions]) — the raw material of [CL]/[LM]/[MA]. *)

open Memory.Mtypes
open Memory.Values
open Target.Machregs
open Target.Locations
open Target.Conventions

let check = Alcotest.(check bool)

(* Random signatures: up to 12 arguments of the four base types. *)
let gen_typ = QCheck.oneofl [ Tint; Tlong; Tfloat; Tsingle ]

let gen_sig =
  QCheck.map
    (fun (args, res) -> { sig_args = args; sig_res = res })
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 12) gen_typ)
       (QCheck.option gen_typ))

let unit_tests =
  [
    Alcotest.test_case "first int args in DI SI DX CX R8 R9" `Quick (fun () ->
        let sg = { sig_args = List.init 6 (fun _ -> Tint); sig_res = None } in
        check "regs" true
          (loc_arguments sg = [ R DI; R SI; R DX; R CX; R R8; R R9 ]));
    Alcotest.test_case "seventh int arg on the stack" `Quick (fun () ->
        let sg = { sig_args = List.init 7 (fun _ -> Tint); sig_res = None } in
        check "stack" true
          (List.nth (loc_arguments sg) 6 = S (Outgoing, 0, Tint)));
    Alcotest.test_case "float args in X0..X3" `Quick (fun () ->
        let sg = { sig_args = [ Tfloat; Tint; Tfloat ]; sig_res = None } in
        check "mix" true (loc_arguments sg = [ R X0; R DI; R X1 ]));
    Alcotest.test_case "results in AX / X0" `Quick (fun () ->
        check "int" true (loc_result { sig_args = []; sig_res = Some Tint } = AX);
        check "float" true
          (loc_result { sig_args = []; sig_res = Some Tfloat } = X0);
        check "void" true (loc_result { sig_args = []; sig_res = None } = AX));
    Alcotest.test_case "callee-save partition" `Quick (fun () ->
        List.iter
          (fun r ->
            check (mreg_name r) true
              (is_callee_save r = not (List.mem r destroyed_at_call)))
          all_mregs);
    Alcotest.test_case "locset slot overlap at same offset" `Quick (fun () ->
        let ls = Locset.set (S (Local, 0, Tint)) (Vint 1l) Locset.init in
        let ls = Locset.set (S (Local, 0, Tlong)) (Vlong 2L) ls in
        check "old binding invalidated" true
          (Locset.get (S (Local, 0, Tint)) ls = Vundef);
        check "new binding present" true
          (Locset.get (S (Local, 0, Tlong)) ls = Vlong 2L));
    Alcotest.test_case "locset slot write normalizes by type" `Quick (fun () ->
        let ls = Locset.set (S (Local, 1, Tint)) (Vlong 5L) Locset.init in
        check "ill-typed slot write gives undef" true
          (Locset.get (S (Local, 1, Tint)) ls = Vundef));
    Alcotest.test_case "register writes are not normalized" `Quick (fun () ->
        let ls = Locset.set (R AX) (Vsingle 1.5) Locset.init in
        check "kept" true (Locset.get (R AX) ls = Vsingle 1.5));
  ]

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"argument locations are pairwise disjoint"
        ~count:300 gen_sig (fun sg ->
          let locs = loc_arguments sg in
          let rec pairwise = function
            | [] -> true
            | l :: rest ->
              List.for_all (fun l' -> not (locs_overlap l l')) rest
              && pairwise rest
          in
          pairwise locs);
      QCheck.Test.make ~name:"one location per argument" ~count:300 gen_sig
        (fun sg -> List.length (loc_arguments sg) = List.length sg.sig_args);
      QCheck.Test.make ~name:"argument location types match" ~count:300 gen_sig
        (fun sg ->
          List.for_all2
            (fun l t ->
              match l with
              | R r -> is_float_typ t = is_float_mreg r
              | S (Outgoing, _, t') -> t = t'
              | _ -> false)
            (loc_arguments sg) sg.sig_args);
      QCheck.Test.make ~name:"size_arguments covers all stack slots"
        ~count:300 gen_sig (fun sg ->
          List.for_all
            (function
              | S (Outgoing, ofs, _) -> ofs < size_arguments sg
              | _ -> true)
            (loc_arguments sg));
      QCheck.Test.make ~name:"build/extract arguments roundtrip" ~count:300
        gen_sig (fun sg ->
          (* Well-typed values for each slot. *)
          let args =
            List.map
              (function
                | Tint -> Vint 7l
                | Tlong -> Vlong 8L
                | Tfloat -> Vfloat 1.5
                | Tsingle -> Vsingle 2.5
                | Tany64 -> Vlong 0L)
              sg.sig_args
          in
          match build_arguments sg args Locset.init with
          | Some ls -> extract_arguments sg ls = args
          | None -> false);
      QCheck.Test.make ~name:"undef_caller_save spares callee-saves"
        ~count:100 QCheck.unit (fun () ->
          let ls =
            List.fold_left
              (fun ls r -> Locset.set (R r) (Vint 9l) ls)
              Locset.init all_mregs
          in
          let ls' = Locset.undef_caller_save ls in
          List.for_all
            (fun r ->
              if is_callee_save r then Locset.get (R r) ls' = Vint 9l
              else Locset.get (R r) ls' = Vundef)
            all_mregs);
    ]

let suite = ("target", unit_tests @ prop_tests)
