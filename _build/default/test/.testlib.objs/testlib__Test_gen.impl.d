test/test_gen.ml: Fuzz
