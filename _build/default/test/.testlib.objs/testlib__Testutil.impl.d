test/testutil.ml: Alcotest Core Driver Iface Memory
