test/str_replace.ml: Buffer String
