(** Linking and horizontal-composition tests: the empirical counterparts
    of Theorem 3.4 (⊕ preserves simulation), Theorem 3.5 (Asm linking
    implements ⊕) and Corollary 3.9 (separate compilation). *)

open Support
open Memory.Mtypes
open Memory.Values
open Iface
open Iface.Li

let check = Alcotest.(check bool)
let fuel = 1_000_000

let parse = Cfrontend.Cparser.parse_program

(* Build the query calling [name] of the linked program with int args. *)
let query_for units name args symbols =
  match Ast.link_list ~internal_sig:Cfrontend.Csyntax.fn_sig units with
  | Error _ -> None
  | Ok linked -> (
    let ge = Genv.globalenv ~symbols linked in
    match (Genv.find_symbol ge (Ident.intern name), Genv.init_mem ~symbols linked) with
    | Some b, Some m ->
      Some
        { cq_vf = Vptr (b, 0);
          cq_sg = { sig_args = List.map (fun _ -> Tint) args; sig_res = Some Tint };
          cq_args = List.map (fun n -> Vint (Int32.of_int n)) args;
          cq_mem = m }
    | _ -> None)

(* Corollary 3.9 on a pair of units. *)
let separate_compilation name ~entry ~args ~expect units =
  Alcotest.test_case name `Quick (fun () ->
      let units = List.map parse units in
      match
        Driver.Linking.separate_compilation_experiment ~fuel units
          ~query:(fun symbols -> query_for units entry args symbols)
      with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok e ->
        check (name ^ " agree") true e.Driver.Linking.exp_agree;
        (match e.Driver.Linking.exp_linked with
        | Core.Smallstep.Final (_, { cr_res = Vint n; _ }) ->
          Alcotest.(check int32) name expect n
        | o ->
          Alcotest.failf "%s: target %a" name Driver.Runners.pp_c_outcome o))

(* Theorem 3.5 on a pair of units. *)
let asm_linking name ~entry ~args ~expect (src1, src2) =
  Alcotest.test_case name `Quick (fun () ->
      let p1 = parse src1 and p2 = parse src2 in
      let a1 = Errors.get (Driver.Compiler.compile_c_to_asm src1) in
      let a2 = Errors.get (Driver.Compiler.compile_c_to_asm src2) in
      let symbols =
        Driver.Linking.shared_symbols
          [ Ast.prog_defs_names p1; Ast.prog_defs_names p2 ]
      in
      match query_for [ p1; p2 ] entry args symbols with
      | None -> Alcotest.fail "no query"
      | Some q -> (
        match Driver.Linking.asm_link_experiment ~fuel a1 a2 q with
        | Error e -> Alcotest.failf "%s: %s" name e
        | Ok e ->
          check (name ^ ": (+) = linked") true e.Driver.Linking.exp_agree;
          (match e.Driver.Linking.exp_linked with
          | Core.Smallstep.Final (_, { cr_res = Vint n; _ }) ->
            Alcotest.(check int32) name expect n
          | o ->
            Alcotest.failf "%s: %a" name Driver.Runners.pp_c_outcome o)))

(* Figure 1 of the paper. *)
let fig1_a = "int mult(int n, int p) { return n * p; }"
let fig1_b = "int mult(int n, int p); int sqr(int n) { return mult(n, n); }"

let mutual_a =
  "int odd(int n); int even(int n) { if (n == 0) return 1; return odd(n - 1); }"

let mutual_b =
  "int even(int n); int odd(int n) { if (n == 0) return 0; return even(n - 1); }"

let globals_a = "int shared = 5; int get(void) { return shared; }"
let globals_b =
  "int shared; int get(void); int bump(void) { shared = shared + 1; return get(); }"

let stackargs_a =
  "int wide(int a,int b,int c,int d,int e,int f,int g,int h) { return g * 100 + h; }"

let stackargs_b =
  "int wide(int a,int b,int c,int d,int e,int f,int g,int h); int call_wide(int x) { return wide(0,0,0,0,0,0,x, x + 1); }"

let tests =
  [
    separate_compilation "Cor 3.9: Fig. 1 (sqr/mult)" ~entry:"sqr" ~args:[ 3 ]
      ~expect:9l [ fig1_a; fig1_b ];
    separate_compilation "Cor 3.9: cross-module mutual recursion"
      ~entry:"even" ~args:[ 9 ] ~expect:0l [ mutual_a; mutual_b ];
    separate_compilation "Cor 3.9: shared globals" ~entry:"bump" ~args:[]
      ~expect:6l [ globals_a; globals_b ];
    separate_compilation "Cor 3.9: stack args across modules"
      ~entry:"call_wide" ~args:[ 7 ] ~expect:708l [ stackargs_a; stackargs_b ];
    separate_compilation "Cor 3.9: three units" ~entry:"top" ~args:[ 4 ]
      ~expect:24l
      [
        "int fact(int n);\nint top(int n) { return fact(n); }";
        "int mul(int a, int b);\nint fact(int n) { if (n < 2) return 1; return mul(n, fact(n - 1)); }";
        "int mul(int a, int b) { return a * b; }";
      ];
    asm_linking "Thm 3.5: Fig. 1 at Asm level" ~entry:"sqr" ~args:[ 7 ]
      ~expect:49l (fig1_a, fig1_b);
    asm_linking "Thm 3.5: mutual recursion at Asm level" ~entry:"odd"
      ~args:[ 7 ] ~expect:1l (mutual_a, mutual_b);
    asm_linking "Thm 3.5: globals at Asm level" ~entry:"bump" ~args:[]
      ~expect:6l (globals_a, globals_b);
  ]

(* Theorem 3.4-flavored property: composing at the source and target
   levels yields behaviors related by the convention, across random
   inputs. *)
let thm34_property =
  let p1 = parse fig1_a and p2 = parse fig1_b in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Thm 3.4/3.8: sqr agrees for random inputs"
       ~count:25
       (QCheck.int_range (-1000) 1000)
       (fun n ->
         match
           Driver.Linking.separate_compilation_experiment ~fuel [ p1; p2 ]
             ~query:(fun symbols -> query_for [ p1; p2 ] "sqr" [ n ] symbols)
         with
         | Ok e -> e.Driver.Linking.exp_agree
         | Error _ -> false))

(* Syntactic linking unit tests. *)
let link_unit_tests =
  [
    Alcotest.test_case "link resolves External against Internal" `Quick
      (fun () ->
        let p1 = parse "int f(int x);\nint g(void) { return f(1); }" in
        let p2 = parse "int f(int x) { return x; }" in
        match Cfrontend.Csyntax.link p1 p2 with
        | Ok linked ->
          check "f internal" true
            (match Ast.find_def linked (Ident.intern "f") with
            | Some (Ast.Gfun (Ast.Internal _)) -> true
            | _ -> false)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "link rejects duplicate definitions" `Quick (fun () ->
        let p1 = parse "int f(void) { return 1; }" in
        let p2 = parse "int f(void) { return 2; }" in
        check "rejected" true
          (match Cfrontend.Csyntax.link p1 p2 with Error _ -> true | Ok _ -> false));
    Alcotest.test_case "link rejects signature mismatch" `Quick (fun () ->
        let p1 = parse "int f(int x);\nint g(void) { return 0; }" in
        let p2 = parse "int f(long x) { return 1; }" in
        check "rejected" true
          (match Cfrontend.Csyntax.link p1 p2 with Error _ -> true | Ok _ -> false));
    Alcotest.test_case "link merges matching declarations" `Quick (fun () ->
        let p1 = parse "int f(int x);\nint a(void) { return 1; }" in
        let p2 = parse "int f(int x);\nint b(void) { return 2; }" in
        check "ok" true
          (match Cfrontend.Csyntax.link p1 p2 with Ok _ -> true | Error _ -> false));
    Alcotest.test_case "link variable tentative definitions" `Quick (fun () ->
        let p1 = parse "int x;\nint a(void) { return x; }" in
        let p2 = parse "int x = 5;\nint b(void) { return x; }" in
        match Cfrontend.Csyntax.link p1 p2 with
        | Ok linked ->
          check "initialized def wins" true
            (match Ast.find_def linked (Ident.intern "x") with
            | Some (Ast.Gvar gv) -> gv.Ast.gvar_init = [ Ast.Init_int32 5l ]
            | _ -> false)
        | Error e -> Alcotest.fail e);
  ]

let suite = ("linking", tests @ [ thm34_property ] @ link_unit_tests)
